// The sketching model across a real message boundary: the same AGM
// spanning-forest protocol the simulator runs, but every sketch now
// travels as a self-delimiting wire frame through a loopback transport to
// a referee service, and the result comes back as a broadcast frame.
//
// Both runs below are the SAME round engine (docs/ENGINE.md): the
// simulator runs it with an in-process LocalSource, the RefereeService
// with a WireSource over the loopback links.  The point of the demo is
// the accounting split.  The model charges exactly BitWriter::bit_count()
// per player — from the engine's single ChargeSheet site in either
// configuration — and the wire adds framing (header varints,
// byte-rounding padding, CRC-32) on top.  The two are reported side by
// side and the payload column must equal the simulated CommStats bit for
// bit — the invariant tests/audit/wire_audit_test.cpp enforces for the
// whole protocol zoo.
#include <iostream>

#include "graph/connectivity.h"
#include "graph/generators.h"
#include "model/runner.h"
#include "protocols/spanning_forest.h"
#include "service/player_client.h"
#include "service/referee_service.h"
#include "wire/loopback.h"

int main() {
  using namespace ds;

  util::Rng rng(7);
  const graph::Graph g = graph::gnp(120, 0.08, rng);
  const model::PublicCoins coins(99);
  const protocols::AgmSpanningForest protocol;

  std::cout << "Instance: G(120, 0.08), " << g.num_edges() << " edges; "
            << "protocol \"" << protocol.name() << "\" over a loopback "
            << "wire session with 4 player clients\n\n";

  // The reference run: the in-process simulator.
  const auto simulated = model::run_protocol(g, protocol, coins);

  // The wire run: 4 clients, each owning a contiguous vertex shard,
  // batch their frames over a loopback link to the referee service.
  constexpr std::size_t kPlayers = 4;
  std::vector<std::unique_ptr<wire::Link>> referee_links;
  std::vector<std::unique_ptr<wire::Link>> player_links;
  for (std::size_t i = 0; i < kPlayers; ++i) {
    wire::LoopbackPair pair = wire::make_loopback_pair();
    referee_links.push_back(std::move(pair.referee_side));
    player_links.push_back(std::move(pair.player_side));
  }
  for (std::size_t i = 0; i < kPlayers; ++i) {
    const std::vector<graph::Vertex> owned =
        service::shard_vertices(g.num_vertices(), kPlayers, i);
    const service::PlayerSendStats sent = service::send_sketches(
        *player_links[i], g, owned, protocol, coins);
    std::cout << "  client " << i << ": " << sent.frames
              << " frames, payload " << sent.payload_bits
              << " bits + framing " << sent.framing_bits << " bits\n";
  }

  // The engine's wire configuration: the RefereeService adapter runs the
  // same collect/charge/decode core as model::run_protocol above, fed by
  // a WireSource instead of an in-process LocalSource.
  service::RefereeService referee(std::move(referee_links), 99);
  const service::ServeResult<model::ForestOutput> served =
      referee.run(protocol, g.num_vertices());
  // Every client decodes the broadcast result.
  bool all_agree = true;
  for (const std::unique_ptr<wire::Link>& link : player_links) {
    all_agree &= service::await_result(*link, protocol) == served.output;
  }

  std::cout << "\nReferee decoded a forest of " << served.output.size()
            << " edges (valid: "
            << (graph::is_spanning_forest(g, served.output) ? "yes" : "no")
            << "); all clients agree: " << (all_agree ? "yes" : "no")
            << "\n\n";

  std::cout << "Accounting, wire vs simulation:\n"
            << "  uplink payload   : " << served.uplink.payload_bits
            << " bits  (simulated CommStats total: "
            << simulated.comm.total_bits << ")\n"
            << "  uplink framing   : " << served.uplink.framing_bits
            << " bits  (" << served.uplink.frames << " frames in "
            << served.uplink.messages << " messages)\n"
            << "  max player       : " << served.comm.max_bits
            << " bits  (simulated: " << simulated.comm.max_bits << ")\n"
            << "  result downlink  : " << served.downlink.payload_bits
            << " payload + " << served.downlink.framing_bits
            << " framing bits\n";

  const bool payload_matches =
      served.uplink.payload_bits == simulated.comm.total_bits &&
      served.comm.max_bits == simulated.comm.max_bits &&
      served.output == simulated.output;
  std::cout << "\nwire == sim: " << (payload_matches ? "yes" : "NO") << "\n";
  return payload_matches && all_agree ? 0 : 1;
}
