// The Section 4 reduction, step by step: build H from G ~ D_MM, compute
// an MIS of H, and decode the surviving special matching of G through
// Lemma 4.1.
#include <algorithm>
#include <iostream>

#include "graph/independent_set.h"
#include "graph/matching.h"
#include "lowerbound/mis_reduction.h"
#include "rs/rs_graph.h"

int main() {
  using namespace ds;

  const rs::RsGraph base = rs::rs_graph(8);
  util::Rng rng(2024);
  const lowerbound::DmmInstance inst =
      lowerbound::sample_dmm(base, base.t(), rng);
  const graph::Vertex n = inst.params.n;
  std::cout << "G ~ D_MM: n=" << n << ", " << inst.g.num_edges()
            << " edges, " << inst.params.num_public()
            << " public vertices\n";

  // Step 1: H = two copies of G + the public biclique.
  const graph::Graph h = lowerbound::build_reduction_graph(inst);
  std::cout << "H: " << h.num_vertices() << " vertices, " << h.num_edges()
            << " edges (2x" << inst.g.num_edges() << " copy edges + "
            << inst.params.num_public() * inst.params.num_public()
            << " biclique edges)\n\n";

  // Step 2: any MIS of H (here: the omniscient greedy — in the real
  // protocol this is the referee's decode of the MIS sketches).
  const auto mis = graph::greedy_mis_random(h, rng);
  std::cout << "MIS of H: " << mis.size() << " vertices; valid: "
            << (graph::is_maximal_independent_set(h, mis) ? "yes" : "no")
            << '\n';

  // Step 3-4: Lemma 4.1 decoding.
  const lowerbound::Lemma41Audit audit =
      lowerbound::audit_lemma41(inst, mis);
  std::cout << "Biclique guarantee — S misses Pl: "
            << (audit.left_public_empty ? "yes" : "no") << ", misses Pr: "
            << (audit.right_public_empty ? "yes" : "no") << '\n';

  graph::Matching decoded = lowerbound::decode_matching_from_mis(inst, mis);
  graph::Matching expected = inst.all_surviving_special();
  auto canon = [](graph::Matching& mm) {
    for (graph::Edge& e : mm) e = e.normalized();
    std::sort(mm.begin(), mm.end());
  };
  canon(decoded);
  canon(expected);
  std::cout << "Decoded matching: " << decoded.size()
            << " edges; surviving special matching: " << expected.size()
            << " edges; exact recovery: "
            << (decoded == expected ? "YES" : "no") << '\n'
            << "Valid in G: "
            << (graph::is_valid_matching(inst.g, decoded) ? "yes" : "no")
            << "; all unique-unique: "
            << (lowerbound::count_unique_unique(inst, decoded) ==
                        decoded.size()
                    ? "yes"
                    : "no")
            << '\n';

  std::cout << "\nConclusion (Theorem 2): a b-bit MIS sketch for H would\n"
               "yield a 2b-bit matching sketch for D_MM, so MIS inherits\n"
               "the Omega(sqrt(n)) lower bound.\n";
  return 0;
}
