// The proof of Theorem 1, executed: on an exhaustively enumerable
// mini-instance of D_MM we compute the exact joint law of (inputs,
// transcript), evaluate every quantity in Lemmas 3.3-3.5, and show the
// optimal (MAP) referee bumping against the Fano ceiling.
//
// Reading guide (paper section -> printed block):
//   Lemma 3.3  — successful protocols carry >= kr/6 bits about M.
//   Lemma 3.4  — that information splits into the public players' message
//                entropy plus the per-copy unique-player terms.
//   Lemma 3.5  — each unique-player term is <= H(Pi(U_i)) / t: the
//                unique players don't know j*, so they pay a 1/t factor.
//   Converse   — MAP decoding is the best any referee can do, and Fano
//                caps its success at (I + 1) / kr.
#include <iostream>

#include "lowerbound/accounting.h"
#include "lowerbound/optimal_referee.h"
#include "rs/rs_graph.h"

int main() {
  using namespace ds;
  using namespace ds::lowerbound;

  // The instance: a (r=1, t=2) "book" RS graph, k = 2 copies, n = 5
  // vertices, 4 survival bits -> 2 * 16 * 120 enumerable outcomes with
  // sigma ranging over all permutations.
  const rs::RsGraph base = rs::book_rs(1, 2);
  const auto sigmas = all_permutations(5);
  std::cout << "Instance: book RS (r=1, t=2), k=2, n=5; enumerating "
            << sigmas.size() << " sigmas x 2 j* x 16 survival patterns\n\n";

  const FullReportEncoder full;
  const CappedReportEncoder cap1(1);
  const SilentEncoder silent;
  const ParityEncoder parity;

  for (const RefinedEncoder* enc :
       std::initializer_list<const RefinedEncoder*>{&full, &cap1, &parity,
                                                    &silent}) {
    const AccountingResult acct =
        enumerate_accounting(base, 2, *enc, sigmas);
    const OptimalRefereeResult opt =
        optimal_referee_success(base, 2, *enc, sigmas);

    std::cout << "--- encoder: " << enc->name() << " (worst message "
              << acct.max_message_bits << " bits) ---\n";
    std::cout << "  P[success], greedy referee : " << opt.greedy_success
              << "\n  P[success], OPTIMAL (MAP)  : " << opt.optimal_success
              << "\n  Fano ceiling (I+1)/kr      : "
              << opt.fano_success_bound
              << "\n  I(M ; Pi | Sigma, J)       : " << acct.info_m_pi
              << "  (kr/6 = " << acct.kr / 6.0 << ")"
              << "\n  H(Pi(P))                   : " << acct.h_pi_public
              << "\n  sum_i I(M_i ; Pi(U_i))     : ";
    double sum = 0;
    for (double v : acct.info_mi_piui) sum += v;
    std::cout << sum << "\n  Lemma 3.3 "
              << (acct.lemma33_applicable
                      ? (acct.lemma33_holds ? "HOLDS" : "VIOLATED")
                      : "n/a (protocol fails)")
              << " | Lemma 3.4 " << (acct.lemma34_holds ? "HOLDS" : "VIOLATED")
              << " | Lemma 3.5 " << (acct.lemma35_holds ? "HOLDS" : "VIOLATED")
              << "\n\n";
  }

  std::cout
      << "Take-away: success tracks INFORMATION, not message form. On this\n"
         "tiny instance one parity bit happens to carry the whole survival\n"
         "bit (leaf players have at most one edge), so the MAP referee\n"
         "succeeds where the edge-union referee cannot — while the silent\n"
         "encoder sits at I = 0 and NO referee beats blind guessing\n"
         "(Fano). Theorem 1 is this tension at scale: with r edges per\n"
         "unique vertex and t candidate matchings, cheap messages cannot\n"
         "carry kr/6 bits about M.\n";
  return 0;
}
