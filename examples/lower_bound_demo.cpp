// Walk through the hard distribution D_MM (Section 3.1) and watch a
// budget-limited one-round protocol hit the paper's wall.
//
// Steps:
//   1. build an (r, t)-Ruzsa-Szemeredi graph from a Behrend set;
//   2. sample G ~ D_MM (k = t subsampled copies, shared public vertices,
//      per-copy unique vertices);
//   3. audit Claim 3.1 (every maximal matching is forced to contain
//      ~k*r/4 unique-unique special edges);
//   4. sweep the per-player budget of the edge-report protocol and print
//      the success phase transition around r*log(n) bits.
#include <iostream>

#include "core/experiment.h"
#include "core/report.h"
#include "graph/matching.h"
#include "lowerbound/claims.h"
#include "model/runner.h"
#include "protocols/budgeted.h"
#include "protocols/sampled_matching.h"
#include "rs/rs_graph.h"

int main() {
  using namespace ds;

  // 1. The substrate.
  const std::uint64_t m = 16;
  const rs::RsGraph base = rs::rs_graph(m);
  std::cout << "RS graph: N=" << base.num_vertices() << " vertices, t="
            << base.t() << " induced matchings of size r=" << base.r()
            << " (verified: " << (rs::verify_rs(base) ? "yes" : "no")
            << ")\n";

  // 2. One sample of D_MM.
  util::Rng rng(123);
  const lowerbound::DmmInstance inst =
      lowerbound::sample_dmm(base, base.t(), rng);
  const lowerbound::DmmParameters& p = inst.params;
  std::cout << "D_MM sample: n=" << p.n << " vertices ("
            << p.num_public() << " public + " << p.num_unique()
            << " unique), " << inst.g.num_edges() << " edges, j*="
            << inst.j_star << "\n\n";

  // 3. Claim 3.1 on an adversarial maximal matching.
  const graph::Matching adversarial =
      lowerbound::adversarial_maximal_matching(inst);
  const lowerbound::Claim31Audit audit =
      lowerbound::audit_claim31(inst, adversarial);
  std::cout << "Claim 3.1 audit (adversarial maximal matching):\n"
            << "  |union M_i| surviving : " << audit.union_special_size
            << "  (expected ~kr/2 = " << p.k * p.r / 2 << ")\n"
            << "  unique-unique edges   : " << audit.unique_unique
            << "  vs threshold kr/4 = " << audit.threshold << '\n'
            << "  forced edges missing  : " << audit.forced_edges_missing
            << "  (must be 0 for any maximal matching)\n\n";

  // 4. The budget sweep.
  std::cout << "Budget sweep (one-round edge-report protocol, 8 trials "
               "each):\n";
  core::Table table({"budget bits", "P[maximal]", "P[special known]"});
  const unsigned width = util::bit_width_for(p.n);
  for (std::size_t budget :
       {width, 4 * width, 16 * width, 64 * width, 256 * width}) {
    std::size_t maximal = 0, known = 0;
    constexpr std::size_t kTrials = 8;
    util::Rng sweep_rng(55);
    for (std::size_t trial = 0; trial < kTrials; ++trial) {
      const auto trial_inst =
          lowerbound::sample_dmm(base, base.t(), sweep_rng);
      const model::PublicCoins coins(util::mix64(9, trial));
      const protocols::BudgetedMatching protocol(budget);
      model::CommStats comm;
      const auto sketches =
          model::collect_sketches(trial_inst.g, protocol, coins, comm);
      const graph::Graph seen =
          protocols::decode_reported_graph(p.n, sketches);
      bool all_known = true;
      for (const auto& mi : trial_inst.special_surviving) {
        for (const graph::Edge& e : mi) {
          all_known &= seen.has_edge(e.u, e.v);
        }
      }
      known += all_known;
      const auto matching = protocol.decode(p.n, sketches, coins);
      maximal += graph::is_maximal_matching(trial_inst.g, matching);
    }
    table.add_row({core::fmt(static_cast<std::uint64_t>(budget)),
                   core::fmt(static_cast<double>(maximal) / 8.0, 2),
                   core::fmt(static_cast<double>(known) / 8.0, 2)});
  }
  table.print(std::cout);
  std::cout << "\nTheorem 1: ANY protocol needs ~" << base.r()
            << "*log(n) ~ sqrt(n)/e^{Theta(sqrt(log n))} bits here; the "
               "sweep shows the\nfamily crossing exactly that scale.\n";
  return 0;
}
