// The introduction's motivating example, executed: two dense random
// clusters joined by a single bridge edge.  From any single player's
// view, the bridge is indistinguishable from its other edges — yet
// O(log n)-bit sketches recover it, because each edge is seen by BOTH
// endpoints and the referee can aggregate.
//
// Two protocols solve it:
//   * the footnote-1 trick (sampled edges identify the partition; a
//     signed 64-bit incidence sum telescopes to the bridge id);
//   * full AGM sketches (the general spanning-forest machinery).
#include <iostream>

#include "graph/connectivity.h"
#include "graph/generators.h"
#include "model/runner.h"
#include "protocols/bridge_finding.h"
#include "protocols/spanning_forest.h"

int main() {
  using namespace ds;

  util::Rng rng(7);
  const auto [g, bridge] = graph::two_clusters_with_bridge(200, 0.1, rng);
  std::cout << "Instance: two G(100, 0.1) clusters + bridge ("
            << bridge.u << ", " << bridge.v << "), " << g.num_edges()
            << " edges total\n\n";

  const model::PublicCoins coins(99);

  {
    const auto run =
        model::run_protocol(g, protocols::BridgeFinding{10}, coins);
    std::cout << "Footnote-1 protocol (10 sampled edges + signed sum):\n"
              << "  recovered bridge : (" << run.output.u << ", "
              << run.output.v << ")  "
              << (run.output.normalized() == bridge.normalized()
                      ? "[correct]"
                      : "[WRONG]")
              << '\n'
              << "  bits/player      : " << run.comm.max_bits << "\n\n";
  }

  {
    const auto run =
        model::run_protocol(g, protocols::AgmSpanningForest{}, coins);
    bool has_bridge = false;
    for (const graph::Edge& e : run.output) {
      has_bridge |= e.normalized() == bridge.normalized();
    }
    std::cout << "AGM spanning forest:\n"
              << "  forest edges     : " << run.output.size() << '\n'
              << "  valid forest?    : "
              << (graph::is_spanning_forest(g, run.output) ? "yes" : "no")
              << '\n'
              << "  contains bridge? : " << (has_bridge ? "yes" : "no")
              << '\n'
              << "  bits/player      : " << run.comm.max_bits << '\n';
  }
  return 0;
}
