// Linear sketches as dynamic-stream algorithms: process a churning stream
// of edge inserts and deletes with n * polylog(n) bits of state, then
// answer connectivity queries — while the classic one-pass greedy
// matching breaks on the very first deleted matched edge.
//
// This is the related-work correspondence from the paper's Section 1.1:
// dynamic-stream lower bounds transfer to LINEAR sketches only, which is
// why Theorems 1-2 (general sketches) were needed.
#include <iostream>

#include "graph/connectivity.h"
#include "graph/generators.h"
#include "stream/dynamic_stream.h"

int main() {
  using namespace ds;

  util::Rng rng(31);
  const graph::Vertex n = 150;
  const graph::Graph target = graph::gnp(n, 5.0 / n, rng);
  const auto updates =
      stream::scrambled_updates(target, /*spurious_pairs=*/300, rng);
  std::cout << "Stream: " << updates.size() << " updates (net graph: "
            << target.num_edges() << " edges on " << n << " vertices, plus "
            << 300 << " insert+delete churn pairs)\n\n";

  stream::DynamicConnectivity connectivity(n, 2024);
  stream::InsertionGreedyMatching matching(n);
  std::size_t processed = 0;
  for (const auto& update : updates) {
    connectivity.apply(update);
    matching.apply(update);
    ++processed;
    if (processed == updates.size() / 2) {
      std::cout << "[mid-stream] components now: "
                << connectivity.query_components() << '\n';
    }
  }

  const auto forest = connectivity.query_forest();
  const auto exact = graph::connected_components(target);
  std::cout << "\nAfter the full stream:\n"
            << "  sketch components : " << forest.components
            << "  (exact: " << exact.count << ")\n"
            << "  spanning forest   : "
            << (graph::is_spanning_forest(target, forest.forest) ? "valid"
                                                                 : "INVALID")
            << '\n'
            << "  sketch state      : " << connectivity.state_bits() / n
            << " bits/vertex (polylog, deletion-proof)\n"
            << "  greedy matching   : "
            << (matching.valid() ? "still valid (lucky!)"
                                 : "BROKEN by a deletion (as expected)")
            << '\n';
  return 0;
}
