// Quickstart: the distributed sketching model end-to-end in one page.
//
// 1. Build a graph.
// 2. Pick a protocol (here: the trivial Theta(n)-bit maximal matching and
//    the AGM O(log^3 n)-bit spanning forest).
// 3. Run it: the harness slices the graph into per-vertex views, each
//    player writes one sketch, the referee decodes — and every bit is
//    charged.
#include <iostream>

#include "graph/connectivity.h"
#include "graph/generators.h"
#include "graph/matching.h"
#include "model/runner.h"
#include "protocols/spanning_forest.h"
#include "protocols/trivial.h"

int main() {
  using namespace ds;

  // A random graph on 100 vertices, average degree ~8.
  util::Rng rng(2020);
  const graph::Graph g = graph::gnp(100, 0.08, rng);
  std::cout << "Input: G(n=100, p=0.08) with " << g.num_edges()
            << " edges\n\n";

  // All parties share public coins — a seed fixed before the input.
  const model::PublicCoins coins(42);

  // Maximal matching via the trivial protocol: every vertex ships its
  // adjacency bitmap (n bits), the referee reconstructs G and solves.
  {
    const auto run =
        model::run_protocol(g, protocols::TrivialMaximalMatching{}, coins);
    std::cout << "Trivial maximal matching protocol:\n"
              << "  matching size : " << run.output.size() << '\n'
              << "  maximal?      : "
              << (graph::is_maximal_matching(g, run.output) ? "yes" : "no")
              << '\n'
              << "  bits/player   : " << run.comm.max_bits
              << "  (= n, the trivial upper bound)\n\n";
  }

  // Spanning forest via AGM linear sketches: O(log^3 n) bits/player —
  // the kind of efficiency Theorems 1-2 prove impossible for maximal
  // matching and MIS.
  {
    const auto run =
        model::run_protocol(g, protocols::AgmSpanningForest{}, coins);
    std::cout << "AGM spanning-forest protocol:\n"
              << "  forest edges  : " << run.output.size() << '\n'
              << "  spanning?     : "
              << (graph::is_spanning_forest(g, run.output) ? "yes" : "no")
              << '\n'
              << "  bits/player   : " << run.comm.max_bits
              << "  (polylog(n), via mergeable L0 samplers)\n\n";
  }

  std::cout << "The paper's result: no one-round protocol computes a\n"
               "maximal matching or MIS with sketches below ~sqrt(n) bits\n"
               "— see lower_bound_demo for the hard distribution.\n";
  return 0;
}
