#include "rs/ap_free.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_map>

namespace ds::rs {

bool is_3ap_free(std::span<const std::uint64_t> set) {
  // For every pair a < c with the same parity sum, check the midpoint.
  for (std::size_t i = 0; i < set.size(); ++i) {
    for (std::size_t j = i + 1; j < set.size(); ++j) {
      assert(set[i] < set[j] && "set must be strictly increasing");
      const std::uint64_t sum = set[i] + set[j];
      if (sum % 2 != 0) continue;
      if (std::binary_search(set.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                             set.begin() + static_cast<std::ptrdiff_t>(j),
                             sum / 2)) {
        return false;
      }
    }
  }
  return true;
}

std::vector<std::uint64_t> ternary_ap_free_set(std::uint64_t m) {
  // x has only digits 0/1 in base 3  <=>  x is a sum of distinct powers of
  // 3 <=> x = sum_{i in S} 3^i for the binary digit set S. Enumerate by
  // counting in binary and mapping bit i -> 3^i, which emits the set in
  // increasing order without scanning all of [0, m).
  std::vector<std::uint64_t> set;
  for (std::uint64_t bits = 0;; ++bits) {
    std::uint64_t value = 0;
    std::uint64_t power = 1;
    for (std::uint64_t b = bits; b != 0; b >>= 1) {
      if (b & 1) value += power;
      power *= 3;
    }
    if (value >= m) break;
    set.push_back(value);
  }
  return set;
}

std::vector<std::uint64_t> behrend_set(std::uint64_t m, unsigned dims) {
  assert(dims >= 1);
  // Largest q with (2q-1)^dims <= m.
  std::uint64_t q = 1;
  auto fits = [m, dims](std::uint64_t qq) {
    __uint128_t v = 1;
    const std::uint64_t base = 2 * qq - 1;
    for (unsigned i = 0; i < dims; ++i) {
      v *= base;
      if (v > m) return false;
    }
    return true;
  };
  while (fits(q + 1)) ++q;
  if (q < 2) return ternary_ap_free_set(std::min<std::uint64_t>(m, 2));

  const std::uint64_t base = 2 * q - 1;
  // Enumerate all vectors in {0..q-1}^dims, bucket by squared norm, and
  // keep the most populous sphere.  Points on a sphere are 3-AP-free after
  // base-(2q-1) encoding: digit sums never carry (digits < q, so pairwise
  // sums < 2q-1), hence x + y = 2z in Z implies x + y = 2z coordinatewise,
  // and a sphere contains no midpoint of a proper chord.
  std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> spheres;
  std::vector<std::uint64_t> digits(dims, 0);
  while (true) {
    std::uint64_t norm = 0;
    std::uint64_t encoded = 0;
    for (unsigned i = 0; i < dims; ++i) {
      norm += digits[i] * digits[i];
      encoded = encoded * base + digits[i];
    }
    if (encoded < m) spheres[norm].push_back(encoded);

    // Odometer increment over {0..q-1}^dims.
    unsigned pos = 0;
    while (pos < dims && ++digits[pos] == q) {
      digits[pos] = 0;
      ++pos;
    }
    if (pos == dims) break;
  }

  const std::vector<std::uint64_t>* best = nullptr;
  for (const auto& [norm, members] : spheres) {
    if (norm == 0) continue;  // the origin alone
    if (best == nullptr || members.size() > best->size()) best = &members;
  }
  if (best == nullptr) return {};
  std::vector<std::uint64_t> result = *best;
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<std::uint64_t> densest_ap_free_set(std::uint64_t m) {
  std::vector<std::uint64_t> best = ternary_ap_free_set(m);
  // Behrend's optimal dimension is ~ sqrt(log m / log 2); try a window
  // around it (the enumeration is O(m) per attempt, so this stays cheap).
  const double center = std::sqrt(std::log2(static_cast<double>(m) + 2));
  const unsigned lo = center > 2.0 ? static_cast<unsigned>(center) - 1 : 1;
  const unsigned hi = static_cast<unsigned>(center) + 2;
  for (unsigned dims = lo; dims <= hi; ++dims) {
    std::vector<std::uint64_t> candidate = behrend_set(m, dims);
    if (candidate.size() > best.size()) best = std::move(candidate);
  }
  assert(is_3ap_free(best));
  return best;
}

}  // namespace ds::rs
