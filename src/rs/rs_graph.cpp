#include "rs/rs_graph.h"

#include <algorithm>
#include <cassert>
#include <set>

#include "rs/ap_free.h"

namespace ds::rs {

using graph::Edge;
using graph::Graph;
using graph::Matching;
using graph::Vertex;

std::vector<Vertex> RsGraph::matching_vertices(std::size_t j) const {
  assert(j < matchings.size());
  std::vector<Vertex> vertices;
  vertices.reserve(2 * matchings[j].size());
  for (const Edge& e : matchings[j]) {
    vertices.push_back(e.u);
    vertices.push_back(e.v);
  }
  std::sort(vertices.begin(), vertices.end());
  return vertices;
}

RsGraph rs_from_ap_free(std::uint64_t m, std::span<const std::uint64_t> s) {
  assert(m >= 2);
  assert(!s.empty());
  assert(s.back() < m);
  // Blocks: B holds values x+s in [0, 2m-2], C holds values x+2s in
  // [0, 3m-3]; ids are B-value, then (2m-1) + C-value.
  const Vertex b_size = static_cast<Vertex>(2 * m - 1);
  const Vertex c_size = static_cast<Vertex>(3 * m - 2);
  const Vertex n = b_size + c_size;

  RsGraph rs;
  rs.matchings.reserve(m);
  std::vector<Edge> edges;
  edges.reserve(m * s.size());
  for (std::uint64_t x = 0; x < m; ++x) {
    Matching mx;
    mx.reserve(s.size());
    for (std::uint64_t sv : s) {
      const Vertex b = static_cast<Vertex>(x + sv);
      const Vertex c = static_cast<Vertex>(b_size + x + 2 * sv);
      mx.push_back(Edge{b, c});
      edges.push_back(Edge{b, c});
    }
    rs.matchings.push_back(std::move(mx));
  }
  rs.graph = Graph::from_edges(n, edges);
  // The (x, s) -> edge map is injective (s = c-b, x = 2b-c in values), so
  // no dedup can have occurred:
  assert(rs.graph.num_edges() == m * s.size());
  return rs;
}

RsGraph rs_graph(std::uint64_t m) {
  const std::vector<std::uint64_t> s = densest_ap_free_set(m);
  return rs_from_ap_free(m, s);
}

RsGraph book_rs(std::uint32_t r, std::uint32_t t) {
  assert(r >= 1 && t >= 1);
  const Vertex n = r + r * t;
  RsGraph rs;
  std::vector<Edge> edges;
  rs.matchings.reserve(t);
  for (std::uint32_t j = 0; j < t; ++j) {
    Matching mj;
    for (std::uint32_t i = 0; i < r; ++i) {
      const Vertex spine = i;
      const Vertex leaf = r + j * r + i;
      mj.push_back(Edge{spine, leaf});
      edges.push_back(Edge{spine, leaf});
    }
    rs.matchings.push_back(std::move(mj));
  }
  rs.graph = Graph::from_edges(n, edges);
  return rs;
}

RsGraph tripartite_rs(std::uint64_t q, std::span<const std::uint64_t> s) {
  assert(!s.empty());
  assert(q % 2 == 1 && "q must be odd (2s must be injective mod q)");
  assert(q > 3 * s.back() && "wrap-guard: q > 3 * max(S)");
  // Blocks: X = [0, q), Y = [q, 2q), Z = [2q, 3q).
  const auto x_id = [](std::uint64_t v) { return static_cast<Vertex>(v); };
  const auto y_id = [q](std::uint64_t v) { return static_cast<Vertex>(q + v); };
  const auto z_id = [q](std::uint64_t v) {
    return static_cast<Vertex>(2 * q + v);
  };

  RsGraph rs;
  std::vector<Edge> edges;
  edges.reserve(3 * q * s.size());
  // Family 1 (Y-Z): the link of x.  M_x = {(x+s, x+2s)}.
  for (std::uint64_t x = 0; x < q; ++x) {
    Matching m;
    for (std::uint64_t sv : s) {
      const Edge e{y_id((x + sv) % q), z_id((x + 2 * sv) % q)};
      m.push_back(e);
      edges.push_back(e);
    }
    rs.matchings.push_back(std::move(m));
  }
  // Family 2 (X-Y), indexed by c = x + 2s:  M'_c = {(c-2s, c-s)}.
  for (std::uint64_t c = 0; c < q; ++c) {
    Matching m;
    for (std::uint64_t sv : s) {
      const Edge e{x_id((c + 2 * q - 2 * sv) % q),
                   y_id((c + q - sv) % q)};
      m.push_back(e);
      edges.push_back(e);
    }
    rs.matchings.push_back(std::move(m));
  }
  // Family 3 (X-Z), indexed by b = x + s:  M''_b = {(b-s, b+s)}.
  for (std::uint64_t b = 0; b < q; ++b) {
    Matching m;
    for (std::uint64_t sv : s) {
      const Edge e{x_id((b + q - sv) % q), z_id((b + sv) % q)};
      m.push_back(e);
      edges.push_back(e);
    }
    rs.matchings.push_back(std::move(m));
  }
  rs.graph = Graph::from_edges(static_cast<Vertex>(3 * q), edges);
  assert(rs.graph.num_edges() == 3 * q * s.size());
  return rs;
}

RsGraph tripartite_rs(std::uint64_t q) {
  assert(q % 2 == 1);
  // S must fit below q/3 for the wrap-guard.
  std::vector<std::uint64_t> s = densest_ap_free_set((q - 1) / 3);
  // densest_ap_free_set gives values < (q-1)/3, so 3*max(S) < q - 1 < q.
  return tripartite_rs(q, s);
}

RsGraph cycle_rs(std::uint32_t t) {
  assert(t >= 3 && "antipodal pairs are induced only from C6 up");
  const Vertex n = 2 * t;
  RsGraph rs;
  std::vector<Edge> edges;
  // Cycle edges e_j = (j, j+1 mod n), j in [0, 2t).
  const auto cycle_edge = [n](std::uint32_t j) {
    return Edge{static_cast<Vertex>(j), static_cast<Vertex>((j + 1) % n)};
  };
  for (std::uint32_t j = 0; j < t; ++j) {
    Matching m{cycle_edge(j), cycle_edge(j + t)};
    edges.push_back(m[0]);
    edges.push_back(m[1]);
    rs.matchings.push_back(std::move(m));
  }
  rs.graph = Graph::from_edges(n, edges);
  return rs;
}

bool verify_rs(const RsGraph& rs) {
  if (rs.matchings.empty()) return false;
  const std::size_t r = rs.matchings.front().size();
  std::set<std::pair<Vertex, Vertex>> seen;
  std::size_t total = 0;
  for (const Matching& m : rs.matchings) {
    if (m.size() != r) return false;
    if (!graph::is_valid_matching(rs.graph, m)) return false;
    for (const Edge& e : m) {
      const Edge ne = e.normalized();
      if (!seen.insert({ne.u, ne.v}).second) return false;  // not disjoint
      ++total;
    }
    // Induced: the only graph edges between endpoints of m are m itself.
    const std::vector<Vertex> vertices = [&m]() {
      std::vector<Vertex> v;
      for (const Edge& e : m) {
        v.push_back(e.u);
        v.push_back(e.v);
      }
      std::sort(v.begin(), v.end());
      return v;
    }();
    std::size_t internal_edges = 0;
    for (Vertex u : vertices) {
      for (Vertex w : rs.graph.neighbors(u)) {
        if (u < w && std::binary_search(vertices.begin(), vertices.end(), w)) {
          ++internal_edges;
        }
      }
    }
    if (internal_edges != m.size()) return false;
  }
  return total == rs.graph.num_edges();  // partition covers everything
}

RsParameters rs_parameters(std::uint64_t m) {
  const std::vector<std::uint64_t> s = densest_ap_free_set(m);
  return {5 * m - 3, s.size(), m};
}

}  // namespace ds::rs
