// Sets of integers with no 3-term arithmetic progression.
//
// Proposition 2.1's Ruzsa-Szemeredi graphs are built from a dense 3-AP-free
// subset of [m].  Two constructions are provided:
//
//  * the ternary ("no digit 2") greedy set — simple, good for small m,
//    density m^{log_3 2 - 1};
//  * Behrend's sphere construction [Behrend 1946] — the one the paper
//    cites, density 1/e^{Theta(sqrt(log m))}, asymptotically far denser.
//
// `densest_ap_free_set` returns the better of the two for a given m, which
// is what the RS-graph builder consumes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace ds::rs {

/// True iff no three elements a < b < c of the set satisfy a + c == 2b.
/// `set` must be strictly increasing.
[[nodiscard]] bool is_3ap_free(std::span<const std::uint64_t> set);

/// Elements of [0, m) with only digits {0, 1} in base 3, increasing.
[[nodiscard]] std::vector<std::uint64_t> ternary_ap_free_set(std::uint64_t m);

/// Behrend's construction restricted to [0, m), with `dims` dimensions:
/// base-(2q-1) encodings of integer points on the densest sphere in
/// {0..q-1}^dims.  Increasing.
[[nodiscard]] std::vector<std::uint64_t> behrend_set(std::uint64_t m,
                                                     unsigned dims);

/// Behrend with the dimension chosen near sqrt(log m) and tuned by search,
/// or the ternary set if that is denser (small m). Increasing, 3-AP-free.
[[nodiscard]] std::vector<std::uint64_t> densest_ap_free_set(std::uint64_t m);

}  // namespace ds::rs
