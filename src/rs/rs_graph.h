// Ruzsa-Szemeredi graphs: graphs whose edge set partitions into t induced
// matchings of size r each (Section 2.2 of the paper).
//
// Two constructions:
//
//  * `rs_from_ap_free` — the Behrend-based construction behind
//    Proposition 2.1.  Given a 3-AP-free S subset of [m], build the
//    bipartite graph on blocks B (size 2m-1) and C (size 3m-2) with an
//    edge (x+s, x+2s) for every x in [m], s in S.  The matchings
//    M_x = {(x+s, x+2s) : s in S} partition the edges; 3-AP-freeness of S
//    makes each M_x induced.  Parameters: N = 5m-3 vertices, t = m
//    matchings of size r = |S| = m / e^{Theta(sqrt(log m))}.  (The paper
//    states t = N/3; our block layout gives t = N/5 — a constant factor
//    absorbed by the Theta in r and irrelevant to every experiment.)
//
//  * `book_rs` — a tiny non-dense (r,t)-RS "book": spine a_1..a_r and one
//    page of leaves per matching.  Used for the exactly-enumerable
//    instances in the information-accounting experiments.
//
// `verify_rs` brute-force checks the full RS property and is used by the
// tests against both constructions.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/matching.h"

namespace ds::rs {

struct RsGraph {
  graph::Graph graph;
  std::vector<graph::Matching> matchings;  // the induced partition, |M_j| = r

  [[nodiscard]] std::uint32_t num_vertices() const {
    return graph.num_vertices();
  }
  [[nodiscard]] std::size_t t() const { return matchings.size(); }
  [[nodiscard]] std::size_t r() const {
    return matchings.empty() ? 0 : matchings.front().size();
  }

  /// The 2r vertices incident on matching j (the paper's V* when j = j*).
  [[nodiscard]] std::vector<graph::Vertex> matching_vertices(
      std::size_t j) const;
};

/// Behrend-based construction from an explicit 3-AP-free set S in [0, m).
/// Requires m >= 2 and S non-empty, strictly increasing, max(S) < m.
[[nodiscard]] RsGraph rs_from_ap_free(std::uint64_t m,
                                      std::span<const std::uint64_t> s);

/// Construction with the densest available AP-free set for the given m.
[[nodiscard]] RsGraph rs_graph(std::uint64_t m);

/// The (r, t) "book": N = r + r*t vertices, matching j joins spine vertex
/// i to leaf (j, i).  Valid RS graph for any r, t >= 1 (but sparse).
[[nodiscard]] RsGraph book_rs(std::uint32_t r, std::uint32_t t);

/// The original tripartite Ruzsa-Szemeredi construction, in modular form:
/// vertex set X union Y union Z, each a copy of Z_q, with the triangle
/// (x, x+s, x+2s) (mod q) for every x in Z_q and s in a 3-AP-free
/// S subset of [0, q/3).  Each of the three edge families partitions into
/// q induced matchings (the links), giving t = 3q = N matchings of size
/// r = |S| — the modular wrap removes the boundary effects that make the
/// integer version's matchings unequal.  Requires q > 3 * max(S).
[[nodiscard]] RsGraph tripartite_rs(std::uint64_t q,
                                    std::span<const std::uint64_t> s);

/// Tripartite construction with the densest available AP-free set.
[[nodiscard]] RsGraph tripartite_rs(std::uint64_t q);

/// The cycle C_{2t} as an (r=2, t) RS graph: matching j pairs edge j with
/// its antipodal edge j+t (induced for t >= 3).  The smallest RS family
/// in which EVERY vertex has two matching slots — so no player's degree
/// pins its edges down (alternating survival patterns are degree-
/// indistinguishable), which makes it the right substrate for probing
/// degree-oblivious protocol classes.
[[nodiscard]] RsGraph cycle_rs(std::uint32_t t);

/// Full check of the RS property: matchings are pairwise edge-disjoint,
/// their union is exactly the edge set, each is a matching of the common
/// size, and each is induced (no non-matching edge joins two of its
/// endpoints).  O(t * (r^2 + m)) — test/bench use only.
[[nodiscard]] bool verify_rs(const RsGraph& rs);

/// Achieved Proposition 2.1 parameters for a target vertex budget.
struct RsParameters {
  std::uint64_t n;  // vertices actually used
  std::uint64_t r;
  std::uint64_t t;
};
[[nodiscard]] RsParameters rs_parameters(std::uint64_t m);

}  // namespace ds::rs
