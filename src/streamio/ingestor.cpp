#include "streamio/ingestor.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <memory>
#include <thread>
#include <utility>

#include "obs/obs.h"

namespace ds::streamio {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// stream.ingest.* counters/histograms (docs/OBSERVABILITY.md).  This
/// file is the single owner of the "stream." series prefix
/// (tools/lint/obs_owners.toml); the obs audit checks metrics-off
/// ingestion is bit-identical (tests/audit/obs_audit_test.cpp).
struct IngestMetrics {
  obs::Counter& updates = obs::counter("stream.ingest.updates");
  obs::Counter& inserts = obs::counter("stream.ingest.inserts");
  obs::Counter& deletes = obs::counter("stream.ingest.deletes");
  obs::Counter& batches = obs::counter("stream.ingest.batches");
  obs::Counter& bytes_read = obs::counter("stream.ingest.bytes_read");
  obs::Counter& snapshots = obs::counter("stream.ingest.snapshots");
  obs::Histogram& batch_us = obs::histogram("stream.ingest.batch_us");
  obs::Histogram& snapshot_us = obs::histogram("stream.ingest.snapshot_us");
};

IngestMetrics& metrics() {
  static IngestMetrics m;
  return m;
}

/// One half of an update, routed to the shard owning vertex `v`.
struct HalfEdge {
  graph::Vertex v;  // owner (the sketch this delta lands in)
  graph::Vertex w;  // other endpoint
  std::int8_t scale;
};

/// At most one snapshot decode runs in the background; joining before
/// starting the next bounds resident state to 2x (live + one copy).
struct PendingSnapshot {
  std::thread thread;
  std::unique_ptr<QuerySnapshot> slot;

  void start(const stream::DynamicConnectivity& state,
             std::uint64_t after_updates, bool async) {
    // The copy is the only part that stalls ingestion.
    auto copy = std::make_unique<stream::DynamicConnectivity>(state);
    slot = std::make_unique<QuerySnapshot>();
    slot->after_updates = after_updates;
    QuerySnapshot* out = slot.get();
    auto decode = [copy = std::move(copy), out] {
      const auto t0 = Clock::now();
      out->components = copy->query_components();
      out->decode_ms = ms_since(t0);
    };
    if (async) {
      thread = std::thread(std::move(decode));
    } else {
      decode();
    }
  }

  void collect(std::vector<QuerySnapshot>& into) {
    if (thread.joinable()) thread.join();
    if (slot) {
      metrics().snapshots.increment();
      metrics().snapshot_us.record(
          static_cast<std::uint64_t>(slot->decode_ms * 1e3));
      into.push_back(*slot);
      slot.reset();
    }
  }
};

}  // namespace

std::size_t ingest_shard_count(graph::Vertex n) noexcept {
  // Mirrors ThreadPool::chunk_count: min(n, 64) fixed shards.
  return n == 0 ? 1 : std::min<std::size_t>(n, 64);
}

std::size_t ingest_shard_of(graph::Vertex n, std::size_t shards,
                            graph::Vertex v) noexcept {
  // The inverse of ThreadPool::chunk_bounds' partition of [0, n): the
  // first `rem` shards own base+1 vertices, the rest own base.
  const std::size_t base = n / shards;
  const std::size_t rem = n % shards;
  const std::size_t boundary = (base + 1) * rem;
  if (v < boundary) return v / (base + 1);
  return rem + (v - boundary) / base;
}

IngestReport ingest(UpdateSource& source,
                    stream::DynamicConnectivity& state,
                    const IngestOptions& options) {
  assert(source.num_vertices() == state.num_vertices());
  assert(options.batch_updates > 0);
  IngestMetrics& m = metrics();
  IngestReport report;

  const graph::Vertex n = state.num_vertices();
  const std::size_t shards = ingest_shard_count(n);
  std::vector<std::vector<HalfEdge>> buckets;
  if (!options.serial) buckets.resize(shards);

  std::vector<stream::EdgeUpdate> batch(options.batch_updates);
  std::uint64_t next_query = options.query_interval > 0
                                 ? options.query_interval
                                 : UINT64_MAX;
  PendingSnapshot pending;
  std::uint64_t bytes_seen = 0;

  const auto start = Clock::now();
  for (;;) {
    const std::size_t got = source.next_batch(batch);
    if (got == 0) break;
    const bool timed = obs::metrics_enabled();
    const auto batch_t0 = timed ? Clock::now() : Clock::time_point{};

    std::uint64_t batch_inserts = 0;
    if (options.serial) {
      for (std::size_t i = 0; i < got; ++i) {
        state.apply(batch[i]);
        if (batch[i].insert) ++batch_inserts;
      }
    } else {
      // Bucket by owner vertex in stream order (driver thread), then
      // apply every bucket under one parallel_for.
      for (std::size_t i = 0; i < got; ++i) {
        const stream::EdgeUpdate& u = batch[i];
        const std::int8_t scale = u.insert ? +1 : -1;
        if (u.insert) ++batch_inserts;
        buckets[ingest_shard_of(n, shards, u.edge.u)].push_back(
            {u.edge.u, u.edge.v, scale});
        buckets[ingest_shard_of(n, shards, u.edge.v)].push_back(
            {u.edge.v, u.edge.u, scale});
      }
      parallel::parallel_for(options.pool, 0, shards, [&](std::size_t s) {
        for (const HalfEdge& h : buckets[s]) {
          state.add_half_edge(h.v, h.w, h.scale);
        }
      });
      for (auto& bucket : buckets) bucket.clear();
    }

    report.updates += got;
    report.inserts += batch_inserts;
    report.deletes += got - batch_inserts;
    ++report.batches;
    m.updates.add(got);
    m.inserts.add(batch_inserts);
    m.deletes.add(got - batch_inserts);
    m.batches.increment();
    const std::uint64_t bytes_now = source.bytes_read();
    m.bytes_read.add(bytes_now - bytes_seen);
    bytes_seen = bytes_now;
    if (timed) {
      m.batch_us.record(static_cast<std::uint64_t>(
          ms_since(batch_t0) * 1e3));
    }

    if (report.updates >= next_query) {
      pending.collect(report.snapshots);
      pending.start(state, report.updates, options.async_queries);
      while (next_query <= report.updates) {
        next_query += options.query_interval;
      }
    }
  }
  pending.collect(report.snapshots);

  report.wall_ms = ms_since(start);
  report.bytes_read = bytes_seen;
  report.status = source.status();
  return report;
}

}  // namespace ds::streamio
