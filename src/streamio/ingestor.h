// The stream ingestion driver: batches from any UpdateSource, sharded
// across the deterministic thread pool by owner vertex, with interleaved
// connectivity queries against the live sketch state.
//
// How parallel ingestion stays bit-identical to the serial
// DynamicConnectivity::apply path (docs/STREAMING.md):
//
//   * an update {u, v} splits into two half-edges, one owned by each
//     endpoint; shard s owns a fixed contiguous vertex range (the same
//     partition arithmetic as ThreadPool::chunk_bounds, a function of n
//     only — never of the thread count);
//   * each batch is bucketed by owner shard in stream order on the
//     driver thread (the get_desired_updates_per_batch idiom from
//     GraphStreamingCC: group deltas per vertex before touching
//     sketches), then the buckets run under one parallel_for — every
//     sketch word is written by exactly one shard;
//   * sketch updates are field additions, which commute and associate
//     exactly (no floating point), so any bucket interleave lands the
//     same words the serial order does.  The equivalence suite
//     (tests/streamio/ingestor_test.cpp) audits the hash anyway.
//
// Queries never stall ingestion beyond the snapshot copy: the sketch
// state is copied on the driver thread, and the Boruvka decode runs on
// a background thread while ingestion continues (bounded to one
// in-flight snapshot so memory stays at 2x state).
#pragma once

#include <cstdint>
#include <vector>

#include "parallel/thread_pool.h"
#include "streamio/binary_stream.h"

namespace ds::streamio {

struct IngestOptions {
  /// Updates pulled from the source per batch (the bucketing window).
  std::size_t batch_updates = std::size_t{1} << 16;
  /// Take a components snapshot every `query_interval` updates, at
  /// batch granularity (first batch boundary past each multiple).
  /// 0 disables interleaved queries.
  std::uint64_t query_interval = 0;
  /// Pool for the sharded apply; null means the global pool.
  parallel::ThreadPool* pool = nullptr;
  /// True: bypass sharding entirely and run the plain serial
  /// DynamicConnectivity::apply loop (the audit baseline).
  bool serial = false;
  /// False: decode snapshots inline on the driver thread (determinism
  /// of the report is unaffected; this only moves the decode cost).
  bool async_queries = true;
};

struct QuerySnapshot {
  std::uint64_t after_updates = 0;  // stream position of the snapshot
  std::uint32_t components = 0;
  double decode_ms = 0.0;
};

struct IngestReport {
  std::uint64_t updates = 0;
  std::uint64_t inserts = 0;
  std::uint64_t deletes = 0;
  std::uint64_t batches = 0;
  std::uint64_t bytes_read = 0;
  std::vector<QuerySnapshot> snapshots;
  double wall_ms = 0.0;
  /// kEnd on a clean drain; any other value is the source's latched
  /// error and ingestion stopped at the last fully-applied batch.
  ReadStatus status = ReadStatus::kEnd;

  [[nodiscard]] double updates_per_sec() const noexcept {
    return wall_ms > 0.0 ? static_cast<double>(updates) / (wall_ms / 1e3)
                         : 0.0;
  }
};

/// Drain `source` into `state`.  Requires source.num_vertices() ==
/// state.num_vertices().
[[nodiscard]] IngestReport ingest(UpdateSource& source,
                                  stream::DynamicConnectivity& state,
                                  const IngestOptions& options = {});

/// The fixed vertex partition driving the sharded apply: shard count
/// and owner are functions of n alone, mirroring ThreadPool's
/// chunk_count/chunk_bounds split (asserted in ingestor_test.cpp).
[[nodiscard]] std::size_t ingest_shard_count(graph::Vertex n) noexcept;
[[nodiscard]] std::size_t ingest_shard_of(graph::Vertex n,
                                          std::size_t shards,
                                          graph::Vertex v) noexcept;

}  // namespace ds::streamio
