// Synthetic turnstile update streams at n >= 10^6, generated in fixed
// blocks without ever materializing a graph::Graph.
//
// Determinism contract (docs/STREAMING.md): the update sequence is a
// pure function of the GeneratorConfig.  Block b of kBlockEdges edges
// is drawn from Rng(derive_seed(seed, b)) — counter-based, exactly the
// trial-loop idiom of docs/PARALLELISM.md — so the sequence does not
// depend on the consumer's batch size, on how many blocks were
// generated before, or on the thread count of whatever ingests it.
// Replaying a config always yields byte-identical updates.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/generators.h"
#include "streamio/binary_stream.h"

namespace ds::streamio {

enum class Family : std::uint8_t { kRmat, kChungLu };

[[nodiscard]] constexpr const char* to_string(Family family) noexcept {
  return family == Family::kRmat ? "rmat" : "chung_lu";
}

struct GeneratorConfig {
  Family family = Family::kRmat;
  graph::Vertex n = 0;
  std::uint64_t edges = 0;       // inserted edges across the whole stream
  /// Each inserted edge is independently re-deleted later in its own
  /// block with this probability, so deletions always cancel a real
  /// prior insertion (the turnstile regime the sketches absorb).
  double delete_fraction = 0.0;
  std::uint64_t seed = 1;
  graph::RmatParams rmat{};
  double chung_lu_exponent = 2.5;  // power-law tail of the weight table
};

/// Edges generated per derive_seed block.  Fixed — never derived from
/// the consumer's batch size — because it is part of the determinism
/// contract above.
inline constexpr std::uint64_t kBlockEdges = std::uint64_t{1} << 15;

class GeneratorStream final : public UpdateSource {
 public:
  explicit GeneratorStream(const GeneratorConfig& config);

  [[nodiscard]] graph::Vertex num_vertices() const noexcept override {
    return config_.n;
  }
  [[nodiscard]] std::size_t next_batch(
      std::span<stream::EdgeUpdate> out) override;
  [[nodiscard]] ReadStatus status() const noexcept override;

  [[nodiscard]] const GeneratorConfig& config() const noexcept {
    return config_;
  }
  /// Updates handed out so far (inserts + deletes).
  [[nodiscard]] std::uint64_t updates_emitted() const noexcept {
    return emitted_;
  }

  /// Restart the stream from block 0; the replay is byte-identical.
  void rewind() noexcept;

 private:
  void fill_block();

  GeneratorConfig config_;
  std::optional<graph::PowerLawWeights> weights_;  // kChungLu only
  std::uint64_t next_block_ = 0;
  std::uint64_t blocks_total_ = 0;
  std::uint64_t emitted_ = 0;
  std::vector<stream::EdgeUpdate> block_;
  std::size_t block_pos_ = 0;
};

}  // namespace ds::streamio
