#include "streamio/generator_stream.h"

#include <algorithm>
#include <cassert>

namespace ds::streamio {

GeneratorStream::GeneratorStream(const GeneratorConfig& config)
    : config_(config) {
  assert(config_.n >= 2);
  assert(config_.delete_fraction >= 0.0 && config_.delete_fraction <= 1.0);
  if (config_.family == Family::kChungLu) {
    weights_.emplace(config_.n, config_.chung_lu_exponent);
  }
  blocks_total_ = (config_.edges + kBlockEdges - 1) / kBlockEdges;
  block_.reserve(static_cast<std::size_t>(
      kBlockEdges + kBlockEdges / 4 + 16));
}

void GeneratorStream::rewind() noexcept {
  next_block_ = 0;
  emitted_ = 0;
  block_.clear();
  block_pos_ = 0;
}

ReadStatus GeneratorStream::status() const noexcept {
  const bool more = block_pos_ < block_.size() || next_block_ < blocks_total_;
  return more ? ReadStatus::kOk : ReadStatus::kEnd;
}

void GeneratorStream::fill_block() {
  block_.clear();
  block_pos_ = 0;
  if (next_block_ >= blocks_total_) return;

  const std::uint64_t lo = next_block_ * kBlockEdges;
  const std::uint64_t hi = std::min(lo + kBlockEdges, config_.edges);
  const std::uint64_t count = hi - lo;
  util::Rng rng(util::derive_seed(config_.seed, next_block_));
  ++next_block_;

  // Draw the block's edges first, then (from the same stream, after all
  // edge draws) the deletion plan — the split keeps the edge sequence
  // identical whether or not deletions are enabled.
  std::vector<graph::Edge> edges;
  edges.reserve(count);
  const auto sink = [&](graph::Edge e) { edges.push_back(e); };
  if (config_.family == Family::kRmat) {
    graph::rmat_edges(config_.n, count, config_.rmat, rng, sink);
  } else {
    graph::chung_lu_edges(*weights_, count, rng, sink);
  }

  // Interleave: insert i gets sort key 2i; a deleted edge i adds a
  // delete with key 2j+1 for uniform j in [i, count), which always sorts
  // after its own insert but lands anywhere in the rest of the block.
  struct Keyed {
    std::uint64_t key;
    stream::EdgeUpdate update;
  };
  std::vector<Keyed> keyed;
  keyed.reserve(edges.size() + edges.size() / 4 + 1);
  for (std::uint64_t i = 0; i < edges.size(); ++i) {
    keyed.push_back({2 * i, {edges[i], true}});
  }
  if (config_.delete_fraction > 0.0) {
    for (std::uint64_t i = 0; i < edges.size(); ++i) {
      if (!rng.next_bernoulli(config_.delete_fraction)) continue;
      const std::uint64_t j = i + rng.next_below(edges.size() - i);
      keyed.push_back({2 * j + 1, {edges[i], false}});
    }
  }
  std::stable_sort(keyed.begin(), keyed.end(),
                   [](const Keyed& a, const Keyed& b) {
                     return a.key < b.key;
                   });
  for (const Keyed& k : keyed) block_.push_back(k.update);
}

std::size_t GeneratorStream::next_batch(std::span<stream::EdgeUpdate> out) {
  std::size_t filled = 0;
  while (filled < out.size()) {
    if (block_pos_ == block_.size()) {
      if (next_block_ >= blocks_total_) break;
      fill_block();
      if (block_.empty()) break;
    }
    const std::size_t take =
        std::min(out.size() - filled, block_.size() - block_pos_);
    for (std::size_t i = 0; i < take; ++i) {
      out[filled + i] = block_[block_pos_ + i];
    }
    filled += take;
    block_pos_ += take;
  }
  emitted_ += filled;
  return filled;
}

}  // namespace ds::streamio
