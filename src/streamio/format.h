// The versioned binary turnstile edge-stream format (docs/STREAMING.md).
//
// A stream file is a fixed 32-byte header followed by fixed-width 9-byte
// update records, everything little-endian:
//
//   header:  magic  u32 = 0x52545344 ("DSTR")
//            version u32 = 1
//            n       u64   vertex-id space [0, n), n >= 2
//            updates u64   record count (patched by the writer's finish())
//            seed    u64   generator seed hint, 0 = unspecified
//   record:  op u8 (0 = insert, 1 = delete), u u32, v u32
//
// Fixed-width records are the point: the reader's inner loop is a bounds
// check and two loads per update — no varint branches — and a file's
// size pins its record count, so truncation is detectable without a
// trailer.  Every malformed-input case maps to a distinguished
// ReadStatus (tests/streamio/format_test.cpp covers each one).
#pragma once

#include <cstddef>
#include <cstdint>

#include "stream/dynamic_stream.h"

namespace ds::streamio {

inline constexpr std::uint32_t kMagic = 0x52545344;  // "DSTR" on disk
inline constexpr std::uint32_t kVersion = 1;
inline constexpr std::size_t kHeaderBytes = 32;
inline constexpr std::size_t kRecordBytes = 9;

struct StreamHeader {
  graph::Vertex n = 0;         // stored as u64 on disk
  std::uint64_t updates = 0;   // number of records that follow
  std::uint64_t seed = 0;      // provenance hint only, never consumed
};

/// Everything a read can report.  kOk/kEnd are the two success states;
/// the rest are distinguished failures — a reader latches the first one
/// and refuses further batches.
enum class ReadStatus : std::uint8_t {
  kOk = 0,          // more records may follow
  kEnd,             // all declared records delivered
  kBadMagic,        // first four bytes are not "DSTR"
  kBadVersion,      // unknown format version
  kBadHeader,       // header fields invalid (n < 2, or n >= 2^32)
  kTruncatedHeader, // file ends inside the 32-byte header
  kTruncatedRecord, // file ends inside a record, or before the declared count
  kBadOp,           // record op byte outside {0, 1}
  kBadVertex,       // endpoint >= n, or a self-loop
  kIoError,         // the underlying stream failed outright
};

[[nodiscard]] constexpr const char* to_string(ReadStatus status) noexcept {
  switch (status) {
    case ReadStatus::kOk: return "ok";
    case ReadStatus::kEnd: return "end";
    case ReadStatus::kBadMagic: return "bad-magic";
    case ReadStatus::kBadVersion: return "bad-version";
    case ReadStatus::kBadHeader: return "bad-header";
    case ReadStatus::kTruncatedHeader: return "truncated-header";
    case ReadStatus::kTruncatedRecord: return "truncated-record";
    case ReadStatus::kBadOp: return "bad-op";
    case ReadStatus::kBadVertex: return "bad-vertex";
    case ReadStatus::kIoError: return "io-error";
  }
  return "unknown";
}

[[nodiscard]] constexpr bool is_error(ReadStatus status) noexcept {
  return status != ReadStatus::kOk && status != ReadStatus::kEnd;
}

/// Serialize `update` into exactly kRecordBytes at `out`.
inline void encode_record(const stream::EdgeUpdate& update,
                          std::uint8_t* out) noexcept {
  out[0] = update.insert ? 0 : 1;
  const graph::Vertex u = update.edge.u;
  const graph::Vertex v = update.edge.v;
  out[1] = static_cast<std::uint8_t>(u);
  out[2] = static_cast<std::uint8_t>(u >> 8);
  out[3] = static_cast<std::uint8_t>(u >> 16);
  out[4] = static_cast<std::uint8_t>(u >> 24);
  out[5] = static_cast<std::uint8_t>(v);
  out[6] = static_cast<std::uint8_t>(v >> 8);
  out[7] = static_cast<std::uint8_t>(v >> 16);
  out[8] = static_cast<std::uint8_t>(v >> 24);
}

/// Parse kRecordBytes at `in` and validate against the id space [0, n).
/// Returns kOk and fills `update`, or the distinguished failure.
inline ReadStatus decode_record(const std::uint8_t* in, graph::Vertex n,
                                stream::EdgeUpdate& update) noexcept {
  if (in[0] > 1) return ReadStatus::kBadOp;
  const graph::Vertex u = static_cast<graph::Vertex>(in[1]) |
                          static_cast<graph::Vertex>(in[2]) << 8 |
                          static_cast<graph::Vertex>(in[3]) << 16 |
                          static_cast<graph::Vertex>(in[4]) << 24;
  const graph::Vertex v = static_cast<graph::Vertex>(in[5]) |
                          static_cast<graph::Vertex>(in[6]) << 8 |
                          static_cast<graph::Vertex>(in[7]) << 16 |
                          static_cast<graph::Vertex>(in[8]) << 24;
  if (u >= n || v >= n || u == v) return ReadStatus::kBadVertex;
  update.edge = {u, v};
  update.insert = in[0] == 0;
  return ReadStatus::kOk;
}

}  // namespace ds::streamio
