// Buffered file-backed turnstile stream IO, plus the UpdateSource
// abstraction every ingestion driver consumes (docs/STREAMING.md).
//
// The writer/reader pair follows GraphStreamingCC's binary_file_stream
// idiom: a compact fixed-width on-disk format, large aligned buffer
// reads, and batch-granular delivery so the per-update cost is a couple
// of loads — the file system, not the parser, is the bottleneck.
#pragma once

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "streamio/format.h"

namespace ds::streamio {

/// A sequential producer of turnstile updates.  Implementations:
/// BinaryStreamReader (file-backed), GeneratorStream (synthetic R-MAT /
/// Chung-Lu at n >= 10^6), MemorySource (tests and benches).
class UpdateSource {
 public:
  virtual ~UpdateSource() = default;

  /// The vertex-id space: every delivered update has endpoints < this.
  [[nodiscard]] virtual graph::Vertex num_vertices() const noexcept = 0;

  /// Fill up to out.size() updates, returning how many were written.
  /// 0 means the stream is over — inspect status() to distinguish a
  /// clean kEnd from a latched error.
  [[nodiscard]] virtual std::size_t next_batch(
      std::span<stream::EdgeUpdate> out) = 0;

  [[nodiscard]] virtual ReadStatus status() const noexcept {
    return ReadStatus::kOk;
  }

  /// Bytes consumed from backing storage so far (0 for in-memory
  /// sources) — the ingestor's stream.ingest.bytes_read counter.
  [[nodiscard]] virtual std::uint64_t bytes_read() const noexcept {
    return 0;
  }
};

/// Writes a stream file: header up front, records appended through an
/// internal buffer, and the header's update count patched in finish()
/// (so producers need not know the count in advance).
class BinaryStreamWriter {
 public:
  /// Opens `path` for writing and emits the header with a zero update
  /// count.  n >= 2; `seed` is a provenance hint stored verbatim.
  BinaryStreamWriter(const std::string& path, graph::Vertex n,
                     std::uint64_t seed = 0);
  ~BinaryStreamWriter();

  BinaryStreamWriter(const BinaryStreamWriter&) = delete;
  BinaryStreamWriter& operator=(const BinaryStreamWriter&) = delete;

  void append(const stream::EdgeUpdate& update);
  void append(std::span<const stream::EdgeUpdate> updates);

  /// Flush buffered records and patch the header's update count.
  /// Idempotent.  Returns false if any write failed.
  bool finish();

  [[nodiscard]] std::uint64_t updates_written() const noexcept {
    return count_;
  }
  [[nodiscard]] bool ok() const noexcept { return out_.good(); }

 private:
  void flush_buffer();

  std::ofstream out_;
  std::vector<std::uint8_t> buffer_;
  std::uint64_t count_ = 0;
  bool finished_ = false;
};

/// Streams a file written by BinaryStreamWriter.  The constructor
/// validates the header eagerly; next_batch() validates each record and
/// latches the first failure (status() stays on it, later calls return
/// 0).  Truncation is caught both against the declared count and
/// against short reads mid-record.
class BinaryStreamReader final : public UpdateSource {
 public:
  explicit BinaryStreamReader(const std::string& path,
                              std::size_t buffer_bytes = 1 << 16);

  [[nodiscard]] const StreamHeader& header() const noexcept {
    return header_;
  }
  [[nodiscard]] graph::Vertex num_vertices() const noexcept override {
    return header_.n;
  }
  [[nodiscard]] std::size_t next_batch(
      std::span<stream::EdgeUpdate> out) override;
  [[nodiscard]] ReadStatus status() const noexcept override {
    return status_;
  }
  [[nodiscard]] std::uint64_t bytes_read() const noexcept override {
    return bytes_read_;
  }
  [[nodiscard]] std::uint64_t updates_delivered() const noexcept {
    return delivered_;
  }

 private:
  /// Top up buffer_ from the file; keeps any partial record tail.
  void refill();

  std::ifstream in_;
  StreamHeader header_;
  ReadStatus status_ = ReadStatus::kOk;
  std::vector<std::uint8_t> buffer_;
  std::size_t buf_pos_ = 0;   // consumed prefix of buffer_
  std::size_t buf_len_ = 0;   // valid bytes in buffer_
  std::uint64_t delivered_ = 0;
  std::uint64_t bytes_read_ = 0;
  bool file_exhausted_ = false;
};

/// An UpdateSource over an in-memory update vector (the replay source
/// for equivalence tests and benches: every run sees byte-identical
/// input with zero generation or IO cost inside the measured window).
class MemorySource final : public UpdateSource {
 public:
  MemorySource(graph::Vertex n, std::span<const stream::EdgeUpdate> updates)
      : n_(n), updates_(updates) {}

  [[nodiscard]] graph::Vertex num_vertices() const noexcept override {
    return n_;
  }
  [[nodiscard]] std::size_t next_batch(
      std::span<stream::EdgeUpdate> out) override {
    const std::size_t take =
        std::min(out.size(), updates_.size() - pos_);
    for (std::size_t i = 0; i < take; ++i) out[i] = updates_[pos_ + i];
    pos_ += take;
    return take;
  }
  [[nodiscard]] ReadStatus status() const noexcept override {
    return pos_ < updates_.size() ? ReadStatus::kOk : ReadStatus::kEnd;
  }
  void rewind() noexcept { pos_ = 0; }

 private:
  graph::Vertex n_;
  std::span<const stream::EdgeUpdate> updates_;
  std::size_t pos_ = 0;
};

}  // namespace ds::streamio
