#include "streamio/binary_stream.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace ds::streamio {

namespace {

constexpr std::size_t kWriterBufferBytes = std::size_t{1} << 16;

void put_u32(std::uint8_t* out, std::uint32_t v) noexcept {
  out[0] = static_cast<std::uint8_t>(v);
  out[1] = static_cast<std::uint8_t>(v >> 8);
  out[2] = static_cast<std::uint8_t>(v >> 16);
  out[3] = static_cast<std::uint8_t>(v >> 24);
}

void put_u64(std::uint8_t* out, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}

std::uint32_t get_u32(const std::uint8_t* in) noexcept {
  return static_cast<std::uint32_t>(in[0]) |
         static_cast<std::uint32_t>(in[1]) << 8 |
         static_cast<std::uint32_t>(in[2]) << 16 |
         static_cast<std::uint32_t>(in[3]) << 24;
}

std::uint64_t get_u64(const std::uint8_t* in) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(in[i]) << (8 * i);
  }
  return v;
}

}  // namespace

// ---------------------------------------------------------------------
// BinaryStreamWriter
// ---------------------------------------------------------------------

BinaryStreamWriter::BinaryStreamWriter(const std::string& path,
                                       graph::Vertex n, std::uint64_t seed)
    : out_(path, std::ios::binary | std::ios::trunc) {
  assert(n >= 2);
  buffer_.reserve(kWriterBufferBytes + kRecordBytes);
  std::uint8_t header[kHeaderBytes];
  put_u32(header, kMagic);
  put_u32(header + 4, kVersion);
  put_u64(header + 8, n);
  put_u64(header + 16, 0);  // update count, patched by finish()
  put_u64(header + 24, seed);
  out_.write(reinterpret_cast<const char*>(header), kHeaderBytes);
}

BinaryStreamWriter::~BinaryStreamWriter() { (void)finish(); }

void BinaryStreamWriter::append(const stream::EdgeUpdate& update) {
  assert(!finished_);
  const std::size_t at = buffer_.size();
  buffer_.resize(at + kRecordBytes);
  encode_record(update, buffer_.data() + at);
  ++count_;
  if (buffer_.size() >= kWriterBufferBytes) flush_buffer();
}

void BinaryStreamWriter::append(
    std::span<const stream::EdgeUpdate> updates) {
  for (const stream::EdgeUpdate& u : updates) append(u);
}

void BinaryStreamWriter::flush_buffer() {
  if (buffer_.empty()) return;
  out_.write(reinterpret_cast<const char*>(buffer_.data()),
             static_cast<std::streamsize>(buffer_.size()));
  buffer_.clear();
}

bool BinaryStreamWriter::finish() {
  if (finished_) return out_.good();
  finished_ = true;
  flush_buffer();
  std::uint8_t count_bytes[8];
  put_u64(count_bytes, count_);
  out_.seekp(16, std::ios::beg);
  out_.write(reinterpret_cast<const char*>(count_bytes), 8);
  out_.flush();
  return out_.good();
}

// ---------------------------------------------------------------------
// BinaryStreamReader
// ---------------------------------------------------------------------

BinaryStreamReader::BinaryStreamReader(const std::string& path,
                                       std::size_t buffer_bytes)
    : in_(path, std::ios::binary) {
  buffer_.resize(std::max(buffer_bytes, kRecordBytes * 2));
  if (!in_.good()) {
    status_ = ReadStatus::kIoError;
    return;
  }
  std::uint8_t header[kHeaderBytes];
  in_.read(reinterpret_cast<char*>(header), kHeaderBytes);
  const auto got = static_cast<std::size_t>(in_.gcount());
  bytes_read_ += got;
  if (got < kHeaderBytes) {
    status_ = ReadStatus::kTruncatedHeader;
    return;
  }
  if (get_u32(header) != kMagic) {
    status_ = ReadStatus::kBadMagic;
    return;
  }
  if (get_u32(header + 4) != kVersion) {
    status_ = ReadStatus::kBadVersion;
    return;
  }
  const std::uint64_t n64 = get_u64(header + 8);
  if (n64 < 2 || n64 > 0xFFFFFFFFULL) {
    status_ = ReadStatus::kBadHeader;
    return;
  }
  header_.n = static_cast<graph::Vertex>(n64);
  header_.updates = get_u64(header + 16);
  header_.seed = get_u64(header + 24);
  if (header_.updates == 0) status_ = ReadStatus::kEnd;
}

void BinaryStreamReader::refill() {
  // Slide the partial-record tail to the front, then top up.
  const std::size_t tail = buf_len_ - buf_pos_;
  if (tail > 0 && buf_pos_ > 0) {
    std::memmove(buffer_.data(), buffer_.data() + buf_pos_, tail);
  }
  buf_pos_ = 0;
  buf_len_ = tail;
  if (file_exhausted_) return;
  in_.read(reinterpret_cast<char*>(buffer_.data() + buf_len_),
           static_cast<std::streamsize>(buffer_.size() - buf_len_));
  const auto got = static_cast<std::size_t>(in_.gcount());
  bytes_read_ += got;
  buf_len_ += got;
  if (got == 0 || in_.eof()) file_exhausted_ = true;
  if (in_.bad()) status_ = ReadStatus::kIoError;
}

std::size_t BinaryStreamReader::next_batch(
    std::span<stream::EdgeUpdate> out) {
  if (status_ != ReadStatus::kOk) return 0;
  std::size_t filled = 0;
  while (filled < out.size() && delivered_ < header_.updates) {
    if (buf_len_ - buf_pos_ < kRecordBytes) {
      refill();
      if (status_ != ReadStatus::kOk) break;
      if (buf_len_ - buf_pos_ < kRecordBytes) {
        // The file ended before the declared count — either mid-record
        // or on a record boundary; both are truncation.
        status_ = ReadStatus::kTruncatedRecord;
        break;
      }
    }
    const ReadStatus rs =
        decode_record(buffer_.data() + buf_pos_, header_.n, out[filled]);
    if (rs != ReadStatus::kOk) {
      status_ = rs;
      break;
    }
    buf_pos_ += kRecordBytes;
    ++filled;
    ++delivered_;
  }
  if (status_ == ReadStatus::kOk && delivered_ == header_.updates) {
    status_ = ReadStatus::kEnd;
  }
  return filled;
}

}  // namespace ds::streamio
