#include "lowerbound/players.h"

#include <algorithm>
#include <set>

namespace ds::lowerbound {

using graph::Edge;
using graph::Vertex;

std::vector<RefinedPlayer> build_refined_players(const DmmInstance& inst) {
  const DmmParameters& p = inst.params;
  const rs::RsGraph& base = *inst.base;

  std::vector<RefinedPlayer> players;
  players.reserve(p.num_public() + p.k * p.big_n);

  // Public players: all G-edges incident on their vertex.
  for (std::uint32_t l = 0; l < p.num_public(); ++l) {
    RefinedPlayer player;
    player.is_public = true;
    player.base_index = l;
    const Vertex v = inst.public_final[l];
    for (Vertex w : inst.g.neighbors(v)) {
      player.edges.push_back(Edge{v, w}.normalized());
    }
    std::sort(player.edges.begin(), player.edges.end());
    players.push_back(std::move(player));
  }

  // Unique players: per copy i, per base vertex j, the surviving edges of
  // G_i incident on j, in final labels.  Recover the (matching, slot)
  // identity of each base edge from the RS partition.
  //
  // star_pos / public_pos mirror build_dmm's relabeling.
  const std::vector<Vertex> v_star = base.matching_vertices(inst.j_star);
  std::vector<std::uint32_t> star_pos(p.big_n, 0xffffffffu);
  for (std::size_t l = 0; l < v_star.size(); ++l)
    star_pos[v_star[l]] = static_cast<std::uint32_t>(l);
  std::vector<std::uint32_t> public_pos(p.big_n, 0xffffffffu);
  {
    std::uint32_t next = 0;
    for (Vertex b = 0; b < p.big_n; ++b) {
      if (star_pos[b] == 0xffffffffu) public_pos[b] = next++;
    }
  }
  auto final_label = [&](std::uint64_t i, Vertex b) -> Vertex {
    return star_pos[b] != 0xffffffffu ? inst.unique_final[i][star_pos[b]]
                                      : inst.public_final[public_pos[b]];
  };

  // Incident (j, e) pairs per base vertex.
  std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>> incident(
      p.big_n);
  for (std::uint32_t j = 0; j < p.t; ++j) {
    for (std::uint32_t e = 0; e < p.r; ++e) {
      const Edge& edge = base.matchings[j][e];
      incident[edge.u].push_back({j, e});
      incident[edge.v].push_back({j, e});
    }
  }

  for (std::uint64_t i = 0; i < p.k; ++i) {
    for (Vertex b = 0; b < p.big_n; ++b) {
      RefinedPlayer player;
      player.is_public = false;
      player.copy = i;
      player.base_index = b;
      for (const auto& [j, e] : incident[b]) {
        if (!inst.bits.get(i, j, e)) continue;
        const Edge& be = base.matchings[j][e];
        player.edges.push_back(
            Edge{final_label(i, be.u), final_label(i, be.v)}.normalized());
      }
      std::sort(player.edges.begin(), player.edges.end());
      players.push_back(std::move(player));
    }
  }
  return players;
}

namespace {

void write_edges(const DmmParameters& params, std::span<const Edge> edges,
                 util::BitWriter& out) {
  const unsigned width = util::bit_width_for(params.n);
  out.put_gamma(edges.size() + 1);
  for (const Edge& e : edges) {
    out.put_bits(e.u, width);
    out.put_bits(e.v, width);
  }
}

std::vector<Edge> read_edges(const DmmParameters& params,
                             util::BitReader& in) {
  if (in.bits_remaining() == 0) return {};
  const unsigned width = util::bit_width_for(params.n);
  std::uint64_t count = in.get_gamma() - 1;
  // Robustness clamp against malformed headers.
  const std::uint64_t max_possible =
      width == 0 ? in.bits_remaining() : in.bits_remaining() / (2 * width);
  if (count > max_possible) count = max_possible;
  std::vector<Edge> edges;
  edges.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const Vertex u = static_cast<Vertex>(in.get_bits(width));
    const Vertex v = static_cast<Vertex>(in.get_bits(width));
    edges.push_back({u, v});
  }
  return edges;
}

}  // namespace

void FullReportEncoder::encode(const DmmParameters& params,
                               const RefinedPlayer& player,
                               util::BitWriter& out) const {
  write_edges(params, player.edges, out);
}

std::vector<Edge> FullReportEncoder::decode(const DmmParameters& params,
                                            util::BitReader& in) const {
  return read_edges(params, in);
}

void CappedReportEncoder::encode(const DmmParameters& params,
                                 const RefinedPlayer& player,
                                 util::BitWriter& out) const {
  const std::size_t take = std::min(cap_, player.edges.size());
  write_edges(params, std::span<const Edge>(player.edges).first(take), out);
}

std::vector<Edge> CappedReportEncoder::decode(const DmmParameters& params,
                                              util::BitReader& in) const {
  return read_edges(params, in);
}

std::vector<util::BitString> run_refined(const DmmInstance& inst,
                                         const std::vector<RefinedPlayer>& players,
                                         const RefinedEncoder& encoder) {
  std::vector<util::BitString> messages;
  messages.reserve(players.size());
  for (const RefinedPlayer& player : players) {
    util::BitWriter writer;
    encoder.encode(inst.params, player, writer);
    messages.emplace_back(writer);
  }
  return messages;
}

graph::Matching refined_referee(const DmmInstance& inst,
                                const std::vector<RefinedPlayer>& players,
                                const RefinedEncoder& encoder,
                                std::span<const util::BitString> messages) {
  // Union of everything reported.
  std::set<std::pair<Vertex, Vertex>> reported;
  for (std::size_t idx = 0; idx < players.size(); ++idx) {
    util::BitReader reader(messages[idx]);
    for (const Edge& e : encoder.decode(inst.params, reader)) {
      const Edge ne = e.normalized();
      reported.insert({ne.u, ne.v});
    }
  }
  // Candidate special pairs are known from (sigma, j*): keep the reported
  // ones.
  graph::Matching out;
  for (const graph::Matching& full : inst.special_full) {
    for (const Edge& e : full) {
      const Edge ne = e.normalized();
      if (reported.contains({ne.u, ne.v})) out.push_back(ne);
    }
  }
  return out;
}

}  // namespace ds::lowerbound
