// The Section 4 reduction: maximal matching on D_MM from maximal
// independent set.
//
// Given G ~ D_MM on n vertices, the players build H on 2n vertices:
//   * two disjoint copies of G (left: v, right: n + v);
//   * a complete bipartite graph between left-public and right-public
//     copies (every player simulating a public vertex knows the identity
//     of all public vertices, Remark 3.6(iii)).
// Each original player simulates both of its copies, so an MIS protocol
// with b-bit sketches yields a matching protocol with 2b-bit sketches.
//
// Referee decoding (steps 3-4): any MIS S of H misses Pl or Pr entirely
// (they form a biclique).  On the side S misses, Lemma 4.1 gives for every
// candidate pair (u, v) in M^RS_{i,j*}:
//     (u, v) survived the random drop  <=>  not both copies of u, v in S,
// so reading S off the candidate pairs recovers the surviving special
// matching exactly.
#pragma once

#include <span>

#include "lowerbound/dmm.h"

namespace ds::lowerbound {

/// H on 2n vertices (left copy = v, right copy = n + v).
[[nodiscard]] graph::Graph build_reduction_graph(const DmmInstance& inst);

/// The referee's steps 3-4: recover a matching in G from an MIS of H.
[[nodiscard]] graph::Matching decode_matching_from_mis(
    const DmmInstance& inst, std::span<const graph::Vertex> mis);

/// Per-side audit of Lemma 4.1 plus the biclique argument.
struct Lemma41Audit {
  bool left_public_empty = false;   // S cap Pl == empty
  bool right_public_empty = false;  // S cap Pr == empty
  bool some_side_empty = false;     // the biclique guarantee
  // On each empty side, does "survived <=> not both copies in S" hold for
  // every candidate pair?  (Vacuously true for non-empty sides.)
  bool left_equivalence = true;
  bool right_equivalence = true;
  bool decoded_exactly = false;  // decode == surviving special edges
};
[[nodiscard]] Lemma41Audit audit_lemma41(const DmmInstance& inst,
                                         std::span<const graph::Vertex> mis);

}  // namespace ds::lowerbound
