#include "lowerbound/optimal_referee.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>
#include <numeric>
#include <unordered_map>

#include "info/distribution.h"

namespace ds::lowerbound {

using graph::Vertex;

namespace {

std::uint64_t hash_message(const util::BitString& message) {
  std::uint64_t h = util::mix64(0x6d657373, message.bit_count());
  for (std::uint64_t word : message.words()) h = util::mix64(h, word);
  return h;
}

std::uint64_t hash_all(std::span<const util::BitString> messages) {
  std::uint64_t h = 0x636f6e63;
  for (const util::BitString& m : messages) h = util::mix64(h, hash_message(m));
  return h;
}

/// Key identifying what the optimal referee conditions on: (sigma index,
/// j*, full transcript).
struct ConditionKey {
  std::uint64_t sigma;
  std::uint64_t j;
  std::uint64_t pi;
  friend bool operator<(const ConditionKey& a, const ConditionKey& b) {
    return std::tie(a.sigma, a.j, a.pi) < std::tie(b.sigma, b.j, b.pi);
  }
};

}  // namespace

OptimalRefereeResult optimal_referee_success(
    const rs::RsGraph& base, std::uint64_t k, const RefinedEncoder& encoder,
    std::span<const std::vector<Vertex>> sigmas) {
  const std::uint64_t t = base.t();
  const std::uint64_t r = base.r();
  const std::uint64_t bits = k * t * r;
  assert(bits <= 20 && "enumeration space too large");
  assert(!sigmas.empty());

  OptimalRefereeResult result;
  result.kr = static_cast<double>(k * r);

  // posterior[(sigma, j, pi)][m_key] = mass; success of MAP referee is the
  // sum over groups of the largest per-m mass.
  std::map<ConditionKey, std::map<std::uint64_t, double>> posterior;
  // For I(M ; Pi | Sigma, J): accumulate H(M | Sigma, J) and
  // H(M | Pi, Sigma, J) directly from the same grouping.
  double greedy_success = 0.0;

  const double mass = 1.0 / (static_cast<double>(sigmas.size()) *
                             static_cast<double>(t) *
                             std::exp2(static_cast<double>(bits)));
  for (std::uint64_t s = 0; s < sigmas.size(); ++s) {
    for (std::size_t j_star = 0; j_star < t; ++j_star) {
      for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << bits);
           ++mask) {
        DmmInstance inst = build_dmm(base, k, j_star,
                                     EdgeBits::from_mask(k, t, r, mask),
                                     sigmas[s]);
        const std::vector<RefinedPlayer> players =
            build_refined_players(inst);
        const std::vector<util::BitString> messages =
            run_refined(inst, players, encoder);

        for (const util::BitString& m : messages) {
          result.max_message_bits =
              std::max(result.max_message_bits, m.bit_count());
        }

        std::uint64_t m_key = 0;
        for (std::uint64_t i = 0; i < k; ++i) {
          m_key |= inst.bits.pattern(i, j_star) << (i * r);
        }
        posterior[{s, j_star, hash_all(messages)}][m_key] += mass;

        // Greedy referee for comparison.
        graph::Matching decoded =
            refined_referee(inst, players, encoder, messages);
        graph::Matching expected = inst.all_surviving_special();
        auto canon = [](graph::Matching& mm) {
          for (graph::Edge& e : mm) e = e.normalized();
          std::sort(mm.begin(), mm.end());
        };
        canon(decoded);
        canon(expected);
        if (decoded == expected) greedy_success += mass;
      }
    }
  }

  result.greedy_success = greedy_success;

  // MAP success and the conditional entropy H(M | Pi, Sigma, J).
  double optimal = 0.0;
  double h_m_given_all = 0.0;
  for (const auto& [key, law] : posterior) {
    double group_mass = 0.0;
    double best = 0.0;
    for (const auto& [m_key, p] : law) {
      group_mass += p;
      best = std::max(best, p);
    }
    optimal += best;
    for (const auto& [m_key, p] : law) {
      h_m_given_all += p * std::log2(group_mass / p);
    }
  }
  result.optimal_success = optimal;

  // H(M | Sigma, J) = kr exactly (the survival bits are fair coins,
  // independent of sigma and j*).
  result.info_m_pi = result.kr - h_m_given_all;

  // Fano: H(M | Pi, Sigma, J) <= h(Pe) + Pe * log(2^kr - 1), so
  //   1 - Pe <= (I(M ; Pi | Sigma, J) + 1) / kr.
  result.fano_success_bound =
      std::min(1.0, (result.info_m_pi + 1.0) / result.kr);
  return result;
}

OptimalRefereeResult optimal_referee_success(const rs::RsGraph& base,
                                             std::uint64_t k,
                                             const RefinedEncoder& encoder) {
  const DmmParameters params = dmm_parameters(base, k);
  std::vector<Vertex> identity(params.n);
  std::iota(identity.begin(), identity.end(), 0u);
  const std::vector<std::vector<Vertex>> sigmas{std::move(identity)};
  return optimal_referee_success(base, k, encoder, sigmas);
}

}  // namespace ds::lowerbound
