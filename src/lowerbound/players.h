// The refined player model of Section 3.2 ("A Slight Change of The
// Model"): instead of one player per vertex there are
//   N - 2r public players  — p_l sees ALL edges of G incident on the l-th
//                            public vertex, and
//   k * N unique players   — u_{i,j} sees only the edges of G that come
//                            from edges incident on base vertex j in G_i.
//
// This is the model the proof actually charges: a unique player holding an
// extra copy of a public vertex sees a strict subset of what the original
// per-vertex player saw, so lower bounds here imply lower bounds in the
// original model (the referee may ignore the extra players).
//
// Encoders for refined players are deterministic (the proof fixes the
// protocol's randomness by Yao); the accounting experiments enumerate the
// full input distribution against them.
#pragma once

#include <memory>
#include <vector>

#include "lowerbound/dmm.h"
#include "util/bitio.h"

namespace ds::lowerbound {

struct RefinedPlayer {
  bool is_public = false;
  std::uint64_t copy = 0;          // i, for unique players
  std::uint32_t base_index = 0;    // public: l; unique: base vertex j
  std::vector<graph::Edge> edges;  // what this player sees (final labels)
};

/// All N - 2r + k*N players for an instance, public players first, then
/// unique players grouped by copy (the order Pi = Pi(P), Pi(U_1), ...,
/// Pi(U_k) of the proof).
[[nodiscard]] std::vector<RefinedPlayer> build_refined_players(
    const DmmInstance& inst);

/// A deterministic per-player message function plus its decoder.
class RefinedEncoder {
 public:
  virtual ~RefinedEncoder() = default;
  virtual void encode(const DmmParameters& params, const RefinedPlayer& player,
                      util::BitWriter& out) const = 0;
  /// Parse a message back into the edge list it reported.
  [[nodiscard]] virtual std::vector<graph::Edge> decode(
      const DmmParameters& params, util::BitReader& in) const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Report every visible edge.
class FullReportEncoder final : public RefinedEncoder {
 public:
  void encode(const DmmParameters& params, const RefinedPlayer& player,
              util::BitWriter& out) const override;
  [[nodiscard]] std::vector<graph::Edge> decode(
      const DmmParameters& params, util::BitReader& in) const override;
  [[nodiscard]] std::string name() const override { return "full-report"; }
};

/// Report the first `cap` visible edges (canonical order) — the
/// deterministic budget-limited family.
class CappedReportEncoder final : public RefinedEncoder {
 public:
  explicit CappedReportEncoder(std::size_t cap) : cap_(cap) {}
  void encode(const DmmParameters& params, const RefinedPlayer& player,
              util::BitWriter& out) const override;
  [[nodiscard]] std::vector<graph::Edge> decode(
      const DmmParameters& params, util::BitReader& in) const override;
  [[nodiscard]] std::string name() const override { return "capped-report"; }

 private:
  std::size_t cap_;
};

/// Send nothing.
class SilentEncoder final : public RefinedEncoder {
 public:
  void encode(const DmmParameters&, const RefinedPlayer&,
              util::BitWriter&) const override {}
  [[nodiscard]] std::vector<graph::Edge> decode(
      const DmmParameters&, util::BitReader&) const override {
    return {};
  }
  [[nodiscard]] std::string name() const override { return "silent"; }
};

/// Messages of all refined players under `encoder`, in player order.
[[nodiscard]] std::vector<util::BitString> run_refined(
    const DmmInstance& inst, const std::vector<RefinedPlayer>& players,
    const RefinedEncoder& encoder);

/// The Remark 3.6(iv) referee: knowing (sigma, j*), collect the reported
/// edges and output the subset of the candidate special edges (the
/// M^RS_{i,j*} pairs) that some player reported.  Success for the
/// accounting experiments is "output == the surviving special edges".
[[nodiscard]] graph::Matching refined_referee(
    const DmmInstance& inst, const std::vector<RefinedPlayer>& players,
    const RefinedEncoder& encoder,
    std::span<const util::BitString> messages);

}  // namespace ds::lowerbound
