#include "lowerbound/accounting.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "info/entropy.h"

namespace ds::lowerbound {

using graph::Vertex;

namespace {

std::uint64_t hash_message(const util::BitString& message) {
  std::uint64_t h = util::mix64(0x6d657373, message.bit_count());
  for (std::uint64_t word : message.words()) h = util::mix64(h, word);
  return h;
}

std::uint64_t hash_messages(std::span<const util::BitString> messages) {
  std::uint64_t h = 0x636f6e63;
  for (const util::BitString& m : messages) h = util::mix64(h, hash_message(m));
  return h;
}

struct EnumerationContext {
  const rs::RsGraph* base;
  std::uint64_t k, t, r;
  const RefinedEncoder* encoder;

  double success_mass = 0.0;
  std::size_t max_message_bits = 0;

  info::JointTable table;

  EnumerationContext(const rs::RsGraph& base_graph, std::uint64_t copies,
                     const RefinedEncoder& enc)
      : base(&base_graph),
        k(copies),
        t(base_graph.t()),
        r(base_graph.r()),
        encoder(&enc),
        table(make_columns(copies)) {}

  static std::vector<std::string> make_columns(std::uint64_t k) {
    std::vector<std::string> columns{"Sigma", "J", "M", "PiP", "Pi"};
    for (std::uint64_t i = 0; i < k; ++i) {
      const std::string suffix = std::to_string(i + 1);
      std::string mi = "M";
      mi += suffix;
      std::string piui = "PiU";
      piui += suffix;
      columns.push_back(std::move(mi));
      columns.push_back(std::move(piui));
    }
    return columns;
  }

  void visit(std::uint64_t sigma_index, const std::vector<Vertex>& sigma,
             std::size_t j_star, std::uint64_t mask, double mass) {
    DmmInstance inst =
        build_dmm(*base, k, j_star, EdgeBits::from_mask(k, t, r, mask), sigma);
    const std::vector<RefinedPlayer> players = build_refined_players(inst);
    const std::vector<util::BitString> messages =
        run_refined(inst, players, *encoder);

    const std::uint64_t num_public = inst.params.num_public();
    const std::uint64_t per_copy = inst.params.big_n;

    for (const util::BitString& m : messages) {
      max_message_bits = std::max(max_message_bits, m.bit_count());
    }

    std::vector<std::uint64_t> row;
    row.reserve(5 + 2 * k);
    row.push_back(sigma_index);
    row.push_back(j_star);
    // M = all copies' special-matching patterns combined.
    std::uint64_t m_key = 0;
    for (std::uint64_t i = 0; i < k; ++i) {
      m_key |= inst.bits.pattern(i, j_star) << (i * r);
    }
    row.push_back(m_key);
    row.push_back(hash_messages(
        std::span<const util::BitString>(messages).first(num_public)));
    row.push_back(hash_messages(messages));
    for (std::uint64_t i = 0; i < k; ++i) {
      row.push_back(inst.bits.pattern(i, j_star));
      row.push_back(hash_messages(std::span<const util::BitString>(messages)
                                      .subspan(num_public + i * per_copy,
                                               per_copy)));
    }
    table.add_row(row, mass);

    // Exact success: referee recovers the surviving special matching.
    graph::Matching decoded =
        refined_referee(inst, players, *encoder, messages);
    graph::Matching expected = inst.all_surviving_special();
    auto canonicalize = [](graph::Matching& m) {
      for (graph::Edge& e : m) e = e.normalized();
      std::sort(m.begin(), m.end());
    };
    canonicalize(decoded);
    canonicalize(expected);
    if (decoded == expected) success_mass += mass;
  }
};

EnumerationContext enumerate_all(
    const rs::RsGraph& base, std::uint64_t k, const RefinedEncoder& encoder,
    std::span<const std::vector<Vertex>> sigmas) {
  const std::uint64_t t = base.t();
  const std::uint64_t r = base.r();
  const std::uint64_t bits = k * t * r;
  assert(bits <= 20 && "enumeration space too large");
  assert(!sigmas.empty());

  EnumerationContext ctx(base, k, encoder);
  const double mass = 1.0 / (static_cast<double>(sigmas.size()) *
                             static_cast<double>(t) *
                             std::exp2(static_cast<double>(bits)));
  for (std::uint64_t s = 0; s < sigmas.size(); ++s) {
    for (std::size_t j_star = 0; j_star < t; ++j_star) {
      for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << bits);
           ++mask) {
        ctx.visit(s, sigmas[s], j_star, mask, mass);
      }
    }
  }
  ctx.table.normalize();
  return ctx;
}

std::vector<Vertex> identity_permutation(std::uint32_t n) {
  std::vector<Vertex> sigma(n);
  std::iota(sigma.begin(), sigma.end(), 0u);
  return sigma;
}

}  // namespace

info::JointTable accounting_table(
    const rs::RsGraph& base, std::uint64_t k, const RefinedEncoder& encoder,
    std::span<const std::vector<Vertex>> sigmas) {
  return std::move(enumerate_all(base, k, encoder, sigmas).table);
}

AccountingResult enumerate_accounting(
    const rs::RsGraph& base, std::uint64_t k, const RefinedEncoder& encoder,
    std::span<const std::vector<Vertex>> sigmas) {
  const EnumerationContext ctx = enumerate_all(base, k, encoder, sigmas);
  const info::JointTable& table = ctx.table;

  AccountingResult result;
  result.kr = static_cast<double>(ctx.k * ctx.r);
  result.success_prob = ctx.success_mass;
  result.max_message_bits = ctx.max_message_bits;

  result.info_m_pi = table.mutual_information({"M"}, {"Pi"}, {"Sigma", "J"});
  result.h_pi_public = table.entropy({"PiP"});
  for (std::uint64_t i = 0; i < ctx.k; ++i) {
    const std::string suffix = std::to_string(i + 1);
    std::string mi = "M";
    mi += suffix;
    std::string piui = "PiU";
    piui += suffix;
    result.info_mi_piui.push_back(
        table.mutual_information({mi}, {piui}, {"Sigma", "J"}));
    result.h_piui.push_back(table.entropy({piui}));
  }

  result.lemma33_applicable = result.success_prob >= 0.98;
  result.lemma33_holds =
      result.info_m_pi + info::kTolerance >= result.kr / 6.0;
  result.lemma34_rhs =
      result.h_pi_public +
      std::accumulate(result.info_mi_piui.begin(), result.info_mi_piui.end(),
                      0.0);
  result.lemma34_holds =
      result.info_m_pi <= result.lemma34_rhs + info::kTolerance;
  result.lemma35_holds = true;
  for (std::uint64_t i = 0; i < ctx.k; ++i) {
    if (result.info_mi_piui[i] >
        result.h_piui[i] / static_cast<double>(ctx.t) + info::kTolerance) {
      result.lemma35_holds = false;
    }
  }
  return result;
}

AccountingResult enumerate_accounting(const rs::RsGraph& base, std::uint64_t k,
                                      const RefinedEncoder& encoder) {
  const DmmParameters params = dmm_parameters(base, k);
  const std::vector<std::vector<Vertex>> sigmas{
      identity_permutation(params.n)};
  return enumerate_accounting(base, k, encoder, sigmas);
}

std::vector<std::vector<Vertex>> all_permutations(std::uint32_t n) {
  assert(n <= 8);
  std::vector<Vertex> current = identity_permutation(n);
  std::vector<std::vector<Vertex>> result;
  do {
    result.push_back(current);
  } while (std::next_permutation(current.begin(), current.end()));
  return result;
}

std::vector<std::vector<Vertex>> sampled_permutations(std::uint32_t n,
                                                      std::size_t count,
                                                      util::Rng& rng) {
  std::vector<std::vector<Vertex>> result;
  result.reserve(count);
  for (std::size_t i = 0; i < count; ++i) result.push_back(rng.permutation(n));
  return result;
}

}  // namespace ds::lowerbound
