// The hard input distribution D_MM of Section 3.1.
//
// Parameters (paper notation): an (r, t)-RS graph G^RS on N vertices,
// k = t copies, n = N - 2r + 2rk final vertices.  Sampling:
//   1. pick j* uniform in [t]; V* = the 2r vertices of M^RS_{j*};
//   2. for each copy i in [k], drop each edge of G^RS independently w.p.
//      1/2 to get G_i;
//   3. draw a permutation sigma of [n] and relabel: base vertices outside
//      V* get ONE shared label across all copies (public vertices), base
//      vertices inside V* get a FRESH label per copy (unique vertices);
//   4. G = union of the relabeled G_i.
//
// `build_dmm` is the deterministic core (explicit j*, edge bits, sigma) so
// the accounting experiments can enumerate the whole distribution exactly;
// `sample_dmm` draws the random inputs.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/matching.h"
#include "rs/rs_graph.h"
#include "util/rng.h"

namespace ds::lowerbound {

struct DmmParameters {
  std::uint64_t big_n;  // N: vertices of the base RS graph
  std::uint64_t r;      // induced matching size
  std::uint64_t t;      // number of induced matchings
  std::uint64_t k;      // number of copies (k = t in the paper)
  std::uint32_t n;      // N - 2r + 2rk: vertices of the final graph

  [[nodiscard]] std::uint64_t num_public() const { return big_n - 2 * r; }
  [[nodiscard]] std::uint64_t num_unique() const { return 2 * r * k; }
  /// Claim 3.1's bound: every maximal matching has at least this many
  /// unique-unique edges (w.h.p. over D_MM).
  [[nodiscard]] std::uint64_t claim31_threshold() const { return k * r / 4; }
};

[[nodiscard]] DmmParameters dmm_parameters(const rs::RsGraph& base,
                                           std::uint64_t k);

/// Edge-survival indicators: bit (i, j, e) says whether edge e of matching
/// M^RS_j survived in copy i — the random variables the proof calls M_{i,j}.
class EdgeBits {
 public:
  EdgeBits(std::uint64_t k, std::uint64_t t, std::uint64_t r);

  [[nodiscard]] bool get(std::uint64_t i, std::uint64_t j,
                         std::uint64_t e) const {
    return bits_[index(i, j, e)];
  }
  void set(std::uint64_t i, std::uint64_t j, std::uint64_t e, bool value) {
    bits_[index(i, j, e)] = value;
  }

  /// The r-bit pattern of matching j in copy i, packed LSB-first — the
  /// outcome key of random variable M_{i,j}. Requires r <= 64.
  [[nodiscard]] std::uint64_t pattern(std::uint64_t i, std::uint64_t j) const;

  /// All k*t*r bits drawn fair and independent.
  static EdgeBits random(std::uint64_t k, std::uint64_t t, std::uint64_t r,
                         util::Rng& rng);
  /// Bits from an integer mask, ordered (i, j, e) lexicographic with e
  /// fastest. Requires k*t*r <= 64. For exhaustive enumeration.
  static EdgeBits from_mask(std::uint64_t k, std::uint64_t t, std::uint64_t r,
                            std::uint64_t mask);

  [[nodiscard]] std::uint64_t total_bits() const { return bits_.size(); }

 private:
  [[nodiscard]] std::size_t index(std::uint64_t i, std::uint64_t j,
                                  std::uint64_t e) const {
    return static_cast<std::size_t>((i * t_ + j) * r_ + e);
  }
  std::uint64_t k_, t_, r_;
  std::vector<bool> bits_;
};

struct DmmInstance {
  DmmParameters params;
  const rs::RsGraph* base = nullptr;  // not owned; outlives the instance
  std::size_t j_star = 0;
  std::vector<graph::Vertex> sigma;  // permutation of [n]
  EdgeBits bits{1, 1, 1};

  graph::Graph g;  // the union graph on n vertices

  /// Classification of final labels.
  std::vector<bool> is_public;
  /// Final label of the l-th public base vertex (ascending base label).
  std::vector<graph::Vertex> public_final;
  /// unique_final[i][l]: final label of the l-th V* vertex in copy i.
  std::vector<std::vector<graph::Vertex>> unique_final;

  /// The copy of M^RS_{j*} in G_i, in final labels, BEFORE the random
  /// drop (the reduction's M^RS_{i,j*}); edge order matches base matching.
  std::vector<graph::Matching> special_full;
  /// Only the edges that survived the drop (these are the matchings M_i
  /// of Claim 3.1 — what a correct referee must output between unique
  /// vertices).
  std::vector<graph::Matching> special_surviving;

  /// Union of the surviving special matchings.
  [[nodiscard]] graph::Matching all_surviving_special() const;
};

/// Deterministic construction. sigma must be a permutation of [n].
[[nodiscard]] DmmInstance build_dmm(const rs::RsGraph& base, std::uint64_t k,
                                    std::size_t j_star, EdgeBits bits,
                                    std::vector<graph::Vertex> sigma);

/// Random sample per Section 3.1.
[[nodiscard]] DmmInstance sample_dmm(const rs::RsGraph& base, std::uint64_t k,
                                     util::Rng& rng);

/// Count matching edges whose endpoints are both unique vertices.
[[nodiscard]] std::size_t count_unique_unique(const DmmInstance& inst,
                                              std::span<const graph::Edge> m);

}  // namespace ds::lowerbound
