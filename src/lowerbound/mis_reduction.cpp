#include "lowerbound/mis_reduction.h"

#include <algorithm>

namespace ds::lowerbound {

using graph::Edge;
using graph::Graph;
using graph::Matching;
using graph::Vertex;

Graph build_reduction_graph(const DmmInstance& inst) {
  const Vertex n = inst.params.n;
  std::vector<Edge> edges;
  // Two copies of G.
  for (const Edge& e : inst.g.edges()) {
    edges.push_back({e.u, e.v});
    edges.push_back({static_cast<Vertex>(n + e.u),
                     static_cast<Vertex>(n + e.v)});
  }
  // Biclique between left-public and right-public (including u's own
  // right copy, so no public vertex can appear on both sides of S).
  for (Vertex u : inst.public_final) {
    for (Vertex v : inst.public_final) {
      edges.push_back({u, static_cast<Vertex>(n + v)});
    }
  }
  return Graph::from_edges(2 * n, edges);
}

namespace {

struct SideDecode {
  Matching matching;  // pre-images (u, v) recovered on this side
};

/// Apply the "not both copies in S" rule on one side (offset 0 = left,
/// offset n = right).
SideDecode decode_side(const DmmInstance& inst,
                       const std::vector<bool>& in_mis, Vertex offset) {
  SideDecode side;
  for (const Matching& full : inst.special_full) {
    for (const Edge& e : full) {
      const bool both = in_mis[offset + e.u] && in_mis[offset + e.v];
      if (!both) side.matching.push_back(e.normalized());
    }
  }
  return side;
}

std::vector<bool> membership(const DmmInstance& inst,
                             std::span<const Vertex> mis) {
  std::vector<bool> in_mis(2 * static_cast<std::size_t>(inst.params.n), false);
  for (Vertex v : mis) in_mis[v] = true;
  return in_mis;
}

}  // namespace

Matching decode_matching_from_mis(const DmmInstance& inst,
                                  std::span<const Vertex> mis) {
  const Vertex n = inst.params.n;
  const std::vector<bool> in_mis = membership(inst, mis);

  // Lemma 4.1 certifies EXACT recovery on a side whose public copies are
  // absent from S; the other side is merely a superset of the surviving
  // edges (direction 1 of the lemma holds on both sides, direction 2 only
  // on the empty side).  The paper's step 4 selects by |M_l| >= |M_r|,
  // but the superset side is never smaller, so we select by the test the
  // lemma actually wants — the referee knows S and sigma, so it can check
  // S cap P_side == empty directly.  See DESIGN.md ("reduction decoding").
  bool left_empty = true;
  bool right_empty = true;
  for (Vertex u : inst.public_final) {
    if (in_mis[u]) left_empty = false;
    if (in_mis[n + u]) right_empty = false;
  }
  if (left_empty) return decode_side(inst, in_mis, 0).matching;
  if (right_empty) return decode_side(inst, in_mis, n).matching;
  // MIS was invalid (biclique violated): fall back to the smaller side,
  // which is closer to exact.
  SideDecode left = decode_side(inst, in_mis, 0);
  SideDecode right = decode_side(inst, in_mis, n);
  return left.matching.size() <= right.matching.size()
             ? std::move(left.matching)
             : std::move(right.matching);
}

Lemma41Audit audit_lemma41(const DmmInstance& inst,
                           std::span<const Vertex> mis) {
  const Vertex n = inst.params.n;
  const std::vector<bool> in_mis = membership(inst, mis);

  Lemma41Audit audit;
  audit.left_public_empty = true;
  audit.right_public_empty = true;
  for (Vertex u : inst.public_final) {
    if (in_mis[u]) audit.left_public_empty = false;
    if (in_mis[n + u]) audit.right_public_empty = false;
  }
  audit.some_side_empty =
      audit.left_public_empty || audit.right_public_empty;

  // Equivalence check per side: survived <=> not both copies in S.
  auto check_side = [&](Vertex offset) {
    for (std::size_t i = 0; i < inst.special_full.size(); ++i) {
      const Matching& full = inst.special_full[i];
      for (std::size_t e = 0; e < full.size(); ++e) {
        const bool survived = inst.bits.get(i, inst.j_star, e);
        const bool both =
            in_mis[offset + full[e].u] && in_mis[offset + full[e].v];
        if (survived == both) return false;  // must be opposites
      }
    }
    return true;
  };
  if (audit.left_public_empty) audit.left_equivalence = check_side(0);
  if (audit.right_public_empty) audit.right_equivalence = check_side(n);

  // Does the full decode recover exactly the surviving special edges?
  Matching decoded = decode_matching_from_mis(inst, mis);
  Matching expected = inst.all_surviving_special();
  auto canonicalize = [](Matching& m) {
    for (Edge& e : m) e = e.normalized();
    std::sort(m.begin(), m.end());
  };
  canonicalize(decoded);
  canonicalize(expected);
  audit.decoded_exactly = decoded == expected;
  return audit;
}

}  // namespace ds::lowerbound
