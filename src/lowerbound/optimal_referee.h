// The information-theoretically optimal referee, computed exactly.
//
// Lemma 3.3 argues: if the referee succeeds, the transcript must carry
// ~k*r bits about the survival pattern M.  The converse direction is what
// this module quantifies: for a FIXED deterministic encoder family, the
// best possible referee is MAP decoding — on seeing (transcript, sigma,
// j*), output the most probable value of the surviving special matching.
// On enumerable mini-instances we compute
//
//   * optimal_success  — sup over all referees of P[exact recovery]
//                        (attained by MAP; no cleverer referee exists);
//   * greedy_success   — the natural union-of-reports referee, for
//                        comparison;
//   * info_m_pi        — I(M ; Pi | Sigma, J), the proof's quantity;
//   * fano_success_bound — the Fano-inequality ceiling
//                        P[success] <= (I + 1) / (k*r),
//                        making "low information => low success" concrete.
//
// Together with bench_info_accounting this closes the loop: Lemmas
// 3.3-3.5 bound the information a cheap protocol can reveal, and Fano/MAP
// convert that cap into a success-probability cap no referee can beat.
#pragma once

#include "lowerbound/players.h"

namespace ds::lowerbound {

struct OptimalRefereeResult {
  double optimal_success = 0.0;
  double greedy_success = 0.0;
  double info_m_pi = 0.0;           // I(M ; Pi | Sigma, J), bits
  double fano_success_bound = 0.0;  // (info + 1) / kr, clamped to [0, 1]
  double kr = 0.0;
  std::size_t max_message_bits = 0;
};

/// Exact enumeration over (sigma in sigmas, j*, survival bits); requires
/// k * t * r <= 20.
[[nodiscard]] OptimalRefereeResult optimal_referee_success(
    const rs::RsGraph& base, std::uint64_t k, const RefinedEncoder& encoder,
    std::span<const std::vector<graph::Vertex>> sigmas);

/// Single identity-sigma convenience.
[[nodiscard]] OptimalRefereeResult optimal_referee_success(
    const rs::RsGraph& base, std::uint64_t k, const RefinedEncoder& encoder);

/// One-bit-per-player encoder: each player sends the parity of its number
/// of visible edges.  Strictly information-limited (k*N + |P| bits total),
/// useful for exercising the MAP referee away from the full/silent
/// extremes.
class ParityEncoder final : public RefinedEncoder {
 public:
  void encode(const DmmParameters&, const RefinedPlayer& player,
              util::BitWriter& out) const override {
    out.put_bit(player.edges.size() % 2 == 1);
  }
  [[nodiscard]] std::vector<graph::Edge> decode(
      const DmmParameters&, util::BitReader&) const override {
    return {};  // parity carries no decodable edge list
  }
  [[nodiscard]] std::string name() const override { return "parity"; }
};

}  // namespace ds::lowerbound
