// Exact information accounting for the Section 3.2 proof chain, on
// enumerable mini instances of D_MM.
//
// With a tiny RS graph (k*t*r <= ~16 survival bits) the entire input
// distribution can be enumerated: for each sigma in a supplied set, each
// j*, and each assignment of the survival bits, build the instance, run a
// deterministic refined-player protocol, and record the joint outcome
//     (Sigma, J, M_{1,J}..M_{k,J}, Pi(P), Pi(U_1)..Pi(U_k)).
//
// From the exact joint law we evaluate both sides of:
//   Lemma 3.3:  I(M_{1,J}..M_{k,J} ; Pi | Sigma, J) >= k*r/6   (when the
//               protocol succeeds w.p. >= 0.98 — also computed exactly);
//   Lemma 3.4:  I(M ; Pi | Sigma, J)
//                  <= H(Pi(P)) + sum_i I(M_{i,J} ; Pi(U_i) | Sigma, J);
//   Lemma 3.5:  I(M_{i,J} ; Pi(U_i) | Sigma, J) <= H(Pi(U_i)) / t.
//
// Caveat on Sigma: Lemmas 3.3 and 3.4 hold conditionally for EVERY fixed
// sigma, so a single-sigma run verifies them.  Lemma 3.5's direct-sum step
// relies on the symmetry of a UNIFORM Sigma (the distribution of
// (M_{i,j}, Pi(U_i), Sigma_i) must not depend on the event J = j), so it
// is only guaranteed when the sigma set is all of S_n — feasible for the
// smallest instance (n = 5) — or approximated by sampling sigmas.
#pragma once

#include <vector>

#include "info/joint_table.h"
#include "lowerbound/players.h"

namespace ds::lowerbound {

struct AccountingResult {
  // Exact quantities (bits), conditioned as in the paper.
  double info_m_pi = 0.0;    // I(M_{1,J}..M_{k,J} ; Pi | Sigma, J)
  double h_pi_public = 0.0;  // H(Pi(P))
  std::vector<double> info_mi_piui;  // I(M_{i,J} ; Pi(U_i) | Sigma, J)
  std::vector<double> h_piui;        // H(Pi(U_i))

  double success_prob = 0.0;  // exact Pr[referee recovers the surviving
                              // special matching precisely]
  double kr = 0.0;            // k*r, the proof's yardstick

  // Inequality verdicts (info::kTolerance slack).
  bool lemma33_applicable = false;  // success_prob >= 0.98
  bool lemma33_holds = false;       // info_m_pi >= kr/6
  bool lemma34_holds = false;
  double lemma34_rhs = 0.0;
  bool lemma35_holds = false;

  // Worst-case message length over all players and inputs (the proof's b).
  std::size_t max_message_bits = 0;
};

/// Enumerate j* and the k*t*r survival bits exactly, for each sigma in
/// `sigmas` (weighted uniformly).  Requires k * t * r <= 20.
[[nodiscard]] AccountingResult enumerate_accounting(
    const rs::RsGraph& base, std::uint64_t k, const RefinedEncoder& encoder,
    std::span<const std::vector<graph::Vertex>> sigmas);

/// Single-sigma convenience (identity permutation): valid for the
/// Lemma 3.3 / 3.4 checks; Lemma 3.5's verdict is reported but only
/// meaningful with a full or sampled sigma set.
[[nodiscard]] AccountingResult enumerate_accounting(
    const rs::RsGraph& base, std::uint64_t k, const RefinedEncoder& encoder);

/// The exact joint table (columns: Sigma, J, M, PiP, Pi, M1..Mk,
/// PiU1..PiUk) for callers evaluating further identities.
[[nodiscard]] info::JointTable accounting_table(
    const rs::RsGraph& base, std::uint64_t k, const RefinedEncoder& encoder,
    std::span<const std::vector<graph::Vertex>> sigmas);

/// All n! permutations of [0, n) (requires n <= 8).
[[nodiscard]] std::vector<std::vector<graph::Vertex>> all_permutations(
    std::uint32_t n);

/// `count` uniformly sampled permutations of [0, n).
[[nodiscard]] std::vector<std::vector<graph::Vertex>> sampled_permutations(
    std::uint32_t n, std::size_t count, util::Rng& rng);

}  // namespace ds::lowerbound
