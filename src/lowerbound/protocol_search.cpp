#include "lowerbound/protocol_search.h"

#include <cmath>

namespace ds::lowerbound {

ProtocolSearchResult search_degree_protocols(const rs::RsGraph& base,
                                             std::uint64_t k, unsigned bits,
                                             std::size_t degree_cap) {
  const std::size_t states = degree_cap + 1;
  const std::uint64_t values = std::uint64_t{1} << bits;
  // Every table is a function [states] -> [values]: values^states choices.
  std::uint64_t table_count = 1;
  for (std::size_t s = 0; s < states; ++s) table_count *= values;

  const auto nth_table = [&](std::uint64_t index) {
    std::vector<std::uint8_t> table(states);
    for (std::size_t s = 0; s < states; ++s) {
      table[s] = static_cast<std::uint8_t>(index % values);
      index /= values;
    }
    return table;
  };

  ProtocolSearchResult result;
  result.silent_baseline =
      std::exp2(-static_cast<double>(k * base.r()));
  for (std::uint64_t pi = 0; pi < table_count; ++pi) {
    const std::vector<std::uint8_t> public_table = nth_table(pi);
    for (std::uint64_t ui = 0; ui < table_count; ++ui) {
      const DegreeTableEncoder encoder(bits, public_table, nth_table(ui));
      const OptimalRefereeResult r =
          optimal_referee_success(base, k, encoder);
      ++result.protocols_searched;
      if (r.optimal_success > result.best_success) {
        result.best_success = r.optimal_success;
        result.fano_cap_at_best = r.fano_success_bound;
        result.best_public_table = public_table;
        result.best_unique_table = nth_table(ui);
      }
    }
  }
  return result;
}

}  // namespace ds::lowerbound
