#include "lowerbound/protocol_search.h"

#include <cmath>

#include "parallel/thread_pool.h"

namespace ds::lowerbound {

namespace {

std::vector<std::uint8_t> nth_table(std::uint64_t index, std::size_t states,
                                    std::uint64_t values) {
  std::vector<std::uint8_t> table(states);
  for (std::size_t s = 0; s < states; ++s) {
    table[s] = static_cast<std::uint8_t>(index % values);
    index /= values;
  }
  return table;
}

// Per-chunk argmax carrying the winning (public, unique) table indices.
// The serial loop keeps the FIRST protocol that is strictly better, so the
// parallel scan preserves that tie-break: each chunk scans its pi range in
// order, and chunks merge in pi order with a strict `>` — the earliest
// maximizer wins at any thread count.
struct SearchBest {
  double success = 0.0;
  double fano_cap = 0.0;
  std::uint64_t public_index = 0;
  std::uint64_t unique_index = 0;
  bool found = false;
};

}  // namespace

ProtocolSearchResult search_degree_protocols(const rs::RsGraph& base,
                                             std::uint64_t k, unsigned bits,
                                             std::size_t degree_cap,
                                             parallel::ThreadPool* pool) {
  const std::size_t states = degree_cap + 1;
  const std::uint64_t values = std::uint64_t{1} << bits;
  // Every table is a function [states] -> [values]: values^states choices.
  std::uint64_t table_count = 1;
  for (std::size_t s = 0; s < states; ++s) table_count *= values;

  ProtocolSearchResult result;
  result.silent_baseline =
      std::exp2(-static_cast<double>(k * base.r()));

  // Outer loop (public tables) fans out across the pool; every (pi, ui)
  // cell is an independent MAP-referee evaluation.
  const SearchBest best = parallel::parallel_reduce(
      pool, std::size_t{0}, static_cast<std::size_t>(table_count),
      SearchBest{},
      [&](SearchBest& acc, std::size_t pi) {
        const std::vector<std::uint8_t> public_table =
            nth_table(pi, states, values);
        for (std::uint64_t ui = 0; ui < table_count; ++ui) {
          const DegreeTableEncoder encoder(bits, public_table,
                                           nth_table(ui, states, values));
          const OptimalRefereeResult r =
              optimal_referee_success(base, k, encoder);
          if (r.optimal_success > acc.success) {
            acc.success = r.optimal_success;
            acc.fano_cap = r.fano_success_bound;
            acc.public_index = pi;
            acc.unique_index = ui;
            acc.found = true;
          }
        }
      },
      [](SearchBest& into, const SearchBest& from) {
        if (from.success > into.success) into = from;
      });

  result.protocols_searched =
      static_cast<std::size_t>(table_count * table_count);
  result.best_success = best.success;
  result.fano_cap_at_best = best.fano_cap;
  if (best.found) {
    result.best_public_table = nth_table(best.public_index, states, values);
    result.best_unique_table = nth_table(best.unique_index, states, values);
  }
  return result;
}

}  // namespace ds::lowerbound
