// Empirical machinery for Claim 3.1 and the surrounding counting
// arguments of Section 3.
//
// Claim 3.1: w.p. >= 1 - 2^{-kr/10} over G ~ D_MM, EVERY maximal matching
// of G has at least k*r/4 unique-unique edges.  The proof has two halves,
// both checkable per sample:
//   (a) |union_i M_i| >= k*r/3 (Chernoff over the kr fair coins);
//   (b) at most N - 2r matched edges can touch a public vertex, and the
//       remaining surviving special edges are FORCED into any maximal
//       matching because the RS matchings are induced and their other
//       endpoints are unique.
// `audit_claim31` evaluates both halves against adversarially chosen
// maximal matchings (greedy orders that try to touch public vertices
// first — the worst case for the claim).
#pragma once

#include <span>

#include "lowerbound/dmm.h"

namespace ds::lowerbound {

struct Claim31Audit {
  std::size_t union_special_size = 0;   // |union_i M_i| (surviving)
  bool chernoff_event = false;          // union >= k*r/3
  std::size_t matching_size = 0;        // |M| for the audited matching
  std::size_t unique_unique = 0;        // unique-unique edges in M
  std::size_t threshold = 0;            // k*r/4
  bool claim_holds = false;             // unique_unique >= threshold
  std::size_t forced_edges_missing = 0; // surviving special edges not in M
                                        // with both endpoints unmatched —
                                        // must be 0 if M is truly maximal
};

/// Audit one maximal matching against the claim.
[[nodiscard]] Claim31Audit audit_claim31(const DmmInstance& inst,
                                         std::span<const graph::Edge> m);

/// The adversarial maximal matching: greedy order that matches edges
/// touching public vertices first, minimizing unique-unique edges.
[[nodiscard]] graph::Matching adversarial_maximal_matching(
    const DmmInstance& inst);

/// Claim 3.1's failure-probability bound 2^{-kr/10} for the parameters.
[[nodiscard]] double claim31_failure_bound(const DmmParameters& params);

}  // namespace ds::lowerbound
