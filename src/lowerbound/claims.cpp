#include "lowerbound/claims.h"

#include <cmath>

#include "graph/matching.h"

namespace ds::lowerbound {

using graph::Edge;

Claim31Audit audit_claim31(const DmmInstance& inst,
                           std::span<const Edge> m) {
  Claim31Audit audit;
  const DmmParameters& p = inst.params;
  audit.threshold = p.claim31_threshold();

  for (const graph::Matching& mi : inst.special_surviving) {
    audit.union_special_size += mi.size();
  }
  audit.chernoff_event = 3 * audit.union_special_size >= p.k * p.r;

  audit.matching_size = m.size();
  audit.unique_unique = count_unique_unique(inst, m);
  audit.claim_holds = audit.unique_unique >= audit.threshold;

  // "These edges must be in M, as M is maximal": a surviving special edge
  // with both endpoints unmatched contradicts maximality.
  const std::vector<bool> matched = graph::matched_set(m, p.n);
  for (const graph::Matching& mi : inst.special_surviving) {
    for (const Edge& e : mi) {
      if (!matched[e.u] && !matched[e.v]) ++audit.forced_edges_missing;
    }
  }
  return audit;
}

graph::Matching adversarial_maximal_matching(const DmmInstance& inst) {
  std::vector<graph::Vertex> public_vertices;
  for (graph::Vertex v = 0; v < inst.params.n; ++v) {
    if (inst.is_public[v]) public_vertices.push_back(v);
  }
  return graph::greedy_matching_preferring(inst.g, public_vertices);
}

double claim31_failure_bound(const DmmParameters& params) {
  return std::exp2(-static_cast<double>(params.k * params.r) / 10.0);
}

}  // namespace ds::lowerbound
