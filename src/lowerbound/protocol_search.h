// Exhaustive search over a complete class of tiny protocols, scored by
// the exact optimal (MAP) referee.
//
// "Any protocol" is the hardest part of a lower bound to probe
// empirically.  On enumerable instances we can do it exactly for a
// natural restricted class: *degree-table* encoders, where every player
// sends b bits determined by its class (public / unique) and its number
// of surviving incident edges (capped).  The class is label-invariant
// (computable without knowing sigma), contains the silent and parity
// encoders, and for b >= slots it can transmit the player's entire local
// survival state.  Enumerating ALL (2^b)^(states) x (2^b)^(states) table
// pairs and MAP-scoring each yields the exact optimum of the class —
// a certified "no protocol of this shape does better".
#pragma once

#include <cstdint>
#include <vector>

#include "lowerbound/optimal_referee.h"
#include "parallel/thread_pool.h"

namespace ds::lowerbound {

/// b-bit message = table[min(degree, cap)] with separate tables for
/// public and unique players.
class DegreeTableEncoder final : public RefinedEncoder {
 public:
  DegreeTableEncoder(unsigned bits, std::vector<std::uint8_t> public_table,
                     std::vector<std::uint8_t> unique_table)
      : bits_(bits),
        public_table_(std::move(public_table)),
        unique_table_(std::move(unique_table)) {}

  void encode(const DmmParameters&, const RefinedPlayer& player,
              util::BitWriter& out) const override {
    const auto& table = player.is_public ? public_table_ : unique_table_;
    const std::size_t state =
        std::min(player.edges.size(), table.size() - 1);
    out.put_bits(table[state], bits_);
  }
  [[nodiscard]] std::vector<graph::Edge> decode(
      const DmmParameters&, util::BitReader&) const override {
    return {};  // table codes carry no decodable edge list
  }
  [[nodiscard]] std::string name() const override { return "degree-table"; }

 private:
  unsigned bits_;
  std::vector<std::uint8_t> public_table_;
  std::vector<std::uint8_t> unique_table_;
};

struct ProtocolSearchResult {
  double best_success = 0.0;           // max over the class, MAP referee
  double silent_baseline = 0.0;        // 2^{-kr}
  double fano_cap_at_best = 0.0;       // Fano bound of the best protocol
  std::size_t protocols_searched = 0;
  std::vector<std::uint8_t> best_public_table;
  std::vector<std::uint8_t> best_unique_table;
};

/// Enumerate every degree-table protocol with `bits`-bit messages and
/// degree states 0..degree_cap, scoring each with the exact MAP referee
/// (identity sigma).  Cost: (2^bits)^(2*(degree_cap+1)) full enumerations
/// — keep bits * (degree_cap+1) small.
///
/// Public tables fan out across the thread pool (null = global pool);
/// each chunk scans its index range in order and chunks merge in index
/// order keeping the first strict maximizer, so the winning tables are
/// identical to the serial scan at any thread count.
[[nodiscard]] ProtocolSearchResult search_degree_protocols(
    const rs::RsGraph& base, std::uint64_t k, unsigned bits,
    std::size_t degree_cap, parallel::ThreadPool* pool = nullptr);

}  // namespace ds::lowerbound
