#include "lowerbound/dmm.h"

#include <algorithm>
#include <cassert>

namespace ds::lowerbound {

using graph::Edge;
using graph::Graph;
using graph::Matching;
using graph::Vertex;

DmmParameters dmm_parameters(const rs::RsGraph& base, std::uint64_t k) {
  DmmParameters p;
  p.big_n = base.num_vertices();
  p.r = base.r();
  p.t = base.t();
  p.k = k;
  p.n = static_cast<std::uint32_t>(p.big_n - 2 * p.r + 2 * p.r * k);
  return p;
}

EdgeBits::EdgeBits(std::uint64_t k, std::uint64_t t, std::uint64_t r)
    : k_(k), t_(t), r_(r), bits_(static_cast<std::size_t>(k * t * r), false) {}

std::uint64_t EdgeBits::pattern(std::uint64_t i, std::uint64_t j) const {
  assert(r_ <= 64);
  std::uint64_t p = 0;
  for (std::uint64_t e = 0; e < r_; ++e) {
    if (get(i, j, e)) p |= std::uint64_t{1} << e;
  }
  return p;
}

EdgeBits EdgeBits::random(std::uint64_t k, std::uint64_t t, std::uint64_t r,
                          util::Rng& rng) {
  EdgeBits bits(k, t, r);
  for (std::size_t idx = 0; idx < bits.bits_.size(); ++idx) {
    bits.bits_[idx] = rng.next_bit();
  }
  return bits;
}

EdgeBits EdgeBits::from_mask(std::uint64_t k, std::uint64_t t, std::uint64_t r,
                             std::uint64_t mask) {
  assert(k * t * r <= 64);
  EdgeBits bits(k, t, r);
  for (std::size_t idx = 0; idx < bits.bits_.size(); ++idx) {
    bits.bits_[idx] = ((mask >> idx) & 1) != 0;
  }
  return bits;
}

Matching DmmInstance::all_surviving_special() const {
  Matching all;
  for (const Matching& m : special_surviving) {
    all.insert(all.end(), m.begin(), m.end());
  }
  return all;
}

DmmInstance build_dmm(const rs::RsGraph& base, std::uint64_t k,
                      std::size_t j_star, EdgeBits bits,
                      std::vector<Vertex> sigma) {
  DmmInstance inst;
  inst.params = dmm_parameters(base, k);
  inst.base = &base;
  inst.j_star = j_star;
  inst.sigma = std::move(sigma);
  inst.bits = std::move(bits);

  const DmmParameters& p = inst.params;
  assert(j_star < p.t);
  assert(inst.sigma.size() == p.n);
  assert(inst.bits.total_bits() == p.k * p.t * p.r);

  // V* (sorted base labels) and each base vertex's role.
  const std::vector<Vertex> v_star = base.matching_vertices(j_star);
  assert(v_star.size() == 2 * p.r);
  // position of a base vertex: in V* (index into v_star) or among publics.
  std::vector<std::uint32_t> star_pos(p.big_n, 0xffffffffu);
  for (std::size_t l = 0; l < v_star.size(); ++l)
    star_pos[v_star[l]] = static_cast<std::uint32_t>(l);

  inst.public_final.clear();
  std::vector<std::uint32_t> public_pos(p.big_n, 0xffffffffu);
  {
    std::uint32_t next = 0;
    for (Vertex b = 0; b < p.big_n; ++b) {
      if (star_pos[b] == 0xffffffffu) public_pos[b] = next++;
    }
    assert(next == p.num_public());
  }
  inst.public_final.resize(p.num_public());
  for (Vertex b = 0; b < p.big_n; ++b) {
    if (public_pos[b] != 0xffffffffu) {
      inst.public_final[public_pos[b]] = inst.sigma[public_pos[b]];
    }
  }

  inst.unique_final.assign(p.k, {});
  for (std::uint64_t i = 0; i < p.k; ++i) {
    inst.unique_final[i].resize(2 * p.r);
    for (std::uint64_t l = 0; l < 2 * p.r; ++l) {
      inst.unique_final[i][l] =
          inst.sigma[p.num_public() + i * 2 * p.r + l];
    }
  }

  inst.is_public.assign(p.n, false);
  for (Vertex v : inst.public_final) inst.is_public[v] = true;

  // Final label of base vertex b in copy i.
  auto final_label = [&](std::uint64_t i, Vertex b) -> Vertex {
    return star_pos[b] != 0xffffffffu ? inst.unique_final[i][star_pos[b]]
                                      : inst.public_final[public_pos[b]];
  };

  // Build the union graph and the special matchings.
  std::vector<Edge> union_edges;
  inst.special_full.assign(p.k, {});
  inst.special_surviving.assign(p.k, {});
  for (std::uint64_t i = 0; i < p.k; ++i) {
    for (std::uint64_t j = 0; j < p.t; ++j) {
      const Matching& mj = base.matchings[j];
      for (std::uint64_t e = 0; e < p.r; ++e) {
        const Edge mapped{final_label(i, mj[e].u), final_label(i, mj[e].v)};
        const bool survived = inst.bits.get(i, j, e);
        if (survived) union_edges.push_back(mapped);
        if (j == j_star) {
          inst.special_full[i].push_back(mapped);
          if (survived) inst.special_surviving[i].push_back(mapped);
        }
      }
    }
  }
  inst.g = Graph::from_edges(p.n, union_edges);
  return inst;
}

DmmInstance sample_dmm(const rs::RsGraph& base, std::uint64_t k,
                       util::Rng& rng) {
  const DmmParameters p = dmm_parameters(base, k);
  const std::size_t j_star = static_cast<std::size_t>(rng.next_below(p.t));
  EdgeBits bits = EdgeBits::random(p.k, p.t, p.r, rng);
  std::vector<Vertex> sigma = rng.permutation(p.n);
  return build_dmm(base, k, j_star, std::move(bits), std::move(sigma));
}

std::size_t count_unique_unique(const DmmInstance& inst,
                                std::span<const Edge> m) {
  std::size_t count = 0;
  for (const Edge& e : m) {
    if (!inst.is_public[e.u] && !inst.is_public[e.v]) ++count;
  }
  return count;
}

}  // namespace ds::lowerbound
