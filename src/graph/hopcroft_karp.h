// Maximum matching in bipartite graphs (Hopcroft-Karp, O(E sqrt V)).
//
// The techniques section (§1.2) builds on lower bounds for APPROXIMATING
// maximum matching [AKLY16]; measuring a protocol's approximation ratio
// needs the exact optimum, and every D_MM instance built from the
// bipartite RS construction is bipartite, so Hopcroft-Karp applies.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "graph/matching.h"

namespace ds::graph {

/// A two-coloring of g, or nullopt if g has an odd cycle.
[[nodiscard]] std::optional<std::vector<bool>> bipartition(const Graph& g);

/// Maximum matching of a bipartite graph. Asserts bipartiteness.
[[nodiscard]] Matching maximum_bipartite_matching(const Graph& g);

}  // namespace ds::graph
