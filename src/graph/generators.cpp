#include "graph/generators.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>

namespace ds::graph {

namespace {

/// Geometric skipping: enumerate each of `total` Bernoulli(p) successes in
/// expected O(p * total) time.
template <typename OnIndex>
void for_each_success(std::uint64_t total, double p, util::Rng& rng,
                      OnIndex&& on_index) {
  if (p <= 0.0 || total == 0) return;
  if (p >= 1.0) {
    for (std::uint64_t i = 0; i < total; ++i) on_index(i);
    return;
  }
  const double log1mp = std::log1p(-p);
  std::uint64_t i = 0;
  while (true) {
    const double u = 1.0 - rng.next_double();  // (0, 1]
    const double skip = std::floor(std::log(u) / log1mp);
    if (skip >= static_cast<double>(total - i)) return;
    i += static_cast<std::uint64_t>(skip);
    if (i >= total) return;
    on_index(i);
    ++i;
    if (i >= total) return;
  }
}

}  // namespace

Graph gnp(Vertex n, double p, util::Rng& rng) {
  std::vector<Edge> edges;
  const std::uint64_t pairs = static_cast<std::uint64_t>(n) * (n - 1) / 2;
  for_each_success(pairs, p, rng, [&](std::uint64_t id) {
    edges.push_back(pair_from_id(n, id));
  });
  return Graph::from_edges(n, edges);
}

Graph random_bipartite(Vertex left, Vertex right, double p, util::Rng& rng) {
  std::vector<Edge> edges;
  const std::uint64_t pairs =
      static_cast<std::uint64_t>(left) * static_cast<std::uint64_t>(right);
  for_each_success(pairs, p, rng, [&](std::uint64_t id) {
    const Vertex l = static_cast<Vertex>(id / right);
    const Vertex r = static_cast<Vertex>(left + id % right);
    edges.push_back({l, r});
  });
  return Graph::from_edges(left + right, edges);
}

Graph path(Vertex n) {
  std::vector<Edge> edges;
  for (Vertex v = 0; v + 1 < n; ++v) edges.push_back({v, v + 1});
  return Graph::from_edges(n, edges);
}

Graph cycle(Vertex n) {
  assert(n >= 3);
  std::vector<Edge> edges;
  for (Vertex v = 0; v + 1 < n; ++v) edges.push_back({v, v + 1});
  edges.push_back({n - 1, 0});
  return Graph::from_edges(n, edges);
}

Graph complete(Vertex n) {
  std::vector<Edge> edges;
  for (Vertex u = 0; u < n; ++u)
    for (Vertex v = u + 1; v < n; ++v) edges.push_back({u, v});
  return Graph::from_edges(n, edges);
}

Graph random_matching_union(Vertex n, unsigned d, util::Rng& rng) {
  assert(n % 2 == 0);
  std::vector<Edge> edges;
  for (unsigned round = 0; round < d; ++round) {
    auto perm = rng.permutation(n);
    for (Vertex i = 0; i < n; i += 2) {
      edges.push_back({perm[i], perm[i + 1]});
    }
  }
  return Graph::from_edges(n, edges);
}

BridgeInstance two_clusters_with_bridge(Vertex n, double p, util::Rng& rng) {
  assert(n >= 4 && n % 2 == 0);
  const Vertex half = n / 2;
  std::vector<Edge> edges;
  const std::uint64_t cluster_pairs =
      static_cast<std::uint64_t>(half) * (half - 1) / 2;
  for_each_success(cluster_pairs, p, rng, [&](std::uint64_t id) {
    edges.push_back(pair_from_id(half, id));
  });
  for_each_success(cluster_pairs, p, rng, [&](std::uint64_t id) {
    Edge e = pair_from_id(half, id);
    edges.push_back({static_cast<Vertex>(e.u + half),
                     static_cast<Vertex>(e.v + half)});
  });
  const Edge bridge{static_cast<Vertex>(rng.next_below(half)),
                    static_cast<Vertex>(half + rng.next_below(half))};
  edges.push_back(bridge);
  return {Graph::from_edges(n, edges), bridge};
}

NeedleInstance needle_bipartite(Vertex left, Vertex right, double p,
                                util::Rng& rng) {
  assert(left >= 2 && right >= 1);
  NeedleInstance inst;
  inst.left = left;
  const Vertex n = left + right;
  const Vertex needle_right =
      static_cast<Vertex>(left + rng.next_below(right));

  std::vector<Edge> edges;
  for (Vertex r = left; r < n; ++r) {
    if (r == needle_right) continue;
    // Random edges, then top up to degree >= 2 with distinct neighbors.
    std::vector<Vertex> nbrs;
    for (Vertex l = 0; l < left; ++l) {
      if (rng.next_bernoulli(p)) nbrs.push_back(l);
    }
    while (nbrs.size() < 2) {
      const Vertex l = static_cast<Vertex>(rng.next_below(left));
      if (std::find(nbrs.begin(), nbrs.end(), l) == nbrs.end()) {
        nbrs.push_back(l);
      }
    }
    for (Vertex l : nbrs) edges.push_back({l, r});
  }
  const Vertex needle_left = static_cast<Vertex>(rng.next_below(left));
  inst.needle = Edge{needle_left, needle_right};
  edges.push_back(inst.needle);
  inst.graph = Graph::from_edges(n, edges);
  return inst;
}

void rmat_edges(Vertex n, std::uint64_t edges, const RmatParams& params,
                util::Rng& rng, const EdgeSink& sink) {
  assert(n >= 2);
  assert(params.a >= 0 && params.b >= 0 && params.c >= 0 &&
         params.a + params.b + params.c <= 1.0);
  const unsigned scale =
      static_cast<unsigned>(std::bit_width(static_cast<std::uint64_t>(n) - 1));
  const double ab = params.a + params.b;
  const double abc = ab + params.c;
  for (std::uint64_t e = 0; e < edges; ++e) {
    Vertex u = 0;
    Vertex v = 0;
    do {
      u = 0;
      v = 0;
      for (unsigned level = 0; level < scale; ++level) {
        // Quadrants (u-bit, v-bit): [0,a) -> (0,0), [a,a+b) -> (0,1),
        // [a+b,a+b+c) -> (1,0), [a+b+c,1) -> (1,1).
        const double r = rng.next_double();
        u = static_cast<Vertex>((u << 1) | (r >= ab ? 1u : 0u));
        v = static_cast<Vertex>(
            (v << 1) | ((r >= params.a && r < ab) || r >= abc ? 1u : 0u));
      }
    } while (u == v || u >= n || v >= n);
    sink(Edge{u, v});
  }
}

Graph rmat(Vertex n, std::uint64_t edges, const RmatParams& params,
           util::Rng& rng) {
  std::vector<Edge> collected;
  collected.reserve(edges);
  rmat_edges(n, edges, params, rng,
             [&](Edge e) { collected.push_back(e); });
  return Graph::from_edges(n, collected);
}

PowerLawWeights::PowerLawWeights(Vertex n, double exponent)
    : exponent_(exponent) {
  assert(n >= 2 && exponent > 1.0);
  const double alpha = 1.0 / (exponent - 1.0);
  cdf_.reserve(n);
  double total = 0.0;
  for (Vertex v = 0; v < n; ++v) {
    total += std::pow(static_cast<double>(v) + 1.0, -alpha);
    cdf_.push_back(total);
  }
}

Vertex PowerLawWeights::sample(util::Rng& rng) const noexcept {
  const double r = rng.next_double() * cdf_.back();
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), r);
  const std::size_t idx =
      static_cast<std::size_t>(std::distance(cdf_.begin(), it));
  return static_cast<Vertex>(std::min(idx, cdf_.size() - 1));
}

void chung_lu_edges(const PowerLawWeights& weights, std::uint64_t edges,
                    util::Rng& rng, const EdgeSink& sink) {
  for (std::uint64_t e = 0; e < edges; ++e) {
    Vertex u = weights.sample(rng);
    Vertex v = weights.sample(rng);
    while (u == v) v = weights.sample(rng);
    sink(Edge{u, v});
  }
}

Graph chung_lu(Vertex n, double exponent, std::uint64_t edges,
               util::Rng& rng) {
  const PowerLawWeights weights(n, exponent);
  std::vector<Edge> collected;
  collected.reserve(edges);
  chung_lu_edges(weights, edges, rng,
                 [&](Edge e) { collected.push_back(e); });
  return Graph::from_edges(n, collected);
}

Graph subsample_edges(const Graph& g, double keep_prob, util::Rng& rng) {
  std::vector<Edge> kept;
  for (const Edge& e : g.edges()) {
    if (rng.next_bernoulli(keep_prob)) kept.push_back(e);
  }
  return Graph::from_edges(g.num_vertices(), kept);
}

Graph cluster_graph(Vertex clusters, Vertex cluster_size, double keep_prob,
                    util::Rng& rng) {
  assert(clusters >= 1 && cluster_size >= 2);
  const Vertex n = clusters * cluster_size;
  std::vector<Edge> edges;
  const std::uint64_t cluster_pairs =
      static_cast<std::uint64_t>(cluster_size) * (cluster_size - 1) / 2;
  for (Vertex c = 0; c < clusters; ++c) {
    const Vertex base = c * cluster_size;
    for_each_success(cluster_pairs, keep_prob, rng, [&](std::uint64_t id) {
      const Edge e = pair_from_id(cluster_size, id);
      edges.push_back({static_cast<Vertex>(e.u + base),
                       static_cast<Vertex>(e.v + base)});
    });
  }
  return Graph::from_edges(n, edges);
}

LayeredInstance layered_paths(Vertex levels, Vertex width, double keep_prob,
                              util::Rng& rng) {
  assert(levels >= 2 && width >= 1);
  const Vertex n = levels * width;
  std::vector<Edge> edges;
  for (Vertex l = 0; l + 1 < levels; ++l) {
    const auto perm = rng.permutation(width);
    for (Vertex i = 0; i < width; ++i) {
      if (!rng.next_bernoulli(keep_prob)) continue;
      edges.push_back({static_cast<Vertex>(l * width + i),
                       static_cast<Vertex>((l + 1) * width + perm[i])});
    }
  }
  return {Graph::from_edges(n, edges), levels, width};
}

}  // namespace ds::graph
