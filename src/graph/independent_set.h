// Independent sets: validation, maximality, greedy and Luby-style
// construction.  Mirrors matching.h; see the error-model note there — an
// MIS protocol may output a vertex set that is not independent or not
// maximal, and the harness scores those outcomes separately.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace ds::graph {

using VertexSet = std::vector<Vertex>;

/// No two members adjacent in g (members must be in range; duplicates
/// rejected).
[[nodiscard]] bool is_independent_set(const Graph& g,
                                      std::span<const Vertex> s);

/// is_independent_set and every non-member has a member neighbor.
[[nodiscard]] bool is_maximal_independent_set(const Graph& g,
                                              std::span<const Vertex> s);

/// Greedy MIS scanning vertices in the given order.
[[nodiscard]] VertexSet greedy_mis(const Graph& g,
                                   std::span<const Vertex> order);

/// Greedy MIS in vertex-id order.
[[nodiscard]] VertexSet greedy_mis(const Graph& g);

/// Greedy MIS over a uniformly random vertex order.
[[nodiscard]] VertexSet greedy_mis_random(const Graph& g, util::Rng& rng);

/// Luby's algorithm (synchronous rounds with random priorities).  Included
/// as the classic distributed baseline; in the sketching model it is only
/// runnable by an omniscient referee, which is exactly the contrast the
/// lower bound draws.
[[nodiscard]] VertexSet luby_mis(const Graph& g, util::Rng& rng);

}  // namespace ds::graph
