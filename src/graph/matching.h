// Matchings: validation, maximality checks, and referee-side greedy
// construction.
//
// The paper's error model matters here (Section 2.1, "Types of error"): a
// protocol may output a set of vertex pairs that is not even a subset of
// the input graph's edges.  Validation therefore distinguishes
//   * structurally a matching (pairwise disjoint endpoints),
//   * valid (all pairs are edges of G),
//   * maximal (no G-edge has both endpoints unmatched).
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace ds::graph {

using Matching = std::vector<Edge>;

/// Pairwise-disjoint endpoints (does not consult any graph).
[[nodiscard]] bool is_matching(std::span<const Edge> m, Vertex n);

/// is_matching and every pair is an edge of g.
[[nodiscard]] bool is_valid_matching(const Graph& g, std::span<const Edge> m);

/// is_valid_matching and no edge of g joins two unmatched vertices.
[[nodiscard]] bool is_maximal_matching(const Graph& g,
                                       std::span<const Edge> m);

/// Greedy maximal matching scanning edges in the given order.
[[nodiscard]] Matching greedy_matching(const Graph& g,
                                       std::span<const Edge> order);

/// Greedy maximal matching over g.edges() in canonical order.
[[nodiscard]] Matching greedy_matching(const Graph& g);

/// Greedy maximal matching over a uniformly random edge order.
[[nodiscard]] Matching greedy_matching_random(const Graph& g, util::Rng& rng);

/// Greedy maximal matching that prefers edges incident on `preferred`
/// vertices first (used to build adversarial maximal matchings that touch
/// as many public vertices as possible when stress-testing Claim 3.1).
[[nodiscard]] Matching greedy_matching_preferring(
    const Graph& g, std::span<const Vertex> preferred);

/// Characteristic vector of matched vertices.
[[nodiscard]] std::vector<bool> matched_set(std::span<const Edge> m, Vertex n);

}  // namespace ds::graph
