#include "graph/densest.h"

#include <algorithm>
#include <cassert>

namespace ds::graph {

namespace {

struct Peeling {
  std::vector<Vertex> order;        // removal order
  std::vector<std::uint32_t> deg_at_removal;
};

/// Min-degree peeling in O((n + m) log n) via bucket queues.
Peeling peel(const Graph& g) {
  const Vertex n = g.num_vertices();
  std::vector<std::uint32_t> degree(n);
  std::uint32_t max_deg = 0;
  for (Vertex v = 0; v < n; ++v) {
    degree[v] = g.degree(v);
    max_deg = std::max(max_deg, degree[v]);
  }
  // Bucket queue by current degree.
  std::vector<std::vector<Vertex>> buckets(max_deg + 1);
  for (Vertex v = 0; v < n; ++v) buckets[degree[v]].push_back(v);
  std::vector<bool> removed(n, false);

  Peeling result;
  result.order.reserve(n);
  result.deg_at_removal.reserve(n);
  std::uint32_t cursor = 0;
  for (Vertex step = 0; step < n; ++step) {
    // Find the lowest non-empty bucket (cursor can regress by 1 per
    // removal, so rewind defensively).
    while (cursor > 0 && !buckets[cursor - 1].empty()) --cursor;
    while (cursor <= max_deg && buckets[cursor].empty()) ++cursor;
    // Pop a still-live vertex with current degree == bucket index.
    Vertex v = n;
    while (cursor <= max_deg) {
      auto& bucket = buckets[cursor];
      while (!bucket.empty()) {
        const Vertex candidate = bucket.back();
        bucket.pop_back();
        if (!removed[candidate] && degree[candidate] == cursor) {
          v = candidate;
          break;
        }
      }
      if (v != n) break;
      ++cursor;
    }
    assert(v != n);
    removed[v] = true;
    result.order.push_back(v);
    result.deg_at_removal.push_back(degree[v]);
    for (Vertex w : g.neighbors(v)) {
      if (!removed[w]) {
        --degree[w];
        buckets[degree[w]].push_back(w);
      }
    }
  }
  return result;
}

}  // namespace

DensestResult densest_subgraph_peel(const Graph& g) {
  const Vertex n = g.num_vertices();
  DensestResult best;
  if (n == 0) return best;

  const Peeling peeling = peel(g);
  // Walk the peeling: after removing order[0..i-1], the remaining suffix
  // has m_i edges; removing order[i] deletes deg_at_removal[i] edges.
  std::vector<std::size_t> suffix_edges(n + 1, 0);
  suffix_edges[0] = g.num_edges();
  for (Vertex i = 0; i < n; ++i) {
    suffix_edges[i + 1] = suffix_edges[i] - peeling.deg_at_removal[i];
  }
  Vertex best_i = 0;
  double best_density = -1.0;
  for (Vertex i = 0; i < n; ++i) {
    const double density = static_cast<double>(suffix_edges[i]) /
                           static_cast<double>(n - i);
    if (density > best_density) {
      best_density = density;
      best_i = i;
    }
  }
  best.density = best_density;
  best.subset.assign(peeling.order.begin() + best_i, peeling.order.end());
  std::sort(best.subset.begin(), best.subset.end());
  return best;
}

DensestResult densest_subgraph_exact_tiny(const Graph& g) {
  const Vertex n = g.num_vertices();
  assert(n <= 20 && "exhaustive densest subgraph is for tiny graphs only");
  DensestResult best;
  for (std::uint32_t mask = 1; mask < (1u << n); ++mask) {
    std::size_t edges = 0;
    for (const Edge& e : g.edges()) {
      if ((mask >> e.u & 1) && (mask >> e.v & 1)) ++edges;
    }
    const double size = static_cast<double>(__builtin_popcount(mask));
    const double density = static_cast<double>(edges) / size;
    if (density > best.density) {
      best.density = density;
      best.subset.clear();
      for (Vertex v = 0; v < n; ++v) {
        if (mask >> v & 1) best.subset.push_back(v);
      }
    }
  }
  return best;
}

std::uint32_t degeneracy(const Graph& g) {
  if (g.num_vertices() == 0) return 0;
  const Peeling peeling = peel(g);
  return *std::max_element(peeling.deg_at_removal.begin(),
                           peeling.deg_at_removal.end());
}

std::vector<Vertex> degeneracy_order(const Graph& g) {
  return peel(g).order;
}

}  // namespace ds::graph
