// Weighted graphs, for the MST-flavored members of the introduction's
// "problem zoo" (minimum spanning tree / MST-weight estimation via AGM
// sketches).
//
// Weights are positive integers in [1, max_weight]; the sketching
// protocols threshold on weight classes, so an integer range keeps the
// class structure exact.  The unweighted topology is exposed as a Graph
// so every unweighted algorithm applies directly.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace ds::graph {

struct WeightedEdge {
  Vertex u;
  Vertex v;
  std::uint32_t weight;  // >= 1

  [[nodiscard]] Edge edge() const noexcept { return {u, v}; }
  friend bool operator==(const WeightedEdge&, const WeightedEdge&) = default;
};

class WeightedGraph {
 public:
  explicit WeightedGraph(Vertex n = 0)
      : topology_(n),
        weight_offsets_(static_cast<std::size_t>(n) + 1, 0) {}

  /// Duplicate pairs keep the smallest weight.
  static WeightedGraph from_edges(Vertex n,
                                  std::span<const WeightedEdge> edges);

  [[nodiscard]] Vertex num_vertices() const noexcept {
    return topology_.num_vertices();
  }
  [[nodiscard]] std::size_t num_edges() const noexcept {
    return edges_.size();
  }
  [[nodiscard]] const Graph& topology() const noexcept { return topology_; }
  [[nodiscard]] std::span<const WeightedEdge> edges() const noexcept {
    return edges_;
  }

  /// Weight of edge (u, v); asserts the edge exists.
  [[nodiscard]] std::uint32_t weight(Vertex u, Vertex v) const;

  [[nodiscard]] std::uint32_t max_weight() const noexcept {
    return max_weight_;
  }

  /// The subgraph of edges with weight <= threshold.
  [[nodiscard]] Graph threshold_subgraph(std::uint32_t threshold) const;

  /// Weights aligned with topology().neighbors(v): entry i is the weight
  /// of the edge to the i-th neighbor.
  [[nodiscard]] std::span<const std::uint32_t> neighbor_weights(
      Vertex v) const;

 private:
  Graph topology_;
  std::vector<WeightedEdge> edges_;  // normalized, sorted by (u, v)
  std::uint32_t max_weight_ = 0;
  std::vector<std::size_t> weight_offsets_;   // n + 1
  std::vector<std::uint32_t> adj_weights_;    // CSR-aligned with topology
};

/// G(n, p) with uniform random weights in [1, max_weight].
[[nodiscard]] WeightedGraph random_weighted_gnp(Vertex n, double p,
                                                std::uint32_t max_weight,
                                                util::Rng& rng);

/// Exact MST (forest) weight by Kruskal — the referee-side baseline.
struct MstResult {
  std::vector<WeightedEdge> tree;
  std::uint64_t total_weight = 0;
};
[[nodiscard]] MstResult kruskal_mst(const WeightedGraph& g);

}  // namespace ds::graph
