#include "graph/connectivity.h"

#include "graph/dsu.h"

namespace ds::graph {

Components connected_components(const Graph& g) {
  const Vertex n = g.num_vertices();
  Dsu dsu(n);
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v : g.neighbors(u)) {
      if (u < v) dsu.unite(u, v);
    }
  }
  Components result;
  result.label.assign(n, 0xffffffffu);
  for (Vertex v = 0; v < n; ++v) {
    const Vertex root = dsu.find(v);
    if (result.label[root] == 0xffffffffu) result.label[root] = result.count++;
    result.label[v] = result.label[root];
  }
  return result;
}

bool is_spanning_forest(const Graph& g, std::span<const Edge> edges) {
  Dsu dsu(g.num_vertices());
  for (const Edge& e : edges) {
    if (!g.has_edge(e.u, e.v)) return false;  // fabricated edge
    if (!dsu.unite(e.u, e.v)) return false;   // cycle
  }
  // Acyclic subgraph of g: spans iff it has as few components as g.
  return dsu.num_sets() == connected_components(g).count;
}

}  // namespace ds::graph
