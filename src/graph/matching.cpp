#include "graph/matching.h"

#include <algorithm>

namespace ds::graph {

bool is_matching(std::span<const Edge> m, Vertex n) {
  std::vector<bool> used(n, false);
  for (const Edge& e : m) {
    if (e.u >= n || e.v >= n || e.u == e.v) return false;
    if (used[e.u] || used[e.v]) return false;
    used[e.u] = used[e.v] = true;
  }
  return true;
}

bool is_valid_matching(const Graph& g, std::span<const Edge> m) {
  if (!is_matching(m, g.num_vertices())) return false;
  return std::all_of(m.begin(), m.end(),
                     [&g](const Edge& e) { return g.has_edge(e.u, e.v); });
}

bool is_maximal_matching(const Graph& g, std::span<const Edge> m) {
  if (!is_valid_matching(g, m)) return false;
  const std::vector<bool> used = matched_set(m, g.num_vertices());
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    if (used[u]) continue;
    for (Vertex v : g.neighbors(u)) {
      if (!used[v]) return false;  // extendable edge (u, v)
    }
  }
  return true;
}

Matching greedy_matching(const Graph& g, std::span<const Edge> order) {
  std::vector<bool> used(g.num_vertices(), false);
  Matching result;
  for (const Edge& e : order) {
    if (!used[e.u] && !used[e.v]) {
      used[e.u] = used[e.v] = true;
      result.push_back(e.normalized());
    }
  }
  return result;
}

Matching greedy_matching(const Graph& g) {
  const std::vector<Edge> order = g.edges();
  return greedy_matching(g, order);
}

Matching greedy_matching_random(const Graph& g, util::Rng& rng) {
  std::vector<Edge> order = g.edges();
  rng.shuffle(std::span<Edge>(order));
  return greedy_matching(g, order);
}

Matching greedy_matching_preferring(const Graph& g,
                                    std::span<const Vertex> preferred) {
  std::vector<bool> is_preferred(g.num_vertices(), false);
  for (Vertex v : preferred) is_preferred[v] = true;

  std::vector<Edge> order = g.edges();
  // Edges touching a preferred vertex first (touching two come before
  // touching one), canonical order within each class.
  auto rank = [&is_preferred](const Edge& e) {
    return (is_preferred[e.u] ? 1 : 0) + (is_preferred[e.v] ? 1 : 0);
  };
  std::stable_sort(order.begin(), order.end(),
                   [&rank](const Edge& a, const Edge& b) {
                     return rank(a) > rank(b);
                   });
  return greedy_matching(g, order);
}

std::vector<bool> matched_set(std::span<const Edge> m, Vertex n) {
  std::vector<bool> used(n, false);
  for (const Edge& e : m) {
    used[e.u] = true;
    used[e.v] = true;
  }
  return used;
}

}  // namespace ds::graph
