// Graph generators for workloads and tests.
//
// Besides the standard families (G(n,p), random bipartite, paths/cycles/
// cliques), this includes the footnote-1 instance from the paper's
// introduction: two dense random clusters joined by a single bridge edge —
// the example showing why O(n)-bit sketches are *not* necessary for
// spanning forest.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace ds::graph {

/// Erdos-Renyi G(n, p).
[[nodiscard]] Graph gnp(Vertex n, double p, util::Rng& rng);

/// Random bipartite graph on parts [0, left) and [left, left+right),
/// each cross pair present with probability p.
[[nodiscard]] Graph random_bipartite(Vertex left, Vertex right, double p,
                                     util::Rng& rng);

/// Path 0-1-...-(n-1).
[[nodiscard]] Graph path(Vertex n);

/// Cycle on n >= 3 vertices.
[[nodiscard]] Graph cycle(Vertex n);

/// Complete graph K_n.
[[nodiscard]] Graph complete(Vertex n);

/// d-regular-ish random graph: d random perfect matchings unioned
/// (n even; actual degrees may be < d where matchings collide).
[[nodiscard]] Graph random_matching_union(Vertex n, unsigned d,
                                          util::Rng& rng);

/// The footnote-1 instance: two G(n/2, p) clusters on [0, n/2) and
/// [n/2, n), plus one uniformly random bridge edge between the clusters.
/// Returns the graph and the bridge.
struct BridgeInstance {
  Graph graph;
  Edge bridge;
};
[[nodiscard]] BridgeInstance two_clusters_with_bridge(Vertex n, double p,
                                                      util::Rng& rng);

// ---------------------------------------------------------------------
// Streaming-friendly scale-free generators (R-MAT, Chung-Lu).
//
// The stream-ingestion workloads (src/streamio/) need edge sequences at
// n >= 10^6, far past what a materialized Graph should hold just to be
// replayed once.  The generators below therefore emit edges through a
// callback — constant memory in the number of edges — and the
// materialized Graph variants are thin wrappers over the same emission
// loops, so both paths draw identical edges from identical seeds.
// ---------------------------------------------------------------------

/// Called once per generated edge.  Endpoints are distinct and < n, but
/// edges are NOT deduplicated: both families are expected-degree models
/// that naturally produce repeats (the materialized wrappers collapse
/// them via Graph::from_edges).
using EdgeSink = std::function<void(Edge)>;

/// R-MAT recursive-quadrant probabilities [Chakrabarti-Zhan-Faloutsos];
/// the fourth quadrant gets d = 1 - a - b - c.  The defaults are the
/// conventional skewed setting (Graph500 uses a similar shape).
struct RmatParams {
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
};

/// `edges` R-MAT draws over vertices [0, n), n >= 2.  n need not be a
/// power of two: draws landing on the diagonal or outside [0, n) are
/// redrawn (the quadrant skew points at low ids, so acceptance is high).
void rmat_edges(Vertex n, std::uint64_t edges, const RmatParams& params,
                util::Rng& rng, const EdgeSink& sink);

/// Materialized R-MAT graph; same draws as rmat_edges, duplicates
/// collapsed.
[[nodiscard]] Graph rmat(Vertex n, std::uint64_t edges,
                         const RmatParams& params, util::Rng& rng);

/// Chung-Lu power-law weight table: vertex v carries weight
/// (v + 1)^(-1/(exponent - 1)), the classic choice giving an expected
/// degree sequence with tail exponent `exponent` (> 1; 2.5 is typical).
/// Built once (O(n) doubles) and shared by every sampling pass.
class PowerLawWeights {
 public:
  PowerLawWeights(Vertex n, double exponent);

  /// A vertex drawn with probability proportional to its weight
  /// (inverse-CDF binary search, O(log n)).
  [[nodiscard]] Vertex sample(util::Rng& rng) const noexcept;

  [[nodiscard]] Vertex num_vertices() const noexcept {
    return static_cast<Vertex>(cdf_.size());
  }
  [[nodiscard]] double exponent() const noexcept { return exponent_; }

 private:
  double exponent_;
  std::vector<double> cdf_;  // cdf_[v] = w_0 + ... + w_v
};

/// `edges` Chung-Lu draws: both endpoints sampled independently in
/// proportion to their weight (the "fast Chung-Lu" expected-degree
/// model), diagonal draws redrawn.
void chung_lu_edges(const PowerLawWeights& weights, std::uint64_t edges,
                    util::Rng& rng, const EdgeSink& sink);

/// Materialized Chung-Lu graph; same draws, duplicates collapsed.
[[nodiscard]] Graph chung_lu(Vertex n, double exponent, std::uint64_t edges,
                             util::Rng& rng);

/// Keep each edge of g independently with probability `keep_prob`
/// (the random subsampling step of distribution D_MM).
[[nodiscard]] Graph subsample_edges(const Graph& g, double keep_prob,
                                    util::Rng& rng);

/// The "needle" instance for the one-sided model (related work, Section
/// 1.3): a random bipartite graph (parts [0, left) and [left, left+right))
/// where every right vertex has degree >= 2 except ONE uniformly chosen
/// right vertex — the needle — with degree exactly 1.  In the two-sided
/// model the needle announces itself in O(log n) bits; with players on
/// the left only, finding it is hard.
struct NeedleInstance {
  Graph graph;
  Vertex left = 0;
  Edge needle;  // (left endpoint, needle right vertex)
};
[[nodiscard]] NeedleInstance needle_bipartite(Vertex left, Vertex right,
                                              double p, util::Rng& rng);

/// `clusters` disjoint near-cliques of `cluster_size` vertices each
/// (cluster c owns [c*s, (c+1)*s)); every intra-cluster pair is present
/// independently with probability `keep_prob`.  The "easy cases"
/// structured input (cluster/bounded-independence graphs, arXiv
/// 2502.21031): MM/MIS budgets should collapse here, the contrast class
/// against D_MM in the threshold sweeps.
[[nodiscard]] Graph cluster_graph(Vertex clusters, Vertex cluster_size,
                                  double keep_prob, util::Rng& rng);

/// A layered connectivity-hard instance in the style of Yu's tight
/// lower bound for distributed sketching of connectivity (arXiv
/// 2007.12323): `levels` columns of `width` vertices (level l owns
/// [l*width, (l+1)*width)); between consecutive levels a uniformly
/// random perfect matching, each matched edge surviving independently
/// with probability `keep_prob`.  The surviving graph is a union of
/// vertex-disjoint paths threading the levels — long, thin components
/// whose count concentrates nowhere, so low-budget connectivity
/// sketches cannot tell the fragmentation pattern apart.
struct LayeredInstance {
  Graph graph;
  Vertex levels = 0;
  Vertex width = 0;
};
[[nodiscard]] LayeredInstance layered_paths(Vertex levels, Vertex width,
                                            double keep_prob,
                                            util::Rng& rng);

}  // namespace ds::graph
