// Graph generators for workloads and tests.
//
// Besides the standard families (G(n,p), random bipartite, paths/cycles/
// cliques), this includes the footnote-1 instance from the paper's
// introduction: two dense random clusters joined by a single bridge edge —
// the example showing why O(n)-bit sketches are *not* necessary for
// spanning forest.
#pragma once

#include <cstdint>

#include "graph/graph.h"
#include "util/rng.h"

namespace ds::graph {

/// Erdos-Renyi G(n, p).
[[nodiscard]] Graph gnp(Vertex n, double p, util::Rng& rng);

/// Random bipartite graph on parts [0, left) and [left, left+right),
/// each cross pair present with probability p.
[[nodiscard]] Graph random_bipartite(Vertex left, Vertex right, double p,
                                     util::Rng& rng);

/// Path 0-1-...-(n-1).
[[nodiscard]] Graph path(Vertex n);

/// Cycle on n >= 3 vertices.
[[nodiscard]] Graph cycle(Vertex n);

/// Complete graph K_n.
[[nodiscard]] Graph complete(Vertex n);

/// d-regular-ish random graph: d random perfect matchings unioned
/// (n even; actual degrees may be < d where matchings collide).
[[nodiscard]] Graph random_matching_union(Vertex n, unsigned d,
                                          util::Rng& rng);

/// The footnote-1 instance: two G(n/2, p) clusters on [0, n/2) and
/// [n/2, n), plus one uniformly random bridge edge between the clusters.
/// Returns the graph and the bridge.
struct BridgeInstance {
  Graph graph;
  Edge bridge;
};
[[nodiscard]] BridgeInstance two_clusters_with_bridge(Vertex n, double p,
                                                      util::Rng& rng);

/// Keep each edge of g independently with probability `keep_prob`
/// (the random subsampling step of distribution D_MM).
[[nodiscard]] Graph subsample_edges(const Graph& g, double keep_prob,
                                    util::Rng& rng);

/// The "needle" instance for the one-sided model (related work, Section
/// 1.3): a random bipartite graph (parts [0, left) and [left, left+right))
/// where every right vertex has degree >= 2 except ONE uniformly chosen
/// right vertex — the needle — with degree exactly 1.  In the two-sided
/// model the needle announces itself in O(log n) bits; with players on
/// the left only, finding it is hard.
struct NeedleInstance {
  Graph graph;
  Vertex left = 0;
  Edge needle;  // (left endpoint, needle right vertex)
};
[[nodiscard]] NeedleInstance needle_bipartite(Vertex left, Vertex right,
                                              double p, util::Rng& rng);

}  // namespace ds::graph
