// Connectivity helpers: component counting/labeling and spanning-forest
// validation (the correctness predicate for the AGM protocol).
#pragma once

#include <span>
#include <vector>

#include "graph/graph.h"

namespace ds::graph {

/// Component label per vertex, labels are 0..num_components-1 in order of
/// first appearance.
struct Components {
  std::vector<std::uint32_t> label;
  std::uint32_t count = 0;
};
[[nodiscard]] Components connected_components(const Graph& g);

/// True iff `edges` are all edges of g, form no cycle, and connect exactly
/// g's components (i.e. |edges| == n - #components(g) and the forest's
/// components coincide with g's).
[[nodiscard]] bool is_spanning_forest(const Graph& g,
                                      std::span<const Edge> edges);

}  // namespace ds::graph
