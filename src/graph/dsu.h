// Disjoint-set union with path halving and union by size.
// Used by the AGM referee (Boruvka), connectivity validation, and the
// two-round protocol referees.
#pragma once

#include <cstdint>
#include <numeric>
#include <utility>
#include <vector>

namespace ds::graph {

class Dsu {
 public:
  explicit Dsu(std::uint32_t n) : parent_(n), size_(n, 1), num_sets_(n) {
    std::iota(parent_.begin(), parent_.end(), 0u);
  }

  [[nodiscard]] std::uint32_t find(std::uint32_t v) noexcept {
    while (parent_[v] != v) {
      parent_[v] = parent_[parent_[v]];  // path halving
      v = parent_[v];
    }
    return v;
  }

  /// Returns true iff the two were in different sets (a merge happened).
  bool unite(std::uint32_t a, std::uint32_t b) noexcept {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    --num_sets_;
    return true;
  }

  [[nodiscard]] bool same(std::uint32_t a, std::uint32_t b) noexcept {
    return find(a) == find(b);
  }

  [[nodiscard]] std::uint32_t num_sets() const noexcept { return num_sets_; }

 private:
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint32_t> size_;
  std::uint32_t num_sets_;
};

}  // namespace ds::graph
