#include "graph/hopcroft_karp.h"

#include <cassert>
#include <functional>
#include <limits>
#include <queue>

namespace ds::graph {

std::optional<std::vector<bool>> bipartition(const Graph& g) {
  const Vertex n = g.num_vertices();
  std::vector<int> color(n, -1);
  std::vector<Vertex> queue;
  for (Vertex start = 0; start < n; ++start) {
    if (color[start] != -1) continue;
    color[start] = 0;
    queue.assign(1, start);
    while (!queue.empty()) {
      const Vertex v = queue.back();
      queue.pop_back();
      for (Vertex w : g.neighbors(v)) {
        if (color[w] == -1) {
          color[w] = 1 - color[v];
          queue.push_back(w);
        } else if (color[w] == color[v]) {
          return std::nullopt;
        }
      }
    }
  }
  std::vector<bool> side(n);
  for (Vertex v = 0; v < n; ++v) side[v] = color[v] == 1;
  return side;
}

Matching maximum_bipartite_matching(const Graph& g) {
  const auto side = bipartition(g);
  assert(side.has_value() && "graph must be bipartite");
  const Vertex n = g.num_vertices();
  constexpr Vertex kFree = std::numeric_limits<Vertex>::max();
  constexpr std::uint32_t kInf = std::numeric_limits<std::uint32_t>::max();

  // match[v] = partner or kFree; BFS layers over left vertices.
  std::vector<Vertex> match(n, kFree);
  std::vector<std::uint32_t> dist(n);

  std::vector<Vertex> left;
  for (Vertex v = 0; v < n; ++v) {
    if (!(*side)[v]) left.push_back(v);
  }

  const auto bfs = [&]() {
    std::queue<Vertex> queue;
    for (Vertex l : left) {
      if (match[l] == kFree) {
        dist[l] = 0;
        queue.push(l);
      } else {
        dist[l] = kInf;
      }
    }
    bool found_free_right = false;
    while (!queue.empty()) {
      const Vertex l = queue.front();
      queue.pop();
      for (Vertex r : g.neighbors(l)) {
        const Vertex next = match[r];
        if (next == kFree) {
          found_free_right = true;
        } else if (dist[next] == kInf) {
          dist[next] = dist[l] + 1;
          queue.push(next);
        }
      }
    }
    return found_free_right;
  };

  const std::function<bool(Vertex)> dfs = [&](Vertex l) -> bool {
    for (Vertex r : g.neighbors(l)) {
      const Vertex next = match[r];
      if (next == kFree || (dist[next] == dist[l] + 1 && dfs(next))) {
        match[l] = r;
        match[r] = l;
        return true;
      }
    }
    dist[l] = kInf;
    return false;
  };

  while (bfs()) {
    for (Vertex l : left) {
      if (match[l] == kFree) (void)dfs(l);
    }
  }

  Matching result;
  for (Vertex l : left) {
    if (match[l] != kFree) result.push_back(Edge{l, match[l]}.normalized());
  }
  return result;
}

}  // namespace ds::graph
