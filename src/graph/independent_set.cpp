#include "graph/independent_set.h"

#include <algorithm>

namespace ds::graph {

bool is_independent_set(const Graph& g, std::span<const Vertex> s) {
  std::vector<bool> member(g.num_vertices(), false);
  for (Vertex v : s) {
    if (v >= g.num_vertices()) return false;
    if (member[v]) return false;  // duplicate
    member[v] = true;
  }
  for (Vertex v : s) {
    for (Vertex w : g.neighbors(v)) {
      if (member[w]) return false;
    }
  }
  return true;
}

bool is_maximal_independent_set(const Graph& g, std::span<const Vertex> s) {
  if (!is_independent_set(g, s)) return false;
  std::vector<bool> member(g.num_vertices(), false);
  for (Vertex v : s) member[v] = true;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (member[v]) continue;
    bool dominated = false;
    for (Vertex w : g.neighbors(v)) {
      if (member[w]) {
        dominated = true;
        break;
      }
    }
    if (!dominated) return false;  // v could be added
  }
  return true;
}

VertexSet greedy_mis(const Graph& g, std::span<const Vertex> order) {
  std::vector<bool> blocked(g.num_vertices(), false);
  VertexSet result;
  for (Vertex v : order) {
    if (blocked[v]) continue;
    result.push_back(v);
    blocked[v] = true;
    for (Vertex w : g.neighbors(v)) blocked[w] = true;
  }
  std::sort(result.begin(), result.end());
  return result;
}

VertexSet greedy_mis(const Graph& g) {
  std::vector<Vertex> order(g.num_vertices());
  for (Vertex v = 0; v < g.num_vertices(); ++v) order[v] = v;
  return greedy_mis(g, order);
}

VertexSet greedy_mis_random(const Graph& g, util::Rng& rng) {
  std::vector<Vertex> order = rng.permutation(g.num_vertices());
  return greedy_mis(g, order);
}

VertexSet luby_mis(const Graph& g, util::Rng& rng) {
  const Vertex n = g.num_vertices();
  enum class State : unsigned char { kActive, kInMis, kRemoved };
  std::vector<State> state(n, State::kActive);
  std::vector<std::uint64_t> priority(n);

  VertexSet result;
  bool any_active = n > 0;
  while (any_active) {
    for (Vertex v = 0; v < n; ++v) {
      if (state[v] == State::kActive) priority[v] = rng.next();
    }
    // A vertex joins if it is a strict local minimum among active
    // neighbors (ties broken by id; priorities are 64-bit so ties are
    // vanishingly rare anyway).
    std::vector<Vertex> joiners;
    for (Vertex v = 0; v < n; ++v) {
      if (state[v] != State::kActive) continue;
      bool is_min = true;
      for (Vertex w : g.neighbors(v)) {
        if (state[w] != State::kActive) continue;
        if (priority[w] < priority[v] ||
            (priority[w] == priority[v] && w < v)) {
          is_min = false;
          break;
        }
      }
      if (is_min) joiners.push_back(v);
    }
    for (Vertex v : joiners) {
      state[v] = State::kInMis;
      result.push_back(v);
      for (Vertex w : g.neighbors(v)) {
        if (state[w] == State::kActive) state[w] = State::kRemoved;
      }
    }
    any_active = false;
    for (Vertex v = 0; v < n; ++v) {
      if (state[v] == State::kActive) {
        any_active = true;
        break;
      }
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

}  // namespace ds::graph
