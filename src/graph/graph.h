// Immutable undirected graph in compressed sparse row form.
//
// Vertices are labeled 0..n-1.  Adjacency lists are sorted, which gives
// O(log deg) edge queries and lets protocol encoders iterate neighbors in a
// canonical order (important: a player's message must be a deterministic
// function of its view, and the view hands out the sorted list).
//
// Edges are also exposed under a canonical linear id, edge_id(u, v) for
// u < v, dense over the n*(n-1)/2 vertex pairs; the linear-sketch layer
// indexes its vectors by this id.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace ds::graph {

using Vertex = std::uint32_t;

/// An undirected edge with endpoints normalized so that u <= v is NOT
/// enforced at construction; use normalized() where order matters.
struct Edge {
  Vertex u;
  Vertex v;

  [[nodiscard]] Edge normalized() const noexcept {
    return u <= v ? *this : Edge{v, u};
  }
  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

class Graph {
 public:
  /// Empty graph on n vertices.
  explicit Graph(Vertex n = 0);

  /// Build from an edge list. Self-loops are rejected (assert); duplicate
  /// edges are collapsed.
  static Graph from_edges(Vertex n, std::span<const Edge> edges);

  [[nodiscard]] Vertex num_vertices() const noexcept { return n_; }
  [[nodiscard]] std::size_t num_edges() const noexcept {
    return adjacency_.size() / 2;
  }

  [[nodiscard]] std::span<const Vertex> neighbors(Vertex v) const noexcept;
  [[nodiscard]] std::uint32_t degree(Vertex v) const noexcept;
  [[nodiscard]] std::uint32_t max_degree() const noexcept;
  [[nodiscard]] bool has_edge(Vertex u, Vertex v) const noexcept;

  /// All edges, each reported once with u < v, sorted lexicographically.
  [[nodiscard]] std::vector<Edge> edges() const;

  /// Canonical dense id of the unordered pair {u, v}, u != v, in
  /// [0, n(n-1)/2): pairs ordered by smaller endpoint then larger.
  [[nodiscard]] std::uint64_t edge_id(Vertex u, Vertex v) const noexcept;
  [[nodiscard]] Edge edge_from_id(std::uint64_t id) const noexcept;
  [[nodiscard]] std::uint64_t edge_id_space() const noexcept {
    return static_cast<std::uint64_t>(n_) * (n_ - 1) / 2;
  }

  /// The graph with vertex v relabeled to perm[v]. perm must be a
  /// permutation of [0, n).
  [[nodiscard]] Graph relabeled(std::span<const Vertex> perm) const;

  /// Union of edge sets; both graphs must have the same vertex count.
  [[nodiscard]] static Graph edge_union(const Graph& a, const Graph& b);

  /// Subgraph induced by `keep` (ids preserved; edges with an endpoint
  /// outside `keep` are dropped).
  [[nodiscard]] Graph induced(std::span<const Vertex> keep) const;

  friend bool operator==(const Graph&, const Graph&) = default;

 private:
  Vertex n_ = 0;
  std::vector<std::size_t> offsets_;   // n_ + 1 entries
  std::vector<Vertex> adjacency_;      // sorted within each vertex block
};

/// Dense pair id helpers usable without a Graph instance.
[[nodiscard]] std::uint64_t pair_id(Vertex n, Vertex u, Vertex v) noexcept;
[[nodiscard]] Edge pair_from_id(Vertex n, std::uint64_t id) noexcept;

}  // namespace ds::graph
