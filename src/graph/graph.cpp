#include "graph/graph.h"

#include <algorithm>
#include <cassert>

namespace ds::graph {

Graph::Graph(Vertex n) : n_(n), offsets_(static_cast<std::size_t>(n) + 1, 0) {}

Graph Graph::from_edges(Vertex n, std::span<const Edge> edges) {
  Graph g(n);
  // Deduplicate on normalized endpoint pairs.
  std::vector<Edge> normalized;
  normalized.reserve(edges.size());
  for (const Edge& e : edges) {
    assert(e.u != e.v && "self-loops are not supported");
    assert(e.u < n && e.v < n);
    normalized.push_back(e.normalized());
  }
  std::sort(normalized.begin(), normalized.end());
  normalized.erase(std::unique(normalized.begin(), normalized.end()),
                   normalized.end());

  std::vector<std::uint32_t> degree(n, 0);
  for (const Edge& e : normalized) {
    ++degree[e.u];
    ++degree[e.v];
  }
  g.offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (Vertex v = 0; v < n; ++v) g.offsets_[v + 1] = g.offsets_[v] + degree[v];
  g.adjacency_.resize(g.offsets_[n]);

  std::vector<std::size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const Edge& e : normalized) {
    g.adjacency_[cursor[e.u]++] = e.v;
    g.adjacency_[cursor[e.v]++] = e.u;
  }
  for (Vertex v = 0; v < n; ++v) {
    std::sort(g.adjacency_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[v]),
              g.adjacency_.begin() +
                  static_cast<std::ptrdiff_t>(g.offsets_[v + 1]));
  }
  return g;
}

std::span<const Vertex> Graph::neighbors(Vertex v) const noexcept {
  assert(v < n_);
  return {adjacency_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
}

std::uint32_t Graph::degree(Vertex v) const noexcept {
  assert(v < n_);
  return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
}

std::uint32_t Graph::max_degree() const noexcept {
  std::uint32_t best = 0;
  for (Vertex v = 0; v < n_; ++v) best = std::max(best, degree(v));
  return best;
}

bool Graph::has_edge(Vertex u, Vertex v) const noexcept {
  if (u >= n_ || v >= n_ || u == v) return false;
  const auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::vector<Edge> Graph::edges() const {
  std::vector<Edge> result;
  result.reserve(num_edges());
  for (Vertex u = 0; u < n_; ++u) {
    for (Vertex v : neighbors(u)) {
      if (u < v) result.push_back({u, v});
    }
  }
  return result;
}

std::uint64_t pair_id(Vertex n, Vertex u, Vertex v) noexcept {
  assert(u != v && u < n && v < n);
  if (u > v) std::swap(u, v);
  const std::uint64_t un = u;
  // Pairs with smaller endpoint < u occupy the first
  // sum_{i<u}(n-1-i) = u*n - u(u+1)/2 ids.
  return un * n - un * (un + 1) / 2 + (v - u - 1);
}

Edge pair_from_id(Vertex n, std::uint64_t id) noexcept {
  // Binary search for the smaller endpoint u: block of u starts at
  // start(u) = u*n - u(u+1)/2.
  auto start = [n](std::uint64_t u) {
    return u * n - u * (u + 1) / 2;
  };
  Vertex lo = 0, hi = n - 1;  // u in [0, n-1)
  while (lo + 1 < hi) {
    const Vertex mid = lo + (hi - lo) / 2;
    if (start(mid) <= id)
      lo = mid;
    else
      hi = mid;
  }
  const Vertex u = (hi > lo && start(hi) <= id) ? hi : lo;
  const std::uint64_t within = id - start(u);
  return {u, static_cast<Vertex>(u + 1 + within)};
}

std::uint64_t Graph::edge_id(Vertex u, Vertex v) const noexcept {
  return pair_id(n_, u, v);
}

Edge Graph::edge_from_id(std::uint64_t id) const noexcept {
  return pair_from_id(n_, id);
}

Graph Graph::relabeled(std::span<const Vertex> perm) const {
  assert(perm.size() == n_);
  std::vector<Edge> mapped;
  mapped.reserve(num_edges());
  for (const Edge& e : edges()) mapped.push_back({perm[e.u], perm[e.v]});
  return from_edges(n_, mapped);
}

Graph Graph::edge_union(const Graph& a, const Graph& b) {
  assert(a.num_vertices() == b.num_vertices());
  std::vector<Edge> all = a.edges();
  const std::vector<Edge> be = b.edges();
  all.insert(all.end(), be.begin(), be.end());
  return from_edges(a.num_vertices(), all);
}

Graph Graph::induced(std::span<const Vertex> keep) const {
  std::vector<bool> in(n_, false);
  for (Vertex v : keep) {
    assert(v < n_);
    in[v] = true;
  }
  std::vector<Edge> kept;
  for (const Edge& e : edges()) {
    if (in[e.u] && in[e.v]) kept.push_back(e);
  }
  return from_edges(n_, kept);
}

}  // namespace ds::graph
