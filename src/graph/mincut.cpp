#include "graph/mincut.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "graph/connectivity.h"
#include "graph/dsu.h"

namespace ds::graph {

std::uint64_t global_min_cut(const Graph& g) {
  const Vertex n = g.num_vertices();
  if (n < 2) return 0;
  if (connected_components(g).count > 1) return 0;

  // Stoer-Wagner with an adjacency matrix of (merged) edge multiplicities.
  std::vector<std::vector<std::uint64_t>> w(
      n, std::vector<std::uint64_t>(n, 0));
  for (const Edge& e : g.edges()) {
    w[e.u][e.v] += 1;
    w[e.v][e.u] += 1;
  }
  std::vector<Vertex> active(n);
  for (Vertex v = 0; v < n; ++v) active[v] = v;

  std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
  while (active.size() > 1) {
    // Maximum-adjacency order over the active supervertices.
    std::vector<std::uint64_t> connect(active.size(), 0);
    std::vector<bool> added(active.size(), false);
    std::size_t prev = 0, last = 0;
    for (std::size_t step = 0; step < active.size(); ++step) {
      std::size_t pick = active.size();
      for (std::size_t i = 0; i < active.size(); ++i) {
        if (!added[i] && (pick == active.size() ||
                          connect[i] > connect[pick])) {
          pick = i;
        }
      }
      added[pick] = true;
      prev = last;
      last = pick;
      for (std::size_t i = 0; i < active.size(); ++i) {
        if (!added[i]) connect[i] += w[active[pick]][active[i]];
      }
    }
    // Cut of the phase: the last-added supervertex vs the rest.
    std::uint64_t cut = 0;
    for (std::size_t i = 0; i < active.size(); ++i) {
      if (i != last) cut += w[active[last]][active[i]];
    }
    best = std::min(best, cut);

    // Merge `last` into `prev`.
    const Vertex keep = active[prev];
    const Vertex gone = active[last];
    for (std::size_t i = 0; i < active.size(); ++i) {
      const Vertex other = active[i];
      if (other == keep || other == gone) continue;
      w[keep][other] += w[gone][other];
      w[other][keep] = w[keep][other];
    }
    active.erase(active.begin() + static_cast<std::ptrdiff_t>(last));
  }
  return best;
}

std::uint32_t edge_connectivity_at_most(const Graph& g, std::uint32_t k) {
  const Vertex n = g.num_vertices();
  if (n < 2) return 0;
  // Nagamochi-Ibaraki style sparse certificate: peel k edge-disjoint
  // spanning forests; their union preserves min(lambda, k).
  std::vector<Edge> remaining = g.edges();
  std::vector<Edge> certificate;
  for (std::uint32_t round = 0; round < k && !remaining.empty(); ++round) {
    Dsu dsu(n);
    std::vector<Edge> next;
    next.reserve(remaining.size());
    for (const Edge& e : remaining) {
      if (dsu.unite(e.u, e.v)) {
        certificate.push_back(e);
      } else {
        next.push_back(e);
      }
    }
    remaining = std::move(next);
  }
  const std::uint64_t cut =
      global_min_cut(Graph::from_edges(n, certificate));
  return static_cast<std::uint32_t>(std::min<std::uint64_t>(cut, k));
}

}  // namespace ds::graph
