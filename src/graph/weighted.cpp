#include "graph/weighted.h"

#include <algorithm>
#include <cassert>
#include <tuple>

#include "graph/dsu.h"

namespace ds::graph {

WeightedGraph WeightedGraph::from_edges(Vertex n,
                                        std::span<const WeightedEdge> edges) {
  WeightedGraph g(n);
  std::vector<WeightedEdge> normalized;
  normalized.reserve(edges.size());
  for (const WeightedEdge& e : edges) {
    assert(e.u != e.v && e.u < n && e.v < n);
    assert(e.weight >= 1);
    WeightedEdge ne = e;
    if (ne.u > ne.v) std::swap(ne.u, ne.v);
    normalized.push_back(ne);
  }
  std::sort(normalized.begin(), normalized.end(),
            [](const WeightedEdge& a, const WeightedEdge& b) {
              return std::tie(a.u, a.v, a.weight) <
                     std::tie(b.u, b.v, b.weight);
            });
  // Keep the lightest copy of duplicated pairs.
  normalized.erase(
      std::unique(normalized.begin(), normalized.end(),
                  [](const WeightedEdge& a, const WeightedEdge& b) {
                    return a.u == b.u && a.v == b.v;
                  }),
      normalized.end());

  g.edges_ = std::move(normalized);
  std::vector<Edge> plain;
  plain.reserve(g.edges_.size());
  for (const WeightedEdge& e : g.edges_) {
    plain.push_back(e.edge());
    g.max_weight_ = std::max(g.max_weight_, e.weight);
  }
  g.topology_ = Graph::from_edges(n, plain);

  // CSR-aligned weights for the model's weighted views.
  g.weight_offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (Vertex v = 0; v < n; ++v) {
    g.weight_offsets_[v + 1] =
        g.weight_offsets_[v] + g.topology_.degree(v);
  }
  g.adj_weights_.resize(g.weight_offsets_[n]);
  for (Vertex v = 0; v < n; ++v) {
    const auto nbrs = g.topology_.neighbors(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      g.adj_weights_[g.weight_offsets_[v] + i] = g.weight(v, nbrs[i]);
    }
  }
  return g;
}

std::span<const std::uint32_t> WeightedGraph::neighbor_weights(
    Vertex v) const {
  assert(v < num_vertices());
  return {adj_weights_.data() + weight_offsets_[v],
          weight_offsets_[v + 1] - weight_offsets_[v]};
}

std::uint32_t WeightedGraph::weight(Vertex u, Vertex v) const {
  if (u > v) std::swap(u, v);
  const auto it = std::lower_bound(
      edges_.begin(), edges_.end(), WeightedEdge{u, v, 1},
      [](const WeightedEdge& a, const WeightedEdge& b) {
        return std::tie(a.u, a.v) < std::tie(b.u, b.v);
      });
  assert(it != edges_.end() && it->u == u && it->v == v);
  return it->weight;
}

Graph WeightedGraph::threshold_subgraph(std::uint32_t threshold) const {
  std::vector<Edge> kept;
  for (const WeightedEdge& e : edges_) {
    if (e.weight <= threshold) kept.push_back(e.edge());
  }
  return Graph::from_edges(num_vertices(), kept);
}

WeightedGraph random_weighted_gnp(Vertex n, double p,
                                  std::uint32_t max_weight, util::Rng& rng) {
  assert(max_weight >= 1);
  // Reuse the unweighted generator for topology, then assign weights.
  std::vector<WeightedEdge> edges;
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v) {
      if (rng.next_bernoulli(p)) {
        edges.push_back(
            {u, v, static_cast<std::uint32_t>(1 + rng.next_below(max_weight))});
      }
    }
  }
  return WeightedGraph::from_edges(n, edges);
}

MstResult kruskal_mst(const WeightedGraph& g) {
  std::vector<WeightedEdge> sorted(g.edges().begin(), g.edges().end());
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const WeightedEdge& a, const WeightedEdge& b) {
                     return a.weight < b.weight;
                   });
  Dsu dsu(g.num_vertices());
  MstResult result;
  for (const WeightedEdge& e : sorted) {
    if (dsu.unite(e.u, e.v)) {
      result.tree.push_back(e);
      result.total_weight += e.weight;
    }
  }
  return result;
}

}  // namespace ds::graph
