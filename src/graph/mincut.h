// Global minimum edge cut (Stoer-Wagner).  Referee-side verification tool
// for the k-edge-connectivity certificates: a valid certificate H of G
// satisfies min(mincut(H), k) == min(mincut(G), k).
#pragma once

#include <cstdint>

#include "graph/graph.h"

namespace ds::graph {

/// Weight of the global minimum cut of g (unweighted: number of cut
/// edges). Returns 0 for disconnected or trivial (< 2 vertices) graphs.
[[nodiscard]] std::uint64_t global_min_cut(const Graph& g);

/// Edge connectivity capped at k, in O(k * (n + m)) via k rounds of
/// forest peeling — cheaper than Stoer-Wagner when only "is it >= k?"
/// matters.
[[nodiscard]] std::uint32_t edge_connectivity_at_most(const Graph& g,
                                                      std::uint32_t k);

}  // namespace ds::graph
