// Densest subgraph and degeneracy by min-degree peeling — the exact
// referee-side algorithms behind the [BHNT15]/[MTVV15] densest-subgraph
// and [FT16] degeneracy sketching citations in the paper's introduction.
//
// Peeling facts used:
//  * tracking the best density over all peeling suffixes gives a
//    2-approximation of the maximum subgraph density max_S |E(S)|/|S|;
//  * the maximum min-degree encountered is exactly the degeneracy.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace ds::graph {

struct DensestResult {
  std::vector<Vertex> subset;  // the best peeling suffix
  double density = 0.0;        // |E(subset)| / |subset|
};

/// Min-degree peeling; 2-approximation of the densest subgraph.
[[nodiscard]] DensestResult densest_subgraph_peel(const Graph& g);

/// Exact maximum subgraph density by exhaustive peel... no: exact densest
/// subgraph is polynomial via flow but heavyweight; for validation we use
/// the exhaustive check over all subsets for tiny graphs (n <= 20).
[[nodiscard]] DensestResult densest_subgraph_exact_tiny(const Graph& g);

/// Degeneracy: max over the peeling of the minimum degree at removal
/// time.  Equals the smallest d such that every subgraph has a vertex of
/// degree <= d.
[[nodiscard]] std::uint32_t degeneracy(const Graph& g);

/// Degeneracy ordering (the peel order); coloring greedily in reverse
/// uses at most degeneracy+1 colors.
[[nodiscard]] std::vector<Vertex> degeneracy_order(const Graph& g);

}  // namespace ds::graph
