// The AGM graph sketch [Ahn-Guha-McGregor SODA'12] and its spanning-forest
// referee.
//
// Every vertex v summarizes the signed incidence vector a_v over the dense
// edge-id space: a_v[{u,w}] = +1 if v == min(u,w), -1 if v == max(u,w),
// 0 otherwise.  Linearity gives the key property the paper's introduction
// leans on: for a vertex set C, sum_{v in C} a_v is supported exactly on
// the boundary edges of C — so an L0 sample of the merged sketch is an
// outgoing edge of the component, and O(log n) rounds of Boruvka connect
// the graph.  The sketch is one independent L0 sampler per Boruvka round
// (reusing a sampler across rounds would correlate it with the components
// it produced).
//
// Per-vertex size: rounds * levels * OneSparse = O(log^3 n) bits — the
// upper-bound contrast for experiment E6.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "model/coins.h"
#include "sketch/l0_sampler.h"

namespace ds::sketch {

class AgmVertexSketch {
 public:
  /// Shape for graphs on n vertices; `rounds` independent samplers
  /// (default: enough for Boruvka, ~log2 n + 3).  Distinct `tag`s derive
  /// independent sketch groups from the same coins (needed when a
  /// protocol keeps several AGM sketches at once, e.g. forest peeling or
  /// per-weight-class connectivity).
  static AgmVertexSketch make(const model::PublicCoins& coins,
                              graph::Vertex n, unsigned rounds = 0,
                              std::uint64_t tag = 0xA6A6);

  /// Exactly make(), but served from a small thread-local cache of zero
  /// sketch templates keyed by (coins.seed(), n, rounds, tag).  Shape
  /// derivation (hash coefficients, fingerprint bases) walks the public
  /// coins once per distinct shape instead of once per vertex; the
  /// returned copy is bit-identical to a fresh make().  Protocol encode
  /// and decode loops that build one sketch per vertex should use this.
  static AgmVertexSketch make_cached(const model::PublicCoins& coins,
                                     graph::Vertex n, unsigned rounds = 0,
                                     std::uint64_t tag = 0xA6A6);

  /// Account all edges incident on v (the player-side step).  Batched:
  /// the edge-id row and sign row are materialized once and each sampler
  /// consumes the whole span per call (L0Sampler::add_batch), equivalent
  /// to add_single_edge(v, w) for each neighbor w in order.
  void add_vertex_edges(graph::Vertex v,
                        std::span<const graph::Vertex> neighbors);

  /// Account the single edge (v, w) from v's perspective, scaled. The
  /// referee uses scale = -1 to PEEL an already-recovered edge out of a
  /// sketch (linearity), which is how the k-edge-connectivity certificate
  /// extracts k successive disjoint forests.
  void add_single_edge(graph::Vertex v, graph::Vertex w,
                       std::int64_t scale = 1);

  /// Component merging (the referee-side step).
  void merge(const AgmVertexSketch& other);

  [[nodiscard]] unsigned rounds() const noexcept {
    return static_cast<unsigned>(samplers_.size());
  }
  [[nodiscard]] const L0Sampler& sampler(unsigned round) const {
    return samplers_[round];
  }

  void write(util::BitWriter& out) const;
  void read(util::BitReader& in);
  [[nodiscard]] std::size_t state_bits() const;

 private:
  AgmVertexSketch() = default;

  graph::Vertex n_ = 0;
  std::vector<L0Sampler> samplers_;
};

/// Referee: Boruvka over merged sketches. `sketches[v]` is vertex v's
/// deserialized AGM sketch.  Returns the recovered forest (edges are
/// whatever the samplers decoded — validation against the true graph is
/// the harness's job, per the paper's error model).
struct SpanningForestDecode {
  std::vector<graph::Edge> forest;
  std::uint32_t components;  // component count at termination
};
[[nodiscard]] SpanningForestDecode agm_spanning_forest(
    graph::Vertex n, std::vector<AgmVertexSketch> sketches);

/// Default round count used by make() when rounds == 0.
[[nodiscard]] unsigned agm_default_rounds(graph::Vertex n) noexcept;

}  // namespace ds::sketch
