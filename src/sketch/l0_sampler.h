// L0 sampling: return a (near-)uniform nonzero coordinate of a signed
// vector, from a small linear summary.
//
// Geometric level subsampling with a pairwise-independent hash: level l
// keeps each index with probability 2^-l; the level whose survivor count
// is ~1 decodes via OneSparse.  A single sampler succeeds with constant
// probability; callers needing high probability keep several independent
// samplers (the AGM sketch keeps one per Boruvka round anyway).
//
// The level table is a OneSparseBank (structure-of-arrays, one contiguous
// allocation), and add_batch hashes a whole span of indices per call
// through util::sample_level_batch — the word-at-a-time/batched hot path
// of docs/ENGINE.md.  Both are bit-identical to the scalar per-edge path.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "model/coins.h"
#include "sketch/one_sparse.h"
#include "util/hashing.h"

namespace ds::sketch {

class L0Sampler {
 public:
  static L0Sampler make(const model::PublicCoins& coins, std::uint64_t tag,
                        std::uint64_t universe);

  void add(std::uint64_t index, std::int64_t delta);

  /// Batched add: equivalent to add(indices[i], deltas[i]) for every i
  /// in order, but evaluates the level hash over the whole span per call.
  void add_batch(std::span<const std::uint64_t> indices,
                 std::span<const std::int64_t> deltas);

  void merge(const L0Sampler& other);

  /// A nonzero coordinate, or nullopt (vector zero at every level, or all
  /// levels failed to be 1-sparse).
  [[nodiscard]] std::optional<Recovered> decode() const;

  /// True iff every level decodes to zero — evidence (not proof) that the
  /// summarized vector is zero.
  [[nodiscard]] bool looks_zero() const;

  void write(util::BitWriter& out) const;
  void read(util::BitReader& in);
  [[nodiscard]] std::size_t state_bits() const;

  [[nodiscard]] unsigned num_levels() const noexcept {
    return static_cast<unsigned>(levels_.size());
  }

 private:
  L0Sampler() = default;

  std::uint64_t universe_ = 0;
  std::optional<util::KWiseHash> level_hash_;
  OneSparseBank levels_;
};

}  // namespace ds::sketch
