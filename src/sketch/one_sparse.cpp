#include "sketch/one_sparse.h"

#include <bit>
#include <cassert>

namespace ds::sketch {

namespace {

constexpr std::uint64_t kP = util::kDefaultPrime;
constexpr unsigned kFieldBits = 61;  // kDefaultPrime = 2^61 - 1
constexpr unsigned kCounterBits = 64;

/// Map a signed count into F_p.
std::uint64_t to_field(std::int64_t v) {
  if (v >= 0) return static_cast<std::uint64_t>(v) % kP;
  return util::sub_mod(0, static_cast<std::uint64_t>(-v) % kP, kP);
}

/// Draw the fingerprint base for (coins, tag) — the shape contract shared
/// by OneSparse and OneSparseBank slots.
std::uint64_t draw_z(const model::PublicCoins& coins, std::uint64_t tag) {
  util::Rng rng =
      coins.stream(model::coin_tag(model::CoinTag::kFingerprint, tag));
  return 1 + rng.next_below(kP - 1);  // z in [1, p)
}

/// Shared decode over one slot's state.
DecodeResult decode_state(std::uint64_t universe, std::uint64_t z,
                          std::int64_t ell0, std::uint64_t ell1,
                          std::uint64_t fp) {
  if (ell0 == 0 && ell1 == 0 && fp == 0) {
    return {DecodeStatus::kZero, {}};
  }
  const std::uint64_t c = to_field(ell0);
  if (c == 0) return {DecodeStatus::kFail, {}};  // cancelling counts

  // Candidate index = ell1 / ell0 in F_p.
  const std::uint64_t index = util::mul_mod(ell1, util::inv_mod(c, kP), kP);
  if (index >= universe) return {DecodeStatus::kFail, {}};

  // Fingerprint check: fp must equal ell0 * z^index.
  const std::uint64_t expected =
      util::mul_mod(c, util::pow_mod(z, index, kP), kP);
  if (expected != fp) return {DecodeStatus::kFail, {}};
  return {DecodeStatus::kOne, {index, ell0}};
}

}  // namespace

OneSparse OneSparse::make(const model::PublicCoins& coins, std::uint64_t tag,
                          std::uint64_t universe) {
  assert(universe > 0 && universe < kP);
  OneSparse s;
  s.universe_ = universe;
  s.z_ = draw_z(coins, tag);
  return s;
}

void OneSparse::add(std::uint64_t index, std::int64_t delta) {
  assert(index < universe_);
  if (delta == 0) return;
  const std::uint64_t d = to_field(delta);
  ell0_ += delta;
  ell1_ = util::add_mod(ell1_, util::mul_mod(d, index % kP, kP), kP);
  fp_ = util::add_mod(fp_, util::mul_mod(d, util::pow_mod(z_, index, kP), kP),
                      kP);
}

void OneSparse::merge(const OneSparse& other) {
  assert(universe_ == other.universe_ && z_ == other.z_ &&
         "sketches with different shapes cannot merge");
  ell0_ += other.ell0_;
  ell1_ = util::add_mod(ell1_, other.ell1_, kP);
  fp_ = util::add_mod(fp_, other.fp_, kP);
}

DecodeResult OneSparse::decode() const {
  return decode_state(universe_, z_, ell0_, ell1_, fp_);
}

void OneSparse::write(util::BitWriter& out) const {
  out.put_bits(static_cast<std::uint64_t>(ell0_), kCounterBits);
  out.put_bits(ell1_, kFieldBits);
  out.put_bits(fp_, kFieldBits);
}

void OneSparse::read(util::BitReader& in) {
  ell0_ = static_cast<std::int64_t>(in.get_bits(kCounterBits));
  ell1_ = in.get_bits(kFieldBits);
  fp_ = in.get_bits(kFieldBits);
}

std::size_t OneSparse::state_bits() { return kCounterBits + 2 * kFieldBits; }

OneSparseBank OneSparseBank::make(const model::PublicCoins& coins,
                                  std::span<const std::uint64_t> tags,
                                  std::uint64_t universe) {
  assert(universe > 0 && universe < kP);
  OneSparseBank bank;
  bank.universe_ = universe;
  bank.slots_ = tags.size();
  bank.data_.assign(3 * bank.slots_, 0);

  auto shape = std::make_shared<Shape>();
  shape->z.reserve(bank.slots_);
  for (std::uint64_t tag : tags) shape->z.push_back(draw_z(coins, tag));
  // Fixed-base windowed tables over the exponent range actually used:
  // add() exponents are indices < universe, so ceil(bits/8) 8-bit windows
  // cover every z^index ever computed.
  const unsigned bits =
      universe > 1 ? static_cast<unsigned>(std::bit_width(universe - 1)) : 1;
  shape->windows = (bits + 7) / 8;
  shape->pow.assign(static_cast<std::size_t>(bank.slots_) * shape->windows *
                        256,
                    0);
  for (std::size_t s = 0; s < bank.slots_; ++s) {
    std::uint64_t base = shape->z[s];  // z^(1 << 8w) at window w
    std::uint64_t* table = shape->pow.data() + s * shape->windows * 256;
    for (unsigned w = 0; w < shape->windows; ++w, table += 256) {
      table[0] = 1;
      for (unsigned j = 1; j < 256; ++j) {
        table[j] = util::mul_mod(table[j - 1], base, kP);
      }
      base = util::mul_mod(table[255], base, kP);
    }
  }
  bank.shape_ = std::move(shape);
  return bank;
}

std::uint64_t OneSparseBank::z_pow(std::size_t slot,
                                   std::uint64_t index) const noexcept {
  const Shape& shape = *shape_;
  const std::uint64_t* table = shape.pow.data() + slot * shape.windows * 256;
  std::uint64_t r = table[index & 255];
  for (unsigned w = 1; w < shape.windows; ++w) {
    table += 256;
    const std::uint64_t chunk = (index >> (8 * w)) & 255;
    if (chunk != 0) r = util::mul_mod(r, table[chunk], kP);
  }
  return r;
}

void OneSparseBank::add(std::size_t slot, std::uint64_t index,
                        std::int64_t delta) {
  assert(slot < slots_);
  assert(index < universe_);
  if (delta == 0) return;
  const std::uint64_t d = to_field(delta);
  ell0()[slot] += static_cast<std::uint64_t>(delta);  // two's-complement sum
  ell1()[slot] =
      util::add_mod(ell1()[slot], util::mul_mod(d, index % kP, kP), kP);
  fp()[slot] = util::add_mod(
      fp()[slot], util::mul_mod(d, z_pow(slot, index), kP), kP);
}

void OneSparseBank::add_prefix(std::size_t upto, std::uint64_t index,
                               std::int64_t delta) {
  assert(upto < slots_);
  assert(index < universe_);
  if (delta == 0) return;
  const std::uint64_t d = to_field(delta);
  const std::uint64_t delta_raw = static_cast<std::uint64_t>(delta);
  const std::uint64_t ell1_term = util::mul_mod(d, index % kP, kP);
  std::uint64_t* e0 = ell0();
  std::uint64_t* e1 = ell1();
  std::uint64_t* f = fp();
  for (std::size_t l = 0; l <= upto; ++l) {
    e0[l] += delta_raw;
    e1[l] = util::add_mod(e1[l], ell1_term, kP);
    f[l] = util::add_mod(f[l], util::mul_mod(d, z_pow(l, index), kP), kP);
  }
}

void OneSparseBank::merge(const OneSparseBank& other) {
  assert(universe_ == other.universe_ && slots_ == other.slots_);
  std::uint64_t* e0 = ell0();
  std::uint64_t* e1 = ell1();
  std::uint64_t* f = fp();
  const std::uint64_t* o0 = other.ell0();
  const std::uint64_t* o1 = other.ell1();
  const std::uint64_t* of = other.fp();
  for (std::size_t i = 0; i < slots_; ++i) {
    assert(z(i) == other.z(i) &&
           "sketches with different shapes cannot merge");
    e0[i] += o0[i];
    e1[i] = util::add_mod(e1[i], o1[i], kP);
    f[i] = util::add_mod(f[i], of[i], kP);
  }
}

DecodeResult OneSparseBank::decode(std::size_t slot) const {
  assert(slot < slots_);
  return decode_state(universe_, z(slot),
                      static_cast<std::int64_t>(ell0()[slot]), ell1()[slot],
                      fp()[slot]);
}

void OneSparseBank::write(util::BitWriter& out) const {
  out.reserve_bits(out.bit_count() + state_bits());
  const std::uint64_t* e0 = ell0();
  const std::uint64_t* e1 = ell1();
  const std::uint64_t* f = fp();
  for (std::size_t i = 0; i < slots_; ++i) {
    out.put_bits(e0[i], kCounterBits);
    out.put_bits(e1[i], kFieldBits);
    out.put_bits(f[i], kFieldBits);
  }
}

void OneSparseBank::read(util::BitReader& in) {
  std::uint64_t* e0 = ell0();
  std::uint64_t* e1 = ell1();
  std::uint64_t* f = fp();
  for (std::size_t i = 0; i < slots_; ++i) {
    e0[i] = in.get_bits(kCounterBits);
    e1[i] = in.get_bits(kFieldBits);
    f[i] = in.get_bits(kFieldBits);
  }
}

}  // namespace ds::sketch
