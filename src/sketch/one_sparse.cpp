#include "sketch/one_sparse.h"

#include <cassert>

namespace ds::sketch {

namespace {

constexpr std::uint64_t kP = util::kDefaultPrime;
constexpr unsigned kFieldBits = 61;  // kDefaultPrime = 2^61 - 1
constexpr unsigned kCounterBits = 64;

/// Map a signed count into F_p.
std::uint64_t to_field(std::int64_t v) {
  if (v >= 0) return static_cast<std::uint64_t>(v) % kP;
  return util::sub_mod(0, static_cast<std::uint64_t>(-v) % kP, kP);
}

}  // namespace

OneSparse OneSparse::make(const model::PublicCoins& coins, std::uint64_t tag,
                          std::uint64_t universe) {
  assert(universe > 0 && universe < kP);
  OneSparse s;
  s.universe_ = universe;
  util::Rng rng =
      coins.stream(model::coin_tag(model::CoinTag::kFingerprint, tag));
  s.z_ = 1 + rng.next_below(kP - 1);  // z in [1, p)
  return s;
}

void OneSparse::add(std::uint64_t index, std::int64_t delta) {
  assert(index < universe_);
  if (delta == 0) return;
  const std::uint64_t d = to_field(delta);
  ell0_ += delta;
  ell1_ = util::add_mod(ell1_, util::mul_mod(d, index % kP, kP), kP);
  fp_ = util::add_mod(fp_, util::mul_mod(d, util::pow_mod(z_, index, kP), kP),
                      kP);
}

void OneSparse::merge(const OneSparse& other) {
  assert(universe_ == other.universe_ && z_ == other.z_ &&
         "sketches with different shapes cannot merge");
  ell0_ += other.ell0_;
  ell1_ = util::add_mod(ell1_, other.ell1_, kP);
  fp_ = util::add_mod(fp_, other.fp_, kP);
}

DecodeResult OneSparse::decode() const {
  if (ell0_ == 0 && ell1_ == 0 && fp_ == 0) {
    return {DecodeStatus::kZero, {}};
  }
  const std::uint64_t c = to_field(ell0_);
  if (c == 0) return {DecodeStatus::kFail, {}};  // cancelling counts

  // Candidate index = ell1 / ell0 in F_p.
  const std::uint64_t index = util::mul_mod(ell1_, util::inv_mod(c, kP), kP);
  if (index >= universe_) return {DecodeStatus::kFail, {}};

  // Fingerprint check: fp must equal ell0 * z^index.
  const std::uint64_t expected =
      util::mul_mod(c, util::pow_mod(z_, index, kP), kP);
  if (expected != fp_) return {DecodeStatus::kFail, {}};
  return {DecodeStatus::kOne, {index, ell0_}};
}

void OneSparse::write(util::BitWriter& out) const {
  out.put_bits(static_cast<std::uint64_t>(ell0_), kCounterBits);
  out.put_bits(ell1_, kFieldBits);
  out.put_bits(fp_, kFieldBits);
}

void OneSparse::read(util::BitReader& in) {
  ell0_ = static_cast<std::int64_t>(in.get_bits(kCounterBits));
  ell1_ = in.get_bits(kFieldBits);
  fp_ = in.get_bits(kFieldBits);
}

std::size_t OneSparse::state_bits() { return kCounterBits + 2 * kFieldBits; }

}  // namespace ds::sketch
