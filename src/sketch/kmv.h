// K-minimum-values (KMV) distinct-elements sketch.
//
// Mergeable summary of a SET of uint64 ids: keep the k smallest values of
// a shared pairwise-independent hash.  Supports the distinct-count
// estimate  F0 ~ (k-1) * RANGE / h_(k)  (exact when fewer than k distinct
// ids were seen).  Used by the edge-counting protocol: both endpoints of
// an edge insert the same canonical edge id, so double-reporting
// deduplicates by construction — a small showcase of the "each edge is
// seen twice" structure the paper's model has.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "model/coins.h"
#include "util/bitio.h"
#include "util/hashing.h"

namespace ds::sketch {

class KmvSketch {
 public:
  /// Shape from public coins; identical (coins, tag, k) = identical hash.
  static KmvSketch make(const model::PublicCoins& coins, std::uint64_t tag,
                        std::uint32_t k);

  void add(std::uint64_t id);
  void merge(const KmvSketch& other);

  /// Estimated number of distinct ids added. Exact when < k were seen.
  [[nodiscard]] double estimate() const;
  /// True iff fewer than k distinct ids were seen (estimate is exact).
  [[nodiscard]] bool is_exact() const noexcept {
    return values_.size() < k_;
  }

  void write(util::BitWriter& out) const;
  void read(util::BitReader& in);

  [[nodiscard]] std::uint32_t k() const noexcept { return k_; }

 private:
  KmvSketch() = default;
  void insert_hash(std::uint64_t h);

  std::uint32_t k_ = 0;
  std::optional<util::KWiseHash> hash_;
  std::vector<std::uint64_t> values_;  // sorted ascending, size <= k
};

}  // namespace ds::sketch
