#include "sketch/agm.h"

#include <bit>
#include <cassert>

#include "graph/dsu.h"

namespace ds::sketch {

using graph::Edge;
using graph::Vertex;

unsigned agm_default_rounds(Vertex n) noexcept {
  return static_cast<unsigned>(std::bit_width(static_cast<std::uint64_t>(n))) +
         3;
}

AgmVertexSketch AgmVertexSketch::make(const model::PublicCoins& coins,
                                      Vertex n, unsigned rounds,
                                      std::uint64_t tag) {
  assert(n >= 2);
  if (rounds == 0) rounds = agm_default_rounds(n);
  AgmVertexSketch s;
  s.n_ = n;
  const std::uint64_t universe = static_cast<std::uint64_t>(n) * (n - 1) / 2;
  s.samplers_.reserve(rounds);
  for (unsigned round = 0; round < rounds; ++round) {
    s.samplers_.push_back(
        L0Sampler::make(coins, util::mix64(tag, round), universe));
  }
  return s;
}

AgmVertexSketch AgmVertexSketch::make_cached(const model::PublicCoins& coins,
                                             Vertex n, unsigned rounds,
                                             std::uint64_t tag) {
  if (rounds == 0) rounds = agm_default_rounds(n);
  struct Entry {
    std::uint64_t seed;
    Vertex n;
    unsigned rounds;
    std::uint64_t tag;
    AgmVertexSketch tmpl;
  };
  // Bounded cache with round-robin eviction; a protocol run touches a
  // handful of distinct shapes, so capacity 16 is generous.  thread_local:
  // encodes run on pool workers and the templates are derived purely from
  // the arguments, so worker-privacy cannot change any result.
  constexpr std::size_t kCapacity = 16;
  thread_local std::vector<Entry> cache;
  thread_local std::size_t next_evict = 0;
  for (const Entry& e : cache) {
    if (e.seed == coins.seed() && e.n == n && e.rounds == rounds &&
        e.tag == tag) {
      return e.tmpl;
    }
  }
  AgmVertexSketch tmpl = make(coins, n, rounds, tag);
  if (cache.size() < kCapacity) {
    cache.push_back(Entry{coins.seed(), n, rounds, tag, tmpl});
  } else {
    cache[next_evict] = Entry{coins.seed(), n, rounds, tag, tmpl};
    next_evict = (next_evict + 1) % kCapacity;
  }
  return tmpl;
}

void AgmVertexSketch::add_vertex_edges(Vertex v,
                                       std::span<const Vertex> neighbors) {
  // Materialize the edge-id and sign rows once, then stream each row
  // through every sampler's batched path.  Equivalent in every written
  // bit to the per-edge loop (add_batch preserves per-element order).
  thread_local std::vector<std::uint64_t> ids;
  thread_local std::vector<std::int64_t> signs;
  ids.resize(neighbors.size());
  signs.resize(neighbors.size());
  for (std::size_t i = 0; i < neighbors.size(); ++i) {
    ids[i] = graph::pair_id(n_, v, neighbors[i]);
    signs[i] = v < neighbors[i] ? +1 : -1;
  }
  for (L0Sampler& sampler : samplers_) sampler.add_batch(ids, signs);
}

void AgmVertexSketch::add_single_edge(Vertex v, Vertex w, std::int64_t scale) {
  const std::uint64_t id = graph::pair_id(n_, v, w);
  const std::int64_t sign = (v < w ? +1 : -1) * scale;
  for (L0Sampler& sampler : samplers_) sampler.add(id, sign);
}

void AgmVertexSketch::merge(const AgmVertexSketch& other) {
  assert(n_ == other.n_ && samplers_.size() == other.samplers_.size());
  for (std::size_t i = 0; i < samplers_.size(); ++i)
    samplers_[i].merge(other.samplers_[i]);
}

void AgmVertexSketch::write(util::BitWriter& out) const {
  for (const L0Sampler& sampler : samplers_) sampler.write(out);
}

void AgmVertexSketch::read(util::BitReader& in) {
  for (L0Sampler& sampler : samplers_) sampler.read(in);
}

std::size_t AgmVertexSketch::state_bits() const {
  std::size_t bits = 0;
  for (const L0Sampler& sampler : samplers_) bits += sampler.state_bits();
  return bits;
}

SpanningForestDecode agm_spanning_forest(Vertex n,
                                         std::vector<AgmVertexSketch> sketches) {
  assert(sketches.size() == n);
  const unsigned rounds = sketches.empty() ? 0 : sketches.front().rounds();

  graph::Dsu dsu(n);
  SpanningForestDecode result;
  // `component_sketch[root]` accumulates the merged sketch of the whole
  // component; we rebuild it lazily per round from scratch to keep the
  // code simple (the referee is not bandwidth-constrained).
  for (unsigned round = 0; round < rounds && dsu.num_sets() > 1; ++round) {
    // Group vertices by component root.
    std::vector<Vertex> root_of(n);
    std::vector<Vertex> roots;
    for (Vertex v = 0; v < n; ++v) {
      root_of[v] = dsu.find(v);
      if (root_of[v] == v) roots.push_back(v);
    }
    // Merge this round's sampler per component.
    std::vector<L0Sampler> merged;
    std::vector<Vertex> merged_root;
    merged.reserve(roots.size());
    {
      // index of root in `merged`
      std::vector<std::uint32_t> slot(n, 0xffffffffu);
      for (Vertex root : roots) {
        slot[root] = static_cast<std::uint32_t>(merged.size());
        merged.push_back(sketches[root].sampler(round));
        merged_root.push_back(root);
      }
      for (Vertex v = 0; v < n; ++v) {
        if (v == root_of[v]) continue;
        merged[slot[root_of[v]]].merge(sketches[v].sampler(round));
      }
    }
    // Boruvka step: each component proposes one outgoing edge.
    bool progress = false;
    for (std::size_t i = 0; i < merged.size(); ++i) {
      const std::optional<Recovered> sample = merged[i].decode();
      if (!sample.has_value()) continue;
      if (sample->count != 1 && sample->count != -1) continue;  // corrupt
      const Edge e = graph::pair_from_id(n, sample->index);
      if (dsu.unite(e.u, e.v)) {
        result.forest.push_back(e);
        progress = true;
      }
    }
    if (!progress && round + 1 == rounds) break;
  }
  result.components = dsu.num_sets();
  return result;
}

}  // namespace ds::sketch
