#include "sketch/s_sparse.h"

#include <algorithm>
#include <cassert>

namespace ds::sketch {

SSparse SSparse::make(const model::PublicCoins& coins, std::uint64_t tag,
                      std::uint64_t universe, std::uint32_t sparsity,
                      std::uint32_t rows) {
  assert(sparsity >= 1 && rows >= 1);
  SSparse s;
  s.universe_ = universe;
  s.sparsity_ = sparsity;
  s.rows_ = rows;
  s.cols_ = 2 * sparsity;
  s.row_hash_.reserve(rows);
  s.cells_.reserve(static_cast<std::size_t>(rows) * s.cols_);
  for (std::uint32_t row = 0; row < rows; ++row) {
    const std::uint64_t row_tag = util::mix64(tag, 0xBB00 + row);
    s.row_hash_.push_back(
        coins.hash(model::coin_tag(model::CoinTag::kBucketHash, row_tag), 2));
    for (std::uint32_t col = 0; col < s.cols_; ++col) {
      s.cells_.push_back(OneSparse::make(
          coins, util::mix64(row_tag, col), universe));
    }
  }
  return s;
}

void SSparse::add(std::uint64_t index, std::int64_t delta) {
  assert(index < universe_);
  for (std::uint32_t row = 0; row < rows_; ++row) {
    const std::uint64_t col = row_hash_[row].bounded(index, cols_);
    cells_[static_cast<std::size_t>(row) * cols_ + col].add(index, delta);
  }
}

void SSparse::merge(const SSparse& other) {
  assert(universe_ == other.universe_ && rows_ == other.rows_ &&
         cols_ == other.cols_);
  for (std::size_t i = 0; i < cells_.size(); ++i) cells_[i].merge(other.cells_[i]);
}

std::optional<std::vector<Recovered>> SSparse::decode() const {
  // Peeling: repeatedly recover a 1-sparse cell and subtract the recovered
  // element everywhere, until the residual is zero (success) or no cell
  // decodes (over-sparse or hash-unlucky: fail).
  SSparse work = *this;
  std::vector<Recovered> found;
  bool progress = true;
  while (progress) {
    progress = false;
    for (const OneSparse& cell : work.cells_) {
      const DecodeResult r = cell.decode();
      if (r.status != DecodeStatus::kOne) continue;
      found.push_back(r.value);
      if (found.size() > sparsity_) return std::nullopt;
      work.add(r.value.index, -r.value.count);
      progress = true;
    }
  }
  for (const OneSparse& cell : work.cells_) {
    if (cell.decode().status != DecodeStatus::kZero) return std::nullopt;
  }
  std::sort(found.begin(), found.end(),
            [](const Recovered& a, const Recovered& b) {
              return a.index < b.index;
            });
  return found;
}

void SSparse::write(util::BitWriter& out) const {
  for (const OneSparse& cell : cells_) cell.write(out);
}

void SSparse::read(util::BitReader& in) {
  for (OneSparse& cell : cells_) cell.read(in);
}

std::size_t SSparse::state_bits() const {
  return cells_.size() * OneSparse::state_bits();
}

}  // namespace ds::sketch
