#include "sketch/s_sparse.h"

#include <algorithm>
#include <cassert>

namespace ds::sketch {

SSparse SSparse::make(const model::PublicCoins& coins, std::uint64_t tag,
                      std::uint64_t universe, std::uint32_t sparsity,
                      std::uint32_t rows) {
  assert(sparsity >= 1 && rows >= 1);
  SSparse s;
  s.universe_ = universe;
  s.sparsity_ = sparsity;
  s.rows_ = rows;
  s.cols_ = 2 * sparsity;
  s.row_hash_.reserve(rows);
  std::vector<std::uint64_t> tags;
  tags.reserve(static_cast<std::size_t>(rows) * s.cols_);
  for (std::uint32_t row = 0; row < rows; ++row) {
    const std::uint64_t row_tag = util::mix64(tag, 0xBB00 + row);
    s.row_hash_.push_back(
        coins.hash(model::coin_tag(model::CoinTag::kBucketHash, row_tag), 2));
    for (std::uint32_t col = 0; col < s.cols_; ++col) {
      tags.push_back(util::mix64(row_tag, col));
    }
  }
  s.cells_ = OneSparseBank::make(coins, tags, universe);
  return s;
}

void SSparse::add(std::uint64_t index, std::int64_t delta) {
  assert(index < universe_);
  for (std::uint32_t row = 0; row < rows_; ++row) {
    const std::uint64_t col = row_hash_[row].bounded(index, cols_);
    cells_.add(static_cast<std::size_t>(row) * cols_ + col, index, delta);
  }
}

void SSparse::add_batch(std::span<const std::uint64_t> indices,
                        std::int64_t delta) {
  thread_local std::vector<std::uint64_t> col_scratch;
  col_scratch.resize(indices.size());
  for (std::uint32_t row = 0; row < rows_; ++row) {
    row_hash_[row].bounded_batch(indices, cols_, col_scratch);
    const std::size_t base = static_cast<std::size_t>(row) * cols_;
    for (std::size_t i = 0; i < indices.size(); ++i) {
      cells_.add(base + col_scratch[i], indices[i], delta);
    }
  }
}

void SSparse::merge(const SSparse& other) {
  assert(universe_ == other.universe_ && rows_ == other.rows_ &&
         cols_ == other.cols_);
  cells_.merge(other.cells_);
}

std::optional<std::vector<Recovered>> SSparse::decode() const {
  // Peeling: repeatedly recover a 1-sparse cell and subtract the recovered
  // element everywhere, until the residual is zero (success) or no cell
  // decodes (over-sparse or hash-unlucky: fail).
  SSparse work = *this;
  std::vector<Recovered> found;
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t cell = 0; cell < work.cells_.size(); ++cell) {
      const DecodeResult r = work.cells_.decode(cell);
      if (r.status != DecodeStatus::kOne) continue;
      found.push_back(r.value);
      if (found.size() > sparsity_) return std::nullopt;
      work.add(r.value.index, -r.value.count);
      progress = true;
    }
  }
  for (std::size_t cell = 0; cell < work.cells_.size(); ++cell) {
    if (work.cells_.decode(cell).status != DecodeStatus::kZero) {
      return std::nullopt;
    }
  }
  std::sort(found.begin(), found.end(),
            [](const Recovered& a, const Recovered& b) {
              return a.index < b.index;
            });
  return found;
}

void SSparse::write(util::BitWriter& out) const { cells_.write(out); }

void SSparse::read(util::BitReader& in) { cells_.read(in); }

std::size_t SSparse::state_bits() const { return cells_.state_bits(); }

}  // namespace ds::sketch
