// Recovery of s-sparse signed vectors by hashing into 1-sparse cells.
//
// A grid of `rows` x `cols` OneSparse summaries; row hashes are pairwise
// independent (derived from public coins), cols ~ 2s so each nonzero lands
// alone in its cell with probability >= 1/2 per row.  Linear, hence
// mergeable.  Used directly by protocols that want "send me up to s edges,
// compressed", and as a building block everywhere a constant-failure
// recovery is enough.
//
// The cell grid is a OneSparseBank (structure-of-arrays, row-major), and
// add_batch hashes a whole span of indices per row hash per call — same
// bit-identity contract as the L0 sampler (docs/ENGINE.md "hot path").
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "model/coins.h"
#include "sketch/one_sparse.h"
#include "util/hashing.h"

namespace ds::sketch {

class SSparse {
 public:
  /// Shape: recovers vectors with up to `sparsity` nonzeros from index
  /// space [0, universe); `rows` independent repetitions (failure
  /// probability drops geometrically in rows).
  static SSparse make(const model::PublicCoins& coins, std::uint64_t tag,
                      std::uint64_t universe, std::uint32_t sparsity,
                      std::uint32_t rows = 6);

  void add(std::uint64_t index, std::int64_t delta);

  /// Batched add of a whole index row at one delta: equivalent to
  /// add(indices[i], delta) for every i in order, but each row hash is
  /// evaluated over the full span per call.
  void add_batch(std::span<const std::uint64_t> indices, std::int64_t delta);

  void merge(const SSparse& other);

  /// All recovered (index, count) pairs, sorted by index, or nullopt if
  /// the vector was detectably not s-sparse (more than `sparsity`
  /// distinct indices decoded).  Counts of zero never appear.
  [[nodiscard]] std::optional<std::vector<Recovered>> decode() const;

  void write(util::BitWriter& out) const;
  void read(util::BitReader& in);
  [[nodiscard]] std::size_t state_bits() const;

 private:
  SSparse() = default;

  std::uint64_t universe_ = 0;
  std::uint32_t sparsity_ = 0;
  std::uint32_t rows_ = 0;
  std::uint32_t cols_ = 0;
  std::vector<util::KWiseHash> row_hash_;  // one per row
  OneSparseBank cells_;                    // rows_ * cols_, row-major
};

}  // namespace ds::sketch
