// Exact recovery of 1-sparse signed vectors, with a fingerprint test.
//
// The basic building block of the AGM sketch.  A OneSparse summary of a
// vector x in Z^U holds
//     ell0 = sum_i x_i,
//     ell1 = sum_i x_i * i            (mod p),
//     fp   = sum_i x_i * z^i          (mod p, random z),
// which is linear, so summaries of two vectors merge by addition — this is
// what lets the referee combine per-vertex sketches into per-component
// sketches.  If x has exactly one nonzero coordinate (i*, c) then
// ell1/ell0 = i* and fp = c * z^{i*}; the fingerprint check fails for
// non-1-sparse x except with probability <= U/p over z.
//
// The *shape* (index space, modulus, z) is derived from public coins so
// players and referee agree on it without communication; only the *state*
// (three field words and a counter) is serialized into messages.
//
// Two containers share the arithmetic:
//   * OneSparse — a single standalone summary.
//   * OneSparseBank — N summaries in one structure-of-arrays buffer (all
//     z values, then all counters, then all ell1, then all fp, in one
//     contiguous allocation).  The L0 sampler's level table and the
//     s-sparse cell grid are banks, so the encode/decode hot path walks
//     contiguous memory and a bank copy is a single allocation
//     (docs/ENGINE.md "hot path").  Slot i of a bank built from tag t_i
//     is bit-identical in shape and state to OneSparse::make(coins, t_i,
//     universe) fed the same updates — pinned by
//     tests/sketch/one_sparse_test.cpp.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "model/coins.h"
#include "util/bitio.h"
#include "util/modular.h"

namespace ds::sketch {

struct Recovered {
  std::uint64_t index;
  std::int64_t count;
};

enum class DecodeStatus { kZero, kOne, kFail };

struct DecodeResult {
  DecodeStatus status;
  Recovered value;  // meaningful only when status == kOne
};

class OneSparse {
 public:
  /// Shape from public coins: index space [0, universe), fingerprint base
  /// z ~ U(F_p). Equal (coins, tag, universe) give equal shapes.
  static OneSparse make(const model::PublicCoins& coins, std::uint64_t tag,
                        std::uint64_t universe);

  void add(std::uint64_t index, std::int64_t delta);
  void merge(const OneSparse& other);

  [[nodiscard]] DecodeResult decode() const;

  /// Serialize / deserialize state (not shape).
  void write(util::BitWriter& out) const;
  void read(util::BitReader& in);

  /// Exact state bits as written by write().
  [[nodiscard]] static std::size_t state_bits();

  [[nodiscard]] std::uint64_t universe() const noexcept { return universe_; }

 private:
  OneSparse() = default;

  std::uint64_t universe_ = 0;
  std::uint64_t z_ = 0;  // fingerprint base

  std::int64_t ell0_ = 0;    // sum of counts (exact, signed)
  std::uint64_t ell1_ = 0;   // sum of count*index mod p
  std::uint64_t fp_ = 0;     // fingerprint mod p
};

/// Structure-of-arrays bank of OneSparse summaries over one universe.
///
/// The bank separates *shape* from *state*.  Shape — the per-slot
/// fingerprint bases z and their fixed-base power tables — is immutable,
/// derived only from (coins, tags, universe), and held by shared_ptr: a
/// bank copy shares it, so copying a cached sketch template copies only
/// state.  State is one allocation laid out
/// [ ell0[0..N) | ell1[0..N) | fp[0..N) ]; ell0 is stored as the
/// two's-complement bit pattern of the signed counter (exactly the bits
/// write() emits).
///
/// The power tables turn the per-update z^index into a product of
/// ceil(bit_width(universe-1)/8) table entries (windowed fixed-base
/// exponentiation) instead of a ~2*log2(index)-multiply square-and-chain
/// — the dominant saving of the encode hot path.  The residue is the
/// same field element either way, so every downstream bit is unchanged.
class OneSparseBank {
 public:
  OneSparseBank() = default;

  /// One slot per tag; slot i's shape equals
  /// OneSparse::make(coins, tags[i], universe).
  static OneSparseBank make(const model::PublicCoins& coins,
                            std::span<const std::uint64_t> tags,
                            std::uint64_t universe);

  [[nodiscard]] std::size_t size() const noexcept { return slots_; }
  [[nodiscard]] std::uint64_t universe() const noexcept { return universe_; }

  void add(std::size_t slot, std::uint64_t index, std::int64_t delta);

  /// Add (index, delta) to every slot in [0, upto] — the L0 sampler's
  /// nested-subsampling walk.  The shared ell1 term is computed once;
  /// only the per-slot fingerprint power differs.
  void add_prefix(std::size_t upto, std::uint64_t index, std::int64_t delta);

  void merge(const OneSparseBank& other);

  [[nodiscard]] DecodeResult decode(std::size_t slot) const;

  /// Serialize / deserialize every slot's state in slot order (identical
  /// bit stream to calling OneSparse::write per slot).
  void write(util::BitWriter& out) const;
  void read(util::BitReader& in);

  [[nodiscard]] std::size_t state_bits() const noexcept {
    return slots_ * OneSparse::state_bits();
  }

 private:
  /// Immutable per-shape data, shared between copies of a bank.
  struct Shape {
    std::vector<std::uint64_t> z;  // slots_ fingerprint bases
    /// Fixed-base tables: for slot s and window w < windows,
    /// pow[(s * windows + w) * 256 + j] = z[s]^(j << (8w)) mod p.
    std::vector<std::uint64_t> pow;
    unsigned windows = 1;
  };

  [[nodiscard]] std::uint64_t z(std::size_t i) const noexcept {
    return shape_->z[i];
  }
  /// z[slot]^index mod p via the windowed tables.
  [[nodiscard]] std::uint64_t z_pow(std::size_t slot,
                                    std::uint64_t index) const noexcept;
  [[nodiscard]] std::uint64_t* ell0() noexcept { return data_.data(); }
  [[nodiscard]] const std::uint64_t* ell0() const noexcept {
    return data_.data();
  }
  [[nodiscard]] std::uint64_t* ell1() noexcept {
    return data_.data() + slots_;
  }
  [[nodiscard]] const std::uint64_t* ell1() const noexcept {
    return data_.data() + slots_;
  }
  [[nodiscard]] std::uint64_t* fp() noexcept {
    return data_.data() + 2 * slots_;
  }
  [[nodiscard]] const std::uint64_t* fp() const noexcept {
    return data_.data() + 2 * slots_;
  }

  std::uint64_t universe_ = 0;
  std::size_t slots_ = 0;
  std::shared_ptr<const Shape> shape_;
  std::vector<std::uint64_t> data_;  // 3 * slots_ words of state
};

}  // namespace ds::sketch
