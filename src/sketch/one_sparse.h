// Exact recovery of 1-sparse signed vectors, with a fingerprint test.
//
// The basic building block of the AGM sketch.  A OneSparse summary of a
// vector x in Z^U holds
//     ell0 = sum_i x_i,
//     ell1 = sum_i x_i * i            (mod p),
//     fp   = sum_i x_i * z^i          (mod p, random z),
// which is linear, so summaries of two vectors merge by addition — this is
// what lets the referee combine per-vertex sketches into per-component
// sketches.  If x has exactly one nonzero coordinate (i*, c) then
// ell1/ell0 = i* and fp = c * z^{i*}; the fingerprint check fails for
// non-1-sparse x except with probability <= U/p over z.
//
// The *shape* (index space, modulus, z) is derived from public coins so
// players and referee agree on it without communication; only the *state*
// (three field words and a counter) is serialized into messages.
#pragma once

#include <cstdint>
#include <optional>

#include "model/coins.h"
#include "util/bitio.h"
#include "util/modular.h"

namespace ds::sketch {

struct Recovered {
  std::uint64_t index;
  std::int64_t count;
};

enum class DecodeStatus { kZero, kOne, kFail };

struct DecodeResult {
  DecodeStatus status;
  Recovered value;  // meaningful only when status == kOne
};

class OneSparse {
 public:
  /// Shape from public coins: index space [0, universe), fingerprint base
  /// z ~ U(F_p). Equal (coins, tag, universe) give equal shapes.
  static OneSparse make(const model::PublicCoins& coins, std::uint64_t tag,
                        std::uint64_t universe);

  void add(std::uint64_t index, std::int64_t delta);
  void merge(const OneSparse& other);

  [[nodiscard]] DecodeResult decode() const;

  /// Serialize / deserialize state (not shape).
  void write(util::BitWriter& out) const;
  void read(util::BitReader& in);

  /// Exact state bits as written by write().
  [[nodiscard]] static std::size_t state_bits();

  [[nodiscard]] std::uint64_t universe() const noexcept { return universe_; }

 private:
  OneSparse() = default;

  std::uint64_t universe_ = 0;
  std::uint64_t z_ = 0;  // fingerprint base

  std::int64_t ell0_ = 0;    // sum of counts (exact, signed)
  std::uint64_t ell1_ = 0;   // sum of count*index mod p
  std::uint64_t fp_ = 0;     // fingerprint mod p
};

}  // namespace ds::sketch
