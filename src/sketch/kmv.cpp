#include "sketch/kmv.h"

#include <algorithm>
#include <cassert>

namespace ds::sketch {

namespace {
// Hash range: the field size of the default prime (values are < p).
constexpr double kRange = static_cast<double>(util::kDefaultPrime);
constexpr unsigned kValueBits = 61;
}  // namespace

KmvSketch KmvSketch::make(const model::PublicCoins& coins, std::uint64_t tag,
                          std::uint32_t k) {
  assert(k >= 2);
  KmvSketch s;
  s.k_ = k;
  s.hash_ = coins.hash(model::coin_tag(model::CoinTag::kBucketHash,
                                       util::mix64(0x6B6D76, tag)),
                       2);
  return s;
}

void KmvSketch::insert_hash(std::uint64_t h) {
  const auto it = std::lower_bound(values_.begin(), values_.end(), h);
  if (it != values_.end() && *it == h) return;  // duplicate id
  if (values_.size() == k_) {
    if (h >= values_.back()) return;  // not among the k smallest
    values_.pop_back();
  }
  values_.insert(std::lower_bound(values_.begin(), values_.end(), h), h);
}

void KmvSketch::add(std::uint64_t id) { insert_hash((*hash_)(id)); }

void KmvSketch::merge(const KmvSketch& other) {
  assert(k_ == other.k_);
  for (std::uint64_t h : other.values_) insert_hash(h);
}

double KmvSketch::estimate() const {
  if (values_.size() < k_) return static_cast<double>(values_.size());
  // Standard KMV estimator: (k-1) / U(h_(k)) with U the uniformized hash.
  const double kth = static_cast<double>(values_.back());
  return (static_cast<double>(k_) - 1.0) * kRange / kth;
}

void KmvSketch::write(util::BitWriter& out) const {
  out.put_gamma(values_.size() + 1);
  for (std::uint64_t v : values_) out.put_bits(v, kValueBits);
}

void KmvSketch::read(util::BitReader& in) {
  values_.clear();
  std::uint64_t count = in.get_gamma() - 1;
  const std::uint64_t max_possible = in.bits_remaining() / kValueBits;
  if (count > max_possible) count = max_possible;
  values_.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    values_.push_back(in.get_bits(kValueBits));
  }
  std::sort(values_.begin(), values_.end());
  if (values_.size() > k_) values_.resize(k_);
}

}  // namespace ds::sketch
