#include "sketch/l0_sampler.h"

#include <bit>
#include <cassert>

namespace ds::sketch {

L0Sampler L0Sampler::make(const model::PublicCoins& coins, std::uint64_t tag,
                          std::uint64_t universe) {
  assert(universe > 0);
  L0Sampler s;
  s.universe_ = universe;
  s.level_hash_ =
      coins.hash(model::coin_tag(model::CoinTag::kLevelHash, tag), 2);
  const unsigned num_levels =
      static_cast<unsigned>(std::bit_width(universe)) + 2;
  s.levels_.reserve(num_levels);
  for (unsigned level = 0; level < num_levels; ++level) {
    s.levels_.push_back(
        OneSparse::make(coins, util::mix64(tag, 0xCC00 + level), universe));
  }
  return s;
}

void L0Sampler::add(std::uint64_t index, std::int64_t delta) {
  assert(index < universe_);
  const unsigned max_level = num_levels() - 1;
  const unsigned level = util::sample_level(*level_hash_, index, max_level);
  // Index participates in every level up to its sampled level (the nested
  // subsampling makes level l's survivor set a subset of level l-1's).
  for (unsigned l = 0; l <= level; ++l) levels_[l].add(index, delta);
}

void L0Sampler::merge(const L0Sampler& other) {
  assert(universe_ == other.universe_ &&
         levels_.size() == other.levels_.size());
  for (std::size_t l = 0; l < levels_.size(); ++l)
    levels_[l].merge(other.levels_[l]);
}

std::optional<Recovered> L0Sampler::decode() const {
  // Prefer the sparsest non-empty level: scan from the top.
  for (auto it = levels_.rbegin(); it != levels_.rend(); ++it) {
    const DecodeResult r = it->decode();
    if (r.status == DecodeStatus::kOne) return r.value;
  }
  return std::nullopt;
}

bool L0Sampler::looks_zero() const {
  for (const OneSparse& level : levels_) {
    if (level.decode().status != DecodeStatus::kZero) return false;
  }
  return true;
}

void L0Sampler::write(util::BitWriter& out) const {
  for (const OneSparse& level : levels_) level.write(out);
}

void L0Sampler::read(util::BitReader& in) {
  for (OneSparse& level : levels_) level.read(in);
}

std::size_t L0Sampler::state_bits() const {
  return levels_.size() * OneSparse::state_bits();
}

}  // namespace ds::sketch
