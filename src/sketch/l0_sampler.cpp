#include "sketch/l0_sampler.h"

#include <bit>
#include <cassert>

namespace ds::sketch {

L0Sampler L0Sampler::make(const model::PublicCoins& coins, std::uint64_t tag,
                          std::uint64_t universe) {
  assert(universe > 0);
  L0Sampler s;
  s.universe_ = universe;
  s.level_hash_ =
      coins.hash(model::coin_tag(model::CoinTag::kLevelHash, tag), 2);
  const unsigned num_levels =
      static_cast<unsigned>(std::bit_width(universe)) + 2;
  std::vector<std::uint64_t> tags;
  tags.reserve(num_levels);
  for (unsigned level = 0; level < num_levels; ++level) {
    tags.push_back(util::mix64(tag, 0xCC00 + level));
  }
  s.levels_ = OneSparseBank::make(coins, tags, universe);
  return s;
}

void L0Sampler::add(std::uint64_t index, std::int64_t delta) {
  assert(index < universe_);
  const unsigned max_level = num_levels() - 1;
  const unsigned level = util::sample_level(*level_hash_, index, max_level);
  // Index participates in every level up to its sampled level (the nested
  // subsampling makes level l's survivor set a subset of level l-1's).
  levels_.add_prefix(level, index, delta);
}

void L0Sampler::add_batch(std::span<const std::uint64_t> indices,
                          std::span<const std::int64_t> deltas) {
  assert(indices.size() == deltas.size());
  const unsigned max_level = num_levels() - 1;
  // One hash evaluation pass over the whole row, then the level walks.
  // thread_local scratch: add_batch runs on pool workers; the buffer is
  // instrumentation-free state that never outlives the call's semantics.
  thread_local std::vector<std::uint32_t> level_scratch;
  level_scratch.resize(indices.size());
  util::sample_level_batch(*level_hash_, indices, max_level, level_scratch);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    levels_.add_prefix(level_scratch[i], indices[i], deltas[i]);
  }
}

void L0Sampler::merge(const L0Sampler& other) {
  assert(universe_ == other.universe_ &&
         levels_.size() == other.levels_.size());
  levels_.merge(other.levels_);
}

std::optional<Recovered> L0Sampler::decode() const {
  // Prefer the sparsest non-empty level: scan from the top.
  for (std::size_t l = levels_.size(); l-- > 0;) {
    const DecodeResult r = levels_.decode(l);
    if (r.status == DecodeStatus::kOne) return r.value;
  }
  return std::nullopt;
}

bool L0Sampler::looks_zero() const {
  for (std::size_t l = 0; l < levels_.size(); ++l) {
    if (levels_.decode(l).status != DecodeStatus::kZero) return false;
  }
  return true;
}

void L0Sampler::write(util::BitWriter& out) const { levels_.write(out); }

void L0Sampler::read(util::BitReader& in) { levels_.read(in); }

std::size_t L0Sampler::state_bits() const { return levels_.state_bits(); }

}  // namespace ds::sketch
