// Deterministic parallel execution for the trial loops and per-player
// encode loops that dominate every experiment's wall clock.
//
// The model itself guarantees the parallelism is safe: a player's message
// is a deterministic function of its own view plus the public coins
// (Section 2.1), so per-vertex encodes never race, and trial loops use
// counter-based seed derivation (util::derive_seed) so trial i's
// randomness is independent of how many trials ran before it.
//
// Determinism contract (see docs/PARALLELISM.md): every parallel_for /
// parallel_reduce decomposes [begin, end) into a FIXED chunk partition
// that depends only on the range size — never on the thread count — and
// parallel_reduce folds the per-chunk accumulators in chunk order on the
// calling thread.  Results are therefore bit-identical at any thread
// count (including 1), even for non-commutative or floating-point merges.
//
// This is deliberately a work-stealing-free pool: one shared job at a
// time, chunks claimed from an atomic cursor, no per-thread deques.  The
// loops it serves are embarrassingly parallel and coarse-grained, so the
// simple design wins on predictability and auditability.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace ds::parallel {

/// Parse a DISTSKETCH_THREADS-style override.  Returns `hardware`
/// (clamped to >= 1) when `text` is null, empty, non-numeric, or zero;
/// otherwise the parsed value clamped to [1, 512].
[[nodiscard]] std::size_t parse_thread_count(const char* text,
                                             std::size_t hardware) noexcept;

/// The thread count the global pool uses: DISTSKETCH_THREADS if set,
/// else std::thread::hardware_concurrency().
[[nodiscard]] std::size_t configured_threads() noexcept;

class ThreadPool {
 public:
  /// A pool of `threads` total execution lanes (the calling thread
  /// participates, so `threads - 1` workers are spawned).  `threads <= 1`
  /// spawns nothing and every loop runs inline on the caller.
  explicit ThreadPool(std::size_t threads = configured_threads());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution lanes, including the calling thread. Always >= 1.
  [[nodiscard]] std::size_t num_threads() const noexcept {
    return workers_.size() + 1;
  }

  /// body(i) for every i in [begin, end), in parallel.  The body must only
  /// write state owned by index i (slot-indexed outputs).  The first
  /// exception thrown by any invocation is rethrown on the calling thread
  /// after the loop completes; later chunks are skipped once one fails.
  template <typename Body>
  void parallel_for(std::size_t begin, std::size_t end, Body&& body) {
    if (begin >= end) return;
    const std::size_t n = end - begin;
    const std::size_t chunks = chunk_count(n);
    run_chunks(chunks, [&](std::size_t c) {
      const auto [lo, hi] = chunk_bounds(n, chunks, c);
      for (std::size_t i = lo; i < hi; ++i) body(begin + i);
    });
  }

  /// Deterministic reduction: each chunk folds into its own copy of
  /// `init` via body(acc, i) (indices in order within the chunk), then the
  /// per-chunk accumulators are merged IN CHUNK ORDER on the calling
  /// thread via merge(into, from).  Because the chunk partition is
  /// independent of the thread count, the result is bit-identical at any
  /// thread count — merge need not be commutative.
  template <typename T, typename Body, typename Merge>
  [[nodiscard]] T parallel_reduce(std::size_t begin, std::size_t end, T init,
                                  Body&& body, Merge&& merge) {
    if (begin >= end) return init;
    const std::size_t n = end - begin;
    const std::size_t chunks = chunk_count(n);
    std::vector<T> partials(chunks, init);
    run_chunks(chunks, [&](std::size_t c) {
      const auto [lo, hi] = chunk_bounds(n, chunks, c);
      T& acc = partials[c];
      for (std::size_t i = lo; i < hi; ++i) body(acc, begin + i);
    });
    T result = std::move(partials[0]);
    for (std::size_t c = 1; c < chunks; ++c) {
      merge(result, std::move(partials[c]));
    }
    return result;
  }

  /// The fixed range decomposition: min(n, 64) chunks, a function of the
  /// range size only (public so tests can assert the partition).
  [[nodiscard]] static std::size_t chunk_count(std::size_t n) noexcept;

  /// Half-open [lo, hi) of chunk c under the `chunks`-way split of n
  /// items: sizes differ by at most one, earlier chunks get the remainder.
  [[nodiscard]] static std::pair<std::size_t, std::size_t> chunk_bounds(
      std::size_t n, std::size_t chunks, std::size_t c) noexcept;

 private:
  // One in-flight job: chunks are claimed via fetch_add on `next`; `done`
  // and `error` are guarded by the pool mutex.  Heap-allocated and shared
  // so a worker that wakes late holds the old job alive harmlessly (its
  // cursor is exhausted) instead of touching recycled state.
  struct Job {
    std::function<void(std::size_t)> fn;
    std::size_t count = 0;
    std::atomic<std::size_t> next{0};
    std::size_t done = 0;
    std::exception_ptr error;
    // Submission timestamp (steady-clock ns) for the queue-wait metric;
    // 0 when metrics are off so workers never touch the clock.
    std::uint64_t submit_ns = 0;
  };

  void run_chunks(std::size_t count,
                  const std::function<void(std::size_t)>& chunk_fn);
  void drain(Job& job, bool worker);
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_cv_;   // workers wait here for a job
  std::condition_variable done_cv_;   // the submitter waits here
  std::mutex submit_mutex_;           // serializes concurrent submitters
  std::shared_ptr<Job> job_;          // guarded by mutex_
  bool stop_ = false;                 // guarded by mutex_
};

/// The process-wide pool, sized by configured_threads() at first use.
/// Every harness entry point that takes an optional `ThreadPool*` routes
/// null here, so `DISTSKETCH_THREADS=1 ./binary` forces serial execution
/// everywhere without code changes.
[[nodiscard]] ThreadPool& global_pool();

/// Route-through helpers: run on `pool` if given, else the global pool.
[[nodiscard]] inline ThreadPool& resolve(ThreadPool* pool) {
  return pool != nullptr ? *pool : global_pool();
}

template <typename Body>
void parallel_for(ThreadPool* pool, std::size_t begin, std::size_t end,
                  Body&& body) {
  resolve(pool).parallel_for(begin, end, std::forward<Body>(body));
}

template <typename T, typename Body, typename Merge>
[[nodiscard]] T parallel_reduce(ThreadPool* pool, std::size_t begin,
                                std::size_t end, T init, Body&& body,
                                Merge&& merge) {
  return resolve(pool).parallel_reduce(begin, end, std::move(init),
                                       std::forward<Body>(body),
                                       std::forward<Merge>(merge));
}

}  // namespace ds::parallel
