#include "parallel/thread_pool.h"

#include <chrono>
#include <cstdlib>

#include "obs/obs.h"

namespace ds::parallel {

namespace {

// Set while this thread is executing a pool chunk.  Nested parallel loops
// (a trial body that itself calls collect_sketches) run inline instead of
// re-entering the pool, so a worker can never block on a job that only it
// could finish.
thread_local bool t_inside_pool_task = false;

constexpr std::size_t kMaxThreads = 512;
constexpr std::size_t kMaxChunks = 64;

/// Pool metrics (docs/OBSERVABILITY.md).  Every update is an atomic on a
/// side channel — never inside the chunk partition or the ordered merge —
/// so the determinism contract (bit-identical results at any thread
/// count) is untouched; clocks are only read when metrics are enabled.
struct PoolMetrics {
  obs::Counter& jobs = obs::counter("parallel.jobs");
  obs::Counter& chunks = obs::counter("parallel.chunks");
  obs::Counter& inline_loops = obs::counter("parallel.inline_loops");
  obs::Counter& submitter_chunks = obs::counter("parallel.submitter_chunks");
  obs::Counter& worker_chunks = obs::counter("parallel.worker_chunks");
  obs::Histogram& job_us = obs::histogram("parallel.job_us");
  obs::Histogram& chunk_us = obs::histogram("parallel.chunk_us");
  obs::Histogram& queue_wait_us = obs::histogram("parallel.queue_wait_us");
};

PoolMetrics& metrics() {
  static PoolMetrics m;
  return m;
}

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

std::size_t parse_thread_count(const char* text,
                               std::size_t hardware) noexcept {
  const std::size_t fallback = hardware == 0 ? 1 : hardware;
  if (text == nullptr || *text == '\0') return fallback;
  std::size_t value = 0;
  for (const char* p = text; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') return fallback;
    const auto digit = static_cast<std::size_t>(*p - '0');
    if (value > (kMaxThreads - digit) / 10) return kMaxThreads;  // overflow
    value = value * 10 + digit;
  }
  if (value == 0) return fallback;
  return value > kMaxThreads ? kMaxThreads : value;
}

std::size_t configured_threads() noexcept {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read once, before any worker
  // exists (the global pool is constructed on first use).
  return parse_thread_count(std::getenv("DISTSKETCH_THREADS"),
                            std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t lanes = threads == 0 ? 1 : threads;
  workers_.reserve(lanes - 1);
  for (std::size_t i = 0; i + 1 < lanes; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lk(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::size_t ThreadPool::chunk_count(std::size_t n) noexcept {
  return n < kMaxChunks ? n : kMaxChunks;
}

std::pair<std::size_t, std::size_t> ThreadPool::chunk_bounds(
    std::size_t n, std::size_t chunks, std::size_t c) noexcept {
  const std::size_t base = n / chunks;
  const std::size_t rem = n % chunks;
  const std::size_t lo = c * base + (c < rem ? c : rem);
  const std::size_t hi = lo + base + (c < rem ? 1 : 0);
  return {lo, hi};
}

void ThreadPool::run_chunks(std::size_t count,
                            const std::function<void(std::size_t)>& chunk_fn) {
  if (count == 0) return;
  if (workers_.empty() || count == 1 || t_inside_pool_task) {
    // Serial path: no workers, a single chunk, or a nested loop issued
    // from inside a pool task.  Exceptions propagate naturally.
    metrics().inline_loops.increment();
    metrics().chunks.add(count);
    for (std::size_t c = 0; c < count; ++c) chunk_fn(c);
    return;
  }

  const obs::ScopedSpan job_span("parallel.job", &metrics().job_us);
  metrics().jobs.increment();

  const std::lock_guard<std::mutex> submit_guard(submit_mutex_);
  auto job = std::make_shared<Job>();
  job->fn = chunk_fn;
  job->count = count;
  if (obs::metrics_enabled()) job->submit_ns = steady_ns();
  {
    const std::lock_guard<std::mutex> lk(mutex_);
    job_ = job;
  }
  work_cv_.notify_all();

  drain(*job, /*worker=*/false);  // the submitting thread is a lane too

  std::unique_lock<std::mutex> lk(mutex_);
  done_cv_.wait(lk, [&] { return job->done == job->count; });
  job_.reset();
  lk.unlock();
  if (job->error) std::rethrow_exception(job->error);
}

void ThreadPool::drain(Job& job, bool worker) {
  t_inside_pool_task = true;
  bool first_claim = true;
  for (;;) {
    const std::size_t c = job.next.fetch_add(1, std::memory_order_relaxed);
    if (c >= job.count) break;
    if (first_claim) {
      first_claim = false;
      // Queue wait: submission to this lane's first claimed chunk.
      // submit_ns is 0 when metrics were off at submission.
      if (worker && job.submit_ns != 0) {
        metrics().queue_wait_us.record((steady_ns() - job.submit_ns) /
                                       1000);
      }
    }
    metrics().chunks.increment();
    (worker ? metrics().worker_chunks : metrics().submitter_chunks)
        .increment();
    const std::uint64_t chunk_start =
        job.submit_ns != 0 ? steady_ns() : 0;
    bool skip;
    {
      const std::lock_guard<std::mutex> lk(mutex_);
      skip = job.error != nullptr;  // fail fast once one chunk threw
    }
    if (!skip) {
      try {
        job.fn(c);
      } catch (...) {
        const std::lock_guard<std::mutex> lk(mutex_);
        if (!job.error) job.error = std::current_exception();
      }
    }
    if (chunk_start != 0) {
      metrics().chunk_us.record((steady_ns() - chunk_start) / 1000);
    }
    {
      const std::lock_guard<std::mutex> lk(mutex_);
      if (++job.done == job.count) done_cv_.notify_all();
    }
  }
  t_inside_pool_task = false;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lk(mutex_);
      work_cv_.wait(lk, [&] {
        return stop_ ||
               (job_ != nullptr &&
                job_->next.load(std::memory_order_relaxed) < job_->count);
      });
      if (stop_) return;
      job = job_;
    }
    drain(*job, /*worker=*/true);
  }
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace ds::parallel
