#include "parallel/thread_pool.h"

#include <cstdlib>

namespace ds::parallel {

namespace {

// Set while this thread is executing a pool chunk.  Nested parallel loops
// (a trial body that itself calls collect_sketches) run inline instead of
// re-entering the pool, so a worker can never block on a job that only it
// could finish.
thread_local bool t_inside_pool_task = false;

constexpr std::size_t kMaxThreads = 512;
constexpr std::size_t kMaxChunks = 64;

}  // namespace

std::size_t parse_thread_count(const char* text,
                               std::size_t hardware) noexcept {
  const std::size_t fallback = hardware == 0 ? 1 : hardware;
  if (text == nullptr || *text == '\0') return fallback;
  std::size_t value = 0;
  for (const char* p = text; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') return fallback;
    const auto digit = static_cast<std::size_t>(*p - '0');
    if (value > (kMaxThreads - digit) / 10) return kMaxThreads;  // overflow
    value = value * 10 + digit;
  }
  if (value == 0) return fallback;
  return value > kMaxThreads ? kMaxThreads : value;
}

std::size_t configured_threads() noexcept {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read once, before any worker
  // exists (the global pool is constructed on first use).
  return parse_thread_count(std::getenv("DISTSKETCH_THREADS"),
                            std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t lanes = threads == 0 ? 1 : threads;
  workers_.reserve(lanes - 1);
  for (std::size_t i = 0; i + 1 < lanes; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lk(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::size_t ThreadPool::chunk_count(std::size_t n) noexcept {
  return n < kMaxChunks ? n : kMaxChunks;
}

std::pair<std::size_t, std::size_t> ThreadPool::chunk_bounds(
    std::size_t n, std::size_t chunks, std::size_t c) noexcept {
  const std::size_t base = n / chunks;
  const std::size_t rem = n % chunks;
  const std::size_t lo = c * base + (c < rem ? c : rem);
  const std::size_t hi = lo + base + (c < rem ? 1 : 0);
  return {lo, hi};
}

void ThreadPool::run_chunks(std::size_t count,
                            const std::function<void(std::size_t)>& chunk_fn) {
  if (count == 0) return;
  if (workers_.empty() || count == 1 || t_inside_pool_task) {
    // Serial path: no workers, a single chunk, or a nested loop issued
    // from inside a pool task.  Exceptions propagate naturally.
    for (std::size_t c = 0; c < count; ++c) chunk_fn(c);
    return;
  }

  const std::lock_guard<std::mutex> submit_guard(submit_mutex_);
  auto job = std::make_shared<Job>();
  job->fn = chunk_fn;
  job->count = count;
  {
    const std::lock_guard<std::mutex> lk(mutex_);
    job_ = job;
  }
  work_cv_.notify_all();

  drain(*job);  // the submitting thread is a lane too

  std::unique_lock<std::mutex> lk(mutex_);
  done_cv_.wait(lk, [&] { return job->done == job->count; });
  job_.reset();
  lk.unlock();
  if (job->error) std::rethrow_exception(job->error);
}

void ThreadPool::drain(Job& job) {
  t_inside_pool_task = true;
  for (;;) {
    const std::size_t c = job.next.fetch_add(1, std::memory_order_relaxed);
    if (c >= job.count) break;
    bool skip;
    {
      const std::lock_guard<std::mutex> lk(mutex_);
      skip = job.error != nullptr;  // fail fast once one chunk threw
    }
    if (!skip) {
      try {
        job.fn(c);
      } catch (...) {
        const std::lock_guard<std::mutex> lk(mutex_);
        if (!job.error) job.error = std::current_exception();
      }
    }
    {
      const std::lock_guard<std::mutex> lk(mutex_);
      if (++job.done == job.count) done_cv_.notify_all();
    }
  }
  t_inside_pool_task = false;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lk(mutex_);
      work_cv_.wait(lk, [&] {
        return stop_ ||
               (job_ != nullptr &&
                job_->next.load(std::memory_order_relaxed) < job_->count);
      });
      if (stop_) return;
      job = job_;
    }
    drain(*job);
  }
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace ds::parallel
