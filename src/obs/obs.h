// Lightweight, deterministic-safe observability: monotonic counters,
// log2-bucketed histograms (latency and message sizes), and span-style
// tracing behind one thread-safe registry.
//
// Design rules (docs/OBSERVABILITY.md):
//
//   * Never on the result path.  Instruments record what happened — bits,
//     bytes, durations, queue depths — and are forbidden from feeding
//     anything back into protocol execution, so bit-identical results at
//     any thread count (docs/PARALLELISM.md) hold with metrics on or off.
//   * Zero overhead when disabled.  Every record is gated on one relaxed
//     atomic-bool load (runtime toggles DISTSKETCH_METRICS /
//     DISTSKETCH_TRACE, or the programmatic setters); compiling with
//     DISTSKETCH_OBS_DISABLED makes the gates constexpr-false so the
//     instrumentation folds away entirely.
//   * TSan-clean.  Counters and histogram cells are relaxed atomics; the
//     registry and the trace ring are mutex-guarded.  The CI tsan job
//     runs the Obs* suites with metrics forced on.
//
// Registered objects are immortal: counter()/histogram() hand out
// references that stay valid for the life of the process, and reset()
// zeroes values without invalidating them — call sites may cache the
// reference in a function-local static.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ds::obs {

// ---------------------------------------------------------------------
// Enable gates.
// ---------------------------------------------------------------------
#if defined(DISTSKETCH_OBS_DISABLED)
// Compile-time no-op sink: the gates are constexpr false, so every
// record call below folds to nothing.
[[nodiscard]] constexpr bool metrics_enabled() noexcept { return false; }
[[nodiscard]] constexpr bool trace_enabled() noexcept { return false; }
inline void set_metrics_enabled(bool) noexcept {}
inline void set_trace_enabled(bool) noexcept {}
#else
/// True when DISTSKETCH_METRICS is set to a truthy value in the
/// environment, or set_metrics_enabled(true) was called.  One relaxed
/// atomic load — safe (and cheap) on any hot path.
[[nodiscard]] bool metrics_enabled() noexcept;
/// Same gate for span tracing, keyed on DISTSKETCH_TRACE.
[[nodiscard]] bool trace_enabled() noexcept;
void set_metrics_enabled(bool on) noexcept;
void set_trace_enabled(bool on) noexcept;
#endif

// ---------------------------------------------------------------------
// Instruments.
// ---------------------------------------------------------------------

/// Monotonic counter.  add() is wait-free (one relaxed fetch_add).
class Counter {
 public:
  void add(std::uint64_t delta) noexcept {
    if (!metrics_enabled()) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void increment() noexcept { add(1); }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset_value() noexcept {
    value_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

inline constexpr std::size_t kHistogramBuckets = 64;

/// Log2-bucketed histogram: count/sum/min/max plus 64 power-of-two
/// buckets (bucket b holds values with bit_width == b, i.e. upper bound
/// 2^b - 1).  Suited to latencies in microseconds and message sizes in
/// bits or bytes, where relative resolution is what matters.
class Histogram {
 public:
  void record(std::uint64_t value) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  /// 0 when empty.
  [[nodiscard]] std::uint64_t min() const noexcept;
  [[nodiscard]] std::uint64_t max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bucket(std::size_t b) const noexcept {
    return buckets_[b].load(std::memory_order_relaxed);
  }
  /// Upper bound of the smallest bucket whose cumulative count reaches
  /// quantile q (0 < q <= 1); 0 when empty.
  [[nodiscard]] std::uint64_t quantile_bound(double q) const noexcept;

  void reset_value() noexcept;

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{UINT64_MAX};
  std::atomic<std::uint64_t> max_{0};
  std::atomic<std::uint64_t> buckets_[kHistogramBuckets] = {};
};

// ---------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------

/// The process-wide counter named `name` (created on first use; the
/// reference stays valid forever).  Dotted lowercase names, grouped by
/// layer: "wire.tcp.bytes_sent", "service.frames_accepted", ...
[[nodiscard]] Counter& counter(std::string_view name);
[[nodiscard]] Histogram& histogram(std::string_view name);

/// Zero every registered counter, histogram, and span aggregate, and
/// drop buffered trace events.  Registered objects stay valid — this is
/// the test/bench reset, not a teardown.
void reset();

// ---------------------------------------------------------------------
// Span tracing.
// ---------------------------------------------------------------------

/// RAII span: when tracing is on, records {name, start, duration,
/// thread} into a bounded ring plus a per-name aggregate; when metrics
/// are on and `duration_us` is given, additionally records the elapsed
/// microseconds into that histogram.  When both gates are off the
/// constructor is two relaxed loads and no clock is read.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name,
                      Histogram* duration_us = nullptr) noexcept;
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  Histogram* duration_us_;
  std::uint64_t start_ns_ = 0;
  bool armed_ = false;
  bool traced_ = false;
};

// ---------------------------------------------------------------------
// Snapshot export.
// ---------------------------------------------------------------------

struct CounterView {
  std::string name;
  std::uint64_t value = 0;
};

struct HistogramView {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  std::uint64_t p50 = 0;  // bucket upper bounds, not exact order stats
  std::uint64_t p99 = 0;
  /// (bucket upper bound, count) for every non-empty bucket, ascending.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;
};

struct SpanView {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t max_ns = 0;
};

struct SpanEvent {
  std::string name;
  std::uint64_t start_us = 0;  // since process observability epoch
  std::uint64_t duration_us = 0;
  std::uint32_t thread = 0;  // stable small hash of the thread id
};

struct Snapshot {
  bool metrics_on = false;
  bool trace_on = false;
  std::vector<CounterView> counters;      // name-sorted
  std::vector<HistogramView> histograms;  // name-sorted
  std::vector<SpanView> spans;            // name-sorted
  std::vector<SpanEvent> recent_spans;    // oldest first, bounded
};

/// Consistent-enough view of everything registered (individual cells are
/// read relaxed; cross-instrument exactness needs quiescence, which the
/// audit test arranges by snapshotting after the session completes).
[[nodiscard]] Snapshot snapshot();

/// The JSON schema documented in docs/OBSERVABILITY.md.  `indent` is
/// prepended to every line so the block can be embedded in a larger
/// document (the BENCH_*.json metrics block).
void write_json(std::ostream& out, const Snapshot& snap,
                const std::string& indent = "");
[[nodiscard]] std::string snapshot_json();

/// One compact line of every nonzero counter ("a=1 b=2 ..."), for the
/// service's periodic stderr heartbeat.  Empty string when nothing has
/// been recorded.
[[nodiscard]] std::string summary_line();

}  // namespace ds::obs
