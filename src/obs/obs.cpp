#include "obs/obs.h"

#include <bit>
#include <chrono>
#include <cstdlib>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <thread>

namespace ds::obs {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now().time_since_epoch())
          .count());
}

#if !defined(DISTSKETCH_OBS_DISABLED)
bool env_truthy(const char* value) noexcept {
  return value != nullptr && *value != '\0' &&
         !(value[0] == '0' && value[1] == '\0');
}

struct Gates {
  std::atomic<bool> metrics;
  std::atomic<bool> trace;
  Gates() {
    // NOLINTNEXTLINE(concurrency-mt-unsafe): read once at first use.
    metrics.store(env_truthy(std::getenv("DISTSKETCH_METRICS")),
                  std::memory_order_relaxed);
    // NOLINTNEXTLINE(concurrency-mt-unsafe): read once at first use.
    trace.store(env_truthy(std::getenv("DISTSKETCH_TRACE")),
                std::memory_order_relaxed);
  }
};

Gates& gates() noexcept {
  static Gates g;
  return g;
}
#endif

struct SpanAggregate {
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> total_ns{0};
  std::atomic<std::uint64_t> max_ns{0};
};

constexpr std::size_t kTraceRingCapacity = 256;

/// All registered instruments.  Deliberately leaked (never destroyed):
/// cached references at call sites must outlive every static destructor.
struct Registry {
  std::mutex mutex;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;
  std::map<std::string, std::unique_ptr<SpanAggregate>, std::less<>> spans;

  std::mutex trace_mutex;
  std::deque<SpanEvent> recent;  // bounded by kTraceRingCapacity
  std::uint64_t epoch_ns = now_ns();
};

Registry& registry() noexcept {
  static Registry* r = new Registry;  // NOLINT(cppcoreguidelines-owning-memory)
  return *r;
}

std::uint32_t thread_tag() noexcept {
  const std::size_t h = std::hash<std::thread::id>{}(std::this_thread::get_id());
  return static_cast<std::uint32_t>(h & 0xFFFFu);
}

void record_span(const char* name, std::uint64_t start_ns,
                 std::uint64_t dur_ns) {
  Registry& reg = registry();
  SpanAggregate* agg = nullptr;
  {
    const std::lock_guard<std::mutex> lock(reg.mutex);
    std::unique_ptr<SpanAggregate>& slot = reg.spans[std::string(name)];
    if (!slot) slot = std::make_unique<SpanAggregate>();
    agg = slot.get();
  }
  agg->count.fetch_add(1, std::memory_order_relaxed);
  agg->total_ns.fetch_add(dur_ns, std::memory_order_relaxed);
  std::uint64_t seen = agg->max_ns.load(std::memory_order_relaxed);
  while (dur_ns > seen &&
         !agg->max_ns.compare_exchange_weak(seen, dur_ns,
                                            std::memory_order_relaxed)) {
  }

  const std::lock_guard<std::mutex> lock(reg.trace_mutex);
  if (reg.recent.size() >= kTraceRingCapacity) reg.recent.pop_front();
  reg.recent.push_back(SpanEvent{
      std::string(name), (start_ns - reg.epoch_ns) / 1000, dur_ns / 1000,
      thread_tag()});
}

}  // namespace

#if !defined(DISTSKETCH_OBS_DISABLED)
bool metrics_enabled() noexcept {
  return gates().metrics.load(std::memory_order_relaxed);
}

bool trace_enabled() noexcept {
  return gates().trace.load(std::memory_order_relaxed);
}

void set_metrics_enabled(bool on) noexcept {
  gates().metrics.store(on, std::memory_order_relaxed);
}

void set_trace_enabled(bool on) noexcept {
  gates().trace.store(on, std::memory_order_relaxed);
}
#endif

// ---------------------------------------------------------------------
// Histogram.
// ---------------------------------------------------------------------

void Histogram::record(std::uint64_t value) noexcept {
  if (!metrics_enabled()) return;
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value,
                                     std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value,
                                     std::memory_order_relaxed)) {
  }
  const std::size_t b = std::min<std::size_t>(
      static_cast<std::size_t>(std::bit_width(value)), kHistogramBuckets - 1);
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t Histogram::min() const noexcept {
  const std::uint64_t m = min_.load(std::memory_order_relaxed);
  return m == UINT64_MAX ? 0 : m;
}

std::uint64_t Histogram::quantile_bound(double q) const noexcept {
  const std::uint64_t total = count();
  if (total == 0) return 0;
  const auto threshold = static_cast<std::uint64_t>(
      q * static_cast<double>(total) + 0.5);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    cumulative += bucket(b);
    if (cumulative >= threshold && cumulative > 0) {
      // Bucket b holds values with bit_width == b, upper bound 2^b - 1.
      // The top bucket is a clamp (record() caps at kHistogramBuckets-1),
      // so its true upper bound is UINT64_MAX, not 2^63 - 1.
      if (b == 0) return 0;
      if (b == kHistogramBuckets - 1) return UINT64_MAX;
      return (std::uint64_t{1} << b) - 1;
    }
  }
  return max();
}

void Histogram::reset_value() noexcept {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  for (std::atomic<std::uint64_t>& b : buckets_) {
    b.store(0, std::memory_order_relaxed);
  }
}

// ---------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------

Counter& counter(std::string_view name) {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  const auto it = reg.counters.find(name);
  if (it != reg.counters.end()) return *it->second;
  return *reg.counters.emplace(std::string(name), std::make_unique<Counter>())
              .first->second;
}

Histogram& histogram(std::string_view name) {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  const auto it = reg.histograms.find(name);
  if (it != reg.histograms.end()) return *it->second;
  return *reg.histograms
              .emplace(std::string(name), std::make_unique<Histogram>())
              .first->second;
}

void reset() {
  Registry& reg = registry();
  {
    const std::lock_guard<std::mutex> lock(reg.mutex);
    for (auto& [name, c] : reg.counters) c->reset_value();
    for (auto& [name, h] : reg.histograms) h->reset_value();
    for (auto& [name, s] : reg.spans) {
      s->count.store(0, std::memory_order_relaxed);
      s->total_ns.store(0, std::memory_order_relaxed);
      s->max_ns.store(0, std::memory_order_relaxed);
    }
  }
  const std::lock_guard<std::mutex> lock(reg.trace_mutex);
  reg.recent.clear();
  reg.epoch_ns = now_ns();
}

// ---------------------------------------------------------------------
// Spans.
// ---------------------------------------------------------------------

ScopedSpan::ScopedSpan(const char* name, Histogram* duration_us) noexcept
    : name_(name), duration_us_(duration_us) {
  traced_ = trace_enabled();
  armed_ = traced_ || (metrics_enabled() && duration_us_ != nullptr);
  if (armed_) start_ns_ = now_ns();
}

ScopedSpan::~ScopedSpan() {
  if (!armed_) return;
  const std::uint64_t end_ns = now_ns();
  const std::uint64_t dur_ns = end_ns > start_ns_ ? end_ns - start_ns_ : 0;
  if (duration_us_ != nullptr) duration_us_->record(dur_ns / 1000);
  if (traced_) record_span(name_, start_ns_, dur_ns);
}

// ---------------------------------------------------------------------
// Snapshot.
// ---------------------------------------------------------------------

Snapshot snapshot() {
  Snapshot snap;
  snap.metrics_on = metrics_enabled();
  snap.trace_on = trace_enabled();
  Registry& reg = registry();
  {
    const std::lock_guard<std::mutex> lock(reg.mutex);
    for (const auto& [name, c] : reg.counters) {
      snap.counters.push_back(CounterView{name, c->value()});
    }
    for (const auto& [name, h] : reg.histograms) {
      HistogramView view;
      view.name = name;
      view.count = h->count();
      view.sum = h->sum();
      view.min = h->min();
      view.max = h->max();
      view.p50 = h->quantile_bound(0.50);
      view.p99 = h->quantile_bound(0.99);
      for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
        const std::uint64_t n = h->bucket(b);
        if (n == 0) continue;
        const std::uint64_t bound =
            b == 0                       ? 0
            : b == kHistogramBuckets - 1 ? UINT64_MAX
                                         : (std::uint64_t{1} << b) - 1;
        view.buckets.emplace_back(bound, n);
      }
      snap.histograms.push_back(std::move(view));
    }
    for (const auto& [name, s] : reg.spans) {
      snap.spans.push_back(SpanView{
          name, s->count.load(std::memory_order_relaxed),
          s->total_ns.load(std::memory_order_relaxed),
          s->max_ns.load(std::memory_order_relaxed)});
    }
  }
  const std::lock_guard<std::mutex> lock(reg.trace_mutex);
  snap.recent_spans.assign(reg.recent.begin(), reg.recent.end());
  return snap;
}

namespace {

void write_json_string(std::ostream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
  out << '"';
}

}  // namespace

void write_json(std::ostream& out, const Snapshot& snap,
                const std::string& indent) {
  const std::string i1 = indent + "  ";
  const std::string i2 = i1 + "  ";
  out << "{\n"
      << i1 << "\"metrics_enabled\": " << (snap.metrics_on ? "true" : "false")
      << ",\n"
      << i1 << "\"trace_enabled\": " << (snap.trace_on ? "true" : "false")
      << ",\n";

  out << i1 << "\"counters\": {";
  for (std::size_t k = 0; k < snap.counters.size(); ++k) {
    out << (k == 0 ? "\n" : ",\n") << i2;
    write_json_string(out, snap.counters[k].name);
    out << ": " << snap.counters[k].value;
  }
  out << (snap.counters.empty() ? "" : "\n" + i1) << "},\n";

  out << i1 << "\"histograms\": {";
  for (std::size_t k = 0; k < snap.histograms.size(); ++k) {
    const HistogramView& h = snap.histograms[k];
    out << (k == 0 ? "\n" : ",\n") << i2;
    write_json_string(out, h.name);
    out << ": {\"count\": " << h.count << ", \"sum\": " << h.sum
        << ", \"min\": " << h.min << ", \"max\": " << h.max
        << ", \"p50\": " << h.p50 << ", \"p99\": " << h.p99
        << ", \"buckets\": [";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      out << (b == 0 ? "" : ", ") << "[" << h.buckets[b].first << ", "
          << h.buckets[b].second << "]";
    }
    out << "]}";
  }
  out << (snap.histograms.empty() ? "" : "\n" + i1) << "},\n";

  out << i1 << "\"spans\": {";
  for (std::size_t k = 0; k < snap.spans.size(); ++k) {
    const SpanView& s = snap.spans[k];
    out << (k == 0 ? "\n" : ",\n") << i2;
    write_json_string(out, s.name);
    out << ": {\"count\": " << s.count << ", \"total_us\": "
        << s.total_ns / 1000 << ", \"max_us\": " << s.max_ns / 1000 << "}";
  }
  out << (snap.spans.empty() ? "" : "\n" + i1) << "},\n";

  out << i1 << "\"recent_spans\": [";
  for (std::size_t k = 0; k < snap.recent_spans.size(); ++k) {
    const SpanEvent& e = snap.recent_spans[k];
    out << (k == 0 ? "\n" : ",\n") << i2 << "{\"name\": ";
    write_json_string(out, e.name);
    out << ", \"start_us\": " << e.start_us << ", \"duration_us\": "
        << e.duration_us << ", \"thread\": " << e.thread << "}";
  }
  out << (snap.recent_spans.empty() ? "" : "\n" + i1) << "]\n"
      << indent << "}";
}

std::string snapshot_json() {
  std::ostringstream out;
  write_json(out, snapshot());
  out << "\n";
  return out.str();
}

std::string summary_line() {
  const Snapshot snap = snapshot();
  std::ostringstream out;
  bool first = true;
  for (const CounterView& c : snap.counters) {
    if (c.value == 0) continue;
    out << (first ? "" : " ") << c.name << "=" << c.value;
    first = false;
  }
  return out.str();
}

}  // namespace ds::obs
