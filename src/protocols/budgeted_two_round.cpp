#include "protocols/budgeted_two_round.h"

#include <vector>

#include "graph/matching.h"
#include "protocols/budgeted.h"

namespace ds::protocols {

using graph::Edge;
using graph::Graph;
using graph::Vertex;

namespace {

/// Budgeted random report over an explicit candidate list.
void report_sampled(const model::VertexView& view,
                    const std::vector<Vertex>& candidates,
                    std::size_t budget_bits, std::uint64_t round_tag,
                    util::BitWriter& out) {
  const unsigned width = util::bit_width_for(view.n);
  const std::size_t capacity =
      edges_fitting_budget(budget_bits, view.n, candidates.size());
  std::vector<std::uint32_t> reported;
  if (capacity >= candidates.size()) {
    reported.assign(candidates.begin(), candidates.end());
  } else if (capacity > 0) {
    util::Rng rng = view.coins->stream(model::coin_tag(
        model::CoinTag::kEdgeSample, util::mix64(view.id, round_tag)));
    for (std::uint64_t pick :
         rng.sample_without_replacement(candidates.size(), capacity)) {
      reported.push_back(candidates[pick]);
    }
  }
  out.put_u32_span(reported, width);
}

}  // namespace

void BudgetedTwoRoundMatching::encode_round(
    const model::VertexView& view, unsigned round,
    std::span<const util::BitString> broadcasts, util::BitWriter& out) const {
  if (round == 0) {
    const std::vector<Vertex> all(view.neighbors.begin(),
                                  view.neighbors.end());
    report_sampled(view, all, round0_bits_, 0xB0, out);
    return;
  }
  // Round 1: matched bitmap arrived; unmatched vertices report a budgeted
  // sample of their edges to unmatched neighbors.
  util::BitReader bitmap(broadcasts[0]);
  std::vector<bool> matched(view.n);
  for (Vertex v = 0; v < view.n; ++v) matched[v] = bitmap.get_bit();

  std::vector<Vertex> residual;
  if (!matched[view.id]) {
    for (Vertex w : view.neighbors) {
      if (!matched[w]) residual.push_back(w);
    }
  }
  report_sampled(view, residual, round1_bits_, 0xB1, out);
}

model::MatchingOutput BudgetedTwoRoundMatching::round0_matching(
    Vertex n, std::span<const util::BitString> round0,
    const model::PublicCoins& coins) const {
  const Graph sampled = decode_reported_graph(n, round0);
  util::Rng rng = coins.stream(model::coin_tag(model::CoinTag::kShuffle, 30));
  return graph::greedy_matching_random(sampled, rng);
}

util::BitString BudgetedTwoRoundMatching::make_broadcast(
    unsigned /*round*/, Vertex n,
    std::span<const std::vector<util::BitString>> rounds_so_far,
    const model::PublicCoins& coins) const {
  const model::MatchingOutput m1 = round0_matching(n, rounds_so_far[0], coins);
  const std::vector<bool> matched = graph::matched_set(m1, n);
  util::BitWriter writer;
  for (Vertex v = 0; v < n; ++v) writer.put_bit(matched[v]);
  return util::BitString(writer);
}

model::MatchingOutput BudgetedTwoRoundMatching::decode(
    Vertex n, std::span<const std::vector<util::BitString>> all_rounds,
    std::span<const util::BitString> /*broadcasts*/,
    const model::PublicCoins& coins) const {
  model::MatchingOutput matching = round0_matching(n, all_rounds[0], coins);
  std::vector<bool> matched = graph::matched_set(matching, n);

  const unsigned width = util::bit_width_for(n);
  for (Vertex v = 0; v < n; ++v) {
    util::BitReader reader(all_rounds[1][v]);
    if (reader.bits_remaining() == 0) continue;
    for (std::uint32_t w : reader.get_u32_span(width)) {
      if (w >= n || w == v) continue;
      if (!matched[v] && !matched[w]) {
        matching.push_back(Edge{v, static_cast<Vertex>(w)}.normalized());
        matched[v] = matched[w] = true;
      }
    }
  }
  return matching;
}

}  // namespace ds::protocols
