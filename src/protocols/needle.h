// Needle discovery: find the edge of the unique degree-1 right vertex in
// a bipartite graph.  Runs in both the standard (two-sided) and the
// one-sided vertex-partition model of related work Section 1.3, making
// the paper's point executable: *shared inputs* (every edge seen by both
// endpoints) are what make the sketching model strong — remove one side's
// players and even this trivial problem becomes expensive.
//
//  * NeedleTwoSided — degree-1 vertices announce their single edge; the
//    referee reads it off the needle's own message.  O(log n) bits, and
//    only the degree-1 vertices speak at all.
//  * NeedleOneSided — with only left players, each reports a budgeted
//    random sample of its edges; the referee looks for a right vertex of
//    reported degree exactly 1.  Until the budget covers essentially all
//    left edges, unreported edges make heavy right vertices masquerade as
//    needles.
#pragma once

#include "model/protocol.h"

namespace ds::protocols {

class NeedleTwoSided final : public model::SketchingProtocol<graph::Edge> {
 public:
  /// `left` = size of the left part (right vertices are >= left).
  explicit NeedleTwoSided(graph::Vertex left) : left_(left) {}

  void encode(const model::VertexView& view,
              util::BitWriter& out) const override;
  [[nodiscard]] graph::Edge decode(
      graph::Vertex n, std::span<const util::BitString> sketches,
      const model::PublicCoins& coins) const override;
  [[nodiscard]] std::string name() const override { return "needle-2sided"; }

 private:
  graph::Vertex left_;
};

class NeedleOneSided final : public model::SketchingProtocol<graph::Edge> {
 public:
  NeedleOneSided(graph::Vertex left, std::size_t budget_bits)
      : left_(left), budget_bits_(budget_bits) {}

  void encode(const model::VertexView& view,
              util::BitWriter& out) const override;
  [[nodiscard]] graph::Edge decode(
      graph::Vertex n, std::span<const util::BitString> sketches,
      const model::PublicCoins& coins) const override;
  [[nodiscard]] std::string name() const override { return "needle-1sided"; }

 private:
  graph::Vertex left_;
  std::size_t budget_bits_;
};

}  // namespace ds::protocols
