#include "protocols/coloring.h"

#include <algorithm>
#include <vector>

namespace ds::protocols {

using graph::Graph;
using graph::Vertex;

std::vector<std::uint32_t> PaletteSparsificationColoring::color_list(
    const model::PublicCoins& coins, Vertex v) const {
  util::Rng rng = coins.stream(model::coin_tag(model::CoinTag::kPalette, v));
  const std::uint64_t want = std::min<std::uint64_t>(list_size_, num_colors_);
  std::vector<std::uint32_t> list;
  list.reserve(want);
  for (std::uint64_t pick :
       rng.sample_without_replacement(num_colors_, want)) {
    list.push_back(static_cast<std::uint32_t>(pick));
  }
  return list;  // sample_without_replacement returns sorted values
}

namespace {

bool lists_intersect(const std::vector<std::uint32_t>& a,
                     const std::vector<std::uint32_t>& b) {
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) return true;
    if (a[i] < b[j])
      ++i;
    else
      ++j;
  }
  return false;
}

/// Augmenting repair for a stuck vertex: try each color in its list; if
/// a color is free among conflict neighbors, take it; if exactly one
/// neighbor holds it, steal it and recursively re-seat that neighbor
/// (Kuhn's algorithm when the conflict component is a clique — exact
/// there — and a principled heuristic elsewhere).
bool try_assign(graph::Vertex v, const Graph& conflict,
                const std::vector<std::vector<std::uint32_t>>& lists,
                model::ColoringOutput& coloring, std::vector<bool>& visited,
                int depth) {
  for (std::uint32_t c : lists[v]) {
    bool free = true;
    for (Vertex w : conflict.neighbors(v)) {
      if (coloring[w] == c) {
        free = false;
        break;
      }
    }
    if (free) {
      coloring[v] = c;
      return true;
    }
  }
  if (depth == 0) return false;
  for (std::uint32_t c : lists[v]) {
    Vertex holder = 0;
    std::size_t holders = 0;
    for (Vertex w : conflict.neighbors(v)) {
      if (coloring[w] == c) {
        holder = w;
        ++holders;
      }
    }
    if (holders != 1 || visited[holder]) continue;
    visited[holder] = true;
    const std::uint32_t saved = coloring[holder];
    coloring[holder] = kUncolored;
    coloring[v] = c;
    if (try_assign(holder, conflict, lists, coloring, visited, depth - 1)) {
      return true;
    }
    coloring[holder] = saved;
    coloring[v] = kUncolored;
  }
  return false;
}

}  // namespace

void PaletteSparsificationColoring::encode(const model::VertexView& view,
                                           util::BitWriter& out) const {
  const unsigned width = util::bit_width_for(view.n);
  const std::vector<std::uint32_t> mine = color_list(*view.coins, view.id);
  std::vector<std::uint32_t> conflicts;
  for (Vertex w : view.neighbors) {
    if (lists_intersect(mine, color_list(*view.coins, w))) {
      conflicts.push_back(w);
    }
  }
  out.put_u32_span(conflicts, width);
}

model::ColoringOutput PaletteSparsificationColoring::decode(
    Vertex n, std::span<const util::BitString> sketches,
    const model::PublicCoins& coins) const {
  // Rebuild the conflict graph.
  const unsigned width = util::bit_width_for(n);
  std::vector<graph::Edge> conflict_edges;
  for (Vertex v = 0; v < n; ++v) {
    util::BitReader reader(sketches[v]);
    if (reader.bits_remaining() == 0) continue;
    for (std::uint32_t w : reader.get_u32_span(width)) {
      if (w < n && w != v) conflict_edges.push_back({v, static_cast<Vertex>(w)});
    }
  }
  const Graph conflict = Graph::from_edges(n, conflict_edges);

  std::vector<std::vector<std::uint32_t>> lists;
  lists.reserve(n);
  for (Vertex v = 0; v < n; ++v) lists.push_back(color_list(coins, v));

  // Randomized greedy list-coloring of the conflict graph, restarting on
  // failure. ACK19 guarantee a list coloring exists w.h.p.; greedy over a
  // random order finds one empirically for the sizes we run.
  util::Rng rng = coins.stream(model::coin_tag(model::CoinTag::kShuffle, 20));
  model::ColoringOutput best(n, kUncolored);
  std::size_t best_colored = 0;
  for (unsigned attempt = 0; attempt < retries_; ++attempt) {
    std::vector<Vertex> order = rng.permutation(n);
    model::ColoringOutput coloring(n, kUncolored);
    std::size_t colored = 0;
    for (Vertex v : order) {
      std::uint32_t chosen = kUncolored;
      for (std::uint32_t c : lists[v]) {
        bool clash = false;
        for (Vertex w : conflict.neighbors(v)) {
          if (coloring[w] == c) {
            clash = true;
            break;
          }
        }
        if (!clash) {
          chosen = c;
          break;
        }
      }
      coloring[v] = chosen;
      if (chosen != kUncolored) ++colored;
    }
    // Augmenting repair pass for the vertices greedy left stuck.
    for (Vertex v : order) {
      if (coloring[v] != kUncolored) continue;
      std::vector<bool> visited(n, false);
      visited[v] = true;
      if (try_assign(v, conflict, lists, coloring, visited, /*depth=*/16)) {
        ++colored;
      }
    }
    if (colored > best_colored) {
      best_colored = colored;
      best = std::move(coloring);
    }
    if (best_colored == n) break;
  }
  return best;
}

}  // namespace ds::protocols
