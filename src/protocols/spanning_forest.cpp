#include "protocols/spanning_forest.h"

namespace ds::protocols {

void AgmSpanningForest::encode(const model::VertexView& view,
                               util::BitWriter& out) const {
  sketch::AgmVertexSketch s =
      sketch::AgmVertexSketch::make_cached(*view.coins, view.n, rounds_);
  s.add_vertex_edges(view.id, view.neighbors);
  s.write(out);
}

model::ForestOutput AgmSpanningForest::decode(
    graph::Vertex n, std::span<const util::BitString> sketches,
    const model::PublicCoins& coins) const {
  std::vector<sketch::AgmVertexSketch> decoded;
  decoded.reserve(n);
  for (graph::Vertex v = 0; v < n; ++v) {
    sketch::AgmVertexSketch s =
        sketch::AgmVertexSketch::make_cached(coins, n, rounds_);
    util::BitReader reader(sketches[v]);
    s.read(reader);
    decoded.push_back(std::move(s));
  }
  return sketch::agm_spanning_forest(n, std::move(decoded)).forest;
}

}  // namespace ds::protocols
