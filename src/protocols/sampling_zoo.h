// Subsampling-based members of the introduction's problem zoo: edge
// counting [AGM12b-style], densest subgraph [BHNT15, MTVV15], and
// degeneracy [FT16].
//
// All three use the same public-coin trick: a shared hash h over edge ids
// defines the sample "h(e) < threshold" — both endpoints of an edge make
// the SAME sampling decision without communication, so the referee's
// union of reports is a consistent uniform edge sample (another face of
// the edge-sharing property the lower bound has to fight).
#pragma once

#include "graph/densest.h"
#include "model/protocol.h"
#include "sketch/kmv.h"

namespace ds::protocols {

/// Estimate |E| with a KMV distinct-elements sketch over canonical edge
/// ids (each edge inserted twice, deduped by hashing).
class EdgeCountEstimate final : public model::SketchingProtocol<double> {
 public:
  explicit EdgeCountEstimate(std::uint32_t k) : k_(k) {}

  void encode(const model::VertexView& view,
              util::BitWriter& out) const override;
  [[nodiscard]] double decode(graph::Vertex n,
                              std::span<const util::BitString> sketches,
                              const model::PublicCoins& coins) const override;
  [[nodiscard]] std::string name() const override { return "edge-count-kmv"; }

 private:
  std::uint32_t k_;
};

/// Shared Bernoulli(p) edge sample + referee-side peeling; returns the
/// best peeling suffix of the sample and its density estimate (sample
/// density / p).
class SampledDensestSubgraph final
    : public model::SketchingProtocol<graph::DensestResult> {
 public:
  explicit SampledDensestSubgraph(double sample_prob)
      : sample_prob_(sample_prob) {}

  void encode(const model::VertexView& view,
              util::BitWriter& out) const override;
  [[nodiscard]] graph::DensestResult decode(
      graph::Vertex n, std::span<const util::BitString> sketches,
      const model::PublicCoins& coins) const override;
  [[nodiscard]] std::string name() const override {
    return "sampled-densest-subgraph";
  }

  /// The shared sampling predicate (exposed for tests).
  [[nodiscard]] static bool sampled(const model::PublicCoins& coins,
                                    std::uint64_t edge_id, double p);

 private:
  double sample_prob_;
};

/// The raw shared-sample subgraph itself — the primitive behind uniform
/// cut sparsification [AGM12b]: for any vertex set S, |cut_sample(S)| / p
/// estimates |cut_G(S)| (unbiased; concentrated for cuts of size
/// >> 1/p).  Also a convenient debugging window into the sampling trick.
class SampledSubgraph final : public model::SketchingProtocol<graph::Graph> {
 public:
  explicit SampledSubgraph(double sample_prob) : sample_prob_(sample_prob) {}

  void encode(const model::VertexView& view,
              util::BitWriter& out) const override;
  [[nodiscard]] graph::Graph decode(
      graph::Vertex n, std::span<const util::BitString> sketches,
      const model::PublicCoins& coins) const override;
  [[nodiscard]] std::string name() const override {
    return "sampled-subgraph";
  }
  [[nodiscard]] double sample_prob() const noexcept { return sample_prob_; }

 private:
  double sample_prob_;
};

/// Degeneracy estimate: degeneracy(sample) / p.
class SampledDegeneracy final : public model::SketchingProtocol<double> {
 public:
  explicit SampledDegeneracy(double sample_prob)
      : sample_prob_(sample_prob) {}

  void encode(const model::VertexView& view,
              util::BitWriter& out) const override;
  [[nodiscard]] double decode(graph::Vertex n,
                              std::span<const util::BitString> sketches,
                              const model::PublicCoins& coins) const override;
  [[nodiscard]] std::string name() const override {
    return "sampled-degeneracy";
  }

 private:
  double sample_prob_;
};

}  // namespace ds::protocols
