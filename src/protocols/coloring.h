// (Delta+1)-coloring by palette sparsification [Assadi-Chen-Khanna
// SODA'19] — the paper's sharpest contrast point: a symmetry-breaking
// problem that *does* admit O(log^3 n)-bit sketches, unlike MM and MIS.
//
// Public coins assign every vertex v a random color list L(v) of size
// O(log n) from the palette [num_colors]; since lists are public-coin
// derived, vertex v can compute L(w) for each neighbor w without
// communication.  ACK19 prove that w.h.p. the graph restricted to
// "conflict edges" — edges whose endpoints' lists intersect — admits a
// proper coloring with each vertex colored from its own list, and only
// conflict edges matter for properness of a list-respecting coloring.
//
// So each vertex sends just its conflict edges: O(log^2 n) neighbors of
// O(log n) bits each.  The referee list-colors the conflict graph
// (randomized greedy with retries stands in for ACK19's constructive
// argument; the bench records its empirical success rate).
#pragma once

#include "model/protocol.h"

namespace ds::protocols {

/// Sentinel for "referee failed to color this vertex".
inline constexpr std::uint32_t kUncolored = 0xffffffffu;

class PaletteSparsificationColoring final
    : public model::SketchingProtocol<model::ColoringOutput> {
 public:
  /// num_colors: palette size (use max degree + 1); list_size: |L(v)|;
  /// retries: referee greedy restart attempts.
  PaletteSparsificationColoring(std::uint32_t num_colors,
                                std::uint32_t list_size,
                                unsigned retries = 32)
      : num_colors_(num_colors), list_size_(list_size), retries_(retries) {}

  void encode(const model::VertexView& view,
              util::BitWriter& out) const override;

  [[nodiscard]] model::ColoringOutput decode(
      graph::Vertex n, std::span<const util::BitString> sketches,
      const model::PublicCoins& coins) const override;

  [[nodiscard]] std::string name() const override {
    return "palette-sparsification";
  }

  /// The public-coin color list of v (sorted, distinct).
  [[nodiscard]] std::vector<std::uint32_t> color_list(
      const model::PublicCoins& coins, graph::Vertex v) const;

 private:
  std::uint32_t num_colors_;
  std::uint32_t list_size_;
  unsigned retries_;
};

}  // namespace ds::protocols
