#include "protocols/luby_bcc.h"

#include <bit>
#include <cassert>
#include <vector>

namespace ds::protocols {

using graph::Vertex;

namespace {

constexpr std::uint64_t kLubyTag = 0x10B1;

/// Bitmaps from a broadcast.
std::vector<bool> read_bitmap(const util::BitString& broadcast, Vertex n) {
  util::BitReader reader(broadcast);
  std::vector<bool> bits(n);
  for (Vertex v = 0; v < n; ++v) bits[v] = reader.get_bit();
  return bits;
}

}  // namespace

unsigned LubyBroadcastMis::default_phases(Vertex n) {
  return 2 * static_cast<unsigned>(
                 std::bit_width(static_cast<std::uint64_t>(n))) +
         4;
}

LubyBroadcastMis make_luby_bcc(Vertex n) {
  return LubyBroadcastMis(LubyBroadcastMis::default_phases(n));
}

std::uint64_t LubyBroadcastMis::priority(const model::PublicCoins& coins,
                                         Vertex v, unsigned phase) {
  util::Rng rng = coins.stream(model::coin_tag(
      model::CoinTag::kMark, util::mix64(kLubyTag, util::mix64(v, phase))));
  return rng.next();
}

void LubyBroadcastMis::encode_round(
    const model::VertexView& view, unsigned round,
    std::span<const util::BitString> broadcasts, util::BitWriter& out) const {
  const unsigned phase = round / 2;
  const bool join_round = round % 2 == 0;

  // Activity of every vertex entering this phase: the latest active
  // bitmap (broadcast after round 2*phase - 1), or all-active at phase 0.
  std::vector<bool> active;
  if (phase == 0) {
    active.assign(view.n, true);
  } else {
    active = read_bitmap(broadcasts[2 * phase - 1], view.n);
  }

  if (join_round) {
    bool joins = false;
    if (active[view.id]) {
      joins = true;
      const std::uint64_t mine = priority(*view.coins, view.id, phase);
      for (Vertex w : view.neighbors) {
        if (!active[w]) continue;
        const std::uint64_t theirs = priority(*view.coins, w, phase);
        if (theirs < mine || (theirs == mine && w < view.id)) {
          joins = false;
          break;
        }
      }
    }
    out.put_bit(joins);
    return;
  }

  // Active-report round: joined bitmap of this phase just arrived.
  const std::vector<bool> joined =
      read_bitmap(broadcasts[2 * phase], view.n);
  bool still_active = active[view.id] && !joined[view.id];
  if (still_active) {
    for (Vertex w : view.neighbors) {
      if (joined[w]) {
        still_active = false;
        break;
      }
    }
  }
  out.put_bit(still_active);
}

util::BitString LubyBroadcastMis::make_broadcast(
    unsigned round, Vertex n,
    std::span<const std::vector<util::BitString>> rounds_so_far,
    const model::PublicCoins& /*coins*/) const {
  // Relay the n one-bit messages of the round just completed as a bitmap.
  util::BitWriter writer;
  for (Vertex v = 0; v < n; ++v) {
    util::BitReader reader(rounds_so_far[round][v]);
    writer.put_bit(reader.bits_remaining() > 0 && reader.get_bit());
  }
  return util::BitString(writer);
}

model::VertexSetOutput LubyBroadcastMis::decode(
    Vertex n, std::span<const std::vector<util::BitString>> all_rounds,
    std::span<const util::BitString> /*broadcasts*/,
    const model::PublicCoins& /*coins*/) const {
  model::VertexSetOutput result;
  for (unsigned phase = 0; phase < phases_; ++phase) {
    for (Vertex v = 0; v < n; ++v) {
      util::BitReader reader(all_rounds[2 * phase][v]);
      if (reader.bits_remaining() > 0 && reader.get_bit()) {
        result.push_back(v);
      }
    }
  }
  return result;
}

}  // namespace ds::protocols
