#include "protocols/trivial.h"

#include <bit>

#include "graph/independent_set.h"
#include "graph/matching.h"

namespace ds::protocols {

using graph::Edge;
using graph::Graph;
using graph::Vertex;

void encode_adjacency_bitmap(const model::VertexView& view,
                             util::BitWriter& out) {
  // n bits: bit w set iff w is a neighbor. Exactly the Theta(n) bound.
  // Built a 64-bit word at a time from the sorted neighbor list; the
  // emitted bit stream is identical to a per-bit put_bit(adjacent) loop.
  std::size_t cursor = 0;
  for (Vertex base = 0; base < view.n; base += 64) {
    const unsigned width =
        view.n - base < 64 ? static_cast<unsigned>(view.n - base) : 64u;
    std::uint64_t word = 0;
    while (cursor < view.neighbors.size() &&
           view.neighbors[cursor] < base + width) {
      word |= std::uint64_t{1} << (view.neighbors[cursor] - base);
      ++cursor;
    }
    out.put_bits(word, width);
  }
}

Graph decode_full_graph(Vertex n, std::span<const util::BitString> sketches) {
  std::vector<Edge> edges;
  for (Vertex v = 0; v < n; ++v) {
    util::BitReader reader(sketches[v]);
    // Read a word at a time and walk its set bits (ascending, matching
    // the per-bit loop's edge output order).
    for (Vertex base = 0; base < n; base += 64) {
      const unsigned width =
          n - base < 64 ? static_cast<unsigned>(n - base) : 64u;
      std::uint64_t word = reader.get_bits(width);
      while (word != 0) {
        const Vertex w = base + static_cast<Vertex>(std::countr_zero(word));
        word &= word - 1;
        if (v < w) edges.push_back({v, w});
      }
    }
  }
  return Graph::from_edges(n, edges);
}

model::MatchingOutput TrivialMaximalMatching::decode(
    Vertex n, std::span<const util::BitString> sketches,
    const model::PublicCoins& coins) const {
  const Graph g = decode_full_graph(n, sketches);
  util::Rng rng = coins.stream(model::coin_tag(model::CoinTag::kShuffle, 0));
  return graph::greedy_matching_random(g, rng);
}

model::VertexSetOutput TrivialMis::decode(
    Vertex n, std::span<const util::BitString> sketches,
    const model::PublicCoins& coins) const {
  const Graph g = decode_full_graph(n, sketches);
  util::Rng rng = coins.stream(model::coin_tag(model::CoinTag::kShuffle, 1));
  return graph::greedy_mis_random(g, rng);
}

}  // namespace ds::protocols
