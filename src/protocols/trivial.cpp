#include "protocols/trivial.h"

#include "graph/independent_set.h"
#include "graph/matching.h"

namespace ds::protocols {

using graph::Edge;
using graph::Graph;
using graph::Vertex;

void encode_adjacency_bitmap(const model::VertexView& view,
                             util::BitWriter& out) {
  // n bits: bit w set iff w is a neighbor. Exactly the Theta(n) bound.
  std::size_t cursor = 0;
  for (Vertex w = 0; w < view.n; ++w) {
    const bool adjacent =
        cursor < view.neighbors.size() && view.neighbors[cursor] == w;
    if (adjacent) ++cursor;
    out.put_bit(adjacent);
  }
}

Graph decode_full_graph(Vertex n, std::span<const util::BitString> sketches) {
  std::vector<Edge> edges;
  for (Vertex v = 0; v < n; ++v) {
    util::BitReader reader(sketches[v]);
    for (Vertex w = 0; w < n; ++w) {
      if (reader.get_bit() && v < w) edges.push_back({v, w});
    }
  }
  return Graph::from_edges(n, edges);
}

model::MatchingOutput TrivialMaximalMatching::decode(
    Vertex n, std::span<const util::BitString> sketches,
    const model::PublicCoins& coins) const {
  const Graph g = decode_full_graph(n, sketches);
  util::Rng rng = coins.stream(model::coin_tag(model::CoinTag::kShuffle, 0));
  return graph::greedy_matching_random(g, rng);
}

model::VertexSetOutput TrivialMis::decode(
    Vertex n, std::span<const util::BitString> sketches,
    const model::PublicCoins& coins) const {
  const Graph g = decode_full_graph(n, sketches);
  util::Rng rng = coins.stream(model::coin_tag(model::CoinTag::kShuffle, 1));
  return graph::greedy_mis_random(g, rng);
}

}  // namespace ds::protocols
