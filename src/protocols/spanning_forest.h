// One-round spanning forest via AGM sketches — the O(log^3 n) upper bound
// the paper's introduction contrasts against (experiment E6).
#pragma once

#include "model/protocol.h"
#include "sketch/agm.h"

namespace ds::protocols {

class AgmSpanningForest final
    : public model::SketchingProtocol<model::ForestOutput> {
 public:
  /// rounds == 0 picks the Boruvka default (~log2 n + 3).
  explicit AgmSpanningForest(unsigned rounds = 0) : rounds_(rounds) {}

  void encode(const model::VertexView& view,
              util::BitWriter& out) const override;

  [[nodiscard]] model::ForestOutput decode(
      graph::Vertex n, std::span<const util::BitString> sketches,
      const model::PublicCoins& coins) const override;

  [[nodiscard]] std::string name() const override {
    return "agm-spanning-forest";
  }

 private:
  unsigned rounds_;
};

}  // namespace ds::protocols
