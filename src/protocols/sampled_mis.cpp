#include "protocols/sampled_mis.h"

#include "graph/independent_set.h"
#include "protocols/budgeted.h"

namespace ds::protocols {

void BudgetedMis::encode(const model::VertexView& view,
                         util::BitWriter& out) const {
  encode_edge_report(view, budget_bits_, out);
}

model::VertexSetOutput BudgetedMis::decode(
    graph::Vertex n, std::span<const util::BitString> sketches,
    const model::PublicCoins& coins) const {
  const graph::Graph known = decode_reported_graph(n, sketches);
  util::Rng rng = coins.stream(model::coin_tag(model::CoinTag::kShuffle, 3));
  return graph::greedy_mis_random(known, rng);
}

}  // namespace ds::protocols
