#include "protocols/two_round_mis.h"

#include <algorithm>
#include <vector>

#include "graph/independent_set.h"
#include "protocols/budgeted.h"

namespace ds::protocols {

using graph::Graph;
using graph::Vertex;

bool TwoRoundMis::is_marked(const model::PublicCoins& coins, Vertex v,
                            double p) {
  util::Rng rng = coins.stream(model::coin_tag(model::CoinTag::kMark, v));
  return rng.next_bernoulli(p);
}

void TwoRoundMis::encode_round(const model::VertexView& view, unsigned round,
                               std::span<const util::BitString> broadcasts,
                               util::BitWriter& out) const {
  const unsigned width = util::bit_width_for(view.n);
  if (round == 0) {
    std::vector<std::uint32_t> reported;
    if (is_marked(*view.coins, view.id, mark_probability_)) {
      for (Vertex w : view.neighbors) {
        if (is_marked(*view.coins, w, mark_probability_)) reported.push_back(w);
      }
    }
    out.put_u32_span(reported, width);
    return;
  }

  // Round 1: I1 bitmap arrived. The message is one flag bit ("I am
  // undominated") followed, when set, by the vertex's edges to non-I1
  // neighbors. The flag disambiguates a dominated vertex from an
  // undominated one with no residual neighbors — the latter must join the
  // final MIS, the former must not.
  util::BitReader bitmap(broadcasts[0]);
  std::vector<bool> in_i1(view.n);
  for (Vertex v = 0; v < view.n; ++v) in_i1[v] = bitmap.get_bit();

  bool undominated = !in_i1[view.id];
  if (undominated) {
    for (Vertex w : view.neighbors) {
      if (in_i1[w]) {
        undominated = false;
        break;
      }
    }
  }

  out.put_bit(undominated);
  if (undominated) {
    std::vector<std::uint32_t> residual;
    for (Vertex w : view.neighbors) {
      if (!in_i1[w]) {
        residual.push_back(w);
        if (residual.size() >= round1_cap_) break;
      }
    }
    out.put_u32_span(residual, width);
  }
}

model::VertexSetOutput TwoRoundMis::round0_mis(
    Vertex n, std::span<const util::BitString> round0,
    const model::PublicCoins& coins) const {
  const Graph marked_graph = decode_reported_graph(n, round0);
  // Greedy only over marked vertices (unmarked ones sent nothing but must
  // not sneak into I1 as isolated vertices).
  std::vector<Vertex> order;
  for (Vertex v = 0; v < n; ++v) {
    if (is_marked(coins, v, mark_probability_)) order.push_back(v);
  }
  util::Rng rng = coins.stream(model::coin_tag(model::CoinTag::kShuffle, 11));
  rng.shuffle(std::span<Vertex>(order));
  return graph::greedy_mis(marked_graph, order);
}

util::BitString TwoRoundMis::make_broadcast(
    unsigned /*round*/, Vertex n,
    std::span<const std::vector<util::BitString>> rounds_so_far,
    const model::PublicCoins& coins) const {
  const model::VertexSetOutput i1 = round0_mis(n, rounds_so_far[0], coins);
  std::vector<bool> member(n, false);
  for (Vertex v : i1) member[v] = true;
  util::BitWriter writer;
  for (Vertex v = 0; v < n; ++v) writer.put_bit(member[v]);
  return util::BitString(writer);
}

model::VertexSetOutput TwoRoundMis::decode(
    Vertex n, std::span<const std::vector<util::BitString>> all_rounds,
    std::span<const util::BitString> /*broadcasts*/,
    const model::PublicCoins& coins) const {
  const model::VertexSetOutput i1 = round0_mis(n, all_rounds[0], coins);
  std::vector<bool> in_i1(n, false);
  for (Vertex v : i1) in_i1[v] = true;

  // Round-1 senders flagged themselves undominated; their reports give
  // the full induced residual graph on undominated vertices (cap
  // permitting — only the cap can cause an error here).
  const unsigned width = util::bit_width_for(n);
  std::vector<bool> undominated(n, false);
  std::vector<graph::Edge> residual_edges;
  for (Vertex v = 0; v < n; ++v) {
    util::BitReader reader(all_rounds[1][v]);
    if (reader.bits_remaining() == 0) continue;
    if (!reader.get_bit()) continue;  // dominated or in I1
    undominated[v] = true;
    for (std::uint32_t w : reader.get_u32_span(width)) {
      if (w < n && w != v) {
        residual_edges.push_back({v, static_cast<Vertex>(w)});
      }
    }
  }

  const Graph residual = Graph::from_edges(n, residual_edges);
  std::vector<Vertex> order;
  for (Vertex v = 0; v < n; ++v) {
    if (undominated[v]) order.push_back(v);
  }
  util::Rng rng = coins.stream(model::coin_tag(model::CoinTag::kShuffle, 12));
  rng.shuffle(std::span<Vertex>(order));
  // Greedy over undominated candidates only.
  std::vector<bool> blocked(n, false);
  model::VertexSetOutput result = i1;
  for (Vertex v : order) {
    if (blocked[v]) continue;
    result.push_back(v);
    blocked[v] = true;
    for (Vertex w : residual.neighbors(v)) blocked[w] = true;
  }
  std::sort(result.begin(), result.end());
  return result;
}

}  // namespace ds::protocols
