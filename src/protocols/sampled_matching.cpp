#include "protocols/sampled_matching.h"

#include "graph/matching.h"
#include "protocols/budgeted.h"

namespace ds::protocols {

void BudgetedMatching::encode(const model::VertexView& view,
                              util::BitWriter& out) const {
  encode_edge_report(view, budget_bits_, out);
}

model::MatchingOutput BudgetedMatching::decode(
    graph::Vertex n, std::span<const util::BitString> sketches,
    const model::PublicCoins& coins) const {
  const graph::Graph known = decode_reported_graph(n, sketches);
  util::Rng rng = coins.stream(model::coin_tag(model::CoinTag::kShuffle, 2));
  // Maximal on what the referee knows; whether it is maximal on the real
  // graph is exactly what the harness scores.
  return graph::greedy_matching_random(known, rng);
}

}  // namespace ds::protocols
