// Two-round adaptive maximal matching, in the style of the filtering
// technique of Lattanzi-Moseley-Suri-Vassilvitskii (SPAA'11) cited by the
// paper's Section 1.1 remark: with one extra round, maximal matching has
// O(sqrt n)-size (adaptive) sketches.
//
//   round 0: every vertex reports min(deg, c0) random incident edges.
//   referee: greedy maximal matching M1 on the sampled graph; broadcasts
//            the matched-vertex bitmap (n bits downlink).
//   round 1: every *unmatched* vertex reports its edges to unmatched
//            neighbors, up to a cap.
//   referee: extends M1 greedily with the residual reports.
//
// The filtering guarantee is that after matching on a sample, the residual
// graph on unmatched vertices is sparse w.h.p., so a ~sqrt(n) cap in both
// rounds suffices; the bench (E8) measures realized per-player bits.
#pragma once

#include "model/adaptive.h"

namespace ds::protocols {

class TwoRoundMatching final
    : public model::AdaptiveProtocol<model::MatchingOutput> {
 public:
  /// round0_samples: edges reported per vertex in round 0;
  /// round1_cap: max residual edges reported per vertex in round 1.
  TwoRoundMatching(std::size_t round0_samples, std::size_t round1_cap)
      : round0_samples_(round0_samples), round1_cap_(round1_cap) {}

  [[nodiscard]] unsigned num_rounds() const override { return 2; }

  void encode_round(const model::VertexView& view, unsigned round,
                    std::span<const util::BitString> broadcasts,
                    util::BitWriter& out) const override;

  [[nodiscard]] util::BitString make_broadcast(
      unsigned round, graph::Vertex n,
      std::span<const std::vector<util::BitString>> rounds_so_far,
      const model::PublicCoins& coins) const override;

  [[nodiscard]] model::MatchingOutput decode(
      graph::Vertex n,
      std::span<const std::vector<util::BitString>> all_rounds,
      std::span<const util::BitString> broadcasts,
      const model::PublicCoins& coins) const override;

  [[nodiscard]] std::string name() const override {
    return "two-round-matching";
  }

 private:
  /// The deterministic-given-coins round-0 matching both referee steps
  /// recompute.
  [[nodiscard]] model::MatchingOutput round0_matching(
      graph::Vertex n, std::span<const util::BitString> round0,
      const model::PublicCoins& coins) const;

  std::size_t round0_samples_;
  std::size_t round1_cap_;
};

}  // namespace ds::protocols
