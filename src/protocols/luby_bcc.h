// Luby's MIS as a multi-round broadcast-congested-clique protocol.
//
// The distributed sketching model is the ONE-round broadcast congested
// clique; this protocol completes the rounds-vs-bits picture the paper
// frames (Theorems 1-2: one round needs sqrt(n) bits; §1.1 remark: two
// rounds need ~sqrt(n); classic BCC folklore: O(log n) rounds need only
// O(1) bits each):
//
//   phase p (two rounds):
//     round A: every vertex sends 1 bit — "I joined in this phase": it
//              joins iff it is active and its public-coin priority
//              priority(v, p) beats every ACTIVE neighbor's (ties by id).
//              Priorities are public-coin, so no priority is ever sent.
//     referee: broadcasts the joined bitmap.
//     round B: every vertex sends 1 bit — "I am still active" (not
//              joined, no joined neighbor).  The referee broadcasts the
//              active bitmap, which is what lets neighbors evaluate each
//              other's activity next phase (a vertex cannot see its
//              neighbor's neighborhood).
//
// Total per-player uplink: 2 bits x O(log n) phases.  The referee's
// output is the union of joined bitmaps.
#pragma once

#include "model/adaptive.h"

namespace ds::protocols {

class LubyBroadcastMis final
    : public model::AdaptiveProtocol<model::VertexSetOutput> {
 public:
  /// Use make_luby_bcc(n) unless you want an explicit phase count.
  explicit LubyBroadcastMis(unsigned phases) : phases_(phases) {}

  [[nodiscard]] unsigned num_rounds() const override { return 2 * phases_; }

  void encode_round(const model::VertexView& view, unsigned round,
                    std::span<const util::BitString> broadcasts,
                    util::BitWriter& out) const override;

  [[nodiscard]] util::BitString make_broadcast(
      unsigned round, graph::Vertex n,
      std::span<const std::vector<util::BitString>> rounds_so_far,
      const model::PublicCoins& coins) const override;

  [[nodiscard]] model::VertexSetOutput decode(
      graph::Vertex n,
      std::span<const std::vector<util::BitString>> all_rounds,
      std::span<const util::BitString> broadcasts,
      const model::PublicCoins& coins) const override;

  [[nodiscard]] std::string name() const override { return "luby-bcc-mis"; }

  /// Recommended phase count for graphs on n vertices.
  [[nodiscard]] static unsigned default_phases(graph::Vertex n);

  /// Public-coin phase priority of vertex v (identical for all parties).
  [[nodiscard]] static std::uint64_t priority(const model::PublicCoins& coins,
                                              graph::Vertex v,
                                              unsigned phase);

 private:
  unsigned phases_;
};

/// A copy of the protocol with phases resolved for a concrete n — use
/// this to construct (the runner asks num_rounds() before seeing n).
[[nodiscard]] LubyBroadcastMis make_luby_bcc(graph::Vertex n);

}  // namespace ds::protocols
