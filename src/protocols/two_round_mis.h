// Two-round adaptive MIS, in the style of the vertex-sampling
// sparsification of Ghaffari-Gouleakis-Konrad-Mitrovic-Rubinfeld
// (PODC'18), the second O(sqrt n) two-round citation in Section 1.1.
//
//   round 0: a public-coin mark (every party recomputes it) selects each
//            vertex with probability p; marked vertices report their edges
//            to *marked* neighbors (expected ~p * deg each).
//   referee: greedy MIS I1 on the induced marked graph; broadcasts the I1
//            bitmap.
//   round 1: a vertex that is not in I1 and sees no I1 neighbor
//            ("undominated") reports its edges to non-I1 neighbors,
//            capped.  Undominated vertices induce a sparse graph w.h.p. —
//            high-degree vertices get dominated in round 0.
//   referee: greedy MIS I2 on the graph induced on undominated vertices;
//            outputs I1 union I2.
//
// Maximality: every vertex is in I1, dominated by I1, in I2, or dominated
// by I2 within the fully-known undominated subgraph.  Failures only arise
// from the round-1 cap, which the bench measures.
#pragma once

#include "model/adaptive.h"

namespace ds::protocols {

class TwoRoundMis final
    : public model::AdaptiveProtocol<model::VertexSetOutput> {
 public:
  TwoRoundMis(double mark_probability, std::size_t round1_cap)
      : mark_probability_(mark_probability), round1_cap_(round1_cap) {}

  [[nodiscard]] unsigned num_rounds() const override { return 2; }

  void encode_round(const model::VertexView& view, unsigned round,
                    std::span<const util::BitString> broadcasts,
                    util::BitWriter& out) const override;

  [[nodiscard]] util::BitString make_broadcast(
      unsigned round, graph::Vertex n,
      std::span<const std::vector<util::BitString>> rounds_so_far,
      const model::PublicCoins& coins) const override;

  [[nodiscard]] model::VertexSetOutput decode(
      graph::Vertex n,
      std::span<const std::vector<util::BitString>> all_rounds,
      std::span<const util::BitString> broadcasts,
      const model::PublicCoins& coins) const override;

  [[nodiscard]] std::string name() const override { return "two-round-mis"; }

  /// The public-coin mark — identical for every party.
  [[nodiscard]] static bool is_marked(const model::PublicCoins& coins,
                                      graph::Vertex v, double p);

 private:
  [[nodiscard]] model::VertexSetOutput round0_mis(
      graph::Vertex n, std::span<const util::BitString> round0,
      const model::PublicCoins& coins) const;

  double mark_probability_;
  std::size_t round1_cap_;
};

}  // namespace ds::protocols
