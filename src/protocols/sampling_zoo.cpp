#include "protocols/sampling_zoo.h"

#include <cmath>
#include <vector>

#include "protocols/budgeted.h"

namespace ds::protocols {

using graph::Graph;
using graph::Vertex;

namespace {

constexpr std::uint64_t kKmvTag = 0xEC07;
constexpr std::uint64_t kSampleTag = 0x5A3D;

/// Shared subgraph sample: report the incident edges the shared hash
/// selects.
void encode_sampled_edges(const model::VertexView& view, double p,
                          util::BitWriter& out) {
  const unsigned width = util::bit_width_for(view.n);
  std::vector<std::uint32_t> reported;
  for (Vertex w : view.neighbors) {
    const std::uint64_t id = graph::pair_id(view.n, view.id, w);
    if (SampledDensestSubgraph::sampled(*view.coins, id, p)) {
      reported.push_back(w);
    }
  }
  out.put_u32_span(reported, width);
}

}  // namespace

bool SampledDensestSubgraph::sampled(const model::PublicCoins& coins,
                                     std::uint64_t edge_id, double p) {
  if (p >= 1.0) return true;
  if (p <= 0.0) return false;
  const util::KWiseHash hash =
      coins.hash(model::coin_tag(model::CoinTag::kEdgeSample,
                                 util::mix64(kSampleTag, 0)),
                 2);
  // A vertex's incident pair-ids are CONSECUTIVE integers, and a linear
  // pairwise hash maps an arithmetic progression to an arithmetic
  // progression — producing long sampled runs at one vertex.  Pre-mixing
  // with a fixed bijection scrambles that structure while preserving
  // pairwise independence over the hash draw.
  const std::uint64_t scrambled = util::mix64(edge_id, 0x5EED5EED);
  const double u = static_cast<double>(hash(scrambled)) /
                   static_cast<double>(util::kDefaultPrime);
  return u < p;
}

void EdgeCountEstimate::encode(const model::VertexView& view,
                               util::BitWriter& out) const {
  sketch::KmvSketch s = sketch::KmvSketch::make(*view.coins, kKmvTag, k_);
  for (Vertex w : view.neighbors) {
    s.add(graph::pair_id(view.n, view.id, w));
  }
  s.write(out);
}

double EdgeCountEstimate::decode(Vertex /*n*/,
                                 std::span<const util::BitString> sketches,
                                 const model::PublicCoins& coins) const {
  sketch::KmvSketch merged = sketch::KmvSketch::make(coins, kKmvTag, k_);
  for (const util::BitString& raw : sketches) {
    sketch::KmvSketch s = sketch::KmvSketch::make(coins, kKmvTag, k_);
    util::BitReader reader(raw);
    s.read(reader);
    merged.merge(s);
  }
  return merged.estimate();
}

void SampledDensestSubgraph::encode(const model::VertexView& view,
                                    util::BitWriter& out) const {
  encode_sampled_edges(view, sample_prob_, out);
}

graph::DensestResult SampledDensestSubgraph::decode(
    Vertex n, std::span<const util::BitString> sketches,
    const model::PublicCoins& /*coins*/) const {
  const Graph sample = decode_reported_graph(n, sketches);
  graph::DensestResult result = graph::densest_subgraph_peel(sample);
  result.density /= std::max(sample_prob_, 1e-12);  // unbias the estimate
  return result;
}

void SampledSubgraph::encode(const model::VertexView& view,
                             util::BitWriter& out) const {
  encode_sampled_edges(view, sample_prob_, out);
}

Graph SampledSubgraph::decode(Vertex n,
                              std::span<const util::BitString> sketches,
                              const model::PublicCoins& /*coins*/) const {
  return decode_reported_graph(n, sketches);
}

void SampledDegeneracy::encode(const model::VertexView& view,
                               util::BitWriter& out) const {
  encode_sampled_edges(view, sample_prob_, out);
}

double SampledDegeneracy::decode(
    Vertex n, std::span<const util::BitString> sketches,
    const model::PublicCoins& /*coins*/) const {
  const Graph sample = decode_reported_graph(n, sketches);
  return static_cast<double>(graph::degeneracy(sample)) /
         std::max(sample_prob_, 1e-12);
}

}  // namespace ds::protocols
