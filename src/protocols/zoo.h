// The rest of the introduction's "problem zoo": problems the paper lists
// as HAVING efficient sketches, implemented on top of the AGM machinery
// to make the MM/MIS contrast concrete.
//
//  * AgmConnectivity         — number of connected components, O(log^3 n)
//                              bits/player [AGM'12].
//  * KConnectivityCertificate — union of k peeled edge-disjoint spanning
//                              forests; preserves min(edge-connectivity, k)
//                              [AGM'12, Nagamochi-Ibaraki]. k * O(log^3 n)
//                              bits/player.
//  * MstWeight               — exact MSF weight for integer weights in
//                              [1, W], via the component-counting identity
//                              w(MSF) = sum_{i=0}^{W-1} (c_i - c_W)
//                              (c_i = #components of the subgraph with
//                              weight <= i), with one connectivity sketch
//                              per weight class: W * O(log^3 n) bits.
//                              [AGM'12 give (1+eps)-approx with log W
//                              classes; we run the exact small-W variant.]
#pragma once

#include "graph/weighted.h"
#include "model/protocol.h"
#include "sketch/agm.h"

namespace ds::protocols {

class AgmConnectivity final
    : public model::SketchingProtocol<std::uint32_t> {
 public:
  explicit AgmConnectivity(unsigned rounds = 0) : rounds_(rounds) {}

  void encode(const model::VertexView& view,
              util::BitWriter& out) const override;
  [[nodiscard]] std::uint32_t decode(
      graph::Vertex n, std::span<const util::BitString> sketches,
      const model::PublicCoins& coins) const override;
  [[nodiscard]] std::string name() const override {
    return "agm-connectivity";
  }

 private:
  unsigned rounds_;
};

/// Output: the certificate's edge set (a subgraph on the same vertices).
class KConnectivityCertificate final
    : public model::SketchingProtocol<std::vector<graph::Edge>> {
 public:
  explicit KConnectivityCertificate(std::uint32_t k) : k_(k) {}

  void encode(const model::VertexView& view,
              util::BitWriter& out) const override;
  [[nodiscard]] std::vector<graph::Edge> decode(
      graph::Vertex n, std::span<const util::BitString> sketches,
      const model::PublicCoins& coins) const override;
  [[nodiscard]] std::string name() const override {
    return "k-connectivity-certificate";
  }
  [[nodiscard]] std::uint32_t k() const noexcept { return k_; }

 private:
  std::uint32_t k_;
};

/// Output: the exact minimum-spanning-forest weight.  Requires weighted
/// views (run via the WeightedGraph runner) with weights in [1, W].
class MstWeight final : public model::SketchingProtocol<std::uint64_t> {
 public:
  explicit MstWeight(std::uint32_t max_weight) : max_weight_(max_weight) {}

  void encode(const model::VertexView& view,
              util::BitWriter& out) const override;
  [[nodiscard]] std::uint64_t decode(
      graph::Vertex n, std::span<const util::BitString> sketches,
      const model::PublicCoins& coins) const override;
  [[nodiscard]] std::string name() const override { return "mst-weight"; }

 private:
  std::uint32_t max_weight_;
};

}  // namespace ds::protocols
