// One-round budgeted maximal matching: random edge reports + referee-side
// greedy matching on the reported subgraph.  The protocol family swept by
// experiment E3: success transitions from ~0 to ~1 as the budget crosses
// what D_MM's structure demands (~r * log n bits).
#pragma once

#include "model/protocol.h"

namespace ds::protocols {

class BudgetedMatching final
    : public model::SketchingProtocol<model::MatchingOutput> {
 public:
  explicit BudgetedMatching(std::size_t budget_bits)
      : budget_bits_(budget_bits) {}

  void encode(const model::VertexView& view,
              util::BitWriter& out) const override;

  [[nodiscard]] model::MatchingOutput decode(
      graph::Vertex n, std::span<const util::BitString> sketches,
      const model::PublicCoins& coins) const override;

  [[nodiscard]] std::string name() const override {
    return "budgeted-matching";
  }
  [[nodiscard]] std::size_t budget_bits() const noexcept {
    return budget_bits_;
  }

 private:
  std::size_t budget_bits_;
};

}  // namespace ds::protocols
