// Budgeted TWO-round matching: the bridge between Theorem 1 (one round,
// sqrt(n) wall) and the Section 1.1 remark (unbudgeted two rounds solve
// it with ~sqrt(n) bits).  Both rounds are budget-capped so the harness
// can sweep the budget exactly as in E3 and compare thresholds:
//
//   round 0: every vertex reports a budgeted random sample of its edges;
//   referee: greedy matching M1 on the union, broadcasts the matched set;
//   round 1: unmatched vertices report a budgeted sample of their edges
//            to unmatched neighbors;
//   referee: greedily extends M1.
//
// On D_MM adaptivity helps: after round 0 most public vertices are
// matched, so round 1's budget concentrates on exactly the unique-unique
// edges the one-round protocol had to pay for blindly.
#pragma once

#include "model/adaptive.h"

namespace ds::protocols {

class BudgetedTwoRoundMatching final
    : public model::AdaptiveProtocol<model::MatchingOutput> {
 public:
  BudgetedTwoRoundMatching(std::size_t round0_bits, std::size_t round1_bits)
      : round0_bits_(round0_bits), round1_bits_(round1_bits) {}

  [[nodiscard]] unsigned num_rounds() const override { return 2; }

  void encode_round(const model::VertexView& view, unsigned round,
                    std::span<const util::BitString> broadcasts,
                    util::BitWriter& out) const override;

  [[nodiscard]] util::BitString make_broadcast(
      unsigned round, graph::Vertex n,
      std::span<const std::vector<util::BitString>> rounds_so_far,
      const model::PublicCoins& coins) const override;

  [[nodiscard]] model::MatchingOutput decode(
      graph::Vertex n,
      std::span<const std::vector<util::BitString>> all_rounds,
      std::span<const util::BitString> broadcasts,
      const model::PublicCoins& coins) const override;

  [[nodiscard]] std::string name() const override {
    return "budgeted-two-round-matching";
  }

 private:
  [[nodiscard]] model::MatchingOutput round0_matching(
      graph::Vertex n, std::span<const util::BitString> round0,
      const model::PublicCoins& coins) const;

  std::size_t round0_bits_;
  std::size_t round1_bits_;
};

}  // namespace ds::protocols
