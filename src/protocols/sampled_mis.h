// One-round budgeted MIS: random edge reports + referee-side greedy MIS on
// the reported subgraph.  With missing edges the output can be non-
// independent (two adjacent vertices whose edge went unreported) or non-
// maximal; both failure modes are scored by the harness (Section 2.1's
// error model).
#pragma once

#include "model/protocol.h"

namespace ds::protocols {

class BudgetedMis final
    : public model::SketchingProtocol<model::VertexSetOutput> {
 public:
  explicit BudgetedMis(std::size_t budget_bits) : budget_bits_(budget_bits) {}

  void encode(const model::VertexView& view,
              util::BitWriter& out) const override;

  [[nodiscard]] model::VertexSetOutput decode(
      graph::Vertex n, std::span<const util::BitString> sketches,
      const model::PublicCoins& coins) const override;

  [[nodiscard]] std::string name() const override { return "budgeted-mis"; }
  [[nodiscard]] std::size_t budget_bits() const noexcept {
    return budget_bits_;
  }

 private:
  std::size_t budget_bits_;
};

}  // namespace ds::protocols
