#include "protocols/zoo.h"

#include <algorithm>
#include <cassert>
#include <set>

namespace ds::protocols {

using graph::Edge;
using graph::Vertex;

namespace {

constexpr std::uint64_t kPeelTag = 0x9EE1;
constexpr std::uint64_t kWeightClassTag = 0x3357;

std::vector<sketch::AgmVertexSketch> read_group(
    const model::PublicCoins& coins, Vertex n, std::uint64_t tag,
    std::span<const util::BitString> sketches,
    std::vector<util::BitReader>& readers) {
  std::vector<sketch::AgmVertexSketch> group;
  group.reserve(n);
  for (Vertex v = 0; v < n; ++v) {
    sketch::AgmVertexSketch s =
        sketch::AgmVertexSketch::make_cached(coins, n, 0, tag);
    s.read(readers[v]);
    group.push_back(std::move(s));
  }
  (void)sketches;
  return group;
}

}  // namespace

void AgmConnectivity::encode(const model::VertexView& view,
                             util::BitWriter& out) const {
  sketch::AgmVertexSketch s =
      sketch::AgmVertexSketch::make_cached(*view.coins, view.n, rounds_);
  s.add_vertex_edges(view.id, view.neighbors);
  s.write(out);
}

std::uint32_t AgmConnectivity::decode(
    Vertex n, std::span<const util::BitString> sketches,
    const model::PublicCoins& coins) const {
  std::vector<sketch::AgmVertexSketch> decoded;
  decoded.reserve(n);
  for (Vertex v = 0; v < n; ++v) {
    sketch::AgmVertexSketch s =
        sketch::AgmVertexSketch::make_cached(coins, n, rounds_);
    util::BitReader reader(sketches[v]);
    s.read(reader);
    decoded.push_back(std::move(s));
  }
  return sketch::agm_spanning_forest(n, std::move(decoded)).components;
}

void KConnectivityCertificate::encode(const model::VertexView& view,
                                      util::BitWriter& out) const {
  // k independent sketch groups of the same incidence vector.
  for (std::uint32_t group = 0; group < k_; ++group) {
    sketch::AgmVertexSketch s = sketch::AgmVertexSketch::make_cached(
        *view.coins, view.n, 0, util::mix64(kPeelTag, group));
    s.add_vertex_edges(view.id, view.neighbors);
    s.write(out);
  }
}

std::vector<Edge> KConnectivityCertificate::decode(
    Vertex n, std::span<const util::BitString> sketches,
    const model::PublicCoins& coins) const {
  std::vector<util::BitReader> readers;
  readers.reserve(n);
  for (Vertex v = 0; v < n; ++v) readers.emplace_back(sketches[v]);

  std::vector<Edge> certificate;  // accumulated peeled forests
  for (std::uint32_t group = 0; group < k_; ++group) {
    std::vector<sketch::AgmVertexSketch> sketches_g = read_group(
        coins, n, util::mix64(kPeelTag, group), sketches, readers);
    // Peel every previously recovered edge out of this group: by
    // linearity the group now sketches G minus the earlier forests.
    for (const Edge& e : certificate) {
      sketches_g[e.u].add_single_edge(e.u, e.v, -1);
      sketches_g[e.v].add_single_edge(e.v, e.u, -1);
    }
    const sketch::SpanningForestDecode forest =
        sketch::agm_spanning_forest(n, std::move(sketches_g));
    certificate.insert(certificate.end(), forest.forest.begin(),
                       forest.forest.end());
  }
  std::sort(certificate.begin(), certificate.end());
  certificate.erase(std::unique(certificate.begin(), certificate.end()),
                    certificate.end());
  return certificate;
}

void MstWeight::encode(const model::VertexView& view,
                       util::BitWriter& out) const {
  assert(view.neighbor_weights.size() == view.neighbors.size() &&
         "MstWeight needs the weighted runner");
  // One connectivity sketch per weight class i = 1..W over the subgraph
  // of incident edges with weight <= i.
  std::vector<Vertex> kept;
  kept.reserve(view.neighbors.size());
  for (std::uint32_t klass = 1; klass <= max_weight_; ++klass) {
    sketch::AgmVertexSketch s = sketch::AgmVertexSketch::make_cached(
        *view.coins, view.n, 0, util::mix64(kWeightClassTag, klass));
    kept.clear();
    for (std::size_t i = 0; i < view.neighbors.size(); ++i) {
      if (view.neighbor_weights[i] <= klass) kept.push_back(view.neighbors[i]);
    }
    s.add_vertex_edges(view.id, kept);
    s.write(out);
  }
}

std::uint64_t MstWeight::decode(Vertex n,
                                std::span<const util::BitString> sketches,
                                const model::PublicCoins& coins) const {
  std::vector<util::BitReader> readers;
  readers.reserve(n);
  for (Vertex v = 0; v < n; ++v) readers.emplace_back(sketches[v]);

  // c_i = components of the weight-<= i subgraph; c_0 = n.
  std::vector<std::uint32_t> components(max_weight_ + 1);
  components[0] = n;
  for (std::uint32_t klass = 1; klass <= max_weight_; ++klass) {
    std::vector<sketch::AgmVertexSketch> group = read_group(
        coins, n, util::mix64(kWeightClassTag, klass), sketches, readers);
    components[klass] =
        sketch::agm_spanning_forest(n, std::move(group)).components;
  }
  // w(MSF) = sum_{i=0}^{W-1} (c_i - c_W).
  std::uint64_t weight = 0;
  for (std::uint32_t i = 0; i < max_weight_; ++i) {
    weight += components[i] - components[max_weight_];
  }
  return weight;
}

}  // namespace ds::protocols
