#include "protocols/budgeted.h"

#include <algorithm>

#include <vector>

#include "util/rng.h"

namespace ds::protocols {

using graph::Edge;
using graph::Graph;
using graph::Vertex;

std::size_t edges_fitting_budget(std::size_t budget_bits, Vertex n,
                                 std::size_t degree) {
  const unsigned width = util::bit_width_for(n);
  if (width == 0) return degree;
  // The gamma code for count+1 takes 2*floor(log2(count+1)) + 1 bits;
  // solve greedily by trying counts downward from the naive bound.
  std::size_t count = budget_bits / width;
  if (count > degree) count = degree;
  auto header_bits = [](std::size_t c) {
    unsigned len = 0;
    for (std::size_t v = c + 1; v > 0; v >>= 1) ++len;
    return static_cast<std::size_t>(2 * (len - 1) + 1);
  };
  while (count > 0 && header_bits(count) + count * width > budget_bits) {
    --count;
  }
  if (count == 0 && header_bits(0) > budget_bits) return 0;
  return count;
}

void encode_edge_report(const model::VertexView& view, std::size_t budget_bits,
                        util::BitWriter& out) {
  const unsigned width = util::bit_width_for(view.n);
  const std::size_t capacity =
      edges_fitting_budget(budget_bits, view.n, view.neighbors.size());

  std::vector<std::uint32_t> reported;
  if (capacity >= view.neighbors.size()) {
    reported.assign(view.neighbors.begin(), view.neighbors.end());
  } else if (capacity > 0) {
    util::Rng rng = view.coins->stream(
        model::coin_tag(model::CoinTag::kEdgeSample, view.id));
    for (std::uint64_t pick :
         rng.sample_without_replacement(view.neighbors.size(), capacity)) {
      reported.push_back(view.neighbors[pick]);
    }
  }
  out.put_u32_span(reported, width);
}

Graph decode_reported_graph(Vertex n,
                            std::span<const util::BitString> sketches) {
  const unsigned width = util::bit_width_for(n);
  std::vector<Edge> edges;
  // One-sided runs hand in fewer sketches than vertices; parse what is
  // there.
  const Vertex senders =
      static_cast<Vertex>(std::min<std::size_t>(n, sketches.size()));
  for (Vertex v = 0; v < senders; ++v) {
    util::BitReader reader(sketches[v]);
    if (reader.bits_remaining() == 0) continue;
    for (std::uint32_t w : reader.get_u32_span(width)) {
      if (w < n && w != v) edges.push_back({v, w});
    }
  }
  return Graph::from_edges(n, edges);
}

}  // namespace ds::protocols
