#include "protocols/needle.h"

#include <vector>

#include "protocols/budgeted.h"

namespace ds::protocols {

using graph::Edge;
using graph::Graph;
using graph::Vertex;

void NeedleTwoSided::encode(const model::VertexView& view,
                            util::BitWriter& out) const {
  // Only right vertices of degree exactly 1 speak; everyone else sends
  // the empty message (0 bits — silence is free in this model).
  if (view.id >= left_ && view.degree() == 1) {
    out.put_bits(view.neighbors[0], util::bit_width_for(view.n));
  }
}

Edge NeedleTwoSided::decode(Vertex n,
                            std::span<const util::BitString> sketches,
                            const model::PublicCoins& /*coins*/) const {
  const unsigned width = util::bit_width_for(n);
  for (Vertex r = left_; r < n && r < sketches.size(); ++r) {
    if (sketches[r].bit_count() == 0) continue;
    util::BitReader reader(sketches[r]);
    const Vertex l = static_cast<Vertex>(reader.get_bits(width));
    if (l < left_) return Edge{l, r};
  }
  return Edge{0, 0};  // failure sentinel
}

void NeedleOneSided::encode(const model::VertexView& view,
                            util::BitWriter& out) const {
  // Only left vertices exist as players in the one-sided runner, but the
  // protocol also runs unmodified in the two-sided runner (right players
  // then send empty reports and contribute nothing).
  if (view.id < left_) {
    encode_edge_report(view, budget_bits_, out);
  } else {
    out.put_u32_span({}, util::bit_width_for(view.n));
  }
}

Edge NeedleOneSided::decode(Vertex n,
                            std::span<const util::BitString> sketches,
                            const model::PublicCoins& /*coins*/) const {
  const Graph reported = decode_reported_graph(n, sketches);
  // A needle candidate: right vertex with reported degree exactly 1.
  // Under-reporting creates false candidates; answer only when the
  // candidate is unique (otherwise the referee is guessing).
  Edge candidate{0, 0};
  std::size_t count = 0;
  for (Vertex r = left_; r < n; ++r) {
    if (reported.degree(r) == 1) {
      candidate = Edge{reported.neighbors(r)[0], r};
      ++count;
    }
  }
  return count == 1 ? candidate : Edge{0, 0};
}

}  // namespace ds::protocols
