#include "protocols/bridge_finding.h"

#include <algorithm>
#include <vector>

#include "graph/connectivity.h"
#include "util/rng.h"

namespace ds::protocols {

using graph::Edge;
using graph::Graph;
using graph::Vertex;

void BridgeFinding::encode(const model::VertexView& view,
                           util::BitWriter& out) const {
  const unsigned width = util::bit_width_for(view.n);

  // (a) sampled incident edges.
  util::Rng rng =
      view.coins->stream(model::coin_tag(model::CoinTag::kEdgeSample, view.id));
  const std::size_t deg = view.neighbors.size();
  std::vector<std::uint32_t> reported;
  if (deg <= samples_) {
    reported.assign(view.neighbors.begin(), view.neighbors.end());
  } else {
    for (std::uint64_t pick : rng.sample_without_replacement(deg, samples_)) {
      reported.push_back(view.neighbors[pick]);
    }
  }
  out.put_u32_span(reported, width);

  // (b) the signed incidence sum, mod 2^64.
  const std::uint64_t n64 = view.n;
  std::uint64_t sum = 0;
  for (Vertex z : view.neighbors) {
    if (z > view.id) {
      sum += static_cast<std::uint64_t>(z) * n64 + view.id;
    } else {
      sum -= static_cast<std::uint64_t>(view.id) * n64 + z;
    }
  }
  out.put_bits(sum, 64);
}

namespace {

/// Cut edges (bridges) of g by iterative Tarjan low-link.
std::vector<Edge> cut_edges(const Graph& g) {
  const Vertex n = g.num_vertices();
  std::vector<std::uint32_t> disc(n, 0), low(n, 0);
  std::vector<Vertex> parent(n, n);
  std::vector<Edge> result;
  std::uint32_t timer = 1;

  struct Frame {
    Vertex v;
    std::size_t next_neighbor;
  };
  for (Vertex start = 0; start < n; ++start) {
    if (disc[start] != 0) continue;
    std::vector<Frame> stack{{start, 0}};
    disc[start] = low[start] = timer++;
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const auto nbrs = g.neighbors(frame.v);
      if (frame.next_neighbor < nbrs.size()) {
        const Vertex w = nbrs[frame.next_neighbor++];
        if (disc[w] == 0) {
          parent[w] = frame.v;
          disc[w] = low[w] = timer++;
          stack.push_back({w, 0});
        } else if (w != parent[frame.v]) {
          low[frame.v] = std::min(low[frame.v], disc[w]);
        }
      } else {
        const Vertex v = frame.v;
        stack.pop_back();
        if (!stack.empty()) {
          const Vertex p = stack.back().v;
          low[p] = std::min(low[p], low[v]);
          if (low[v] > disc[p]) result.push_back(Edge{p, v});
        }
      }
    }
  }
  return result;
}

/// Decode candidate edge from the A-side sum; see header for the sign
/// discussion. Returns true and fills `bridge` if X parses as (v*n + u),
/// u < v < n, with the expected endpoint in A.
bool try_decode(std::uint64_t x, Vertex n, const std::vector<bool>& in_a,
                bool smaller_endpoint_in_a, Edge& bridge) {
  const std::uint64_t n64 = n;
  const std::uint64_t v = x / n64;
  const std::uint64_t u = x % n64;
  if (v >= n64 || u >= v) return false;
  const bool u_in_a = in_a[u];
  const bool v_in_a = in_a[v];
  if (u_in_a == v_in_a) return false;  // must cross the partition
  if (u_in_a != smaller_endpoint_in_a) return false;
  bridge = Edge{static_cast<Vertex>(u), static_cast<Vertex>(v)};
  return true;
}

}  // namespace

Edge BridgeFinding::decode(Vertex n, std::span<const util::BitString> sketches,
                           const model::PublicCoins& /*coins*/) const {
  const unsigned width = util::bit_width_for(n);

  // Parse all sketches.
  std::vector<Edge> sampled;
  std::vector<std::uint64_t> sums(n);
  for (Vertex v = 0; v < n; ++v) {
    util::BitReader reader(sketches[v]);
    for (std::uint32_t w : reader.get_u32_span(width)) {
      if (w < n && w != v) sampled.push_back(Edge{v, w});
    }
    sums[v] = reader.get_bits(64);
  }
  const Graph s = Graph::from_edges(n, sampled);

  // Candidate partitions: the components of the sampled graph, or — when
  // the sampled graph is connected because the bridge itself was sampled —
  // the two sides of each of its cut edges.
  std::vector<std::vector<bool>> partitions;
  const graph::Components comps = graph::connected_components(s);
  if (comps.count == 2) {
    std::vector<bool> in_a(n, false);
    for (Vertex v = 0; v < n; ++v) in_a[v] = comps.label[v] == 0;
    partitions.push_back(std::move(in_a));
  } else if (comps.count == 1) {
    for (const Edge& cut : cut_edges(s)) {
      // Remove `cut` and 2-color by component.
      std::vector<Edge> remaining;
      for (const Edge& e : s.edges()) {
        if (e.normalized() != cut.normalized()) remaining.push_back(e);
      }
      const Graph split = Graph::from_edges(n, remaining);
      const graph::Components sc = graph::connected_components(split);
      if (sc.count != 2) continue;
      std::vector<bool> in_a(n, false);
      for (Vertex v = 0; v < n; ++v) in_a[v] = sc.label[v] == sc.label[cut.u];
      partitions.push_back(std::move(in_a));
    }
  }

  // A spurious cut edge of the sampled graph (e.g. a degree-1 vertex in a
  // sparse cluster) yields a 1-vs-rest partition whose sum also decodes to
  // a crossing edge — its own.  The true cluster partition is balanced, so
  // try candidates in order of decreasing smaller-side size.
  std::stable_sort(partitions.begin(), partitions.end(),
                   [n](const std::vector<bool>& a, const std::vector<bool>& b) {
                     auto min_side = [n](const std::vector<bool>& part) {
                       std::uint32_t count = 0;
                       for (Vertex v = 0; v < n; ++v) count += part[v];
                       return std::min(count, n - count);
                     };
                     return min_side(a) > min_side(b);
                   });

  for (const std::vector<bool>& in_a : partitions) {
    std::uint64_t total = 0;
    for (Vertex v = 0; v < n; ++v) {
      if (in_a[v]) total += sums[v];
    }
    Edge bridge{0, 0};
    // +T: smaller endpoint in A; -T: larger endpoint in A.
    if (try_decode(total, n, in_a, /*smaller_endpoint_in_a=*/true, bridge)) {
      return bridge;
    }
    if (try_decode(0 - total, n, in_a, /*smaller_endpoint_in_a=*/false,
                   bridge)) {
      return bridge;
    }
  }
  return Edge{0, 0};  // failure sentinel
}

}  // namespace ds::protocols
