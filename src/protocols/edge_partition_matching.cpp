#include "protocols/edge_partition_matching.h"

#include <vector>

#include "graph/matching.h"
#include "util/rng.h"

namespace ds::protocols {

using graph::Edge;
using graph::Matching;
using graph::Vertex;

void EdgePartitionMatching::encode(const model::EdgePlayerView& view,
                                   util::BitWriter& out) const {
  // Local greedy matching over this player's edges, in a public-coin
  // random order (so adversarial edge orders don't bias it).
  util::Rng rng = view.coins->stream(
      model::coin_tag(model::CoinTag::kShuffle, 0x40 + view.player));
  std::vector<Edge> order(view.edges.begin(), view.edges.end());
  rng.shuffle(std::span<Edge>(order));
  std::vector<bool> used(view.n, false);
  std::vector<Edge> local;
  for (const Edge& e : order) {
    if (!used[e.u] && !used[e.v]) {
      used[e.u] = used[e.v] = true;
      local.push_back(e.normalized());
    }
  }
  // Report as many matched edges as fit: 2 ids each plus a gamma header.
  const unsigned width = util::bit_width_for(view.n);
  std::size_t count = local.size();
  auto bits_needed = [&](std::size_t c) {
    unsigned len = 0;
    for (std::size_t v = c + 1; v > 0; v >>= 1) ++len;
    return static_cast<std::size_t>(2 * (len - 1) + 1) + c * 2 * width;
  };
  while (count > 0 && bits_needed(count) > budget_bits_) --count;
  if (bits_needed(0) > budget_bits_) {
    return;  // not even the header fits: silence
  }
  out.put_gamma(count + 1);
  for (std::size_t i = 0; i < count; ++i) {
    out.put_bits(local[i].u, width);
    out.put_bits(local[i].v, width);
  }
}

Matching EdgePartitionMatching::decode(
    Vertex n, std::span<const util::BitString> sketches,
    const model::PublicCoins& /*coins*/) const {
  const unsigned width = util::bit_width_for(n);
  std::vector<bool> used(n, false);
  Matching result;
  for (const util::BitString& raw : sketches) {
    util::BitReader reader(raw);
    if (reader.bits_remaining() == 0) continue;
    std::uint64_t count = reader.get_gamma() - 1;
    const std::uint64_t max_possible =
        width == 0 ? 0 : reader.bits_remaining() / (2 * width);
    if (count > max_possible) count = max_possible;
    for (std::uint64_t i = 0; i < count; ++i) {
      const Vertex u = static_cast<Vertex>(reader.get_bits(width));
      const Vertex v = static_cast<Vertex>(reader.get_bits(width));
      if (u >= n || v >= n || u == v) continue;
      if (!used[u] && !used[v]) {
        used[u] = used[v] = true;
        result.push_back(Edge{u, v}.normalized());
      }
    }
  }
  return result;
}

}  // namespace ds::protocols
