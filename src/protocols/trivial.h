// The trivial Theta(n)-bit upper bound (Section 1: "the problem is trivial
// with sketches of size Theta(n)"): every vertex ships its adjacency
// bitmap, the referee reconstructs G exactly and solves the problem
// centrally.  These protocols anchor the top of every budget sweep and
// provide the omniscient-referee baselines.
#pragma once

#include "model/protocol.h"

namespace ds::protocols {

/// Reconstruct G from adjacency bitmaps.  Shared by the trivial protocols.
[[nodiscard]] graph::Graph decode_full_graph(
    graph::Vertex n, std::span<const util::BitString> sketches);

/// Write view's adjacency row as an n-bit bitmap.
void encode_adjacency_bitmap(const model::VertexView& view,
                             util::BitWriter& out);

class TrivialMaximalMatching final
    : public model::SketchingProtocol<model::MatchingOutput> {
 public:
  void encode(const model::VertexView& view,
              util::BitWriter& out) const override {
    encode_adjacency_bitmap(view, out);
  }
  [[nodiscard]] model::MatchingOutput decode(
      graph::Vertex n, std::span<const util::BitString> sketches,
      const model::PublicCoins& coins) const override;
  [[nodiscard]] std::string name() const override { return "trivial-mm"; }
};

class TrivialMis final
    : public model::SketchingProtocol<model::VertexSetOutput> {
 public:
  void encode(const model::VertexView& view,
              util::BitWriter& out) const override {
    encode_adjacency_bitmap(view, out);
  }
  [[nodiscard]] model::VertexSetOutput decode(
      graph::Vertex n, std::span<const util::BitString> sketches,
      const model::PublicCoins& coins) const override;
  [[nodiscard]] std::string name() const override { return "trivial-mis"; }
};

}  // namespace ds::protocols
