#include "protocols/two_round_matching.h"

#include <vector>

#include "graph/matching.h"
#include "protocols/budgeted.h"

namespace ds::protocols {

using graph::Edge;
using graph::Graph;
using graph::Vertex;

void TwoRoundMatching::encode_round(const model::VertexView& view,
                                    unsigned round,
                                    std::span<const util::BitString> broadcasts,
                                    util::BitWriter& out) const {
  const unsigned width = util::bit_width_for(view.n);
  if (round == 0) {
    // Sample round0_samples_ incident edges.
    std::vector<std::uint32_t> reported;
    if (view.neighbors.size() <= round0_samples_) {
      reported.assign(view.neighbors.begin(), view.neighbors.end());
    } else {
      util::Rng rng = view.coins->stream(
          model::coin_tag(model::CoinTag::kEdgeSample, view.id));
      for (std::uint64_t pick : rng.sample_without_replacement(
               view.neighbors.size(), round0_samples_)) {
        reported.push_back(view.neighbors[pick]);
      }
    }
    out.put_u32_span(reported, width);
    return;
  }

  // Round 1: matched-vertex bitmap arrived; unmatched vertices report
  // their edges to unmatched neighbors, capped.
  util::BitReader bitmap(broadcasts[0]);
  std::vector<bool> matched(view.n);
  for (Vertex v = 0; v < view.n; ++v) matched[v] = bitmap.get_bit();

  std::vector<std::uint32_t> residual;
  if (!matched[view.id]) {
    for (Vertex w : view.neighbors) {
      if (!matched[w]) {
        residual.push_back(w);
        if (residual.size() >= round1_cap_) break;  // cap: rest is dropped
      }
    }
  }
  out.put_u32_span(residual, width);
}

model::MatchingOutput TwoRoundMatching::round0_matching(
    Vertex n, std::span<const util::BitString> round0,
    const model::PublicCoins& coins) const {
  const Graph sampled = decode_reported_graph(n, round0);
  util::Rng rng = coins.stream(model::coin_tag(model::CoinTag::kShuffle, 10));
  return graph::greedy_matching_random(sampled, rng);
}

util::BitString TwoRoundMatching::make_broadcast(
    unsigned /*round*/, Vertex n,
    std::span<const std::vector<util::BitString>> rounds_so_far,
    const model::PublicCoins& coins) const {
  const model::MatchingOutput m1 = round0_matching(n, rounds_so_far[0], coins);
  const std::vector<bool> matched = graph::matched_set(m1, n);
  util::BitWriter writer;
  for (Vertex v = 0; v < n; ++v) writer.put_bit(matched[v]);
  return util::BitString(writer);
}

model::MatchingOutput TwoRoundMatching::decode(
    Vertex n, std::span<const std::vector<util::BitString>> all_rounds,
    std::span<const util::BitString> /*broadcasts*/,
    const model::PublicCoins& coins) const {
  model::MatchingOutput matching = round0_matching(n, all_rounds[0], coins);
  std::vector<bool> matched = graph::matched_set(matching, n);

  // Extend greedily with residual reports (deterministic order).
  const unsigned width = util::bit_width_for(n);
  for (Vertex v = 0; v < n; ++v) {
    util::BitReader reader(all_rounds[1][v]);
    if (reader.bits_remaining() == 0) continue;
    for (std::uint32_t w : reader.get_u32_span(width)) {
      if (w >= n || w == v) continue;
      if (!matched[v] && !matched[w]) {
        matching.push_back(Edge{v, static_cast<Vertex>(w)}.normalized());
        matched[v] = matched[w] = true;
      }
    }
  }
  return matching;
}

}  // namespace ds::protocols
