// Shared machinery for budget-constrained one-round protocols.
//
// The lower-bound experiments sweep a per-player budget b and ask how well
// a natural protocol family can do.  The family implemented here is
// "random edge reporting": each vertex spends its budget on as many
// uniformly-chosen incident edges as fit (all of them when the budget
// allows — which is the point: on D_MM a unique vertex cannot know which
// of its ~r incident edges is the one that matters, so nothing smarter is
// available to it, exactly the intuition Lemma 3.5 formalizes).
//
// Encoding: gamma-coded count, then neighbor ids at ceil(log2 n) bits.
// The referee unions all reports into a subgraph G' of G.
#pragma once

#include <cstddef>

#include "graph/graph.h"
#include "model/protocol.h"

namespace ds::protocols {

/// Max number of neighbor ids that fit in `budget_bits` (accounting for
/// the gamma-coded count header).
[[nodiscard]] std::size_t edges_fitting_budget(std::size_t budget_bits,
                                               graph::Vertex n,
                                               std::size_t degree);

/// Report min(degree, capacity) incident edges, sampled uniformly without
/// replacement from the public-coin stream keyed by the vertex id.
void encode_edge_report(const model::VertexView& view,
                        std::size_t budget_bits, util::BitWriter& out);

/// Union of every vertex's reported edges: the referee's knowledge G'.
[[nodiscard]] graph::Graph decode_reported_graph(
    graph::Vertex n, std::span<const util::BitString> sketches);

}  // namespace ds::protocols
