// Budgeted matching in the edge-partitioned model: the [AKLY16]-style
// protocol family.  Each player greedily computes a LOCAL matching over
// its own edges and reports as much of it as fits (reporting a local
// matching dominates reporting raw edges: a player's best strategy for a
// matching objective is matching-structured, and it mirrors [AKLY16]'s
// upper-bound side).  The referee greedily merges the reported matchings.
#pragma once

#include "graph/matching.h"
#include "model/edge_partition.h"

namespace ds::protocols {

class EdgePartitionMatching final
    : public model::EdgePartitionProtocol<graph::Matching> {
 public:
  explicit EdgePartitionMatching(std::size_t budget_bits)
      : budget_bits_(budget_bits) {}

  void encode(const model::EdgePlayerView& view,
              util::BitWriter& out) const override;

  [[nodiscard]] graph::Matching decode(
      graph::Vertex n, std::span<const util::BitString> sketches,
      const model::PublicCoins& coins) const override;

  [[nodiscard]] std::string name() const override {
    return "edge-partition-matching";
  }

 private:
  std::size_t budget_bits_;
};

}  // namespace ds::protocols
