// The footnote-1 protocol from the paper's introduction, implemented
// exactly: find the unique bridge between two dense clusters with
// O(log n)-size sketches.
//
// Player side: vertex w sends (a) O(log n) uniformly sampled incident
// edges, and (b) the 64-bit signed sum
//     s_w = sum_{z in N(w), z > w} (z*n + w)  -  sum_{z in N(w), z < w} (w*n + z)
// (mod 2^64).  Referee side: the sampled edges identify the two-cluster
// partition w.h.p.; summing s_w over one part cancels every intra-part
// edge's contribution and leaves +/-(v*n + u) for the bridge (u, v), u < v
// — which decodes to the bridge directly.
#pragma once

#include "model/protocol.h"

namespace ds::protocols {

class BridgeFinding final : public model::SketchingProtocol<graph::Edge> {
 public:
  /// samples_per_vertex = how many random incident edges each vertex
  /// reports for the partition-identification step.
  explicit BridgeFinding(unsigned samples_per_vertex)
      : samples_(samples_per_vertex) {}

  void encode(const model::VertexView& view,
              util::BitWriter& out) const override;

  /// Returns the recovered bridge, or {0, 0} on failure.
  [[nodiscard]] graph::Edge decode(
      graph::Vertex n, std::span<const util::BitString> sketches,
      const model::PublicCoins& coins) const override;

  [[nodiscard]] std::string name() const override { return "bridge-finding"; }

 private:
  unsigned samples_;
};

}  // namespace ds::protocols
