#include "audit/audit.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "model/coins.h"

namespace ds::audit {
namespace {

// Guard canaries. Values chosen to be far outside any plausible vertex id
// or weight so a sketch that incorporates one is visibly corrupted.
constexpr std::uint32_t kGuardPatternA = 0xA5A5'A5A5u;
constexpr std::uint32_t kGuardPatternB = 0x5A5A'5A5Au;

/// A player's row (and weights, when present) copied into fresh storage
/// with `guard_slots` canary entries on each side.  The interior spans are
/// what the audited view hands to the encoder: an encoder that walks off
/// either end of its span reads canaries instead of a neighbor's row.
struct GuardedRow {
  std::vector<graph::Vertex> row_buf;
  std::vector<std::uint32_t> weight_buf;
  std::size_t guard = 0;
  std::size_t degree = 0;
  bool has_weights = false;

  [[nodiscard]] std::span<const graph::Vertex> row() const noexcept {
    return {row_buf.data() + guard, degree};
  }
  [[nodiscard]] std::span<const std::uint32_t> weights() const noexcept {
    if (!has_weights) return {};
    return {weight_buf.data() + guard, degree};
  }
};

GuardedRow make_guarded_row(std::span<const graph::Vertex> row,
                            std::span<const std::uint32_t> weights,
                            std::size_t guard_slots, std::uint32_t pattern) {
  GuardedRow g;
  g.guard = guard_slots;
  g.degree = row.size();
  g.has_weights = !weights.empty();
  g.row_buf.assign(row.size() + 2 * guard_slots, pattern);
  std::copy(row.begin(), row.end(), g.row_buf.begin() +
                                        static_cast<std::ptrdiff_t>(guard_slots));
  if (g.has_weights) {
    g.weight_buf.assign(weights.size() + 2 * guard_slots, pattern);
    std::copy(weights.begin(), weights.end(),
              g.weight_buf.begin() + static_cast<std::ptrdiff_t>(guard_slots));
  }
  return g;
}

util::BitString encode_on(const EncodeFn& encode, graph::Vertex n,
                          graph::Vertex v, const GuardedRow& guarded,
                          std::uint64_t coin_seed, AuditReport& report) {
  const model::PublicCoins coins(coin_seed);
  const model::VertexView view{n, v, guarded.row(), &coins,
                               guarded.weights()};
  util::BitWriter writer;
  encode(view, writer);
  ++report.encode_calls;
  return util::BitString(writer);
}

std::string player_label(std::string_view proto_name, graph::Vertex v) {
  std::ostringstream out;
  out << "protocol '" << proto_name << "', player " << v;
  return out.str();
}

}  // namespace

std::string_view invariant_name(Invariant inv) noexcept {
  switch (inv) {
    case Invariant::kLocality:
      return "locality";
    case Invariant::kCoinDeterminism:
      return "coin-determinism";
    case Invariant::kBitAccounting:
      return "bit-accounting";
  }
  return "unknown";
}

AuditError::AuditError(Invariant inv, const std::string& detail)
    : std::runtime_error(std::string(invariant_name(inv)) +
                         " violation: " + detail),
      invariant_(inv) {}

void fail(Invariant inv, const std::string& detail) {
#ifdef DISTSKETCH_AUDIT_ABORT
  std::fprintf(stderr, "[ds_audit] %.*s violation: %s\n",
               static_cast<int>(invariant_name(inv).size()),
               invariant_name(inv).data(), detail.c_str());
  std::abort();
#else
  throw AuditError(inv, detail);
#endif
}

bool same_message(const util::BitString& a,
                  const util::BitString& b) noexcept {
  return a.bit_count() == b.bit_count() && a.words() == b.words();
}

void check_message_accounting(const util::BitString& message,
                              std::string_view who, AuditReport& report) {
  const std::size_t bits = message.bit_count();
  const std::size_t expected_words = (bits + 63) / 64;
  if (message.words().size() != expected_words) {
    std::ostringstream out;
    out << who << ": message claims " << bits << " bits but stores "
        << message.words().size() << " words (expected " << expected_words
        << ") — storage does not match the charged length";
    fail(Invariant::kBitAccounting, out.str());
  }
  // Bits beyond bit_count must be zero: BitWriter masks every write, so a
  // nonzero tail means payload was smuggled past the accounting.
  if (bits % 64 != 0 && expected_words > 0) {
    const std::uint64_t tail = message.words().back() >> (bits % 64);
    if (tail != 0) {
      std::ostringstream out;
      out << who << ": " << bits
          << "-bit message carries nonzero payload beyond its charged "
             "length (uncharged tail bits)";
      fail(Invariant::kBitAccounting, out.str());
    }
  }
  // Bit-exact round trip through the reader/writer pair: what was charged
  // is exactly what a referee can read back.
  util::BitReader reader(message);
  util::BitWriter rewritten;
  std::size_t remaining = bits;
  while (remaining > 0) {
    const unsigned chunk = remaining >= 64 ? 64u
                                           : static_cast<unsigned>(remaining);
    rewritten.put_bits(reader.get_bits(chunk), chunk);
    remaining -= chunk;
  }
  const util::BitString round_trip(rewritten);
  if (!same_message(message, round_trip)) {
    std::ostringstream out;
    out << who << ": message does not survive a bit-exact "
        << "BitReader -> BitWriter round trip (" << bits << " bits)";
    fail(Invariant::kBitAccounting, out.str());
  }
  report.bits_verified += bits;
}

util::BitString audited_encode_player(
    const EncodeFn& encode, graph::Vertex n, graph::Vertex v,
    std::span<const graph::Vertex> row,
    std::span<const std::uint32_t> weights, std::uint64_t coin_seed,
    const AuditConfig& cfg, AuditReport& report,
    std::string_view proto_name) {
  const GuardedRow copy_a =
      make_guarded_row(row, weights, cfg.guard_slots, kGuardPatternA);
  const util::BitString pass1 = encode_on(encode, n, v, copy_a, coin_seed,
                                          report);

  if (cfg.check_locality || cfg.check_determinism) {
    const GuardedRow copy_b =
        make_guarded_row(row, weights, cfg.guard_slots, kGuardPatternB);
    const util::BitString pass2 = encode_on(encode, n, v, copy_b, coin_seed,
                                            report);
    const util::BitString pass3 = encode_on(encode, n, v, copy_a, coin_seed,
                                            report);

    // Classification order matters: pass1 and pass3 saw byte-identical
    // inputs, so any difference is nondeterminism; once replays agree, a
    // pass1/pass2 difference can only come from the guard canaries.
    if (cfg.check_determinism && !same_message(pass1, pass3)) {
      std::ostringstream out;
      out << player_label(proto_name, v)
          << ": two encodes with the identical view and identical public "
             "coins produced different messages ("
          << pass1.bit_count() << " vs " << pass3.bit_count()
          << " bits) — sketches must be deterministic functions of "
             "(view, coins)";
      fail(Invariant::kCoinDeterminism, out.str());
    }
    if (cfg.check_locality && !same_message(pass1, pass2)) {
      std::ostringstream out;
      out << player_label(proto_name, v)
          << ": message changed when only the memory OUTSIDE the player's "
             "own adjacency row changed — the sketch read beyond its view "
             "(paper Section 2.1 locality)";
      fail(Invariant::kLocality, out.str());
    }
  }

  if (cfg.check_accounting) {
    check_message_accounting(pass1, player_label(proto_name, v), report);
  }
  ++report.players_audited;
  return pass1;
}

util::BitString encode_player_once(
    const EncodeFn& encode, graph::Vertex n, graph::Vertex v,
    std::span<const graph::Vertex> row,
    std::span<const std::uint32_t> weights, std::uint64_t coin_seed,
    const AuditConfig& cfg, AuditReport& report) {
  const GuardedRow copy =
      make_guarded_row(row, weights, cfg.guard_slots, kGuardPatternA);
  return encode_on(encode, n, v, copy, coin_seed, report);
}

void scrub_encode_player(const EncodeFn& encode, graph::Vertex n,
                         graph::Vertex v, std::uint64_t coin_seed,
                         AuditReport& report) {
  const model::PublicCoins coins(coin_seed);
  const model::VertexView view{n, v, {}, &coins, {}};
  util::BitWriter writer;
  encode(view, writer);
  ++report.encode_calls;
}

}  // namespace ds::audit
