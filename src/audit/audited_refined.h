// Audited execution of the refined-player protocols that the Section 3.2
// accounting and the protocol-search path both charge.
//
// Refined encoders (lowerbound/players.h) are deterministic by
// construction of the proof (Yao), and a refined player's whole input is
// its edge list.  The audit therefore enforces:
//   * coin-determinism — encoding the same player twice, from two distinct
//     RefinedPlayer copies, must produce identical messages (catches
//     hidden randomness and address-keyed behavior);
//   * locality — the edges the encoder's own decoder parses back out of
//     the message must all be edges the player actually sees;
//   * bit-accounting — each message passes the structural bitio checks,
//     and the decoder may not consume more bits than were charged.
#pragma once

#include <vector>

#include "audit/audit.h"
#include "lowerbound/players.h"

namespace ds::audit {

struct AuditedRefinedResult {
  std::vector<util::BitString> messages;  // player order, as run_refined
  std::size_t max_message_bits = 0;
  AuditReport report;
};

/// Run every refined player of `inst` under `encoder` with the checks
/// above; fails through audit::fail on a violation.
[[nodiscard]] AuditedRefinedResult run_refined_audited(
    const lowerbound::DmmInstance& inst,
    const std::vector<lowerbound::RefinedPlayer>& players,
    const lowerbound::RefinedEncoder& encoder, const AuditConfig& config = {});

}  // namespace ds::audit
