// Instrumented drop-in for model/runner.h and model/adaptive.h: runs a
// protocol while enforcing the three model invariants (see audit.h).
//
// The audited runner is the engine's audit-certifying configuration: the
// collect/charge/broadcast/decode loop is the same round engine every
// other path runs (engine/round_engine.h), with
//   * an AuditSource — a LocalSource twin whose per-player encodes go
//     through audited_encode_player (guard-padded row copies, coin-replay
//     and locality probes per player), accumulating the AuditReport in
//     vertex order, and
//   * an AuditInstrumentation policy — structural accounting checks on
//     every referee broadcast, at the same point of the loop the seed
//     runner checked them.
// It therefore produces the same output and the same CommStats as the
// plain runner (an honest protocol cannot distinguish the guarded views),
// plus an AuditReport.  On a violation it fails through audit::fail with
// a diagnostic naming the invariant.
//
// Checks layered on top of the engine run:
//   * order probe    — every player is re-encoded in reverse order after
//                      the forward pass; a message that depends on WHICH
//                      other players encoded before it leaks state across
//                      players (locality);
//   * referee replay — decode runs twice on the same messages with the
//                      same PublicCoins(seed); differing outputs mean the
//                      referee is nondeterministic (coin-determinism);
//   * scrub probe    — every player is re-encoded on a decoy view, then
//                      decode runs again: an output change means encoder
//                      state reached the referee outside the charged
//                      messages, i.e. the true message length was
//                      under-reported (bit-accounting);
//   * accounting     — the engine-charged CommStats are re-derived from
//                      the serialized round messages via a fresh
//                      ChargeSheet and must agree exactly.
//
// Outputs must be equality-comparable; every output type in the tree is.
#pragma once

#include <cstddef>
#include <span>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "audit/audit.h"
#include "engine/charge.h"
#include "engine/instrumentation.h"
#include "engine/round_engine.h"
#include "graph/weighted.h"
#include "model/adaptive.h"
#include "model/coins.h"
#include "model/protocol.h"
#include "model/runner.h"
#include "parallel/thread_pool.h"

namespace ds::audit {

template <typename Output>
struct AuditedRunResult {
  Output output;
  model::CommStats comm;
  AuditReport report;
};

template <typename Output>
struct AuditedAdaptiveResult {
  model::AdaptiveRunResult<Output> result;
  AuditReport report;
};

namespace detail {

/// The audit-certifying SketchSource: every per-player encode goes
/// through audited_encode_player on guard-padded views.  Encodes fan out
/// across the pool; per-chunk AuditReports merge in vertex order, so the
/// verdict and report are identical at any thread count.
///
/// MakeEncode: EncodeFn(unsigned round,
///                      std::span<const util::BitString> broadcasts)
/// NameFn:     std::string(unsigned round)
template <typename RowFn, typename WeightFn, typename MakeEncode,
          typename NameFn>
class AuditSource {
 public:
  AuditSource(graph::Vertex n, RowFn row_of, WeightFn weights_of,
              MakeEncode make_encode, NameFn name_of, std::uint64_t seed,
              const AuditConfig& config, parallel::ThreadPool* pool)
      : n_(n), row_of_(std::move(row_of)),
        weights_of_(std::move(weights_of)),
        make_encode_(std::move(make_encode)), name_of_(std::move(name_of)),
        seed_(seed), config_(&config), pool_(pool) {}

  [[nodiscard]] std::vector<util::BitString> collect(
      unsigned round, std::span<const util::BitString> broadcasts) {
    const EncodeFn encode = make_encode_(round, broadcasts);
    const std::string name = name_of_(round);
    std::vector<util::BitString> sketches(n_);
    report_.merge(parallel::parallel_reduce(
        pool_, std::size_t{0}, std::size_t{n_}, AuditReport{},
        [&](AuditReport& acc, std::size_t i) {
          const auto v = static_cast<graph::Vertex>(i);
          sketches[i] =
              audited_encode_player(encode, n_, v, row_of_(v),
                                    weights_of_(v), seed_, *config_, acc,
                                    name);
        },
        [](AuditReport& into, const AuditReport& from) {
          into.merge(from);
        }));
    return sketches;
  }

  void deliver_broadcast(unsigned, const util::BitString&) const noexcept {}

  [[nodiscard]] const AuditReport& report() const noexcept {
    return report_;
  }

 private:
  graph::Vertex n_;
  RowFn row_of_;
  WeightFn weights_of_;
  MakeEncode make_encode_;
  NameFn name_of_;
  std::uint64_t seed_;
  const AuditConfig* config_;
  parallel::ThreadPool* pool_;
  AuditReport report_;
};

template <typename RowFn, typename WeightFn, typename MakeEncode,
          typename NameFn>
[[nodiscard]] AuditSource<RowFn, WeightFn, MakeEncode, NameFn>
make_audit_source(graph::Vertex n, RowFn row_of, WeightFn weights_of,
                  MakeEncode make_encode, NameFn name_of,
                  std::uint64_t seed, const AuditConfig& config,
                  parallel::ThreadPool* pool) {
  return AuditSource<RowFn, WeightFn, MakeEncode, NameFn>(
      n, std::move(row_of), std::move(weights_of), std::move(make_encode),
      std::move(name_of), seed, config, pool);
}

/// Engine Instrumentation policy that runs the structural accounting
/// checks on every referee broadcast, exactly where the loop produces it.
class AuditInstrumentation {
 public:
  AuditInstrumentation(const std::string& proto_name,
                       const AuditConfig& config,
                       AuditReport& report) noexcept
      : proto_name_(&proto_name), config_(&config), report_(&report) {}

  [[nodiscard]] engine::PlainInstrumentation::NoSpan collect_span()
      const noexcept {
    return {};
  }
  [[nodiscard]] engine::PlainInstrumentation::NoSpan decode_span()
      const noexcept {
    return {};
  }
  void on_sketch_bits(std::size_t) const noexcept {}
  void on_round(unsigned, const model::CommStats&) const noexcept {}
  void on_broadcast(unsigned round, const util::BitString& b) const {
    if (!config_->check_accounting) return;
    check_message_accounting(
        b, "protocol '" + *proto_name_ + "', broadcast after round " +
               std::to_string(round),
        *report_);
  }

 private:
  const std::string* proto_name_;
  const AuditConfig* config_;
  AuditReport* report_;
};

}  // namespace detail

class AuditedRunner {
 public:
  explicit AuditedRunner(std::uint64_t coin_seed, AuditConfig config = {})
      : seed_(coin_seed), config_(config) {}

  [[nodiscard]] std::uint64_t coin_seed() const noexcept { return seed_; }
  [[nodiscard]] const AuditConfig& config() const noexcept { return config_; }

  /// Audited equivalent of model::run_protocol on an unweighted graph.
  /// The forward encode pass and the scrub probe fan out across the pool
  /// (null = global); the order probe stays sequential — it exists to
  /// detect cross-player encode-order dependence, which only a fixed
  /// replay order can witness.
  template <typename Output>
  [[nodiscard]] AuditedRunResult<Output> run(
      const graph::Graph& g,
      const model::SketchingProtocol<Output>& protocol,
      parallel::ThreadPool* pool = nullptr) const {
    return run_impl<Output>(
        g.num_vertices(),
        [&g](graph::Vertex v) { return g.neighbors(v); },
        [](graph::Vertex) { return std::span<const std::uint32_t>{}; },
        protocol, pool);
  }

  /// Audited equivalent of model::run_protocol on a weighted graph.
  template <typename Output>
  [[nodiscard]] AuditedRunResult<Output> run(
      const graph::WeightedGraph& g,
      const model::SketchingProtocol<Output>& protocol,
      parallel::ThreadPool* pool = nullptr) const {
    return run_impl<Output>(
        g.num_vertices(),
        [&g](graph::Vertex v) { return g.topology().neighbors(v); },
        [&g](graph::Vertex v) { return g.neighbor_weights(v); },
        protocol, pool);
  }

  /// Audited equivalent of model::run_adaptive (the engine's R > 1 case).
  /// The per-round accounting identity — per-player totals equal the sum
  /// of that player's serialized round messages — is re-derived from the
  /// actual BitStrings and cross-checked.
  template <typename Output>
  [[nodiscard]] AuditedAdaptiveResult<Output> run_adaptive(
      const graph::Graph& g,
      const model::AdaptiveProtocol<Output>& protocol,
      parallel::ThreadPool* pool = nullptr) const {
    static_assert(std::equality_comparable<Output>);
    const graph::Vertex n = g.num_vertices();
    const std::string proto_name = protocol.name();
    AuditReport report;

    auto source = detail::make_audit_source(
        n, [&g](graph::Vertex v) { return g.neighbors(v); },
        [](graph::Vertex) { return std::span<const std::uint32_t>{}; },
        [&protocol](unsigned round,
                    std::span<const util::BitString> broadcasts) {
          return EncodeFn([&protocol, round, broadcasts](
                              const model::VertexView& view,
                              util::BitWriter& out) {
            protocol.encode_round(view, round, broadcasts, out);
          });
        },
        [&proto_name](unsigned round) {
          return proto_name + " (round " + std::to_string(round) + ")";
        },
        seed_, config_, pool);
    const model::PublicCoins coins(seed_);
    const engine::AdaptiveReferee<Output> referee(protocol, coins);
    detail::AuditInstrumentation instr(proto_name, config_, report);
    engine::EngineResult<Output> run =
        engine::run_rounds(n, referee, source, instr);
    report.merge(source.report());

    if (config_.check_accounting) {
      cross_check_adaptive_accounting(run.comm, run.all_rounds, n,
                                      proto_name);
    }
    if (config_.check_determinism) {
      const Output replay =
          protocol.decode(n, run.all_rounds, run.broadcasts, coins);
      if (!(replay == run.output)) {
        fail(Invariant::kCoinDeterminism,
             "protocol '" + proto_name +
                 "': referee produced different outputs from the same "
                 "round messages and the same public coins");
      }
    }
    return {{std::move(run.output), run.comm, std::move(run.by_round),
             run.broadcast_bits},
            report};
  }

 private:
  template <typename Output, typename RowFn, typename WeightFn>
  [[nodiscard]] AuditedRunResult<Output> run_impl(
      graph::Vertex n, const RowFn& row_of, const WeightFn& weights_of,
      const model::SketchingProtocol<Output>& protocol,
      parallel::ThreadPool* pool) const {
    static_assert(std::equality_comparable<Output>);
    const EncodeFn encode = [&protocol](const model::VertexView& view,
                                        util::BitWriter& out) {
      protocol.encode(view, out);
    };
    const std::string proto_name = protocol.name();
    AuditReport report;

    auto source = detail::make_audit_source(
        n, row_of, weights_of,
        [&encode](unsigned, std::span<const util::BitString>) {
          return encode;
        },
        [&proto_name](unsigned) { return proto_name; }, seed_, config_,
        pool);
    const model::PublicCoins coins(seed_);
    const engine::OneRoundReferee<Output> referee(protocol, coins);
    detail::AuditInstrumentation instr(proto_name, config_, report);
    engine::EngineResult<Output> run =
        engine::run_rounds(n, referee, source, instr);
    report.merge(source.report());
    const std::vector<util::BitString>& messages = run.all_rounds[0];

    if (config_.check_locality) {
      // Order probe: replaying players back-to-front must reproduce the
      // forward-pass messages bit for bit.
      for (graph::Vertex v = n; v-- > 0;) {
        const util::BitString replay = encode_player_once(
            encode, n, v, row_of(v), weights_of(v), seed_, config_, report);
        if (!same_message(replay, messages[v])) {
          std::ostringstream out;
          out << "protocol '" << proto_name << "', player " << v
              << ": message depends on the order in which OTHER players "
                 "were encoded — state leaks across players (paper "
                 "Section 2.1 locality)";
          fail(Invariant::kLocality, out.str());
        }
      }
    }
    if (config_.check_determinism) {
      const Output replay = protocol.decode(n, messages, coins);
      if (!(replay == run.output)) {
        fail(Invariant::kCoinDeterminism,
             "protocol '" + proto_name +
                 "': referee produced different outputs from the same "
                 "messages and the same public coins");
      }
    }
    if (config_.check_accounting) {
      // Scrub probe: poison any encoder-side state, then decode again.
      // Decoy encodes are independent per player, so they fan out too.
      report.merge(parallel::parallel_reduce(
          pool, std::size_t{0}, std::size_t{n}, AuditReport{},
          [&](AuditReport& acc, std::size_t i) {
            scrub_encode_player(encode, n, static_cast<graph::Vertex>(i),
                                seed_, acc);
          },
          [](AuditReport& into, const AuditReport& from) {
            into.merge(from);
          }));
      const Output after_scrub = protocol.decode(n, messages, coins);
      if (!(after_scrub == run.output)) {
        fail(Invariant::kBitAccounting,
             "protocol '" + proto_name +
                 "': referee output changed after the encoders were re-run "
                 "on decoy views — information reached the referee outside "
                 "the serialized messages, so the charged message length "
                 "under-reports the true communication");
      }
    }
    return {std::move(run.output), run.comm, report};
  }

  /// Re-derive the run-level CommStats from the serialized round messages
  /// through a fresh ChargeSheet and compare against what the engine
  /// charged during the run: any drift between the bits charged at encode
  /// time and the bits actually serialized is a kBitAccounting violation.
  static void cross_check_adaptive_accounting(
      const model::CommStats& reported,
      const std::vector<std::vector<util::BitString>>& all_rounds,
      graph::Vertex n, const std::string& name) {
    engine::ChargeSheet sheet(n);
    engine::PlainInstrumentation plain;
    for (const std::vector<util::BitString>& round : all_rounds) {
      (void)sheet.charge_round(round, plain);
    }
    const model::CommStats recomputed = sheet.player_totals();
    if (recomputed.max_bits != reported.max_bits ||
        recomputed.total_bits != reported.total_bits ||
        recomputed.num_players != reported.num_players) {
      std::ostringstream out;
      out << "protocol '" << name
          << "': adaptive CommStats disagree with the serialized round "
             "messages (reported max/total "
          << reported.max_bits << "/" << reported.total_bits
          << ", serialized " << recomputed.max_bits << "/"
          << recomputed.total_bits << ")";
      fail(Invariant::kBitAccounting, out.str());
    }
  }

  std::uint64_t seed_;
  AuditConfig config_;
};

}  // namespace ds::audit
