// Instrumented drop-in for model/runner.h and model/adaptive.h: runs a
// protocol while enforcing the three model invariants (see audit.h).
//
// The audited runner is a superset of the plain runner: it produces the
// same output and the same CommStats (messages are encoded from
// guard-padded copies of each row, which an honest protocol cannot
// distinguish from the real thing), plus an AuditReport.  On a violation
// it fails through audit::fail with a diagnostic naming the invariant.
//
// Checks layered on top of the per-player core (audit.h):
//   * order probe    — every player is re-encoded in reverse order after
//                      the forward pass; a message that depends on WHICH
//                      other players encoded before it leaks state across
//                      players (locality);
//   * referee replay — decode runs twice on the same messages with fresh
//                      PublicCoins(seed); differing outputs mean the
//                      referee is nondeterministic (coin-determinism);
//   * scrub probe    — every player is re-encoded on a decoy view, then
//                      decode runs again: an output change means encoder
//                      state reached the referee outside the charged
//                      messages, i.e. the true message length was
//                      under-reported (bit-accounting).
//
// Outputs must be equality-comparable; every output type in the tree is.
#pragma once

#include <sstream>
#include <utility>
#include <vector>

#include "audit/audit.h"
#include "graph/weighted.h"
#include "model/adaptive.h"
#include "model/coins.h"
#include "model/protocol.h"
#include "model/runner.h"
#include "parallel/thread_pool.h"

namespace ds::audit {

template <typename Output>
struct AuditedRunResult {
  Output output;
  model::CommStats comm;
  AuditReport report;
};

template <typename Output>
struct AuditedAdaptiveResult {
  model::AdaptiveRunResult<Output> result;
  AuditReport report;
};

class AuditedRunner {
 public:
  explicit AuditedRunner(std::uint64_t coin_seed, AuditConfig config = {})
      : seed_(coin_seed), config_(config) {}

  [[nodiscard]] std::uint64_t coin_seed() const noexcept { return seed_; }
  [[nodiscard]] const AuditConfig& config() const noexcept { return config_; }

  /// Audited equivalent of model::run_protocol on an unweighted graph.
  /// The forward encode pass and the scrub probe fan out across the pool
  /// (null = global); each player is audited independently and the
  /// per-chunk CommStats / AuditReports merge in vertex order, so the
  /// verdict, comm, and report are identical at any thread count.  The
  /// order probe stays sequential — it exists to detect cross-player
  /// encode-order dependence, which only a fixed replay order can witness.
  template <typename Output>
  [[nodiscard]] AuditedRunResult<Output> run(
      const graph::Graph& g,
      const model::SketchingProtocol<Output>& protocol,
      parallel::ThreadPool* pool = nullptr) const {
    return run_impl<Output>(
        g.num_vertices(),
        [&g](graph::Vertex v) { return g.neighbors(v); },
        [](graph::Vertex) { return std::span<const std::uint32_t>{}; },
        protocol, pool);
  }

  /// Audited equivalent of model::run_protocol on a weighted graph.
  template <typename Output>
  [[nodiscard]] AuditedRunResult<Output> run(
      const graph::WeightedGraph& g,
      const model::SketchingProtocol<Output>& protocol,
      parallel::ThreadPool* pool = nullptr) const {
    return run_impl<Output>(
        g.num_vertices(),
        [&g](graph::Vertex v) { return g.topology().neighbors(v); },
        [&g](graph::Vertex v) { return g.neighbor_weights(v); },
        protocol, pool);
  }

  /// Audited equivalent of model::run_adaptive (multi-round path).  The
  /// per-round accounting identity — per-player totals equal the sum of
  /// that player's serialized round messages — is re-derived from the
  /// actual BitStrings and cross-checked.
  template <typename Output>
  [[nodiscard]] AuditedAdaptiveResult<Output> run_adaptive(
      const graph::Graph& g,
      const model::AdaptiveProtocol<Output>& protocol,
      parallel::ThreadPool* pool = nullptr) const {
    static_assert(std::equality_comparable<Output>);
    const graph::Vertex n = g.num_vertices();
    const unsigned rounds = protocol.num_rounds();
    AuditReport report;
    model::AdaptiveRunResult<Output> result{};
    std::vector<std::vector<util::BitString>> all_rounds;
    std::vector<util::BitString> broadcasts;
    std::vector<std::size_t> player_bits(n, 0);

    for (unsigned round = 0; round < rounds; ++round) {
      const EncodeFn encode = [&protocol, round, &broadcasts](
                                  const model::VertexView& view,
                                  util::BitWriter& out) {
        protocol.encode_round(view, round, broadcasts, out);
      };
      const std::string round_name =
          protocol.name() + " (round " + std::to_string(round) + ")";
      std::vector<util::BitString> sketches(n);
      const AuditAccum round_accum = parallel::parallel_reduce(
          pool, std::size_t{0}, std::size_t{n}, AuditAccum{},
          [&](AuditAccum& acc, std::size_t i) {
            const auto v = static_cast<graph::Vertex>(i);
            util::BitString msg = audited_encode_player(
                encode, n, v, g.neighbors(v), {}, seed_, config_,
                acc.report, round_name);
            acc.comm.record(msg.bit_count());
            player_bits[i] += msg.bit_count();
            sketches[i] = std::move(msg);
          },
          [](AuditAccum& into, const AuditAccum& from) { into.merge(from); });
      report.merge(round_accum.report);
      result.by_round.push_back(round_accum.comm);
      all_rounds.push_back(std::move(sketches));
      if (round + 1 < rounds) {
        const model::PublicCoins coins(seed_);
        util::BitString b =
            protocol.make_broadcast(round, n, all_rounds, coins);
        if (config_.check_accounting) {
          check_message_accounting(
              b, "protocol '" + protocol.name() + "', broadcast after round " +
                     std::to_string(round),
              report);
        }
        result.broadcast_bits += b.bit_count();
        broadcasts.push_back(std::move(b));
      }
    }

    for (std::size_t bits : player_bits) result.comm.record(bits);
    if (config_.check_accounting) {
      cross_check_adaptive_accounting(result, all_rounds, n, protocol.name());
    }

    {
      const model::PublicCoins coins(seed_);
      result.output = protocol.decode(n, all_rounds, broadcasts, coins);
    }
    if (config_.check_determinism) {
      const model::PublicCoins coins(seed_);
      const Output replay = protocol.decode(n, all_rounds, broadcasts, coins);
      if (!(replay == result.output)) {
        fail(Invariant::kCoinDeterminism,
             "protocol '" + protocol.name() +
                 "': referee produced different outputs from the same "
                 "round messages and the same public coins");
      }
    }
    return {std::move(result), report};
  }

 private:
  // Per-chunk accumulator for parallel audited passes; merged in vertex
  // order, which reproduces the serial record()/merge() sequence exactly.
  struct AuditAccum {
    model::CommStats comm;
    AuditReport report;
    void merge(const AuditAccum& other) noexcept {
      comm.merge(other.comm);
      report.merge(other.report);
    }
  };

  template <typename Output, typename RowFn, typename WeightFn>
  [[nodiscard]] AuditedRunResult<Output> run_impl(
      graph::Vertex n, const RowFn& row_of, const WeightFn& weights_of,
      const model::SketchingProtocol<Output>& protocol,
      parallel::ThreadPool* pool) const {
    static_assert(std::equality_comparable<Output>);
    const EncodeFn encode = [&protocol](const model::VertexView& view,
                                        util::BitWriter& out) {
      protocol.encode(view, out);
    };
    const std::string proto_name = protocol.name();

    std::vector<util::BitString> messages(n);
    AuditAccum forward = parallel::parallel_reduce(
        pool, std::size_t{0}, std::size_t{n}, AuditAccum{},
        [&](AuditAccum& acc, std::size_t i) {
          const auto v = static_cast<graph::Vertex>(i);
          util::BitString msg =
              audited_encode_player(encode, n, v, row_of(v), weights_of(v),
                                    seed_, config_, acc.report, proto_name);
          acc.comm.record(msg.bit_count());
          messages[i] = std::move(msg);
        },
        [](AuditAccum& into, const AuditAccum& from) { into.merge(from); });
    AuditReport report = forward.report;
    model::CommStats comm = forward.comm;

    if (config_.check_locality) {
      // Order probe: replaying players back-to-front must reproduce the
      // forward-pass messages bit for bit.
      for (graph::Vertex v = n; v-- > 0;) {
        const util::BitString replay = encode_player_once(
            encode, n, v, row_of(v), weights_of(v), seed_, config_, report);
        if (!same_message(replay, messages[v])) {
          std::ostringstream out;
          out << "protocol '" << protocol.name() << "', player " << v
              << ": message depends on the order in which OTHER players "
                 "were encoded — state leaks across players (paper "
                 "Section 2.1 locality)";
          fail(Invariant::kLocality, out.str());
        }
      }
    }

    Output output = [&] {
      const model::PublicCoins coins(seed_);
      return protocol.decode(n, messages, coins);
    }();
    if (config_.check_determinism) {
      const model::PublicCoins coins(seed_);
      const Output replay = protocol.decode(n, messages, coins);
      if (!(replay == output)) {
        fail(Invariant::kCoinDeterminism,
             "protocol '" + protocol.name() +
                 "': referee produced different outputs from the same "
                 "messages and the same public coins");
      }
    }
    if (config_.check_accounting) {
      // Scrub probe: poison any encoder-side state, then decode again.
      // Decoy encodes are independent per player, so they fan out too.
      report.merge(parallel::parallel_reduce(
          pool, std::size_t{0}, std::size_t{n}, AuditReport{},
          [&](AuditReport& acc, std::size_t i) {
            scrub_encode_player(encode, n, static_cast<graph::Vertex>(i),
                                seed_, acc);
          },
          [](AuditReport& into, const AuditReport& from) {
            into.merge(from);
          }));
      const model::PublicCoins coins(seed_);
      const Output after_scrub = protocol.decode(n, messages, coins);
      if (!(after_scrub == output)) {
        fail(Invariant::kBitAccounting,
             "protocol '" + protocol.name() +
                 "': referee output changed after the encoders were re-run "
                 "on decoy views — information reached the referee outside "
                 "the serialized messages, so the charged message length "
                 "under-reports the true communication");
      }
    }
    return {std::move(output), comm, report};
  }

  template <typename Output>
  static void cross_check_adaptive_accounting(
      const model::AdaptiveRunResult<Output>& result,
      const std::vector<std::vector<util::BitString>>& all_rounds,
      graph::Vertex n, const std::string& name) {
    model::CommStats recomputed;
    for (graph::Vertex v = 0; v < n; ++v) {
      std::size_t bits = 0;
      for (const auto& round : all_rounds) bits += round[v].bit_count();
      recomputed.record(bits);
    }
    if (recomputed.max_bits != result.comm.max_bits ||
        recomputed.total_bits != result.comm.total_bits ||
        recomputed.num_players != result.comm.num_players) {
      std::ostringstream out;
      out << "protocol '" << name
          << "': adaptive CommStats disagree with the serialized round "
             "messages (reported max/total "
          << result.comm.max_bits << "/" << result.comm.total_bits
          << ", serialized " << recomputed.max_bits << "/"
          << recomputed.total_bits << ")";
      fail(Invariant::kBitAccounting, out.str());
    }
  }

  std::uint64_t seed_;
  AuditConfig config_;
};

}  // namespace ds::audit
