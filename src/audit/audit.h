// Model-conformance auditing for the distributed sketching model.
//
// The lower bounds of the paper are statements about protocols that obey
// three structural rules (Section 2.1), and every experiment downstream is
// only as trustworthy as the implementation's adherence to them:
//
//   * locality          — a player's sketch is a function of its own view
//                         (n, id, its adjacency row, the public coins) and
//                         nothing else: not other rows, not other players'
//                         encode invocations, not hidden globals;
//   * coin-determinism  — re-running a player with the same view and the
//                         same public coins reproduces the identical
//                         message bit-for-bit (all protocol randomness
//                         flows through PublicCoins);
//   * bit-accounting    — the bits charged by the harness equal the bits
//                         actually serialized through util/bitio, and the
//                         referee's output is a function of those serialized
//                         bits plus the coins alone (no covert channel from
//                         encoder to referee through protocol-object state).
//
// This header defines the invariant vocabulary, the failure path
// (AuditError or abort, per DISTSKETCH_AUDIT_ABORT), and the non-template
// core checks; audited_runner.h builds the instrumented runners on top.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "model/protocol.h"
#include "util/bitio.h"

namespace ds::audit {

enum class Invariant : std::uint8_t {
  kLocality,
  kCoinDeterminism,
  kBitAccounting,
};

[[nodiscard]] std::string_view invariant_name(Invariant inv) noexcept;

/// Raised (or reported just before abort, with DISTSKETCH_AUDIT_ABORT) when
/// a protocol violates a model invariant under audit.
class AuditError : public std::runtime_error {
 public:
  AuditError(Invariant inv, const std::string& detail);
  [[nodiscard]] Invariant invariant() const noexcept { return invariant_; }

 private:
  Invariant invariant_;
};

/// Report the violation and fail: throws AuditError, or prints the
/// diagnostic and aborts when built with -DDISTSKETCH_AUDIT_ABORT=ON.
[[noreturn]] void fail(Invariant inv, const std::string& detail);

struct AuditConfig {
  /// Canary slots placed before and after each player's row copy; a sketch
  /// that depends on them read outside its own adjacency row.
  std::size_t guard_slots = 8;
  bool check_locality = true;
  bool check_determinism = true;
  bool check_accounting = true;
};

struct AuditReport {
  std::size_t players_audited = 0;
  std::size_t encode_calls = 0;   // including replays and scrub passes
  std::size_t bits_verified = 0;  // bits round-tripped through util/bitio
  void merge(const AuditReport& other) noexcept {
    players_audited += other.players_audited;
    encode_calls += other.encode_calls;
    bits_verified += other.bits_verified;
  }
};

/// Bit-for-bit message equality (length and payload).
[[nodiscard]] bool same_message(const util::BitString& a,
                                const util::BitString& b) noexcept;

/// Structural bit-accounting checks on one serialized message: the word
/// storage must match the reported bit length exactly (no hidden payload
/// beyond bit_count) and the message must survive a bit-exact round trip
/// through BitReader -> BitWriter.  Fails with kBitAccounting.
void check_message_accounting(const util::BitString& message,
                              std::string_view who, AuditReport& report);

/// Type-erased player algorithm, so the per-player audit core is compiled
/// once rather than per protocol output type.
using EncodeFn =
    std::function<void(const model::VertexView&, util::BitWriter&)>;

/// Audit one player and return its (verified) message.
///
/// Encodes the player three times on freshly guard-padded copies of its
/// row — guard pattern A, guard pattern B, then pattern A again — with a
/// fresh PublicCoins(coin_seed) each time:
///   pass1 != pass3  (identical inputs)      -> kCoinDeterminism;
///   pass1 != pass2  (only guards changed)   -> kLocality;
/// then runs the structural accounting checks on the surviving message.
[[nodiscard]] util::BitString audited_encode_player(
    const EncodeFn& encode, graph::Vertex n, graph::Vertex v,
    std::span<const graph::Vertex> row,
    std::span<const std::uint32_t> weights, std::uint64_t coin_seed,
    const AuditConfig& cfg, AuditReport& report, std::string_view proto_name);

/// One additional guarded encode of the player (pattern A, fresh coins),
/// for order-permutation probes; performs no checks itself.
[[nodiscard]] util::BitString encode_player_once(
    const EncodeFn& encode, graph::Vertex n, graph::Vertex v,
    std::span<const graph::Vertex> row,
    std::span<const std::uint32_t> weights, std::uint64_t coin_seed,
    const AuditConfig& cfg, AuditReport& report);

/// Encode the player on a decoy (degree-zero) view and discard the output.
/// Honest referees never notice; a referee whose output changes afterwards
/// was reading encoder-side state instead of the charged messages.
void scrub_encode_player(const EncodeFn& encode, graph::Vertex n,
                         graph::Vertex v, std::uint64_t coin_seed,
                         AuditReport& report);

}  // namespace ds::audit
