#include "audit/audited_refined.h"

#include <algorithm>
#include <sstream>

namespace ds::audit {
namespace {

std::string refined_label(const lowerbound::RefinedEncoder& encoder,
                          std::size_t index,
                          const lowerbound::RefinedPlayer& player) {
  std::ostringstream out;
  out << "encoder '" << encoder.name() << "', refined player " << index
      << (player.is_public ? " (public)" : " (unique)");
  return out.str();
}

}  // namespace

AuditedRefinedResult run_refined_audited(
    const lowerbound::DmmInstance& inst,
    const std::vector<lowerbound::RefinedPlayer>& players,
    const lowerbound::RefinedEncoder& encoder, const AuditConfig& config) {
  AuditedRefinedResult result;
  result.messages.reserve(players.size());

  for (std::size_t idx = 0; idx < players.size(); ++idx) {
    const lowerbound::RefinedPlayer& player = players[idx];
    const std::string who = refined_label(encoder, idx, player);

    util::BitWriter writer;
    encoder.encode(inst.params, player, writer);
    ++result.report.encode_calls;
    util::BitString message(writer);

    if (config.check_determinism) {
      // Replay from a distinct copy of the player: identical input, fresh
      // addresses.  The proof fixes the protocol's randomness, so any
      // difference is a conformance bug.
      const lowerbound::RefinedPlayer copy = player;
      util::BitWriter replay_writer;
      encoder.encode(inst.params, copy, replay_writer);
      ++result.report.encode_calls;
      const util::BitString replay(replay_writer);
      if (!same_message(message, replay)) {
        fail(Invariant::kCoinDeterminism,
             who + ": two encodes of the identical player produced "
                   "different messages — refined encoders must be "
                   "deterministic (Yao-fixed randomness)");
      }
    }

    if (config.check_accounting) {
      check_message_accounting(message, who, result.report);
    }

    if (config.check_locality) {
      // Whatever edge list the decoder recovers must be contained in the
      // player's view; reporting an unseen edge means the encoder consulted
      // state beyond its input.
      util::BitReader reader(message);
      const std::vector<graph::Edge> reported =
          encoder.decode(inst.params, reader);
      if (config.check_accounting && reader.position() > message.bit_count()) {
        fail(Invariant::kBitAccounting,
             who + ": decoder consumed more bits than the message was "
                   "charged for");
      }
      for (const graph::Edge& e : reported) {
        const graph::Edge norm = e.normalized();
        const bool visible = std::any_of(
            player.edges.begin(), player.edges.end(),
            [&norm](const graph::Edge& own) {
              return own.normalized() == norm;
            });
        if (!visible) {
          std::ostringstream out;
          out << who << ": reported edge (" << e.u << ", " << e.v
              << ") is not in the player's view — the encoder read an edge "
                 "it does not hold (locality)";
          fail(Invariant::kLocality, out.str());
        }
      }
    }

    result.max_message_bits =
        std::max(result.max_message_bits, message.bit_count());
    ++result.report.players_audited;
    result.messages.push_back(std::move(message));
  }
  return result;
}

}  // namespace ds::audit
