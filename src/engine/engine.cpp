#include "engine/arena.h"
#include "engine/charge.h"
#include "engine/local_source.h"
#include "engine/round_engine.h"

// run_rounds and the seams are templates defined in the headers; the
// metrics owners live in instrumentation.cpp.  This translation unit
// anchors the library and keeps the headers self-contained under -Wall.
namespace ds::engine {}
