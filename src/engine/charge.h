// The engine's bit-accounting ledger: the ONE place sketch bits enter
// CommStats.
//
// The paper's cost measure is the worst-case per-player message length in
// bits (Section 2.1); for multi-round runs a player's cost is the SUM of
// its round messages, and the maximum is taken over those cumulative
// totals — not per round.  Before the engine existed this charging logic
// lived in four places (model/runner.h, model/adaptive.h,
// audit/audited_runner.h, service/referee_service.h) that could drift.
// Now `ChargeSheet::charge_round` is the only function that calls
// CommStats::record for sketch bits; every execution path goes through it
// (the engine-equivalence suite pins the resulting numbers to seed-era
// golden values).
//
// Charging is a serial pass in vertex order over each completed round.
// CommStats::record and ::merge are commutative-and-associative folds
// (max / sum / count), so this produces bit-identical stats to the
// seed-era per-chunk parallel reduction at any thread count.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "model/protocol.h"
#include "util/bitio.h"

namespace ds::engine {

class ChargeSheet {
 public:
  explicit ChargeSheet(std::size_t num_players)
      : player_bits_(num_players, 0) {}

  /// Charge one completed round of sketches (sketches[v] is player v's
  /// message) and return that round's CommStats.  `instr` sees every
  /// per-sketch bit count (Instrumentation::on_sketch_bits).
  template <typename Instrumentation>
  [[nodiscard]] model::CommStats charge_round(
      std::span<const util::BitString> sketches, Instrumentation& instr) {
    model::CommStats round;
    for (std::size_t v = 0; v < sketches.size(); ++v) {
      const std::size_t bits = sketches[v].bit_count();
      charge(round, bits);
      if (v < player_bits_.size()) player_bits_[v] += bits;
      instr.on_sketch_bits(bits);
    }
    return round;
  }

  /// Per-player cumulative totals across every charged round, in vertex
  /// order — the run-level CommStats the model reports.
  [[nodiscard]] model::CommStats player_totals() const {
    model::CommStats totals;
    for (const std::size_t bits : player_bits_) charge(totals, bits);
    return totals;
  }

 private:
  // The single CommStats::record call site for sketch bits in the entire
  // tree (acceptance criterion of the engine refactor).  Do not add more.
  static void charge(model::CommStats& into, std::size_t bits) noexcept {
    into.record(bits);
  }

  std::vector<std::size_t> player_bits_;
};

}  // namespace ds::engine
