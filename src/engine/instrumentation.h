// The engine's Instrumentation seam.
//
// An Instrumentation policy is a small value the engine calls at fixed
// points of the collect/charge/broadcast/decode loop:
//
//   collect_span()            — entered around one round's sketch
//                               collection (RAII; return a no-op token to
//                               opt out);
//   decode_span()             — entered around the referee's decode;
//   on_sketch_bits(bits)      — once per charged sketch, from the single
//                               ChargeSheet site;
//   on_round(round, comm)     — once per completed round, with that
//                               round's CommStats;
//   on_broadcast(round, b)    — once per referee broadcast (adaptive runs
//                               only, i.e. never for R = 1).
//
// Policies shipped here:
//   * PlainInstrumentation — no-ops; the zero-overhead default.
//   * ObsInstrumentation   — the model-runner policy.  This file's .cpp is
//     the ONE owner of the model.* obs series registration (the seed tree
//     registered model.encode.* from both runner.h and adaptive.h — the
//     duplication this refactor removes).
//
// The audit-certifying policy lives in audit/audited_runner.h and the
// service policy in service/referee_service.h: the seam is the contract,
// not this file's inventory.
#pragma once

#include <cstddef>

#include "model/protocol.h"
#include "obs/obs.h"
#include "util/bitio.h"

namespace ds::engine {

namespace metrics {
// Accessors for the model-layer series (docs/OBSERVABILITY.md).  Defined
// in instrumentation.cpp — the single registration owner.  The
// model.encode.sketch_bits histogram mirrors CommStats exactly: count ==
// players encoded, sum == total_bits, max == max_bits (cross-checked by
// tests/audit/obs_audit_test.cpp for one-round AND adaptive runs, which
// now share this code path).
[[nodiscard]] obs::Counter& encode_sketches();
[[nodiscard]] obs::Histogram& encode_sketch_bits();
[[nodiscard]] obs::Histogram& collect_us();
[[nodiscard]] obs::Histogram& decode_us();
[[nodiscard]] obs::Counter& adaptive_rounds();
[[nodiscard]] obs::Histogram& adaptive_broadcast_bits();
}  // namespace metrics

/// No-op policy: the engine core with zero instrumentation.
struct PlainInstrumentation {
  struct NoSpan {};
  [[nodiscard]] NoSpan collect_span() const noexcept { return {}; }
  [[nodiscard]] NoSpan decode_span() const noexcept { return {}; }
  void on_sketch_bits(std::size_t) const noexcept {}
  void on_round(unsigned, const model::CommStats&) const noexcept {}
  void on_broadcast(unsigned, const util::BitString&) const noexcept {}
};

/// The model-runner policy: encode counters, collect/decode spans, and —
/// for adaptive runs — the round counter and broadcast-size histogram.
/// All updates are relaxed atomics outside the deterministic reduction
/// path, so results stay bit-identical with metrics on or off.
class ObsInstrumentation {
 public:
  explicit ObsInstrumentation(bool adaptive) noexcept
      : adaptive_(adaptive) {}

  [[nodiscard]] obs::ScopedSpan collect_span() const {
    return obs::ScopedSpan("model.collect", &metrics::collect_us());
  }
  [[nodiscard]] obs::ScopedSpan decode_span() const {
    return obs::ScopedSpan("model.decode", &metrics::decode_us());
  }
  void on_sketch_bits(std::size_t bits) const {
    metrics::encode_sketches().increment();
    metrics::encode_sketch_bits().record(bits);
  }
  void on_round(unsigned, const model::CommStats&) const {
    if (adaptive_) metrics::adaptive_rounds().increment();
  }
  void on_broadcast(unsigned, const util::BitString& broadcast) const {
    if (adaptive_) {
      metrics::adaptive_broadcast_bits().record(broadcast.bit_count());
    }
  }

 private:
  bool adaptive_;
};

}  // namespace ds::engine
