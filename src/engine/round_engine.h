// The single round engine: one-round protocols are the R = 1 case of the
// adaptive pattern.
//
// Every execution path in the tree — model::run_protocol,
// model::run_adaptive, audit::AuditedRunner, service::RefereeService —
// is a thin adapter over the loop below:
//
//   for round r in [0, R):
//     sketches   <- source.collect(r, broadcasts)       (the SketchSource seam)
//     by_round_r <- sheet.charge_round(sketches)        (the ONE CommStats site)
//     if r + 1 < R:
//       b <- referee.make_broadcast(r, all rounds so far)
//       source.deliver_broadcast(r, b)                  (wire: push a frame;
//                                                        local: no-op)
//   comm   <- sheet.player_totals()                     (per-player sums)
//   output <- referee.decode(all rounds, broadcasts)
//
// The two seams (docs/ENGINE.md):
//   * SketchSource     — where sketches come from: in-process encode via
//     the thread pool (engine/local_source.h) or frames over wire links
//     (service/wire_source.h).
//   * Instrumentation  — what is observed: nothing (Plain), obs metrics
//     (Obs), audit certification (audit/audited_runner.h), service spans
//     (service/referee_service.h).  See engine/instrumentation.h.
//
// The result keeps the raw per-round sketches and broadcasts so adapters
// can run post-passes (the audit's order/scrub/replay probes, arena
// reclamation) without re-collecting.
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "engine/charge.h"
#include "engine/instrumentation.h"
#include "graph/graph.h"
#include "model/protocol.h"
#include "util/bitio.h"

namespace ds::model {
template <typename Output>
class AdaptiveProtocol;  // model/adaptive.h; methods used only in templates
}  // namespace ds::model

namespace ds::engine {

template <typename Output>
struct EngineResult {
  Output output{};
  model::CommStats comm;                   // per-player totals, all rounds
  std::vector<model::CommStats> by_round;  // per-round breakdown
  std::size_t broadcast_bits = 0;          // total referee downlink
  // The raw transcript, for adapter post-passes.
  std::vector<std::vector<util::BitString>> all_rounds;
  std::vector<util::BitString> broadcasts;
};

/// A Referee drives the decode side of the loop:
///   unsigned num_rounds() const;
///   util::BitString make_broadcast(unsigned round, graph::Vertex n,
///       std::span<const std::vector<util::BitString>> rounds_so_far) const;
///   Output decode(graph::Vertex n,
///       std::span<const std::vector<util::BitString>> all_rounds,
///       std::span<const util::BitString> broadcasts) const;
template <typename Referee, typename Source, typename Instrumentation>
[[nodiscard]] auto run_rounds(graph::Vertex n, const Referee& referee,
                              Source& source, Instrumentation& instr) {
  using Output = decltype(referee.decode(
      n, std::span<const std::vector<util::BitString>>{},
      std::span<const util::BitString>{}));
  const unsigned rounds = referee.num_rounds();

  EngineResult<Output> result;
  ChargeSheet sheet(n);
  for (unsigned round = 0; round < rounds; ++round) {
    std::vector<util::BitString> sketches;
    {
      [[maybe_unused]] const auto span = instr.collect_span();
      sketches = source.collect(round, result.broadcasts);
    }
    result.by_round.push_back(sheet.charge_round(sketches, instr));
    instr.on_round(round, result.by_round.back());
    result.all_rounds.push_back(std::move(sketches));

    if (round + 1 < rounds) {
      util::BitString b =
          referee.make_broadcast(round, n, result.all_rounds);
      instr.on_broadcast(round, b);
      result.broadcast_bits += b.bit_count();
      source.deliver_broadcast(round, b);
      result.broadcasts.push_back(std::move(b));
    }
  }

  result.comm = sheet.player_totals();
  {
    [[maybe_unused]] const auto span = instr.decode_span();
    result.output = referee.decode(n, result.all_rounds, result.broadcasts);
  }
  return result;
}

/// R = 1 referee over a SketchingProtocol: no broadcasts, decode sees the
/// single round.
template <typename Output>
class OneRoundReferee {
 public:
  OneRoundReferee(const model::SketchingProtocol<Output>& protocol,
                  const model::PublicCoins& coins) noexcept
      : protocol_(&protocol), coins_(&coins) {}

  [[nodiscard]] unsigned num_rounds() const noexcept { return 1; }

  [[nodiscard]] util::BitString make_broadcast(
      unsigned, graph::Vertex,
      std::span<const std::vector<util::BitString>>) const {
    return {};  // never called for R = 1
  }

  [[nodiscard]] Output decode(
      graph::Vertex n,
      std::span<const std::vector<util::BitString>> all_rounds,
      std::span<const util::BitString>) const {
    return protocol_->decode(n, all_rounds[0], *coins_);
  }

 private:
  const model::SketchingProtocol<Output>* protocol_;
  const model::PublicCoins* coins_;
};

/// Adapter over the virtual AdaptiveProtocol interface.
template <typename Output>
class AdaptiveReferee {
 public:
  AdaptiveReferee(const model::AdaptiveProtocol<Output>& protocol,
                  const model::PublicCoins& coins) noexcept
      : protocol_(&protocol), coins_(&coins) {}

  [[nodiscard]] unsigned num_rounds() const {
    return protocol_->num_rounds();
  }

  [[nodiscard]] util::BitString make_broadcast(
      unsigned round, graph::Vertex n,
      std::span<const std::vector<util::BitString>> rounds_so_far) const {
    return protocol_->make_broadcast(round, n, rounds_so_far, *coins_);
  }

  [[nodiscard]] Output decode(
      graph::Vertex n,
      std::span<const std::vector<util::BitString>> all_rounds,
      std::span<const util::BitString> broadcasts) const {
    return protocol_->decode(n, all_rounds, broadcasts, *coins_);
  }

 private:
  const model::AdaptiveProtocol<Output>* protocol_;
  const model::PublicCoins* coins_;
};

}  // namespace ds::engine
