// The in-process SketchSource: encode every vertex through the
// deterministic thread pool.
//
// A SketchSource is anything the engine can ask for a round of sketches:
//
//   std::vector<util::BitString> collect(unsigned round,
//       std::span<const util::BitString> broadcasts);
//   void deliver_broadcast(unsigned round, const util::BitString& b);
//
// LocalSource implements it by materializing VertexViews and running the
// player algorithm in-process; service/wire_source.h implements the same
// contract over wire::Link frames.  Per-vertex encodes are independent by
// construction (a player sees only its own view, the coins, and earlier
// broadcasts — Section 2.1), so they fan out across the pool with fixed
// chunking: sketches land in their vertex slot and results are
// bit-identical at any thread count.
//
// With an arena attached, each (round, vertex) encode adopts pooled word
// storage into its BitWriter and moves the finished words into the
// BitString — zero per-vertex heap allocations in steady state
// (docs/ENGINE.md, measured by bench/bench_engine.cpp).
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "engine/arena.h"
#include "graph/graph.h"
#include "model/protocol.h"
#include "parallel/thread_pool.h"
#include "util/bitio.h"

namespace ds::engine {

/// ViewFn:   model::VertexView(graph::Vertex v)
/// EncodeFn: void(const model::VertexView&, unsigned round,
///                std::span<const util::BitString> broadcasts,
///                util::BitWriter&)
template <typename ViewFn, typename EncodeFn>
class LocalSource {
 public:
  LocalSource(graph::Vertex n, ViewFn view_of, EncodeFn encode,
              parallel::ThreadPool* pool, SketchArena* arena) noexcept
      : n_(n), view_of_(std::move(view_of)), encode_(std::move(encode)),
        pool_(pool), arena_(arena) {}

  [[nodiscard]] std::vector<util::BitString> collect(
      unsigned round, std::span<const util::BitString> broadcasts) {
    const std::size_t n = n_;
    const std::size_t base_slot = static_cast<std::size_t>(round) * n;
    if (arena_ != nullptr) arena_->prepare(base_slot + n);
    std::vector<util::BitString> sketches(n);
    parallel::parallel_for(pool_, std::size_t{0}, n, [&](std::size_t i) {
      util::BitWriter writer(arena_ != nullptr
                                 ? arena_->take(base_slot + i)
                                 : std::vector<std::uint64_t>{});
      encode_(view_of_(static_cast<graph::Vertex>(i)), round, broadcasts,
              writer);
      sketches[i] = util::BitString(std::move(writer));
    });
    return sketches;
  }

  /// In-process players read broadcasts straight from the engine's
  /// accumulated list passed to collect(); nothing to deliver.
  void deliver_broadcast(unsigned, const util::BitString&) const noexcept {}

  [[nodiscard]] SketchArena* arena() const noexcept { return arena_; }

 private:
  graph::Vertex n_;
  ViewFn view_of_;
  EncodeFn encode_;
  parallel::ThreadPool* pool_;
  SketchArena* arena_;
};

/// Deduction helper (the class template has two deduced functor types).
template <typename ViewFn, typename EncodeFn>
[[nodiscard]] LocalSource<ViewFn, EncodeFn> make_local_source(
    graph::Vertex n, ViewFn view_of, EncodeFn encode,
    parallel::ThreadPool* pool = nullptr, SketchArena* arena = nullptr) {
  return LocalSource<ViewFn, EncodeFn>(n, std::move(view_of),
                                       std::move(encode), pool, arena);
}

/// The unweighted model view for vertex v of g.
[[nodiscard]] inline auto graph_view_fn(const graph::Graph& g,
                                        const model::PublicCoins& coins) {
  return [&g, &coins](graph::Vertex v) {
    return model::VertexView{g.num_vertices(), v, g.neighbors(v), &coins};
  };
}

}  // namespace ds::engine
