#include "engine/instrumentation.h"

// The single registration owner for the model-layer obs series.  Before
// the engine existed, model/runner.h and model/adaptive.h each registered
// model.encode.* from their own header-inline statics; any third runner
// would have added a fourth copy.  Every accessor below is a
// function-local static bound to the immortal registry, so registration
// happens exactly once per process regardless of how many adapters link.

namespace ds::engine::metrics {

obs::Counter& encode_sketches() {
  static obs::Counter& c = obs::counter("model.encode.sketches");
  return c;
}

obs::Histogram& encode_sketch_bits() {
  static obs::Histogram& h = obs::histogram("model.encode.sketch_bits");
  return h;
}

obs::Histogram& collect_us() {
  static obs::Histogram& h = obs::histogram("model.collect_us");
  return h;
}

obs::Histogram& decode_us() {
  static obs::Histogram& h = obs::histogram("model.decode_us");
  return h;
}

obs::Counter& adaptive_rounds() {
  static obs::Counter& c = obs::counter("model.adaptive.rounds");
  return c;
}

obs::Histogram& adaptive_broadcast_bits() {
  static obs::Histogram& h = obs::histogram("model.adaptive.broadcast_bits");
  return h;
}

}  // namespace ds::engine::metrics
