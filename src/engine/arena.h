// Pooled word storage for the engine's hot encode loop.
//
// The seed-era runners allocated one heap BitString per vertex per trial:
// a fresh BitWriter grows its word vector from empty, and the copy into
// the BitString allocates again.  The arena keeps one reusable buffer per
// (round, vertex) slot: the encode loop adopts the slot's storage into a
// BitWriter (capacity preserved, contents cleared), writes the sketch,
// and moves the words into the BitString without copying; `reclaim` moves
// them back after the referee is done.  From the second trial on, the
// steady state performs zero per-vertex heap allocations — measured by
// bench/bench_engine.cpp.
//
// Thread-safety contract: `prepare` and `reclaim*` are called serially by
// the engine between parallel regions; `take`/`put` may be called
// concurrently only on distinct slots (the deterministic thread pool's
// fixed chunking guarantees each vertex is touched by exactly one
// worker).  An arena must not be shared between concurrently running
// engines — sweeps that parallelize over trials pass nullptr (or one
// arena per lane) instead.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "util/bitio.h"

namespace ds::engine {

class SketchArena {
 public:
  /// Ensure slots [0, slots) exist.  Serial; called between rounds.
  void prepare(std::size_t slots) {
    if (slots_.size() < slots) slots_.resize(slots);
  }

  [[nodiscard]] std::size_t num_slots() const noexcept {
    return slots_.size();
  }

  /// Adopt slot `slot`'s pooled storage (empty vector on the first use).
  /// Safe to call concurrently on distinct slots.
  [[nodiscard]] std::vector<std::uint64_t> take(std::size_t slot) noexcept {
    return std::move(slots_[slot]);
  }

  /// Return storage to slot `slot` for the next trial.
  void put(std::size_t slot, std::vector<std::uint64_t>&& storage) noexcept {
    if (slot < slots_.size()) slots_[slot] = std::move(storage);
  }

  /// Recycle one collected round, keyed from `base_slot`.  The BitStrings
  /// are consumed: their word storage moves back into the pool.
  void reclaim_round(std::vector<util::BitString>&& round,
                     std::size_t base_slot) {
    prepare(base_slot + round.size());
    for (std::size_t i = 0; i < round.size(); ++i) {
      put(base_slot + i, round[i].release_words());
    }
  }

  /// Recycle every round of a finished run (round r, vertex v lives in
  /// slot r * n + v — the same keying the engine's local source uses).
  void reclaim_rounds(std::vector<std::vector<util::BitString>>&& rounds) {
    std::size_t base = 0;
    for (std::vector<util::BitString>& round : rounds) {
      const std::size_t n = round.size();
      reclaim_round(std::move(round), base);
      base += n;
    }
  }

 private:
  std::vector<std::vector<std::uint64_t>> slots_;
};

/// A free list of arenas for trial-parallel sweeps: each concurrently
/// running trial leases its own arena (an arena is never shared between
/// live engines), and returned arenas are recycled, so the pool size is
/// bounded by the peak concurrency and steady-state trials reuse warm
/// buffers.  Which arena a given trial draws is schedule-dependent and
/// deliberately immaterial: arena identity never affects results (the
/// engine-equivalence suite pins arena'd == arena-less bits), only
/// allocation counts — which bench_scenario measures.
class ArenaReservoir {
 public:
  [[nodiscard]] std::unique_ptr<SketchArena> acquire() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (!free_.empty()) {
        std::unique_ptr<SketchArena> arena = std::move(free_.back());
        free_.pop_back();
        return arena;
      }
    }
    return std::make_unique<SketchArena>();
  }

  void release(std::unique_ptr<SketchArena> arena) {
    if (arena == nullptr) return;
    const std::lock_guard<std::mutex> lock(mu_);
    free_.push_back(std::move(arena));
  }

 private:
  std::mutex mu_;
  std::vector<std::unique_ptr<SketchArena>> free_;
};

/// RAII lease: acquire on construction, return on destruction.
class ArenaLease {
 public:
  explicit ArenaLease(ArenaReservoir& reservoir)
      : reservoir_(reservoir), arena_(reservoir.acquire()) {}
  ~ArenaLease() { reservoir_.release(std::move(arena_)); }

  ArenaLease(const ArenaLease&) = delete;
  ArenaLease& operator=(const ArenaLease&) = delete;

  [[nodiscard]] SketchArena* get() const noexcept { return arena_.get(); }

 private:
  ArenaReservoir& reservoir_;
  std::unique_ptr<SketchArena> arena_;
};

}  // namespace ds::engine
