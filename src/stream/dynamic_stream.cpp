#include "stream/dynamic_stream.h"

#include <algorithm>
#include <cassert>

#include "util/bitio.h"
#include "util/rng.h"

namespace ds::stream {

using graph::Edge;
using graph::Vertex;

DynamicConnectivity::DynamicConnectivity(Vertex n, std::uint64_t seed,
                                         unsigned rounds)
    : coins_(seed) {
  // Every vertex shares one sketch shape (same hash families and
  // fingerprint bases — AGM merging requires it), so build the shape
  // once and copy: at n >= 10^6 this replaces ~10^8 coin-stream
  // constructions with plain memcpys of zeroed state.
  sketches_.reserve(n);
  if (n > 0) {
    const auto shape = sketch::AgmVertexSketch::make(coins_, n, rounds);
    for (Vertex v = 0; v < n; ++v) sketches_.push_back(shape);
  }
}

void DynamicConnectivity::apply(const EdgeUpdate& update) {
  const Edge e = update.edge;
  const std::int64_t scale = update.insert ? +1 : -1;
  add_half_edge(e.u, e.v, scale);
  add_half_edge(e.v, e.u, scale);
}

void DynamicConnectivity::add_half_edge(Vertex v, Vertex w,
                                        std::int64_t scale) {
  assert(v != w && v < num_vertices() && w < num_vertices());
  sketches_[v].add_single_edge(v, w, scale);
}

sketch::SpanningForestDecode DynamicConnectivity::query_forest() const {
  // agm_spanning_forest consumes the sketches (Boruvka merges them);
  // query on copies so the stream can continue.
  std::vector<sketch::AgmVertexSketch> copy = sketches_;
  return sketch::agm_spanning_forest(num_vertices(), std::move(copy));
}

std::uint32_t DynamicConnectivity::query_components() const {
  return query_forest().components;
}

std::size_t DynamicConnectivity::state_bits() const {
  std::size_t bits = 0;
  for (const auto& s : sketches_) bits += s.state_bits();
  return bits;
}

unsigned DynamicConnectivity::rounds() const noexcept {
  return sketches_.empty() ? 0 : sketches_.front().rounds();
}

std::uint64_t DynamicConnectivity::state_hash() const {
  // Serialize per vertex and fold the words through mix64 with a running
  // chain value, so both the word values and their order are pinned.
  std::uint64_t h = util::mix64(0x5354484153480001ULL, num_vertices());
  util::BitWriter w;
  for (const auto& s : sketches_) {
    w.clear();
    s.write(w);
    h = util::mix64(h, w.bit_count());
    for (const std::uint64_t word : w.words()) h = util::mix64(h, word);
  }
  return h;
}

InsertionGreedyMatching::InsertionGreedyMatching(Vertex n)
    : matched_(n, false) {}

void InsertionGreedyMatching::apply(const EdgeUpdate& update) {
  const Edge e = update.edge.normalized();
  if (update.insert) {
    if (!matched_[e.u] && !matched_[e.v]) {
      matched_[e.u] = matched_[e.v] = true;
      matching_.push_back(e);
    }
    return;
  }
  // Deletion: harmless unless it removes a matched edge.
  const auto it = std::find(matching_.begin(), matching_.end(), e);
  if (it != matching_.end()) {
    valid_ = false;  // greedy state cannot be repaired in one pass
    matching_.erase(it);
    matched_[e.u] = matched_[e.v] = false;
  }
}

std::vector<EdgeUpdate> scrambled_updates(const graph::Graph& target,
                                          std::size_t spurious_pairs,
                                          util::Rng& rng) {
  std::vector<EdgeUpdate> updates;
  for (const Edge& e : target.edges()) updates.push_back({e, true});

  // Spurious pairs: edges NOT in the target, inserted then deleted. The
  // delete is appended after the insert; the interleave below preserves
  // relative order of each pair by tagging.
  const Vertex n = target.num_vertices();
  std::vector<Edge> spurious;
  std::size_t guard = 0;
  while (spurious.size() < spurious_pairs && guard < 50 * spurious_pairs + 100) {
    ++guard;
    const Vertex u = static_cast<Vertex>(rng.next_below(n));
    const Vertex v = static_cast<Vertex>(rng.next_below(n));
    if (u == v || target.has_edge(u, v)) continue;
    spurious.push_back(Edge{u, v}.normalized());
  }

  // Shuffle the inserts (real + spurious), then inject each spurious
  // delete at a random position after its insert.
  for (const Edge& e : spurious) updates.push_back({e, true});
  rng.shuffle(std::span<EdgeUpdate>(updates));
  for (const Edge& e : spurious) {
    // Find the insert's position, then insert the delete after it.
    std::size_t pos = 0;
    for (std::size_t i = 0; i < updates.size(); ++i) {
      if (updates[i].insert && updates[i].edge == e) {
        pos = i;
        break;
      }
    }
    const std::size_t at =
        pos + 1 + rng.next_below(updates.size() - pos);
    updates.insert(updates.begin() + static_cast<std::ptrdiff_t>(at),
                   {e, false});
  }
  return updates;
}

}  // namespace ds::stream
