// Dynamic (turnstile) graph streams on top of the same linear sketches.
//
// Section 1.1 contrasts the sketching lower bounds with streaming: linear
// sketches ARE dynamic-stream algorithms (a linear summary absorbs edge
// deletions as subtractions), which is exactly why the [AKLY16]/[CDK19]
// streaming lower bounds the paper cites translate to *linear* sketches
// while Theorems 1-2 are needed for general ones.  This module makes the
// correspondence executable:
//
//  * DynamicConnectivity — processes inserts AND deletes with n *
//    O(log^3 n) bits of state, answering spanning-forest / component
//    queries at any point (AGM sketches, incremental updates).
//  * InsertionGreedyMatching — the classic O(n)-memory insertion-only
//    maximal matching, which deletions break (demonstrated in tests):
//    the asymmetry motivating the dynamic-stream matching lower bounds.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.h"
#include "graph/matching.h"
#include "model/coins.h"
#include "sketch/agm.h"

namespace ds::stream {

struct EdgeUpdate {
  graph::Edge edge;
  bool insert = true;  // false: delete
};

/// Turnstile connectivity: per-vertex AGM sketches updated in O(log^2 n)
/// field operations per stream element.
class DynamicConnectivity {
 public:
  /// `seed` keys the sketch randomness (a stream algorithm's private
  /// coins must be independent of the stream).  `rounds` is the number of
  /// independent per-vertex samplers — the Boruvka depth the state can
  /// support: 0 means agm_default_rounds(n) (full O(log n) depth, exact
  /// whp), smaller values trade query completeness for an `rounds`-fold
  /// smaller memory footprint, which is what lets the stream ingestion
  /// workloads hold n >= 10^6 vertices resident (docs/STREAMING.md).
  DynamicConnectivity(graph::Vertex n, std::uint64_t seed,
                      unsigned rounds = 0);

  void apply(const EdgeUpdate& update);
  void insert(graph::Vertex u, graph::Vertex v) { apply({{u, v}, true}); }
  void remove(graph::Vertex u, graph::Vertex v) { apply({{u, v}, false}); }

  /// One endpoint's half of apply(): account edge {v, w} in v's sketch
  /// only, scaled +1 (insert) or -1 (delete).  apply(u, v) is exactly
  /// add_half_edge(u, v, s) followed by add_half_edge(v, u, s), and the
  /// field operations commute, so a vertex-sharded ingestor (each shard
  /// owning the half-edges of its own vertex range; src/streamio/) lands
  /// bit-identical state in any execution order.
  void add_half_edge(graph::Vertex v, graph::Vertex w, std::int64_t scale);

  /// Decode a spanning forest of the current graph (consumes fresh sketch
  /// copies; the stream state is untouched and can keep absorbing
  /// updates).
  [[nodiscard]] sketch::SpanningForestDecode query_forest() const;
  [[nodiscard]] std::uint32_t query_components() const;

  [[nodiscard]] graph::Vertex num_vertices() const noexcept {
    return static_cast<graph::Vertex>(sketches_.size());
  }
  /// Total sketch state in bits (the algorithm's memory footprint).
  [[nodiscard]] std::size_t state_bits() const;

  /// Samplers per vertex (the Boruvka depth queries can reach).
  [[nodiscard]] unsigned rounds() const noexcept;

  /// Order-sensitive 64-bit digest of the serialized sketch state, the
  /// equality witness for the parallel-ingestion audits: two runs with
  /// equal hashes hold (up to collision) identical sketch words, hence
  /// identical answers to every future query.
  [[nodiscard]] std::uint64_t state_hash() const;

 private:
  model::PublicCoins coins_;
  std::vector<sketch::AgmVertexSketch> sketches_;
};

/// Insertion-only greedy maximal matching (one pass, O(n log n) bits).
/// `apply` with a delete for a matched edge invalidates the state; the
/// class tracks that honestly via `valid()` instead of pretending.
class InsertionGreedyMatching {
 public:
  explicit InsertionGreedyMatching(graph::Vertex n);

  void apply(const EdgeUpdate& update);

  [[nodiscard]] const graph::Matching& matching() const noexcept {
    return matching_;
  }
  /// False once a deletion removed a matched edge — the single-pass
  /// greedy cannot repair itself (the motivation for sketch-based
  /// matchings, and the regime of the paper's lower bound).
  [[nodiscard]] bool valid() const noexcept { return valid_; }

 private:
  std::vector<bool> matched_;
  graph::Matching matching_;
  bool valid_ = true;
};

/// A random update sequence whose final graph is `target`: inserts and
/// spurious insert+delete pairs interleaved. For tests/benches.
[[nodiscard]] std::vector<EdgeUpdate> scrambled_updates(
    const graph::Graph& target, std::size_t spurious_pairs, util::Rng& rng);

}  // namespace ds::stream
