#include "util/bitio.h"

#include <algorithm>
#include <bit>

namespace ds::util {

unsigned bit_width_for(std::uint64_t n) noexcept {
  if (n <= 1) return 0;
  return static_cast<unsigned>(std::bit_width(n - 1));
}

void BitWriter::put_words(std::span<const std::uint64_t> src,
                          std::size_t nbits) {
  assert(nbits <= src.size() * 64);
  const std::size_t full = nbits >> 6;
  const unsigned rem = static_cast<unsigned>(nbits & 63);
  reserve_bits(bit_count_ + nbits);
  if ((bit_count_ & 63) == 0) {
    // Aligned run: whole-word copy, no shifting at all.
    words_.insert(words_.end(), src.begin(),
                  src.begin() + static_cast<std::ptrdiff_t>(full));
    bit_count_ += full << 6;
  } else {
    // Unaligned: one shift-pair step per word (put_bits inlines to
    // exactly that; the offset stays constant across the run).
    for (std::size_t i = 0; i < full; ++i) put_bits(src[i], 64);
  }
  if (rem != 0) put_bits(src[full], rem);
}

void BitWriter::put_gamma(std::uint64_t value) {
  assert(value >= 1);
  const unsigned len = static_cast<unsigned>(std::bit_width(value));  // >= 1
  // len-1 zeros, then the value's bits from MSB down (we store the leading
  // 1 explicitly so the reader can detect the boundary).
  put_bits(0, len - 1);
  put_bit(true);
  if (len > 1) put_bits(value & detail::width_mask(len - 1), len - 1);
}

void BitWriter::put_delta(std::uint64_t value) {
  assert(value >= 1);
  const unsigned len = static_cast<unsigned>(std::bit_width(value));
  put_gamma(len);
  if (len > 1) put_bits(value & detail::width_mask(len - 1), len - 1);
}

void BitWriter::put_u32_span(std::span<const std::uint32_t> values,
                             unsigned width) {
  put_gamma(values.size() + 1);  // +1: gamma cannot encode zero
  if (width == 0 || values.empty()) return;
  assert(width <= 64);
  reserve_bits(bit_count_ + values.size() * width);
  // Word-at-a-time: pack elements into a register-resident accumulator and
  // flush whole 64-bit words; only the final partial word takes the
  // narrow-width path.  Bit-identical to put_bits per element.
  const std::uint64_t mask = detail::width_mask(width);
  std::uint64_t acc = 0;
  unsigned acc_bits = 0;
  for (std::uint32_t v : values) {
    const std::uint64_t val = v & mask;
    acc |= val << acc_bits;
    const unsigned room = 64u - acc_bits;
    if (width >= room) {
      put_bits(acc, 64);
      acc = room < width ? val >> room : 0;
      acc_bits = width - room;
    } else {
      acc_bits += width;
    }
  }
  if (acc_bits > 0) put_bits(acc, acc_bits);
}

void BitReader::get_words(std::span<std::uint64_t> out, std::size_t nbits) {
  assert(nbits <= out.size() * 64);
  const std::size_t full = nbits >> 6;
  const unsigned rem = static_cast<unsigned>(nbits & 63);
  if ((pos_ & 63) == 0 && pos_ + nbits <= bit_count_) {
    // Aligned run: whole-word copy.
    const std::size_t word_index = pos_ >> 6;
    std::copy_n(words_.begin() + static_cast<std::ptrdiff_t>(word_index),
                full, out.begin());
    pos_ += full << 6;
  } else {
    for (std::size_t i = 0; i < full; ++i) out[i] = get_bits(64);
  }
  if (rem != 0) out[full] = get_bits(rem);
}

std::uint64_t BitReader::get_gamma() {
  unsigned zeros = 0;
  while (bits_remaining() > 0 && !get_bit()) ++zeros;
  // A truncated or adversarial stream can present >= 64 leading zeros;
  // clamp so the shift stays defined (the decoded value is garbage either
  // way, but must be garbage safely).
  if (zeros > 63) zeros = 63;
  std::uint64_t value = std::uint64_t{1} << zeros;
  if (zeros > 0) value |= get_bits(zeros);
  return value;
}

std::uint64_t BitReader::get_delta() {
  const unsigned len = static_cast<unsigned>(get_gamma());
  std::uint64_t value = std::uint64_t{1} << (len - 1);
  if (len > 1) value |= get_bits(len - 1);
  return value;
}

std::vector<std::uint32_t> BitReader::get_u32_span(unsigned width) {
  std::uint64_t count = get_gamma() - 1;
  // Robustness clamp: a well-formed message cannot contain more elements
  // than it has bits left; garbage counts must not drive allocation.
  const std::uint64_t max_possible =
      width == 0 ? bits_remaining() : bits_remaining() / width;
  if (count > max_possible) count = max_possible;
  std::vector<std::uint32_t> values;
  values.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i)
    values.push_back(static_cast<std::uint32_t>(get_bits(width)));
  return values;
}

}  // namespace ds::util
