#include "util/bitio.h"

#include <bit>
#include <cassert>

namespace ds::util {

unsigned bit_width_for(std::uint64_t n) noexcept {
  if (n <= 1) return 0;
  return static_cast<unsigned>(std::bit_width(n - 1));
}

void BitWriter::put_bit(bool bit) { put_bits(bit ? 1u : 0u, 1); }

void BitWriter::put_bits(std::uint64_t value, unsigned width) {
  assert(width <= 64);
  if (width == 0) return;
  if (width < 64) value &= (std::uint64_t{1} << width) - 1;

  const std::size_t word_index = bit_count_ >> 6;
  const unsigned offset = static_cast<unsigned>(bit_count_ & 63);
  if (word_index >= words_.size()) words_.push_back(0);
  words_[word_index] |= value << offset;
  if (offset + width > 64) {
    // Spills into the next word.
    words_.push_back(value >> (64 - offset));
  }
  bit_count_ += width;
}

void BitWriter::put_gamma(std::uint64_t value) {
  assert(value >= 1);
  const unsigned len = static_cast<unsigned>(std::bit_width(value));  // >= 1
  // len-1 zeros, then the value's bits from MSB down (we store the leading
  // 1 explicitly so the reader can detect the boundary).
  put_bits(0, len - 1);
  put_bit(true);
  if (len > 1) put_bits(value & ((std::uint64_t{1} << (len - 1)) - 1), len - 1);
}

void BitWriter::put_delta(std::uint64_t value) {
  assert(value >= 1);
  const unsigned len = static_cast<unsigned>(std::bit_width(value));
  put_gamma(len);
  if (len > 1) put_bits(value & ((std::uint64_t{1} << (len - 1)) - 1), len - 1);
}

void BitWriter::put_u32_span(std::span<const std::uint32_t> values,
                             unsigned width) {
  put_gamma(values.size() + 1);  // +1: gamma cannot encode zero
  for (std::uint32_t v : values) put_bits(v, width);
}

bool BitReader::get_bit() { return get_bits(1) != 0; }

std::uint64_t BitReader::get_bits(unsigned width) {
  assert(width <= 64);
  if (width == 0) return 0;
  assert(pos_ + width <= bit_count_);
  if (pos_ + width > bit_count_) return 0;

  const std::size_t word_index = pos_ >> 6;
  const unsigned offset = static_cast<unsigned>(pos_ & 63);
  std::uint64_t value = words_[word_index] >> offset;
  if (offset + width > 64) value |= words_[word_index + 1] << (64 - offset);
  if (width < 64) value &= (std::uint64_t{1} << width) - 1;
  pos_ += width;
  return value;
}

std::uint64_t BitReader::get_gamma() {
  unsigned zeros = 0;
  while (bits_remaining() > 0 && !get_bit()) ++zeros;
  // A truncated or adversarial stream can present >= 64 leading zeros;
  // clamp so the shift stays defined (the decoded value is garbage either
  // way, but must be garbage safely).
  if (zeros > 63) zeros = 63;
  std::uint64_t value = std::uint64_t{1} << zeros;
  if (zeros > 0) value |= get_bits(zeros);
  return value;
}

std::uint64_t BitReader::get_delta() {
  const unsigned len = static_cast<unsigned>(get_gamma());
  std::uint64_t value = std::uint64_t{1} << (len - 1);
  if (len > 1) value |= get_bits(len - 1);
  return value;
}

std::vector<std::uint32_t> BitReader::get_u32_span(unsigned width) {
  std::uint64_t count = get_gamma() - 1;
  // Robustness clamp: a well-formed message cannot contain more elements
  // than it has bits left; garbage counts must not drive allocation.
  const std::uint64_t max_possible =
      width == 0 ? bits_remaining() : bits_remaining() / width;
  if (count > max_possible) count = max_possible;
  std::vector<std::uint32_t> values;
  values.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i)
    values.push_back(static_cast<std::uint32_t>(get_bits(width)));
  return values;
}

}  // namespace ds::util
