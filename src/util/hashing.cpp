#include "util/hashing.h"

#include <bit>

namespace ds::util {

KWiseHash::KWiseHash(unsigned k, Rng& rng, std::uint64_t prime)
    : k_(k), prime_(prime) {
  assert(k >= 1);
  assert(is_prime(prime));
  if (k > kInlineCoeffs) spill_.reserve(k - kInlineCoeffs);
  // Draw order is part of the public-coin contract: c_0 first, ascending,
  // exactly as the original vector-backed implementation drew them.
  for (unsigned i = 0; i < k; ++i) {
    const std::uint64_t c = rng.next_below(prime);
    if (i < kInlineCoeffs) {
      small_[i] = c;
    } else {
      spill_.push_back(c);
    }
  }
  // A zero leading coefficient only shrinks the family, never breaks
  // independence, so we accept whatever the draw produced.
}

void KWiseHash::eval_batch(std::span<const std::uint64_t> xs,
                           std::span<std::uint64_t> out) const noexcept {
  assert(xs.size() == out.size());
  if (k_ == 2 && prime_ == kDefaultPrime) {
    // Pairwise over the Mersenne field: both coefficients stay in
    // registers across the whole row.
    const std::uint64_t c1 = coeff(1);
    const std::uint64_t c0 = coeff(0);
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const std::uint64_t xr = detail::reduce64_m61(xs[i]);
      out[i] = add_mod(mul_mod(c1, xr, kDefaultPrime), c0, kDefaultPrime);
    }
    return;
  }
  for (std::size_t i = 0; i < xs.size(); ++i) out[i] = (*this)(xs[i]);
}

void KWiseHash::bounded_batch(std::span<const std::uint64_t> xs,
                              std::uint64_t range,
                              std::span<std::uint64_t> out) const noexcept {
  assert(range > 0);
  eval_batch(xs, out);
  for (std::uint64_t& v : out) v %= range;
}

KWiseHash make_pairwise(Rng& rng) { return KWiseHash(2, rng); }

unsigned sample_level(const KWiseHash& hash, std::uint64_t x,
                      unsigned max_level) noexcept {
  const std::uint64_t value = hash(x);
  if (value == 0) return max_level;
  const unsigned tz = static_cast<unsigned>(std::countr_zero(value));
  return tz < max_level ? tz : max_level;
}

void sample_level_batch(const KWiseHash& hash,
                        std::span<const std::uint64_t> xs, unsigned max_level,
                        std::span<std::uint32_t> out) noexcept {
  assert(xs.size() == out.size());
  // sample_level inlines the pairwise fast path of operator(), so one loop
  // serves both the specialized and the generic family.
  for (std::size_t i = 0; i < xs.size(); ++i) {
    out[i] = sample_level(hash, xs[i], max_level);
  }
}

}  // namespace ds::util
