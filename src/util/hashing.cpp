#include "util/hashing.h"

#include <bit>
#include <cassert>

namespace ds::util {

KWiseHash::KWiseHash(unsigned k, Rng& rng, std::uint64_t prime)
    : prime_(prime) {
  assert(k >= 1);
  assert(is_prime(prime));
  coeffs_.reserve(k);
  for (unsigned i = 0; i < k; ++i) {
    coeffs_.push_back(rng.next_below(prime));
  }
  // A zero leading coefficient only shrinks the family, never breaks
  // independence, so we accept whatever the draw produced.
}

std::uint64_t KWiseHash::operator()(std::uint64_t x) const noexcept {
  // Horner evaluation, highest coefficient first.
  std::uint64_t acc = 0;
  const std::uint64_t xr = x % prime_;
  for (auto it = coeffs_.rbegin(); it != coeffs_.rend(); ++it) {
    acc = add_mod(mul_mod(acc, xr, prime_), *it, prime_);
  }
  return acc;
}

std::uint64_t KWiseHash::bounded(std::uint64_t x,
                                 std::uint64_t range) const noexcept {
  assert(range > 0);
  return (*this)(x) % range;
}

KWiseHash make_pairwise(Rng& rng) { return KWiseHash(2, rng); }

unsigned sample_level(const KWiseHash& hash, std::uint64_t x,
                      unsigned max_level) noexcept {
  const std::uint64_t value = hash(x);
  if (value == 0) return max_level;
  const unsigned tz = static_cast<unsigned>(std::countr_zero(value));
  return tz < max_level ? tz : max_level;
}

}  // namespace ds::util
