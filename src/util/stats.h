// Small statistics helpers shared by the experiment harness:
// streaming mean/variance, binomial confidence intervals for success-rate
// estimation, and the Chernoff tail used by Claim 3.1's analysis.
#pragma once

#include <cstdint>
#include <cstddef>

namespace ds::util {

/// Welford streaming accumulator.
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Sample variance (n-1 denominator); 0 for n < 2.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Wilson score interval for a binomial proportion at ~95% confidence.
struct Interval {
  double lo;
  double hi;
};
[[nodiscard]] Interval wilson_interval(std::size_t successes,
                                       std::size_t trials) noexcept;

/// Upper Chernoff bound Pr[X <= (1-delta) mu] <= exp(-delta^2 mu / 2) for a
/// sum of independent Bernoullis with mean mu.  Claim 3.1 uses this with
/// mu = k*r/2 and (1-delta)mu = k*r/3.
[[nodiscard]] double chernoff_lower_tail(double mu, double delta) noexcept;

}  // namespace ds::util
