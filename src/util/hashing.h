// k-wise independent hash families over a prime field.
//
// The L0 samplers behind the AGM spanning-forest sketch need pairwise
// independence for their level-subsampling and bucket-assignment hashes;
// palette sparsification and the budgeted sampling protocols key their
// public-coin choices through these families too, so that every player
// evaluating the same seeded family sees the same function.
//
// Hot-path notes (docs/ENGINE.md): evaluation is inline, coefficients for
// the common small k live in the object (no heap indirection), and the
// batch entry points evaluate a whole span of keys per call — the sketch
// layer hashes an adjacency row at a time instead of an edge at a time.
// Every path (scalar or batch, pairwise-specialized or generic Horner)
// computes the identical polynomial over F_p, so hash values — and hence
// every downstream sketch bit — are independent of which path ran.
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "util/modular.h"
#include "util/rng.h"

namespace ds::util {

/// Degree-(k-1) polynomial over F_p: h(x) = sum_i c_i x^i mod p, a k-wise
/// independent family when the coefficients are uniform.
class KWiseHash {
 public:
  /// Draw a function with the given independence k >= 1 from `rng`.
  KWiseHash(unsigned k, Rng& rng, std::uint64_t prime = kDefaultPrime);

  /// h(x) in [0, p).
  [[nodiscard]] std::uint64_t operator()(std::uint64_t x) const noexcept {
    const std::uint64_t xr = reduce_mod(x, prime_);
    if (k_ == 2) {
      // Pairwise fast path: h(x) = c1*x + c0, the family the sketches use.
      return add_mod(mul_mod(coeff(1), xr, prime_), coeff(0), prime_);
    }
    return horner(xr);
  }

  /// h(x) reduced to [0, range). Composition with `mod range` keeps
  /// near-uniformity as long as range << p.
  [[nodiscard]] std::uint64_t bounded(std::uint64_t x,
                                      std::uint64_t range) const noexcept {
    assert(range > 0);
    return (*this)(x) % range;
  }

  /// Batched evaluation: out[i] = h(xs[i]).  Requires equal extents.
  void eval_batch(std::span<const std::uint64_t> xs,
                  std::span<std::uint64_t> out) const noexcept;

  /// Batched bounded evaluation: out[i] = h(xs[i]) % range.
  void bounded_batch(std::span<const std::uint64_t> xs, std::uint64_t range,
                     std::span<std::uint64_t> out) const noexcept;

  [[nodiscard]] unsigned independence() const noexcept { return k_; }
  [[nodiscard]] std::uint64_t prime() const noexcept { return prime_; }

 private:
  [[nodiscard]] std::uint64_t coeff(unsigned i) const noexcept {
    return i < kInlineCoeffs ? small_[i] : spill_[i - kInlineCoeffs];
  }
  [[nodiscard]] std::uint64_t horner(std::uint64_t xr) const noexcept {
    // Highest coefficient first.
    std::uint64_t acc = 0;
    for (unsigned i = k_; i-- > 0;) {
      acc = add_mod(mul_mod(acc, xr, prime_), coeff(i), prime_);
    }
    return acc;
  }

  /// Coefficients for k <= kInlineCoeffs (the pairwise and 4-wise
  /// families everything hot uses) live inline so copying a hash — the
  /// sketch-template fast path — touches no heap.
  static constexpr unsigned kInlineCoeffs = 4;

  unsigned k_ = 0;
  std::uint64_t prime_ = kDefaultPrime;
  std::array<std::uint64_t, kInlineCoeffs> small_{};  // c_0 .. c_3
  std::vector<std::uint64_t> spill_;                  // c_4 .. c_{k-1}
};

/// Convenience: the pairwise (k=2) family used by the sketches.
[[nodiscard]] KWiseHash make_pairwise(Rng& rng);

/// Geometric level assignment for L0 sampling: the largest l such that
/// h(x) is divisible by 2^l, capped at max_level.  With a pairwise-
/// independent h, Pr[level(x) >= l] ~ 2^-l.
[[nodiscard]] unsigned sample_level(const KWiseHash& hash, std::uint64_t x,
                                    unsigned max_level) noexcept;

/// Batched level assignment: out[i] = sample_level(hash, xs[i], max_level).
/// Requires equal extents.
void sample_level_batch(const KWiseHash& hash,
                        std::span<const std::uint64_t> xs, unsigned max_level,
                        std::span<std::uint32_t> out) noexcept;

}  // namespace ds::util
