// k-wise independent hash families over a prime field.
//
// The L0 samplers behind the AGM spanning-forest sketch need pairwise
// independence for their level-subsampling and bucket-assignment hashes;
// palette sparsification and the budgeted sampling protocols key their
// public-coin choices through these families too, so that every player
// evaluating the same seeded family sees the same function.
#pragma once

#include <cstdint>
#include <vector>

#include "util/modular.h"
#include "util/rng.h"

namespace ds::util {

/// Degree-(k-1) polynomial over F_p: h(x) = sum_i c_i x^i mod p, a k-wise
/// independent family when the coefficients are uniform.
class KWiseHash {
 public:
  /// Draw a function with the given independence k >= 1 from `rng`.
  KWiseHash(unsigned k, Rng& rng, std::uint64_t prime = kDefaultPrime);

  /// h(x) in [0, p).
  [[nodiscard]] std::uint64_t operator()(std::uint64_t x) const noexcept;

  /// h(x) reduced to [0, range). Composition with `mod range` keeps
  /// near-uniformity as long as range << p.
  [[nodiscard]] std::uint64_t bounded(std::uint64_t x,
                                      std::uint64_t range) const noexcept;

  [[nodiscard]] unsigned independence() const noexcept {
    return static_cast<unsigned>(coeffs_.size());
  }
  [[nodiscard]] std::uint64_t prime() const noexcept { return prime_; }

 private:
  std::vector<std::uint64_t> coeffs_;  // c_0 .. c_{k-1}
  std::uint64_t prime_;
};

/// Convenience: the pairwise (k=2) family used by the sketches.
[[nodiscard]] KWiseHash make_pairwise(Rng& rng);

/// Geometric level assignment for L0 sampling: the largest l such that
/// h(x) is divisible by 2^l, capped at max_level.  With a pairwise-
/// independent h, Pr[level(x) >= l] ~ 2^-l.
[[nodiscard]] unsigned sample_level(const KWiseHash& hash, std::uint64_t x,
                                    unsigned max_level) noexcept;

}  // namespace ds::util
