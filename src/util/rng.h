// Deterministic, splittable random number generation.
//
// Every source of randomness in this codebase flows through `Rng` so that
// experiments are exactly reproducible from a single 64-bit seed.  The
// distributed sketching model additionally needs *public coins*: a random
// string that all players and the referee can read but that is fixed before
// the input is revealed.  We realize public coins as a seed from which
// players derive independent streams via `Rng::child` (a hash-based split),
// so two players asking for the stream tagged (t, i) always see identical
// bits without any communication.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace ds::util {

/// xoshiro256** seeded through SplitMix64.  Fast, high-quality, and —
/// unlike std::mt19937 — cheap to construct, which matters because the
/// model spawns one stream per (player, purpose) pair.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed) noexcept;

  /// UniformRandomBitGenerator interface.
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }
  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept;

  /// Uniform integer in [0, bound). Requires bound > 0. Unbiased
  /// (Lemire's rejection method).
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double next_double() noexcept;

  /// True with probability p (clamped to [0,1]).
  bool next_bernoulli(double p) noexcept;

  /// A fair coin flip.
  bool next_bit() noexcept { return (next() >> 63) != 0; }

  /// Derive an independent child stream.  Children with distinct tags are
  /// statistically independent of each other and of the parent's future
  /// output; the parent's state is not advanced.
  [[nodiscard]] Rng child(std::uint64_t tag) const noexcept;
  [[nodiscard]] Rng child(std::uint64_t tag_hi,
                          std::uint64_t tag_lo) const noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// A uniformly random permutation of [0, n).
  [[nodiscard]] std::vector<std::uint32_t> permutation(std::uint32_t n);

  /// Floyd's algorithm: k distinct values sampled uniformly from [0, n),
  /// returned sorted. Requires k <= n.
  [[nodiscard]] std::vector<std::uint64_t> sample_without_replacement(
      std::uint64_t n, std::uint64_t k);

 private:
  std::uint64_t s_[4];
};

/// SplitMix64 step: the canonical 64-bit mixer, used for seeding and for
/// hash-based stream splitting.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Stateless mix of two words into one (used to build stream tags).
[[nodiscard]] std::uint64_t mix64(std::uint64_t a, std::uint64_t b) noexcept;

/// Counter-based per-trial seed derivation (splitmix-style): statelessly
/// maps (master, index) to an independent seed.  Trial i's randomness is a
/// pure function of the master seed and i — not of how many trials ran
/// before it — which is what lets trial loops run in parallel while
/// staying bit-identical to the serial order (docs/PARALLELISM.md).
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t master,
                                        std::uint64_t index) noexcept;

}  // namespace ds::util
