// Modular arithmetic over 64-bit primes.
//
// Used by the hashing layer (polynomial k-wise-independent families need a
// prime field) and by the sparse-recovery sketches (fingerprints over F_p
// make false one-sparse decodes exponentially unlikely in the word size).
#pragma once

#include <cstdint>

namespace ds::util {

/// (a * b) mod m without overflow, via 128-bit intermediate.
[[nodiscard]] std::uint64_t mul_mod(std::uint64_t a, std::uint64_t b,
                                    std::uint64_t m) noexcept;

/// (a + b) mod m; a, b must already be reduced.
[[nodiscard]] std::uint64_t add_mod(std::uint64_t a, std::uint64_t b,
                                    std::uint64_t m) noexcept;

/// (a - b) mod m; a, b must already be reduced.
[[nodiscard]] std::uint64_t sub_mod(std::uint64_t a, std::uint64_t b,
                                    std::uint64_t m) noexcept;

/// a^e mod m by square-and-multiply.
[[nodiscard]] std::uint64_t pow_mod(std::uint64_t a, std::uint64_t e,
                                    std::uint64_t m) noexcept;

/// Modular inverse of a mod prime p (a != 0 mod p), via Fermat.
[[nodiscard]] std::uint64_t inv_mod(std::uint64_t a, std::uint64_t p) noexcept;

/// Deterministic Miller-Rabin, exact for all 64-bit inputs.
[[nodiscard]] bool is_prime(std::uint64_t n) noexcept;

/// Smallest prime >= n (n <= 2^63 so the search cannot wrap).
[[nodiscard]] std::uint64_t next_prime(std::uint64_t n) noexcept;

/// A fixed 61-bit prime (the Mersenne prime 2^61 - 1), comfortably above
/// every index space we hash, so a single field serves all default hash
/// families and fingerprints.
inline constexpr std::uint64_t kDefaultPrime = (std::uint64_t{1} << 61) - 1;

static_assert(kDefaultPrime < (std::uint64_t{1} << 62));

}  // namespace ds::util
