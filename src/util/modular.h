// Modular arithmetic over 64-bit primes.
//
// Used by the hashing layer (polynomial k-wise-independent families need a
// prime field) and by the sparse-recovery sketches (fingerprints over F_p
// make false one-sparse decodes exponentially unlikely in the word size).
//
// The operations below are the innermost loop of every sketch update and
// hash evaluation, so they are defined inline here and carry a branch-free
// Mersenne fast path for the default field: kDefaultPrime = 2^61 - 1 means
// 2^61 == 1 (mod p), so a 128-bit product reduces with two shift-and-add
// folds instead of a hardware 128-bit division.  Every fast path computes
// the mathematically identical residue in [0, m) — callers observe the
// same values bit for bit regardless of which path ran (the bit-identity
// contract of docs/ENGINE.md; pinned by tests/util/modular_test.cpp).
#pragma once

#include <cstdint>

namespace ds::util {

/// A fixed 61-bit prime (the Mersenne prime 2^61 - 1), comfortably above
/// every index space we hash, so a single field serves all default hash
/// families and fingerprints.
inline constexpr std::uint64_t kDefaultPrime = (std::uint64_t{1} << 61) - 1;

static_assert(kDefaultPrime < (std::uint64_t{1} << 62));

namespace detail {

/// Reduce a full 128-bit value mod 2^61 - 1.  Fold twice (each fold maps
/// x to (x mod 2^61) + floor(x / 2^61), preserving the residue because
/// 2^61 == 1 mod p), then one conditional subtract: after the second fold
/// the value is < 2^61 + 127 < 2p, so a single subtract lands in [0, p).
[[nodiscard]] inline std::uint64_t reduce128_m61(__uint128_t x) noexcept {
  x = (x & kDefaultPrime) + (x >> 61);  // < 2^67 + 2^61
  x = (x & kDefaultPrime) + (x >> 61);  // < 2^61 + 2^7
  auto r = static_cast<std::uint64_t>(x);
  return r >= kDefaultPrime ? r - kDefaultPrime : r;
}

/// Reduce a 64-bit value mod 2^61 - 1 (one fold suffices: the quotient
/// part is at most 7).
[[nodiscard]] inline std::uint64_t reduce64_m61(std::uint64_t x) noexcept {
  const std::uint64_t r = (x & kDefaultPrime) + (x >> 61);  // < p + 8
  return r >= kDefaultPrime ? r - kDefaultPrime : r;
}

}  // namespace detail

/// x mod m, with the Mersenne fast path for the default prime.
[[nodiscard]] inline std::uint64_t reduce_mod(std::uint64_t x,
                                              std::uint64_t m) noexcept {
  if (m == kDefaultPrime) return detail::reduce64_m61(x);
  return x % m;
}

/// (a * b) mod m without overflow, via 128-bit intermediate.
[[nodiscard]] inline std::uint64_t mul_mod(std::uint64_t a, std::uint64_t b,
                                           std::uint64_t m) noexcept {
  const __uint128_t prod = static_cast<__uint128_t>(a) * b;
  if (m == kDefaultPrime) return detail::reduce128_m61(prod);
  return static_cast<std::uint64_t>(prod % m);
}

/// (a + b) mod m; a, b must already be reduced.
[[nodiscard]] inline std::uint64_t add_mod(std::uint64_t a, std::uint64_t b,
                                           std::uint64_t m) noexcept {
  const std::uint64_t s = a + b;
  // a, b < m <= 2^63 in all our uses, but handle wrap defensively.
  return (s >= m || s < a) ? s - m : s;
}

/// (a - b) mod m; a, b must already be reduced.
[[nodiscard]] inline std::uint64_t sub_mod(std::uint64_t a, std::uint64_t b,
                                           std::uint64_t m) noexcept {
  return (a >= b) ? a - b : a + (m - b);
}

/// a^e mod m by square-and-multiply.
[[nodiscard]] inline std::uint64_t pow_mod(std::uint64_t a, std::uint64_t e,
                                           std::uint64_t m) noexcept {
  std::uint64_t result = 1 % m;
  a %= m;
  while (e > 0) {
    if (e & 1) result = mul_mod(result, a, m);
    a = mul_mod(a, a, m);
    e >>= 1;
  }
  return result;
}

/// Modular inverse of a mod prime p (a != 0 mod p), via Fermat.
[[nodiscard]] std::uint64_t inv_mod(std::uint64_t a, std::uint64_t p) noexcept;

/// Deterministic Miller-Rabin, exact for all 64-bit inputs.
[[nodiscard]] bool is_prime(std::uint64_t n) noexcept;

/// Smallest prime >= n (n <= 2^63 so the search cannot wrap).
[[nodiscard]] std::uint64_t next_prime(std::uint64_t n) noexcept;

}  // namespace ds::util
