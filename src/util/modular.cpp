#include "util/modular.h"

#include <cassert>
#include <initializer_list>

namespace ds::util {

std::uint64_t inv_mod(std::uint64_t a, std::uint64_t p) noexcept {
  assert(a % p != 0);
  return pow_mod(a % p, p - 2, p);
}

namespace {

bool miller_rabin_witness(std::uint64_t n, std::uint64_t a, std::uint64_t d,
                          int r) noexcept {
  std::uint64_t x = pow_mod(a, d, n);
  if (x == 1 || x == n - 1) return false;
  for (int i = 0; i < r - 1; ++i) {
    x = mul_mod(x, x, n);
    if (x == n - 1) return false;
  }
  return true;  // composite witness found
}

}  // namespace

bool is_prime(std::uint64_t n) noexcept {
  if (n < 2) return false;
  for (std::uint64_t p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL,
                          23ULL, 29ULL, 31ULL, 37ULL}) {
    if (n % p == 0) return n == p;
  }
  std::uint64_t d = n - 1;
  int r = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++r;
  }
  // This witness set is deterministic for all n < 2^64 (Sinclair).
  for (std::uint64_t a : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL,
                          23ULL, 29ULL, 31ULL, 37ULL}) {
    if (miller_rabin_witness(n, a, d, r)) return false;
  }
  return true;
}

std::uint64_t next_prime(std::uint64_t n) noexcept {
  assert(n <= (std::uint64_t{1} << 63));
  if (n <= 2) return 2;
  std::uint64_t candidate = n | 1;  // first odd >= n
  while (!is_prime(candidate)) candidate += 2;
  return candidate;
}

}  // namespace ds::util
