#include "util/rng.h"

#include <algorithm>
#include <cassert>

namespace ds::util {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t mix64(std::uint64_t a, std::uint64_t b) noexcept {
  std::uint64_t s = a ^ rotl(b, 31) ^ 0x2545f4914f6cdd1dULL;
  std::uint64_t x = splitmix64(s);
  return x ^ splitmix64(s);
}

std::uint64_t derive_seed(std::uint64_t master, std::uint64_t index) noexcept {
  // Two chained splitmix64 finalizers over (master, index); identical to
  // mix64 so pre-existing mix64(seed, trial) call sites keep their outputs.
  return mix64(master, index);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  assert(bound > 0);
  // Lemire's nearly-divisionless unbiased bounded sampling.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (l < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) noexcept {
  assert(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  // span == 0 means the full 64-bit range.
  const std::uint64_t draw = (span == 0) ? next() : next_below(span);
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) + draw);
}

double Rng::next_double() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::next_bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

Rng Rng::child(std::uint64_t tag) const noexcept {
  // Mix the full parent state with the tag; the parent state is read-only
  // here so splitting does not perturb the parent's sequence.
  std::uint64_t h = mix64(s_[0], tag);
  h = mix64(h, s_[1]);
  h = mix64(h, s_[2] ^ rotl(tag, 32));
  h = mix64(h, s_[3]);
  return Rng(h);
}

Rng Rng::child(std::uint64_t tag_hi, std::uint64_t tag_lo) const noexcept {
  return child(mix64(tag_hi, tag_lo));
}

std::vector<std::uint32_t> Rng::permutation(std::uint32_t n) {
  std::vector<std::uint32_t> perm(n);
  for (std::uint32_t i = 0; i < n; ++i) perm[i] = i;
  shuffle(std::span<std::uint32_t>(perm));
  return perm;
}

std::vector<std::uint64_t> Rng::sample_without_replacement(std::uint64_t n,
                                                           std::uint64_t k) {
  assert(k <= n);
  // Floyd's algorithm gives k distinct uniform samples in O(k) expected
  // inserts; we collect then sort for deterministic downstream iteration.
  std::vector<std::uint64_t> chosen;
  chosen.reserve(k);
  auto contains = [&chosen](std::uint64_t v) {
    for (std::uint64_t c : chosen)
      if (c == v) return true;
    return false;
  };
  for (std::uint64_t j = n - k; j < n; ++j) {
    std::uint64_t t = next_below(j + 1);
    if (contains(t)) t = j;
    chosen.push_back(t);
  }
  // Insertion into a vector makes `contains` O(k); for the k used in this
  // codebase (sketch sampling, <= a few thousand) this beats a hash set.
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

}  // namespace ds::util
