// Bit-exact message encoding.
//
// The communication cost of a sketching protocol is the worst-case length
// in *bits* of any player's message (Section 2.1 of the paper).  To keep
// that accounting honest, every sketch in this codebase is produced through
// a BitWriter and consumed through a BitReader: the harness charges exactly
// the number of bits written, not a byte- or word-rounded figure.
//
// Supported encodings:
//   * raw bits / fixed-width unsigned integers (LSB first),
//   * Elias gamma and delta codes for unbounded positive integers,
//   * length-prefixed spans of fixed-width values.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace ds::util {

/// Append-only bit buffer.
///
/// A writer can adopt previously-used word storage (keeping its heap
/// capacity) and release it again when the finished message is moved into
/// a BitString — the engine's sketch arena pools buffers this way so the
/// hot encode loop stops allocating per vertex (docs/ENGINE.md).
class BitWriter {
 public:
  BitWriter() = default;

  /// Adopt `storage` as the backing buffer: contents are discarded, heap
  /// capacity is kept, and the writer starts empty.
  explicit BitWriter(std::vector<std::uint64_t>&& storage) noexcept
      : words_(std::move(storage)) {
    words_.clear();
  }

  /// Discard all written bits but keep the allocated capacity.
  void clear() noexcept {
    words_.clear();
    bit_count_ = 0;
  }

  /// Move the word storage out (exactly ceil(bit_count()/64) entries),
  /// leaving the writer empty.  Capture bit_count() first if needed.
  [[nodiscard]] std::vector<std::uint64_t> take_words() noexcept {
    std::vector<std::uint64_t> out = std::move(words_);
    words_.clear();
    bit_count_ = 0;
    return out;
  }

  void put_bit(bool bit);

  /// Write the low `width` bits of `value`, LSB first. width in [0, 64].
  void put_bits(std::uint64_t value, unsigned width);

  /// Elias gamma code of `value` (requires value >= 1): unary length then
  /// binary remainder; 2*floor(log2 v) + 1 bits.
  void put_gamma(std::uint64_t value);

  /// Elias delta code of `value` (requires value >= 1): gamma-coded length
  /// then binary remainder; log v + O(log log v) bits.
  void put_delta(std::uint64_t value);

  /// Gamma-coded length followed by `width`-bit elements.
  void put_u32_span(std::span<const std::uint32_t> values, unsigned width);

  [[nodiscard]] std::size_t bit_count() const noexcept { return bit_count_; }
  [[nodiscard]] const std::vector<std::uint64_t>& words() const noexcept {
    return words_;
  }

 private:
  std::vector<std::uint64_t> words_;
  std::size_t bit_count_ = 0;
};

/// A finished, immutable message together with its exact bit length.
class BitString {
 public:
  BitString() = default;
  explicit BitString(const BitWriter& writer)
      : words_(writer.words()), bit_count_(writer.bit_count()) {}

  /// Steal the writer's storage instead of copying it; the writer is left
  /// empty.  Equality against a copy-constructed BitString is unaffected
  /// (vector operator== ignores capacity).
  explicit BitString(BitWriter&& writer) noexcept {
    bit_count_ = writer.bit_count();
    words_ = writer.take_words();
  }

  /// Adopt raw word storage with an explicit bit length; `words` must hold
  /// exactly ceil(bit_count/64) entries with unused high bits zero.
  BitString(std::vector<std::uint64_t>&& words,
            std::size_t bit_count) noexcept
      : words_(std::move(words)), bit_count_(bit_count) {}

  /// Move the word storage back out (for buffer pooling); the BitString
  /// becomes empty.
  [[nodiscard]] std::vector<std::uint64_t> release_words() noexcept {
    std::vector<std::uint64_t> out = std::move(words_);
    words_.clear();
    bit_count_ = 0;
    return out;
  }

  [[nodiscard]] std::size_t bit_count() const noexcept { return bit_count_; }
  [[nodiscard]] const std::vector<std::uint64_t>& words() const noexcept {
    return words_;
  }

 private:
  std::vector<std::uint64_t> words_;
  std::size_t bit_count_ = 0;
};

/// Sequential decoder over a BitString. Reading past the end is a
/// programming error and asserts in debug builds; in release it returns
/// zero bits (protocol decoders must therefore length-check via
/// `bits_remaining` when messages are adversarially truncated).
class BitReader {
 public:
  explicit BitReader(const BitString& bits) noexcept
      : words_(bits.words()), bit_count_(bits.bit_count()) {}
  // The reader holds a span into the BitString; a temporary would dangle.
  explicit BitReader(BitString&&) = delete;

  [[nodiscard]] bool get_bit();
  [[nodiscard]] std::uint64_t get_bits(unsigned width);
  [[nodiscard]] std::uint64_t get_gamma();
  [[nodiscard]] std::uint64_t get_delta();
  [[nodiscard]] std::vector<std::uint32_t> get_u32_span(unsigned width);

  [[nodiscard]] std::size_t position() const noexcept { return pos_; }
  [[nodiscard]] std::size_t bits_remaining() const noexcept {
    return bit_count_ - pos_;
  }

 private:
  std::span<const std::uint64_t> words_;
  std::size_t bit_count_ = 0;
  std::size_t pos_ = 0;
};

/// Number of bits needed to write values in [0, n) with put_bits, i.e.
/// ceil(log2 n); 0 for n <= 1.
[[nodiscard]] unsigned bit_width_for(std::uint64_t n) noexcept;

}  // namespace ds::util
