// Bit-exact message encoding.
//
// The communication cost of a sketching protocol is the worst-case length
// in *bits* of any player's message (Section 2.1 of the paper).  To keep
// that accounting honest, every sketch in this codebase is produced through
// a BitWriter and consumed through a BitReader: the harness charges exactly
// the number of bits written, not a byte- or word-rounded figure.
//
// Supported encodings:
//   * raw bits / fixed-width unsigned integers (LSB first),
//   * Elias gamma and delta codes for unbounded positive integers,
//   * length-prefixed spans of fixed-width values,
//   * zero runs and packed word spans (whole-64-bit-word fast paths).
//
// Hot-path contract (docs/ENGINE.md "hot path" section): the primitive
// put/get operations are inline and word-granular — an aligned cursor
// copies whole 64-bit words, an unaligned cursor takes one branch-light
// shift-pair step — and every fast path is bit-identical to a bit-at-a-
// time reference (tests/util/bitio_differential_test.cpp fuzzes random
// schedules through both).  Width boundaries are exact: width 0 writes or
// reads nothing, width 64 is fully supported (masks are computed as
// ~0 >> (64 - width), never 1 << width, so no shift-by-64 UB), and runs
// crossing word boundaries spill into the next word at any alignment
// (tests/util/bitio_boundary_test.cpp pins all of widths {0,1,63,64} x
// alignments 0..63).
#pragma once

#include <cassert>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace ds::util {

namespace detail {

/// All-ones in the low `width` bits; width must be in [1, 64] (the shift
/// count 64 - width stays in [0, 63], so width == 64 is well-defined —
/// the 1 << width formulation would be UB exactly there).
[[nodiscard]] constexpr std::uint64_t width_mask(unsigned width) noexcept {
  return ~std::uint64_t{0} >> (64u - width);
}

}  // namespace detail

/// Append-only bit buffer.
///
/// A writer can adopt previously-used word storage (keeping its heap
/// capacity) and release it again when the finished message is moved into
/// a BitString — the engine's sketch arena pools buffers this way so the
/// hot encode loop stops allocating per vertex (docs/ENGINE.md).
class BitWriter {
 public:
  BitWriter() = default;

  /// Adopt `storage` as the backing buffer: contents are discarded, heap
  /// capacity is kept, and the writer starts empty.
  explicit BitWriter(std::vector<std::uint64_t>&& storage) noexcept
      : words_(std::move(storage)) {
    words_.clear();
  }

  /// Discard all written bits but keep the allocated capacity.
  void clear() noexcept {
    words_.clear();
    bit_count_ = 0;
  }

  /// Move the word storage out (exactly ceil(bit_count()/64) entries),
  /// leaving the writer empty.  Capture bit_count() first if needed.
  [[nodiscard]] std::vector<std::uint64_t> take_words() noexcept {
    std::vector<std::uint64_t> out = std::move(words_);
    words_.clear();
    bit_count_ = 0;
    return out;
  }

  /// Pre-size the backing storage for an eventual total of `total_bits`
  /// bits (absolute, not incremental).  Purely a capacity hint: the
  /// written words and bit_count() are unaffected.
  void reserve_bits(std::size_t total_bits) {
    words_.reserve((total_bits + 63) >> 6);
  }

  void put_bit(bool bit) { put_bits(bit ? 1u : 0u, 1); }

  /// Write the low `width` bits of `value`, LSB first. width in [0, 64].
  void put_bits(std::uint64_t value, unsigned width) {
    assert(width <= 64);
    if (width == 0) return;
    value &= detail::width_mask(width);
    const unsigned offset = static_cast<unsigned>(bit_count_ & 63);
    if (offset == 0) {
      // Aligned: the value starts a fresh word.
      words_.push_back(value);
    } else {
      // Unaligned shift pair: low part into the open word, spill the rest.
      words_.back() |= value << offset;
      if (offset + width > 64) words_.push_back(value >> (64u - offset));
    }
    bit_count_ += width;
  }

  /// Append `count` zero bits.  Zero bits never disturb the open word, so
  /// this is a single resize regardless of alignment.
  void put_zeros(std::size_t count) {
    bit_count_ += count;
    words_.resize((bit_count_ + 63) >> 6, 0);
  }

  /// Append the low `nbits` bits of a packed LSB-first word buffer
  /// (requires nbits <= 64 * src.size(); bits of src beyond nbits are
  /// ignored).  Aligned cursors copy whole words; unaligned cursors take
  /// the shift-pair path per word.
  void put_words(std::span<const std::uint64_t> src, std::size_t nbits);

  /// Elias gamma code of `value` (requires value >= 1): unary length then
  /// binary remainder; 2*floor(log2 v) + 1 bits.
  void put_gamma(std::uint64_t value);

  /// Elias delta code of `value` (requires value >= 1): gamma-coded length
  /// then binary remainder; log v + O(log log v) bits.
  void put_delta(std::uint64_t value);

  /// Gamma-coded length followed by `width`-bit elements.
  void put_u32_span(std::span<const std::uint32_t> values, unsigned width);

  [[nodiscard]] std::size_t bit_count() const noexcept { return bit_count_; }
  [[nodiscard]] const std::vector<std::uint64_t>& words() const noexcept {
    return words_;
  }

 private:
  std::vector<std::uint64_t> words_;
  std::size_t bit_count_ = 0;
};

/// A finished, immutable message together with its exact bit length.
class BitString {
 public:
  BitString() = default;
  explicit BitString(const BitWriter& writer)
      : words_(writer.words()), bit_count_(writer.bit_count()) {}

  /// Steal the writer's storage instead of copying it; the writer is left
  /// empty.  Equality against a copy-constructed BitString is unaffected
  /// (vector operator== ignores capacity).
  explicit BitString(BitWriter&& writer) noexcept {
    bit_count_ = writer.bit_count();
    words_ = writer.take_words();
  }

  /// Adopt raw word storage with an explicit bit length; `words` must hold
  /// exactly ceil(bit_count/64) entries with unused high bits zero.
  BitString(std::vector<std::uint64_t>&& words,
            std::size_t bit_count) noexcept
      : words_(std::move(words)), bit_count_(bit_count) {}

  /// Move the word storage back out (for buffer pooling); the BitString
  /// becomes empty.
  [[nodiscard]] std::vector<std::uint64_t> release_words() noexcept {
    std::vector<std::uint64_t> out = std::move(words_);
    words_.clear();
    bit_count_ = 0;
    return out;
  }

  [[nodiscard]] std::size_t bit_count() const noexcept { return bit_count_; }
  [[nodiscard]] const std::vector<std::uint64_t>& words() const noexcept {
    return words_;
  }

 private:
  std::vector<std::uint64_t> words_;
  std::size_t bit_count_ = 0;
};

/// Sequential decoder over a BitString. Reading past the end is a
/// programming error and asserts in debug builds; in release it returns
/// zero bits (protocol decoders must therefore length-check via
/// `bits_remaining` when messages are adversarially truncated).
class BitReader {
 public:
  explicit BitReader(const BitString& bits) noexcept
      : words_(bits.words()), bit_count_(bits.bit_count()) {}
  // The reader holds a span into the BitString; a temporary would dangle.
  explicit BitReader(BitString&&) = delete;

  [[nodiscard]] bool get_bit() { return get_bits(1) != 0; }

  [[nodiscard]] std::uint64_t get_bits(unsigned width) {
    assert(width <= 64);
    if (width == 0) return 0;
    assert(pos_ + width <= bit_count_);
    if (pos_ + width > bit_count_) return 0;
    const std::size_t word_index = pos_ >> 6;
    const unsigned offset = static_cast<unsigned>(pos_ & 63);
    std::uint64_t value = words_[word_index] >> offset;
    // Unaligned reads spanning a boundary pull the high part from the
    // next word (which exists: pos_ + width <= bit_count_ bounds it).
    if (offset + width > 64) value |= words_[word_index + 1] << (64u - offset);
    value &= detail::width_mask(width);
    pos_ += width;
    return value;
  }

  /// Read `nbits` bits into a packed LSB-first word buffer (the inverse
  /// of BitWriter::put_words; requires nbits <= 64 * out.size()).  Unused
  /// high bits of the last touched word are zeroed; words beyond the last
  /// touched one are left untouched.
  void get_words(std::span<std::uint64_t> out, std::size_t nbits);

  [[nodiscard]] std::uint64_t get_gamma();
  [[nodiscard]] std::uint64_t get_delta();
  [[nodiscard]] std::vector<std::uint32_t> get_u32_span(unsigned width);

  [[nodiscard]] std::size_t position() const noexcept { return pos_; }
  [[nodiscard]] std::size_t bits_remaining() const noexcept {
    return bit_count_ - pos_;
  }

 private:
  std::span<const std::uint64_t> words_;
  std::size_t bit_count_ = 0;
  std::size_t pos_ = 0;
};

/// Number of bits needed to write values in [0, n) with put_bits, i.e.
/// ceil(log2 n); 0 for n <= 1.  Exact at powers of two: values in
/// [0, 2^k) need k bits, while writing the value 2^k itself (i.e. n =
/// 2^k + 1) needs k + 1 (tests/util/bitio_boundary_test.cpp pins the
/// 2^k +- 1 ladder up to 2^63).
[[nodiscard]] unsigned bit_width_for(std::uint64_t n) noexcept;

}  // namespace ds::util
