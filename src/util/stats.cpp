#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace ds::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

Interval wilson_interval(std::size_t successes, std::size_t trials) noexcept {
  if (trials == 0) return {0.0, 1.0};
  constexpr double z = 1.959963984540054;  // 97.5th percentile of N(0,1)
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = p + z2 / (2.0 * n);
  const double margin = z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
  return {std::max(0.0, (center - margin) / denom),
          std::min(1.0, (center + margin) / denom)};
}

double chernoff_lower_tail(double mu, double delta) noexcept {
  if (mu <= 0.0 || delta <= 0.0) return 1.0;
  if (delta >= 1.0) delta = 1.0;
  return std::exp(-delta * delta * mu / 2.0);
}

}  // namespace ds::util
