#include "wire/frame.h"

#include <cassert>

namespace ds::wire {

std::string_view decode_status_name(DecodeStatus s) noexcept {
  switch (s) {
    case DecodeStatus::kOk: return "ok";
    case DecodeStatus::kNeedMoreData: return "need-more-data";
    case DecodeStatus::kBadMagic: return "bad-magic";
    case DecodeStatus::kBadVersion: return "bad-version";
    case DecodeStatus::kMalformed: return "malformed";
    case DecodeStatus::kBadCrc: return "bad-crc";
  }
  return "unknown";
}

std::uint32_t protocol_id(std::string_view name) noexcept {
  std::uint32_t h = 0x811C9DC5u;  // FNV-1a offset basis
  for (const char c : name) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x01000193u;
  }
  return h;
}

namespace {

constexpr std::size_t payload_byte_count(std::uint64_t bits) noexcept {
  return static_cast<std::size_t>((bits + 7) / 8);
}

/// Byte i of the wire payload holds BitString bits [8i, 8i+8), LSB first —
/// the same order BitWriter packs its 64-bit words.
std::uint8_t payload_byte(const util::BitString& payload,
                          std::size_t i) noexcept {
  const std::uint64_t word = payload.words()[i / 8];
  return static_cast<std::uint8_t>(word >> (8 * (i % 8)));
}

}  // namespace

std::size_t encoded_frame_size(const FrameHeader& header,
                               std::size_t payload_bits) noexcept {
  return 2  // magic + version
         + varint_size(static_cast<std::uint64_t>(header.type)) +
         varint_size(header.protocol_id) + varint_size(header.vertex) +
         varint_size(header.round) + varint_size(payload_bits) +
         payload_byte_count(payload_bits) + 4;  // CRC trailer
}

std::size_t encode_frame(const FrameHeader& header,
                         const util::BitString& payload,
                         std::vector<std::uint8_t>& out) {
  const std::size_t payload_bits = payload.bit_count();
  assert(payload_bits <= kMaxPayloadBits);
  const std::size_t start = out.size();

  ByteWriter w;
  w.put_u8(kFrameMagic);
  w.put_u8(kWireVersion);
  w.put_varint(static_cast<std::uint64_t>(header.type));
  w.put_varint(header.protocol_id);
  w.put_varint(header.vertex);
  w.put_varint(header.round);
  w.put_varint(payload_bits);
  const std::size_t payload_bytes = payload_byte_count(payload_bits);
  // Whole words serialize as 8 little-endian bytes at a time (byte i is
  // bits [8i, 8i+8) LSB first, so word w is bytes [8w, 8w+8) in order);
  // the tail falls back to the per-byte extractor.
  std::size_t i = 0;
  for (; i + 8 <= payload_bytes; i += 8) {
    const std::uint64_t word = payload.words()[i / 8];
    std::uint8_t chunk[8];
    for (unsigned b = 0; b < 8; ++b) {
      chunk[b] = static_cast<std::uint8_t>(word >> (8 * b));
    }
    w.put_bytes(chunk);
  }
  for (; i < payload_bytes; ++i) {
    w.put_u8(payload_byte(payload, i));
  }
  w.put_u32_le(crc32(w.bytes()));

  const std::vector<std::uint8_t> frame = std::move(w).take();
  out.insert(out.end(), frame.begin(), frame.end());
  return (out.size() - start) * 8 - payload_bits;
}

DecodeStatus decode_frame(std::span<const std::uint8_t> bytes, Frame& frame,
                          std::size_t& consumed) {
  consumed = 0;
  ByteReader r(bytes);

  const std::optional<std::uint8_t> magic = r.get_u8();
  if (!magic) return DecodeStatus::kNeedMoreData;
  if (*magic != kFrameMagic) {
    consumed = 1;
    return DecodeStatus::kBadMagic;
  }
  const std::optional<std::uint8_t> version = r.get_u8();
  if (!version) return DecodeStatus::kNeedMoreData;
  if (*version != kWireVersion) {
    consumed = 2;
    return DecodeStatus::kBadVersion;
  }

  // Header varints.  A truncated varint at end-of-buffer is a short read;
  // an overlong one mid-buffer is malformed.
  const auto read_field = [&](std::uint64_t& out_value,
                              DecodeStatus& status) {
    const std::optional<std::uint64_t> v = r.get_varint();
    if (v) {
      out_value = *v;
      return true;
    }
    status = r.remaining() == 0 ? DecodeStatus::kNeedMoreData
                                : DecodeStatus::kMalformed;
    consumed = status == DecodeStatus::kMalformed ? r.position() : 0;
    return false;
  };

  std::uint64_t type_raw = 0;
  std::uint64_t proto = 0;
  std::uint64_t vertex = 0;
  std::uint64_t round = 0;
  std::uint64_t payload_bits = 0;
  DecodeStatus status = DecodeStatus::kOk;
  if (!read_field(type_raw, status) || !read_field(proto, status) ||
      !read_field(vertex, status) || !read_field(round, status) ||
      !read_field(payload_bits, status)) {
    return status;
  }

  if (type_raw < static_cast<std::uint64_t>(FrameType::kSketch) ||
      type_raw > static_cast<std::uint64_t>(FrameType::kResult) ||
      proto > 0xFFFFFFFFu || vertex > 0xFFFFFFFFu || round > 0xFFFFFFFFu ||
      payload_bits > kMaxPayloadBits) {
    consumed = r.position();
    return DecodeStatus::kMalformed;
  }

  const std::size_t payload_bytes = payload_byte_count(payload_bits);
  const std::optional<std::span<const std::uint8_t>> payload =
      r.get_bytes(payload_bytes);
  if (!payload) return DecodeStatus::kNeedMoreData;

  // Nonzero padding bits in the final byte are corrupt: the frame would
  // carry information the bit accounting does not charge.
  if (const unsigned tail_bits = static_cast<unsigned>(payload_bits % 8);
      tail_bits != 0) {
    const std::uint8_t last = (*payload)[payload_bytes - 1];
    if ((last >> tail_bits) != 0) {
      consumed = r.position();
      return DecodeStatus::kMalformed;
    }
  }

  const std::size_t crc_start = r.position();
  const std::optional<std::uint32_t> stated_crc = r.get_u32_le();
  if (!stated_crc) return DecodeStatus::kNeedMoreData;
  const std::uint32_t actual_crc = crc32(bytes.subspan(0, crc_start));
  if (actual_crc != *stated_crc) {
    consumed = r.position();
    return DecodeStatus::kBadCrc;
  }

  // Reassemble the BitString through the public BitWriter API so the
  // result is bit-for-bit what the encoder charged.  Eight wire bytes
  // form one LSB-first 64-bit word (the inverse of the encoder's word
  // serialization), so full words go through put_bits(word, 64) — a
  // word-aligned append — and only the tail pays per-byte costs.
  util::BitWriter w;
  std::size_t pi = 0;
  for (; (pi + 8) * 8 <= payload_bits; pi += 8) {
    std::uint64_t word = 0;
    for (unsigned b = 0; b < 8; ++b) {
      word |= static_cast<std::uint64_t>((*payload)[pi + b]) << (8 * b);
    }
    w.put_bits(word, 64);
  }
  for (; pi < payload_bytes; ++pi) {
    const unsigned width = static_cast<unsigned>(
        payload_bits - 8 * pi >= 8 ? 8 : payload_bits - 8 * pi);
    w.put_bits((*payload)[pi], width);
  }
  frame.header.type = static_cast<FrameType>(type_raw);
  frame.header.protocol_id = static_cast<std::uint32_t>(proto);
  frame.header.vertex = static_cast<std::uint32_t>(vertex);
  frame.header.round = static_cast<std::uint32_t>(round);
  frame.payload = util::BitString(w);
  consumed = r.position();
  return DecodeStatus::kOk;
}

BatchDecode decode_frames(std::span<const std::uint8_t> bytes) {
  BatchDecode batch;
  std::size_t offset = 0;
  while (offset < bytes.size()) {
    Frame frame;
    std::size_t consumed = 0;
    const DecodeStatus status =
        decode_frame(bytes.subspan(offset), frame, consumed);
    if (status != DecodeStatus::kOk) {
      batch.status = status;
      batch.rest_offset = offset;
      return batch;
    }
    batch.frames.push_back(std::move(frame));
    offset += consumed;
  }
  batch.rest_offset = offset;
  return batch;
}

}  // namespace ds::wire
