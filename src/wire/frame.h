// The sketch frame: the canonical on-the-wire form of one model message.
//
// A frame carries exactly one util::BitString — a player's sketch going up
// to the referee, or a referee broadcast/result coming back down — plus
// enough header to route and verify it:
//
//   magic      1 byte   0xD5
//   version    1 byte   kWireVersion
//   type       varint   FrameType
//   protocol   varint   protocol_id (FNV-1a over the protocol's name())
//   vertex     varint   sender's vertex id; 0 for referee frames
//   round      varint   adaptive round index; 0 for one-round protocols
//   bits       varint   payload length in BITS (exact, not byte-rounded)
//   payload    ceil(bits/8) bytes, bit i of the BitString in byte i/8 at
//              bit position i%8 (LSB first); final-byte padding must be 0
//   crc32      4 bytes LE, over every preceding byte including the magic
//
// Frames are self-delimiting: the header says exactly how many payload
// bytes follow, so a batch of frames can be concatenated into one
// transport message and peeled off one at a time.
//
// Accounting contract (docs/WIRE.md): `payload bits` is the model cost —
// it must match util::BitWriter::bit_count() and hence CommStats bit for
// bit.  Everything else (header, byte-rounding padding, CRC) is framing
// overhead, tracked separately and never charged to the model.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/bitio.h"
#include "wire/bytes.h"

namespace ds::wire {

inline constexpr std::uint8_t kFrameMagic = 0xD5;
inline constexpr std::uint8_t kWireVersion = 1;

/// Largest payload a decoder will accept: 1 GiB of sketch bits.  A corrupt
/// or hostile length varint must not drive a huge allocation.
inline constexpr std::uint64_t kMaxPayloadBits = std::uint64_t{1} << 33;

enum class FrameType : std::uint8_t {
  kSketch = 1,     // player -> referee: one vertex's sketch for a round
  kBroadcast = 2,  // referee -> players: adaptive inter-round broadcast
  kResult = 3,     // referee -> players: the protocol's decoded output
};

struct FrameHeader {
  FrameType type = FrameType::kSketch;
  std::uint32_t protocol_id = 0;
  std::uint32_t vertex = 0;
  std::uint32_t round = 0;

  friend bool operator==(const FrameHeader&, const FrameHeader&) = default;
};

struct Frame {
  FrameHeader header;
  util::BitString payload;
};

enum class DecodeStatus : std::uint8_t {
  kOk,
  kNeedMoreData,  // the buffer ends mid-frame (short read; not an error
                  // for stream transports — wait for more bytes)
  kBadMagic,      // first byte is not kFrameMagic
  kBadVersion,
  kMalformed,     // varint overlong/oversized field, or nonzero padding
  kBadCrc,
};

[[nodiscard]] std::string_view decode_status_name(DecodeStatus s) noexcept;

/// Stable 32-bit id for a protocol name (FNV-1a).  Both sides derive it
/// from SketchingProtocol::name(), so a player running the wrong protocol
/// is rejected at the frame level.
[[nodiscard]] std::uint32_t protocol_id(std::string_view name) noexcept;

/// Serialize one frame, appending to `out`.  Returns the number of
/// framing bits added (total frame bits minus payload.bit_count()).
std::size_t encode_frame(const FrameHeader& header,
                         const util::BitString& payload,
                         std::vector<std::uint8_t>& out);

/// Exact encoded size in bytes of a frame with this header and payload.
[[nodiscard]] std::size_t encoded_frame_size(
    const FrameHeader& header, std::size_t payload_bits) noexcept;

/// Decode one frame from the front of `bytes`.  On kOk, `frame` holds the
/// result and `consumed` the frame's byte length; on kNeedMoreData nothing
/// is consumed; on any error, `consumed` is the number of bytes to skip
/// (>= 1) so a resynchronizing caller can make progress.
[[nodiscard]] DecodeStatus decode_frame(std::span<const std::uint8_t> bytes,
                                        Frame& frame, std::size_t& consumed);

/// Decode a batch of concatenated frames.  Stops at the first error and
/// reports it (kOk if the whole buffer decoded cleanly); frames decoded
/// before the error are kept.  A trailing partial frame yields
/// kNeedMoreData with `rest` pointing at its first byte.
struct BatchDecode {
  std::vector<Frame> frames;
  DecodeStatus status = DecodeStatus::kOk;
  std::size_t rest_offset = 0;  // offset of the first undecoded byte
};
[[nodiscard]] BatchDecode decode_frames(std::span<const std::uint8_t> bytes);

}  // namespace ds::wire
