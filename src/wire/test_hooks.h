// Syscall interposition points for the TCP transport, so the
// failure-injection tests (tests/wire/failure_injection_test.cpp) can
// produce EINTR mid-recv, EINTR mid-send, partial writes, and hard
// poll() failures deterministically — no timer signals, no flaky timing.
//
// Production code never sets these; when unset (the default) the
// transport calls the real ::poll/::recv/::send through one relaxed
// atomic load.  Hooks are process-global: set them only from
// single-session tests and reset() in teardown.
#pragma once

#include <poll.h>
#include <sys/types.h>

#include <cstddef>

namespace ds::wire::testhooks {

using PollFn = int (*)(pollfd* fds, nfds_t nfds, int timeout_ms);
using RecvFn = ssize_t (*)(int fd, void* buf, std::size_t len, int flags);
using SendFn = ssize_t (*)(int fd, const void* buf, std::size_t len,
                           int flags);

/// Replace the transport's poll/recv/send; nullptr restores the real
/// syscall.  The hook sees exactly the arguments the transport would
/// have passed and must honor the same errno contract.
void set_poll(PollFn fn) noexcept;
void set_recv(RecvFn fn) noexcept;
void set_send(SendFn fn) noexcept;

/// The currently installed hook (nullptr when unset).  The epoll event
/// loop (src/evloop/) routes its recv/send through the same hooks as the
/// blocking transport, so one injection harness drives both paths.
[[nodiscard]] PollFn poll_hook() noexcept;
[[nodiscard]] RecvFn recv_hook() noexcept;
[[nodiscard]] SendFn send_hook() noexcept;

/// Restore all three to the real syscalls.
void reset() noexcept;

}  // namespace ds::wire::testhooks
