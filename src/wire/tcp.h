// TCP transport: the referee-service deployment shape.
//
// Each Link message is sent as a 4-byte little-endian length prefix
// followed by the body (a batch of self-delimiting frames).  The prefix is
// transport framing only — it exists so a stream socket can recover whole
// messages — and is charged to transport bytes, never to the model's bit
// accounting.
//
// Failure handling (exercised by tests/wire/transport_test.cpp and
// tests/wire/failure_injection_test.cpp; the full cause -> RecvStatus ->
// counter table is in docs/WIRE.md):
//   * recv enforces a deadline via poll(); expiry -> kTimeout, with any
//     partially received message kept pending so short polling slices
//     (the referee's round-robin) can drain a large batch across calls,
//   * a poll() hard failure or POLLNVAL (a dead fd) -> kError — never
//     kTimeout, so the session loop abandons the link instead of
//     spinning on it until the round deadline,
//   * a peer closing at a message boundary -> kClosed,
//   * EOF mid-prefix or mid-body (a short read) -> kError,
//   * a length prefix above kMaxMessageBytes -> kError without allocating,
//   * send loops over partial writes and suppresses SIGPIPE; a send that
//     fails mid-message latches the link broken (the peer is stranded
//     mid-frame), so every later send/recv fails fast instead of
//     desyncing the framing with a fresh length prefix.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "wire/transport.h"

namespace ds::wire {

/// Hard cap on one message body; a corrupt prefix must not OOM the
/// referee. 64 MiB >> any sketch batch in this codebase.
inline constexpr std::uint32_t kMaxMessageBytes = 64u << 20;

/// Listening socket on 127.0.0.1 (port 0 = kernel-assigned; read the
/// chosen one back from port()).
class TcpListener {
 public:
  explicit TcpListener(std::uint16_t port = 0);
  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Next inbound connection, or nullptr if none arrived in time.
  [[nodiscard]] std::unique_ptr<Link> accept(
      std::chrono::milliseconds timeout);

  /// Next inbound connection as a raw fd (ownership passes to the
  /// caller), or -1 if none arrived in time.  The sharded referee adopts
  /// accepted fds straight into a wire::EventLoop instead of wrapping
  /// them in a blocking Link.
  [[nodiscard]] int accept_fd(std::chrono::milliseconds timeout);

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Connect to a referee at host:port (numeric IPv4, e.g. "127.0.0.1").
/// Throws WireError on failure.
[[nodiscard]] std::unique_ptr<Link> tcp_connect(
    const std::string& host, std::uint16_t port,
    std::chrono::milliseconds timeout);

/// Wrap an already-connected stream socket (ownership of `fd` passes to
/// the Link, which closes it on destruction).  Exists for the
/// failure-injection tests — socketpair() gives a deterministic peer —
/// and for embedders that do their own connection establishment.
[[nodiscard]] std::unique_ptr<Link> tcp_adopt_fd(int fd);

}  // namespace ds::wire
