#include "wire/bytes.h"

#include <array>

namespace ds::wire {

void ByteWriter::put_varint(std::uint64_t value) {
  while (value >= 0x80) {
    bytes_.push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  bytes_.push_back(static_cast<std::uint8_t>(value));
}

void ByteWriter::put_u32_le(std::uint32_t value) {
  bytes_.push_back(static_cast<std::uint8_t>(value));
  bytes_.push_back(static_cast<std::uint8_t>(value >> 8));
  bytes_.push_back(static_cast<std::uint8_t>(value >> 16));
  bytes_.push_back(static_cast<std::uint8_t>(value >> 24));
}

void ByteWriter::put_bytes(std::span<const std::uint8_t> bytes) {
  bytes_.insert(bytes_.end(), bytes.begin(), bytes.end());
}

std::optional<std::uint8_t> ByteReader::get_u8() {
  if (pos_ >= bytes_.size()) return std::nullopt;
  return bytes_[pos_++];
}

std::optional<std::uint64_t> ByteReader::get_varint() {
  std::uint64_t value = 0;
  unsigned shift = 0;
  for (unsigned i = 0; i < 10; ++i) {
    const std::optional<std::uint8_t> byte = get_u8();
    if (!byte) return std::nullopt;
    const std::uint64_t payload = *byte & 0x7F;
    // The 10th byte may only contribute the final value bit (64 = 9*7 + 1).
    if (shift == 63 && payload > 1) return std::nullopt;
    value |= payload << shift;
    if ((*byte & 0x80) == 0) return value;
    shift += 7;
  }
  return std::nullopt;  // continuation bit set on the 10th byte
}

std::optional<std::uint32_t> ByteReader::get_u32_le() {
  if (remaining() < 4) return std::nullopt;
  std::uint32_t value = 0;
  for (unsigned i = 0; i < 4; ++i) {
    value |= static_cast<std::uint32_t>(bytes_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  return value;
}

std::optional<std::span<const std::uint8_t>> ByteReader::get_bytes(
    std::size_t count) {
  if (remaining() < count) return std::nullopt;
  const std::span<const std::uint8_t> view = bytes_.subspan(pos_, count);
  pos_ += count;
  return view;
}

std::size_t varint_size(std::uint64_t value) noexcept {
  std::size_t size = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++size;
  }
  return size;
}

namespace {

std::array<std::uint32_t, 256> make_crc_table() noexcept {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> bytes,
                    std::uint32_t seed) noexcept {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t crc = seed ^ 0xFFFFFFFFu;
  for (const std::uint8_t byte : bytes) {
    crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace ds::wire
