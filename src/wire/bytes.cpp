#include "wire/bytes.h"

#include <array>

namespace ds::wire {

void ByteWriter::put_varint(std::uint64_t value) {
  while (value >= 0x80) {
    bytes_.push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  bytes_.push_back(static_cast<std::uint8_t>(value));
}

void ByteWriter::put_u32_le(std::uint32_t value) {
  bytes_.push_back(static_cast<std::uint8_t>(value));
  bytes_.push_back(static_cast<std::uint8_t>(value >> 8));
  bytes_.push_back(static_cast<std::uint8_t>(value >> 16));
  bytes_.push_back(static_cast<std::uint8_t>(value >> 24));
}

void ByteWriter::put_bytes(std::span<const std::uint8_t> bytes) {
  bytes_.insert(bytes_.end(), bytes.begin(), bytes.end());
}

std::optional<std::uint8_t> ByteReader::get_u8() {
  if (pos_ >= bytes_.size()) return std::nullopt;
  return bytes_[pos_++];
}

std::optional<std::uint64_t> ByteReader::get_varint() {
  std::uint64_t value = 0;
  unsigned shift = 0;
  for (unsigned i = 0; i < 10; ++i) {
    const std::optional<std::uint8_t> byte = get_u8();
    if (!byte) return std::nullopt;
    const std::uint64_t payload = *byte & 0x7F;
    // The 10th byte may only contribute the final value bit (64 = 9*7 + 1).
    if (shift == 63 && payload > 1) return std::nullopt;
    value |= payload << shift;
    if ((*byte & 0x80) == 0) return value;
    shift += 7;
  }
  return std::nullopt;  // continuation bit set on the 10th byte
}

std::optional<std::uint32_t> ByteReader::get_u32_le() {
  if (remaining() < 4) return std::nullopt;
  std::uint32_t value = 0;
  for (unsigned i = 0; i < 4; ++i) {
    value |= static_cast<std::uint32_t>(bytes_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  return value;
}

std::optional<std::span<const std::uint8_t>> ByteReader::get_bytes(
    std::size_t count) {
  if (remaining() < count) return std::nullopt;
  const std::span<const std::uint8_t> view = bytes_.subspan(pos_, count);
  pos_ += count;
  return view;
}

std::size_t varint_size(std::uint64_t value) noexcept {
  std::size_t size = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++size;
  }
  return size;
}

namespace {

// Slice-by-8 CRC-32: table[0] is the classic byte-at-a-time table and
// the sole source of truth for the polynomial; table[k][b] extends a
// byte b by k additional zero bytes, letting the hot loop fold eight
// input bytes per iteration.  Same polynomial (0xEDB88320, reflected),
// same values as the old bytewise loop — sketch frames on disk and on
// the wire are unaffected.
std::array<std::array<std::uint32_t, 256>, 8> make_crc_tables() noexcept {
  std::array<std::array<std::uint32_t, 256>, 8> tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    tables[0][i] = c;
  }
  for (std::size_t k = 1; k < 8; ++k) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      const std::uint32_t prev = tables[k - 1][i];
      tables[k][i] = tables[0][prev & 0xFF] ^ (prev >> 8);
    }
  }
  return tables;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> bytes,
                    std::uint32_t seed) noexcept {
  static const std::array<std::array<std::uint32_t, 256>, 8> tables =
      make_crc_tables();
  std::uint32_t crc = seed ^ 0xFFFFFFFFu;
  std::size_t i = 0;
  for (; i + 8 <= bytes.size(); i += 8) {
    const std::uint32_t low = crc ^ (static_cast<std::uint32_t>(bytes[i]) |
                                     static_cast<std::uint32_t>(bytes[i + 1])
                                         << 8 |
                                     static_cast<std::uint32_t>(bytes[i + 2])
                                         << 16 |
                                     static_cast<std::uint32_t>(bytes[i + 3])
                                         << 24);
    crc = tables[7][low & 0xFF] ^ tables[6][(low >> 8) & 0xFF] ^
          tables[5][(low >> 16) & 0xFF] ^ tables[4][low >> 24] ^
          tables[3][bytes[i + 4]] ^ tables[2][bytes[i + 5]] ^
          tables[1][bytes[i + 6]] ^ tables[0][bytes[i + 7]];
  }
  for (; i < bytes.size(); ++i) {
    crc = tables[0][(crc ^ bytes[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace ds::wire
