// In-process transport: a pair of Links joined by two bounded-ish queues.
//
// Loopback exists so the referee service, the audit cross-check, and the
// benches can run the full frame path — encode, batch, "send", decode,
// verify — with zero sockets and zero flakiness, and so the TCP transport
// has a behavioral twin to be tested against.  Both ends are thread-safe;
// a typical test runs players on one thread and the referee on another
// (or both on one thread, since send never blocks).
#pragma once

#include <memory>

#include "wire/transport.h"

namespace ds::wire {

struct LoopbackPair {
  std::unique_ptr<Link> referee_side;  // the end the referee polls
  std::unique_ptr<Link> player_side;   // the end the player drives
};

/// A connected pair: bytes sent on one end arrive on the other, in order.
/// Destroying either end closes the link (the survivor sees kClosed after
/// draining).
[[nodiscard]] LoopbackPair make_loopback_pair();

}  // namespace ds::wire
