// Message transports for the wire layer.
//
// A Link moves opaque byte messages between two endpoints; each message is
// a batch of one or more self-delimiting frames (wire/frame.h).  Two
// implementations share this interface:
//
//   * loopback (wire/loopback.h) — an in-process queue pair, for tests,
//     benches, and the byte-accounting audit;
//   * TCP (wire/tcp.h) — length-prefixed messages over a socket, the
//     referee-service deployment shape.
//
// Contract: send() delivers the whole message or reports failure; recv()
// returns whole messages in order.  Timeouts, peer shutdown, and transport
// corruption are distinct outcomes (RecvStatus) because the referee
// treats them differently: a timeout is retried until the round deadline,
// a closed link stops being polled, an error is reported and the link
// abandoned.
#pragma once

#include <chrono>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace ds::wire {

/// Failure anywhere in the transport layer (socket setup, bind, connect).
class WireError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class RecvStatus : std::uint8_t {
  kOk,       // message holds one whole message
  kTimeout,  // no complete message within the deadline (partial data, if
             // any, stays pending for the next recv)
  kClosed,   // peer shut down cleanly at a message boundary
  kError,    // short read mid-message, oversized length, or socket error
};

struct RecvResult {
  RecvStatus status = RecvStatus::kTimeout;
  std::vector<std::uint8_t> message;
};

class Link {
 public:
  virtual ~Link() = default;
  Link() = default;
  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Deliver one message; false if the peer is gone.
  virtual bool send(std::span<const std::uint8_t> message) = 0;

  /// Next whole message, waiting at most `timeout`.
  [[nodiscard]] virtual RecvResult recv(std::chrono::milliseconds timeout) = 0;

  /// Bytes this link has put on (and accepted from) the wire, including
  /// any transport-level prefixes — the outermost layer of the
  /// accounting story in docs/WIRE.md.
  [[nodiscard]] virtual std::size_t bytes_sent() const noexcept = 0;
  [[nodiscard]] virtual std::size_t bytes_received() const noexcept = 0;
};

}  // namespace ds::wire
