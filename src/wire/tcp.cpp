#include "wire/tcp.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>

#include "obs/obs.h"
#include "wire/test_hooks.h"

namespace ds::wire {

namespace {

using Clock = std::chrono::steady_clock;

// -------------------------------------------------------------------
// Test hooks: unset (the default) routes straight to the real syscall.
// -------------------------------------------------------------------
std::atomic<testhooks::PollFn> g_poll_hook{nullptr};
std::atomic<testhooks::RecvFn> g_recv_hook{nullptr};
std::atomic<testhooks::SendFn> g_send_hook{nullptr};

int sys_poll(pollfd* fds, nfds_t nfds, int timeout_ms) {
  const testhooks::PollFn fn = g_poll_hook.load(std::memory_order_relaxed);
  return fn != nullptr ? fn(fds, nfds, timeout_ms)
                       : ::poll(fds, nfds, timeout_ms);
}

ssize_t sys_recv(int fd, void* buf, std::size_t len, int flags) {
  const testhooks::RecvFn fn = g_recv_hook.load(std::memory_order_relaxed);
  return fn != nullptr ? fn(fd, buf, len, flags)
                       : ::recv(fd, buf, len, flags);
}

ssize_t sys_send(int fd, const void* buf, std::size_t len, int flags) {
  const testhooks::SendFn fn = g_send_hook.load(std::memory_order_relaxed);
  return fn != nullptr ? fn(fd, buf, len, flags)
                       : ::send(fd, buf, len, flags);
}

// -------------------------------------------------------------------
// Failure-mode and throughput counters (docs/OBSERVABILITY.md; the
// cause -> RecvStatus -> counter table lives in docs/WIRE.md).
// -------------------------------------------------------------------
struct TcpMetrics {
  obs::Counter& messages_sent = obs::counter("wire.tcp.messages_sent");
  obs::Counter& messages_received =
      obs::counter("wire.tcp.messages_received");
  obs::Counter& bytes_sent = obs::counter("wire.tcp.bytes_sent");
  obs::Counter& bytes_received = obs::counter("wire.tcp.bytes_received");
  obs::Histogram& message_bytes = obs::histogram("wire.tcp.message_bytes");
  obs::Counter& recv_timeouts = obs::counter("wire.tcp.recv_timeouts");
  obs::Counter& poll_errors = obs::counter("wire.tcp.poll_errors");
  obs::Counter& clean_closes = obs::counter("wire.tcp.clean_closes");
  obs::Counter& short_reads = obs::counter("wire.tcp.short_reads");
  obs::Counter& oversized_prefix =
      obs::counter("wire.tcp.oversized_prefix");
  obs::Counter& recv_errors = obs::counter("wire.tcp.recv_errors");
  obs::Counter& send_failures = obs::counter("wire.tcp.send_failures");
  obs::Counter& broken_reuse = obs::counter("wire.tcp.broken_reuse");
  obs::Counter& eintr_retries = obs::counter("wire.tcp.eintr_retries");
  obs::Counter& partial_writes = obs::counter("wire.tcp.partial_writes");
  obs::Counter& accepts = obs::counter("wire.tcp.accepts");
  obs::Counter& connects = obs::counter("wire.tcp.connects");
};

TcpMetrics& metrics() {
  static TcpMetrics m;
  return m;
}

[[noreturn]] void throw_errno(const std::string& what) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): glibc strerror uses a
  // thread-local buffer, and strerror_r's two signatures (GNU vs POSIX)
  // are not portably selectable at this standard level.
  throw WireError(what + ": " + std::strerror(errno));
}

std::chrono::milliseconds time_left(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  return left.count() > 0 ? left : std::chrono::milliseconds(0);
}

/// Deadline expiry and a failed poll() are different events and must
/// stay distinguishable: collapsing them (the pre-fix bug) made the
/// session loop spin on a dead fd until the round deadline, reporting
/// kTimeout the whole way.
enum class PollOutcome : std::uint8_t { kReady, kTimeout, kError };

/// Wait until fd is readable, the deadline expires, or poll itself
/// fails.  POLLNVAL (a bad fd) is an error; POLLERR/POLLHUP report
/// kReady so the subsequent recv() can surface the precise condition.
PollOutcome poll_readable(int fd, Clock::time_point deadline) {
  for (;;) {
    pollfd pfd{fd, POLLIN, 0};
    const auto left = time_left(deadline);
    const int rc = sys_poll(&pfd, 1, static_cast<int>(left.count()));
    if (rc > 0) {
      if ((pfd.revents & POLLNVAL) != 0) {
        metrics().poll_errors.increment();
        return PollOutcome::kError;
      }
      return PollOutcome::kReady;
    }
    if (rc == 0) return PollOutcome::kTimeout;
    if (errno == EINTR) {
      metrics().eintr_retries.increment();
      continue;
    }
    metrics().poll_errors.increment();
    return PollOutcome::kError;
  }
}

class TcpLink final : public Link {
 public:
  explicit TcpLink(int fd) : fd_(fd) {
    const int one = 1;
    // Sketch rounds are latency-bound request/response exchanges; never
    // let Nagle hold a round's final partial segment.
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }

  ~TcpLink() override {
    if (fd_ >= 0) ::close(fd_);
  }

  bool send(std::span<const std::uint8_t> message) override {
    // A partial write leaves the peer mid-frame with no way to find the
    // next boundary; the link is latched broken so a retried send fails
    // fast instead of writing a fresh length prefix into the middle of
    // the half-sent frame and silently desyncing the stream.
    if (broken_) {
      metrics().broken_reuse.increment();
      return false;
    }
    if (message.size() > kMaxMessageBytes) return false;
    std::uint8_t prefix[4];
    const auto len = static_cast<std::uint32_t>(message.size());
    prefix[0] = static_cast<std::uint8_t>(len);
    prefix[1] = static_cast<std::uint8_t>(len >> 8);
    prefix[2] = static_cast<std::uint8_t>(len >> 16);
    prefix[3] = static_cast<std::uint8_t>(len >> 24);
    // MSG_MORE corks the 4-byte prefix with the body: one wire segment
    // per message instead of a tiny prefix packet followed by the batch.
    if (!send_all(prefix, sizeof(prefix), MSG_MORE) ||
        !send_all(message.data(), message.size())) {
      broken_ = true;
      metrics().send_failures.increment();
      return false;
    }
    sent_ += sizeof(prefix) + message.size();
    metrics().messages_sent.increment();
    metrics().bytes_sent.add(sizeof(prefix) + message.size());
    metrics().message_bytes.record(message.size());
    return true;
  }

  // Partial progress survives across recv() calls: a caller polling with
  // short timeout slices (the referee's round-robin collect loop) must be
  // able to drain a message larger than one slice delivers.  Only EOF or
  // a socket error mid-message is unrecoverable — the boundary is lost.
  RecvResult recv(std::chrono::milliseconds timeout) override {
    if (broken_) {
      metrics().broken_reuse.increment();
      return {RecvStatus::kError, {}};
    }
    const Clock::time_point deadline = Clock::now() + timeout;

    if (prefix_done_ < sizeof(prefix_)) {
      const ReadOutcome head =
          fill(prefix_, sizeof(prefix_), prefix_done_, deadline);
      if (head == ReadOutcome::kTimeout) {
        metrics().recv_timeouts.increment();
        return {RecvStatus::kTimeout, {}};
      }
      if (head == ReadOutcome::kEof) {
        // EOF before any byte of a message is a clean close; EOF with a
        // partial prefix is a short read.
        if (prefix_done_ == 0) {
          metrics().clean_closes.increment();
          return {RecvStatus::kClosed, {}};
        }
        broken_ = true;
        metrics().short_reads.increment();
        return {RecvStatus::kError, {}};
      }
      if (head == ReadOutcome::kError) {
        broken_ = true;
        return {RecvStatus::kError, {}};
      }
    }
    if (!have_len_) {
      const std::uint32_t len = static_cast<std::uint32_t>(prefix_[0]) |
                                static_cast<std::uint32_t>(prefix_[1]) << 8 |
                                static_cast<std::uint32_t>(prefix_[2]) << 16 |
                                static_cast<std::uint32_t>(prefix_[3]) << 24;
      if (len > kMaxMessageBytes) {  // reject before allocating
        broken_ = true;
        metrics().oversized_prefix.increment();
        return {RecvStatus::kError, {}};
      }
      body_.assign(len, 0);
      body_done_ = 0;
      have_len_ = true;
    }
    if (body_done_ < body_.size()) {
      const ReadOutcome outcome =
          fill(body_.data(), body_.size(), body_done_, deadline);
      if (outcome == ReadOutcome::kTimeout) {
        metrics().recv_timeouts.increment();
        return {RecvStatus::kTimeout, {}};
      }
      if (outcome != ReadOutcome::kDone) {  // EOF or error mid-message
        broken_ = true;
        if (outcome == ReadOutcome::kEof) metrics().short_reads.increment();
        return {RecvStatus::kError, {}};
      }
    }
    received_ += sizeof(prefix_) + body_.size();
    metrics().messages_received.increment();
    metrics().bytes_received.add(sizeof(prefix_) + body_.size());
    RecvResult result{RecvStatus::kOk, std::move(body_)};
    prefix_done_ = 0;
    have_len_ = false;
    body_ = {};
    body_done_ = 0;
    return result;
  }

  [[nodiscard]] std::size_t bytes_sent() const noexcept override {
    return sent_;
  }
  [[nodiscard]] std::size_t bytes_received() const noexcept override {
    return received_;
  }

 private:
  enum class ReadOutcome : std::uint8_t { kDone, kTimeout, kEof, kError };

  bool send_all(const std::uint8_t* data, std::size_t size, int flags = 0) {
    std::size_t done = 0;
    while (done < size) {
      const ssize_t n =
          sys_send(fd_, data + done, size - done, MSG_NOSIGNAL | flags);
      if (n < 0) {
        if (errno == EINTR) {
          metrics().eintr_retries.increment();
          continue;
        }
        return false;
      }
      if (static_cast<std::size_t>(n) < size - done) {
        metrics().partial_writes.increment();
      }
      done += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// Advance `done` toward `size` until complete or `deadline`.  On
  /// kTimeout the progress made so far is kept (in `done`) for the next
  /// call; kEof/kError report the socket's state.
  ReadOutcome fill(std::uint8_t* data, std::size_t size, std::size_t& done,
                   Clock::time_point deadline) {
    while (done < size) {
      const PollOutcome ready = poll_readable(fd_, deadline);
      if (ready == PollOutcome::kTimeout) return ReadOutcome::kTimeout;
      if (ready == PollOutcome::kError) return ReadOutcome::kError;
      const ssize_t n = sys_recv(fd_, data + done, size - done, 0);
      if (n == 0) return ReadOutcome::kEof;
      if (n < 0) {
        if (errno == EINTR) {
          metrics().eintr_retries.increment();
          continue;
        }
        if (errno == EAGAIN) continue;
        metrics().recv_errors.increment();
        return ReadOutcome::kError;
      }
      done += static_cast<std::size_t>(n);
    }
    return ReadOutcome::kDone;
  }

  int fd_;
  std::size_t sent_ = 0;
  std::size_t received_ = 0;

  // In-flight message state, preserved across recv() timeouts.
  std::uint8_t prefix_[4] = {};
  std::size_t prefix_done_ = 0;
  bool have_len_ = false;
  std::vector<std::uint8_t> body_;
  std::size_t body_done_ = 0;
  bool broken_ = false;
};

}  // namespace

namespace testhooks {

void set_poll(PollFn fn) noexcept {
  g_poll_hook.store(fn, std::memory_order_relaxed);
}
void set_recv(RecvFn fn) noexcept {
  g_recv_hook.store(fn, std::memory_order_relaxed);
}
void set_send(SendFn fn) noexcept {
  g_send_hook.store(fn, std::memory_order_relaxed);
}
PollFn poll_hook() noexcept {
  return g_poll_hook.load(std::memory_order_relaxed);
}
RecvFn recv_hook() noexcept {
  return g_recv_hook.load(std::memory_order_relaxed);
}
SendFn send_hook() noexcept {
  return g_send_hook.load(std::memory_order_relaxed);
}

void reset() noexcept {
  set_poll(nullptr);
  set_recv(nullptr);
  set_send(nullptr);
}

}  // namespace testhooks

TcpListener::TcpListener(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(fd_);
    fd_ = -1;
    throw_errno("bind");
  }
  if (::listen(fd_, SOMAXCONN) < 0) {
    ::close(fd_);
    fd_ = -1;
    throw_errno("listen");
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len) <
      0) {
    ::close(fd_);
    fd_ = -1;
    throw_errno("getsockname");
  }
  port_ = ntohs(bound.sin_port);
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) ::close(fd_);
}

std::unique_ptr<Link> TcpListener::accept(std::chrono::milliseconds timeout) {
  const int client = accept_fd(timeout);
  if (client < 0) return nullptr;
  return std::make_unique<TcpLink>(client);
}

int TcpListener::accept_fd(std::chrono::milliseconds timeout) {
  const Clock::time_point deadline = Clock::now() + timeout;
  if (poll_readable(fd_, deadline) != PollOutcome::kReady) return -1;
  const int client = ::accept(fd_, nullptr, nullptr);
  if (client < 0) return -1;
  metrics().accepts.increment();
  return client;
}

std::unique_ptr<Link> tcp_adopt_fd(int fd) {
  return std::make_unique<TcpLink>(fd);
}

std::unique_ptr<Link> tcp_connect(const std::string& host, std::uint16_t port,
                                  std::chrono::milliseconds timeout) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw WireError("tcp_connect: bad IPv4 address '" + host + "'");
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");

  // Non-blocking connect so the timeout is honored.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  const int rc =
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  if (rc < 0 && errno != EINPROGRESS) {
    ::close(fd);
    throw_errno("connect");
  }
  if (rc < 0) {
    pollfd pfd{fd, POLLOUT, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(timeout.count()));
    int err = 0;
    socklen_t err_len = sizeof(err);
    if (ready <= 0 ||
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) < 0 ||
        err != 0) {
      ::close(fd);
      throw WireError("tcp_connect: connection to " + host + " failed");
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  metrics().connects.increment();
  return std::make_unique<TcpLink>(fd);
}

}  // namespace ds::wire
