#include "wire/loopback.h"

#include <condition_variable>
#include <deque>
#include <mutex>

#include "obs/obs.h"

namespace ds::wire {

namespace {

struct LoopbackMetrics {
  obs::Counter& messages_sent = obs::counter("wire.loopback.messages_sent");
  obs::Counter& messages_received =
      obs::counter("wire.loopback.messages_received");
  obs::Counter& bytes_sent = obs::counter("wire.loopback.bytes_sent");
  obs::Counter& bytes_received =
      obs::counter("wire.loopback.bytes_received");
  obs::Histogram& message_bytes =
      obs::histogram("wire.loopback.message_bytes");
  obs::Counter& recv_timeouts = obs::counter("wire.loopback.recv_timeouts");
  obs::Counter& clean_closes = obs::counter("wire.loopback.clean_closes");
  obs::Counter& send_failures = obs::counter("wire.loopback.send_failures");
};

LoopbackMetrics& metrics() {
  static LoopbackMetrics m;
  return m;
}

/// One direction of the pair: a queue of whole messages.
struct Channel {
  std::mutex mutex;
  std::condition_variable ready;
  std::deque<std::vector<std::uint8_t>> queue;
  bool closed = false;

  void push(std::span<const std::uint8_t> message) {
    {
      const std::lock_guard<std::mutex> lock(mutex);
      queue.emplace_back(message.begin(), message.end());
    }
    ready.notify_one();
  }

  void close() {
    {
      const std::lock_guard<std::mutex> lock(mutex);
      closed = true;
    }
    ready.notify_all();
  }

  RecvResult pop(std::chrono::milliseconds timeout) {
    std::unique_lock<std::mutex> lock(mutex);
    ready.wait_for(lock, timeout,
                   [this] { return !queue.empty() || closed; });
    if (!queue.empty()) {
      RecvResult result{RecvStatus::kOk, std::move(queue.front())};
      queue.pop_front();
      return result;
    }
    return {closed ? RecvStatus::kClosed : RecvStatus::kTimeout, {}};
  }

  [[nodiscard]] bool is_closed() {
    const std::lock_guard<std::mutex> lock(mutex);
    return closed;
  }
};

struct Shared {
  Channel to_referee;
  Channel to_player;
};

class LoopbackLink final : public Link {
 public:
  LoopbackLink(std::shared_ptr<Shared> shared, Channel* out, Channel* in)
      : shared_(std::move(shared)), out_(out), in_(in) {}

  ~LoopbackLink() override {
    // Closing our outbound side lets the peer drain and then see kClosed;
    // closing inbound unblocks any concurrent recv.
    out_->close();
    in_->close();
  }

  bool send(std::span<const std::uint8_t> message) override {
    if (out_->is_closed()) {
      metrics().send_failures.increment();
      return false;
    }
    out_->push(message);
    sent_ += message.size();
    metrics().messages_sent.increment();
    metrics().bytes_sent.add(message.size());
    metrics().message_bytes.record(message.size());
    return true;
  }

  RecvResult recv(std::chrono::milliseconds timeout) override {
    RecvResult result = in_->pop(timeout);
    if (result.status == RecvStatus::kOk) {
      received_ += result.message.size();
      metrics().messages_received.increment();
      metrics().bytes_received.add(result.message.size());
    } else if (result.status == RecvStatus::kTimeout) {
      metrics().recv_timeouts.increment();
    } else if (result.status == RecvStatus::kClosed) {
      metrics().clean_closes.increment();
    }
    return result;
  }

  [[nodiscard]] std::size_t bytes_sent() const noexcept override {
    return sent_;
  }
  [[nodiscard]] std::size_t bytes_received() const noexcept override {
    return received_;
  }

 private:
  std::shared_ptr<Shared> shared_;  // keeps both channels alive
  Channel* out_;
  Channel* in_;
  std::size_t sent_ = 0;
  std::size_t received_ = 0;
};

}  // namespace

LoopbackPair make_loopback_pair() {
  auto shared = std::make_shared<Shared>();
  LoopbackPair pair;
  pair.referee_side = std::make_unique<LoopbackLink>(
      shared, &shared->to_player, &shared->to_referee);
  pair.player_side = std::make_unique<LoopbackLink>(
      shared, &shared->to_referee, &shared->to_player);
  return pair;
}

}  // namespace ds::wire
