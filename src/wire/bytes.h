// Byte-level primitives for the wire layer: an append-only byte buffer,
// LEB128 varints, and CRC-32.
//
// The sketching model's cost measure is bits (util/bitio); the wire layer
// moves those bits between real processes and therefore needs a byte
// vocabulary of its own.  Everything here is *framing* — it is charged to
// WireStats::framing_bits and never to the model's CommStats, so the
// paper-faithful accounting in model/protocol.h is untouched by transport
// concerns (see docs/WIRE.md for the accounting contract).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace ds::wire {

/// Append-only byte buffer with varint support.
class ByteWriter {
 public:
  void put_u8(std::uint8_t value) { bytes_.push_back(value); }

  /// Unsigned LEB128: 7 value bits per byte, high bit = continuation.
  void put_varint(std::uint64_t value);

  /// Fixed 32-bit little-endian (used for the CRC trailer).
  void put_u32_le(std::uint32_t value);

  void put_bytes(std::span<const std::uint8_t> bytes);

  [[nodiscard]] std::size_t size() const noexcept { return bytes_.size(); }
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept {
    return bytes_;
  }
  [[nodiscard]] std::vector<std::uint8_t> take() && {
    return std::move(bytes_);
  }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Sequential decoder over a byte span.  All getters return nullopt on
/// truncation instead of asserting: wire input is adversarial by
/// definition and must never crash the referee.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> bytes) noexcept
      : bytes_(bytes) {}

  [[nodiscard]] std::optional<std::uint8_t> get_u8();

  /// Unsigned LEB128; rejects encodings longer than 10 bytes or with
  /// value bits beyond 64.
  [[nodiscard]] std::optional<std::uint64_t> get_varint();

  [[nodiscard]] std::optional<std::uint32_t> get_u32_le();

  /// View of the next `count` bytes, advancing past them.
  [[nodiscard]] std::optional<std::span<const std::uint8_t>> get_bytes(
      std::size_t count);

  [[nodiscard]] std::size_t position() const noexcept { return pos_; }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return bytes_.size() - pos_;
  }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

/// Number of bytes put_varint uses for `value` (1..10).
[[nodiscard]] std::size_t varint_size(std::uint64_t value) noexcept;

/// CRC-32 (IEEE 802.3 polynomial, reflected), the checksum in every frame
/// trailer.  Implemented locally so the wire layer adds no dependencies.
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> bytes,
                                  std::uint32_t seed = 0) noexcept;

}  // namespace ds::wire
