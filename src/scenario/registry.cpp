#include "scenario/registry.h"

#include <algorithm>
#include <mutex>
#include <stdexcept>

namespace ds::scenario {

namespace {

struct Registry {
  std::mutex mu;
  std::vector<std::unique_ptr<Scenario>> scenarios;
};

Registry& registry() {
  static Registry r;
  return r;
}

void ensure_builtins() {
  static std::once_flag once;
  std::call_once(once, [] { detail::register_builtins(); });
}

/// Classic Levenshtein distance, O(|a| * |b|); ids are short.
std::size_t edit_distance(std::string_view a, std::string_view b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diag = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t up = row[j];
      const std::size_t subst = diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, subst});
      diag = up;
    }
  }
  return row[b.size()];
}

}  // namespace

void register_scenario(std::unique_ptr<Scenario> scenario) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  for (const auto& existing : r.scenarios) {
    if (existing->id() == scenario->id()) {
      throw std::logic_error("scenario id registered twice: " +
                             std::string(scenario->id()));
    }
  }
  r.scenarios.push_back(std::move(scenario));
}

std::vector<const Scenario*> all() {
  ensure_builtins();
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  std::vector<const Scenario*> out;
  out.reserve(r.scenarios.size());
  for (const auto& s : r.scenarios) out.push_back(s.get());
  std::sort(out.begin(), out.end(),
            [](const Scenario* a, const Scenario* b) {
              return a->id() < b->id();
            });
  return out;
}

const Scenario* find(std::string_view id) {
  ensure_builtins();
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  for (const auto& s : r.scenarios) {
    if (s->id() == id) return s.get();
  }
  return nullptr;
}

std::vector<std::string> ids() {
  std::vector<std::string> out;
  for (const Scenario* s : all()) out.emplace_back(s->id());
  return out;
}

std::optional<std::string> suggest(std::string_view id) {
  std::optional<std::string> best;
  std::size_t best_distance = 0;
  for (const Scenario* s : all()) {
    const std::size_t d = edit_distance(id, s->id());
    if (!best.has_value() || d < best_distance) {
      best = std::string(s->id());
      best_distance = d;
    }
  }
  return best;
}

}  // namespace ds::scenario
