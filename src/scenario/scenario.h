// First-class instance families: a Scenario bundles a seeded instance
// sampler (graph + any hidden witness, e.g. D_MM's planted j*/sigma), a
// budget-parameterized protocol factory, a success predicate, and a
// default parameter grid, behind one string id.
//
// This is the input-side twin of PR 5's execution seam: the sweep
// harness (core/sweep.h), the wire service (tools/distsketch_service
// --scenario), and the benches all consume `const Scenario&`, so a new
// input distribution registers once (src/scenario/builtin.cpp — the
// lint-enforced single registration site) and every harness picks it up
// with zero per-scenario plumbing.
//
// Determinism contract (docs/SCENARIOS.md):
//   * sample(trial_seed) is a pure function of the seed — the sweep
//     derives trial_seed = derive_seed(sweep_seed, trial) counter-style,
//     so trial i's instance never depends on thread schedule;
//   * public coins are always PublicCoins(derive_seed(trial_seed,
//     kCoinTag)) — the same keying on the referee, the player, and the
//     simulated runner, which is what makes sim == wire bit-exact;
//   * num_vertices() is seed-independent: wire players shard [0, n)
//     before ever seeing an instance.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "graph/graph.h"
#include "model/coins.h"
#include "util/rng.h"

namespace ds::engine {
class SketchArena;
}
namespace ds::parallel {
class ThreadPool;
}
namespace ds::service {
class RefereeService;
}
namespace ds::wire {
class Link;
}

namespace ds::scenario {

/// A sampled instance: the graph the players see plus whatever hidden
/// structure the judge needs (type-erased; scenarios that plant a
/// witness — D_MM's j*/sigma, the true component count — stash it here).
struct Instance {
  graph::Graph g;
  std::shared_ptr<const void> witness;
};

/// Typed view of the witness.  The caller asserts the scenario that
/// produced `inst` stores a W (each scenario documents its witness type).
template <typename W>
[[nodiscard]] const W& witness_as(const Instance& inst) {
  return *static_cast<const W*>(inst.witness.get());
}

/// One protocol execution, scenario-scored.  `output_hash` fingerprints
/// the encoded output (OutputCodec bits), so sim and wire runs can be
/// compared without knowing the output type.
struct TrialOutcome {
  bool success = false;
  std::size_t max_bits = 0;  // realized worst player message
  std::uint64_t output_hash = 0;
};

/// A scenario's default sweep configuration: the budgets/trials/seed a
/// caller gets when it asks for "the" threshold curve of this family.
struct Grid {
  std::vector<std::size_t> budgets;
  std::size_t trials = 16;
  std::uint64_t seed = 7;
  double target_rate = 0.9;
};

/// A geometric budget ladder: lo, lo*factor, ... capped at hi
/// (inclusive).  core::geometric_budgets forwards here.
[[nodiscard]] std::vector<std::size_t> geometric_ladder(std::size_t lo,
                                                        std::size_t hi,
                                                        double factor = 2.0);

/// The one coin-derivation tag: every harness (sweep, wire referee, wire
/// player) keys a trial's public coins as derive_seed(trial_seed,
/// kCoinTag), so identical seeds mean identical coins on every path.
inline constexpr std::uint64_t kCoinTag = 0xC01;

[[nodiscard]] inline model::PublicCoins trial_coins(
    std::uint64_t trial_seed) {
  return model::PublicCoins(util::derive_seed(trial_seed, kCoinTag));
}

/// FNV-1a folding over 64-bit values — the output-hash and golden-sweep
/// fingerprint primitive (stable across platforms; tests pin values).
inline constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;
[[nodiscard]] constexpr std::uint64_t fnv_fold(std::uint64_t h,
                                               std::uint64_t v) noexcept {
  h ^= v;
  return h * kFnvPrime;
}

/// An instance family the harnesses can run by id.  Implementations
/// subclass TypedScenario<Output> (scenario/typed.h), which derives the
/// three execution paths below from sample/make_protocol/judge.
class Scenario {
 public:
  virtual ~Scenario() = default;

  [[nodiscard]] virtual std::string_view id() const noexcept = 0;
  [[nodiscard]] virtual std::string_view description() const noexcept = 0;
  [[nodiscard]] virtual const Grid& default_grid() const noexcept = 0;

  /// Seed-independent vertex count of every sampled instance.
  [[nodiscard]] virtual graph::Vertex num_vertices() const noexcept = 0;

  /// Draw the instance for `trial_seed` (pure function of the seed).
  [[nodiscard]] virtual Instance sample(std::uint64_t trial_seed) const = 0;

  /// Simulated path: sample, run the protocol in-process (null pool =
  /// the global one; an optional arena pools encode buffers across
  /// trials), judge the output.
  [[nodiscard]] virtual TrialOutcome run_trial(
      std::size_t budget_bits, std::uint64_t trial_seed,
      parallel::ThreadPool* pool = nullptr,
      engine::SketchArena* arena = nullptr) const = 0;

  /// Wire referee path: collect this trial's sketches from the service's
  /// links, decode, judge.  Bit accounting and output match run_trial on
  /// the same (budget, trial_seed) — the scenario-smoke contract.
  [[nodiscard]] virtual TrialOutcome serve_trial(
      service::RefereeService& referee, std::size_t budget_bits,
      std::uint64_t trial_seed) const = 0;

  /// Wire player path: sample the same instance locally, send sketches
  /// for `owned` vertices, await the result; returns its output hash.
  [[nodiscard]] virtual std::uint64_t play_trial(
      wire::Link& link, std::span<const graph::Vertex> owned,
      std::size_t budget_bits, std::uint64_t trial_seed,
      std::chrono::milliseconds timeout) const = 0;
};

/// Metric hooks whose obs registrations live in src/scenario/scenario.cpp
/// (the single "scenario." owner per obs_owners.toml).
void note_trial_run();   // scenario.trials
void note_wire_trial();  // scenario.wire_trials

}  // namespace ds::scenario
