// Built-in scenario implementations and THE registration site: all
// register_scenario calls in the tree live in register_builtins below
// (distsketch-lint's scenario-registry rule rejects calls anywhere else).
#include "scenario/builtin.h"

#include <algorithm>
#include <sstream>

#include "graph/connectivity.h"
#include "graph/independent_set.h"
#include "graph/matching.h"
#include "lowerbound/mis_reduction.h"
#include "protocols/sampled_matching.h"
#include "protocols/sampled_mis.h"
#include "protocols/zoo.h"
#include "scenario/registry.h"
#include "sketch/agm.h"
#include "util/bitio.h"

namespace ds::scenario {

namespace {

/// Shared by both maximal-matching judges; equivalent to
/// core::score_matching(g, m).maximal without a core dependency
/// (scenario sits below core in the layering DAG).
bool maximal_matching_judge(const graph::Graph& g,
                            std::span<const graph::Edge> m) {
  return graph::is_matching(m, g.num_vertices()) &&
         graph::is_valid_matching(g, m) && graph::is_maximal_matching(g, m);
}

}  // namespace

// --------------------------------------------------------------- D_MM MM

DmmMatchingScenario::DmmMatchingScenario(std::uint64_t m)
    : base_(rs::rs_graph(m)),
      params_(lowerbound::dmm_parameters(base_, base_.t())) {
  const unsigned width = util::bit_width_for(params_.n);
  const std::size_t cap =
      static_cast<std::size_t>(params_.k * params_.r) * width;
  grid_ = {geometric_ladder(width, cap, 4.0), /*trials=*/24, /*seed=*/7,
           /*target_rate=*/0.9};
  description_ = "maximal matching on the Section 3.1 hard distribution "
                 "D_MM (n=" +
                 std::to_string(params_.n) +
                 ", k=" + std::to_string(params_.k) +
                 ", r=" + std::to_string(params_.r) +
                 ") vs the budgeted edge-report family";
}

Instance DmmMatchingScenario::sample(std::uint64_t trial_seed) const {
  util::Rng rng(trial_seed);
  auto inst = std::make_shared<lowerbound::DmmInstance>(
      lowerbound::sample_dmm(base_, params_.t, rng));
  graph::Graph g = inst->g;
  return {std::move(g), std::move(inst)};
}

std::unique_ptr<model::SketchingProtocol<model::MatchingOutput>>
DmmMatchingScenario::make_protocol(std::size_t budget_bits) const {
  return std::make_unique<protocols::BudgetedMatching>(budget_bits);
}

bool DmmMatchingScenario::judge(const Instance& inst,
                                const model::MatchingOutput& m) const {
  return maximal_matching_judge(inst.g, m);
}

// ------------------------------------------------------ D_MM via MIS (S4)

DmmMisReductionScenario::DmmMisReductionScenario(std::uint64_t m)
    : base_(rs::rs_graph(m)),
      params_(lowerbound::dmm_parameters(base_, base_.t())) {
  const graph::Vertex h_n = 2 * params_.n;
  const unsigned width = util::bit_width_for(h_n);
  const std::size_t cap =
      2 * static_cast<std::size_t>(params_.k * params_.r) * width;
  grid_ = {geometric_ladder(width, cap, 4.0), /*trials=*/16, /*seed=*/7,
           /*target_rate=*/0.9};
  description_ = "the Section 4 reduction: budgeted MIS on H (2n=" +
                 std::to_string(h_n) +
                 " vertices), decoded back to a D_MM matching and scored "
                 "by Remark 3.6";
}

Instance DmmMisReductionScenario::sample(std::uint64_t trial_seed) const {
  util::Rng rng(trial_seed);
  auto inst = std::make_shared<lowerbound::DmmInstance>(
      lowerbound::sample_dmm(base_, params_.t, rng));
  graph::Graph h = lowerbound::build_reduction_graph(*inst);
  return {std::move(h), std::move(inst)};
}

std::unique_ptr<model::SketchingProtocol<model::VertexSetOutput>>
DmmMisReductionScenario::make_protocol(std::size_t budget_bits) const {
  return std::make_unique<protocols::BudgetedMis>(budget_bits);
}

bool DmmMisReductionScenario::judge(const Instance& inst,
                                    const model::VertexSetOutput& s) const {
  const auto& dmm = witness_as<lowerbound::DmmInstance>(inst);
  const graph::Matching m = lowerbound::decode_matching_from_mis(dmm, s);
  if (!graph::is_matching(m, dmm.params.n)) return false;
  if (!graph::is_valid_matching(dmm.g, m)) return false;
  return lowerbound::count_unique_unique(dmm, m) >=
         dmm.params.claim31_threshold();
}

// ------------------------------------------------------------ G(n,p) MM

GnpMatchingScenario::GnpMatchingScenario(graph::Vertex n, double p)
    : n_(n), p_(p) {
  grid_ = {{1, 64, 2048}, /*trials=*/16, /*seed=*/7, /*target_rate=*/0.99};
  std::ostringstream desc;
  desc << "maximal matching on G(" << n << ", " << p
       << ") vs the budgeted edge-report family (smoke-scale)";
  description_ = desc.str();
}

Instance GnpMatchingScenario::sample(std::uint64_t trial_seed) const {
  util::Rng rng(trial_seed);
  return {graph::gnp(n_, p_, rng), nullptr};
}

std::unique_ptr<model::SketchingProtocol<model::MatchingOutput>>
GnpMatchingScenario::make_protocol(std::size_t budget_bits) const {
  return std::make_unique<protocols::BudgetedMatching>(budget_bits);
}

bool GnpMatchingScenario::judge(const Instance& inst,
                                const model::MatchingOutput& m) const {
  return maximal_matching_judge(inst.g, m);
}

// -------------------------------------------------- connectivity-yu-hard

ConnectivityYuHardScenario::ConnectivityYuHardScenario(graph::Vertex levels,
                                                       graph::Vertex width)
    : levels_(levels), width_(width) {
  const graph::Vertex n = levels_ * width_;
  // One Boruvka round's sketch cost is shape-deterministic: probe it once
  // with throwaway coins.  The budget buys floor(budget / per_round)
  // rounds, capped at the Boruvka default.
  per_round_bits_ =
      sketch::AgmVertexSketch::make(model::PublicCoins(0x9A0), n,
                                    /*rounds=*/1)
          .state_bits();
  max_rounds_ = sketch::agm_default_rounds(n);
  grid_ = {geometric_ladder(per_round_bits_, per_round_bits_ * max_rounds_,
                            2.0),
           /*trials=*/12, /*seed=*/7, /*target_rate=*/0.9};
  description_ = "exact component counting on Yu's layered hard shape "
                 "(arXiv 2007.12323; " +
                 std::to_string(levels_) + " levels x " +
                 std::to_string(width_) +
                 ", p=1/2 survival) vs AGM connectivity; budget buys "
                 "Boruvka rounds at " +
                 std::to_string(per_round_bits_) + " bits each";
}

Instance ConnectivityYuHardScenario::sample(std::uint64_t trial_seed) const {
  util::Rng rng(trial_seed);
  graph::LayeredInstance layered =
      graph::layered_paths(levels_, width_, /*keep_prob=*/0.5, rng);
  auto witness = std::make_shared<std::uint32_t>(
      graph::connected_components(layered.graph).count);
  return {std::move(layered.graph), std::move(witness)};
}

std::unique_ptr<model::SketchingProtocol<std::uint32_t>>
ConnectivityYuHardScenario::make_protocol(std::size_t budget_bits) const {
  const std::size_t affordable =
      per_round_bits_ == 0 ? 1 : budget_bits / per_round_bits_;
  const unsigned rounds = static_cast<unsigned>(
      std::clamp<std::size_t>(affordable, 1, max_rounds_));
  return std::make_unique<protocols::AgmConnectivity>(rounds);
}

bool ConnectivityYuHardScenario::judge(const Instance& inst,
                                       const std::uint32_t& components) const {
  return components == witness_as<std::uint32_t>(inst);
}

// --------------------------------------------------------------- easy-cc

EasyCcScenario::EasyCcScenario(graph::Vertex clusters,
                               graph::Vertex cluster_size, double keep_prob)
    : clusters_(clusters), cluster_size_(cluster_size),
      keep_prob_(keep_prob) {
  grid_ = {geometric_ladder(4, 1024, 4.0), /*trials=*/16, /*seed=*/7,
           /*target_rate=*/0.9};
  description_ = "maximal matching on the easy structured class (arXiv "
                 "2502.21031): " +
                 std::to_string(clusters_) + " disjoint clusters of " +
                 std::to_string(cluster_size_) +
                 " — the budget-collapse contrast to dmm-matching";
}

Instance EasyCcScenario::sample(std::uint64_t trial_seed) const {
  util::Rng rng(trial_seed);
  return {graph::cluster_graph(clusters_, cluster_size_, keep_prob_, rng),
          nullptr};
}

std::unique_ptr<model::SketchingProtocol<model::MatchingOutput>>
EasyCcScenario::make_protocol(std::size_t budget_bits) const {
  return std::make_unique<protocols::BudgetedMatching>(budget_bits);
}

bool EasyCcScenario::judge(const Instance& inst,
                           const model::MatchingOutput& m) const {
  return maximal_matching_judge(inst.g, m);
}

// ----------------------------------------------------------- easy-cc-mis

EasyCcMisScenario::EasyCcMisScenario(graph::Vertex clusters,
                                     graph::Vertex cluster_size,
                                     double keep_prob)
    : clusters_(clusters), cluster_size_(cluster_size),
      keep_prob_(keep_prob) {
  grid_ = {geometric_ladder(4, 1024, 4.0), /*trials=*/16, /*seed=*/7,
           /*target_rate=*/0.9};
  description_ = "MIS on the same easy cluster class as easy-cc, judged "
                 "for independence + maximality";
}

Instance EasyCcMisScenario::sample(std::uint64_t trial_seed) const {
  util::Rng rng(trial_seed);
  return {graph::cluster_graph(clusters_, cluster_size_, keep_prob_, rng),
          nullptr};
}

std::unique_ptr<model::SketchingProtocol<model::VertexSetOutput>>
EasyCcMisScenario::make_protocol(std::size_t budget_bits) const {
  return std::make_unique<protocols::BudgetedMis>(budget_bits);
}

bool EasyCcMisScenario::judge(const Instance& inst,
                              const model::VertexSetOutput& s) const {
  return graph::is_independent_set(inst.g, s) &&
         graph::is_maximal_independent_set(inst.g, s);
}

// ------------------------------------------------------------ registration

namespace detail {

void register_builtins() {
  register_scenario(std::make_unique<DmmMatchingScenario>(16));
  register_scenario(std::make_unique<DmmMisReductionScenario>(8));
  register_scenario(std::make_unique<GnpMatchingScenario>(30, 0.2));
  register_scenario(std::make_unique<ConnectivityYuHardScenario>(16, 8));
  register_scenario(std::make_unique<EasyCcScenario>(12, 8, 0.9));
  register_scenario(std::make_unique<EasyCcMisScenario>(12, 8, 0.9));
}

}  // namespace detail

}  // namespace ds::scenario
