// The process-wide scenario registry: every instance family registers
// exactly once in src/scenario/builtin.cpp (enforced by distsketch-lint's
// scenario-registry rule), and every harness — sweep, wire service, bench
// — looks families up by string id.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "scenario/scenario.h"

namespace ds::scenario {

/// Add a scenario.  Throws std::logic_error on a duplicate id (the
/// registry is unchanged in that case).  Call sites outside the builtin
/// registration unit are a lint violation, not an API surface.
void register_scenario(std::unique_ptr<Scenario> scenario);

/// Every registered scenario, sorted by id.  Builtins are registered
/// lazily on first use, so static-init order never matters.
[[nodiscard]] std::vector<const Scenario*> all();

/// Lookup by id; nullptr when unknown.
[[nodiscard]] const Scenario* find(std::string_view id);

/// All registered ids, sorted.
[[nodiscard]] std::vector<std::string> ids();

/// The registered id closest to `id` in edit distance — the did-you-mean
/// suggestion for CLI/bench rejection messages.  nullopt iff the
/// registry is empty.
[[nodiscard]] std::optional<std::string> suggest(std::string_view id);

namespace detail {
/// Defined in builtin.cpp: the single registration site.
void register_builtins();
}  // namespace detail

}  // namespace ds::scenario
