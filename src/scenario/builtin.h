// The built-in instance families.  Classes are exported (not just
// registered) so tests can instantiate smaller parameterizations — the
// golden-sweep regression pins a DmmMatchingScenario(8) that is not in
// the registry.  Registration itself happens only in builtin.cpp.
#pragma once

#include <string>

#include "graph/generators.h"
#include "lowerbound/dmm.h"
#include "rs/rs_graph.h"
#include "scenario/typed.h"

namespace ds::scenario {

/// D_MM maximal matching (experiment E3): the Section 3.1 hard
/// distribution over an (r, t)-RS base with k = t copies, swept against
/// the BudgetedMatching family.  Witness: the full lowerbound::DmmInstance
/// (planted j*, sigma, surviving special matchings).
class DmmMatchingScenario final
    : public TypedScenario<model::MatchingOutput> {
 public:
  explicit DmmMatchingScenario(std::uint64_t m);

  [[nodiscard]] std::string_view id() const noexcept override {
    return "dmm-matching";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return description_;
  }
  [[nodiscard]] const Grid& default_grid() const noexcept override {
    return grid_;
  }
  [[nodiscard]] graph::Vertex num_vertices() const noexcept override {
    return params_.n;
  }
  [[nodiscard]] Instance sample(std::uint64_t trial_seed) const override;
  [[nodiscard]] std::unique_ptr<
      model::SketchingProtocol<model::MatchingOutput>>
  make_protocol(std::size_t budget_bits) const override;
  [[nodiscard]] bool judge(const Instance& inst,
                           const model::MatchingOutput& m) const override;

  [[nodiscard]] const lowerbound::DmmParameters& params() const noexcept {
    return params_;
  }

 private:
  rs::RsGraph base_;
  lowerbound::DmmParameters params_;
  Grid grid_;
  std::string description_;
};

/// The Section 4 reduction: MIS on H (two copies of a D_MM instance plus
/// a public-public biclique, 2n vertices) scored as the matching it
/// decodes back in G — Remark 3.6's success predicate.  Witness: the
/// underlying DmmInstance.
class DmmMisReductionScenario final
    : public TypedScenario<model::VertexSetOutput> {
 public:
  explicit DmmMisReductionScenario(std::uint64_t m);

  [[nodiscard]] std::string_view id() const noexcept override {
    return "dmm-mis-reduction";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return description_;
  }
  [[nodiscard]] const Grid& default_grid() const noexcept override {
    return grid_;
  }
  [[nodiscard]] graph::Vertex num_vertices() const noexcept override {
    return 2 * params_.n;
  }
  [[nodiscard]] Instance sample(std::uint64_t trial_seed) const override;
  [[nodiscard]] std::unique_ptr<
      model::SketchingProtocol<model::VertexSetOutput>>
  make_protocol(std::size_t budget_bits) const override;
  [[nodiscard]] bool judge(const Instance& inst,
                           const model::VertexSetOutput& s) const override;

 private:
  rs::RsGraph base_;
  lowerbound::DmmParameters params_;
  Grid grid_;
  std::string description_;
};

/// Plain G(n, p) with BudgetedMatching and the maximal-matching judge —
/// the small smoke family the harness tests sweep.
class GnpMatchingScenario final
    : public TypedScenario<model::MatchingOutput> {
 public:
  GnpMatchingScenario(graph::Vertex n, double p);

  [[nodiscard]] std::string_view id() const noexcept override {
    return "gnp-matching";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return description_;
  }
  [[nodiscard]] const Grid& default_grid() const noexcept override {
    return grid_;
  }
  [[nodiscard]] graph::Vertex num_vertices() const noexcept override {
    return n_;
  }
  [[nodiscard]] Instance sample(std::uint64_t trial_seed) const override;
  [[nodiscard]] std::unique_ptr<
      model::SketchingProtocol<model::MatchingOutput>>
  make_protocol(std::size_t budget_bits) const override;
  [[nodiscard]] bool judge(const Instance& inst,
                           const model::MatchingOutput& m) const override;

 private:
  graph::Vertex n_;
  double p_;
  Grid grid_;
  std::string description_;
};

/// Yu's connectivity-hard shape (arXiv 2007.12323): layered random
/// perfect matchings with 1/2 edge survival — vertex-disjoint paths
/// whose fragmentation the referee must count exactly.  Budget maps to
/// AGM Boruvka rounds (budget / per-round sketch bits); witness: the
/// true component count.
class ConnectivityYuHardScenario final
    : public TypedScenario<std::uint32_t> {
 public:
  ConnectivityYuHardScenario(graph::Vertex levels, graph::Vertex width);

  [[nodiscard]] std::string_view id() const noexcept override {
    return "connectivity-yu-hard";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return description_;
  }
  [[nodiscard]] const Grid& default_grid() const noexcept override {
    return grid_;
  }
  [[nodiscard]] graph::Vertex num_vertices() const noexcept override {
    return levels_ * width_;
  }
  [[nodiscard]] Instance sample(std::uint64_t trial_seed) const override;
  [[nodiscard]] std::unique_ptr<model::SketchingProtocol<std::uint32_t>>
  make_protocol(std::size_t budget_bits) const override;
  [[nodiscard]] bool judge(const Instance& inst,
                           const std::uint32_t& components) const override;

  /// Bits one AGM Boruvka round costs per player at this n — the
  /// budget-to-rounds exchange rate (probed once at construction).
  [[nodiscard]] std::size_t per_round_bits() const noexcept {
    return per_round_bits_;
  }

 private:
  graph::Vertex levels_;
  graph::Vertex width_;
  std::size_t per_round_bits_ = 0;
  unsigned max_rounds_ = 0;
  Grid grid_;
  std::string description_;
};

/// The "easy cases" contrast class (arXiv 2502.21031): disjoint dense
/// clusters, where the structure a maximal matching needs is local and
/// budgets collapse — run in the same threshold sweep as D_MM.
class EasyCcScenario final : public TypedScenario<model::MatchingOutput> {
 public:
  EasyCcScenario(graph::Vertex clusters, graph::Vertex cluster_size,
                 double keep_prob);

  [[nodiscard]] std::string_view id() const noexcept override {
    return "easy-cc";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return description_;
  }
  [[nodiscard]] const Grid& default_grid() const noexcept override {
    return grid_;
  }
  [[nodiscard]] graph::Vertex num_vertices() const noexcept override {
    return clusters_ * cluster_size_;
  }
  [[nodiscard]] Instance sample(std::uint64_t trial_seed) const override;
  [[nodiscard]] std::unique_ptr<
      model::SketchingProtocol<model::MatchingOutput>>
  make_protocol(std::size_t budget_bits) const override;
  [[nodiscard]] bool judge(const Instance& inst,
                           const model::MatchingOutput& m) const override;

 private:
  graph::Vertex clusters_;
  graph::Vertex cluster_size_;
  double keep_prob_;
  Grid grid_;
  std::string description_;
};

/// MIS on the same cluster family (easy-cc's sampler), judged for
/// independence + maximality.
class EasyCcMisScenario final
    : public TypedScenario<model::VertexSetOutput> {
 public:
  EasyCcMisScenario(graph::Vertex clusters, graph::Vertex cluster_size,
                    double keep_prob);

  [[nodiscard]] std::string_view id() const noexcept override {
    return "easy-cc-mis";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return description_;
  }
  [[nodiscard]] const Grid& default_grid() const noexcept override {
    return grid_;
  }
  [[nodiscard]] graph::Vertex num_vertices() const noexcept override {
    return clusters_ * cluster_size_;
  }
  [[nodiscard]] Instance sample(std::uint64_t trial_seed) const override;
  [[nodiscard]] std::unique_ptr<
      model::SketchingProtocol<model::VertexSetOutput>>
  make_protocol(std::size_t budget_bits) const override;
  [[nodiscard]] bool judge(const Instance& inst,
                           const model::VertexSetOutput& s) const override;

 private:
  graph::Vertex clusters_;
  graph::Vertex cluster_size_;
  double keep_prob_;
  Grid grid_;
  std::string description_;
};

}  // namespace ds::scenario
