// TypedScenario<Output>: derives the three Scenario execution paths
// (simulated run, wire referee, wire player) from the three things a
// family actually defines — sample, make_protocol, judge.  All paths key
// public coins as trial_coins(trial_seed) and hash outputs through the
// wire OutputCodec, so a scenario written once is sim==wire comparable
// for free (the scenario-smoke test asserts exactly that, per scenario).
#pragma once

#include <functional>
#include <string>
#include <utility>

#include "model/protocol.h"
#include "model/runner.h"
#include "scenario/scenario.h"
#include "service/output_codec.h"
#include "service/player_client.h"
#include "service/referee_service.h"

namespace ds::scenario {

/// Fingerprint of an output's wire encoding: FNV over the bit count then
/// the encoded words.  Identical outputs hash identically on every path.
template <typename Output>
[[nodiscard]] std::uint64_t hash_output(const Output& output) {
  util::BitWriter w;
  service::OutputCodec<Output>::encode(output, w);
  std::uint64_t h = fnv_fold(kFnvOffset, w.bit_count());
  for (const std::uint64_t word : w.words()) h = fnv_fold(h, word);
  return h;
}

template <typename Output>
class TypedScenario : public Scenario {
 public:
  /// Fresh protocol for this budget.  Must be a pure function of
  /// `budget_bits` (no RNG in construction): the sweep constructs one per
  /// trial, and sim/wire construct their own equal copies.
  [[nodiscard]] virtual std::unique_ptr<model::SketchingProtocol<Output>>
  make_protocol(std::size_t budget_bits) const = 0;

  /// Success predicate; `inst` carries the witness the family planted.
  [[nodiscard]] virtual bool judge(const Instance& inst,
                                   const Output& output) const = 0;

  [[nodiscard]] TrialOutcome run_trial(
      std::size_t budget_bits, std::uint64_t trial_seed,
      parallel::ThreadPool* pool,
      engine::SketchArena* arena) const override {
    note_trial_run();
    const Instance inst = sample(trial_seed);
    const auto protocol = make_protocol(budget_bits);
    const model::PublicCoins coins = trial_coins(trial_seed);
    model::RunResult<Output> run =
        model::run_protocol(inst.g, *protocol, coins, pool, arena);
    return {judge(inst, run.output), run.comm.max_bits,
            hash_output(run.output)};
  }

  [[nodiscard]] TrialOutcome serve_trial(
      service::RefereeService& referee, std::size_t budget_bits,
      std::uint64_t trial_seed) const override {
    note_wire_trial();
    const Instance inst = sample(trial_seed);
    const auto protocol = make_protocol(budget_bits);
    service::ServeResult<Output> run = service::serve_protocol(
        referee.links(), *protocol, inst.g.num_vertices(),
        trial_coins(trial_seed), referee.timeout());
    return {judge(inst, run.output), run.comm.max_bits,
            hash_output(run.output)};
  }

  [[nodiscard]] std::uint64_t play_trial(
      wire::Link& link, std::span<const graph::Vertex> owned,
      std::size_t budget_bits, std::uint64_t trial_seed,
      std::chrono::milliseconds timeout) const override {
    const Instance inst = sample(trial_seed);
    const auto protocol = make_protocol(budget_bits);
    const Output output = service::play_protocol(
        link, inst.g, owned, *protocol, trial_coins(trial_seed), timeout);
    return hash_output(output);
  }
};

/// Function-assembled scenario for tests and one-off sweeps: the three
/// hooks as std::functions, no registration required.
template <typename Output>
class InlineScenario final : public TypedScenario<Output> {
 public:
  using SampleFn = std::function<Instance(std::uint64_t)>;
  using ProtocolFn =
      std::function<std::unique_ptr<model::SketchingProtocol<Output>>(
          std::size_t)>;
  using JudgeFn = std::function<bool(const Instance&, const Output&)>;

  InlineScenario(std::string id, std::string description, graph::Vertex n,
                 Grid grid, SampleFn sample, ProtocolFn protocol,
                 JudgeFn judge)
      : id_(std::move(id)),
        description_(std::move(description)),
        n_(n),
        grid_(std::move(grid)),
        sample_(std::move(sample)),
        protocol_(std::move(protocol)),
        judge_(std::move(judge)) {}

  [[nodiscard]] std::string_view id() const noexcept override { return id_; }
  [[nodiscard]] std::string_view description() const noexcept override {
    return description_;
  }
  [[nodiscard]] const Grid& default_grid() const noexcept override {
    return grid_;
  }
  [[nodiscard]] graph::Vertex num_vertices() const noexcept override {
    return n_;
  }
  [[nodiscard]] Instance sample(std::uint64_t trial_seed) const override {
    return sample_(trial_seed);
  }
  [[nodiscard]] std::unique_ptr<model::SketchingProtocol<Output>>
  make_protocol(std::size_t budget_bits) const override {
    return protocol_(budget_bits);
  }
  [[nodiscard]] bool judge(const Instance& inst,
                           const Output& output) const override {
    return judge_(inst, output);
  }

 private:
  std::string id_;
  std::string description_;
  graph::Vertex n_;
  Grid grid_;
  SampleFn sample_;
  ProtocolFn protocol_;
  JudgeFn judge_;
};

}  // namespace ds::scenario
