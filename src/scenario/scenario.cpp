#include "scenario/scenario.h"

#include "obs/obs.h"

namespace ds::scenario {

std::vector<std::size_t> geometric_ladder(std::size_t lo, std::size_t hi,
                                          double factor) {
  std::vector<std::size_t> budgets;
  double current = static_cast<double>(lo);
  while (static_cast<std::size_t>(current) < hi) {
    const std::size_t b = static_cast<std::size_t>(current);
    if (budgets.empty() || b != budgets.back()) budgets.push_back(b);
    current *= factor;
  }
  if (budgets.empty() || budgets.back() != hi) budgets.push_back(hi);
  return budgets;
}

namespace {
// The "scenario." metric namespace is owned by this file
// (tools/lint/obs_owners.toml): all registrations live here.
obs::Counter& trials_counter() {
  static obs::Counter& c = obs::counter("scenario.trials");
  return c;
}
obs::Counter& wire_trials_counter() {
  static obs::Counter& c = obs::counter("scenario.wire_trials");
  return c;
}
}  // namespace

void note_trial_run() { trials_counter().increment(); }
void note_wire_trial() { wire_trials_counter().increment(); }

}  // namespace ds::scenario
