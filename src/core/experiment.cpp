#include "core/experiment.h"

#include <cmath>

#include "graph/independent_set.h"
#include "graph/matching.h"
#include "rs/rs_graph.h"

namespace ds::core {

MatchingScore score_matching(const graph::Graph& g,
                             std::span<const graph::Edge> m) {
  MatchingScore score;
  score.size = m.size();
  score.structurally_matching = graph::is_matching(m, g.num_vertices());
  score.valid = score.structurally_matching && graph::is_valid_matching(g, m);
  score.maximal = score.valid && graph::is_maximal_matching(g, m);
  return score;
}

MisScore score_mis(const graph::Graph& g, std::span<const graph::Vertex> s) {
  MisScore score;
  score.size = s.size();
  score.independent = graph::is_independent_set(g, s);
  score.maximal =
      score.independent && graph::is_maximal_independent_set(g, s);
  return score;
}

bool remark36_success(const lowerbound::DmmInstance& inst,
                      std::span<const graph::Edge> m) {
  if (!graph::is_matching(m, inst.params.n)) return false;
  if (!graph::is_valid_matching(inst.g, m)) return false;
  std::size_t unique_unique = lowerbound::count_unique_unique(inst, m);
  return unique_unique >= inst.params.claim31_threshold();
}

Theorem1Bound theorem1_bound(std::uint64_t m) {
  const rs::RsParameters params = rs::rs_parameters(m);
  Theorem1Bound bound;
  bound.big_n = params.n;
  bound.r = params.r;
  bound.t = params.t;
  bound.k = params.t;  // the distribution sets k = t
  bound.n = bound.big_n - 2 * bound.r + 2 * bound.r * bound.k;
  bound.info_lower = static_cast<double>(bound.k * bound.r) / 6.0;
  bound.comm_upper_coeff = 2.0 * static_cast<double>(bound.big_n);
  // 2Nb >= kr/6  =>  b >= kr / (12N); the paper's k = t = N/3 makes this
  // r/36 — our construction's t/N ratio is folded in exactly.
  bound.b_lower = static_cast<double>(bound.k * bound.r) /
                  (12.0 * static_cast<double>(bound.big_n));
  bound.sqrt_n = std::sqrt(static_cast<double>(bound.n));
  return bound;
}

}  // namespace ds::core
