// The budget-sweep harness: for a protocol family parameterized by a
// per-player bit budget, estimate success probability per budget over an
// input distribution, and locate the threshold budget for a target rate.
//
// The input distribution, protocol factory, and success predicate come
// bundled as a scenario::Scenario — sweep any registered family by id
// (scenario::find) or an ad-hoc InlineScenario; there is no per-family
// harness code.  This is the engine behind experiments E3 (maximal
// matching on D_MM) and the MIS sweeps: the paper predicts the threshold
// tracks ~r (up to log factors), i.e. ~sqrt(n)/e^{Theta(sqrt(log n))}.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "parallel/thread_pool.h"
#include "scenario/scenario.h"
#include "util/stats.h"

namespace ds::core {

struct SweepPoint {
  std::size_t budget_bits = 0;     // requested budget
  std::size_t trials = 0;
  std::size_t successes = 0;
  std::size_t max_bits_seen = 0;   // realized worst player message
  double rate = 0.0;
  util::Interval ci{0.0, 1.0};     // Wilson 95%
};

struct SweepResult {
  std::vector<SweepPoint> points;
  /// Smallest swept budget whose rate reached the target, if any.
  std::optional<std::size_t> threshold_budget;
};

/// For each budget: `trials` independent scenario trials, success judged
/// by the scenario itself.
///
/// Trials run concurrently on the thread pool (null `pool` = the global
/// one).  Each trial's seed is derived counter-style from (seed, trial) —
/// util::derive_seed — so trial i's input and coins never depend on which
/// thread ran it or on the other trials, and the per-trial outcomes are
/// folded in trial order: the SweepResult is bit-identical at any thread
/// count, including 1 (pinned by the golden-sweep regression test).
/// Encode buffers are pooled through an ArenaReservoir — one arena per
/// concurrently running trial — so steady-state trials allocate no
/// per-vertex buffers (measured by bench/bench_scenario.cpp).
[[nodiscard]] SweepResult sweep_budgets(const scenario::Scenario& scenario,
                                        std::span<const std::size_t> budgets,
                                        std::size_t trials,
                                        std::uint64_t seed,
                                        double target_rate = 0.99,
                                        parallel::ThreadPool* pool = nullptr);

/// Sweep a scenario over its own default grid.
[[nodiscard]] SweepResult sweep_scenario(const scenario::Scenario& scenario,
                                         parallel::ThreadPool* pool = nullptr);

/// A geometric budget ladder: lo, lo*factor, ... capped at hi (inclusive).
[[nodiscard]] std::vector<std::size_t> geometric_budgets(std::size_t lo,
                                                         std::size_t hi,
                                                         double factor = 2.0);

}  // namespace ds::core
