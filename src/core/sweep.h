// The budget-sweep harness: for a protocol family parameterized by a
// per-player bit budget, estimate success probability per budget over an
// input distribution, and locate the threshold budget for a target rate.
//
// This is the engine behind experiments E3 (maximal matching on D_MM) and
// the MIS sweeps: the paper predicts the threshold tracks ~r (up to log
// factors), i.e. ~sqrt(n)/e^{Theta(sqrt(log n))}.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "model/runner.h"
#include "parallel/thread_pool.h"
#include "util/stats.h"

namespace ds::core {

struct SweepPoint {
  std::size_t budget_bits = 0;     // requested budget
  std::size_t trials = 0;
  std::size_t successes = 0;
  std::size_t max_bits_seen = 0;   // realized worst player message
  double rate = 0.0;
  util::Interval ci{0.0, 1.0};     // Wilson 95%
};

struct SweepResult {
  std::vector<SweepPoint> points;
  /// Smallest swept budget whose rate reached the target, if any.
  std::optional<std::size_t> threshold_budget;
};

/// For each budget: `trials` independent runs, each with a fresh graph
/// from `make_graph(trial_seed)` and fresh public coins; success judged by
/// `is_success(graph, output)`.
///
/// Trials run concurrently on the thread pool (null `pool` = the global
/// one).  Each trial's seed is derived counter-style from (seed, trial) —
/// util::derive_seed — so trial i's input and coins never depend on which
/// thread ran it or on the other trials, and the per-trial outcomes are
/// folded in trial order: the SweepResult is bit-identical at any thread
/// count, including 1.  make_graph / make_protocol / is_success must be
/// safe to call concurrently (pure functions of their arguments).
template <typename Output>
[[nodiscard]] SweepResult sweep_budgets(
    std::span<const std::size_t> budgets, std::size_t trials,
    std::uint64_t seed,
    const std::function<graph::Graph(std::uint64_t)>& make_graph,
    const std::function<
        std::unique_ptr<model::SketchingProtocol<Output>>(std::size_t)>&
        make_protocol,
    const std::function<bool(const graph::Graph&, const Output&)>& is_success,
    double target_rate = 0.99, parallel::ThreadPool* pool = nullptr) {
  SweepResult result;
  struct TrialOutcome {
    bool success = false;
    std::size_t max_bits = 0;
  };
  for (std::size_t budget : budgets) {
    SweepPoint point;
    point.budget_bits = budget;
    const auto protocol = make_protocol(budget);
    std::vector<TrialOutcome> outcomes(trials);
    parallel::parallel_for(pool, 0, trials, [&](std::size_t trial) {
      const std::uint64_t trial_seed = util::derive_seed(seed, trial);
      const graph::Graph g = make_graph(trial_seed);
      const model::PublicCoins coins(util::derive_seed(trial_seed, 0xC01));
      const model::RunResult<Output> run =
          model::run_protocol(g, *protocol, coins, pool);
      outcomes[trial] = {is_success(g, run.output), run.comm.max_bits};
    });
    for (const TrialOutcome& outcome : outcomes) {
      ++point.trials;
      if (outcome.success) ++point.successes;
      if (outcome.max_bits > point.max_bits_seen) {
        point.max_bits_seen = outcome.max_bits;
      }
    }
    point.rate = point.trials == 0
                     ? 0.0
                     : static_cast<double>(point.successes) /
                           static_cast<double>(point.trials);
    point.ci = util::wilson_interval(point.successes, point.trials);
    if (!result.threshold_budget.has_value() && point.rate >= target_rate) {
      result.threshold_budget = budget;
    }
    result.points.push_back(point);
  }
  return result;
}

/// A geometric budget ladder: lo, lo*factor, ... capped at hi (inclusive).
[[nodiscard]] std::vector<std::size_t> geometric_budgets(std::size_t lo,
                                                         std::size_t hi,
                                                         double factor = 2.0);

}  // namespace ds::core
