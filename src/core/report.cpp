#include "core/report.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace ds::core {

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
    for (const auto& row : rows_) width[c] = std::max(width[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(width[c]))
         << cells[c];
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c == 0 ? 0 : 2);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::ostream& os) const {
  const auto emit = [&os](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) os << ',';
      // Quote cells containing commas or quotes.
      if (cells[c].find_first_of(",\"") != std::string::npos) {
        os << '"';
        for (char ch : cells[c]) {
          if (ch == '"') os << '"';
          os << ch;
        }
        os << '"';
      } else {
        os << cells[c];
      }
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string fmt(double value, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << value;
  return ss.str();
}

std::string fmt(std::uint64_t value) { return std::to_string(value); }

std::string fmt(std::size_t value, bool) { return std::to_string(value); }

std::string fmt_bool(bool value) { return value ? "yes" : "NO"; }

}  // namespace ds::core
