// Plain-text table reporting for benches and examples: fixed-width
// columns, right-aligned numbers, no dependencies.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace ds::core {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;
  /// Machine-readable variant for downstream plotting.
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision double (e.g. fmt(0.12345, 3) == "0.123").
[[nodiscard]] std::string fmt(double value, int precision = 3);
[[nodiscard]] std::string fmt(std::uint64_t value);
[[nodiscard]] std::string fmt(std::size_t value, bool);  // disambiguator
[[nodiscard]] std::string fmt_bool(bool value);

}  // namespace ds::core
