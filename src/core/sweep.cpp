#include "core/sweep.h"

#include "engine/arena.h"
#include "util/rng.h"

namespace ds::core {

SweepResult sweep_budgets(const scenario::Scenario& scenario,
                          std::span<const std::size_t> budgets,
                          std::size_t trials, std::uint64_t seed,
                          double target_rate, parallel::ThreadPool* pool) {
  SweepResult result;
  engine::ArenaReservoir arenas;
  for (const std::size_t budget : budgets) {
    SweepPoint point;
    point.budget_bits = budget;
    std::vector<scenario::TrialOutcome> outcomes(trials);
    parallel::parallel_for(pool, 0, trials, [&](std::size_t trial) {
      const std::uint64_t trial_seed = util::derive_seed(seed, trial);
      const engine::ArenaLease arena(arenas);
      outcomes[trial] =
          scenario.run_trial(budget, trial_seed, pool, arena.get());
    });
    for (const scenario::TrialOutcome& outcome : outcomes) {
      ++point.trials;
      if (outcome.success) ++point.successes;
      if (outcome.max_bits > point.max_bits_seen) {
        point.max_bits_seen = outcome.max_bits;
      }
    }
    point.rate = point.trials == 0
                     ? 0.0
                     : static_cast<double>(point.successes) /
                           static_cast<double>(point.trials);
    point.ci = util::wilson_interval(point.successes, point.trials);
    if (!result.threshold_budget.has_value() && point.rate >= target_rate) {
      result.threshold_budget = budget;
    }
    result.points.push_back(point);
  }
  return result;
}

SweepResult sweep_scenario(const scenario::Scenario& scenario,
                           parallel::ThreadPool* pool) {
  const scenario::Grid& grid = scenario.default_grid();
  return sweep_budgets(scenario, grid.budgets, grid.trials, grid.seed,
                       grid.target_rate, pool);
}

std::vector<std::size_t> geometric_budgets(std::size_t lo, std::size_t hi,
                                           double factor) {
  return scenario::geometric_ladder(lo, hi, factor);
}

}  // namespace ds::core
