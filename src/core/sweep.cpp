#include "core/sweep.h"

#include <cmath>

namespace ds::core {

std::vector<std::size_t> geometric_budgets(std::size_t lo, std::size_t hi,
                                           double factor) {
  std::vector<std::size_t> budgets;
  double current = static_cast<double>(lo);
  while (static_cast<std::size_t>(current) < hi) {
    const std::size_t b = static_cast<std::size_t>(current);
    if (budgets.empty() || b != budgets.back()) budgets.push_back(b);
    current *= factor;
  }
  if (budgets.empty() || budgets.back() != hi) budgets.push_back(hi);
  return budgets;
}

}  // namespace ds::core
