// Experiment-level helpers: output scoring per the paper's error model,
// and the Theorem 1 arithmetic (experiment E9).
#pragma once

#include <cstdint>
#include <span>

#include "graph/graph.h"
#include "lowerbound/dmm.h"

namespace ds::core {

/// Scoring of a matching output under Section 2.1's error taxonomy.
struct MatchingScore {
  bool structurally_matching = false;  // pairwise-disjoint pairs
  bool valid = false;                  // and every pair is a G-edge
  bool maximal = false;                // and no extendable G-edge remains
  std::size_t size = 0;
};
[[nodiscard]] MatchingScore score_matching(const graph::Graph& g,
                                           std::span<const graph::Edge> m);

/// Scoring of an MIS output.
struct MisScore {
  bool independent = false;
  bool maximal = false;
  std::size_t size = 0;
};
[[nodiscard]] MisScore score_mis(const graph::Graph& g,
                                 std::span<const graph::Vertex> s);

/// Remark 3.6(iv) success on a D_MM instance: a structurally-valid
/// matching of >= k*r/4 edges between unique vertices, all of them real
/// G-edges.
[[nodiscard]] bool remark36_success(const lowerbound::DmmInstance& inst,
                                    std::span<const graph::Edge> m);

/// The final arithmetic of Theorem 1 for concrete construction
/// parameters: 2Nb >= k*r/6 forces b >= r/12 * (k/ (k + t)) ... with
/// k = t it simplifies to b >= r/24 * (t / N) * ... — we carry the exact
/// chain the paper prints:  k*r/6 <= H(Pi(P)) + (1/t) sum_i H(Pi(U_i))
///                                 <= N*b + (k/t)*N*b = 2Nb.
struct Theorem1Bound {
  std::uint64_t big_n = 0;  // N
  std::uint64_t r = 0;
  std::uint64_t t = 0;
  std::uint64_t k = 0;      // = t
  std::uint64_t n = 0;      // final graph size
  double info_lower = 0.0;  // k*r/6
  double comm_upper_coeff = 0.0;  // 2N (so info <= comm_upper_coeff * b)
  double b_lower = 0.0;           // r/36 per the paper's final line
  double sqrt_n = 0.0;            // for the b = Omega(sqrt n / e^...) shape
};
[[nodiscard]] Theorem1Bound theorem1_bound(std::uint64_t m);

}  // namespace ds::core
