#include "evloop/event_loop.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/obs.h"
#include "wire/tcp.h"
#include "wire/test_hooks.h"

namespace ds::wire {

namespace {

using Clock = std::chrono::steady_clock;

ssize_t sys_recv(int fd, void* buf, std::size_t len, int flags) {
  const testhooks::RecvFn fn = testhooks::recv_hook();
  return fn != nullptr ? fn(fd, buf, len, flags)
                       : ::recv(fd, buf, len, flags);
}

ssize_t sys_send(int fd, const void* buf, std::size_t len, int flags) {
  const testhooks::SendFn fn = testhooks::send_hook();
  return fn != nullptr ? fn(fd, buf, len, flags)
                       : ::send(fd, buf, len, flags);
}

/// Event-loop counters, one name family per docs/OBSERVABILITY.md; the
/// failure rows mirror the blocking transport's table in docs/WIRE.md.
struct EvloopMetrics {
  obs::Counter& connections = obs::counter("wire.evloop.connections");
  obs::Counter& polls = obs::counter("wire.evloop.polls");
  obs::Counter& messages_received =
      obs::counter("wire.evloop.messages_received");
  obs::Counter& bytes_received = obs::counter("wire.evloop.bytes_received");
  obs::Counter& messages_sent = obs::counter("wire.evloop.messages_sent");
  obs::Counter& bytes_sent = obs::counter("wire.evloop.bytes_sent");
  obs::Counter& clean_closes = obs::counter("wire.evloop.clean_closes");
  obs::Counter& short_reads = obs::counter("wire.evloop.short_reads");
  obs::Counter& oversized_prefix =
      obs::counter("wire.evloop.oversized_prefix");
  obs::Counter& recv_errors = obs::counter("wire.evloop.recv_errors");
  obs::Counter& send_errors = obs::counter("wire.evloop.send_errors");
  obs::Counter& eintr_retries = obs::counter("wire.evloop.eintr_retries");
  obs::Counter& partial_writes = obs::counter("wire.evloop.partial_writes");
  obs::Counter& wakeups = obs::counter("wire.evloop.wakeups");
};

EvloopMetrics& metrics() {
  static EvloopMetrics m;
  return m;
}

int time_left_ms(Clock::time_point deadline) {
  // Round UP: truncation would turn any sub-millisecond remainder into
  // epoll_wait(0), and a caller polling on a 1ms slice would busy-spin
  // with nonblocking waits instead of sleeping — on a shared core that
  // starves the very peers it is waiting for.
  const auto left = deadline - Clock::now();
  if (left <= Clock::duration::zero()) return 0;
  return static_cast<int>(
      std::chrono::ceil<std::chrono::milliseconds>(left).count());
}

}  // namespace

/// One connection's session state: the incremental reassembly of the
/// in-flight inbound message (same prefix/body machine as the blocking
/// TcpLink, advanced by readiness instead of by a blocking fill) and the
/// outbound backlog.
struct EventLoop::Conn {
  int fd = -1;
  bool open = false;
  bool want_write = false;  // EPOLLOUT armed

  // Inbound partial-read state.
  std::uint8_t prefix[4] = {};
  std::size_t prefix_done = 0;
  bool have_len = false;
  std::vector<std::uint8_t> body;
  std::size_t body_done = 0;

  // Outbound backlog: length-prefixed messages corked back to back;
  // [out_done, out.size()) is still owed to the kernel.
  std::vector<std::uint8_t> out;
  std::size_t out_done = 0;

  [[nodiscard]] bool backlog() const noexcept {
    return out_done < out.size();
  }
};

class EventLoop::Impl {
 public:
  Impl() {
    epfd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epfd_ < 0) {
      throw WireError("event loop: epoll_create1 failed");
    }
  }

  ~Impl() {
    for (auto& conn : conns_) {
      if (conn->open) ::close(conn->fd);
    }
    ::close(epfd_);
  }

  void add_wake_fd(int fd) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kWakeTag;
    if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      throw WireError("event loop: epoll_ctl(ADD wake fd) failed");
    }
    wake_fd_ = fd;
  }

  std::size_t add(int fd) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->open = true;
    const std::size_t id = conns_.size();
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = id;
    if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ::close(fd);
      throw WireError("event loop: epoll_ctl(ADD) failed");
    }
    conns_.push_back(std::move(conn));
    ++open_;
    metrics().connections.increment();
    return id;
  }

  std::size_t poll_once(std::chrono::milliseconds timeout,
                        const MessageFn& on_message,
                        const CloseFn& on_close) {
    const Clock::time_point deadline = Clock::now() + timeout;
    events_.resize(conns_.size() + 1);  // +1: the wake fd's slot
    int n = 0;
    for (;;) {
      n = ::epoll_wait(epfd_, events_.data(),
                       static_cast<int>(events_.size()),
                       time_left_ms(deadline));
      if (n >= 0) break;
      if (errno == EINTR) {
        metrics().eintr_retries.increment();
        continue;
      }
      throw WireError("event loop: epoll_wait failed");
    }
    metrics().polls.increment();
    for (std::size_t i = 0; i < static_cast<std::size_t>(n); ++i) {
      const std::size_t id = static_cast<std::size_t>(events_[i].data.u64);
      if (id == kWakeTag) {
        // Consume one wake unit (EFD_SEMAPHORE leaves units for sibling
        // loops sharing the fd); the wake's only job was ending the wait.
        std::uint64_t unit = 0;
        (void)!::read(wake_fd_, &unit, sizeof(unit));
        metrics().wakeups.increment();
        continue;
      }
      Conn& conn = *conns_[id];
      if (!conn.open) continue;  // closed earlier in this same pass
      if ((events_[i].events & EPOLLOUT) != 0) {
        flush_some(id, on_close);
      }
      if (!conn.open) continue;
      if ((events_[i].events & (EPOLLIN | EPOLLERR | EPOLLHUP)) != 0) {
        drain_read(id, on_message, on_close);
      }
    }
    return static_cast<std::size_t>(n);
  }

  bool send(std::size_t id, std::span<const std::uint8_t> message,
            const CloseFn& on_close) {
    if (id >= conns_.size() || !conns_[id]->open) return false;
    if (message.size() > kMaxMessageBytes) return false;
    Conn& conn = *conns_[id];
    const auto len = static_cast<std::uint32_t>(message.size());
    // Cork prefix + body (and any messages already queued) into one
    // contiguous backlog: the next flush hands them to the kernel in a
    // single send syscall.
    conn.out.push_back(static_cast<std::uint8_t>(len));
    conn.out.push_back(static_cast<std::uint8_t>(len >> 8));
    conn.out.push_back(static_cast<std::uint8_t>(len >> 16));
    conn.out.push_back(static_cast<std::uint8_t>(len >> 24));
    conn.out.insert(conn.out.end(), message.begin(), message.end());
    metrics().messages_sent.increment();
    flush_some(id, on_close);
    return conns_[id]->open;
  }

  bool flush_all(Clock::time_point deadline, const MessageFn& on_message,
                 const CloseFn& on_close) {
    for (;;) {
      bool pending = false;
      for (const auto& conn : conns_) {
        if (conn->open && conn->backlog()) {
          pending = true;
          break;
        }
      }
      if (!pending) return true;
      const int left = time_left_ms(deadline);
      if (left <= 0) return false;
      poll_once(std::chrono::milliseconds(left), on_message, on_close);
    }
  }

  [[nodiscard]] std::size_t open_connections() const noexcept {
    return open_;
  }
  [[nodiscard]] bool is_open(std::size_t id) const noexcept {
    return id < conns_.size() && conns_[id]->open;
  }
  [[nodiscard]] std::size_t bytes_sent() const noexcept { return sent_; }
  [[nodiscard]] std::size_t bytes_received() const noexcept {
    return received_;
  }

 private:
  void close_conn(std::size_t id, RecvStatus reason,
                  const CloseFn& on_close) {
    Conn& conn = *conns_[id];
    if (!conn.open) return;
    ::epoll_ctl(epfd_, EPOLL_CTL_DEL, conn.fd, nullptr);
    ::close(conn.fd);
    conn.open = false;
    --open_;
    if (reason == RecvStatus::kClosed) {
      metrics().clean_closes.increment();
    }
    if (on_close) on_close(id, reason);
  }

  void update_interest(Conn& conn, std::size_t id) {
    epoll_event ev{};
    ev.events = EPOLLIN | (conn.want_write ? EPOLLOUT : 0u);
    ev.data.u64 = id;
    ::epoll_ctl(epfd_, EPOLL_CTL_MOD, conn.fd, &ev);
  }

  /// Push the backlog toward the kernel until it drains or the socket
  /// stops accepting; arm EPOLLOUT exactly while a remainder exists.
  void flush_some(std::size_t id, const CloseFn& on_close) {
    Conn& conn = *conns_[id];
    while (conn.backlog()) {
      const ssize_t n =
          sys_send(conn.fd, conn.out.data() + conn.out_done,
                   conn.out.size() - conn.out_done, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) {
          metrics().eintr_retries.increment();
          continue;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          metrics().partial_writes.increment();
          break;
        }
        metrics().send_errors.increment();
        close_conn(id, RecvStatus::kError, on_close);
        return;
      }
      conn.out_done += static_cast<std::size_t>(n);
      sent_ += static_cast<std::size_t>(n);
      metrics().bytes_sent.add(static_cast<std::size_t>(n));
    }
    if (!conn.backlog()) {
      conn.out.clear();
      conn.out_done = 0;
    }
    const bool want = conn.backlog();
    if (want != conn.want_write) {
      conn.want_write = want;
      update_interest(conn, id);
    }
  }

  /// Drain one readiness event: advance the prefix/body state machine
  /// until the socket runs dry, emitting every completed message.
  void drain_read(std::size_t id, const MessageFn& on_message,
                  const CloseFn& on_close) {
    Conn& conn = *conns_[id];
    while (conn.open) {
      std::uint8_t* target = nullptr;
      std::size_t want = 0;
      std::size_t* done = nullptr;
      if (conn.prefix_done < sizeof(conn.prefix)) {
        target = conn.prefix;
        want = sizeof(conn.prefix);
        done = &conn.prefix_done;
      } else {
        if (!conn.have_len) {
          const std::uint32_t len =
              static_cast<std::uint32_t>(conn.prefix[0]) |
              static_cast<std::uint32_t>(conn.prefix[1]) << 8 |
              static_cast<std::uint32_t>(conn.prefix[2]) << 16 |
              static_cast<std::uint32_t>(conn.prefix[3]) << 24;
          if (len > kMaxMessageBytes) {  // reject before allocating
            metrics().oversized_prefix.increment();
            close_conn(id, RecvStatus::kError, on_close);
            return;
          }
          conn.body.assign(len, 0);
          conn.body_done = 0;
          conn.have_len = true;
        }
        if (conn.body_done == conn.body.size()) {
          finish_message(id, on_message);
          continue;
        }
        target = conn.body.data();
        want = conn.body.size();
        done = &conn.body_done;
      }
      const ssize_t n = sys_recv(conn.fd, target + *done, want - *done, 0);
      if (n == 0) {
        // EOF at a message boundary is a clean close; mid-prefix or
        // mid-body the boundary is lost — a short read.
        const bool boundary = conn.prefix_done == 0 && !conn.have_len;
        if (!boundary) metrics().short_reads.increment();
        close_conn(id, boundary ? RecvStatus::kClosed : RecvStatus::kError,
                   on_close);
        return;
      }
      if (n < 0) {
        if (errno == EINTR) {
          metrics().eintr_retries.increment();
          continue;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;  // drained
        metrics().recv_errors.increment();
        close_conn(id, RecvStatus::kError, on_close);
        return;
      }
      *done += static_cast<std::size_t>(n);
      if (conn.prefix_done == sizeof(conn.prefix) && conn.have_len &&
          conn.body_done == conn.body.size()) {
        finish_message(id, on_message);
      }
    }
  }

  void finish_message(std::size_t id, const MessageFn& on_message) {
    Conn& conn = *conns_[id];
    received_ += sizeof(conn.prefix) + conn.body.size();
    metrics().messages_received.increment();
    metrics().bytes_received.add(sizeof(conn.prefix) + conn.body.size());
    std::vector<std::uint8_t> message = std::move(conn.body);
    conn.prefix_done = 0;
    conn.have_len = false;
    conn.body = {};
    conn.body_done = 0;
    if (on_message) on_message(id, std::move(message));
  }

  // Sentinel epoll tag for the wake fd: never collides with a connection
  // id (ids index conns_, which stays far below 2^64 - 1).
  static constexpr std::uint64_t kWakeTag = ~std::uint64_t{0};

  int epfd_ = -1;
  int wake_fd_ = -1;  // not owned; -1 until add_wake_fd
  std::vector<std::unique_ptr<Conn>> conns_;
  std::vector<epoll_event> events_;
  std::size_t open_ = 0;
  std::size_t sent_ = 0;
  std::size_t received_ = 0;
};

EventLoop::EventLoop() : impl_(std::make_unique<Impl>()) {}
EventLoop::~EventLoop() = default;

std::size_t EventLoop::add(int fd) { return impl_->add(fd); }

void EventLoop::add_wake_fd(int fd) { impl_->add_wake_fd(fd); }

std::size_t EventLoop::open_connections() const noexcept {
  return impl_->open_connections();
}

bool EventLoop::is_open(std::size_t conn) const noexcept {
  return impl_->is_open(conn);
}

std::size_t EventLoop::poll_once(std::chrono::milliseconds timeout,
                                 const MessageFn& on_message,
                                 const CloseFn& on_close) {
  return impl_->poll_once(timeout, on_message, on_close);
}

bool EventLoop::send(std::size_t conn, std::span<const std::uint8_t> message) {
  return impl_->send(conn, message, nullptr);
}

bool EventLoop::flush_all(std::chrono::steady_clock::time_point deadline,
                          const MessageFn& on_message,
                          const CloseFn& on_close) {
  return impl_->flush_all(deadline, on_message, on_close);
}

std::size_t EventLoop::bytes_sent() const noexcept {
  return impl_->bytes_sent();
}

std::size_t EventLoop::bytes_received() const noexcept {
  return impl_->bytes_received();
}

}  // namespace ds::wire
