// Epoll-driven event loop: the referee's scalable ingestion path.
//
// The blocking transport (wire/tcp.h) gives one thread per whole-message
// recv; a referee multiplexing hundreds of links over it spends its time
// parked in per-link poll slices.  wire::EventLoop instead owns N
// nonblocking fds behind one epoll instance and drives a per-connection
// partial-read state machine, so a single poll_once() drains every link
// that has bytes — a message is reassembled incrementally across as many
// readiness events as the kernel delivers it in, never requiring a whole
// message per syscall slice.
//
// Message framing is byte-identical to the blocking TCP transport: a
// 4-byte little-endian length prefix followed by the body (a batch of
// self-delimiting CRC'd frames, wire/frame.h), with the same
// kMaxMessageBytes cap rejected before allocation.  A peer speaking to a
// TcpLink and a peer speaking to an EventLoop connection cannot tell the
// difference — that is what lets the sharded referee drop in under the
// unchanged player client.
//
// Failure modes mirror the blocking transport's taxonomy (docs/WIRE.md):
// EOF at a message boundary -> kClosed; EOF mid-prefix or mid-body ->
// kError (short read); an oversized prefix -> kError before allocating; a
// socket error -> kError; EINTR is retried transparently and EAGAIN
// simply ends the drain for that readiness event.  The syscall test hooks
// (wire/test_hooks.h) interpose here exactly as they do on the blocking
// path, so the failure-injection suite drives both with one harness.
//
// Writes are queued per connection in one contiguous backlog (prefix and
// body corked together, several messages coalescing into one send
// syscall) and flushed as the socket drains, with EPOLLOUT armed only
// while a backlog exists.  The loop is single-threaded by design: one
// shard = one loop = one thread (service/shard.h).
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "wire/transport.h"

namespace ds::wire {

class EventLoop {
 public:
  /// A complete length-prefixed message arrived on `conn`.
  using MessageFn =
      std::function<void(std::size_t conn, std::vector<std::uint8_t> message)>;
  /// `conn` left the loop: kClosed for a clean EOF at a message boundary,
  /// kError for a short read / oversized prefix / socket error.  The fd
  /// is already closed when this fires.
  using CloseFn = std::function<void(std::size_t conn, RecvStatus reason)>;

  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Adopt an fd (ownership passes to the loop; it is switched to
  /// nonblocking and registered for read readiness).  Returns the
  /// connection id used in every callback.  Throws WireError on
  /// registration failure.
  std::size_t add(int fd);

  /// Register a wake fd (typically an eventfd, NOT owned by the loop): a
  /// write to it makes a sleeping poll_once return immediately.  One
  /// pending unit is consumed per pass; no message or close callback
  /// fires.  The sharded referee uses a shared semaphore eventfd so the
  /// shard accepting a round's final frame can cut every sibling's
  /// poll slice short instead of letting them sleep it out.  Throws
  /// WireError on registration failure.
  void add_wake_fd(int fd);

  /// Connections still registered (added minus closed).
  [[nodiscard]] std::size_t open_connections() const noexcept;
  [[nodiscard]] bool is_open(std::size_t conn) const noexcept;

  /// One epoll_wait pass: waits at most `timeout` for readiness, then
  /// drains every ready connection, invoking `on_message` per completed
  /// message (several per connection per pass are normal) and `on_close`
  /// as connections die.  Returns the number of connections that had
  /// events (0 on a pure timeout).  EINTR is retried within the timeout.
  std::size_t poll_once(std::chrono::milliseconds timeout,
                        const MessageFn& on_message, const CloseFn& on_close);

  /// Queue one length-prefixed message on `conn` and flush as much as the
  /// socket accepts without blocking; the rest drains via EPOLLOUT on
  /// subsequent poll_once calls.  Returns false if the connection is gone
  /// or the message exceeds kMaxMessageBytes.
  bool send(std::size_t conn, std::span<const std::uint8_t> message);

  /// Block (polling the loop) until every queued write on every live
  /// connection has reached the kernel, or `deadline` passes.  Returns
  /// true when all backlogs drained.  Incoming messages that arrive while
  /// flushing are delivered to `on_message` (never dropped).
  bool flush_all(std::chrono::steady_clock::time_point deadline,
                 const MessageFn& on_message, const CloseFn& on_close);

  /// Transport-level byte accounting, aggregated over all connections
  /// (prefixes included), same contract as Link::bytes_sent/received.
  [[nodiscard]] std::size_t bytes_sent() const noexcept;
  [[nodiscard]] std::size_t bytes_received() const noexcept;

 private:
  struct Conn;
  class Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace ds::wire
