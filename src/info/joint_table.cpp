#include "info/joint_table.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "util/rng.h"

namespace ds::info {

namespace {

/// Hash of a projected outcome tuple. Collisions across distinct tuples
/// would silently merge probability mass, so we keep the full tuple as the
/// map key instead of hashing down to 64 bits.
struct TupleHash {
  std::size_t operator()(const std::vector<std::uint64_t>& key) const noexcept {
    std::uint64_t h = 0x9e3779b97f4a7c15ULL + key.size();
    for (std::uint64_t word : key) h = ds::util::mix64(h, word);
    return static_cast<std::size_t>(h);
  }
};

}  // namespace

JointTable::JointTable(std::vector<std::string> columns)
    : columns_(std::move(columns)) {
  assert(!columns_.empty());
}

void JointTable::add_row(std::span<const std::uint64_t> outcome, double mass) {
  assert(outcome.size() == columns_.size());
  assert(mass >= 0.0);
  if (mass == 0.0) return;
  rows_.push_back({{outcome.begin(), outcome.end()}, mass});
  total_ += mass;
}

void JointTable::add_row(std::initializer_list<std::uint64_t> outcome,
                         double mass) {
  add_row(std::span<const std::uint64_t>(outcome.begin(), outcome.size()),
          mass);
}

void JointTable::normalize() {
  if (total_ == 0.0) return;
  for (Row& row : rows_) row.mass /= total_;
  total_ = 1.0;
}

std::vector<std::size_t> JointTable::column_indices(
    std::span<const std::string> vars) const {
  std::vector<std::size_t> indices;
  indices.reserve(vars.size());
  for (const std::string& name : vars) {
    const auto it = std::find(columns_.begin(), columns_.end(), name);
    if (it == columns_.end()) {
      throw std::invalid_argument("JointTable: unknown column '" + name + "'");
    }
    indices.push_back(static_cast<std::size_t>(it - columns_.begin()));
  }
  return indices;
}

double JointTable::entropy_of_indices(
    std::span<const std::size_t> indices) const {
  assert(std::abs(total_ - 1.0) < 1e-9 && "normalize() before querying");
  if (indices.empty()) return 0.0;
  std::unordered_map<std::vector<std::uint64_t>, double, TupleHash> marginal;
  std::vector<std::uint64_t> key(indices.size());
  for (const Row& row : rows_) {
    for (std::size_t i = 0; i < indices.size(); ++i)
      key[i] = row.outcome[indices[i]];
    marginal[key] += row.mass;
  }
  double h = 0.0;
  for (const auto& [outcome, mass] : marginal) h += xlog2_term(mass);
  return h;
}

double JointTable::entropy(std::span<const std::string> vars) const {
  const auto indices = column_indices(vars);
  return entropy_of_indices(indices);
}

double JointTable::entropy(std::initializer_list<std::string> vars) const {
  return entropy(std::span<const std::string>(vars.begin(), vars.size()));
}

double JointTable::conditional_entropy(
    std::span<const std::string> a, std::span<const std::string> given) const {
  // H(A | B) = H(A, B) - H(B).
  std::vector<std::string> joint(a.begin(), a.end());
  joint.insert(joint.end(), given.begin(), given.end());
  return entropy(joint) - entropy(given);
}

double JointTable::mutual_information(std::span<const std::string> a,
                                      std::span<const std::string> b,
                                      std::span<const std::string> given) const {
  // I(A ; B | C) = H(A | C) - H(A | B, C).
  std::vector<std::string> b_and_given(b.begin(), b.end());
  b_and_given.insert(b_and_given.end(), given.begin(), given.end());
  return conditional_entropy(a, given) - conditional_entropy(a, b_and_given);
}

double JointTable::mutual_information(
    std::initializer_list<std::string> a, std::initializer_list<std::string> b,
    std::initializer_list<std::string> given) const {
  return mutual_information(
      std::span<const std::string>(a.begin(), a.size()),
      std::span<const std::string>(b.begin(), b.size()),
      std::span<const std::string>(given.begin(), given.size()));
}

}  // namespace ds::info
