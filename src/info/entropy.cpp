#include "info/entropy.h"

#include <cmath>
#include <vector>

namespace ds::info {

namespace {

std::vector<std::string> vars(std::initializer_list<std::string> names) {
  return {names.begin(), names.end()};
}

}  // namespace

CheckResult check_conditioning_reduces_entropy(const JointTable& table,
                                               const std::string& a,
                                               const std::string& b,
                                               const std::string& c) {
  const auto va = vars({a});
  const double lhs = table.conditional_entropy(va, vars({b, c}));
  const double rhs = table.conditional_entropy(va, vars({b}));
  return {lhs, rhs, lhs <= rhs + kTolerance};
}

CheckResult check_entropy_chain_rule(const JointTable& table,
                                     const std::string& a,
                                     const std::string& b,
                                     const std::string& c) {
  const double lhs = table.conditional_entropy(vars({a, b}), vars({c}));
  const double rhs = table.conditional_entropy(vars({a}), vars({c})) +
                     table.conditional_entropy(vars({b}), vars({c, a}));
  return {lhs, rhs, std::abs(lhs - rhs) <= kTolerance};
}

CheckResult check_mi_chain_rule(const JointTable& table, const std::string& a,
                                const std::string& b, const std::string& c,
                                const std::string& d) {
  const double lhs =
      table.mutual_information(vars({a, b}), vars({c}), vars({d}));
  const double rhs =
      table.mutual_information(vars({a}), vars({c}), vars({d})) +
      table.mutual_information(vars({b}), vars({c}), vars({a, d}));
  return {lhs, rhs, std::abs(lhs - rhs) <= kTolerance};
}

CheckResult check_proposition_2_3(const JointTable& table,
                                  const std::string& a, const std::string& b,
                                  const std::string& c, const std::string& d) {
  const double lhs = table.mutual_information(vars({a}), vars({b}), vars({c}));
  const double rhs =
      table.mutual_information(vars({a}), vars({b}), vars({c, d}));
  return {lhs, rhs, lhs <= rhs + kTolerance};
}

CheckResult check_proposition_2_4(const JointTable& table,
                                  const std::string& a, const std::string& b,
                                  const std::string& c, const std::string& d) {
  const double lhs = table.mutual_information(vars({a}), vars({b}), vars({c}));
  const double rhs =
      table.mutual_information(vars({a}), vars({b}), vars({c, d}));
  return {lhs, rhs, lhs + kTolerance >= rhs};
}

bool conditionally_independent(const JointTable& table, const std::string& a,
                               const std::string& b, const std::string& c) {
  return table.mutual_information(vars({a}), vars({b}), vars({c})) <=
         kTolerance;
}

JointTable random_joint_table(const std::vector<std::string>& columns,
                              std::uint64_t alphabet, std::size_t support,
                              util::Rng& rng) {
  JointTable table(columns);
  std::vector<std::uint64_t> outcome(columns.size());
  for (std::size_t row = 0; row < support; ++row) {
    for (auto& value : outcome) value = rng.next_below(alphabet);
    table.add_row(outcome, rng.next_double() + 1e-3);
  }
  table.normalize();
  return table;
}

}  // namespace ds::info
