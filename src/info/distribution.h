// Discrete probability distributions over abstract outcome keys.
//
// The lower-bound accounting (Lemmas 3.3-3.5) manipulates entropies and
// mutual informations of tuples of random variables:  (M_1,J..M_k,J), the
// transcript Pi, the permutation Sigma, the index J.  For enumerable
// instances we represent their joint law exactly; `Distribution` is the
// single-variable building block.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace ds::info {

/// A finitely supported distribution over uint64 outcome keys.
class Distribution {
 public:
  Distribution() = default;

  /// Add probability mass to an outcome (accumulates).
  void add(std::uint64_t outcome, double mass);

  /// Scale so total mass is 1. No-op on an empty distribution.
  void normalize();

  [[nodiscard]] double total_mass() const noexcept { return total_; }
  [[nodiscard]] std::size_t support_size() const noexcept {
    return mass_.size();
  }
  [[nodiscard]] double probability(std::uint64_t outcome) const;

  /// Shannon entropy in bits. Requires a normalized distribution.
  [[nodiscard]] double entropy() const;

  /// Uniform distribution over [0, n).
  [[nodiscard]] static Distribution uniform(std::uint64_t n);

  [[nodiscard]] const std::unordered_map<std::uint64_t, double>& masses()
      const noexcept {
    return mass_;
  }

 private:
  std::unordered_map<std::uint64_t, double> mass_;
  double total_ = 0.0;
};

/// x * log2(1/x) extended continuously to x = 0.
[[nodiscard]] double xlog2_term(double x) noexcept;

/// Binary entropy h(p) in bits.
[[nodiscard]] double binary_entropy(double p) noexcept;

}  // namespace ds::info
