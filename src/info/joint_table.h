// Exact joint distributions over tuples of discrete random variables.
//
// A JointTable holds the full joint law of a fixed set of named columns
// (random variables), each outcome a uint64 key.  All the information
// quantities the paper's proof manipulates reduce to projections of this
// table:
//
//   H(A)           = entropy({A})
//   H(A | B)       = entropy({A, B}) - entropy({B})
//   I(A ; B | C)   = H(A | C) - H(A | B, C)
//
// Building the table costs |support| work, after which every identity in
// Fact 2.2 and Propositions 2.3/2.4 can be checked numerically — that is
// exactly what tests/info and bench_info_accounting do.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "info/distribution.h"

namespace ds::info {

class JointTable {
 public:
  /// Column names fix the variable order; rows are added against it.
  explicit JointTable(std::vector<std::string> columns);

  [[nodiscard]] std::size_t num_columns() const noexcept {
    return columns_.size();
  }
  [[nodiscard]] const std::vector<std::string>& columns() const noexcept {
    return columns_;
  }

  /// Accumulate probability mass on a full outcome tuple.
  void add_row(std::span<const std::uint64_t> outcome, double mass);
  void add_row(std::initializer_list<std::uint64_t> outcome, double mass);

  /// Scale total mass to 1.
  void normalize();
  [[nodiscard]] double total_mass() const noexcept { return total_; }
  [[nodiscard]] std::size_t support_size() const noexcept {
    return rows_.size();
  }

  /// Joint entropy (bits) of the named subset of columns.
  [[nodiscard]] double entropy(std::span<const std::string> vars) const;
  [[nodiscard]] double entropy(std::initializer_list<std::string> vars) const;

  /// H(a | given).
  [[nodiscard]] double conditional_entropy(
      std::span<const std::string> a, std::span<const std::string> given) const;

  /// I(a ; b | given); pass an empty `given` for unconditional MI.
  [[nodiscard]] double mutual_information(
      std::span<const std::string> a, std::span<const std::string> b,
      std::span<const std::string> given = {}) const;

  /// Convenience overloads for brace-list call sites.
  [[nodiscard]] double mutual_information(
      std::initializer_list<std::string> a,
      std::initializer_list<std::string> b,
      std::initializer_list<std::string> given = {}) const;

 private:
  struct Row {
    std::vector<std::uint64_t> outcome;
    double mass;
  };

  [[nodiscard]] std::vector<std::size_t> column_indices(
      std::span<const std::string> vars) const;
  [[nodiscard]] double entropy_of_indices(
      std::span<const std::size_t> indices) const;

  std::vector<std::string> columns_;
  std::vector<Row> rows_;
  double total_ = 0.0;
};

}  // namespace ds::info
