#include "info/distribution.h"

#include <cassert>
#include <cmath>

namespace ds::info {

double xlog2_term(double x) noexcept {
  return x <= 0.0 ? 0.0 : -x * std::log2(x);
}

double binary_entropy(double p) noexcept {
  return xlog2_term(p) + xlog2_term(1.0 - p);
}

void Distribution::add(std::uint64_t outcome, double mass) {
  assert(mass >= 0.0);
  if (mass == 0.0) return;
  mass_[outcome] += mass;
  total_ += mass;
}

void Distribution::normalize() {
  if (total_ == 0.0) return;
  for (auto& [outcome, mass] : mass_) mass /= total_;
  total_ = 1.0;
}

double Distribution::probability(std::uint64_t outcome) const {
  const auto it = mass_.find(outcome);
  return it == mass_.end() ? 0.0 : it->second;
}

double Distribution::entropy() const {
  assert(std::abs(total_ - 1.0) < 1e-9);
  double h = 0.0;
  for (const auto& [outcome, mass] : mass_) h += xlog2_term(mass);
  return h;
}

Distribution Distribution::uniform(std::uint64_t n) {
  Distribution d;
  for (std::uint64_t i = 0; i < n; ++i) d.add(i, 1.0);
  d.normalize();
  return d;
}

}  // namespace ds::info
