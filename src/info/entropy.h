// Checkers for the information-theoretic toolkit of Section 2.3.
//
// These functions evaluate both sides of Fact 2.2 and Propositions 2.3/2.4
// on a concrete JointTable.  The tests run them on randomly generated joint
// laws (where the hypotheses are arranged by construction) and the
// accounting bench runs them on the actual protocol transcripts.
#pragma once

#include <string>

#include "info/joint_table.h"
#include "util/rng.h"

namespace ds::info {

/// Result of checking an inequality lhs <= rhs (or identity lhs == rhs).
struct CheckResult {
  double lhs;
  double rhs;
  bool holds;  // within tolerance
};

inline constexpr double kTolerance = 1e-9;

/// Fact 2.2-(3): H(A | B, C) <= H(A | B).
[[nodiscard]] CheckResult check_conditioning_reduces_entropy(
    const JointTable& table, const std::string& a, const std::string& b,
    const std::string& c);

/// Fact 2.2-(4): H(A, B | C) == H(A | C) + H(B | C, A).
[[nodiscard]] CheckResult check_entropy_chain_rule(const JointTable& table,
                                                   const std::string& a,
                                                   const std::string& b,
                                                   const std::string& c);

/// Fact 2.2-(5): I(A, B ; C | D) == I(A ; C | D) + I(B ; C | A, D).
[[nodiscard]] CheckResult check_mi_chain_rule(const JointTable& table,
                                              const std::string& a,
                                              const std::string& b,
                                              const std::string& c,
                                              const std::string& d);

/// Proposition 2.3: if A independent of D given C then
/// I(A ; B | C) <= I(A ; B | C, D).
[[nodiscard]] CheckResult check_proposition_2_3(const JointTable& table,
                                                const std::string& a,
                                                const std::string& b,
                                                const std::string& c,
                                                const std::string& d);

/// Proposition 2.4: if A independent of D given (B, C) then
/// I(A ; B | C) >= I(A ; B | C, D).
[[nodiscard]] CheckResult check_proposition_2_4(const JointTable& table,
                                                const std::string& a,
                                                const std::string& b,
                                                const std::string& c,
                                                const std::string& d);

/// True iff A is independent of B given C in the table (tests the exact
/// factorization within tolerance), i.e. I(A ; B | C) == 0.
[[nodiscard]] bool conditionally_independent(const JointTable& table,
                                             const std::string& a,
                                             const std::string& b,
                                             const std::string& c);

/// A random joint table on the given columns: outcomes drawn over
/// alphabet [0, alphabet) per column, with `support` rows of uniform
/// random mass.  Used by the property tests.
[[nodiscard]] JointTable random_joint_table(
    const std::vector<std::string>& columns, std::uint64_t alphabet,
    std::size_t support, util::Rng& rng);

}  // namespace ds::info
