// Private-coin execution: each player draws its own independent
// randomness and the referee gets yet another stream — nobody shares.
//
// [BMRT14] (cited in §1.3) separates deterministic, private-coin and
// public-coin simultaneous protocols.  This runner makes the separation
// executable: protocols whose correctness rides on SHARED hash functions
// (AGM sketches: the referee must rebuild the exact same samplers)
// collapse under private coins, while protocols that only use randomness
// locally (footnote-1 bridge finding: sampling is local, the signed sum
// is deterministic, the referee never touches coins) keep working.
#pragma once

#include "engine/charge.h"
#include "engine/instrumentation.h"
#include "model/runner.h"

namespace ds::model {

/// Run `protocol` giving player v the coins derived from
/// (seed_base, v+1) and the referee the coins derived from
/// (seed_base, 0) — all mutually independent streams.
template <typename Output>
[[nodiscard]] RunResult<Output> run_protocol_private_coins(
    const graph::Graph& g, const SketchingProtocol<Output>& protocol,
    std::uint64_t seed_base) {
  RunResult<Output> result{};
  std::vector<util::BitString> sketches;
  sketches.reserve(g.num_vertices());
  for (graph::Vertex v = 0; v < g.num_vertices(); ++v) {
    const PublicCoins private_coins(util::mix64(seed_base, v + 1));
    const VertexView view{g.num_vertices(), v, g.neighbors(v),
                          &private_coins};
    util::BitWriter writer;
    protocol.encode(view, writer);
    sketches.emplace_back(std::move(writer));
  }
  // Charge through the engine's single CommStats site (docs/ENGINE.md).
  engine::ChargeSheet sheet(sketches.size());
  engine::PlainInstrumentation plain;
  result.comm = sheet.charge_round(sketches, plain);
  const PublicCoins referee_coins(util::mix64(seed_base, 0));
  result.output =
      protocol.decode(g.num_vertices(), sketches, referee_coins);
  return result;
}

}  // namespace ds::model
