#include "model/edge_partition.h"

#include "util/rng.h"

namespace ds::model {

EdgePartitionedInstance partition_edges_randomly(const graph::Graph& g,
                                                 std::uint32_t players,
                                                 util::Rng& rng) {
  EdgePartitionedInstance instance;
  instance.graph = g;
  instance.num_players = players;
  instance.player_edges.assign(players, {});
  for (const graph::Edge& e : g.edges()) {
    instance.player_edges[rng.next_below(players)].push_back(e);
  }
  return instance;
}

}  // namespace ds::model
