// Multi-round (adaptive) sketching: the broadcast congested clique with
// more than one round.
//
// The paper's Section 1.1 notes that allowing one extra round drops the
// complexity of both maximal matching and MIS to O(sqrt n) per player
// ([Lattanzi et al. 2011], [Ghaffari et al. 2018]).  This runner implements
// the general R-round pattern:
//
//   round 0:  every player sends a sketch based on (view).
//   referee:  computes a broadcast from the sketches so far.
//   round i:  every player sends a sketch based on (view, broadcasts 0..i-1).
//   finally:  the referee decodes from everything.
//
// Broadcast bits are charged separately (they are "downlink", not part of
// the per-player sketch cost the lower bound speaks about, but reported so
// experiments can show the full budget honestly).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "model/protocol.h"
#include "obs/obs.h"
#include "parallel/thread_pool.h"

namespace ds::model {

namespace detail {
/// Adaptive-runner metrics (docs/OBSERVABILITY.md): round count and the
/// referee's per-round downlink size.  Per-sketch bits are charged to the
/// shared model.encode.* series by the encode loop below.
inline obs::Counter& adaptive_rounds_counter() {
  static obs::Counter& c = obs::counter("model.adaptive.rounds");
  return c;
}
inline obs::Histogram& adaptive_broadcast_bits_histogram() {
  static obs::Histogram& h = obs::histogram("model.adaptive.broadcast_bits");
  return h;
}
}  // namespace detail

template <typename Output>
class AdaptiveProtocol {
 public:
  virtual ~AdaptiveProtocol() = default;

  [[nodiscard]] virtual unsigned num_rounds() const = 0;

  /// Player algorithm for the given round; `broadcasts` has one entry per
  /// completed earlier round.
  virtual void encode_round(const VertexView& view, unsigned round,
                            std::span<const util::BitString> broadcasts,
                            util::BitWriter& out) const = 0;

  /// Referee: produce the broadcast after `round` completes.  Only called
  /// for round < num_rounds() - 1. rounds_so_far[i][v] is vertex v's
  /// round-i sketch.
  [[nodiscard]] virtual util::BitString make_broadcast(
      unsigned round, graph::Vertex n,
      std::span<const std::vector<util::BitString>> rounds_so_far,
      const PublicCoins& coins) const = 0;

  /// Referee: final output from all rounds' sketches.
  [[nodiscard]] virtual Output decode(
      graph::Vertex n,
      std::span<const std::vector<util::BitString>> all_rounds,
      std::span<const util::BitString> broadcasts,
      const PublicCoins& coins) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

template <typename Output>
struct AdaptiveRunResult {
  Output output;
  CommStats comm;                  // across all rounds, per player totals
  std::vector<CommStats> by_round; // per-round breakdown
  std::size_t broadcast_bits = 0;  // total referee downlink
};

template <typename Output>
[[nodiscard]] AdaptiveRunResult<Output> run_adaptive(
    const graph::Graph& g, const AdaptiveProtocol<Output>& protocol,
    const PublicCoins& coins, parallel::ThreadPool* pool = nullptr) {
  const unsigned rounds = protocol.num_rounds();
  const graph::Vertex n = g.num_vertices();

  // Same series as the one-round runner, so the obs audit can compare
  // histogram totals against CommStats regardless of which runner ran.
  obs::Counter& sketches_counter = obs::counter("model.encode.sketches");
  obs::Histogram& bits_histogram =
      obs::histogram("model.encode.sketch_bits");

  AdaptiveRunResult<Output> result{};
  std::vector<std::vector<util::BitString>> all_rounds;
  std::vector<util::BitString> broadcasts;
  // Per-player cumulative bits, to compute the true worst-case player.
  std::vector<std::size_t> player_bits(n, 0);

  for (unsigned round = 0; round < rounds; ++round) {
    // Within a round every player sees only (view, earlier broadcasts),
    // so the encode loop parallelizes exactly like the one-round runner;
    // the broadcast barrier between rounds stays sequential by design.
    std::vector<util::BitString> sketches(n);
    const CommStats round_comm = parallel::parallel_reduce(
        pool, std::size_t{0}, std::size_t{n}, CommStats{},
        [&](CommStats& acc, std::size_t i) {
          const auto v = static_cast<graph::Vertex>(i);
          const VertexView view{n, v, g.neighbors(v), &coins};
          util::BitWriter writer;
          protocol.encode_round(view, round, broadcasts, writer);
          acc.record(writer.bit_count());
          sketches_counter.increment();
          bits_histogram.record(writer.bit_count());
          player_bits[i] += writer.bit_count();
          sketches[i] = util::BitString(writer);
        },
        [](CommStats& into, const CommStats& from) { into.merge(from); });
    result.by_round.push_back(round_comm);
    all_rounds.push_back(std::move(sketches));
    detail::adaptive_rounds_counter().increment();

    if (round + 1 < rounds) {
      util::BitString b = protocol.make_broadcast(round, n, all_rounds, coins);
      detail::adaptive_broadcast_bits_histogram().record(b.bit_count());
      result.broadcast_bits += b.bit_count();
      broadcasts.push_back(std::move(b));
    }
  }

  for (std::size_t bits : player_bits) result.comm.record(bits);
  {
    const obs::ScopedSpan span("model.decode",
                               &obs::histogram("model.decode_us"));
    result.output = protocol.decode(n, all_rounds, broadcasts, coins);
  }
  return result;
}

}  // namespace ds::model
