// Multi-round (adaptive) sketching: the broadcast congested clique with
// more than one round.
//
// The paper's Section 1.1 notes that allowing one extra round drops the
// complexity of both maximal matching and MIS to O(sqrt n) per player
// ([Lattanzi et al. 2011], [Ghaffari et al. 2018]).  This runner implements
// the general R-round pattern:
//
//   round 0:  every player sends a sketch based on (view).
//   referee:  computes a broadcast from the sketches so far.
//   round i:  every player sends a sketch based on (view, broadcasts 0..i-1).
//   finally:  the referee decodes from everything.
//
// Broadcast bits are charged separately (they are "downlink", not part of
// the per-player sketch cost the lower bound speaks about, but reported so
// experiments can show the full budget honestly).
//
// run_adaptive is a thin adapter over the round engine
// (engine/round_engine.h) — the same collect/charge/broadcast/decode loop
// the one-round runner uses with R = 1 — with the obs-metrics
// instrumentation policy in adaptive mode (round counter + broadcast
// histogram on top of the shared model.encode.* series, all owned by
// engine/instrumentation.cpp).
#pragma once

#include <span>
#include <string>
#include <utility>
#include <vector>

#include "engine/local_source.h"
#include "engine/round_engine.h"
#include "model/protocol.h"
#include "parallel/thread_pool.h"

namespace ds::model {

template <typename Output>
class AdaptiveProtocol {
 public:
  virtual ~AdaptiveProtocol() = default;

  [[nodiscard]] virtual unsigned num_rounds() const = 0;

  /// Player algorithm for the given round; `broadcasts` has one entry per
  /// completed earlier round.
  virtual void encode_round(const VertexView& view, unsigned round,
                            std::span<const util::BitString> broadcasts,
                            util::BitWriter& out) const = 0;

  /// Referee: produce the broadcast after `round` completes.  Only called
  /// for round < num_rounds() - 1. rounds_so_far[i][v] is vertex v's
  /// round-i sketch.
  [[nodiscard]] virtual util::BitString make_broadcast(
      unsigned round, graph::Vertex n,
      std::span<const std::vector<util::BitString>> rounds_so_far,
      const PublicCoins& coins) const = 0;

  /// Referee: final output from all rounds' sketches.
  [[nodiscard]] virtual Output decode(
      graph::Vertex n,
      std::span<const std::vector<util::BitString>> all_rounds,
      std::span<const util::BitString> broadcasts,
      const PublicCoins& coins) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

template <typename Output>
struct AdaptiveRunResult {
  Output output;
  CommStats comm;                  // across all rounds, per player totals
  std::vector<CommStats> by_round; // per-round breakdown
  std::size_t broadcast_bits = 0;  // total referee downlink
};

template <typename Output>
[[nodiscard]] AdaptiveRunResult<Output> run_adaptive(
    const graph::Graph& g, const AdaptiveProtocol<Output>& protocol,
    const PublicCoins& coins, parallel::ThreadPool* pool = nullptr,
    engine::SketchArena* arena = nullptr) {
  const graph::Vertex n = g.num_vertices();
  // Within a round every player sees only (view, earlier broadcasts), so
  // the encode loop parallelizes exactly like the one-round runner; the
  // broadcast barrier between rounds stays sequential by design.
  auto source = engine::make_local_source(
      n, engine::graph_view_fn(g, coins),
      [&protocol](const VertexView& view, unsigned round,
                  std::span<const util::BitString> broadcasts,
                  util::BitWriter& out) {
        protocol.encode_round(view, round, broadcasts, out);
      },
      pool, arena);
  const engine::AdaptiveReferee<Output> referee(protocol, coins);
  engine::ObsInstrumentation instr(/*adaptive=*/true);
  engine::EngineResult<Output> run =
      engine::run_rounds(n, referee, source, instr);
  if (arena != nullptr) arena->reclaim_rounds(std::move(run.all_rounds));
  return {std::move(run.output), run.comm, std::move(run.by_round),
          run.broadcast_bits};
}

}  // namespace ds::model
