// Public coins for the distributed sketching model.
//
// All players and the referee share a random string fixed before the input
// is revealed (Section 2.1).  We realize it as a seed: any party may derive
// the stream tagged (purpose, index) and all parties deriving the same tag
// read identical bits.  Because streams are derived by hashing and never
// consumed destructively, a player cannot "use up" coins another player
// needs — matching the shared-random-string abstraction exactly.
#pragma once

#include <cstdint>

#include "util/hashing.h"
#include "util/rng.h"

namespace ds::model {

class PublicCoins {
 public:
  explicit PublicCoins(std::uint64_t seed) noexcept
      : root_(seed), seed_(seed) {}

  /// The seed this coin sequence was constructed from.  Two PublicCoins
  /// with equal seeds are behaviourally identical (every stream/hash call
  /// agrees), so the seed is a sound identity key for caching sketch
  /// shapes derived from the coins.
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// An Rng stream for the given tag; equal tags yield equal streams.
  [[nodiscard]] util::Rng stream(std::uint64_t tag) const noexcept {
    return root_.child(tag);
  }
  [[nodiscard]] util::Rng stream(std::uint64_t tag_hi,
                                 std::uint64_t tag_lo) const noexcept {
    return root_.child(tag_hi, tag_lo);
  }

  /// A k-wise independent hash function keyed by tag, identical for every
  /// party that asks for the same tag.
  [[nodiscard]] util::KWiseHash hash(std::uint64_t tag,
                                     unsigned independence) const {
    util::Rng rng = stream(tag);
    return util::KWiseHash(independence, rng);
  }

 private:
  util::Rng root_;
  std::uint64_t seed_ = 0;
};

/// Well-known tag prefixes, so independent subsystems never collide on a
/// coin stream. Tags are formed as mix64(prefix, index).
enum class CoinTag : std::uint64_t {
  kLevelHash = 0x101,       // L0 sampler level hashes
  kBucketHash = 0x102,      // s-sparse bucket hashes
  kFingerprint = 0x103,     // sparse-recovery fingerprints
  kEdgeSample = 0x201,      // budgeted edge-sampling protocols
  kPalette = 0x301,         // palette sparsification color lists
  kMark = 0x401,            // two-round MIS vertex marking
  kShuffle = 0x501,         // referee-side tie-breaking
};

[[nodiscard]] inline std::uint64_t coin_tag(CoinTag prefix,
                                            std::uint64_t index) noexcept {
  return util::mix64(static_cast<std::uint64_t>(prefix), index);
}

}  // namespace ds::model
