// Executes a one-round sketching protocol on a graph.
//
// This is a thin adapter: the actual collect/charge/decode loop is the
// round engine (engine/round_engine.h), run here as its R = 1 case with
// an in-process LocalSource and the obs-metrics instrumentation policy.
// The engine's ChargeSheet is the single place sketch bits enter
// CommStats, and results — outputs AND bit accounting — are identical to
// the serial loop at any thread count (docs/ENGINE.md, docs/PARALLELISM.md).
//
// Pass a ThreadPool to choose one explicitly; null uses the global pool
// (sized by DISTSKETCH_THREADS).  Pass a SketchArena to pool the encode
// buffers across repeated runs on same-shaped instances (sweeps, benches):
// steady-state encodes then perform zero per-vertex heap allocations.  An
// arena must not be shared between concurrently running trials.
#pragma once

#include <span>
#include <utility>

#include "engine/local_source.h"
#include "engine/round_engine.h"
#include "graph/weighted.h"
#include "model/protocol.h"
#include "obs/obs.h"
#include "parallel/thread_pool.h"

namespace ds::model {

template <typename Output>
struct RunResult {
  Output output;
  CommStats comm;
};

namespace detail {

/// Wrap a one-round protocol's encode as the engine's round-aware
/// EncodeFn (round and broadcasts are vacuous for R = 1).
template <typename Output>
[[nodiscard]] auto one_round_encode(
    const SketchingProtocol<Output>& protocol) {
  return [&protocol](const VertexView& view, unsigned /*round*/,
                     std::span<const util::BitString> /*broadcasts*/,
                     util::BitWriter& out) { protocol.encode(view, out); };
}

/// The weighted model view for vertex v of g.
[[nodiscard]] inline auto weighted_view_fn(const graph::WeightedGraph& g,
                                           const PublicCoins& coins) {
  return [&g, &coins](graph::Vertex v) {
    return VertexView{g.num_vertices(), v, g.topology().neighbors(v),
                      &coins, g.neighbor_weights(v)};
  };
}

/// Shared one-round adapter body: run the engine, reclaim arena storage.
template <typename Output, typename ViewFn>
[[nodiscard]] RunResult<Output> run_one_round(
    graph::Vertex n, const SketchingProtocol<Output>& protocol,
    const PublicCoins& coins, ViewFn view_of, parallel::ThreadPool* pool,
    engine::SketchArena* arena) {
  auto source = engine::make_local_source(
      n, std::move(view_of), one_round_encode(protocol), pool, arena);
  const engine::OneRoundReferee<Output> referee(protocol, coins);
  engine::ObsInstrumentation instr(/*adaptive=*/false);
  engine::EngineResult<Output> run =
      engine::run_rounds(n, referee, source, instr);
  if (arena != nullptr) arena->reclaim_rounds(std::move(run.all_rounds));
  return {std::move(run.output), run.comm};
}

/// Shared collect-only body (no decode): one engine round, charged
/// through the same ChargeSheet site, merged into the caller's stats.
template <typename Output, typename ViewFn>
[[nodiscard]] std::vector<util::BitString> collect_one_round(
    graph::Vertex n, const SketchingProtocol<Output>& protocol,
    ViewFn view_of, CommStats& comm, parallel::ThreadPool* pool) {
  auto source = engine::make_local_source(
      n, std::move(view_of), one_round_encode(protocol), pool,
      /*arena=*/nullptr);
  engine::ObsInstrumentation instr(/*adaptive=*/false);
  std::vector<util::BitString> sketches;
  {
    const auto span = instr.collect_span();
    sketches = source.collect(0, {});
  }
  engine::ChargeSheet sheet(n);
  comm.merge(sheet.charge_round(sketches, instr));
  return sketches;
}

}  // namespace detail

/// Materialize every player's sketch for `g` under `protocol`.
template <typename Output>
[[nodiscard]] std::vector<util::BitString> collect_sketches(
    const graph::Graph& g, const SketchingProtocol<Output>& protocol,
    const PublicCoins& coins, CommStats& comm,
    parallel::ThreadPool* pool = nullptr) {
  return detail::collect_one_round(g.num_vertices(), protocol,
                                   engine::graph_view_fn(g, coins), comm,
                                   pool);
}

template <typename Output>
[[nodiscard]] RunResult<Output> run_protocol(
    const graph::Graph& g, const SketchingProtocol<Output>& protocol,
    const PublicCoins& coins, parallel::ThreadPool* pool = nullptr,
    engine::SketchArena* arena = nullptr) {
  return detail::run_one_round(g.num_vertices(), protocol, coins,
                               engine::graph_view_fn(g, coins), pool,
                               arena);
}

/// Weighted runner: views additionally carry per-neighbor weights.
template <typename Output>
[[nodiscard]] std::vector<util::BitString> collect_sketches(
    const graph::WeightedGraph& g, const SketchingProtocol<Output>& protocol,
    const PublicCoins& coins, CommStats& comm,
    parallel::ThreadPool* pool = nullptr) {
  return detail::collect_one_round(g.num_vertices(), protocol,
                                   detail::weighted_view_fn(g, coins), comm,
                                   pool);
}

template <typename Output>
[[nodiscard]] RunResult<Output> run_protocol(
    const graph::WeightedGraph& g, const SketchingProtocol<Output>& protocol,
    const PublicCoins& coins, parallel::ThreadPool* pool = nullptr,
    engine::SketchArena* arena = nullptr) {
  return detail::run_one_round(g.num_vertices(), protocol, coins,
                               detail::weighted_view_fn(g, coins), pool,
                               arena);
}

}  // namespace ds::model
