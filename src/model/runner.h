// Executes a one-round sketching protocol on a graph.
//
// The runner is the only code that sees both the whole graph and the
// protocol: it slices the graph into per-vertex views, collects the
// sketches (charging exact bit counts), and hands them to the referee.
#pragma once

#include <span>

#include "graph/weighted.h"
#include "model/protocol.h"

namespace ds::model {

template <typename Output>
struct RunResult {
  Output output;
  CommStats comm;
};

/// Materialize every player's sketch for `g` under `protocol`.
template <typename Output>
[[nodiscard]] std::vector<util::BitString> collect_sketches(
    const graph::Graph& g, const SketchingProtocol<Output>& protocol,
    const PublicCoins& coins, CommStats& comm) {
  std::vector<util::BitString> sketches;
  sketches.reserve(g.num_vertices());
  for (graph::Vertex v = 0; v < g.num_vertices(); ++v) {
    const VertexView view{g.num_vertices(), v, g.neighbors(v), &coins};
    util::BitWriter writer;
    protocol.encode(view, writer);
    comm.record(writer.bit_count());
    sketches.emplace_back(writer);
  }
  return sketches;
}

template <typename Output>
[[nodiscard]] RunResult<Output> run_protocol(
    const graph::Graph& g, const SketchingProtocol<Output>& protocol,
    const PublicCoins& coins) {
  CommStats comm;
  const std::vector<util::BitString> sketches =
      collect_sketches(g, protocol, coins, comm);
  return {protocol.decode(g.num_vertices(), sketches, coins),
          comm};
}

/// Weighted runner: views additionally carry per-neighbor weights.
template <typename Output>
[[nodiscard]] std::vector<util::BitString> collect_sketches(
    const graph::WeightedGraph& g, const SketchingProtocol<Output>& protocol,
    const PublicCoins& coins, CommStats& comm) {
  std::vector<util::BitString> sketches;
  sketches.reserve(g.num_vertices());
  for (graph::Vertex v = 0; v < g.num_vertices(); ++v) {
    const VertexView view{g.num_vertices(), v, g.topology().neighbors(v),
                          &coins, g.neighbor_weights(v)};
    util::BitWriter writer;
    protocol.encode(view, writer);
    comm.record(writer.bit_count());
    sketches.emplace_back(writer);
  }
  return sketches;
}

template <typename Output>
[[nodiscard]] RunResult<Output> run_protocol(
    const graph::WeightedGraph& g, const SketchingProtocol<Output>& protocol,
    const PublicCoins& coins) {
  CommStats comm;
  const std::vector<util::BitString> sketches =
      collect_sketches(g, protocol, coins, comm);
  return {protocol.decode(g.num_vertices(), sketches, coins), comm};
}

}  // namespace ds::model
