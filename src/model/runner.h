// Executes a one-round sketching protocol on a graph.
//
// The runner is the only code that sees both the whole graph and the
// protocol: it slices the graph into per-vertex views, collects the
// sketches (charging exact bit counts), and hands them to the referee.
//
// Sketch collection runs through the deterministic thread pool
// (src/parallel): each player's message is a function of its own view and
// the public coins only (Section 2.1), so per-vertex encodes are
// independent by construction.  Messages land in slot sketches[v] and the
// per-chunk CommStats are merged in vertex order, so the result — outputs
// AND bit accounting — is identical to the serial loop at any thread
// count.  Pass a ThreadPool to choose one explicitly; null uses the
// global pool (sized by DISTSKETCH_THREADS).
#pragma once

#include <span>

#include "graph/weighted.h"
#include "model/protocol.h"
#include "obs/obs.h"
#include "parallel/thread_pool.h"

namespace ds::model {

template <typename Output>
struct RunResult {
  Output output;
  CommStats comm;
};

namespace detail {

/// Model-layer metrics (docs/OBSERVABILITY.md).  The sketch_bits
/// histogram mirrors CommStats exactly: count == players encoded,
/// sum == total_bits, max == max_bits — the obs audit test cross-checks
/// them.  All updates are atomics outside the deterministic reduction
/// path, so results stay bit-identical at any thread count.
inline obs::Counter& encode_sketches_counter() {
  static obs::Counter& c = obs::counter("model.encode.sketches");
  return c;
}
inline obs::Histogram& encode_sketch_bits_histogram() {
  static obs::Histogram& h = obs::histogram("model.encode.sketch_bits");
  return h;
}
inline obs::Histogram& collect_us_histogram() {
  static obs::Histogram& h = obs::histogram("model.collect_us");
  return h;
}
inline obs::Histogram& decode_us_histogram() {
  static obs::Histogram& h = obs::histogram("model.decode_us");
  return h;
}

/// The shared encode loop: materialize view_of(v) for every vertex,
/// encode it, and charge exact bits.  CommStats accumulate per chunk and
/// merge in vertex order — bit-identical to the serial record() sequence.
template <typename Output, typename ViewFn>
[[nodiscard]] std::vector<util::BitString> collect_sketches_impl(
    graph::Vertex n, const SketchingProtocol<Output>& protocol,
    const ViewFn& view_of, CommStats& comm, parallel::ThreadPool* pool) {
  const obs::ScopedSpan span("model.collect", &collect_us_histogram());
  obs::Counter& sketches_counter = encode_sketches_counter();
  obs::Histogram& bits_histogram = encode_sketch_bits_histogram();
  std::vector<util::BitString> sketches(n);
  CommStats encoded = parallel::parallel_reduce(
      pool, std::size_t{0}, std::size_t{n}, CommStats{},
      [&](CommStats& acc, std::size_t i) {
        const auto v = static_cast<graph::Vertex>(i);
        util::BitWriter writer;
        protocol.encode(view_of(v), writer);
        acc.record(writer.bit_count());
        sketches_counter.increment();
        bits_histogram.record(writer.bit_count());
        sketches[i] = util::BitString(writer);
      },
      [](CommStats& into, const CommStats& from) { into.merge(from); });
  comm.merge(encoded);
  return sketches;
}

}  // namespace detail

/// Materialize every player's sketch for `g` under `protocol`.
template <typename Output>
[[nodiscard]] std::vector<util::BitString> collect_sketches(
    const graph::Graph& g, const SketchingProtocol<Output>& protocol,
    const PublicCoins& coins, CommStats& comm,
    parallel::ThreadPool* pool = nullptr) {
  return detail::collect_sketches_impl(
      g.num_vertices(), protocol,
      [&g, &coins](graph::Vertex v) {
        return VertexView{g.num_vertices(), v, g.neighbors(v), &coins};
      },
      comm, pool);
}

template <typename Output>
[[nodiscard]] RunResult<Output> run_protocol(
    const graph::Graph& g, const SketchingProtocol<Output>& protocol,
    const PublicCoins& coins, parallel::ThreadPool* pool = nullptr) {
  CommStats comm;
  const std::vector<util::BitString> sketches =
      collect_sketches(g, protocol, coins, comm, pool);
  const obs::ScopedSpan span("model.decode",
                             &detail::decode_us_histogram());
  return {protocol.decode(g.num_vertices(), sketches, coins),
          comm};
}

/// Weighted runner: views additionally carry per-neighbor weights.
template <typename Output>
[[nodiscard]] std::vector<util::BitString> collect_sketches(
    const graph::WeightedGraph& g, const SketchingProtocol<Output>& protocol,
    const PublicCoins& coins, CommStats& comm,
    parallel::ThreadPool* pool = nullptr) {
  return detail::collect_sketches_impl(
      g.num_vertices(), protocol,
      [&g, &coins](graph::Vertex v) {
        return VertexView{g.num_vertices(), v, g.topology().neighbors(v),
                          &coins, g.neighbor_weights(v)};
      },
      comm, pool);
}

template <typename Output>
[[nodiscard]] RunResult<Output> run_protocol(
    const graph::WeightedGraph& g, const SketchingProtocol<Output>& protocol,
    const PublicCoins& coins, parallel::ThreadPool* pool = nullptr) {
  CommStats comm;
  const std::vector<util::BitString> sketches =
      collect_sketches(g, protocol, coins, comm, pool);
  const obs::ScopedSpan span("model.decode",
                             &detail::decode_us_histogram());
  return {protocol.decode(g.num_vertices(), sketches, coins), comm};
}

}  // namespace ds::model
