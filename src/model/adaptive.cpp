#include "model/adaptive.h"

// run_adaptive is a template defined in the header; this translation unit
// anchors the library.
namespace ds::model {}
