// The distributed sketching model (Section 2.1).
//
// One player per vertex.  A player's entire input is captured by
// `VertexView`: the number of vertices, its own id, its sorted neighbor
// list, and the public coins.  The encoder is a const member receiving only
// the view and a BitWriter — by construction it cannot read the rest of the
// graph, other players' messages, or the referee's state.  The referee
// receives all n sketches plus the coins and produces the output.
//
// Outputs are plain value types (Matching, VertexSet, Forest, Coloring);
// protocols are typed on their output so the harness can score them with
// the right validator.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/matching.h"
#include "model/coins.h"
#include "util/bitio.h"

namespace ds::model {

struct VertexView {
  graph::Vertex n;                           // |V|
  graph::Vertex id;                          // this player's vertex
  std::span<const graph::Vertex> neighbors;  // sorted
  const PublicCoins* coins;                  // shared random string
  /// For weighted inputs: weights[i] is the weight of the edge to
  /// neighbors[i]. Empty on unweighted runs.
  std::span<const std::uint32_t> neighbor_weights{};

  [[nodiscard]] std::uint32_t degree() const noexcept {
    return static_cast<std::uint32_t>(neighbors.size());
  }
  /// True iff this view carries per-edge weights.  An isolated vertex has
  /// no incident edges and hence no weights, so it reports unweighted on
  /// weighted and unweighted runs alike — deliberately: a degree-zero
  /// player's view is identical in both cases, and letting it distinguish
  /// them would hand encoders information that is not in the view (the
  /// locality rule of Section 2.1).  The previous definition
  /// (`!neighbor_weights.empty() || neighbors.empty()`) got this wrong in
  /// both directions, claiming weighted() == true for isolated vertices
  /// on unweighted runs.  Regression: tests/model/vertex_view_test.cpp.
  [[nodiscard]] bool weighted() const noexcept {
    return !neighbor_weights.empty();
  }
};

/// One-round simultaneous protocol with output type Output.
template <typename Output>
class SketchingProtocol {
 public:
  virtual ~SketchingProtocol() = default;

  /// The player algorithm: write this vertex's sketch.
  virtual void encode(const VertexView& view, util::BitWriter& out) const = 0;

  /// The referee algorithm: sketches[v] is vertex v's message.
  [[nodiscard]] virtual Output decode(
      graph::Vertex n, std::span<const util::BitString> sketches,
      const PublicCoins& coins) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Common output types.
using MatchingOutput = graph::Matching;             // maximal matching
using VertexSetOutput = std::vector<graph::Vertex>; // MIS
using ForestOutput = std::vector<graph::Edge>;      // spanning forest
using ColoringOutput = std::vector<std::uint32_t>;  // color per vertex

/// Exact bit accounting for one run.
struct CommStats {
  std::size_t max_bits = 0;    // the paper's cost measure (worst player)
  std::size_t total_bits = 0;  // summed over players
  std::size_t num_players = 0;

  [[nodiscard]] double avg_bits() const noexcept {
    return num_players == 0
               ? 0.0
               : static_cast<double>(total_bits) /
                     static_cast<double>(num_players);
  }
  void record(std::size_t bits) noexcept {
    max_bits = bits > max_bits ? bits : max_bits;
    total_bits += bits;
    ++num_players;
  }
  void merge(const CommStats& other) noexcept {
    max_bits = other.max_bits > max_bits ? other.max_bits : max_bits;
    total_bits += other.total_bits;
    num_players += other.num_players;
  }
};

}  // namespace ds::model
