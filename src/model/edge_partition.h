// The edge-partitioned simultaneous model of [AKLY16] — the starting
// point of the paper's technique (§1.2).
//
// The edge set is split among a small number of players (no sharing: each
// edge belongs to exactly ONE player); players simultaneously message a
// referee.  Contrast with the paper's model, where the input is
// vertex-partitioned WITH sharing (each edge seen by both endpoints).
// §1.2 explains why lifting the [AKLY16] argument to vertex partitioning
// is the hard part — this runner lets experiments quantify the gap
// between the two partitions on the same instances.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "engine/charge.h"
#include "engine/instrumentation.h"
#include "graph/graph.h"
#include "model/protocol.h"
#include "util/bitio.h"

namespace ds::model {

/// What an edge-partition player sees: its own edge list (plus n and the
/// coins). There is no vertex identity — a player may hold edges all over
/// the graph.
struct EdgePlayerView {
  graph::Vertex n;
  std::uint32_t player;
  std::span<const graph::Edge> edges;
  const PublicCoins* coins;
};

template <typename Output>
class EdgePartitionProtocol {
 public:
  virtual ~EdgePartitionProtocol() = default;
  virtual void encode(const EdgePlayerView& view,
                      util::BitWriter& out) const = 0;
  [[nodiscard]] virtual Output decode(
      graph::Vertex n, std::span<const util::BitString> sketches,
      const PublicCoins& coins) const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

struct EdgePartitionedInstance {
  graph::Graph graph;
  std::uint32_t num_players = 0;
  /// player_edges[p] = the edges assigned to player p (disjoint union =
  /// graph.edges()).
  std::vector<std::vector<graph::Edge>> player_edges;
};

/// Uniformly random assignment of each edge to one of `players`.
[[nodiscard]] EdgePartitionedInstance partition_edges_randomly(
    const graph::Graph& g, std::uint32_t players, util::Rng& rng);

template <typename Output>
struct EdgePartitionRunResult {
  Output output;
  CommStats comm;
};

template <typename Output>
[[nodiscard]] EdgePartitionRunResult<Output> run_edge_partitioned(
    const EdgePartitionedInstance& instance,
    const EdgePartitionProtocol<Output>& protocol, const PublicCoins& coins) {
  EdgePartitionRunResult<Output> result{};
  std::vector<util::BitString> sketches;
  sketches.reserve(instance.num_players);
  for (std::uint32_t p = 0; p < instance.num_players; ++p) {
    const EdgePlayerView view{instance.graph.num_vertices(), p,
                              instance.player_edges[p], &coins};
    util::BitWriter writer;
    protocol.encode(view, writer);
    sketches.emplace_back(std::move(writer));
  }
  // Charge through the engine's single CommStats site (docs/ENGINE.md).
  engine::ChargeSheet sheet(sketches.size());
  engine::PlainInstrumentation plain;
  result.comm = sheet.charge_round(sketches, plain);
  result.output =
      protocol.decode(instance.graph.num_vertices(), sketches, coins);
  return result;
}

}  // namespace ds::model
