// The one-sided bipartite model of Section 1.3's related work
// ([ANRW15, BO17, DNO14, A17]): the input graph is bipartite, and only
// the LEFT side has players — right-side vertices send nothing.
//
// The paper highlights this model because it flips the difficulty: with
// no shared inputs, even spanning forest is hard ("the source of
// hardness ... are vertices of degree one on the non-player side that
// are hard to find for the player side"), whereas in the two-sided model
// a degree-one vertex simply announces its edge.  This module makes that
// contrast executable: the same protocols can be run with both runners
// and their success compared (see tests and bench_sketch_zoo).
#pragma once

#include "engine/charge.h"
#include "engine/instrumentation.h"
#include "model/protocol.h"

namespace ds::model {

/// A bipartite instance: left vertices are [0, left), right vertices are
/// [left, n). Only left vertices get a player.
struct BipartiteInstance {
  graph::Graph graph;
  graph::Vertex left = 0;

  [[nodiscard]] graph::Vertex right() const noexcept {
    return graph.num_vertices() - left;
  }
};

template <typename Output>
struct OneSidedRunResult {
  Output output;
  CommStats comm;  // over the `left` players only
};

/// Run a one-round protocol where only left-side vertices speak.  The
/// referee's `decode` receives `left` sketches (indexed by left vertex
/// id); the protocol knows the split via the instance it was built for.
template <typename Output>
[[nodiscard]] OneSidedRunResult<Output> run_one_sided(
    const BipartiteInstance& instance,
    const SketchingProtocol<Output>& protocol, const PublicCoins& coins) {
  OneSidedRunResult<Output> result{};
  std::vector<util::BitString> sketches;
  sketches.reserve(instance.left);
  for (graph::Vertex v = 0; v < instance.left; ++v) {
    const VertexView view{instance.graph.num_vertices(), v,
                          instance.graph.neighbors(v), &coins};
    util::BitWriter writer;
    protocol.encode(view, writer);
    sketches.emplace_back(std::move(writer));
  }
  // Charge through the engine's single CommStats site (docs/ENGINE.md).
  engine::ChargeSheet sheet(sketches.size());
  engine::PlainInstrumentation plain;
  result.comm = sheet.charge_round(sketches, plain);
  result.output =
      protocol.decode(instance.graph.num_vertices(), sketches, coins);
  return result;
}

}  // namespace ds::model
