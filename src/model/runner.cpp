#include "model/runner.h"

// run_protocol/collect_sketches are templates defined in the header; this
// translation unit anchors the library.
namespace ds::model {}
