#include "model/coins.h"

// PublicCoins is header-only; this translation unit exists so the model
// library always has at least one object file and to hold future
// out-of-line definitions.
namespace ds::model {}
