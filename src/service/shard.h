// The sharded referee: N RefereeShards, each owning an epoll event loop
// over its block of player connections, feeding one combiner.
//
// Sharding splits the referee's ingestion, not the model.  Each shard
// accumulates the sketch frames its connections deliver for the current
// round; combine_shard_rounds then merges the shard states into the one
// CollectedRound the engine decodes — the merge is associative and the
// engine charges sketches in vertex order, so the sharded service and the
// single-referee service produce bit-identical CommStats by construction
// (ShardedWireSource is just the third implementation of the engine's
// SketchSource seam, after LocalSource and WireSource).
//
// Vertex ownership is nominal: shard i of k nominally owns the
// contiguous range shard_range(n, k, i), and frames landing outside it
// are still accepted (players may connect to any shard; the layout is
// advisory) but counted in service.shard.out_of_range.  The one failure
// mode sharding adds is combiner divergence: the same vertex accepted by
// two different shards.  The combiner resolves it deterministically —
// the lowest shard index wins, the loser's frame is converted to a
// duplicate rejection — so the decode never depends on thread timing
// (docs/WIRE.md, failure-mode table).
//
// Round completion is coordinated through one shared atomic: every shard
// bumps it per accepted frame and every shard's poll loop exits once it
// reaches n, so no shard waits out the deadline after the round is
// already complete elsewhere.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "evloop/event_loop.h"
#include "service/session.h"
#include "wire/frame.h"

namespace ds::service {

/// What the current round accepts: the frame-validation inputs shared
/// with the blocking collection loop (classify_sketch_frame).
struct ShardRoundSpec {
  graph::Vertex n = 0;
  std::uint32_t protocol_id = 0;
  std::uint32_t round = 0;
};

/// One shard's view of one round: dense sketch slots (indexed by vertex,
/// only this shard's accepted subset present) plus the same accounting
/// the blocking loop keeps, ready for the associative combiner merge.
struct ShardRound {
  std::vector<util::BitString> sketches;
  std::vector<bool> have;
  WireStats wire;
  std::vector<std::string> rejects;
  std::size_t out_of_range = 0;  // accepted, but outside the nominal range
};

/// One referee shard: an event loop over this shard's connections and
/// the per-round accumulation driven by it.  Single-threaded — the
/// owning ShardedWireSource gives each shard its own collection thread.
class RefereeShard {
 public:
  /// `index` of `parts` shards; the nominal vertex range is
  /// shard_range(n, parts, index), recomputed per round from the spec.
  RefereeShard(std::size_t index, std::size_t parts);
  RefereeShard(const RefereeShard&) = delete;
  RefereeShard& operator=(const RefereeShard&) = delete;

  /// Adopt a connected socket into this shard's event loop (ownership
  /// passes; see wire::EventLoop::add).  Returns the connection id.
  std::size_t adopt_fd(int fd);

  /// Register the round-completion wake fd (a semaphore eventfd shared
  /// by every sibling shard, owned by the ShardedWireSource): the shard
  /// accepting a round's final frame posts one unit per shard, ending
  /// every sibling's poll slice immediately instead of letting them
  /// sleep it out.  Without one, completion is still noticed — at
  /// kShardPollSlice granularity.
  void attach_wake(int fd);

  /// Forget the wake fd (the owner is about to close it; closing also
  /// deregisters it from the loop's epoll set).
  void detach_wake() noexcept { wake_fd_ = -1; }

  /// Drive the event loop until every vertex is globally accounted for
  /// (`accepted_global` reaches spec.n, counting acceptances across all
  /// shards) or `deadline` passes, accumulating this shard's frames.
  /// Never throws on peer misbehaviour — bad frames are rejected and
  /// recorded, dead connections are dropped, and missing vertices are
  /// the combiner's diagnosis, not the shard's.  Equivalent to
  /// begin_round + poll_round until done + end_round.
  [[nodiscard]] ShardRound collect_round(
      const ShardRoundSpec& spec,
      std::chrono::steady_clock::time_point deadline,
      std::atomic<graph::Vertex>& accepted_global);

  /// Incremental round API, for a driver multiplexing several shards on
  /// one thread (ShardDrive::kInline).  begin_round opens the round's
  /// accumulation state; each poll_round runs one event-loop pass (at
  /// most `timeout` parked in epoll_wait) and returns the number of
  /// connections that had events; end_round closes the round and yields
  /// the accumulated state.  begin_round while a round is open resets it.
  void begin_round(const ShardRoundSpec& spec,
                   std::atomic<graph::Vertex>& accepted_global);
  std::size_t poll_round(std::chrono::milliseconds timeout);
  [[nodiscard]] ShardRound end_round();

  /// Queue `message` on every live connection and flush until all
  /// backlogs reach the kernel or `deadline` passes.  Throws
  /// ServiceError if a connection dies or the deadline cuts the flush
  /// short — same contract as broadcast_to_links.
  void broadcast(std::span<const std::uint8_t> message,
                 std::chrono::steady_clock::time_point deadline);

  [[nodiscard]] std::size_t index() const noexcept { return index_; }
  [[nodiscard]] std::size_t parts() const noexcept { return parts_; }
  [[nodiscard]] std::size_t open_connections() const noexcept;
  [[nodiscard]] std::size_t bytes_sent() const noexcept;
  [[nodiscard]] std::size_t bytes_received() const noexcept;

 private:
  /// State of the round currently open between begin_round/end_round.
  struct OpenRound {
    ShardRoundSpec spec;
    ShardRound round;
    graph::Vertex lo = 0;  // nominal range [lo, hi)
    graph::Vertex hi = 0;
    std::atomic<graph::Vertex>* accepted = nullptr;
  };

  std::size_t index_;
  std::size_t parts_;
  int wake_fd_ = -1;  // not owned; -1 until attach_wake
  wire::EventLoop loop_;
  std::vector<std::size_t> conns_;  // every id ever adopted
  OpenRound open_;
  wire::EventLoop::MessageFn on_message_;  // bound to open_, built once
  wire::EventLoop::CloseFn on_close_;
};

/// Merge per-shard round states into the one CollectedRound the engine
/// decodes.  Cross-shard duplicates resolve to the lowest shard index
/// (deterministic: independent of collection timing); the loser's frame
/// is re-accounted as a rejected duplicate, exactly as the blocking loop
/// would have rejected it on arrival.  Throws ServiceError with the
/// blocking loop's diagnostic shape if any vertex is missing.
[[nodiscard]] CollectedRound combine_shard_rounds(
    const ShardRoundSpec& spec, std::span<ShardRound> rounds);

/// How ShardedWireSource drives a multi-shard round.
enum class ShardDrive {
  /// kThreads when the host reports more than one hardware thread,
  /// kInline otherwise: threads only buy anything when shards can
  /// actually run in parallel — on a single core they add nothing but
  /// context-switch and wakeup churn to every round.
  kAuto,
  /// One persistent worker thread per shard, parked on a condition
  /// variable between rounds.
  kThreads,
  /// All shard loops multiplexed on the collecting thread: rotate
  /// non-blocking polls while data flows, yield briefly when dry, and
  /// only park in (a rotating) shard's epoll_wait after a sustained
  /// idle stretch.
  kInline,
};

/// The sharded SketchSource: collect() fans the round out across shards
/// (one persistent parked worker thread per shard, or an inline
/// single-thread rotation — see ShardDrive) and combines;
/// deliver_broadcast() pushes the inter-round frame down every shard's
/// connections.  Plugs into engine::run_rounds exactly where WireSource
/// does.
class ShardedWireSource {
 public:
  /// Under ShardDrive::kThreads with more than one shard this also
  /// creates the shared round-completion eventfd and attaches it to
  /// every shard's loop (see RefereeShard::attach_wake); if the eventfd
  /// cannot be created, collection silently falls back to
  /// poll-slice-granularity wakeups.  (The inline drive needs no wake:
  /// the one driving thread notices completion on its next rotation.)
  ShardedWireSource(std::span<const std::unique_ptr<RefereeShard>> shards,
                    graph::Vertex n, std::uint32_t protocol_id,
                    std::chrono::milliseconds timeout,
                    ShardDrive drive = ShardDrive::kAuto) noexcept;
  ~ShardedWireSource();
  ShardedWireSource(const ShardedWireSource&) = delete;
  ShardedWireSource& operator=(const ShardedWireSource&) = delete;

  /// One engine round across all shards.  Throws ServiceError (from the
  /// combiner) if any vertex is missing at the deadline.
  [[nodiscard]] std::vector<util::BitString> collect(
      unsigned round, std::span<const util::BitString> /*broadcasts*/);

  /// Push the referee's inter-round broadcast to every connection of
  /// every shard.
  void deliver_broadcast(unsigned round, const util::BitString& b);

  /// Encode and broadcast an arbitrary referee frame (the kResult reply
  /// path shares this with deliver_broadcast).  Returns the per-frame
  /// stats, payload counted once per connection, merged into downlink().
  WireStats broadcast_frame(const wire::FrameHeader& header,
                            const util::BitString& payload);

  [[nodiscard]] const WireStats& uplink() const noexcept { return uplink_; }
  [[nodiscard]] const WireStats& downlink() const noexcept {
    return downlink_;
  }

 private:
  /// One round's work order, shared with every parked worker.
  struct RoundTask {
    ShardRoundSpec spec;
    std::chrono::steady_clock::time_point deadline;
    std::atomic<graph::Vertex>* accepted = nullptr;
    std::vector<ShardRound>* rounds = nullptr;
  };

  void ensure_workers();
  void collect_threaded(const ShardRoundSpec& spec,
                        std::chrono::steady_clock::time_point deadline,
                        std::atomic<graph::Vertex>& accepted,
                        std::vector<ShardRound>& rounds);
  void collect_inline(const ShardRoundSpec& spec,
                      std::chrono::steady_clock::time_point deadline,
                      std::atomic<graph::Vertex>& accepted,
                      std::vector<ShardRound>& rounds);

  std::span<const std::unique_ptr<RefereeShard>> shards_;
  graph::Vertex n_;
  std::uint32_t protocol_id_;
  std::chrono::milliseconds timeout_;
  ShardDrive drive_ = ShardDrive::kThreads;  // kAuto resolved in the ctor
  int wake_fd_ = -1;  // owned; shared with every shard's loop
  WireStats uplink_;
  WireStats downlink_;

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable round_cv_;  // workers: a new generation posted
  std::condition_variable done_cv_;   // collect(): all shards reported in
  std::uint64_t generation_ = 0;
  std::size_t done_count_ = 0;
  RoundTask task_;
  bool stopping_ = false;
};

}  // namespace ds::service
