// Serialization of referee outputs for the kResult broadcast.
//
// The model's uplink payloads are already BitStrings; the decoded Output
// is an ordinary value type, so sending it back to the players needs a
// codec per output type.  Encodings reuse util/bitio (gamma-length lists,
// fixed-width ints) so result bytes obey the same exact-bit discipline as
// sketches.  Every output type of a protocol in src/protocols/ has a
// specialization — the audit cross-check runs each zoo protocol through
// the full wire session including this result hop.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "graph/densest.h"
#include "graph/graph.h"
#include "util/bitio.h"

namespace ds::service {

template <typename Output>
struct OutputCodec;  // specialized per output type; no primary definition

template <>
struct OutputCodec<std::uint32_t> {
  static void encode(const std::uint32_t& value, util::BitWriter& out) {
    out.put_bits(value, 32);
  }
  static std::uint32_t decode(util::BitReader& in) {
    return static_cast<std::uint32_t>(in.get_bits(32));
  }
};

template <>
struct OutputCodec<std::uint64_t> {
  static void encode(const std::uint64_t& value, util::BitWriter& out) {
    out.put_bits(value, 64);
  }
  static std::uint64_t decode(util::BitReader& in) { return in.get_bits(64); }
};

template <>
struct OutputCodec<double> {
  static void encode(const double& value, util::BitWriter& out) {
    out.put_bits(std::bit_cast<std::uint64_t>(value), 64);
  }
  static double decode(util::BitReader& in) {
    return std::bit_cast<double>(in.get_bits(64));
  }
};

template <>
struct OutputCodec<graph::Edge> {
  static void encode(const graph::Edge& e, util::BitWriter& out) {
    out.put_bits(e.u, 32);
    out.put_bits(e.v, 32);
  }
  static graph::Edge decode(util::BitReader& in) {
    graph::Edge e{};
    e.u = static_cast<graph::Vertex>(in.get_bits(32));
    e.v = static_cast<graph::Vertex>(in.get_bits(32));
    return e;
  }
};

/// Covers Matching, ForestOutput, and k-connectivity certificates alike.
template <>
struct OutputCodec<std::vector<graph::Edge>> {
  static void encode(const std::vector<graph::Edge>& edges,
                     util::BitWriter& out) {
    out.put_gamma(edges.size() + 1);  // gamma cannot encode zero
    for (const graph::Edge& e : edges) OutputCodec<graph::Edge>::encode(e, out);
  }
  static std::vector<graph::Edge> decode(util::BitReader& in) {
    const std::uint64_t count = in.get_gamma() - 1;
    std::vector<graph::Edge> edges;
    edges.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      edges.push_back(OutputCodec<graph::Edge>::decode(in));
    }
    return edges;
  }
};

/// Covers VertexSetOutput (MIS) and ColoringOutput alike.
template <>
struct OutputCodec<std::vector<std::uint32_t>> {
  static void encode(const std::vector<std::uint32_t>& values,
                     util::BitWriter& out) {
    out.put_u32_span(values, 32);
  }
  static std::vector<std::uint32_t> decode(util::BitReader& in) {
    return in.get_u32_span(32);
  }
};

template <>
struct OutputCodec<graph::Graph> {
  static void encode(const graph::Graph& g, util::BitWriter& out) {
    out.put_bits(g.num_vertices(), 32);
    OutputCodec<std::vector<graph::Edge>>::encode(g.edges(), out);
  }
  static graph::Graph decode(util::BitReader& in) {
    const auto n = static_cast<graph::Vertex>(in.get_bits(32));
    const std::vector<graph::Edge> edges =
        OutputCodec<std::vector<graph::Edge>>::decode(in);
    return graph::Graph::from_edges(n, edges);
  }
};

template <>
struct OutputCodec<graph::DensestResult> {
  static void encode(const graph::DensestResult& r, util::BitWriter& out) {
    OutputCodec<std::vector<std::uint32_t>>::encode(r.subset, out);
    OutputCodec<double>::encode(r.density, out);
  }
  static graph::DensestResult decode(util::BitReader& in) {
    graph::DensestResult r;
    r.subset = OutputCodec<std::vector<std::uint32_t>>::decode(in);
    r.density = OutputCodec<double>::decode(in);
    return r;
  }
};

}  // namespace ds::service
