#include "service/shard.h"

#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <sstream>
#include <thread>

#include "obs/obs.h"

namespace ds::service {

namespace {

using Clock = std::chrono::steady_clock;

/// Upper bound on one shard's epoll wait while a round is open: short
/// enough that a shard whose own links are quiet notices the shared
/// accepted-count reaching n (set by its siblings) promptly.  This is
/// the whole round's completion lag for a shard that finished early —
/// 1ms (the epoll_wait floor) keeps the multi-shard tail under a
/// millisecond without busy-spinning a core away from the siblings.
constexpr std::chrono::milliseconds kShardPollSlice{1};

/// Sharded-referee counters (docs/OBSERVABILITY.md).  The reject family
/// mirrors session.cpp's service.reject.* taxonomy one for one; the two
/// names with no blocking-path sibling are out_of_range (a frame landing
/// on a shard that does not nominally own its vertex — legal, but worth
/// watching) and cross_shard_duplicates (the combiner-divergence failure
/// mode in docs/WIRE.md).
struct ShardMetrics {
  obs::Counter& rounds_combined =
      obs::counter("service.shard.rounds_combined");
  obs::Counter& messages = obs::counter("service.shard.messages");
  obs::Counter& frames_accepted =
      obs::counter("service.shard.frames_accepted");
  obs::Counter& payload_bits = obs::counter("service.shard.payload_bits");
  obs::Counter& out_of_range = obs::counter("service.shard.out_of_range");
  obs::Counter& cross_shard_duplicates =
      obs::counter("service.shard.cross_shard_duplicates");
  obs::Counter& dead_connections =
      obs::counter("service.shard.dead_connections");
  obs::Counter& broadcasts = obs::counter("service.shard.broadcasts");
  obs::Histogram& collect_us = obs::histogram("service.shard.collect_us");
  obs::Counter& reject_corrupt =
      obs::counter("service.shard.reject.corrupt");
  obs::Counter& reject_bad_type =
      obs::counter("service.shard.reject.bad_type");
  obs::Counter& reject_bad_protocol =
      obs::counter("service.shard.reject.bad_protocol");
  obs::Counter& reject_bad_round =
      obs::counter("service.shard.reject.bad_round");
  obs::Counter& reject_bad_vertex =
      obs::counter("service.shard.reject.bad_vertex");
  obs::Counter& reject_duplicate =
      obs::counter("service.shard.reject.duplicate");
};

ShardMetrics& metrics() {
  static ShardMetrics m;
  return m;
}

}  // namespace

RefereeShard::RefereeShard(std::size_t index, std::size_t parts)
    : index_(index), parts_(std::max<std::size_t>(parts, 1)) {
  // Bound once so poll_round costs no std::function churn per pass.
  on_message_ = [this](std::size_t conn, std::vector<std::uint8_t> message) {
    ShardRound& r = open_.round;
    const ShardRoundSpec& spec = open_.spec;
    const auto reject = [&r](obs::Counter& reason_counter,
                             std::string reason) {
      reason_counter.increment();
      ++r.wire.rejected_frames;
      r.rejects.push_back(std::move(reason));
    };

    ++r.wire.messages;
    metrics().messages.increment();
    wire::BatchDecode batch = wire::decode_frames(message);
    if (batch.status != wire::DecodeStatus::kOk) {
      std::ostringstream os;
      os << "shard " << index_ << " conn " << conn << ": "
         << wire::decode_status_name(batch.status) << " at byte "
         << batch.rest_offset << " of a " << message.size()
         << "-byte message; dropped the rest of the message";
      reject(metrics().reject_corrupt, os.str());
    }
    for (wire::Frame& frame : batch.frames) {
      const wire::FrameHeader& h = frame.header;
      switch (classify_sketch_frame(h, spec.protocol_id, spec.round,
                                    spec.n)) {
        case FrameVerdict::kBadType:
          reject(metrics().reject_bad_type,
                 "unexpected frame type from a player");
          continue;
        case FrameVerdict::kBadProtocol:
          reject(metrics().reject_bad_protocol,
                 "protocol id mismatch from vertex " +
                     std::to_string(h.vertex));
          continue;
        case FrameVerdict::kBadRound:
          reject(metrics().reject_bad_round,
                 "round " + std::to_string(h.round) + " frame from vertex " +
                     std::to_string(h.vertex) + " during round " +
                     std::to_string(spec.round));
          continue;
        case FrameVerdict::kBadVertex:
          reject(metrics().reject_bad_vertex,
                 "vertex " + std::to_string(h.vertex) + " out of range");
          continue;
        case FrameVerdict::kAccept:
          break;
      }
      if (r.have[h.vertex]) {
        reject(metrics().reject_duplicate,
               "duplicate sketch for vertex " + std::to_string(h.vertex));
        continue;
      }
      r.have[h.vertex] = true;
      ++r.wire.frames;
      r.wire.payload_bits += frame.payload.bit_count();
      r.wire.framing_bits +=
          wire::encoded_frame_size(h, frame.payload.bit_count()) * 8 -
          frame.payload.bit_count();
      if (h.vertex < open_.lo || h.vertex >= open_.hi) {
        ++r.out_of_range;
        metrics().out_of_range.increment();
      }
      metrics().frames_accepted.increment();
      metrics().payload_bits.add(frame.payload.bit_count());
      r.sketches[h.vertex] = std::move(frame.payload);
      const graph::Vertex accepted =
          open_.accepted->fetch_add(1, std::memory_order_acq_rel) + 1;
      if (accepted == spec.n && wake_fd_ >= 0) {
        // Round complete: post one semaphore unit per shard so every
        // sibling's poll slice ends now, not at slice granularity.
        const std::uint64_t units = parts_;
        (void)!::write(wake_fd_, &units, sizeof(units));
      }
    }
  };
  on_close_ = [](std::size_t, wire::RecvStatus) {
    metrics().dead_connections.increment();
  };
}

std::size_t RefereeShard::adopt_fd(int fd) {
  const std::size_t id = loop_.add(fd);
  conns_.push_back(id);
  return id;
}

void RefereeShard::attach_wake(int fd) {
  loop_.add_wake_fd(fd);
  wake_fd_ = fd;
}

std::size_t RefereeShard::open_connections() const noexcept {
  return loop_.open_connections();
}
std::size_t RefereeShard::bytes_sent() const noexcept {
  return loop_.bytes_sent();
}
std::size_t RefereeShard::bytes_received() const noexcept {
  return loop_.bytes_received();
}

void RefereeShard::begin_round(const ShardRoundSpec& spec,
                               std::atomic<graph::Vertex>& accepted_global) {
  open_.spec = spec;
  open_.round = ShardRound{};
  open_.round.sketches.resize(spec.n);
  open_.round.have.assign(spec.n, false);
  const auto [lo, hi] = shard_range(spec.n, parts_, index_);
  open_.lo = lo;
  open_.hi = hi;
  open_.accepted = &accepted_global;
}

std::size_t RefereeShard::poll_round(std::chrono::milliseconds timeout) {
  return loop_.poll_once(timeout, on_message_, on_close_);
}

ShardRound RefereeShard::end_round() {
  open_.accepted = nullptr;
  return std::move(open_.round);
}

ShardRound RefereeShard::collect_round(
    const ShardRoundSpec& spec, Clock::time_point deadline,
    std::atomic<graph::Vertex>& accepted_global) {
  begin_round(spec, accepted_global);
  const obs::ScopedSpan span("service.shard.collect",
                             &metrics().collect_us);
  while (accepted_global.load(std::memory_order_acquire) < spec.n) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    if (left.count() <= 0) break;
    // A shard with no live connections cannot make progress itself, but
    // still keeps its thread alive (cheaply) so siblings own the round's
    // fate; an early return here would be indistinguishable from one.
    (void)poll_round(
        std::clamp(left, std::chrono::milliseconds(1), kShardPollSlice));
  }
  return end_round();
}

void RefereeShard::broadcast(std::span<const std::uint8_t> message,
                             Clock::time_point deadline) {
  for (const std::size_t id : conns_) {
    if (!loop_.is_open(id)) continue;
    if (!loop_.send(id, message)) {
      throw ServiceError("broadcast failed: a player connection is gone");
    }
    metrics().broadcasts.increment();
  }
  // Frames arriving mid-flush would belong to the next round; the next
  // collect_round's callbacks will see them, so drop none here but also
  // accept none (messages surfacing now are a protocol violation either
  // way — the per-round decode rejects them by round id later).
  const wire::EventLoop::MessageFn drop = [](std::size_t,
                                             std::vector<std::uint8_t>) {};
  const wire::EventLoop::CloseFn on_close = [](std::size_t,
                                               wire::RecvStatus) {
    metrics().dead_connections.increment();
  };
  if (!loop_.flush_all(deadline, drop, on_close)) {
    throw ServiceError("broadcast failed: write backlog missed the deadline");
  }
}

CollectedRound combine_shard_rounds(const ShardRoundSpec& spec,
                                    std::span<ShardRound> rounds) {
  CollectedRound out;
  out.sketches.resize(spec.n);
  std::vector<bool> have(spec.n, false);
  for (std::size_t s = 0; s < rounds.size(); ++s) {
    ShardRound& r = rounds[s];
    out.wire.merge(r.wire);
    for (std::string& reason : r.rejects) {
      out.rejects.push_back(std::move(reason));
    }
    for (graph::Vertex v = 0; v < spec.n; ++v) {
      if (!r.have[v]) continue;
      if (!have[v]) {
        have[v] = true;
        out.sketches[v] = std::move(r.sketches[v]);
        continue;
      }
      // Combiner divergence: a second shard also accepted vertex v.  The
      // lowest shard index won above; un-account the loser's frame and
      // record it as the duplicate rejection the blocking loop would
      // have issued on arrival (docs/WIRE.md, failure-mode table).
      const std::size_t bits = r.sketches[v].bit_count();
      const wire::FrameHeader h{wire::FrameType::kSketch, spec.protocol_id,
                                v, spec.round};
      --out.wire.frames;
      out.wire.payload_bits -= bits;
      out.wire.framing_bits -= wire::encoded_frame_size(h, bits) * 8 - bits;
      ++out.wire.rejected_frames;
      metrics().cross_shard_duplicates.increment();
      out.rejects.push_back("cross-shard duplicate sketch for vertex " +
                            std::to_string(v) + " (shard " +
                            std::to_string(s) + " lost the merge)");
    }
  }

  graph::Vertex missing = 0;
  for (graph::Vertex v = 0; v < spec.n; ++v) {
    if (!have[v]) ++missing;
  }
  if (missing > 0) {
    std::ostringstream os;
    os << "round " << spec.round << ": " << missing
       << " sketch(es) missing at the deadline (first absent vertex ";
    for (graph::Vertex v = 0; v < spec.n; ++v) {
      if (!have[v]) {
        os << v;
        break;
      }
    }
    os << "); " << out.wire.rejected_frames << " frame(s) rejected";
    throw ServiceError(os.str());
  }
  metrics().rounds_combined.increment();
  return out;
}

ShardedWireSource::ShardedWireSource(
    std::span<const std::unique_ptr<RefereeShard>> shards, graph::Vertex n,
    std::uint32_t protocol_id, std::chrono::milliseconds timeout,
    ShardDrive drive) noexcept
    : shards_(shards), n_(n), protocol_id_(protocol_id), timeout_(timeout) {
  drive_ = drive != ShardDrive::kAuto ? drive
           : std::thread::hardware_concurrency() > 1 ? ShardDrive::kThreads
                                                     : ShardDrive::kInline;
  // The round-completion wake only matters when shards sleep in their
  // own threads; the inline rotation notices completion by itself.
  if (shards_.size() < 2 || drive_ != ShardDrive::kThreads) return;
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_SEMAPHORE | EFD_CLOEXEC);
  if (wake_fd_ < 0) return;  // poll-slice fallback still completes rounds
  for (const std::unique_ptr<RefereeShard>& shard : shards_) {
    shard->attach_wake(wake_fd_);
  }
}

ShardedWireSource::~ShardedWireSource() {
  if (!workers_.empty()) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
    }
    round_cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }
  if (wake_fd_ < 0) return;
  for (const std::unique_ptr<RefereeShard>& shard : shards_) {
    shard->detach_wake();
  }
  // Closing the eventfd deregisters it from every shard's epoll set.
  ::close(wake_fd_);
}

void ShardedWireSource::ensure_workers() {
  if (!workers_.empty()) return;
  workers_.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    workers_.emplace_back([this, s] {
      std::uint64_t seen = 0;
      for (;;) {
        RoundTask task;
        {
          std::unique_lock<std::mutex> lock(mu_);
          round_cv_.wait(
              lock, [&] { return stopping_ || generation_ != seen; });
          if (stopping_) return;
          seen = generation_;
          task = task_;
        }
        (*task.rounds)[s] =
            shards_[s]->collect_round(task.spec, task.deadline,
                                      *task.accepted);
        {
          const std::lock_guard<std::mutex> lock(mu_);
          ++done_count_;
        }
        done_cv_.notify_all();
      }
    });
  }
}

void ShardedWireSource::collect_threaded(
    const ShardRoundSpec& spec, Clock::time_point deadline,
    std::atomic<graph::Vertex>& accepted, std::vector<ShardRound>& rounds) {
  ensure_workers();
  {
    const std::lock_guard<std::mutex> lock(mu_);
    task_ = RoundTask{spec, deadline, &accepted, &rounds};
    done_count_ = 0;
    ++generation_;
  }
  round_cv_.notify_all();
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return done_count_ == workers_.size(); });
}

void ShardedWireSource::collect_inline(
    const ShardRoundSpec& spec, Clock::time_point deadline,
    std::atomic<graph::Vertex>& accepted, std::vector<ShardRound>& rounds) {
  // Consecutive empty rotations tolerated before parking in epoll_wait:
  // while senders (usually threads sharing this core) are producing,
  // yielding between rotations hands them the core with no sleep/wake
  // churn; the epoll park is the backstop for genuinely quiet links.
  constexpr std::size_t kIdleRotationsBeforePark = 256;

  for (const std::unique_ptr<RefereeShard>& shard : shards_) {
    shard->begin_round(spec, accepted);
  }
  const obs::ScopedSpan span("service.shard.collect",
                             &metrics().collect_us);
  std::size_t idle_rotations = 0;
  std::size_t park_target = 0;
  while (accepted.load(std::memory_order_acquire) < spec.n &&
         Clock::now() < deadline) {
    std::size_t events = 0;
    for (const std::unique_ptr<RefereeShard>& shard : shards_) {
      events += shard->poll_round(std::chrono::milliseconds(0));
      if (accepted.load(std::memory_order_acquire) >= spec.n) break;
    }
    if (events > 0) {
      idle_rotations = 0;
      continue;
    }
    if (++idle_rotations < kIdleRotationsBeforePark) {
      std::this_thread::yield();
      continue;
    }
    // Park in one shard's epoll for a slice, rotating the parked shard
    // so no connection waits more than shards × slice for attention.
    (void)shards_[park_target]->poll_round(kShardPollSlice);
    park_target = (park_target + 1) % shards_.size();
  }
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    rounds[s] = shards_[s]->end_round();
  }
}

std::vector<util::BitString> ShardedWireSource::collect(
    unsigned round, std::span<const util::BitString> /*broadcasts*/) {
  const ShardRoundSpec spec{n_, protocol_id_, round};
  const Clock::time_point deadline = Clock::now() + timeout_;
  std::atomic<graph::Vertex> accepted{0};
  std::vector<ShardRound> rounds(shards_.size());

  if (shards_.size() == 1) {
    rounds[0] = shards_[0]->collect_round(spec, deadline, accepted);
  } else if (drive_ == ShardDrive::kThreads) {
    collect_threaded(spec, deadline, accepted, rounds);
  } else {
    collect_inline(spec, deadline, accepted, rounds);
  }

  CollectedRound combined = combine_shard_rounds(spec, rounds);
  uplink_.merge(combined.wire);
  return std::move(combined.sketches);
}

void ShardedWireSource::deliver_broadcast(unsigned round,
                                          const util::BitString& b) {
  (void)broadcast_frame(
      {wire::FrameType::kBroadcast, protocol_id_, 0, round}, b);
}

WireStats ShardedWireSource::broadcast_frame(const wire::FrameHeader& header,
                                             const util::BitString& payload) {
  std::vector<std::uint8_t> bytes;
  const std::size_t framing = wire::encode_frame(header, payload, bytes);
  const Clock::time_point deadline = Clock::now() + timeout_;
  WireStats stats;
  for (const std::unique_ptr<RefereeShard>& shard : shards_) {
    const std::size_t conns = shard->open_connections();
    shard->broadcast(bytes, deadline);
    stats.frames += conns;
    stats.messages += conns;
    stats.payload_bits += payload.bit_count() * conns;
    stats.framing_bits += framing * conns;
  }
  downlink_.merge(stats);
  return stats;
}

}  // namespace ds::service
