#include "service/session.h"

#include <algorithm>
#include <sstream>

#include "engine/charge.h"
#include "engine/instrumentation.h"
#include "obs/obs.h"

namespace ds::service {

namespace {

using Clock = std::chrono::steady_clock;

/// Upper bound on one link's poll slice while a round is collecting:
/// long enough to avoid busy-spinning, short enough that a referee
/// multiplexing many links stays responsive on all of them.  Near the
/// deadline the slice shrinks further — see fair_poll_slice.
constexpr std::chrono::milliseconds kPollSlice{20};

std::chrono::milliseconds slice_until(Clock::time_point deadline,
                                      std::size_t live_links) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  return fair_poll_slice(left, live_links);
}

/// Session-phase counters and timings.  The per-sketch `sketch_bits`
/// histogram mirrors the model accounting exactly: count == players,
/// sum == CommStats::total_bits, max == CommStats::max_bits for a
/// one-round session (asserted by tests/audit/obs_audit_test.cpp).
struct ServiceMetrics {
  obs::Counter& rounds_collected =
      obs::counter("service.rounds_collected");
  obs::Counter& messages = obs::counter("service.messages");
  obs::Counter& frames_accepted = obs::counter("service.frames_accepted");
  obs::Counter& payload_bits = obs::counter("service.payload_bits");
  obs::Histogram& sketch_bits = obs::histogram("service.sketch_bits");
  obs::Histogram& round_payload_bits =
      obs::histogram("service.round_payload_bits");
  obs::Histogram& collect_us = obs::histogram("service.collect_us");
  obs::Counter& dead_links = obs::counter("service.dead_links");
  obs::Counter& deadline_misses = obs::counter("service.deadline_misses");
  obs::Counter& broadcasts = obs::counter("service.broadcasts");
  // Rejected frames, by reason (sum == WireStats::rejected_frames).
  obs::Counter& reject_corrupt = obs::counter("service.reject.corrupt");
  obs::Counter& reject_bad_type = obs::counter("service.reject.bad_type");
  obs::Counter& reject_bad_protocol =
      obs::counter("service.reject.bad_protocol");
  obs::Counter& reject_bad_round = obs::counter("service.reject.bad_round");
  obs::Counter& reject_bad_vertex =
      obs::counter("service.reject.bad_vertex");
  obs::Counter& reject_duplicate =
      obs::counter("service.reject.duplicate");
};

ServiceMetrics& metrics() {
  static ServiceMetrics m;
  return m;
}

}  // namespace

std::pair<graph::Vertex, graph::Vertex> shard_range(
    graph::Vertex n, std::size_t parts, std::size_t index) noexcept {
  const std::size_t base = n / parts;
  const std::size_t extra = n % parts;
  const std::size_t begin =
      index * base + std::min<std::size_t>(index, extra);
  const std::size_t size = base + (index < extra ? 1 : 0);
  return {static_cast<graph::Vertex>(begin),
          static_cast<graph::Vertex>(begin + size)};
}

FrameVerdict classify_sketch_frame(const wire::FrameHeader& h,
                                   std::uint32_t protocol_id,
                                   std::uint32_t round,
                                   graph::Vertex n) noexcept {
  if (h.type != wire::FrameType::kSketch) return FrameVerdict::kBadType;
  if (h.protocol_id != protocol_id) return FrameVerdict::kBadProtocol;
  if (h.round != round) return FrameVerdict::kBadRound;
  if (h.vertex >= n) return FrameVerdict::kBadVertex;
  return FrameVerdict::kAccept;
}

std::chrono::milliseconds fair_poll_slice(std::chrono::milliseconds left,
                                          std::size_t live_links) noexcept {
  if (left.count() <= 0) return std::chrono::milliseconds(0);
  // The pre-fix bug: a fixed min(left, 20ms) slice let one slow link eat
  // the whole remainder near the deadline while another link's frames
  // sat ready.  Dividing by the live-link count makes a full pass over
  // the links consume at most the remainder it started with, so every
  // link is polled at least once more before the deadline.
  const auto share = std::chrono::milliseconds(
      left.count() / static_cast<std::int64_t>(std::max<std::size_t>(
                         live_links, 1)));
  return std::clamp(share, std::chrono::milliseconds(1), kPollSlice);
}

CollectedRound collect_sketch_round(
    std::span<const std::unique_ptr<wire::Link>> links, graph::Vertex n,
    std::uint32_t protocol_id, std::uint32_t round,
    std::chrono::milliseconds timeout) {
  const obs::ScopedSpan span("service.collect", &metrics().collect_us);
  CollectedRound result;
  result.sketches.resize(n);
  std::vector<bool> have(n, false);
  std::vector<bool> link_live(links.size(), true);
  graph::Vertex missing = n;

  const auto reject = [&result](obs::Counter& reason_counter,
                                std::string reason) {
    reason_counter.increment();
    ++result.wire.rejected_frames;
    result.rejects.push_back(std::move(reason));
  };

  const Clock::time_point deadline = Clock::now() + timeout;
  while (missing > 0) {
    const auto live = static_cast<std::size_t>(
        std::count(link_live.begin(), link_live.end(), true));
    bool any_live = false;
    for (std::size_t li = 0; li < links.size() && missing > 0; ++li) {
      if (!link_live[li]) continue;
      any_live = true;
      const wire::RecvResult msg =
          links[li]->recv(slice_until(deadline, live));
      if (msg.status == wire::RecvStatus::kTimeout) continue;
      if (msg.status != wire::RecvStatus::kOk) {
        // Links are fixed for the session, so a closed or broken one
        // stops being polled; its players' missing sketches surface at
        // the deadline.
        link_live[li] = false;
        metrics().dead_links.increment();
        continue;
      }
      ++result.wire.messages;
      metrics().messages.increment();

      wire::BatchDecode batch = wire::decode_frames(msg.message);
      if (batch.status != wire::DecodeStatus::kOk) {
        std::ostringstream os;
        os << "link " << li << ": "
           << wire::decode_status_name(batch.status) << " at byte "
           << batch.rest_offset << " of a " << msg.message.size()
           << "-byte message; dropped the rest of the message";
        reject(metrics().reject_corrupt, os.str());
      }
      for (wire::Frame& frame : batch.frames) {
        const wire::FrameHeader& h = frame.header;
        const FrameVerdict verdict =
            classify_sketch_frame(h, protocol_id, round, n);
        if (verdict == FrameVerdict::kBadType) {
          reject(metrics().reject_bad_type,
                 "unexpected frame type from a player");
          continue;
        }
        if (verdict == FrameVerdict::kBadProtocol) {
          reject(metrics().reject_bad_protocol,
                 "protocol id mismatch from vertex " +
                     std::to_string(h.vertex));
          continue;
        }
        if (verdict == FrameVerdict::kBadRound) {
          reject(metrics().reject_bad_round,
                 "round " + std::to_string(h.round) + " frame from vertex " +
                     std::to_string(h.vertex) + " during round " +
                     std::to_string(round));
          continue;
        }
        if (verdict == FrameVerdict::kBadVertex) {
          reject(metrics().reject_bad_vertex,
                 "vertex " + std::to_string(h.vertex) + " out of range");
          continue;
        }
        if (have[h.vertex]) {
          reject(metrics().reject_duplicate,
                 "duplicate sketch for vertex " + std::to_string(h.vertex));
          continue;
        }
        have[h.vertex] = true;
        --missing;
        ++result.wire.frames;
        result.wire.payload_bits += frame.payload.bit_count();
        result.wire.framing_bits +=
            wire::encoded_frame_size(h, frame.payload.bit_count()) * 8 -
            frame.payload.bit_count();
        metrics().frames_accepted.increment();
        metrics().payload_bits.add(frame.payload.bit_count());
        metrics().sketch_bits.record(frame.payload.bit_count());
        result.sketches[h.vertex] = std::move(frame.payload);
      }
    }
    if (missing == 0) break;
    if (Clock::now() >= deadline || !any_live) {
      metrics().deadline_misses.increment();
      std::ostringstream os;
      os << "round " << round << ": " << missing
         << " sketch(es) missing at the deadline (first absent vertex ";
      for (graph::Vertex v = 0; v < n; ++v) {
        if (!have[v]) {
          os << v;
          break;
        }
      }
      os << "); " << result.wire.rejected_frames << " frame(s) rejected";
      throw ServiceError(os.str());
    }
  }
  metrics().rounds_collected.increment();
  metrics().round_payload_bits.record(result.wire.payload_bits);
  return result;
}

WireStats broadcast_to_links(
    std::span<const std::unique_ptr<wire::Link>> links,
    const wire::FrameHeader& header, const util::BitString& payload) {
  const obs::ScopedSpan span("service.broadcast");
  std::vector<std::uint8_t> bytes;
  const std::size_t framing = wire::encode_frame(header, payload, bytes);
  WireStats stats;
  for (const std::unique_ptr<wire::Link>& link : links) {
    if (!link->send(bytes)) {
      throw ServiceError("broadcast failed: a player link is gone");
    }
    ++stats.frames;
    ++stats.messages;
    stats.payload_bits += payload.bit_count();
    stats.framing_bits += framing;
    metrics().broadcasts.increment();
  }
  return stats;
}

std::size_t append_sketch_frame(std::vector<std::uint8_t>& batch,
                                std::uint32_t protocol_id,
                                graph::Vertex vertex, std::uint32_t round,
                                const util::BitString& payload) {
  const wire::FrameHeader header{wire::FrameType::kSketch, protocol_id,
                                 vertex, round};
  return wire::encode_frame(header, payload, batch);
}

wire::Frame await_referee_frame(wire::Link& link,
                                wire::FrameType expected_type,
                                std::uint32_t protocol_id,
                                std::chrono::milliseconds timeout) {
  const Clock::time_point deadline = Clock::now() + timeout;
  while (Clock::now() < deadline) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    const wire::RecvResult msg =
        link.recv(std::max(left, std::chrono::milliseconds(1)));
    if (msg.status == wire::RecvStatus::kTimeout) continue;
    if (msg.status != wire::RecvStatus::kOk) {
      throw ServiceError("referee link lost while awaiting a response");
    }
    wire::BatchDecode batch = wire::decode_frames(msg.message);
    if (batch.status != wire::DecodeStatus::kOk) {
      throw ServiceError(std::string("corrupt referee message: ") +
                         std::string(wire::decode_status_name(batch.status)));
    }
    for (wire::Frame& frame : batch.frames) {
      if (frame.header.type == expected_type &&
          frame.header.protocol_id == protocol_id) {
        return std::move(frame);
      }
    }
  }
  throw ServiceError("timed out awaiting the referee's response");
}

model::CommStats comm_from_sketches(
    std::span<const util::BitString> sketches) {
  // Delegates to the engine's single charging site so wire accounting can
  // never drift from the simulated runners (docs/ENGINE.md).
  engine::ChargeSheet sheet(sketches.size());
  engine::PlainInstrumentation plain;
  return sheet.charge_round(sketches, plain);
}

}  // namespace ds::service
