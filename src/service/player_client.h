// The player side of the wire: encode owned vertices, batch the frames
// into one message, send, and await the referee's response.
//
// A client may own any subset of the vertices (one process per vertex is
// the literal model; one process per shard is the practical deployment —
// the frames are identical either way, which is the point).  Encoding
// reuses SketchingProtocol::encode on a VertexView built from the local
// graph shard, so a player's uplink bits are byte-for-byte the bits the
// simulated runner charges.
#pragma once

#include <algorithm>

#include "engine/local_source.h"
#include "graph/graph.h"
#include "graph/weighted.h"
#include "model/adaptive.h"
#include "model/protocol.h"
#include "model/runner.h"
#include "service/output_codec.h"
#include "service/referee_service.h"
#include "service/session.h"

namespace ds::service {

/// Per-player uplink accounting the client observed (payload bits match
/// what the referee will charge for these vertices).
struct PlayerSendStats {
  std::size_t frames = 0;
  std::size_t payload_bits = 0;
  std::size_t framing_bits = 0;
};

namespace detail {

/// The one player-side encode loop: every owned vertex's sketch is
/// encoded (same ViewFn/EncodeFn shapes as the engine's LocalSource, so
/// a client's uplink bits are byte-for-byte the bits the engine charges)
/// and appended to `batch` as a kSketch frame.
template <typename ViewFn, typename EncodeFn>
[[nodiscard]] PlayerSendStats batch_owned_sketches(
    std::vector<std::uint8_t>& batch, std::uint32_t proto,
    std::uint32_t round, std::span<const graph::Vertex> owned,
    const ViewFn& view_of, const EncodeFn& encode,
    std::span<const util::BitString> broadcasts) {
  PlayerSendStats stats;
  for (const graph::Vertex v : owned) {
    util::BitWriter writer;
    encode(view_of(v), round, broadcasts, writer);
    const util::BitString sketch(std::move(writer));
    stats.framing_bits += append_sketch_frame(batch, proto, v, round, sketch);
    stats.payload_bits += sketch.bit_count();
    ++stats.frames;
  }
  return stats;
}

}  // namespace detail

/// Encode and send one round's sketches for `owned` vertices as a single
/// batched message.  Throws ServiceError if the link rejects the send.
template <typename Output>
PlayerSendStats send_sketches(
    wire::Link& link, const graph::Graph& g,
    std::span<const graph::Vertex> owned,
    const model::SketchingProtocol<Output>& protocol,
    const model::PublicCoins& coins) {
  std::vector<std::uint8_t> batch;
  const PlayerSendStats stats = detail::batch_owned_sketches(
      batch, wire::protocol_id(protocol.name()), 0, owned,
      engine::graph_view_fn(g, coins),
      model::detail::one_round_encode(protocol), {});
  if (!link.send(batch)) {
    throw ServiceError("player: referee link rejected the sketch batch");
  }
  return stats;
}

/// Weighted overload: views carry per-neighbor weights, mirroring the
/// WeightedGraph runner.
template <typename Output>
PlayerSendStats send_sketches(
    wire::Link& link, const graph::WeightedGraph& g,
    std::span<const graph::Vertex> owned,
    const model::SketchingProtocol<Output>& protocol,
    const model::PublicCoins& coins) {
  std::vector<std::uint8_t> batch;
  const PlayerSendStats stats = detail::batch_owned_sketches(
      batch, wire::protocol_id(protocol.name()), 0, owned,
      model::detail::weighted_view_fn(g, coins),
      model::detail::one_round_encode(protocol), {});
  if (!link.send(batch)) {
    throw ServiceError("player: referee link rejected the sketch batch");
  }
  return stats;
}

/// Block until the referee's kResult frame arrives and decode it.
template <typename Output>
[[nodiscard]] Output await_result(
    wire::Link& link, const model::SketchingProtocol<Output>& protocol,
    std::chrono::milliseconds timeout = kDefaultRoundTimeout) {
  const wire::Frame frame =
      await_referee_frame(link, wire::FrameType::kResult,
                          wire::protocol_id(protocol.name()), timeout);
  util::BitReader reader(frame.payload);
  return OutputCodec<Output>::decode(reader);
}

/// One-round client: send every owned vertex's sketch, return the
/// broadcast result.
template <typename Output>
[[nodiscard]] Output play_protocol(
    wire::Link& link, const graph::Graph& g,
    std::span<const graph::Vertex> owned,
    const model::SketchingProtocol<Output>& protocol,
    const model::PublicCoins& coins,
    std::chrono::milliseconds timeout = kDefaultRoundTimeout) {
  (void)send_sketches(link, g, owned, protocol, coins);
  return await_result(link, protocol, timeout);
}

/// Adaptive client: participate in every round (encode with the
/// broadcasts received so far), then decode the final kResult frame.
template <typename Output>
[[nodiscard]] Output play_adaptive(
    wire::Link& link, const graph::Graph& g,
    std::span<const graph::Vertex> owned,
    const model::AdaptiveProtocol<Output>& protocol,
    const model::PublicCoins& coins,
    std::chrono::milliseconds timeout = kDefaultRoundTimeout) {
  const std::uint32_t proto = wire::protocol_id(protocol.name());
  const unsigned rounds = protocol.num_rounds();
  std::vector<util::BitString> broadcasts;

  for (unsigned round = 0; round < rounds; ++round) {
    std::vector<std::uint8_t> batch;
    (void)detail::batch_owned_sketches(
        batch, proto, round, owned, engine::graph_view_fn(g, coins),
        [&protocol](const model::VertexView& view, unsigned r,
                    std::span<const util::BitString> bs,
                    util::BitWriter& out) {
          protocol.encode_round(view, r, bs, out);
        },
        broadcasts);
    if (!link.send(batch)) {
      throw ServiceError("player: referee link rejected a round batch");
    }
    if (round + 1 < rounds) {
      wire::Frame frame = await_referee_frame(
          link, wire::FrameType::kBroadcast, proto, timeout);
      broadcasts.push_back(std::move(frame.payload));
    }
  }

  const wire::Frame frame =
      await_referee_frame(link, wire::FrameType::kResult, proto, timeout);
  util::BitReader reader(frame.payload);
  return OutputCodec<Output>::decode(reader);
}

/// Split [0, n) into `players` contiguous shards; shard i is the vertex
/// set client i owns.  Every caller with the same (n, players) computes
/// identical shards — the referee does not need to be told the layout.
[[nodiscard]] inline std::vector<graph::Vertex> shard_vertices(
    graph::Vertex n, std::size_t players, std::size_t index) {
  const auto [lo, hi] = shard_range(n, players, index);
  std::vector<graph::Vertex> owned(hi - lo);
  for (std::size_t i = 0; i < owned.size(); ++i) {
    owned[i] = static_cast<graph::Vertex>(lo + i);
  }
  return owned;
}

}  // namespace ds::service
