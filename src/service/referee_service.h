// The referee as a service: run any existing SketchingProtocol<Output> or
// AdaptiveProtocol<Output> over real links.
//
// The service accepts all n sketches for a round from its links (players
// are multiplexed over the links arbitrarily and batched per message),
// runs the protocol's unmodified decode, and broadcasts the result back
// as a kResult frame.  For adaptive protocols it additionally drives the
// inter-round loop of model/adaptive.h: after each non-final round it
// computes make_broadcast and pushes a kBroadcast frame down every link.
//
// The returned CommStats are computed from the wire payloads exactly the
// way the simulated runners charge them — per-player cumulative bits,
// recorded in vertex order — so `result.comm` here and the CommStats of
// model::run_protocol / model::run_adaptive must agree bit for bit (the
// tests/audit cross-check).  Framing and transport overhead are reported
// separately in WireStats.
#pragma once

#include "model/adaptive.h"
#include "model/protocol.h"
#include "obs/obs.h"
#include "service/output_codec.h"
#include "service/session.h"

namespace ds::service {

namespace detail {
/// Session-phase timings shared by serve_protocol / serve_adaptive:
/// accept -> collect -> decode -> reply (docs/OBSERVABILITY.md).
inline obs::Histogram& decode_us_histogram() {
  static obs::Histogram& h = obs::histogram("service.decode_us");
  return h;
}
inline obs::Histogram& reply_us_histogram() {
  static obs::Histogram& h = obs::histogram("service.reply_us");
  return h;
}
}  // namespace detail

inline constexpr std::chrono::milliseconds kDefaultRoundTimeout{5000};

template <typename Output>
struct ServeResult {
  Output output;
  model::CommStats comm;  // uplink payload bits, per player
  WireStats uplink;
  WireStats downlink;
};

template <typename Output>
struct AdaptiveServeResult {
  Output output;
  model::CommStats comm;                   // per-player totals, all rounds
  std::vector<model::CommStats> by_round;  // per-round breakdown
  std::size_t broadcast_bits = 0;          // model downlink, counted once
                                           // per round as in run_adaptive
  WireStats uplink;
  WireStats downlink;
};

/// One-round service: collect, decode, broadcast the result.
template <typename Output>
[[nodiscard]] ServeResult<Output> serve_protocol(
    std::span<const std::unique_ptr<wire::Link>> links,
    const model::SketchingProtocol<Output>& protocol, graph::Vertex n,
    const model::PublicCoins& coins,
    std::chrono::milliseconds timeout = kDefaultRoundTimeout) {
  const std::uint32_t proto = wire::protocol_id(protocol.name());
  CollectedRound round = collect_sketch_round(links, n, proto, 0, timeout);

  ServeResult<Output> result{[&] {
                               const obs::ScopedSpan decode_span(
                                   "service.decode",
                                   &detail::decode_us_histogram());
                               return protocol.decode(n, round.sketches,
                                                      coins);
                             }(),
                             comm_from_sketches(round.sketches), round.wire,
                             WireStats{}};

  const obs::ScopedSpan reply_span("service.reply",
                                   &detail::reply_us_histogram());
  util::BitWriter w;
  OutputCodec<Output>::encode(result.output, w);
  const util::BitString encoded(w);
  result.downlink = broadcast_to_links(
      links, {wire::FrameType::kResult, proto, 0, 0}, encoded);
  return result;
}

/// Multi-round adaptive service: the run_adaptive loop over real links.
template <typename Output>
[[nodiscard]] AdaptiveServeResult<Output> serve_adaptive(
    std::span<const std::unique_ptr<wire::Link>> links,
    const model::AdaptiveProtocol<Output>& protocol, graph::Vertex n,
    const model::PublicCoins& coins,
    std::chrono::milliseconds timeout = kDefaultRoundTimeout) {
  const std::uint32_t proto = wire::protocol_id(protocol.name());
  const unsigned rounds = protocol.num_rounds();

  AdaptiveServeResult<Output> result{};
  std::vector<std::vector<util::BitString>> all_rounds;
  std::vector<util::BitString> broadcasts;
  std::vector<std::size_t> player_bits(n, 0);

  for (unsigned round = 0; round < rounds; ++round) {
    CollectedRound collected =
        collect_sketch_round(links, n, proto, round, timeout);
    result.by_round.push_back(comm_from_sketches(collected.sketches));
    for (graph::Vertex v = 0; v < n; ++v) {
      player_bits[v] += collected.sketches[v].bit_count();
    }
    result.uplink.merge(collected.wire);
    all_rounds.push_back(std::move(collected.sketches));

    if (round + 1 < rounds) {
      util::BitString b =
          protocol.make_broadcast(round, n, all_rounds, coins);
      result.broadcast_bits += b.bit_count();
      result.downlink.merge(broadcast_to_links(
          links, {wire::FrameType::kBroadcast, proto, 0, round}, b));
      broadcasts.push_back(std::move(b));
    }
  }

  for (const std::size_t bits : player_bits) result.comm.record(bits);
  {
    const obs::ScopedSpan decode_span("service.decode",
                                      &detail::decode_us_histogram());
    result.output = protocol.decode(n, all_rounds, broadcasts, coins);
  }

  const obs::ScopedSpan reply_span("service.reply",
                                   &detail::reply_us_histogram());
  util::BitWriter w;
  OutputCodec<Output>::encode(result.output, w);
  const util::BitString encoded(w);
  result.downlink.merge(broadcast_to_links(
      links, {wire::FrameType::kResult, proto, 0, rounds - 1}, encoded));
  return result;
}

/// Convenience owner: links + timeout + coins in one object, for the
/// service binary and tests.
class RefereeService {
 public:
  RefereeService(std::vector<std::unique_ptr<wire::Link>> links,
                 std::uint64_t coin_seed,
                 std::chrono::milliseconds timeout = kDefaultRoundTimeout)
      : links_(std::move(links)), coins_(coin_seed), timeout_(timeout) {}

  template <typename Output>
  [[nodiscard]] ServeResult<Output> run(
      const model::SketchingProtocol<Output>& protocol, graph::Vertex n) {
    return serve_protocol(links_, protocol, n, coins_, timeout_);
  }

  template <typename Output>
  [[nodiscard]] AdaptiveServeResult<Output> run_adaptive(
      const model::AdaptiveProtocol<Output>& protocol, graph::Vertex n) {
    return serve_adaptive(links_, protocol, n, coins_, timeout_);
  }

  [[nodiscard]] std::size_t num_links() const noexcept {
    return links_.size();
  }
  [[nodiscard]] const model::PublicCoins& coins() const noexcept {
    return coins_;
  }

 private:
  std::vector<std::unique_ptr<wire::Link>> links_;
  model::PublicCoins coins_;
  std::chrono::milliseconds timeout_;
};

}  // namespace ds::service
