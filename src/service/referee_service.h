// The referee as a service: run any existing SketchingProtocol<Output> or
// AdaptiveProtocol<Output> over real links.
//
// This is the round engine's wire configuration: serve_protocol and
// serve_adaptive run engine::run_rounds with a WireSource (frames from
// links instead of in-process encodes) and the service instrumentation
// policy.  The collection loop, the inter-round broadcasts, and — most
// importantly — the bit accounting are therefore the SAME code the
// simulated runners execute: CommStats come from the engine's single
// ChargeSheet site, charged from the wire payloads in vertex order, so
// `result.comm` here and the CommStats of model::run_protocol /
// model::run_adaptive agree bit for bit (the tests/audit cross-check).
// Framing and transport overhead are reported separately in WireStats.
#pragma once

#include "engine/instrumentation.h"
#include "engine/round_engine.h"
#include "model/adaptive.h"
#include "model/protocol.h"
#include "obs/obs.h"
#include "service/output_codec.h"
#include "service/session.h"
#include "service/wire_source.h"

namespace ds::service {

namespace detail {
/// Session-phase timings shared by serve_protocol / serve_adaptive:
/// accept -> collect -> decode -> reply (docs/OBSERVABILITY.md).
inline obs::Histogram& decode_us_histogram() {
  static obs::Histogram& h = obs::histogram("service.decode_us");
  return h;
}
inline obs::Histogram& reply_us_histogram() {
  static obs::Histogram& h = obs::histogram("service.reply_us");
  return h;
}

/// Engine Instrumentation policy for the service: the decode span.  The
/// per-frame collect metrics (service.sketch_bits and friends) are owned
/// by the collection loop in session.cpp, where the frames are observed.
struct ServiceInstrumentation {
  [[nodiscard]] engine::PlainInstrumentation::NoSpan collect_span()
      const noexcept {
    return {};
  }
  [[nodiscard]] obs::ScopedSpan decode_span() const {
    return obs::ScopedSpan("service.decode", &decode_us_histogram());
  }
  void on_sketch_bits(std::size_t) const noexcept {}
  void on_round(unsigned, const model::CommStats&) const noexcept {}
  void on_broadcast(unsigned, const util::BitString&) const noexcept {}
};

/// Encode the decoded output and broadcast it as the final kResult frame.
template <typename Output>
[[nodiscard]] WireStats reply_result(
    std::span<const std::unique_ptr<wire::Link>> links, std::uint32_t proto,
    std::uint32_t round, const Output& output) {
  const obs::ScopedSpan reply_span("service.reply", &reply_us_histogram());
  util::BitWriter w;
  OutputCodec<Output>::encode(output, w);
  const util::BitString encoded(std::move(w));
  return broadcast_to_links(links,
                            {wire::FrameType::kResult, proto, 0, round},
                            encoded);
}
}  // namespace detail

inline constexpr std::chrono::milliseconds kDefaultRoundTimeout{5000};

template <typename Output>
struct ServeResult {
  Output output;
  model::CommStats comm;  // uplink payload bits, per player
  WireStats uplink;
  WireStats downlink;
};

template <typename Output>
struct AdaptiveServeResult {
  Output output;
  model::CommStats comm;                   // per-player totals, all rounds
  std::vector<model::CommStats> by_round;  // per-round breakdown
  std::size_t broadcast_bits = 0;          // model downlink, counted once
                                           // per round as in run_adaptive
  WireStats uplink;
  WireStats downlink;
};

/// One-round service: collect, decode, broadcast the result (the engine's
/// R = 1 case over a WireSource).
template <typename Output>
[[nodiscard]] ServeResult<Output> serve_protocol(
    std::span<const std::unique_ptr<wire::Link>> links,
    const model::SketchingProtocol<Output>& protocol, graph::Vertex n,
    const model::PublicCoins& coins,
    std::chrono::milliseconds timeout = kDefaultRoundTimeout) {
  const std::uint32_t proto = wire::protocol_id(protocol.name());
  WireSource source(links, n, proto, timeout);
  const engine::OneRoundReferee<Output> referee(protocol, coins);
  detail::ServiceInstrumentation instr;
  engine::EngineResult<Output> run =
      engine::run_rounds(n, referee, source, instr);

  ServeResult<Output> result{std::move(run.output), run.comm,
                             source.uplink(), source.downlink()};
  result.downlink.merge(detail::reply_result(links, proto, 0, result.output));
  return result;
}

/// Multi-round adaptive service: the same engine loop over real links,
/// with inter-round kBroadcast frames pushed by the WireSource.
template <typename Output>
[[nodiscard]] AdaptiveServeResult<Output> serve_adaptive(
    std::span<const std::unique_ptr<wire::Link>> links,
    const model::AdaptiveProtocol<Output>& protocol, graph::Vertex n,
    const model::PublicCoins& coins,
    std::chrono::milliseconds timeout = kDefaultRoundTimeout) {
  const std::uint32_t proto = wire::protocol_id(protocol.name());
  WireSource source(links, n, proto, timeout);
  const engine::AdaptiveReferee<Output> referee(protocol, coins);
  detail::ServiceInstrumentation instr;
  engine::EngineResult<Output> run =
      engine::run_rounds(n, referee, source, instr);

  AdaptiveServeResult<Output> result{
      std::move(run.output),     run.comm,          std::move(run.by_round),
      run.broadcast_bits,        source.uplink(),   source.downlink()};
  result.downlink.merge(detail::reply_result(
      links, proto, protocol.num_rounds() - 1, result.output));
  return result;
}

/// Convenience owner: links + timeout + coins in one object, for the
/// service binary and tests.
class RefereeService {
 public:
  RefereeService(std::vector<std::unique_ptr<wire::Link>> links,
                 std::uint64_t coin_seed,
                 std::chrono::milliseconds timeout = kDefaultRoundTimeout)
      : links_(std::move(links)), coins_(coin_seed), timeout_(timeout) {}

  template <typename Output>
  [[nodiscard]] ServeResult<Output> run(
      const model::SketchingProtocol<Output>& protocol, graph::Vertex n) {
    return serve_protocol(links_, protocol, n, coins_, timeout_);
  }

  template <typename Output>
  [[nodiscard]] AdaptiveServeResult<Output> run_adaptive(
      const model::AdaptiveProtocol<Output>& protocol, graph::Vertex n) {
    return serve_adaptive(links_, protocol, n, coins_, timeout_);
  }

  [[nodiscard]] std::size_t num_links() const noexcept {
    return links_.size();
  }
  [[nodiscard]] const model::PublicCoins& coins() const noexcept {
    return coins_;
  }
  /// The raw links, for callers (scenario trials) that serve with
  /// per-trial coins via the free serve_* functions instead of coins().
  [[nodiscard]] std::span<const std::unique_ptr<wire::Link>> links()
      const noexcept {
    return links_;
  }
  [[nodiscard]] std::chrono::milliseconds timeout() const noexcept {
    return timeout_;
  }

 private:
  std::vector<std::unique_ptr<wire::Link>> links_;
  model::PublicCoins coins_;
  std::chrono::milliseconds timeout_;
};

}  // namespace ds::service
