// Wire-session vocabulary shared by the referee service and the player
// client: separated byte accounting, the round-collection core, and the
// failure type.
//
// Accounting contract (docs/WIRE.md): WireStats::payload_bits counts
// exactly the bits the model charges — BitWriter::bit_count() of each
// sketch or broadcast — and must match model::CommStats bit for bit (the
// audit cross-check in tests/audit/wire_audit_test.cpp enforces this for
// the whole protocol zoo).  framing_bits is everything else the frame
// codec adds (headers, byte-rounding padding, CRC); transport prefixes on
// top of that are visible via Link::bytes_sent/received.  The three
// layers never mix.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "model/protocol.h"
#include "util/bitio.h"
#include "wire/frame.h"
#include "wire/transport.h"

namespace ds::service {

/// A session that cannot complete: missing sketches at the round
/// deadline, a dead link, or a referee response that never arrived.
/// (Corrupt frames alone never raise this — they are rejected and
/// counted, and the sender may retransmit within the deadline.)
class ServiceError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Frame-level byte accounting for one direction of a session.
struct WireStats {
  std::size_t frames = 0;
  std::size_t messages = 0;
  std::size_t payload_bits = 0;  // model bits, == CommStats totals
  std::size_t framing_bits = 0;  // header + padding + CRC, never model bits
  std::size_t rejected_frames = 0;

  [[nodiscard]] std::size_t wire_bits() const noexcept {
    return payload_bits + framing_bits;
  }
  void merge(const WireStats& other) noexcept {
    frames += other.frames;
    messages += other.messages;
    payload_bits += other.payload_bits;
    framing_bits += other.framing_bits;
    rejected_frames += other.rejected_frames;
  }
};

/// One fully collected sketch round.
struct CollectedRound {
  std::vector<util::BitString> sketches;  // indexed by vertex, all present
  WireStats wire;
  std::vector<std::string> rejects;  // one diagnostic per rejected frame
};

/// Contiguous vertex range [first, second) owned by shard `index` of
/// `parts`: the one split formula shared by player clients
/// (shard_vertices), referee shards, and the service tool, so every
/// party computes identical layouts without coordination.
[[nodiscard]] std::pair<graph::Vertex, graph::Vertex> shard_range(
    graph::Vertex n, std::size_t parts, std::size_t index) noexcept;

/// Why a kSketch frame is unusable for (protocol_id, round, n), or
/// kAccept.  Shared by the blocking collection loop (session.cpp) and the
/// sharded referee (shard.cpp) so the two paths cannot drift on the
/// rejection taxonomy.  Duplicate detection stays with the caller — it
/// depends on the caller's accumulation state.
enum class FrameVerdict : std::uint8_t {
  kAccept,
  kBadType,
  kBadProtocol,
  kBadRound,
  kBadVertex,
};
[[nodiscard]] FrameVerdict classify_sketch_frame(
    const wire::FrameHeader& header, std::uint32_t protocol_id,
    std::uint32_t round, graph::Vertex n) noexcept;

/// The per-link poll slice while `left` remains to the round deadline and
/// `live_links` links are still being polled.  Dividing the remainder by
/// the live-link count bounds how long any one slow link can be waited on
/// before every other link is polled again: from any instant, a full
/// pass over the links consumes at most the current remainder, so no
/// link starves at the deadline behind a slow reader (regression:
/// tests/service/shard_test.cpp SlowReaderCannotStarveOtherLinks).
[[nodiscard]] std::chrono::milliseconds fair_poll_slice(
    std::chrono::milliseconds left, std::size_t live_links) noexcept;

/// Gather exactly one kSketch frame per vertex for `round` from `links`
/// (players may be spread over the links arbitrarily and batched many
/// frames per message).  Rejected frames — corrupt bytes, wrong protocol
/// or round, out-of-range or duplicate vertex — are recorded and skipped;
/// the sender can retransmit until `timeout`.  Throws ServiceError if any
/// vertex is still missing at the deadline.
[[nodiscard]] CollectedRound collect_sketch_round(
    std::span<const std::unique_ptr<wire::Link>> links, graph::Vertex n,
    std::uint32_t protocol_id, std::uint32_t round,
    std::chrono::milliseconds timeout);

/// Send one referee frame (kBroadcast or kResult) to every link.
/// Returns the per-link stats (payload counted once per link sent to).
WireStats broadcast_to_links(
    std::span<const std::unique_ptr<wire::Link>> links,
    const wire::FrameHeader& header, const util::BitString& payload);

/// Append one sketch frame to a player's outgoing batch; returns framing
/// bits added.  `batch` is sent as a single Link message.
std::size_t append_sketch_frame(std::vector<std::uint8_t>& batch,
                                std::uint32_t protocol_id,
                                graph::Vertex vertex, std::uint32_t round,
                                const util::BitString& payload);

/// Player side: wait for the referee frame of `expected_type` for
/// `protocol_id` (skipping anything else), or throw ServiceError on
/// timeout / closed link / corrupt referee message.
[[nodiscard]] wire::Frame await_referee_frame(
    wire::Link& link, wire::FrameType expected_type,
    std::uint32_t protocol_id, std::chrono::milliseconds timeout);

/// CommStats over one round of wire sketches, recorded in vertex order —
/// the exact sequence the simulated runner charges.
[[nodiscard]] model::CommStats comm_from_sketches(
    std::span<const util::BitString> sketches);

}  // namespace ds::service
