// The sharded referee service: serve_protocol / serve_adaptive over a
// ShardedWireSource instead of a WireSource.
//
// Same engine, same charging site, same decode — only the ingestion path
// differs (N epoll shards feeding the combiner, service/shard.h), which
// is why every serve result here is bit-identical to the single-referee
// and simulated runs (tests/audit/shard_audit_test.cpp checks the whole
// protocol zoo, adaptive included).
//
// Connections arrive as raw fds (TcpListener::accept_fd, or a
// socketpair end in tests) and are dealt to shards round-robin, so k
// shards serving c connections each own either floor(c/k) or ceil(c/k)
// of them regardless of accept order.  Vertex ranges stay nominal: a
// player may batch its whole vertex block to whichever shard its
// connection landed on, and the combiner still converges.
#pragma once

#include <memory>
#include <vector>

#include "engine/round_engine.h"
#include "service/referee_service.h"
#include "service/shard.h"

namespace ds::service {

namespace detail {
/// The kResult reply on the sharded downlink: encode the output once,
/// broadcast it through every shard's event loop.
template <typename Output>
void reply_result_sharded(ShardedWireSource& source, std::uint32_t proto,
                          std::uint32_t round, const Output& output) {
  const obs::ScopedSpan reply_span("service.reply", &reply_us_histogram());
  util::BitWriter w;
  OutputCodec<Output>::encode(output, w);
  const util::BitString encoded(std::move(w));
  (void)source.broadcast_frame(
      {wire::FrameType::kResult, proto, 0, round}, encoded);
}
}  // namespace detail

/// One-round service over shards: collect (fanned out), decode,
/// broadcast the result.
template <typename Output>
[[nodiscard]] ServeResult<Output> serve_protocol_sharded(
    std::span<const std::unique_ptr<RefereeShard>> shards,
    const model::SketchingProtocol<Output>& protocol, graph::Vertex n,
    const model::PublicCoins& coins,
    std::chrono::milliseconds timeout = kDefaultRoundTimeout,
    ShardDrive drive = ShardDrive::kAuto) {
  const std::uint32_t proto = wire::protocol_id(protocol.name());
  ShardedWireSource source(shards, n, proto, timeout, drive);
  const engine::OneRoundReferee<Output> referee(protocol, coins);
  detail::ServiceInstrumentation instr;
  engine::EngineResult<Output> run =
      engine::run_rounds(n, referee, source, instr);

  ServeResult<Output> result{std::move(run.output), run.comm,
                             source.uplink(), source.downlink()};
  detail::reply_result_sharded(source, proto, 0, result.output);
  result.downlink = source.downlink();
  return result;
}

/// Multi-round adaptive service over shards, inter-round broadcasts
/// pushed through every shard's event loop.
template <typename Output>
[[nodiscard]] AdaptiveServeResult<Output> serve_adaptive_sharded(
    std::span<const std::unique_ptr<RefereeShard>> shards,
    const model::AdaptiveProtocol<Output>& protocol, graph::Vertex n,
    const model::PublicCoins& coins,
    std::chrono::milliseconds timeout = kDefaultRoundTimeout,
    ShardDrive drive = ShardDrive::kAuto) {
  const std::uint32_t proto = wire::protocol_id(protocol.name());
  ShardedWireSource source(shards, n, proto, timeout, drive);
  const engine::AdaptiveReferee<Output> referee(protocol, coins);
  detail::ServiceInstrumentation instr;
  engine::EngineResult<Output> run =
      engine::run_rounds(n, referee, source, instr);

  AdaptiveServeResult<Output> result{
      std::move(run.output),     run.comm,          std::move(run.by_round),
      run.broadcast_bits,        source.uplink(),   source.downlink()};
  detail::reply_result_sharded(source, proto, protocol.num_rounds() - 1,
                               result.output);
  result.downlink = source.downlink();
  return result;
}

/// Convenience owner: builds k shards, deals adopted fds round-robin,
/// and runs protocols — the sharded sibling of RefereeService.
class ShardedRefereeService {
 public:
  ShardedRefereeService(std::size_t num_shards, std::uint64_t coin_seed,
                        std::chrono::milliseconds timeout = kDefaultRoundTimeout)
      : coins_(coin_seed), timeout_(timeout) {
    const std::size_t k = std::max<std::size_t>(num_shards, 1);
    shards_.reserve(k);
    for (std::size_t i = 0; i < k; ++i) {
      shards_.push_back(std::make_unique<RefereeShard>(i, k));
    }
  }

  /// Adopt a connected socket (ownership passes to the chosen shard's
  /// event loop).  Returns the shard index it landed on.
  std::size_t adopt_fd(int fd) {
    const std::size_t shard = next_++ % shards_.size();
    shards_[shard]->adopt_fd(fd);
    return shard;
  }

  template <typename Output>
  [[nodiscard]] ServeResult<Output> run(
      const model::SketchingProtocol<Output>& protocol, graph::Vertex n) {
    return serve_protocol_sharded(shards_, protocol, n, coins_, timeout_);
  }

  template <typename Output>
  [[nodiscard]] AdaptiveServeResult<Output> run_adaptive(
      const model::AdaptiveProtocol<Output>& protocol, graph::Vertex n) {
    return serve_adaptive_sharded(shards_, protocol, n, coins_, timeout_);
  }

  [[nodiscard]] std::size_t num_shards() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] std::size_t open_connections() const noexcept {
    std::size_t total = 0;
    for (const auto& shard : shards_) total += shard->open_connections();
    return total;
  }
  [[nodiscard]] const model::PublicCoins& coins() const noexcept {
    return coins_;
  }
  [[nodiscard]] std::span<const std::unique_ptr<RefereeShard>> shards()
      const noexcept {
    return shards_;
  }

 private:
  std::vector<std::unique_ptr<RefereeShard>> shards_;
  model::PublicCoins coins_;
  std::chrono::milliseconds timeout_;
  std::size_t next_ = 0;
};

}  // namespace ds::service
