// The wire-backed SketchSource: the engine's collect() is a round of
// frames gathered from real links, and deliver_broadcast() pushes a
// kBroadcast frame down every link.
//
// This is the second implementation of the engine's SketchSource seam
// (the first is engine/local_source.h): the referee service becomes a
// thin adapter over the same collect/charge/broadcast/decode core the
// simulated runners use — which is exactly why the wire==sim bit-equality
// audit holds by construction instead of by parallel maintenance.
//
// Frame-level wire accounting (payload vs framing vs transport) is kept
// here, strictly separate from the model bits the engine charges
// (docs/WIRE.md); the per-frame service.* metrics stay in session.cpp
// with the collection loop that observes them.
#pragma once

#include <chrono>
#include <memory>
#include <span>
#include <vector>

#include "service/session.h"
#include "wire/frame.h"
#include "wire/transport.h"

namespace ds::service {

class WireSource {
 public:
  WireSource(std::span<const std::unique_ptr<wire::Link>> links,
             graph::Vertex n, std::uint32_t protocol_id,
             std::chrono::milliseconds timeout) noexcept
      : links_(links), n_(n), protocol_id_(protocol_id), timeout_(timeout) {}

  /// One engine round: gather exactly one kSketch frame per vertex.
  /// Throws ServiceError if any vertex is missing at the deadline.  The
  /// broadcasts span is unused — wire players hold their own copies,
  /// delivered below.
  [[nodiscard]] std::vector<util::BitString> collect(
      unsigned round, std::span<const util::BitString> /*broadcasts*/) {
    CollectedRound collected = collect_sketch_round(
        links_, n_, protocol_id_, round, timeout_);
    uplink_.merge(collected.wire);
    return std::move(collected.sketches);
  }

  /// Push the referee's inter-round broadcast to every link.
  void deliver_broadcast(unsigned round, const util::BitString& b) {
    downlink_.merge(broadcast_to_links(
        links_, {wire::FrameType::kBroadcast, protocol_id_, 0, round}, b));
  }

  [[nodiscard]] const WireStats& uplink() const noexcept { return uplink_; }
  [[nodiscard]] const WireStats& downlink() const noexcept {
    return downlink_;
  }

 private:
  std::span<const std::unique_ptr<wire::Link>> links_;
  graph::Vertex n_;
  std::uint32_t protocol_id_;
  std::chrono::milliseconds timeout_;
  WireStats uplink_;
  WireStats downlink_;
};

}  // namespace ds::service
