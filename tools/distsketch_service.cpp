// distsketch_service — the sketching model across real process
// boundaries, one binary with two subcommands:
//
//   distsketch_service serve  --players K [--port 0] [--protocol NAME]
//                             [--n N] [--p P] [--graph-seed S] [--coin-seed C]
//   distsketch_service player --index I --players K --port PORT
//                             [--host 127.0.0.1] [--protocol NAME]
//                             [--n N] [--p P] [--graph-seed S] [--coin-seed C]
//
// The referee listens, accepts K player connections, collects all n
// sketches (players shard [0, n) contiguously by --index), runs the
// protocol's unmodified decode, and broadcasts the result back.  Players
// derive their shard of a shared G(n, p) instance from --graph-seed — a
// stand-in for each process loading its shard of a real dataset; the
// referee never sees the graph, only the frames.
//
// Protocols: spanning-forest (default; AGM, the O(log^3 n) upper bound),
// connectivity, two-round-matching (adaptive, exercises the multi-round
// broadcast loop).
//
// Scenario mode: `--scenario <id>` replaces the ad-hoc --protocol/--n/--p
// plumbing with a registered instance family (scenario::find).  Both
// sides sample the trial's instance deterministically from --trial-seed
// and key the public coins the same way, so the referee's outcome and
// every player's output hash match the simulated run bit for bit (the
// scenario-smoke contract).  `--list-scenarios` prints the registry.
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "graph/generators.h"
#include "obs/obs.h"
#include "protocols/spanning_forest.h"
#include "scenario/registry.h"
#include "protocols/two_round_matching.h"
#include "protocols/zoo.h"
#include "service/player_client.h"
#include "service/referee_service.h"
#include "service/sharded_referee.h"
#include "wire/tcp.h"

namespace {

struct Options {
  std::string command;
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::string protocol = "spanning-forest";
  ds::graph::Vertex n = 64;
  double p = 0.12;
  std::uint64_t graph_seed = 1;
  std::uint64_t coin_seed = 7;
  std::size_t players = 1;
  std::size_t index = 0;
  std::size_t shards = 0;  // 0 = blocking referee; N >= 1 = epoll shards
  std::string scenario;        // registered family id; empty = --protocol
  std::size_t budget = 0;      // 0 = the scenario grid's largest budget
  std::uint64_t trial_seed = 1;
  bool list_scenarios = false;
  bool protocol_set = false;
  std::chrono::milliseconds timeout{10000};
  std::string metrics_out;  // write obs snapshot JSON here on exit
  std::chrono::milliseconds metrics_interval{0};  // 0 = no periodic summary
};

/// Background stderr heartbeat: one obs::summary_line() per interval
/// while the session runs, so a stuck collect is visible live.
class MetricsReporter {
 public:
  explicit MetricsReporter(std::chrono::milliseconds interval) {
    if (interval.count() <= 0) return;
    thread_ = std::thread([this, interval] {
      std::unique_lock<std::mutex> lk(mutex_);
      while (!cv_.wait_for(lk, interval, [this] { return stopping_; })) {
        std::cerr << "metrics: " << ds::obs::summary_line() << "\n";
      }
    });
  }

  ~MetricsReporter() {
    if (!thread_.joinable()) return;
    {
      const std::lock_guard<std::mutex> lk(mutex_);
      stopping_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

  MetricsReporter(const MetricsReporter&) = delete;
  MetricsReporter& operator=(const MetricsReporter&) = delete;

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::thread thread_;
};

void write_metrics_snapshot(const std::string& path) {
  if (path.empty()) return;
  std::ofstream out(path);
  if (!out) {
    std::cerr << "distsketch_service: cannot write metrics to " << path
              << "\n";
    return;
  }
  ds::obs::write_json(out, ds::obs::snapshot());
  out << "\n";
  std::cerr << "metrics: snapshot written to " << path << "\n";
}

[[noreturn]] void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " serve|player [options]\n"
      << "  --host H           player: referee address (default 127.0.0.1)\n"
      << "  --port P           TCP port (serve default 0 = ephemeral)\n"
      << "  --protocol NAME    spanning-forest | connectivity |"
         " two-round-matching\n"
      << "  --n N --p P        shared G(n, p) instance\n"
      << "  --graph-seed S     shared graph seed\n"
      << "  --coin-seed C      public coins seed\n"
      << "  --scenario ID      run a registered instance family instead of"
         " --protocol/--n/--p\n"
      << "  --budget B         scenario: per-player bit budget (default ="
         " the grid's largest)\n"
      << "  --trial-seed S     scenario: trial seed; both sides sample the"
         " instance from it\n"
      << "  --list-scenarios   print the scenario registry and exit\n"
      << "  --players K        number of player processes\n"
      << "  --index I          player: this process's shard index\n"
      << "  --shards S         serve: S epoll referee shards (default 0 ="
         " blocking referee)\n"
      << "  --timeout-ms T     round deadline (default 10000)\n"
      << "  --metrics-out F    enable metrics; write the obs JSON snapshot"
         " to F on exit\n"
      << "  --metrics-interval-ms T\n"
      << "                     enable metrics; print a summary line to"
         " stderr every T ms\n";
  std::exit(2);
}

/// The registry, one line per scenario, for --list-scenarios and the
/// did-you-mean rejection below.
void print_scenarios(std::ostream& out) {
  out << "registered scenarios:\n";
  for (const ds::scenario::Scenario* s : ds::scenario::all()) {
    out << "  " << s->id() << "  (n=" << s->num_vertices()
        << ", budgets " << s->default_grid().budgets.front() << ".."
        << s->default_grid().budgets.back() << ")  " << s->description()
        << "\n";
  }
}

Options parse(int argc, char** argv) {
  if (argc < 2) usage(argv[0]);
  Options opt;
  opt.command = argv[1];
  if (opt.command == "--list-scenarios") {
    opt.list_scenarios = true;
    return opt;
  }
  if (opt.command != "serve" && opt.command != "player") usage(argv[0]);
  for (int i = 2; i < argc; ++i) {
    const std::string key = argv[i];
    if (key == "--list-scenarios") {
      opt.list_scenarios = true;
      continue;
    }
    if (i + 1 >= argc) usage(argv[0]);
    const std::string value = argv[++i];
    if (key == "--host") {
      opt.host = value;
    } else if (key == "--port") {
      opt.port = static_cast<std::uint16_t>(std::stoul(value));
    } else if (key == "--protocol") {
      opt.protocol = value;
      opt.protocol_set = true;
    } else if (key == "--scenario") {
      opt.scenario = value;
    } else if (key == "--budget") {
      opt.budget = std::stoul(value);
    } else if (key == "--trial-seed") {
      opt.trial_seed = std::stoull(value);
    } else if (key == "--n") {
      opt.n = static_cast<ds::graph::Vertex>(std::stoul(value));
    } else if (key == "--p") {
      opt.p = std::stod(value);
    } else if (key == "--graph-seed") {
      opt.graph_seed = std::stoull(value);
    } else if (key == "--coin-seed") {
      opt.coin_seed = std::stoull(value);
    } else if (key == "--players") {
      opt.players = std::stoul(value);
    } else if (key == "--index") {
      opt.index = std::stoul(value);
    } else if (key == "--shards") {
      opt.shards = std::stoul(value);
    } else if (key == "--timeout-ms") {
      opt.timeout = std::chrono::milliseconds(std::stoul(value));
    } else if (key == "--metrics-out") {
      opt.metrics_out = value;
    } else if (key == "--metrics-interval-ms") {
      opt.metrics_interval = std::chrono::milliseconds(std::stoul(value));
    } else {
      usage(argv[0]);
    }
  }
  if (!opt.metrics_out.empty() || opt.metrics_interval.count() > 0) {
    ds::obs::set_metrics_enabled(true);
  }
  return opt;
}

/// Scenario-mode argument checks: unknown ids are rejected with a
/// did-you-mean (exit 2), and modes that can't serve a scenario trial
/// (epoll shards, an explicit --protocol) are refused up front.
const ds::scenario::Scenario* resolve_scenario(const Options& opt) {
  const ds::scenario::Scenario* s = ds::scenario::find(opt.scenario);
  if (s == nullptr) {
    std::cerr << "distsketch_service: unknown scenario '" << opt.scenario
              << "'";
    if (const auto near = ds::scenario::suggest(opt.scenario)) {
      std::cerr << " (did you mean '" << *near << "'?)";
    }
    std::cerr << "\n";
    print_scenarios(std::cerr);
    std::exit(2);
  }
  if (opt.protocol_set) {
    std::cerr << "distsketch_service: --scenario and --protocol are"
                 " mutually exclusive\n";
    std::exit(2);
  }
  if (opt.shards > 0) {
    std::cerr << "distsketch_service: --scenario needs the blocking"
                 " referee (drop --shards)\n";
    std::exit(2);
  }
  return s;
}

void print_wire(const char* label, const ds::service::WireStats& w) {
  std::cout << "  " << label << ": " << w.frames << " frames in "
            << w.messages << " messages, payload " << w.payload_bits
            << " bits, framing " << w.framing_bits << " bits ("
            << w.rejected_frames << " rejected)\n";
}

/// Shared tail of every serve branch: the wire accounting both
/// ServeResult and AdaptiveServeResult carry.
template <typename Result>
void print_serve_wire(const Result& r) {
  print_wire("uplink", r.uplink);
  print_wire("downlink", r.downlink);
}

/// Protocol dispatch shared by the blocking and sharded referees: both
/// expose the same run / run_adaptive surface with identical result
/// types, which is the point — `--shards` changes the ingestion path,
/// never the protocol semantics.
template <typename Service>
int serve_protocols(Service& referee, const Options& opt) {
  if (opt.protocol == "spanning-forest") {
    const ds::protocols::AgmSpanningForest protocol;
    const auto r = referee.run(protocol, opt.n);
    std::cout << "referee: spanning forest with " << r.output.size()
              << " edges; max player " << r.comm.max_bits << " bits\n";
    print_serve_wire(r);
  } else if (opt.protocol == "connectivity") {
    const ds::protocols::AgmConnectivity protocol;
    const auto r = referee.run(protocol, opt.n);
    std::cout << "referee: " << r.output
              << " connected component(s); max player " << r.comm.max_bits
              << " bits\n";
    print_serve_wire(r);
  } else if (opt.protocol == "two-round-matching") {
    const ds::protocols::TwoRoundMatching protocol{8, 16};
    const auto r = referee.run_adaptive(protocol, opt.n);
    std::cout << "referee: matching of size " << r.output.size() << " in "
              << r.by_round.size() << " rounds; max player "
              << r.comm.max_bits << " bits, broadcast "
              << r.broadcast_bits << " bits\n";
    print_serve_wire(r);
  } else {
    std::cerr << "unknown protocol " << opt.protocol << "\n";
    return 2;
  }
  write_metrics_snapshot(opt.metrics_out);
  return 0;
}

int run_serve(const Options& opt) {
  const ds::scenario::Scenario* scenario =
      opt.scenario.empty() ? nullptr : resolve_scenario(opt);
  const MetricsReporter reporter(opt.metrics_interval);
  ds::wire::TcpListener listener(opt.port);
  std::cout << "referee: listening on 127.0.0.1:" << listener.port()
            << ", awaiting " << opt.players << " player(s)"
            << (opt.shards > 0
                    ? " across " + std::to_string(opt.shards) + " shard(s)"
                    : std::string())
            << "\n";

  if (opt.shards > 0) {
    ds::service::ShardedRefereeService referee(opt.shards, opt.coin_seed,
                                               opt.timeout);
    {
      const ds::obs::ScopedSpan accept_span(
          "service.accept", &ds::obs::histogram("service.accept_us"));
      for (std::size_t i = 0; i < opt.players; ++i) {
        const int fd = listener.accept_fd(opt.timeout);
        if (fd < 0) {
          std::cerr << "referee: player " << i << " never connected\n";
          return 1;
        }
        (void)referee.adopt_fd(fd);
      }
    }
    return serve_protocols(referee, opt);
  }

  std::vector<std::unique_ptr<ds::wire::Link>> links;
  {
    const ds::obs::ScopedSpan accept_span(
        "service.accept", &ds::obs::histogram("service.accept_us"));
    for (std::size_t i = 0; i < opt.players; ++i) {
      std::unique_ptr<ds::wire::Link> link = listener.accept(opt.timeout);
      if (!link) {
        std::cerr << "referee: player " << i << " never connected\n";
        return 1;
      }
      links.push_back(std::move(link));
    }
  }
  ds::service::RefereeService referee(std::move(links), opt.coin_seed,
                                      opt.timeout);
  if (scenario != nullptr) {
    const std::size_t budget = opt.budget > 0
                                   ? opt.budget
                                   : scenario->default_grid().budgets.back();
    const ds::scenario::TrialOutcome outcome =
        scenario->serve_trial(referee, budget, opt.trial_seed);
    std::cout << "referee: scenario " << scenario->id() << " budget "
              << budget << " seed " << opt.trial_seed << ": "
              << (outcome.success ? "SUCCESS" : "FAIL") << ", max player "
              << outcome.max_bits << " bits, output hash 0x" << std::hex
              << outcome.output_hash << std::dec << "\n";
    write_metrics_snapshot(opt.metrics_out);
    return 0;
  }
  return serve_protocols(referee, opt);
}

int run_player(const Options& opt) {
  if (!opt.scenario.empty()) {
    const ds::scenario::Scenario* scenario = resolve_scenario(opt);
    const MetricsReporter reporter(opt.metrics_interval);
    const std::vector<ds::graph::Vertex> owned = ds::service::shard_vertices(
        scenario->num_vertices(), opt.players, opt.index);
    const std::size_t budget = opt.budget > 0
                                   ? opt.budget
                                   : scenario->default_grid().budgets.back();
    std::unique_ptr<ds::wire::Link> link =
        ds::wire::tcp_connect(opt.host, opt.port, opt.timeout);
    std::cout << "player " << opt.index << ": connected, " << owned.size()
              << " vertices of scenario " << scenario->id() << "\n";
    const std::uint64_t hash =
        scenario->play_trial(*link, owned, budget, opt.trial_seed,
                             opt.timeout);
    std::cout << "player " << opt.index << ": output hash 0x" << std::hex
              << hash << std::dec << "\n";
    write_metrics_snapshot(opt.metrics_out);
    return 0;
  }
  const MetricsReporter reporter(opt.metrics_interval);
  ds::util::Rng rng(opt.graph_seed);
  const ds::graph::Graph g = ds::graph::gnp(opt.n, opt.p, rng);
  const std::vector<ds::graph::Vertex> owned =
      ds::service::shard_vertices(opt.n, opt.players, opt.index);
  const ds::model::PublicCoins coins(opt.coin_seed);

  std::unique_ptr<ds::wire::Link> link =
      ds::wire::tcp_connect(opt.host, opt.port, opt.timeout);
  std::cout << "player " << opt.index << ": connected, " << owned.size()
            << " vertices\n";

  if (opt.protocol == "spanning-forest") {
    const ds::protocols::AgmSpanningForest protocol;
    const auto forest = ds::service::play_protocol(
        *link, g, owned, protocol, coins, opt.timeout);
    std::cout << "player " << opt.index << ": result has "
              << forest.size() << " forest edges\n";
  } else if (opt.protocol == "connectivity") {
    const ds::protocols::AgmConnectivity protocol;
    const auto components = ds::service::play_protocol(
        *link, g, owned, protocol, coins, opt.timeout);
    std::cout << "player " << opt.index << ": " << components
              << " component(s)\n";
  } else if (opt.protocol == "two-round-matching") {
    const ds::protocols::TwoRoundMatching protocol{8, 16};
    const auto matching = ds::service::play_adaptive(
        *link, g, owned, protocol, coins, opt.timeout);
    std::cout << "player " << opt.index << ": matching size "
              << matching.size() << "\n";
  } else {
    std::cerr << "unknown protocol " << opt.protocol << "\n";
    return 2;
  }
  write_metrics_snapshot(opt.metrics_out);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Options opt = parse(argc, argv);
    if (opt.list_scenarios) {
      print_scenarios(std::cout);
      return 0;
    }
    return opt.command == "serve" ? run_serve(opt) : run_player(opt);
  } catch (const std::exception& e) {
    std::cerr << "distsketch_service: " << e.what() << "\n";
    return 1;
  }
}
