// Orchestration: collect first-party sources, run the rules, render
// the human report and lint_report.json.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "rules.h"

namespace ds::lint {

struct Report {
  std::vector<Finding> violations;   // unsuppressed findings — failures
  std::vector<Finding> suppressed;   // justified allow() findings
  std::size_t files_scanned = 0;
  std::vector<std::string> config_errors;  // manifest load/parse failures

  [[nodiscard]] bool ok() const {
    return violations.empty() && config_errors.empty();
  }
};

/// Run every rule over `files` with the given manifests (raw TOML
/// text).  Manifest errors land in Report::config_errors and fail the
/// run.
[[nodiscard]] Report analyze(const std::vector<SourceFile>& files,
                             const std::string& layers_toml,
                             const std::string& owners_toml);

/// First-party sources under `root`: `git ls-files '*.cpp' '*.h'` when
/// root is a git work tree, otherwise a recursive directory walk
/// (fixture trees in tests are plain directories).  Build trees
/// (build*/), hidden directories, and non-{cpp,h} files are skipped.
[[nodiscard]] std::vector<SourceFile> collect_sources(const std::string& root);

void write_human_report(std::ostream& out, const Report& report);
void write_json_report(std::ostream& out, const Report& report,
                       const std::string& root);

}  // namespace ds::lint
