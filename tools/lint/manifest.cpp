#include "manifest.h"

#include <algorithm>
#include <cctype>
#include <set>
#include <sstream>

namespace ds::lint {

namespace {

[[nodiscard]] std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

/// Strip a trailing # comment that is not inside a quoted string.
[[nodiscard]] std::string strip_comment(const std::string& line) {
  bool in_quote = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (line[i] == '"') in_quote = !in_quote;
    if (line[i] == '#' && !in_quote) return line.substr(0, i);
  }
  return line;
}

/// Parse one value token: "quoted" or bare.  Returns false on errors.
bool parse_string(const std::string& raw, std::string& out) {
  std::string v = trim(raw);
  if (v.size() >= 2 && v.front() == '"' && v.back() == '"') {
    out = v.substr(1, v.size() - 2);
    return true;
  }
  if (v.empty()) return false;
  out = v;
  return true;
}

}  // namespace

Toml parse_toml(const std::string& text, ManifestError& error) {
  Toml out;
  std::string section;
  std::istringstream in(text);
  std::string raw;
  int lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    std::string line = trim(strip_comment(raw));
    if (line.empty()) continue;
    if (line.front() == '[') {
      if (line.back() != ']') {
        error = {lineno, "unterminated section header"};
        return {};
      }
      section = trim(line.substr(1, line.size() - 2));
      if (section.empty()) {
        error = {lineno, "empty section name"};
        return {};
      }
      out[section];  // sections may be empty
      continue;
    }
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      error = {lineno, "expected `key = value`: " + line};
      return {};
    }
    std::string key;
    if (!parse_string(line.substr(0, eq), key)) {
      error = {lineno, "bad key"};
      return {};
    }
    std::string value = trim(line.substr(eq + 1));
    std::vector<std::string> items;
    if (!value.empty() && value.front() == '[') {
      if (value.back() != ']') {
        error = {lineno, "unterminated array (arrays must be one line)"};
        return {};
      }
      std::string body = value.substr(1, value.size() - 2);
      std::size_t pos = 0;
      while (pos <= body.size()) {
        std::size_t comma = body.find(',', pos);
        std::string item = body.substr(
            pos, comma == std::string::npos ? std::string::npos : comma - pos);
        if (!trim(item).empty()) {
          std::string parsed;
          if (!parse_string(item, parsed)) {
            error = {lineno, "bad array element"};
            return {};
          }
          items.push_back(parsed);
        }
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    } else {
      std::string parsed;
      if (!parse_string(value, parsed)) {
        error = {lineno, "bad value for key " + key};
        return {};
      }
      items.push_back(parsed);
    }
    out[section][key] = std::move(items);
  }
  return out;
}

bool LayerManifest::allows(const std::string& from,
                           const std::string& to) const {
  auto it = allowed.find(from);
  if (it == allowed.end()) return false;
  return std::find(it->second.begin(), it->second.end(), to) !=
         it->second.end();
}

bool LayerManifest::is_interface(const std::string& include_path) const {
  return std::find(interfaces.begin(), interfaces.end(), include_path) !=
         interfaces.end();
}

std::string LayerManifest::find_cycle() const {
  // Iterative DFS with colors over the allowed-edge relation.
  std::map<std::string, int> color;  // 0 white, 1 gray, 2 black
  std::vector<std::string> stack;
  std::string cycle;

  // Recursive lambda via explicit stack of (node, next-edge-index).
  for (const auto& [start, deps_unused] : allowed) {
    (void)deps_unused;
    if (color[start] != 0) continue;
    std::vector<std::pair<std::string, std::size_t>> frames{{start, 0}};
    color[start] = 1;
    stack.push_back(start);
    while (!frames.empty()) {
      auto& [node, idx] = frames.back();
      const auto it = allowed.find(node);
      const std::vector<std::string>& deps =
          it == allowed.end() ? std::vector<std::string>{} : it->second;
      if (idx >= deps.size()) {
        color[node] = 2;
        stack.pop_back();
        frames.pop_back();
        continue;
      }
      const std::string next = deps[idx++];
      if (allowed.count(next) == 0) continue;  // unknown dep: layering rule
      if (color[next] == 1) {
        std::ostringstream os;
        auto at = std::find(stack.begin(), stack.end(), next);
        for (; at != stack.end(); ++at) os << *at << " -> ";
        os << next;
        return os.str();
      }
      if (color[next] == 0) {
        color[next] = 1;
        stack.push_back(next);
        frames.emplace_back(next, 0);
      }
    }
  }
  return cycle;
}

std::string OwnerManifest::owner_of(const std::string& series) const {
  std::string best_prefix;
  std::string best_owner;
  for (const auto& [prefix, owner] : owner_by_prefix) {
    if (series.compare(0, prefix.size(), prefix) == 0 &&
        prefix.size() >= best_prefix.size()) {
      best_prefix = prefix;
      best_owner = owner;
    }
  }
  return best_owner;
}

LayerManifest load_layer_manifest(const std::string& text,
                                  ManifestError& error) {
  LayerManifest m;
  const Toml toml = parse_toml(text, error);
  if (!error.message.empty()) return m;
  auto layers = toml.find("layers");
  if (layers == toml.end()) {
    error = {0, "layers.toml: missing [layers] section"};
    return m;
  }
  for (const auto& [layer, deps] : layers->second) m.allowed[layer] = deps;
  auto interfaces = toml.find("interfaces");
  if (interfaces != toml.end()) {
    auto headers = interfaces->second.find("headers");
    if (headers != interfaces->second.end()) m.interfaces = headers->second;
  }
  // Every dep must itself be a declared layer.
  for (const auto& [layer, deps] : m.allowed) {
    for (const std::string& dep : deps) {
      if (m.allowed.count(dep) == 0) {
        error = {0, "layers.toml: layer `" + layer + "` depends on `" + dep +
                        "`, which is not a declared layer"};
        return m;
      }
    }
  }
  const std::string cycle = m.find_cycle();
  if (!cycle.empty()) {
    error = {0, "layers.toml: allowed-edge relation has a cycle: " + cycle};
  }
  return m;
}

OwnerManifest load_owner_manifest(const std::string& text,
                                  ManifestError& error) {
  OwnerManifest m;
  const Toml toml = parse_toml(text, error);
  if (!error.message.empty()) return m;
  auto owners = toml.find("owners");
  if (owners == toml.end()) {
    error = {0, "obs_owners.toml: missing [owners] section"};
    return m;
  }
  for (const auto& [prefix, files] : owners->second) {
    if (files.size() != 1) {
      error = {0, "obs_owners.toml: prefix `" + prefix +
                      "` must map to exactly one owner file"};
      return m;
    }
    m.owner_by_prefix[prefix] = files.front();
  }
  return m;
}

}  // namespace ds::lint
