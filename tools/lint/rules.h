// The four distsketch-lint rule families (docs/STATIC_ANALYSIS.md):
//
//   charge-site          CommStats::record for sketch bits may appear
//                        only inside engine::ChargeSheet
//                        (src/engine/charge.h) — PR 5's single-seam
//                        invariant, now enforced for all code paths.
//   determinism          no std::random_device / std::rand / time(...)
//                        / system_clock / mt19937-family engines
//                        outside src/util/rng.*, and no arithmetic
//                        seed derivation (`Rng(seed + i)`) — seeds
//                        flow through util::derive_seed.
//   unordered-iteration  no range-for over unordered_{map,set} in
//                        src/{model,engine,sketch,lowerbound}: bucket
//                        order is implementation-defined and would
//                        leak into sketch bits.
//   layering             quoted includes between src/ layers must be
//                        edges of the DAG committed in
//                        tools/lint/layers.toml.
//   obs-owner            obs::counter("x")/obs::histogram("x")
//                        registration only in the series' owner file
//                        per tools/lint/obs_owners.toml.
//   scenario-registry    scenario::register_scenario(...) calls only in
//                        src/scenario/builtin.cpp (and the registry's
//                        own declaration/definition files) — one
//                        registration site, so `--scenario <id>` and
//                        scenario::all() can never disagree about what
//                        families exist.
//
// Findings can be suppressed with a justification-required comment on
// the same line or the line above:
//
//   // distsketch-lint: allow(<rule>) -- <why this is sound>
//
// A suppression without the `-- why` text is itself a finding
// (bad-suppression) and does not suppress.
#pragma once

#include <string>
#include <vector>

#include "lexer.h"
#include "manifest.h"

namespace ds::lint {

inline constexpr const char* kRuleChargeSite = "charge-site";
inline constexpr const char* kRuleDeterminism = "determinism";
inline constexpr const char* kRuleUnorderedIteration = "unordered-iteration";
inline constexpr const char* kRuleLayering = "layering";
inline constexpr const char* kRuleObsOwner = "obs-owner";
inline constexpr const char* kRuleScenarioRegistry = "scenario-registry";
inline constexpr const char* kRuleBadSuppression = "bad-suppression";

struct Finding {
  std::string rule;
  std::string file;
  int line = 0;
  std::string message;
  bool suppressed = false;        // justified allow() comment found
  std::string justification{};    // the `-- why` text when suppressed
};

/// A source file fed to the analysis: repo-relative path + content.
/// Virtual (path, content) pairs let the fixture tests run without
/// touching the real tree.
struct SourceFile {
  std::string path;
  std::string content;
};

struct RuleConfig {
  LayerManifest layers;
  OwnerManifest owners;
};

/// Run every rule over one file and apply suppression comments.
/// Returned findings include suppressed ones (flagged), so the report
/// can show both.
[[nodiscard]] std::vector<Finding> run_rules(const SourceFile& file,
                                             const RuleConfig& config);

}  // namespace ds::lint
