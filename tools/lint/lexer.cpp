#include "lexer.h"

#include <cctype>
#include <cstddef>

namespace ds::lint {

namespace {

[[nodiscard]] bool is_ident_start(char c) noexcept {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

[[nodiscard]] bool is_ident_char(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  LexedFile run() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        at_line_start_ = true;
        ++pos_;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
        ++pos_;
        continue;
      }
      if (c == '/' && peek(1) == '/') {
        line_comment();
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        block_comment();
        continue;
      }
      if (c == '#' && at_line_start_) {
        if (!include_directive()) {
          // Some other directive: emit the '#' and keep tokenizing the
          // body, so macro-hidden calls stay visible to the rules.
          push(TokKind::kPunct, "#");
          ++pos_;
        }
        at_line_start_ = false;
        continue;
      }
      at_line_start_ = false;
      if (is_ident_start(c)) {
        identifier();
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        number();
        continue;
      }
      if (c == '"') {
        string_literal();
        continue;
      }
      if (c == '\'') {
        char_literal();
        continue;
      }
      punct();
    }
    return std::move(out_);
  }

 private:
  [[nodiscard]] char peek(std::size_t ahead = 0) const noexcept {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  void push(TokKind kind, std::string text) {
    out_.tokens.push_back({kind, std::move(text), line_});
  }

  void line_comment() {
    const int start_line = line_;
    pos_ += 2;
    std::size_t begin = pos_;
    while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
    out_.comments.push_back(
        {start_line, std::string(src_.substr(begin, pos_ - begin))});
  }

  void block_comment() {
    const int start_line = line_;
    pos_ += 2;
    std::size_t begin = pos_;
    while (pos_ < src_.size()) {
      if (src_[pos_] == '*' && peek(1) == '/') {
        out_.comments.push_back(
            {start_line, std::string(src_.substr(begin, pos_ - begin))});
        pos_ += 2;
        return;
      }
      if (src_[pos_] == '\n') ++line_;
      ++pos_;
    }
    // Unterminated: keep what we saw.
    out_.comments.push_back(
        {start_line, std::string(src_.substr(begin, pos_ - begin))});
  }

  /// Consume `#include "path"` / `#include <path>` lines whole.  Quoted
  /// paths are recorded (layering edges); angled ones are dropped so
  /// their contents never masquerade as code tokens.  Returns false if
  /// this '#' starts some other directive.
  bool include_directive() {
    std::size_t p = pos_ + 1;
    while (p < src_.size() && (src_[p] == ' ' || src_[p] == '\t')) ++p;
    static constexpr std::string_view kWord = "include";
    if (src_.substr(p, kWord.size()) != kWord) return false;
    p += kWord.size();
    while (p < src_.size() && (src_[p] == ' ' || src_[p] == '\t')) ++p;
    if (p < src_.size() && src_[p] == '"') {
      std::size_t begin = ++p;
      while (p < src_.size() && src_[p] != '"' && src_[p] != '\n') ++p;
      out_.includes.push_back(
          {line_, std::string(src_.substr(begin, p - begin))});
    }
    // Skip to end of line either way (also for <...> includes).
    while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
    return true;
  }

  void identifier() {
    std::size_t begin = pos_;
    while (pos_ < src_.size() && is_ident_char(src_[pos_])) ++pos_;
    std::string text(src_.substr(begin, pos_ - begin));
    // Raw string literal prefixes: R"( ... )", also u8R/uR/UR/LR.
    if (pos_ < src_.size() && src_[pos_] == '"' &&
        (text == "R" || text == "u8R" || text == "uR" || text == "UR" ||
         text == "LR")) {
      raw_string_literal();
      return;
    }
    push(TokKind::kIdentifier, std::move(text));
  }

  void number() {
    std::size_t begin = pos_;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '.' ||
          c == '\'') {
        ++pos_;
        continue;
      }
      // Exponent signs: 1e+9, 0x1p-3.
      if ((c == '+' || c == '-') && pos_ > begin) {
        const char prev = src_[pos_ - 1];
        if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
          ++pos_;
          continue;
        }
      }
      break;
    }
    push(TokKind::kNumber, std::string(src_.substr(begin, pos_ - begin)));
  }

  void string_literal() {
    const int start_line = line_;
    ++pos_;  // opening quote
    std::size_t begin = pos_;
    while (pos_ < src_.size() && src_[pos_] != '"') {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) ++pos_;
      if (src_[pos_] == '\n') ++line_;
      ++pos_;
    }
    out_.tokens.push_back({TokKind::kString,
                           std::string(src_.substr(begin, pos_ - begin)),
                           start_line});
    if (pos_ < src_.size()) ++pos_;  // closing quote
  }

  void raw_string_literal() {
    const int start_line = line_;
    ++pos_;  // opening quote
    std::size_t dbegin = pos_;
    while (pos_ < src_.size() && src_[pos_] != '(') ++pos_;
    std::string delim;
    delim.push_back(')');
    delim.append(src_.substr(dbegin, pos_ - dbegin));
    delim.push_back('"');
    if (pos_ < src_.size()) ++pos_;  // '('
    std::size_t begin = pos_;
    std::size_t end = src_.find(delim, pos_);
    if (end == std::string_view::npos) end = src_.size();
    for (std::size_t i = begin; i < end; ++i) {
      if (src_[i] == '\n') ++line_;
    }
    out_.tokens.push_back({TokKind::kString,
                           std::string(src_.substr(begin, end - begin)),
                           start_line});
    pos_ = end == src_.size() ? end : end + delim.size();
  }

  void char_literal() {
    ++pos_;  // opening quote
    std::size_t begin = pos_;
    while (pos_ < src_.size() && src_[pos_] != '\'') {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) ++pos_;
      ++pos_;
    }
    push(TokKind::kChar, std::string(src_.substr(begin, pos_ - begin)));
    if (pos_ < src_.size()) ++pos_;  // closing quote
  }

  void punct() {
    // Multi-char units the rules care about; everything else is 1 char.
    if (peek(0) == ':' && peek(1) == ':') {
      push(TokKind::kPunct, "::");
      pos_ += 2;
      return;
    }
    if (peek(0) == '-' && peek(1) == '>') {
      push(TokKind::kPunct, "->");
      pos_ += 2;
      return;
    }
    push(TokKind::kPunct, std::string(1, src_[pos_]));
    ++pos_;
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  bool at_line_start_ = true;
  LexedFile out_;
};

}  // namespace

LexedFile lex(std::string_view source) { return Lexer(source).run(); }

}  // namespace ds::lint
