// The distsketch-lint lexer: dependency-free C++ tokenization good
// enough for the repo's own lint rules.
//
// This is NOT a compiler front end.  It produces a flat token stream
// (identifiers, numbers, string/char literals, punctuation) with line
// numbers, plus three side channels the rules need:
//
//   * comments       — so `// distsketch-lint: allow(...)` suppressions
//                      can be located, and so banned identifiers that
//                      only appear in prose never fire;
//   * quoted includes — the edges of the layering DAG;
//   * nothing else.  Preprocessor lines other than `#include` are
//     tokenized normally, so a banned call hidden in a macro body is
//     still visible to the rules.
//
// The deliberate scope keeps the linter runnable in the gcc-only
// reproduction container: no libclang, no compile database, just text.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ds::lint {

enum class TokKind {
  kIdentifier,
  kNumber,
  kString,  // string literal (text is the unquoted value)
  kChar,    // character literal
  kPunct,   // one operator/punctuator; "::", "->", "." kept as units
};

struct Token {
  TokKind kind;
  std::string text;
  int line = 0;
};

struct Comment {
  int line = 0;        // line the comment starts on
  std::string text;    // without the // or /* */ markers
};

struct IncludeDirective {
  int line = 0;
  std::string path;    // the quoted path; angled includes are dropped
};

struct LexedFile {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
  std::vector<IncludeDirective> includes;
};

/// Tokenize one translation unit.  Never throws on malformed input —
/// the worst case is a shorter token stream, which makes rules
/// conservatively quiet rather than noisy.
[[nodiscard]] LexedFile lex(std::string_view source);

}  // namespace ds::lint
