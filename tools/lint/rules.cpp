#include "rules.h"

#include <algorithm>
#include <cstddef>
#include <set>
#include <string_view>

namespace ds::lint {

namespace {

using Tokens = std::vector<Token>;

[[nodiscard]] bool starts_with(const std::string& s, std::string_view prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

[[nodiscard]] bool is_ident(const Token& t, std::string_view text) {
  return t.kind == TokKind::kIdentifier && t.text == text;
}

[[nodiscard]] bool is_punct(const Token& t, std::string_view text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

/// tokens[i - back], or a sentinel punct when out of range.
[[nodiscard]] const Token& at(const Tokens& toks, std::size_t i,
                              std::ptrdiff_t offset) {
  static const Token sentinel{TokKind::kPunct, "", 0};
  const std::ptrdiff_t j = static_cast<std::ptrdiff_t>(i) + offset;
  if (j < 0 || j >= static_cast<std::ptrdiff_t>(toks.size())) return sentinel;
  return toks[static_cast<std::size_t>(j)];
}

// -------------------------------------------------------------------
// Scopes.  Tests are exempt from charge-site and determinism (they
// construct CommStats and scratch series on purpose); bench is NOT
// exempt — benchmark tables are empirical claims.
// -------------------------------------------------------------------

[[nodiscard]] bool charge_site_in_scope(const std::string& path) {
  if (path == "src/engine/charge.h") return false;  // the one seam
  return starts_with(path, "src/") || starts_with(path, "tools/") ||
         starts_with(path, "bench/");
}

[[nodiscard]] bool determinism_in_scope(const std::string& path) {
  if (path == "src/util/rng.h" || path == "src/util/rng.cpp") return false;
  return starts_with(path, "src/") || starts_with(path, "tools/") ||
         starts_with(path, "bench/") || starts_with(path, "examples/");
}

[[nodiscard]] bool unordered_in_scope(const std::string& path) {
  return starts_with(path, "src/model/") || starts_with(path, "src/engine/") ||
         starts_with(path, "src/sketch/") ||
         starts_with(path, "src/lowerbound/");
}

[[nodiscard]] bool obs_owner_in_scope(const std::string& path) {
  if (starts_with(path, "src/obs/")) return false;  // the registry itself
  return starts_with(path, "src/") || starts_with(path, "tools/");
}

[[nodiscard]] bool scenario_registry_in_scope(const std::string& path) {
  // The single registration site and the registry's own declaration and
  // definition are the only places register_scenario may appear.
  if (path == "src/scenario/builtin.cpp" ||
      path == "src/scenario/registry.h" ||
      path == "src/scenario/registry.cpp") {
    return false;
  }
  return starts_with(path, "src/") || starts_with(path, "tools/") ||
         starts_with(path, "bench/");
}

// -------------------------------------------------------------------
// charge-site: CommStats::record only inside engine::ChargeSheet.
// -------------------------------------------------------------------

void rule_charge_site(const SourceFile& file, const Tokens& toks,
                      std::vector<Finding>& out) {
  if (!charge_site_in_scope(file.path)) return;

  // Names declared in this file with type (model::)CommStats — a local
  // type-inference good enough for the receiver of a .record() call.
  std::set<std::string> commstats_names;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!is_ident(toks[i], "CommStats")) continue;
    if (is_punct(at(toks, i, 1), "::")) {
      if (is_ident(at(toks, i, 2), "record")) {
        out.push_back({kRuleChargeSite, file.path, toks[i].line,
                       "direct CommStats::record — sketch bits may only be "
                       "charged through engine::ChargeSheet "
                       "(src/engine/charge.h)"});
      }
      continue;
    }
    // Declaration shapes: `CommStats x`, `CommStats& x`, `CommStats* x`,
    // `const CommStats x`.  `CommStats f(` declares a function; skip.
    std::size_t j = i + 1;
    while (j < toks.size() &&
           (is_punct(toks[j], "&") || is_punct(toks[j], "*") ||
            is_ident(toks[j], "const"))) {
      ++j;
    }
    if (j < toks.size() && toks[j].kind == TokKind::kIdentifier &&
        !is_punct(at(toks, j, 1), "(")) {
      commstats_names.insert(toks[j].text);
    }
  }

  for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdentifier ||
        commstats_names.count(toks[i].text) == 0) {
      continue;
    }
    if ((is_punct(toks[i + 1], ".") || is_punct(toks[i + 1], "->")) &&
        is_ident(toks[i + 2], "record") && is_punct(toks[i + 3], "(")) {
      out.push_back({kRuleChargeSite, file.path, toks[i].line,
                     "`" + toks[i].text +
                         ".record(...)` charges sketch bits outside "
                         "engine::ChargeSheet — route it through "
                         "charge_round (src/engine/charge.h)"});
    }
  }
}

// -------------------------------------------------------------------
// determinism: banned randomness/clock sources + arithmetic seeds.
// -------------------------------------------------------------------

void rule_determinism(const SourceFile& file, const Tokens& toks,
                      std::vector<Finding>& out) {
  if (!determinism_in_scope(file.path)) return;

  static const std::set<std::string> kBannedTypes = {
      "random_device", "mt19937",      "mt19937_64",
      "minstd_rand",   "minstd_rand0", "default_random_engine",
      "knuth_b",       "ranlux24",     "ranlux48",
      "ranlux24_base", "ranlux48_base", "system_clock"};
  static const std::set<std::string> kBannedCalls = {
      "rand",    "srand",   "rand_r",       "drand48",
      "lrand48", "mrand48", "gettimeofday", "clock_gettime"};

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdentifier) continue;
    const Token& prev = at(toks, i, -1);
    const bool member = is_punct(prev, ".") || is_punct(prev, "->");

    if (kBannedTypes.count(t.text) != 0 && !member) {
      out.push_back({kRuleDeterminism, file.path, t.line,
                     "`" + t.text +
                         "` is a nondeterministic source — all randomness "
                         "flows through util::Rng / util::derive_seed "
                         "(src/util/rng.h)"});
      continue;
    }

    if (kBannedCalls.count(t.text) != 0 && !member &&
        is_punct(at(toks, i, 1), "(")) {
      // Allow Foo::rand(...) for non-std Foo; ban std::rand and ::rand.
      if (is_punct(prev, "::") && !is_ident(at(toks, i, -2), "std") &&
          at(toks, i, -2).kind == TokKind::kIdentifier) {
        continue;
      }
      out.push_back({kRuleDeterminism, file.path, t.line,
                     "`" + t.text +
                         "(...)` is a nondeterministic source — use "
                         "util::Rng seeded via util::derive_seed"});
      continue;
    }

    // time(nullptr) / time(NULL) / time(0): the classic seed cheat.
    if (t.text == "time" && !member && is_punct(at(toks, i, 1), "(")) {
      if (is_punct(prev, "::") && !is_ident(at(toks, i, -2), "std") &&
          at(toks, i, -2).kind == TokKind::kIdentifier) {
        continue;
      }
      const Token& arg = at(toks, i, 2);
      const bool null_arg = is_ident(arg, "nullptr") ||
                            is_ident(arg, "NULL") ||
                            (arg.kind == TokKind::kNumber && arg.text == "0");
      if (null_arg && is_punct(at(toks, i, 3), ")")) {
        out.push_back({kRuleDeterminism, file.path, t.line,
                       "`time(" + arg.text +
                           ")` seeds from the wall clock — seeds are "
                           "experiment parameters (util::derive_seed)"});
      }
      continue;
    }

    // Rng(seed + i) / Rng rng(seed ^ i): arithmetic seed derivation
    // collides across trials; util::derive_seed is the one mapping from
    // (master, index) to independent seeds (docs/PARALLELISM.md).
    if (t.text == "Rng" && !member) {
      std::size_t open = 0;
      if (is_punct(at(toks, i, 1), "(")) {
        open = i + 1;
      } else if (at(toks, i, 1).kind == TokKind::kIdentifier &&
                 is_punct(at(toks, i, 2), "(")) {
        open = i + 2;
      } else {
        continue;
      }
      int depth = 0;
      for (std::size_t j = open; j < toks.size(); ++j) {
        if (is_punct(toks[j], "(")) ++depth;
        if (is_punct(toks[j], ")") && --depth == 0) break;
        if (depth == 1 &&
            (is_punct(toks[j], "+") || is_punct(toks[j], "^") ||
             is_punct(toks[j], "%"))) {
          out.push_back(
              {kRuleDeterminism, file.path, toks[j].line,
               "arithmetic seed derivation in Rng(...) — two trials can "
               "collide or correlate; use util::derive_seed(master, index)"});
          break;
        }
      }
    }
  }
}

// -------------------------------------------------------------------
// unordered-iteration: range-for over unordered containers in the
// layers whose iteration order reaches sketch bits.
// -------------------------------------------------------------------

void rule_unordered_iteration(const SourceFile& file, const Tokens& toks,
                              std::vector<Finding>& out) {
  if (!unordered_in_scope(file.path)) return;

  static const std::set<std::string> kUnordered = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};

  // Pass 1: names declared with an unordered container type.
  std::set<std::string> unordered_names;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdentifier ||
        kUnordered.count(toks[i].text) == 0 ||
        !is_punct(toks[i + 1], "<")) {
      continue;
    }
    int angle = 0;
    int paren = 0;
    std::size_t j = i + 1;
    for (; j < toks.size(); ++j) {
      if (is_punct(toks[j], "(")) ++paren;
      if (is_punct(toks[j], ")")) --paren;
      if (paren != 0) continue;
      if (is_punct(toks[j], "<")) ++angle;
      if (is_punct(toks[j], ">") && --angle == 0) break;
    }
    if (j >= toks.size()) continue;
    std::size_t k = j + 1;
    while (k < toks.size() &&
           (is_punct(toks[k], "&") || is_ident(toks[k], "const"))) {
      ++k;
    }
    if (k < toks.size() && toks[k].kind == TokKind::kIdentifier &&
        !is_punct(at(toks, k, 1), "(")) {
      unordered_names.insert(toks[k].text);
    }
  }
  if (unordered_names.empty()) return;

  // Pass 2: range-for whose range expression names one of them.
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!is_ident(toks[i], "for") || !is_punct(toks[i + 1], "(")) continue;
    int depth = 0;
    std::size_t colon = 0;
    std::size_t close = 0;
    for (std::size_t j = i + 1; j < toks.size(); ++j) {
      if (is_punct(toks[j], "(")) ++depth;
      if (is_punct(toks[j], ")") && --depth == 0) {
        close = j;
        break;
      }
      if (depth == 1 && colon == 0 && is_punct(toks[j], ":")) colon = j;
    }
    if (colon == 0 || close == 0) continue;  // not a range-for
    for (std::size_t j = colon + 1; j < close; ++j) {
      if (toks[j].kind == TokKind::kIdentifier &&
          unordered_names.count(toks[j].text) != 0) {
        out.push_back(
            {kRuleUnorderedIteration, file.path, toks[j].line,
             "range-for over unordered container `" + toks[j].text +
                 "` — bucket order is implementation-defined and leaks "
                 "into sketch bits; iterate a sorted copy or use std::map"});
        break;
      }
    }
  }
}

// -------------------------------------------------------------------
// layering: quoted cross-layer includes must be manifest edges.
// -------------------------------------------------------------------

void rule_layering(const SourceFile& file, const LexedFile& lx,
                   const LayerManifest& layers,
                   std::vector<Finding>& out) {
  if (!starts_with(file.path, "src/")) return;
  const std::size_t slash = file.path.find('/', 4);
  if (slash == std::string::npos) return;  // src/file.h — layerless
  const std::string layer = file.path.substr(4, slash - 4);
  if (!layers.knows(layer)) {
    out.push_back({kRuleLayering, file.path, 1,
                   "directory src/" + layer +
                       "/ is not a declared layer in tools/lint/layers.toml "
                       "— add it with its allowed dependencies"});
    return;
  }
  for (const IncludeDirective& inc : lx.includes) {
    const std::size_t d = inc.path.find('/');
    if (d == std::string::npos) continue;  // same-directory include
    const std::string target = inc.path.substr(0, d);
    if (target == layer) continue;
    if (layers.is_interface(inc.path)) continue;
    if (!layers.knows(target)) {
      out.push_back({kRuleLayering, file.path, inc.line,
                     "#include \"" + inc.path + "\": `" + target +
                         "` is not a declared layer in layers.toml"});
      continue;
    }
    if (!layers.allows(layer, target)) {
      out.push_back({kRuleLayering, file.path, inc.line,
                     "#include \"" + inc.path + "\": layering back-edge " +
                         layer + " -> " + target +
                         " (not an allowed dependency in layers.toml)"});
    }
  }
}

// -------------------------------------------------------------------
// obs-owner: series registration only in the owner file.
// -------------------------------------------------------------------

void rule_obs_owner(const SourceFile& file, const Tokens& toks,
                    const OwnerManifest& owners, std::vector<Finding>& out) {
  if (!obs_owner_in_scope(file.path)) return;
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdentifier ||
        (toks[i].text != "counter" && toks[i].text != "histogram")) {
      continue;
    }
    if (!is_punct(at(toks, i, -1), "::") || !is_ident(at(toks, i, -2), "obs")) {
      continue;
    }
    if (!is_punct(toks[i + 1], "(")) continue;
    const Token& arg = toks[i + 2];
    if (arg.kind != TokKind::kString) {
      out.push_back({kRuleObsOwner, file.path, toks[i].line,
                     "obs::" + toks[i].text +
                         "(...) with a non-literal series name — ownership "
                         "cannot be verified statically; register with a "
                         "string literal"});
      continue;
    }
    const std::string owner = owners.owner_of(arg.text);
    if (owner.empty()) {
      out.push_back({kRuleObsOwner, file.path, arg.line,
                     "series \"" + arg.text +
                         "\" matches no owner prefix in "
                         "tools/lint/obs_owners.toml — declare its owner"});
    } else if (owner != file.path) {
      out.push_back({kRuleObsOwner, file.path, arg.line,
                     "series \"" + arg.text + "\" is owned by " + owner +
                         " (tools/lint/obs_owners.toml); registering it "
                         "here re-creates PR 5's duplicate-registration "
                         "drift"});
    }
  }
}

// -------------------------------------------------------------------
// scenario-registry: register_scenario only at the one blessed site.
// -------------------------------------------------------------------

void rule_scenario_registry(const SourceFile& file, const Tokens& toks,
                            std::vector<Finding>& out) {
  if (!scenario_registry_in_scope(file.path)) return;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!is_ident(toks[i], "register_scenario") ||
        !is_punct(toks[i + 1], "(")) {
      continue;
    }
    out.push_back({kRuleScenarioRegistry, file.path, toks[i].line,
                   "register_scenario(...) outside "
                   "src/scenario/builtin.cpp — scenarios register at the "
                   "one blessed site so the registry's contents never "
                   "depend on which translation units were linked"});
  }
}

// -------------------------------------------------------------------
// Suppressions: `// distsketch-lint: allow(<rule>) -- <why>`.
// -------------------------------------------------------------------

struct Suppression {
  int line = 0;
  std::string rule;
  std::string justification;
  bool used = false;
};

void parse_suppressions(const SourceFile& file,
                        const std::vector<Comment>& comments,
                        std::vector<Suppression>& sups,
                        std::vector<Finding>& bad) {
  static const std::set<std::string> kKnownRules = {
      kRuleChargeSite, kRuleDeterminism, kRuleUnorderedIteration,
      kRuleLayering, kRuleObsOwner, kRuleScenarioRegistry};
  static constexpr std::string_view kMarker = "distsketch-lint:";
  for (const Comment& c : comments) {
    // The marker must open the comment (modulo whitespace): prose or doc
    // examples that merely mention the syntax are not suppressions.
    std::size_t m = 0;
    while (m < c.text.size() && (c.text[m] == ' ' || c.text[m] == '\t')) ++m;
    if (c.text.compare(m, kMarker.size(), kMarker) != 0) continue;
    std::string rest = c.text.substr(m + kMarker.size());
    const std::size_t open = rest.find("allow(");
    const std::size_t close =
        open == std::string::npos ? std::string::npos : rest.find(')', open);
    if (open == std::string::npos || close == std::string::npos) {
      bad.push_back({kRuleBadSuppression, file.path, c.line,
                     "malformed suppression — expected `distsketch-lint: "
                     "allow(<rule>) -- <why>`"});
      continue;
    }
    const std::string rule = rest.substr(open + 6, close - open - 6);
    if (kKnownRules.count(rule) == 0) {
      bad.push_back({kRuleBadSuppression, file.path, c.line,
                     "suppression names unknown rule `" + rule + "`"});
      continue;
    }
    std::string why;
    const std::size_t dash = rest.find("--", close);
    if (dash != std::string::npos) {
      std::size_t b = dash + 2;
      while (b < rest.size() && (rest[b] == ' ' || rest[b] == '\t')) ++b;
      why = rest.substr(b);
      while (!why.empty() && (why.back() == ' ' || why.back() == '\t')) {
        why.pop_back();
      }
    }
    if (why.empty()) {
      bad.push_back({kRuleBadSuppression, file.path, c.line,
                     "suppression for `" + rule +
                         "` lacks a justification — write `allow(" + rule +
                         ") -- <why this is sound>`"});
      continue;  // an unjustified allow() does not suppress
    }
    sups.push_back({c.line, rule, why, false});
  }
}

}  // namespace

std::vector<Finding> run_rules(const SourceFile& file,
                               const RuleConfig& config) {
  const LexedFile lx = lex(file.content);

  std::vector<Finding> findings;
  rule_charge_site(file, lx.tokens, findings);
  rule_determinism(file, lx.tokens, findings);
  rule_unordered_iteration(file, lx.tokens, findings);
  rule_layering(file, lx, config.layers, findings);
  rule_obs_owner(file, lx.tokens, config.owners, findings);
  rule_scenario_registry(file, lx.tokens, findings);

  std::vector<Suppression> sups;
  std::vector<Finding> bad;
  parse_suppressions(file, lx.comments, sups, bad);

  for (Finding& f : findings) {
    for (Suppression& s : sups) {
      if (s.rule == f.rule && (s.line == f.line || s.line == f.line - 1)) {
        f.suppressed = true;
        f.justification = s.justification;
        s.used = true;
        break;
      }
    }
  }
  for (const Suppression& s : sups) {
    if (!s.used) {
      bad.push_back({kRuleBadSuppression, file.path, s.line,
                     "suppression for `" + s.rule +
                         "` matches no finding on this or the next line — "
                         "remove it"});
    }
  }
  findings.insert(findings.end(), bad.begin(), bad.end());
  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     return a.line < b.line;
                   });
  return findings;
}

}  // namespace ds::lint
