// distsketch-lint CLI.
//
//   distsketch_lint [--root DIR] [--json PATH]
//                   [--layers FILE] [--owners FILE]
//
// Lints the first-party sources under --root (default: the current
// directory) against the repo's model invariants and exits nonzero on
// any violation or config error.  --json additionally writes the
// machine-readable report (lint_report.json in CI).
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "driver.h"

namespace {

[[nodiscard]] std::string slurp(const std::string& path, bool& ok) {
  std::ifstream in(path, std::ios::binary);
  ok = in.good();
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void usage(std::ostream& out) {
  out << "usage: distsketch_lint [--root DIR] [--json PATH]\n"
         "                       [--layers FILE] [--owners FILE]\n"
         "Enforces the distributed-sketching model invariants statically\n"
         "(docs/STATIC_ANALYSIS.md).  Exits 1 on any violation.\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string json_path;
  std::string layers_path;
  std::string owners_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "distsketch_lint: " << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--root") {
      root = next("--root");
    } else if (arg == "--json") {
      json_path = next("--json");
    } else if (arg == "--layers") {
      layers_path = next("--layers");
    } else if (arg == "--owners") {
      owners_path = next("--owners");
    } else if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return 0;
    } else {
      std::cerr << "distsketch_lint: unknown argument " << arg << "\n";
      usage(std::cerr);
      return 2;
    }
  }

  // Manifests default to <root>/tools/lint/*.toml — the committed ones.
  if (layers_path.empty()) layers_path = root + "/tools/lint/layers.toml";
  if (owners_path.empty()) owners_path = root + "/tools/lint/obs_owners.toml";

  bool layers_ok = false;
  bool owners_ok = false;
  const std::string layers_toml = slurp(layers_path, layers_ok);
  const std::string owners_toml = slurp(owners_path, owners_ok);
  if (!layers_ok || !owners_ok) {
    std::cerr << "distsketch_lint: cannot read manifest "
              << (!layers_ok ? layers_path : owners_path) << "\n";
    return 2;
  }

  const std::vector<ds::lint::SourceFile> files =
      ds::lint::collect_sources(root);
  if (files.empty()) {
    std::cerr << "distsketch_lint: no sources found under " << root << "\n";
    return 2;
  }

  const ds::lint::Report report =
      ds::lint::analyze(files, layers_toml, owners_toml);
  ds::lint::write_human_report(std::cout, report);

  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary);
    ds::lint::write_json_report(out, report, root);
    if (!out.good()) {
      std::cerr << "distsketch_lint: cannot write " << json_path << "\n";
      return 2;
    }
  }
  return report.ok() ? 0 : 1;
}
