// Committed manifests that drive the data-driven lint rules.
//
//   * layers.toml     — the allowed include DAG between src/ layers,
//                       plus "interface" headers exempt from layering
//                       (pure type definitions, e.g. model/protocol.h).
//   * obs_owners.toml — the single owner file of every metric-series
//                       name prefix (docs/OBSERVABILITY.md).
//
// The parser accepts the small TOML subset those files use: comments,
// `[section]` headers, `key = "string"`, `key = ["a", "b"]`.  Keys may
// be bare or quoted (series prefixes contain dots).  Anything else is
// a hard error — a malformed manifest must fail the lint run, not
// silently disable a rule.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace ds::lint {

struct ManifestError {
  int line = 0;
  std::string message;
};

/// One parsed section: key -> list of values (a plain string value is a
/// one-element list).  Section and key order is preserved by the maps'
/// lexicographic ordering, which is all the rules need.
using Section = std::map<std::string, std::vector<std::string>>;
using Toml = std::map<std::string, Section>;

/// Parse the TOML subset.  On failure returns an empty map and fills
/// `error`.
[[nodiscard]] Toml parse_toml(const std::string& text, ManifestError& error);

/// The layering manifest: for each layer (a directory under src/), the
/// set of layers it may include, plus interface headers any layer may
/// include.
struct LayerManifest {
  std::map<std::string, std::vector<std::string>> allowed;  // layer -> deps
  std::vector<std::string> interfaces;                      // "dir/file.h"

  [[nodiscard]] bool knows(const std::string& layer) const {
    return allowed.count(layer) != 0;
  }
  [[nodiscard]] bool allows(const std::string& from,
                            const std::string& to) const;
  [[nodiscard]] bool is_interface(const std::string& include_path) const;

  /// Verify the allowed-edge relation is acyclic (interface headers are
  /// type-only and excluded).  Returns the cycle as "a -> b -> a" text,
  /// or empty when the manifest is a DAG.
  [[nodiscard]] std::string find_cycle() const;
};

/// The obs ownership manifest: series-name prefix -> owner file.
/// Longest-prefix match decides the owner.
struct OwnerManifest {
  std::map<std::string, std::string> owner_by_prefix;

  /// Owner file for `series`, or empty when no prefix matches.
  [[nodiscard]] std::string owner_of(const std::string& series) const;
};

[[nodiscard]] LayerManifest load_layer_manifest(const std::string& text,
                                                ManifestError& error);
[[nodiscard]] OwnerManifest load_owner_manifest(const std::string& text,
                                                ManifestError& error);

}  // namespace ds::lint
