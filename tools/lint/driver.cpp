#include "driver.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>

namespace ds::lint {

namespace fs = std::filesystem;

namespace {

[[nodiscard]] bool is_source_path(const std::string& rel) {
  const bool ext = rel.size() > 4 && (rel.ends_with(".cpp") ||
                                      rel.ends_with(".h") ||
                                      rel.ends_with(".hpp"));
  if (!ext) return false;
  // Never lint build trees or hidden directories, whatever git thinks.
  return rel.rfind("build", 0) != 0 && rel.front() != '.';
}

[[nodiscard]] std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// `git -C root ls-files -z '*.cpp' '*.h' '*.hpp'`; empty on any failure.
[[nodiscard]] std::vector<std::string> git_ls_files(const std::string& root) {
  std::vector<std::string> out;
  const std::string cmd = "git -C '" + root +
                          "' ls-files -z '*.cpp' '*.h' '*.hpp' 2>/dev/null";
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return out;
  std::string current;
  std::array<char, 4096> buf{};
  std::size_t n = 0;
  while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    for (std::size_t i = 0; i < n; ++i) {
      if (buf[i] == '\0') {
        if (!current.empty()) out.push_back(current);
        current.clear();
      } else {
        current.push_back(buf[i]);
      }
    }
  }
  if (pclose(pipe) != 0) return {};
  if (!current.empty()) out.push_back(current);
  return out;
}

[[nodiscard]] std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof hex, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += hex;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_finding_array(std::ostream& out, const std::vector<Finding>& fs,
                         bool with_justification) {
  out << "[";
  for (std::size_t i = 0; i < fs.size(); ++i) {
    const Finding& f = fs[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"rule\": \"" << json_escape(f.rule) << "\", \"file\": \""
        << json_escape(f.file) << "\", \"line\": " << f.line
        << ", \"message\": \"" << json_escape(f.message) << "\"";
    if (with_justification) {
      out << ", \"justification\": \"" << json_escape(f.justification)
          << "\"";
    }
    out << "}";
  }
  out << (fs.empty() ? "]" : "\n  ]");
}

}  // namespace

Report analyze(const std::vector<SourceFile>& files,
               const std::string& layers_toml,
               const std::string& owners_toml) {
  Report report;
  ManifestError err;
  RuleConfig config;
  config.layers = load_layer_manifest(layers_toml, err);
  if (!err.message.empty()) {
    report.config_errors.push_back(err.message);
    return report;
  }
  config.owners = load_owner_manifest(owners_toml, err);
  if (!err.message.empty()) {
    report.config_errors.push_back(err.message);
    return report;
  }
  for (const SourceFile& file : files) {
    ++report.files_scanned;
    for (Finding& f : run_rules(file, config)) {
      (f.suppressed ? report.suppressed : report.violations)
          .push_back(std::move(f));
    }
  }
  auto order = [](const Finding& a, const Finding& b) {
    return std::tie(a.file, a.line, a.rule) < std::tie(b.file, b.line, b.rule);
  };
  std::sort(report.violations.begin(), report.violations.end(), order);
  std::sort(report.suppressed.begin(), report.suppressed.end(), order);
  return report;
}

std::vector<SourceFile> collect_sources(const std::string& root) {
  std::vector<std::string> rels = git_ls_files(root);
  if (rels.empty()) {
    // Plain directory (e.g. a test fixture tree): recursive walk.
    const fs::path base(root);
    std::error_code ec;
    for (fs::recursive_directory_iterator it(base, ec), end;
         !ec && it != end; it.increment(ec)) {
      if (it->is_directory()) {
        const std::string name = it->path().filename().string();
        if (name.rfind("build", 0) == 0 ||
            (!name.empty() && name.front() == '.')) {
          it.disable_recursion_pending();
        }
        continue;
      }
      rels.push_back(fs::relative(it->path(), base, ec).generic_string());
    }
    std::sort(rels.begin(), rels.end());
  }
  std::vector<SourceFile> files;
  for (const std::string& rel : rels) {
    if (!is_source_path(rel)) continue;
    files.push_back({rel, read_file(fs::path(root) / rel)});
  }
  return files;
}

void write_human_report(std::ostream& out, const Report& report) {
  for (const std::string& e : report.config_errors) {
    out << "distsketch-lint: config error: " << e << "\n";
  }
  for (const Finding& f : report.violations) {
    out << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message
        << "\n";
  }
  out << "distsketch-lint: " << report.files_scanned << " files, "
      << report.violations.size() << " violation(s), "
      << report.suppressed.size() << " suppressed\n";
}

void write_json_report(std::ostream& out, const Report& report,
                       const std::string& root) {
  std::map<std::string, std::size_t> by_rule;
  for (const Finding& f : report.violations) ++by_rule[f.rule];

  out << "{\n";
  out << "  \"tool\": \"distsketch-lint\",\n";
  out << "  \"schema_version\": 1,\n";
  out << "  \"root\": \"" << json_escape(root) << "\",\n";
  out << "  \"files_scanned\": " << report.files_scanned << ",\n";
  out << "  \"ok\": " << (report.ok() ? "true" : "false") << ",\n";
  out << "  \"config_errors\": [";
  for (std::size_t i = 0; i < report.config_errors.size(); ++i) {
    out << (i == 0 ? "\n    \"" : ",\n    \"")
        << json_escape(report.config_errors[i]) << "\"";
  }
  out << (report.config_errors.empty() ? "]" : "\n  ]") << ",\n";
  out << "  \"violations_by_rule\": {";
  std::size_t i = 0;
  for (const auto& [rule, count] : by_rule) {
    out << (i++ == 0 ? "\n" : ",\n") << "    \"" << json_escape(rule)
        << "\": " << count;
  }
  out << (by_rule.empty() ? "}" : "\n  }") << ",\n";
  out << "  \"violations\": ";
  write_finding_array(out, report.violations, /*with_justification=*/false);
  out << ",\n  \"suppressed\": ";
  write_finding_array(out, report.suppressed, /*with_justification=*/true);
  out << "\n}\n";
}

}  // namespace ds::lint
