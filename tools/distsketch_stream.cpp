// Turnstile stream CLI (docs/STREAMING.md): generate synthetic update
// streams in the versioned binary format, inspect/validate stream
// files, and ingest them into a DynamicConnectivity sketch.
//
// Subcommands:
//   generate --out s.stream [--family rmat|chung-lu] [--n N]
//            [--edges M] [--delete-fraction F] [--seed S]
//            [--exponent E]
//       Stream a GeneratorStream straight through BinaryStreamWriter —
//       never materializes the sequence, so n >= 10^6 works in a few
//       hundred MB of RSS.
//   info <s.stream>
//       Print the header, then scan every record; exits nonzero (with
//       the distinguished ReadStatus) on any malformed input.
//   ingest <s.stream> [--threads T] [--batch B] [--query-interval Q]
//          [--rounds R] [--sketch-seed S] [--serial]
//       Drain the file into a sketch, print the ingest report,
//       component count and state hash.  --threads 0 uses the
//       configured pool width.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "parallel/thread_pool.h"
#include "streamio/generator_stream.h"
#include "streamio/ingestor.h"

namespace {

using namespace ds;

int usage() {
  std::cerr
      << "usage:\n"
      << "  distsketch_stream generate --out FILE [--family rmat|chung-lu]"
         " [--n N] [--edges M]\n"
      << "                    [--delete-fraction F] [--seed S]"
         " [--exponent E]\n"
      << "  distsketch_stream info FILE\n"
      << "  distsketch_stream ingest FILE [--threads T] [--batch B]"
         " [--query-interval Q]\n"
      << "                    [--rounds R] [--sketch-seed S] [--serial]\n";
  return 2;
}

/// Pull `--flag value` pairs out of argv; positional args stay in order.
struct Args {
  std::vector<std::string> positional;

  explicit Args(int argc, char** argv) {
    for (int i = 0; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--", 0) == 0) {
        if (arg == "--serial") {
          flags_.emplace_back(arg, "1");
        } else if (i + 1 < argc) {
          flags_.emplace_back(arg, argv[++i]);
        } else {
          bad_ = true;
        }
      } else {
        positional.push_back(arg);
      }
    }
  }

  [[nodiscard]] bool bad() const noexcept { return bad_; }
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const {
    for (const auto& [k, v] : flags_) {
      if (k == name) return v;
    }
    return fallback;
  }
  [[nodiscard]] std::uint64_t get_u64(const std::string& name,
                                      std::uint64_t fallback) const {
    const std::string v = get(name, "");
    return v.empty() ? fallback : std::strtoull(v.c_str(), nullptr, 10);
  }
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const {
    const std::string v = get(name, "");
    return v.empty() ? fallback : std::strtod(v.c_str(), nullptr);
  }

 private:
  std::vector<std::pair<std::string, std::string>> flags_;
  bool bad_ = false;
};

int cmd_generate(const Args& args) {
  const std::string out = args.get("--out", "");
  if (out.empty()) return usage();
  streamio::GeneratorConfig config;
  const std::string family = args.get("--family", "rmat");
  if (family == "rmat") {
    config.family = streamio::Family::kRmat;
  } else if (family == "chung-lu") {
    config.family = streamio::Family::kChungLu;
  } else {
    std::cerr << "unknown family: " << family << "\n";
    return 2;
  }
  config.n = static_cast<graph::Vertex>(args.get_u64("--n", 1u << 16));
  config.edges = args.get_u64("--edges", 4 * config.n);
  config.delete_fraction = args.get_double("--delete-fraction", 0.1);
  config.seed = args.get_u64("--seed", 1);
  config.chung_lu_exponent = args.get_double("--exponent", 2.5);

  streamio::GeneratorStream source(config);
  streamio::BinaryStreamWriter writer(out, config.n, config.seed);
  std::vector<stream::EdgeUpdate> buf(std::size_t{1} << 15);
  for (;;) {
    const std::size_t got = source.next_batch(buf);
    if (got == 0) break;
    writer.append(std::span<const stream::EdgeUpdate>(buf.data(), got));
  }
  if (!writer.finish()) {
    std::cerr << "write failed: " << out << "\n";
    return 1;
  }
  std::cout << "wrote " << out << ": n=" << config.n << " updates="
            << writer.updates_written() << " family=" << family
            << " seed=" << config.seed << "\n";
  return 0;
}

int cmd_info(const Args& args) {
  if (args.positional.size() != 1) return usage();
  streamio::BinaryStreamReader reader(args.positional[0]);
  if (streamio::is_error(reader.status())) {
    std::cerr << "invalid header: " << to_string(reader.status()) << "\n";
    return 1;
  }
  std::cout << "n=" << reader.header().n
            << " updates=" << reader.header().updates
            << " seed=" << reader.header().seed << "\n";
  std::uint64_t inserts = 0;
  std::uint64_t deletes = 0;
  std::vector<stream::EdgeUpdate> buf(std::size_t{1} << 15);
  for (;;) {
    const std::size_t got = reader.next_batch(buf);
    if (got == 0) break;
    for (std::size_t i = 0; i < got; ++i) {
      (buf[i].insert ? inserts : deletes) += 1;
    }
  }
  if (reader.status() != streamio::ReadStatus::kEnd) {
    std::cerr << "invalid stream after " << inserts + deletes
              << " updates: " << to_string(reader.status()) << "\n";
    return 1;
  }
  std::cout << "valid: " << inserts << " inserts, " << deletes
            << " deletes, " << reader.bytes_read() << " bytes\n";
  return 0;
}

int cmd_ingest(const Args& args) {
  if (args.positional.size() != 1) return usage();
  streamio::BinaryStreamReader reader(args.positional[0]);
  if (streamio::is_error(reader.status())) {
    std::cerr << "invalid header: " << to_string(reader.status()) << "\n";
    return 1;
  }

  const std::size_t threads =
      static_cast<std::size_t>(args.get_u64("--threads", 0));
  streamio::IngestOptions options;
  options.batch_updates =
      static_cast<std::size_t>(args.get_u64("--batch", std::size_t{1} << 16));
  options.query_interval = args.get_u64("--query-interval", 0);
  options.serial = args.get("--serial", "").empty() ? false : true;
  std::unique_ptr<parallel::ThreadPool> pool;
  if (!options.serial && threads > 0) {
    pool = std::make_unique<parallel::ThreadPool>(threads);
    options.pool = pool.get();
  }

  const auto rounds = static_cast<unsigned>(args.get_u64("--rounds", 2));
  stream::DynamicConnectivity state(
      reader.header().n, args.get_u64("--sketch-seed", 2020), rounds);
  const streamio::IngestReport report =
      streamio::ingest(reader, state, options);
  if (report.status != streamio::ReadStatus::kEnd) {
    std::cerr << "ingest stopped: " << to_string(report.status) << "\n";
    return 1;
  }
  std::cout << "ingested " << report.updates << " updates ("
            << report.inserts << " ins, " << report.deletes << " del) in "
            << report.wall_ms << "ms ("
            << static_cast<std::uint64_t>(report.updates_per_sec())
            << " updates/sec)\n";
  for (const streamio::QuerySnapshot& s : report.snapshots) {
    std::cout << "  snapshot @" << s.after_updates << ": components="
              << s.components << " decode=" << s.decode_ms << "ms\n";
  }
  char hash[19];
  std::snprintf(hash, sizeof(hash), "0x%016llx",
                static_cast<unsigned long long>(state.state_hash()));
  std::cout << "components=" << state.query_components()
            << " state_bits=" << state.state_bits() << " hash=" << hash
            << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  const Args args(argc - 2, argv + 2);
  if (args.bad()) return usage();
  if (cmd == "generate") return cmd_generate(args);
  if (cmd == "info") return cmd_info(args);
  if (cmd == "ingest") return cmd_ingest(args);
  return usage();
}
