// Shared serial-vs-parallel harness for the bench drivers.
//
// Each case is a closure over a ThreadPool: the harness runs it once on a
// one-thread pool (the exact serial path) and once on the global pool
// (DISTSKETCH_THREADS / hardware concurrency), times both, fingerprints
// both results to certify the determinism contract held, and accumulates
// a machine-readable record.  write_json emits BENCH_parallel.json so the
// repo has a perf trajectory CI and scripts/bench.sh can track.
#pragma once

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/obs.h"
#include "parallel/thread_pool.h"
#include "util/rng.h"

namespace ds::bench {

struct ParallelCaseRecord {
  std::string name;
  std::size_t trials = 0;
  std::size_t threads = 1;     // lanes in the parallel run
  double serial_ms = 0.0;
  double parallel_ms = 0.0;
  double speedup = 1.0;        // serial_ms / parallel_ms
  double bits_per_player = 0.0;
  bool identical = false;      // parallel fingerprint == serial fingerprint
};

/// Order-sensitive fingerprint fold (mix64 chain): equal sequences of
/// words produce equal fingerprints, any difference diverges.
[[nodiscard]] inline std::uint64_t fingerprint_fold(std::uint64_t h,
                                                    std::uint64_t v) noexcept {
  return util::mix64(h, v);
}

class ParallelHarness {
 public:
  /// run: (parallel::ThreadPool&) -> Result, the workload under test.
  /// fingerprint: (const Result&) -> uint64, a bit-sensitive digest.
  /// bits_per_player: (const Result&) -> double, for the JSON record.
  template <typename RunFn, typename FingerprintFn, typename BitsFn>
  void run_case(std::string name, std::size_t trials, RunFn&& run,
                FingerprintFn&& fingerprint, BitsFn&& bits_per_player) {
    ParallelCaseRecord record;
    record.name = std::move(name);
    record.trials = trials;

    parallel::ThreadPool serial_pool(1);
    const auto serial_start = Clock::now();
    const auto serial_result = run(serial_pool);
    record.serial_ms = ms_since(serial_start);

    parallel::ThreadPool& pool = parallel::global_pool();
    record.threads = pool.num_threads();
    const auto parallel_start = Clock::now();
    const auto parallel_result = run(pool);
    record.parallel_ms = ms_since(parallel_start);

    record.speedup = record.parallel_ms > 0.0
                         ? record.serial_ms / record.parallel_ms
                         : 1.0;
    record.identical =
        fingerprint(serial_result) == fingerprint(parallel_result);
    record.bits_per_player = bits_per_player(parallel_result);
    std::cout << "[" << record.name << "] trials=" << record.trials
              << " threads=" << record.threads << " serial="
              << record.serial_ms << "ms parallel=" << record.parallel_ms
              << "ms speedup=" << record.speedup << "x identical="
              << (record.identical ? "yes" : "NO") << "\n";
    records_.push_back(std::move(record));
  }

  /// True iff every case's parallel result matched its serial result.
  [[nodiscard]] bool all_identical() const noexcept {
    for (const ParallelCaseRecord& r : records_) {
      if (!r.identical) return false;
    }
    return true;
  }

  [[nodiscard]] const std::vector<ParallelCaseRecord>& records()
      const noexcept {
    return records_;
  }

  /// Emit the records as JSON (schema documented in docs/PARALLELISM.md).
  void write_json(const std::string& path) const {
    std::ofstream out(path);
    out << "{\n"
        << "  \"hardware_threads\": " << parallel::configured_threads()
        << ",\n"
        << "  \"pool_threads\": " << parallel::global_pool().num_threads()
        << ",\n"
        << "  \"benchmarks\": [\n";
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const ParallelCaseRecord& r = records_[i];
      out << "    {\n"
          << "      \"name\": \"" << r.name << "\",\n"
          << "      \"trials\": " << r.trials << ",\n"
          << "      \"threads\": " << r.threads << ",\n"
          << "      \"serial_ms\": " << r.serial_ms << ",\n"
          << "      \"parallel_ms\": " << r.parallel_ms << ",\n"
          << "      \"speedup\": " << r.speedup << ",\n"
          << "      \"bits_per_player\": " << r.bits_per_player << ",\n"
          << "      \"identical\": " << (r.identical ? "true" : "false")
          << "\n    }" << (i + 1 < records_.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"metrics\": ";
    obs::write_json(out, obs::snapshot(), "  ");
    out << "\n}\n";
    std::cout << "wrote " << path << "\n";
  }

 private:
  using Clock = std::chrono::steady_clock;

  [[nodiscard]] static double ms_since(Clock::time_point start) {
    return std::chrono::duration<double, std::milli>(Clock::now() - start)
        .count();
  }

  std::vector<ParallelCaseRecord> records_;
};

}  // namespace ds::bench
