// E3 — Theorem 1 (shape): one-round maximal matching on D_MM needs
// per-player sketches of ~r*log(n) ~ sqrt(n)/e^{Theta(sqrt(log n))} bits.
//
// Protocol family: BudgetedMatching (random edge reports).  Three scores
// per budget:
//   * P[maximal]  — the output is a maximal matching of G (the problem
//                   itself; needs near-total graph knowledge and so sits
//                   far above the lower bound, as it may);
//   * P[special]  — every surviving special edge was reported to the
//                   referee.  This is a NECESSARY condition for any
//                   referee to output the forced unique-unique edges
//                   (Claim 3.1), and its threshold is the clean ~r*log n
//                   phase transition the theorem predicts: a unique
//                   vertex cannot tell which of its ~r/2 incident edges
//                   is special (Lemma 3.5's blindness), so it must report
//                   essentially all of them;
//   * max bits    — realized worst-case player message.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <iostream>

#include "core/experiment.h"
#include "core/report.h"
#include "core/sweep.h"
#include "lowerbound/dmm.h"
#include "model/runner.h"
#include "graph/hopcroft_karp.h"
#include "model/edge_partition.h"
#include "parallel/thread_pool.h"
#include "protocols/budgeted.h"
#include "protocols/edge_partition_matching.h"
#include "protocols/sampled_matching.h"
#include "rs/rs_graph.h"

namespace {

using ds::lowerbound::DmmInstance;

struct Thresholds {
  std::uint64_t m = 0;
  std::uint32_t n = 0;
  std::uint64_t r = 0;
  std::size_t special = 0;  // bits for >= 0.9 P[special]
  std::size_t maximal = 0;  // bits for >= 0.9 P[maximal]
};

bool all_special_reported(const DmmInstance& inst,
                          const ds::graph::Graph& known) {
  for (const auto& mi : inst.special_surviving) {
    for (const ds::graph::Edge& e : mi) {
      if (!known.has_edge(e.u, e.v)) return false;
    }
  }
  return true;
}

Thresholds sweep_instance(std::uint64_t m, std::size_t trials,
                          std::uint64_t seed, bool print) {
  const ds::rs::RsGraph base = ds::rs::rs_graph(m);
  const ds::lowerbound::DmmParameters params =
      ds::lowerbound::dmm_parameters(base, base.t());

  Thresholds result;
  result.m = m;
  result.n = params.n;
  result.r = params.r;

  const unsigned width = ds::util::bit_width_for(params.n);
  // Ladder spans from one edge-id to beyond the densest player's full
  // report (public players see ~k*r/2 edges).
  const std::size_t cap =
      static_cast<std::size_t>(params.k * params.r) * width;
  const std::vector<std::size_t> budgets =
      ds::core::geometric_budgets(width, cap, 2.0);

  if (print) {
    std::cout << "--- D_MM with m=" << m << ": N=" << params.big_n
              << " r=" << params.r << " t=k=" << params.t << " n=" << params.n
              << " (r*log n ~ " << params.r * width << " bits) ---\n";
  }
  ds::core::Table table(
      {"budget bits", "P[special]", "P[maximal]", "max bits seen"});

  struct TrialOutcome {
    bool special = false;
    bool maximal = false;
    std::size_t max_bits = 0;
  };
  for (std::size_t budget : budgets) {
    const ds::protocols::BudgetedMatching protocol(budget);
    // Trials fan out across the global pool; each trial derives its own
    // seed counter-style, so every (budget, trial) data point is
    // independently reproducible and identical at any thread count.
    std::vector<TrialOutcome> outcomes(trials);
    ds::parallel::parallel_for(nullptr, 0, trials, [&](std::size_t trial) {
      const std::uint64_t trial_seed = ds::util::derive_seed(seed, trial);
      ds::util::Rng trial_rng(trial_seed);
      const DmmInstance inst =
          ds::lowerbound::sample_dmm(base, params.t, trial_rng);
      const ds::model::PublicCoins coins(
          ds::util::derive_seed(trial_seed, 0xC01));
      ds::model::CommStats comm;
      const auto sketches =
          ds::model::collect_sketches(inst.g, protocol, coins, comm);
      const ds::graph::Graph known =
          ds::protocols::decode_reported_graph(params.n, sketches);
      const auto matching = protocol.decode(params.n, sketches, coins);
      outcomes[trial] = {all_special_reported(inst, known),
                         ds::core::score_matching(inst.g, matching).maximal,
                         comm.max_bits};
    });
    std::size_t special = 0, maximal = 0, max_bits = 0;
    for (const TrialOutcome& outcome : outcomes) {
      special += outcome.special;
      maximal += outcome.maximal;
      max_bits = std::max(max_bits, outcome.max_bits);
    }
    const double ps = static_cast<double>(special) / static_cast<double>(trials);
    const double pm = static_cast<double>(maximal) / static_cast<double>(trials);
    if (result.special == 0 && ps >= 0.9) result.special = budget;
    if (result.maximal == 0 && pm >= 0.9) result.maximal = budget;
    table.add_row({ds::core::fmt(static_cast<std::uint64_t>(budget)),
                   ds::core::fmt(ps, 2), ds::core::fmt(pm, 2),
                   ds::core::fmt(static_cast<std::uint64_t>(max_bits))});
  }
  if (print) {
    table.print(std::cout);
    std::cout << '\n';
  }
  return result;
}

void print_experiment() {
  std::cout << "=== E3: Theorem 1 shape — budget sweep for one-round "
               "maximal matching on D_MM ===\n\n";
  std::vector<Thresholds> rows;
  for (std::uint64_t m : {8ULL, 16ULL, 32ULL, 64ULL}) {
    rows.push_back(sweep_instance(m, /*trials=*/10, /*seed=*/7, true));
  }
  ds::core::Table summary({"m", "n", "r", "sqrt(n)", "r*log n",
                           "thr[special]", "thr[maximal]",
                           "thr[special]/(r*log n)"});
  for (const Thresholds& t : rows) {
    const unsigned width = ds::util::bit_width_for(t.n);
    const double rlogn = static_cast<double>(t.r) * width;
    summary.add_row(
        {ds::core::fmt(t.m), ds::core::fmt(std::uint64_t{t.n}),
         ds::core::fmt(t.r),
         ds::core::fmt(std::sqrt(static_cast<double>(t.n)), 1),
         ds::core::fmt(rlogn, 0),
         ds::core::fmt(static_cast<std::uint64_t>(t.special)),
         t.maximal > 0 ? ds::core::fmt(static_cast<std::uint64_t>(t.maximal))
                       : std::string("> cap"),
         ds::core::fmt(static_cast<double>(t.special) / rlogn, 2)});
  }
  std::cout << "Summary (threshold = smallest budget with >= 0.9 rate):\n";
  summary.print(std::cout);
  std::cout
      << "\nPaper prediction: thr[special] tracks r*log n (last column"
         "\n~constant across m), i.e. ~sqrt(n)/e^{Theta(sqrt(log n))}:"
         "\nthe sqrt(n)-scale wall Theorem 1 proves.  thr[maximal] is"
         "\nhigher still.  Contrast with E6/E7, where polylog(n) bits"
         "\nsuffice for spanning forest and coloring.\n\n";
}

// The remark after Theorem 1: the bound extends from worst-case to
// AVERAGE communication — intuitively because a simultaneous protocol
// cannot know which players hold the hard part of the input, so it cannot
// concentrate its budget.  Probe: give a generous budget to a random
// fraction f of players (silence for the rest) and watch success track f.
void print_partial_speakers() {
  std::cout << "=== E3b: average-communication probe — random fraction of "
               "speakers ===\n";
  const ds::rs::RsGraph base = ds::rs::rs_graph(16);
  const ds::lowerbound::DmmParameters params =
      ds::lowerbound::dmm_parameters(base, base.t());
  const unsigned width = ds::util::bit_width_for(params.n);
  const std::size_t generous = 4 * params.r * width;

  ds::core::Table table({"fraction speaking", "avg bits/player",
                         "P[special known]"});
  for (double fraction : {0.25, 0.5, 0.75, 0.9, 1.0}) {
    std::size_t known = 0;
    double avg_bits = 0;
    constexpr std::size_t kTrials = 10;
    ds::util::Rng rng(71);
    for (std::size_t trial = 0; trial < kTrials; ++trial) {
      const DmmInstance inst =
          ds::lowerbound::sample_dmm(base, params.t, rng);
      const ds::model::PublicCoins coins(ds::util::mix64(73, trial));
      // Speakers chosen by public coin (per vertex).
      const ds::protocols::BudgetedMatching protocol(generous);
      ds::model::CommStats comm;
      auto sketches =
          ds::model::collect_sketches(inst.g, protocol, coins, comm);
      ds::util::Rng mute_rng(ds::util::mix64(79, trial));
      ds::model::CommStats muted_comm;
      for (ds::graph::Vertex v = 0; v < params.n; ++v) {
        if (!mute_rng.next_bernoulli(fraction)) {
          sketches[v] = ds::util::BitString();  // silenced
        }
        // The real run above is charged through ChargeSheet inside
        // collect_sketches; this recount prices the muted what-if.
        // distsketch-lint: allow(charge-site) -- counterfactual cost of a muted transcript, not a protocol charge
        muted_comm.record(sketches[v].bit_count());
      }
      const ds::graph::Graph seen =
          ds::protocols::decode_reported_graph(params.n, sketches);
      known += all_special_reported(inst, seen);
      avg_bits += muted_comm.avg_bits();
    }
    table.add_row({ds::core::fmt(fraction, 2),
                   ds::core::fmt(avg_bits / kTrials, 1),
                   ds::core::fmt(static_cast<double>(known) / kTrials, 2)});
  }
  table.print(std::cout);
  std::cout
      << "\nEven at 90% speakers, some surviving special edge has both"
         "\nendpoints silenced with decent probability (each special edge"
         "\nneeds one of exactly TWO unique vertices to speak) — success"
         "\nrequires nearly everyone to pay, so the average cost tracks"
         "\nthe worst case, as the remark asserts.\n\n";
}

// The technique's origin (§1.2): [AKLY16] proved the matching lower
// bound in the EDGE-partitioned model; the paper's hard part was lifting
// it to vertex partitioning WITH edge sharing.  Quantify the difference:
// approximation ratio (vs the exact maximum matching) at equal per-player
// budgets, same D_MM instances, both partitions.
void print_partition_comparison() {
  std::cout << "=== E3c: vertex-partition (edge sharing) vs edge-partition "
               "[AKLY16] ===\n";
  const ds::rs::RsGraph base = ds::rs::rs_graph(16);
  const ds::lowerbound::DmmParameters params =
      ds::lowerbound::dmm_parameters(base, base.t());
  const unsigned width = ds::util::bit_width_for(params.n);

  ds::core::Table table({"budget bits", "approx ratio (vertex)",
                         "approx ratio (edge-part, 8 players)"});
  for (std::size_t budget : {width * 1, width * 2, width * 4, width * 16,
                             width * 64}) {
    double vertex_ratio = 0, edge_ratio = 0;
    constexpr std::size_t kTrials = 8;
    ds::util::Rng rng(91);
    for (std::size_t trial = 0; trial < kTrials; ++trial) {
      const DmmInstance inst =
          ds::lowerbound::sample_dmm(base, params.t, rng);
      const double maximum = static_cast<double>(
          ds::graph::maximum_bipartite_matching(inst.g).size());
      const ds::model::PublicCoins coins(ds::util::mix64(95, trial));

      const ds::protocols::BudgetedMatching vertex(budget);
      const auto vr = ds::model::run_protocol(inst.g, vertex, coins);
      vertex_ratio += static_cast<double>(vr.output.size()) / maximum;

      const auto partitioned =
          ds::model::partition_edges_randomly(inst.g, 8, rng);
      const ds::protocols::EdgePartitionMatching edge(budget);
      const auto er =
          ds::model::run_edge_partitioned(partitioned, edge, coins);
      edge_ratio += static_cast<double>(er.output.size()) / maximum;
    }
    table.add_row({ds::core::fmt(static_cast<std::uint64_t>(budget)),
                   ds::core::fmt(vertex_ratio / kTrials, 2),
                   ds::core::fmt(edge_ratio / kTrials, 2)});
  }
  table.print(std::cout);
  std::cout
      << "\nAt equal per-player budgets the vertex model races to the"
         "\ngreedy plateau (~0.87; n players, each edge reported by two)"
         "\nwhile 8 edge-"
         "\npartitioned players are bandwidth-starved — the reason the"
         "\npaper could not just replay [AKLY16] and needed the public/"
         "\nunique-player information argument.\n\n";
}

void bm_budgeted_matching_run(benchmark::State& state) {
  const ds::rs::RsGraph base = ds::rs::rs_graph(16);
  ds::util::Rng rng(1);
  const DmmInstance inst =
      ds::lowerbound::sample_dmm(base, base.t(), rng);
  const ds::protocols::BudgetedMatching protocol(256);
  const ds::model::PublicCoins coins(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ds::model::run_protocol(inst.g, protocol, coins));
  }
}
BENCHMARK(bm_budgeted_matching_run);

}  // namespace

int main(int argc, char** argv) {
  print_experiment();
  print_partial_speakers();
  print_partition_comparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
