// S2: the scenario registry swept end to end (ISSUE 10 tentpole bench).
//
// One ParallelHarness case per registered scenario: its own default grid
// (trials capped for bench wall time) run once on a one-thread pool and
// once on the global pool, fingerprinted — so every registered family is
// certified deterministic across thread counts on every bench run, with
// zero per-scenario harness code.  Emits BENCH_scenario.json.
//
// Also the satellite-1 gate: sweep trials lease arenas from an
// ArenaReservoir, so from the second trial on the encode loop must
// perform zero per-vertex heap allocations.  Measured here with a global
// operator-new override: an arena'd steady-state trial must allocate
// strictly fewer times than one vertex-buffer per vertex, and strictly
// fewer than the arena-less twin.  Exits nonzero on any violation.
//
//   bench_scenario [OUT.json] [--scenario ID] [--list-scenarios]
//
// Unknown ids are rejected with a did-you-mean (exit 2).
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <new>
#include <string>
#include <vector>

#include "core/sweep.h"
#include "engine/arena.h"
#include "graph/generators.h"
#include "obs/obs.h"
#include "parallel_harness.h"
#include "protocols/trivial.h"
#include "scenario/registry.h"
#include "scenario/typed.h"
#include "util/rng.h"

// ---------------------------------------------------------------------------
// Global allocation counter (same idiom as bench_engine): counts every
// operator-new in the process, so measured regions snapshot before/after.

namespace {
std::atomic<std::size_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

std::uint64_t fingerprint_sweep(const ds::core::SweepResult& result) {
  std::uint64_t h = result.threshold_budget.value_or(0);
  for (const ds::core::SweepPoint& p : result.points) {
    h = ds::bench::fingerprint_fold(h, p.budget_bits);
    h = ds::bench::fingerprint_fold(h, p.successes);
    h = ds::bench::fingerprint_fold(h, p.trials);
    h = ds::bench::fingerprint_fold(h, p.max_bits_seen);
  }
  return h;
}

void case_scenario_sweep(ds::bench::ParallelHarness& harness,
                         const ds::scenario::Scenario& s) {
  // The scenario's own grid, trials capped so the full registry stays
  // bench-sized; the serial/parallel twin run is the determinism gate.
  const ds::scenario::Grid& grid = s.default_grid();
  const std::size_t trials = std::min<std::size_t>(grid.trials, 8);
  harness.run_case(
      "sweep_" + std::string(s.id()), trials,
      [&](ds::parallel::ThreadPool& pool) {
        return ds::core::sweep_budgets(s, grid.budgets, trials, grid.seed,
                                       grid.target_rate, &pool);
      },
      fingerprint_sweep,
      [](const ds::core::SweepResult& result) {
        return result.points.empty()
                   ? 0.0
                   : static_cast<double>(result.points.back().max_bits_seen);
      });
}

/// Allocations across `runs` steady-state trials (after a warm-up trial
/// that sizes the arena), on a one-thread pool so the count is exact.
std::size_t measure_trial_allocs(const ds::scenario::Scenario& s,
                                 std::size_t budget, std::size_t runs,
                                 ds::engine::SketchArena* arena) {
  ds::parallel::ThreadPool pool(1);
  (void)s.run_trial(budget, ds::util::derive_seed(97, 0), &pool, arena);
  const std::size_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (std::size_t i = 1; i <= runs; ++i) {
    (void)s.run_trial(budget, ds::util::derive_seed(97, i), &pool, arena);
  }
  return g_alloc_count.load(std::memory_order_relaxed) - before;
}

/// Satellite-1 gate, part 1: zero steady-state per-vertex allocations on
/// the encode path.  An encode-only probe scenario (fixed instance,
/// trivial adjacency-bitmap protocol, constant-alloc decode/judge)
/// isolates the buffers the arena pools: arena'd trials must allocate a
/// small constant, while the arena-less twin pays >= one buffer per
/// vertex per trial.
bool check_encode_path_allocs() {
  constexpr ds::graph::Vertex kN = 256;
  ds::util::Rng rng(4242);
  const ds::graph::Graph fixed = ds::graph::gnp(kN, 0.05, rng);
  const ds::scenario::InlineScenario<ds::model::MatchingOutput> probe(
      "alloc-probe", "encode-only arena allocation probe", kN,
      ds::scenario::Grid{{kN}, 1, 1, 0.0},
      [&fixed](std::uint64_t) {
        return ds::scenario::Instance{fixed, nullptr};
      },
      [](std::size_t) {
        return std::make_unique<ds::protocols::TrivialMaximalMatching>();
      },
      [](const ds::scenario::Instance&, const ds::model::MatchingOutput&) {
        return true;
      });
  constexpr std::size_t kRuns = 32;

  const std::size_t unpooled = measure_trial_allocs(probe, kN, kRuns, nullptr);
  ds::engine::SketchArena arena;
  const std::size_t pooled = measure_trial_allocs(probe, kN, kRuns, &arena);

  std::cout << "[arena_encode_path] n=" << kN << " runs=" << kRuns
            << " allocs/trial pooled=" << (pooled / kRuns)
            << " unpooled=" << (unpooled / kRuns) << "\n";
  if (unpooled / kRuns < kN) {
    std::cerr << "FAIL: the arena-less probe should allocate >= one encode"
                 " buffer per vertex (" << (unpooled / kRuns) << " < " << kN
              << ") — the probe no longer isolates the encode path\n";
    return false;
  }
  if (pooled / kRuns >= kN) {
    std::cerr << "FAIL: arena'd steady-state trial still allocates per"
                 " vertex (" << (pooled / kRuns) << " >= " << kN << ")\n";
    return false;
  }
  return true;
}

/// Satellite-1 gate, part 2: on a real registered scenario the arena
/// strips at least the per-vertex encode buffer from every steady-state
/// sweep trial (decode/judge allocations are protocol-specific and not
/// pooled, so the gate is on the savings, not the absolute count).
bool check_arena_steady_state() {
  const ds::scenario::Scenario* s = ds::scenario::find("easy-cc");
  if (s == nullptr) {
    std::cerr << "FAIL: easy-cc scenario not registered\n";
    return false;
  }
  const std::size_t budget = s->default_grid().budgets.back();
  constexpr std::size_t kRuns = 32;

  const std::size_t unpooled =
      measure_trial_allocs(*s, budget, kRuns, nullptr);
  ds::engine::SketchArena arena;
  const std::size_t pooled = measure_trial_allocs(*s, budget, kRuns, &arena);

  const std::size_t n = s->num_vertices();
  std::cout << "[arena_steady_state] scenario=easy-cc n=" << n
            << " budget=" << budget << " runs=" << kRuns
            << " allocs/trial pooled=" << (pooled / kRuns)
            << " unpooled=" << (unpooled / kRuns) << "\n";
  if (pooled + kRuns * n > unpooled) {
    std::cerr << "FAIL: arena'd sweep trials save fewer than one encode"
                 " buffer per vertex (" << pooled << " + " << kRuns * n
              << " > " << unpooled << ")\n";
    return false;
  }
  return true;
}

void print_scenarios() {
  std::cout << "registered scenarios:\n";
  for (const ds::scenario::Scenario* s : ds::scenario::all()) {
    std::cout << "  " << s->id() << "  " << s->description() << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_scenario.json";
  std::string only;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-scenarios") {
      print_scenarios();
      return 0;
    }
    if (arg == "--scenario") {
      if (i + 1 >= argc) {
        std::cerr << "bench_scenario: --scenario needs an id\n";
        return 2;
      }
      only = argv[++i];
    } else {
      out_path = arg;
    }
  }
  if (!only.empty() && ds::scenario::find(only) == nullptr) {
    std::cerr << "bench_scenario: unknown scenario '" << only << "'";
    if (const auto near = ds::scenario::suggest(only)) {
      std::cerr << " (did you mean '" << *near << "'?)";
    }
    std::cerr << "\n";
    print_scenarios();
    return 2;
  }

  ds::obs::set_metrics_enabled(true);
  std::cout << "=== S2: scenario registry sweeps ===\n"
            << "pool threads: "
            << ds::parallel::global_pool().num_threads() << "\n\n";

  ds::bench::ParallelHarness harness;
  for (const ds::scenario::Scenario* s : ds::scenario::all()) {
    if (!only.empty() && s->id() != only) continue;
    case_scenario_sweep(harness, *s);
  }

  const bool arena_ok =
      check_encode_path_allocs() && check_arena_steady_state();
  harness.write_json(out_path);
  if (!harness.all_identical()) {
    std::cerr << "FAIL: a parallel sweep diverged from its serial twin\n";
    return 1;
  }
  return arena_ok ? 0 : 1;
}
