// E6 — the upper-bound contrast (Section 1): spanning forest has
// O(log^3 n)-bit sketches [AGM'12], including on the two-cluster-plus-
// bridge instance from the introduction, where the footnote-1 protocol
// finds the bridge with O(log n) bits.
#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>

#include "core/report.h"
#include "graph/connectivity.h"
#include "graph/generators.h"
#include "model/runner.h"
#include "protocols/bridge_finding.h"
#include "protocols/spanning_forest.h"

namespace {

void print_agm_scaling() {
  std::cout << "=== E6a: AGM spanning-forest sketches — bits/player vs n "
               "===\n";
  ds::core::Table table({"n", "bits/player", "bits/(log2 n)^3", "bits/n",
                         "success"});
  for (ds::graph::Vertex n : {64u, 128u, 256u, 512u, 1024u}) {
    ds::util::Rng rng(n);
    std::size_t bits = 0, successes = 0;
    constexpr std::size_t kTrials = 5;
    for (std::size_t trial = 0; trial < kTrials; ++trial) {
      const ds::graph::Graph g =
          ds::graph::gnp(n, 8.0 / static_cast<double>(n), rng);
      const ds::model::PublicCoins coins(1000 + n + trial);
      const auto run = ds::model::run_protocol(
          g, ds::protocols::AgmSpanningForest{}, coins);
      bits = run.comm.max_bits;
      successes += ds::graph::is_spanning_forest(g, run.output);
    }
    const double log_n = std::log2(static_cast<double>(n));
    table.add_row(
        {ds::core::fmt(std::uint64_t{n}),
         ds::core::fmt(static_cast<std::uint64_t>(bits)),
         ds::core::fmt(static_cast<double>(bits) / (log_n * log_n * log_n),
                       1),
         ds::core::fmt(static_cast<double>(bits) / n, 1),
         ds::core::fmt(static_cast<std::uint64_t>(successes)) + "/" +
             ds::core::fmt(static_cast<std::uint64_t>(kTrials))});
  }
  table.print(std::cout);
  std::cout << "\nPaper prediction: bits/(log n)^3 ~ constant (the AGM "
               "O(log^3 n) bound),\nwhile bits/n vanishes — the contrast "
               "with E3's sqrt(n) wall for matching.\n\n";
}

void print_bridge() {
  std::cout << "=== E6b: the footnote-1 bridge instance ===\n";
  ds::core::Table table({"n", "samples/vertex", "bits/player", "P[found]"});
  for (ds::graph::Vertex n : {40u, 100u, 400u, 1000u}) {
    ds::util::Rng rng(n);
    std::size_t found = 0, bits = 0;
    constexpr std::size_t kTrials = 20;
    for (std::size_t trial = 0; trial < kTrials; ++trial) {
      // Dense clusters (the footnote's regime: cluster degree >> samples,
      // so the bridge itself is rarely sampled and the partition comes
      // from the cluster samples alone).
      const auto [g, bridge] =
          ds::graph::two_clusters_with_bridge(n, 0.3, rng);
      const ds::model::PublicCoins coins(2000 + n + trial);
      const auto run = ds::model::run_protocol(
          g, ds::protocols::BridgeFinding{10}, coins);
      found += run.output.normalized() == bridge.normalized();
      bits = run.comm.max_bits;
    }
    table.add_row({ds::core::fmt(std::uint64_t{n}), "10",
                   ds::core::fmt(static_cast<std::uint64_t>(bits)),
                   ds::core::fmt(static_cast<double>(found) / kTrials, 2)});
  }
  table.print(std::cout);
  std::cout << "\nPaper prediction: O(log n)-size sketches find the bridge "
               "w.h.p. —\nthe introduction's evidence that edge-sharing "
               "between players defeats\nthe naive Omega(n) intuition.\n\n";
}

void bm_agm_encode(benchmark::State& state) {
  const ds::graph::Vertex n = static_cast<ds::graph::Vertex>(state.range(0));
  ds::util::Rng rng(1);
  const ds::graph::Graph g = ds::graph::gnp(n, 8.0 / n, rng);
  const ds::model::PublicCoins coins(2);
  const ds::protocols::AgmSpanningForest protocol;
  for (auto _ : state) {
    ds::model::CommStats comm;
    benchmark::DoNotOptimize(
        ds::model::collect_sketches(g, protocol, coins, comm));
  }
}
BENCHMARK(bm_agm_encode)->Arg(64)->Arg(256);

void bm_agm_full(benchmark::State& state) {
  ds::util::Rng rng(3);
  const ds::graph::Graph g = ds::graph::gnp(128, 0.06, rng);
  const ds::model::PublicCoins coins(4);
  const ds::protocols::AgmSpanningForest protocol;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ds::model::run_protocol(g, protocol, coins));
  }
}
BENCHMARK(bm_agm_full);

}  // namespace

int main(int argc, char** argv) {
  print_agm_scaling();
  print_bridge();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
