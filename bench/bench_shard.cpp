// W2: sharded-referee throughput — how fast can the referee side absorb
// a round once clients pipeline their sketches as pre-encoded corked
// batches?
//
// Per case the driver measures:
//   - a full blocking single-referee TCP session (the BENCH_wire
//     baseline, same definition: n players / session wall time), and
//   - the referee absorb rate: clients pre-encode their whole round
//     batch OUTSIDE the clock, then the clock covers send -> collect ->
//     combine only.  Absorb is measured for the blocking referee and
//     for the epoll-sharded referee at 1, 2 and 4 shards.
//
// Every absorb row is certified against model::collect_sketches: the
// combined payloads must match the simulation BitString for BitString
// and the uplink payload bits must equal the simulated CommStats total.
// Emits BENCH_shard.json and exits nonzero if any row broke that
// contract (speed never fails the run; broken accounting always does).
//
// Note on scaling: this container exposes a single hardware thread, so
// the shard rows demonstrate that sharding adds no overhead (flat
// players/sec 1 -> 4 shards) rather than a parallel speedup; the
// per-shard event loops only run concurrently on multi-core referees.
#include <sys/socket.h>

#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "graph/generators.h"
#include "model/runner.h"
#include "obs/obs.h"
#include "protocols/spanning_forest.h"
#include "protocols/zoo.h"
#include "service/player_client.h"
#include "service/referee_service.h"
#include "service/shard.h"
#include "wire/tcp.h"

namespace {

using namespace std::chrono_literals;
using namespace ds;

using Clock = std::chrono::steady_clock;

// Best-of repetition counts: one hardware thread means every row rides
// the scheduler, so each measurement keeps its fastest rep.
constexpr int kSessionReps = 3;
constexpr int kAbsorbReps = 9;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

struct ShardRow {
  std::string name;
  graph::Vertex n = 0;
  std::size_t clients = 0;
  std::size_t shards = 0;     // 0 = blocking referee
  std::string mode;           // "session" | "absorb"
  double ms = 0.0;
  double players_per_sec = 0.0;
  double speedup_vs_baseline = 0.0;  // vs the blocking session row
  std::size_t payload_bits = 0;
  std::size_t framing_bits = 0;
  bool payload_matches_sim = false;
};

/// The per-client corked batch for round 0, encoded once outside the
/// clock so absorb rows measure the referee, not the sketch encoder.
template <typename Output>
std::vector<std::vector<std::uint8_t>> pre_encode_batches(
    const graph::Graph& g, const model::SketchingProtocol<Output>& protocol,
    const model::PublicCoins& coins, std::size_t clients) {
  const std::uint32_t proto = wire::protocol_id(protocol.name());
  std::vector<std::vector<std::uint8_t>> batches(clients);
  for (std::size_t i = 0; i < clients; ++i) {
    for (const graph::Vertex v :
         service::shard_vertices(g.num_vertices(), clients, i)) {
      const model::VertexView view{g.num_vertices(), v, g.neighbors(v),
                                   &coins};
      util::BitWriter w;
      protocol.encode(view, w);
      (void)service::append_sketch_frame(batches[i], proto, v, 0,
                                         util::BitString(w));
    }
  }
  return batches;
}

bool same_payloads(std::span<const util::BitString> got,
                   std::span<const util::BitString> want) {
  if (got.size() != want.size()) return false;
  for (std::size_t v = 0; v < want.size(); ++v) {
    if (got[v].bit_count() != want[v].bit_count()) return false;
    if (got[v].words() != want[v].words()) return false;
  }
  return true;
}

/// Writer threads shovel the pre-encoded batches while the referee-side
/// `collect` callback runs; returns wall ms for send -> collect.
template <typename Collect>
double timed_absorb(const std::vector<std::vector<std::uint8_t>>& batches,
                    std::span<const std::unique_ptr<wire::Link>> players,
                    Collect&& collect) {
  const auto start = Clock::now();
  std::vector<std::thread> writers;
  writers.reserve(players.size());
  for (std::size_t i = 0; i < players.size(); ++i) {
    writers.emplace_back([&, i] { (void)players[i]->send(batches[i]); });
  }
  collect();
  for (std::thread& t : writers) t.join();
  return ms_since(start);
}

template <typename Output>
void run_case(const std::string& name, graph::Vertex n, double p,
              std::size_t clients,
              const model::SketchingProtocol<Output>& protocol,
              std::vector<ShardRow>& rows) {
  util::Rng rng(n);
  const graph::Graph g = graph::gnp(n, p, rng);
  const model::PublicCoins coins(2020);
  const std::uint32_t proto = wire::protocol_id(protocol.name());

  model::CommStats sim_comm;
  const std::vector<util::BitString> sim_sketches =
      model::collect_sketches(g, protocol, coins, sim_comm);
  const auto simulated = model::run_protocol(g, protocol, coins);

  // Row 1 — baseline: the full blocking single-referee TCP session,
  // measured exactly as BENCH_wire measures it (encode inside the
  // clock).  Every other row's speedup is relative to this.
  ShardRow baseline;
  baseline.name = name + "/blocking-session";
  baseline.n = n;
  baseline.clients = clients;
  baseline.shards = 0;
  baseline.mode = "session";
  baseline.ms = 1e300;
  for (int rep = 0; rep < kSessionReps; ++rep) {
    wire::TcpListener listener;
    std::vector<std::unique_ptr<wire::Link>> player_links;
    std::thread connector([&] {
      for (std::size_t i = 0; i < clients; ++i) {
        player_links.push_back(
            wire::tcp_connect("127.0.0.1", listener.port(), 10000ms));
      }
    });
    std::vector<std::unique_ptr<wire::Link>> referee_links;
    for (std::size_t i = 0; i < clients; ++i) {
      referee_links.push_back(listener.accept(10000ms));
    }
    connector.join();

    const auto start = Clock::now();
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (std::size_t i = 0; i < clients; ++i) {
      threads.emplace_back([&, i] {
        (void)service::play_protocol(
            *player_links[i], g,
            service::shard_vertices(g.num_vertices(), clients, i), protocol,
            coins, 30000ms);
      });
    }
    const service::ServeResult<Output> served = service::serve_protocol(
        referee_links, protocol, g.num_vertices(), coins, 30000ms);
    for (std::thread& t : threads) t.join();
    baseline.ms = std::min(baseline.ms, ms_since(start));
    baseline.payload_bits = served.uplink.payload_bits;
    baseline.framing_bits = served.uplink.framing_bits;
    baseline.payload_matches_sim =
        served.uplink.payload_bits == sim_comm.total_bits &&
        served.output == simulated.output;
  }
  baseline.players_per_sec =
      baseline.ms > 0.0 ? n * 1000.0 / baseline.ms : 0.0;
  baseline.speedup_vs_baseline = 1.0;
  rows.push_back(baseline);

  const std::vector<std::vector<std::uint8_t>> batches =
      pre_encode_batches(g, protocol, coins, clients);

  // Row 2 — blocking absorb: same referee code path as the baseline but
  // fed the pre-encoded batches, isolating the collect loop's cost.
  {
    ShardRow row;
    row.name = name + "/blocking-absorb";
    row.n = n;
    row.clients = clients;
    row.shards = 0;
    row.mode = "absorb";
    row.ms = 1e300;
    for (int rep = 0; rep < kAbsorbReps; ++rep) {
      std::vector<std::unique_ptr<wire::Link>> referee_links;
      std::vector<std::unique_ptr<wire::Link>> player_links;
      for (std::size_t i = 0; i < clients; ++i) {
        int fds[2] = {-1, -1};
        if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) continue;
        referee_links.push_back(wire::tcp_adopt_fd(fds[0]));
        player_links.push_back(wire::tcp_adopt_fd(fds[1]));
      }
      service::CollectedRound round;
      const double ms =
          timed_absorb(batches, player_links, [&] {
            round = service::collect_sketch_round(
                referee_links, g.num_vertices(), proto, 0, 10000ms);
          });
      row.ms = std::min(row.ms, ms);
      row.payload_bits = round.wire.payload_bits;
      row.framing_bits = round.wire.framing_bits;
      row.payload_matches_sim =
          same_payloads(round.sketches, sim_sketches) &&
          round.wire.payload_bits == sim_comm.total_bits;
    }
    row.players_per_sec = row.ms > 0.0 ? n * 1000.0 / row.ms : 0.0;
    row.speedup_vs_baseline = row.players_per_sec / baseline.players_per_sec;
    rows.push_back(row);
  }

  // Rows 3..5 — epoll-sharded absorb at 1, 2 and 4 shards.
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                   std::size_t{4}}) {
    ShardRow row;
    row.name = name + "/shards=" + std::to_string(shards);
    row.n = n;
    row.clients = clients;
    row.shards = shards;
    row.mode = "absorb";
    row.ms = 1e300;
    for (int rep = 0; rep < kAbsorbReps; ++rep) {
      std::vector<std::unique_ptr<service::RefereeShard>> shard_set;
      for (std::size_t s = 0; s < shards; ++s) {
        shard_set.push_back(
            std::make_unique<service::RefereeShard>(s, shards));
      }
      std::vector<std::unique_ptr<wire::Link>> player_links;
      for (std::size_t i = 0; i < clients; ++i) {
        int fds[2] = {-1, -1};
        if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) continue;
        (void)shard_set[i % shards]->adopt_fd(fds[0]);
        player_links.push_back(wire::tcp_adopt_fd(fds[1]));
      }
      service::ShardedWireSource source(shard_set, g.num_vertices(), proto,
                                        10000ms);
      std::vector<util::BitString> collected;
      const double ms = timed_absorb(
          batches, player_links, [&] { collected = source.collect(0, {}); });
      row.ms = std::min(row.ms, ms);
      row.payload_bits = source.uplink().payload_bits;
      row.framing_bits = source.uplink().framing_bits;
      row.payload_matches_sim =
          same_payloads(collected, sim_sketches) &&
          source.uplink().payload_bits == sim_comm.total_bits &&
          source.uplink().rejected_frames == 0;
    }
    row.players_per_sec = row.ms > 0.0 ? n * 1000.0 / row.ms : 0.0;
    row.speedup_vs_baseline = row.players_per_sec / baseline.players_per_sec;
    rows.push_back(row);
  }

  for (std::size_t i = rows.size() - 5; i < rows.size(); ++i) {
    const ShardRow& r = rows[i];
    std::cout << "[" << r.name << "] n=" << r.n << " clients=" << r.clients
              << " " << r.mode << "=" << r.ms << "ms players/sec="
              << r.players_per_sec << " speedup=" << r.speedup_vs_baseline
              << "x wire==sim=" << (r.payload_matches_sim ? "yes" : "NO")
              << "\n";
  }
}

void write_json(const std::string& path, const std::vector<ShardRow>& rows) {
  std::ofstream out(path);
  out << "{\n  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ShardRow& r = rows[i];
    out << "    {\n"
        << "      \"name\": \"" << r.name << "\",\n"
        << "      \"n\": " << r.n << ",\n"
        << "      \"clients\": " << r.clients << ",\n"
        << "      \"shards\": " << r.shards << ",\n"
        << "      \"mode\": \"" << r.mode << "\",\n"
        << "      \"ms\": " << r.ms << ",\n"
        << "      \"players_per_sec\": " << r.players_per_sec << ",\n"
        << "      \"speedup_vs_baseline\": " << r.speedup_vs_baseline
        << ",\n"
        << "      \"payload_bits\": " << r.payload_bits << ",\n"
        << "      \"framing_bits\": " << r.framing_bits << ",\n"
        << "      \"payload_matches_sim\": "
        << (r.payload_matches_sim ? "true" : "false") << "\n    }"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"metrics\": ";
  ds::obs::write_json(out, ds::obs::snapshot(), "  ");
  out << "\n}\n";
  std::cout << "wrote " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_shard.json";
  ds::obs::set_metrics_enabled(true);

  // 8 clients per case: with 4 shards that is two connections per shard
  // loop, enough for a shard to drain one socket while its other
  // client's writer refills the first — one connection per shard would
  // instead measure single-core sleep/wake churn, not the referee.
  std::vector<ShardRow> rows;
  run_case("spanning_forest/n=128", 128, 0.10, 8,
           ds::protocols::AgmSpanningForest{}, rows);
  run_case("spanning_forest/n=512", 512, 0.03, 8,
           ds::protocols::AgmSpanningForest{}, rows);
  run_case("connectivity/n=256", 256, 0.05, 8,
           ds::protocols::AgmConnectivity{}, rows);

  write_json(out_path, rows);

  for (const ShardRow& r : rows) {
    if (!r.payload_matches_sim) {
      std::cerr << "FAIL: " << r.name
                << " sharded accounting diverged from simulation\n";
      return 1;
    }
  }
  return 0;
}
