// E5 — Theorem 2 via the Section 4 reduction: an MIS of H = (two copies
// of G) + (public biclique) decodes, through Lemma 4.1, into exactly the
// surviving special matching of G ~ D_MM, at 2x the per-player cost.
//
// We measure: (a) the reduction's exactness over many samples and MIS
// algorithms, (b) the biclique guarantee (one side's public copies always
// absent), and (c) the cost factor when the MIS is produced by an actual
// sketching protocol (trivial MIS at Theta(2n) bits vs Theta(n) for the
// matching side — the factor-2 of the proof).
#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>

#include "core/report.h"
#include "graph/independent_set.h"
#include "lowerbound/mis_reduction.h"
#include "model/runner.h"
#include "protocols/trivial.h"
#include "rs/rs_graph.h"

namespace {

using namespace ds::lowerbound;

void print_experiment() {
  std::cout << "=== E5: the maximal-matching <- MIS reduction "
               "(Section 4 / Lemma 4.1) ===\n";
  ds::core::Table table({"m", "n(G)", "n(H)", "trials", "side empty",
                         "L4.1 equiv", "decoded exact", "mis algo"});

  for (std::uint64_t m : {5ULL, 8ULL, 12ULL}) {
    const ds::rs::RsGraph base = ds::rs::rs_graph(m);
    ds::util::Rng rng(ds::util::derive_seed(31, m));
    std::size_t trials = 0, side_empty = 0, equiv = 0, exact = 0;
    std::uint32_t n_g = 0;
    constexpr std::size_t kTrials = 8;
    for (std::size_t trial = 0; trial < kTrials; ++trial) {
      const DmmInstance inst = sample_dmm(base, base.t(), rng);
      n_g = inst.params.n;
      const ds::graph::Graph h = build_reduction_graph(inst);
      const auto mis = ds::graph::greedy_mis_random(h, rng);
      const Lemma41Audit audit = audit_lemma41(inst, mis);
      ++trials;
      side_empty += audit.some_side_empty;
      equiv += audit.left_equivalence && audit.right_equivalence;
      exact += audit.decoded_exactly;
    }
    table.add_row({ds::core::fmt(m), ds::core::fmt(std::uint64_t{n_g}),
                   ds::core::fmt(std::uint64_t{2 * n_g}),
                   ds::core::fmt(static_cast<std::uint64_t>(trials)),
                   ds::core::fmt(static_cast<std::uint64_t>(side_empty)),
                   ds::core::fmt(static_cast<std::uint64_t>(equiv)),
                   ds::core::fmt(static_cast<std::uint64_t>(exact)),
                   "greedy-random"});
  }
  table.print(std::cout);

  // Cost factor: run the trivial MIS sketching protocol on H and the
  // trivial matching protocol on G; the reduction's claim is cost(H) =
  // 2 * cost(G) per original player (each simulates both copies).
  {
    const ds::rs::RsGraph base = ds::rs::rs_graph(6);
    ds::util::Rng rng(77);
    const DmmInstance inst = sample_dmm(base, base.t(), rng);
    const ds::graph::Graph h = build_reduction_graph(inst);
    const ds::model::PublicCoins coins(5);
    const auto run_g = ds::model::run_protocol(
        inst.g, ds::protocols::TrivialMaximalMatching{}, coins);
    const auto run_h =
        ds::model::run_protocol(h, ds::protocols::TrivialMis{}, coins);
    // An original player simulates two H-vertices: 2 * (2n) bits... the
    // trivial protocol costs |V(H)| = 2n bits per H-vertex, 4n per
    // original player vs n on G: the reduction overhead for THIS protocol
    // is 4x total (2 copies x 2x larger vertex set), and exactly 2x in
    // the per-simulated-player measure the paper uses.
    std::cout << "\nCost accounting (trivial protocols): matching on G: "
              << run_g.comm.max_bits << " bits/player; MIS on H: "
              << run_h.comm.max_bits << " bits/player; per original player "
              << 2 * run_h.comm.max_bits << " bits ("
              << ds::core::fmt(static_cast<double>(2 * run_h.comm.max_bits) /
                                   static_cast<double>(run_g.comm.max_bits),
                               1)
              << "x the direct matching cost).\n";

    // End-to-end: decode the MIS protocol's output through the reduction.
    const Lemma41Audit audit = audit_lemma41(inst, run_h.output);
    std::cout << "End-to-end trivial-MIS -> reduction decode exact: "
              << ds::core::fmt_bool(audit.decoded_exactly) << "\n\n";
  }
  std::cout << "Paper prediction: every row has side-empty = equiv = exact"
               "\n= trials (the reduction never fails on a correct MIS), so"
               "\nany b-bit MIS protocol yields a 2b-bit matching protocol"
               "\nand Theorem 1's bound transfers to MIS.\n\n";
}

void bm_build_reduction(benchmark::State& state) {
  const ds::rs::RsGraph base = ds::rs::rs_graph(8);
  ds::util::Rng rng(1);
  const DmmInstance inst = sample_dmm(base, base.t(), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_reduction_graph(inst));
  }
}
BENCHMARK(bm_build_reduction);

void bm_decode_from_mis(benchmark::State& state) {
  const ds::rs::RsGraph base = ds::rs::rs_graph(8);
  ds::util::Rng rng(2);
  const DmmInstance inst = sample_dmm(base, base.t(), rng);
  const ds::graph::Graph h = build_reduction_graph(inst);
  const auto mis = ds::graph::greedy_mis(h);
  for (auto _ : state) {
    benchmark::DoNotOptimize(decode_matching_from_mis(inst, mis));
  }
}
BENCHMARK(bm_decode_from_mis);

}  // namespace

int main(int argc, char** argv) {
  print_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
