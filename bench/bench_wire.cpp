// W1: wire-session overhead — the same protocol run three ways (simulated
// in-process, loopback wire session, TCP wire session on 127.0.0.1) so
// the cost of crossing a real message boundary is a number, not a guess.
//
// Per case the driver records wall time and throughput (players/sec) for
// each mode, the payload/framing/transport byte split of the wire runs,
// and a "payload_matches_sim" flag certifying the accounting contract
// (wire payload bits == simulated CommStats, bit for bit).  Emits
// BENCH_wire.json (written by scripts/bench.sh next to
// BENCH_parallel.json) and exits nonzero if any run broke the contract.
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "graph/generators.h"
#include "model/runner.h"
#include "obs/obs.h"
#include "protocols/spanning_forest.h"
#include "protocols/zoo.h"
#include "service/player_client.h"
#include "service/referee_service.h"
#include "wire/loopback.h"
#include "wire/tcp.h"

namespace {

using namespace std::chrono_literals;
using namespace ds;

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

struct WireCaseRecord {
  std::string name;
  graph::Vertex n = 0;
  std::size_t clients = 0;
  double sim_ms = 0.0;
  double loopback_ms = 0.0;
  double tcp_ms = 0.0;
  double loopback_players_per_sec = 0.0;
  double tcp_players_per_sec = 0.0;
  std::size_t payload_bits = 0;    // == simulated CommStats total
  std::size_t framing_bits = 0;    // headers + padding + CRC (uplink)
  std::size_t transport_bytes = 0; // TCP bytes on the wire incl. prefixes
  bool payload_matches_sim = false;
};

/// One wire session over already-connected links; returns uplink stats
/// and whether output + accounting matched the simulated run.
template <typename Output>
service::ServeResult<Output> run_session(
    std::span<const std::unique_ptr<wire::Link>> referee_links,
    std::span<const std::unique_ptr<wire::Link>> player_links,
    const graph::Graph& g, const model::SketchingProtocol<Output>& protocol,
    const model::PublicCoins& coins) {
  std::vector<std::thread> clients;
  clients.reserve(player_links.size());
  for (std::size_t i = 0; i < player_links.size(); ++i) {
    clients.emplace_back([&, i] {
      (void)service::play_protocol(
          *player_links[i], g,
          service::shard_vertices(g.num_vertices(), player_links.size(), i),
          protocol, coins, 30000ms);
    });
  }
  service::ServeResult<Output> served = service::serve_protocol(
      referee_links, protocol, g.num_vertices(), coins, 30000ms);
  for (std::thread& t : clients) t.join();
  return served;
}

template <typename Output>
WireCaseRecord run_case(const std::string& name, graph::Vertex n, double p,
                        std::size_t clients,
                        const model::SketchingProtocol<Output>& protocol) {
  WireCaseRecord record;
  record.name = name;
  record.n = n;
  record.clients = clients;

  util::Rng rng(n);
  const graph::Graph g = graph::gnp(n, p, rng);
  const model::PublicCoins coins(2020);

  const auto sim_start = Clock::now();
  const auto simulated = model::run_protocol(g, protocol, coins);
  record.sim_ms = ms_since(sim_start);

  bool outputs_match = true;

  {  // Loopback session.
    std::vector<std::unique_ptr<wire::Link>> referee_links;
    std::vector<std::unique_ptr<wire::Link>> player_links;
    for (std::size_t i = 0; i < clients; ++i) {
      wire::LoopbackPair pair = wire::make_loopback_pair();
      referee_links.push_back(std::move(pair.referee_side));
      player_links.push_back(std::move(pair.player_side));
    }
    const auto start = Clock::now();
    const auto served =
        run_session(referee_links, player_links, g, protocol, coins);
    record.loopback_ms = ms_since(start);
    record.loopback_players_per_sec =
        record.loopback_ms > 0.0 ? n * 1000.0 / record.loopback_ms : 0.0;
    record.payload_bits = served.uplink.payload_bits;
    record.framing_bits = served.uplink.framing_bits;
    record.payload_matches_sim =
        served.uplink.payload_bits == simulated.comm.total_bits &&
        served.comm.max_bits == simulated.comm.max_bits;
    outputs_match &= served.output == simulated.output;
  }

  {  // TCP session on 127.0.0.1.
    wire::TcpListener listener;
    std::vector<std::unique_ptr<wire::Link>> player_links;
    std::thread connector([&] {
      for (std::size_t i = 0; i < clients; ++i) {
        player_links.push_back(
            wire::tcp_connect("127.0.0.1", listener.port(), 10000ms));
      }
    });
    std::vector<std::unique_ptr<wire::Link>> referee_links;
    for (std::size_t i = 0; i < clients; ++i) {
      referee_links.push_back(listener.accept(10000ms));
    }
    connector.join();

    const auto start = Clock::now();
    const auto served =
        run_session(referee_links, player_links, g, protocol, coins);
    record.tcp_ms = ms_since(start);
    record.tcp_players_per_sec =
        record.tcp_ms > 0.0 ? n * 1000.0 / record.tcp_ms : 0.0;
    for (const std::unique_ptr<wire::Link>& link : referee_links) {
      record.transport_bytes += link->bytes_received() + link->bytes_sent();
    }
    record.payload_matches_sim =
        record.payload_matches_sim &&
        served.uplink.payload_bits == simulated.comm.total_bits;
    outputs_match &= served.output == simulated.output;
  }

  record.payload_matches_sim = record.payload_matches_sim && outputs_match;
  std::cout << "[" << record.name << "] n=" << record.n
            << " clients=" << record.clients << " sim=" << record.sim_ms
            << "ms loopback=" << record.loopback_ms
            << "ms tcp=" << record.tcp_ms << "ms payload="
            << record.payload_bits << "b framing=" << record.framing_bits
            << "b wire==sim="
            << (record.payload_matches_sim ? "yes" : "NO") << "\n";
  return record;
}

void write_json(const std::string& path,
                const std::vector<WireCaseRecord>& records) {
  std::ofstream out(path);
  out << "{\n  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const WireCaseRecord& r = records[i];
    out << "    {\n"
        << "      \"name\": \"" << r.name << "\",\n"
        << "      \"n\": " << r.n << ",\n"
        << "      \"clients\": " << r.clients << ",\n"
        << "      \"sim_ms\": " << r.sim_ms << ",\n"
        << "      \"loopback_ms\": " << r.loopback_ms << ",\n"
        << "      \"tcp_ms\": " << r.tcp_ms << ",\n"
        << "      \"loopback_players_per_sec\": "
        << r.loopback_players_per_sec << ",\n"
        << "      \"tcp_players_per_sec\": " << r.tcp_players_per_sec
        << ",\n"
        << "      \"payload_bits\": " << r.payload_bits << ",\n"
        << "      \"framing_bits\": " << r.framing_bits << ",\n"
        << "      \"transport_bytes\": " << r.transport_bytes << ",\n"
        << "      \"payload_matches_sim\": "
        << (r.payload_matches_sim ? "true" : "false") << "\n    }"
        << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"metrics\": ";
  ds::obs::write_json(out, ds::obs::snapshot(), "  ");
  out << "\n}\n";
  std::cout << "wrote " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_wire.json";
  // Metrics on for the run: BENCH_wire.json's metrics block then carries
  // the wire/service counter totals next to the byte-split numbers.
  ds::obs::set_metrics_enabled(true);

  std::vector<WireCaseRecord> records;
  records.push_back(run_case("spanning_forest/n=128", 128, 0.10, 4,
                             ds::protocols::AgmSpanningForest{}));
  records.push_back(run_case("spanning_forest/n=512", 512, 0.03, 4,
                             ds::protocols::AgmSpanningForest{}));
  records.push_back(run_case("connectivity/n=256", 256, 0.05, 8,
                             ds::protocols::AgmConnectivity{}));

  write_json(out_path, records);

  for (const WireCaseRecord& r : records) {
    if (!r.payload_matches_sim) {
      std::cerr << "FAIL: " << r.name
                << " wire accounting diverged from simulation\n";
      return 1;
    }
  }
  return 0;
}
