// E7 — the sharpest contrast (Section 1.1): (Delta+1)-coloring, a
// symmetry-breaking problem like MM/MIS, admits O(log^3 n)-bit sketches
// via palette sparsification [Assadi-Chen-Khanna SODA'19].
#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>

#include "core/report.h"
#include "graph/generators.h"
#include "model/runner.h"
#include "protocols/coloring.h"

namespace {

bool proper(const ds::graph::Graph& g, const ds::model::ColoringOutput& c,
            std::uint32_t num_colors) {
  for (ds::graph::Vertex v = 0; v < g.num_vertices(); ++v) {
    if (c[v] == ds::protocols::kUncolored || c[v] >= num_colors) return false;
    for (ds::graph::Vertex w : g.neighbors(v)) {
      if (c[v] == c[w]) return false;
    }
  }
  return true;
}

void print_experiment() {
  std::cout << "=== E7: (Delta+1)-coloring by palette sparsification ===\n";
  ds::core::Table table({"n", "avg deg", "Delta+1", "list", "bits/player",
                         "bits/(log2 n)^3", "bits/n", "P[proper]"});
  for (ds::graph::Vertex n : {64u, 128u, 256u, 512u, 1024u}) {
    ds::util::Rng rng(n);
    const double avg_deg = 12.0;
    std::size_t bits = 0, ok = 0;
    std::uint32_t palette = 0, list_size = 0;
    constexpr std::size_t kTrials = 5;
    for (std::size_t trial = 0; trial < kTrials; ++trial) {
      const ds::graph::Graph g = ds::graph::gnp(n, avg_deg / n, rng);
      palette = g.max_degree() + 1;
      list_size = static_cast<std::uint32_t>(
          4 * std::log2(static_cast<double>(n)) + 4);
      const ds::protocols::PaletteSparsificationColoring protocol(
          palette, list_size);
      const ds::model::PublicCoins coins(3000 + n + trial);
      const auto run = ds::model::run_protocol(g, protocol, coins);
      bits = std::max(bits, run.comm.max_bits);
      ok += proper(g, run.output, palette);
    }
    const double log_n = std::log2(static_cast<double>(n));
    table.add_row(
        {ds::core::fmt(std::uint64_t{n}), ds::core::fmt(avg_deg, 0),
         ds::core::fmt(std::uint64_t{palette}),
         ds::core::fmt(std::uint64_t{list_size}),
         ds::core::fmt(static_cast<std::uint64_t>(bits)),
         ds::core::fmt(static_cast<double>(bits) / (log_n * log_n * log_n),
                       2),
         ds::core::fmt(static_cast<double>(bits) / n, 2),
         ds::core::fmt(static_cast<double>(ok) / kTrials, 2)});
  }
  table.print(std::cout);
  std::cout
      << "\nPaper prediction: a symmetry-breaking problem with polylog "
         "sketches —\nbits/(log n)^3 roughly flat, success ~1 — unlike "
         "maximal matching and MIS,\nwhich Theorems 1-2 pin at "
         "Omega(sqrt(n)) in the same model.\n\n";
}

void bm_palette_encode(benchmark::State& state) {
  ds::util::Rng rng(1);
  const ds::graph::Graph g = ds::graph::gnp(256, 0.05, rng);
  const ds::protocols::PaletteSparsificationColoring protocol(
      g.max_degree() + 1, 36);
  const ds::model::PublicCoins coins(2);
  for (auto _ : state) {
    ds::model::CommStats comm;
    benchmark::DoNotOptimize(
        ds::model::collect_sketches(g, protocol, coins, comm));
  }
}
BENCHMARK(bm_palette_encode);

}  // namespace

int main(int argc, char** argv) {
  print_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
