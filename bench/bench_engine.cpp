// P2: the engine's buffer-pooling layer (ISSUE 5 tentpole perf fold-in).
//
// The hot encode loop used to allocate one heap BitString per vertex per
// trial.  With a SketchArena the engine adopts pooled word storage into
// each BitWriter and reclaims it after the round, so steady-state encodes
// perform zero per-vertex heap allocations.  This bench measures both
// configurations on the same instances — wall time, encode throughput,
// and the ACTUAL global allocation count via an operator-new override —
// and emits BENCH_engine.json.
//
// Exits nonzero if pooled and unpooled sketches differ bit for bit, or
// if the pooled steady state still allocates per vertex (allocations per
// trial >= n on an encode-only case).
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <new>
#include <string>
#include <vector>

#include "engine/arena.h"
#include "engine/local_source.h"
#include "graph/generators.h"
#include "model/runner.h"
#include "parallel/thread_pool.h"
#include "protocols/spanning_forest.h"
#include "protocols/trivial.h"
#include "util/rng.h"

// ---------------------------------------------------------------------------
// Global allocation counter.  Counts every operator-new in the process
// (all threads), so measured regions below snapshot before/after.

namespace {
std::atomic<std::size_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace ds {
namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

std::uint64_t fingerprint(std::span<const util::BitString> sketches) {
  std::uint64_t h = 0x9e3779b97f4a7c15ull;
  for (const util::BitString& s : sketches) {
    h = util::mix64(h, s.bit_count());
    for (std::uint64_t w : s.words()) h = util::mix64(h, w);
  }
  return h;
}

struct Measured {
  double ms = 0.0;
  std::size_t allocs_per_trial = 0;
  std::uint64_t fingerprint = 0;
};

struct CaseRecord {
  std::string name;
  std::size_t n = 0;
  std::size_t trials = 0;
  Measured unpooled;
  Measured pooled;
  bool identical = false;
  bool zero_per_vertex = false;  // pooled steady state: allocs/trial < n
  bool gate_allocs = true;       // encode-only cases gate on the above
};

/// Run `trials` encode-only rounds through a LocalSource; with an arena
/// the round's storage is reclaimed after each trial (the sweep pattern).
template <typename Source>
Measured measure_collect(Source& source, engine::SketchArena* arena,
                         std::size_t trials) {
  Measured m;
  for (int warm = 0; warm < 2; ++warm) {  // reach arena steady state
    std::vector<util::BitString> sketches = source.collect(0, {});
    m.fingerprint = fingerprint(sketches);
    if (arena != nullptr) arena->reclaim_round(std::move(sketches), 0);
  }
  const std::size_t alloc_start =
      g_alloc_count.load(std::memory_order_relaxed);
  const auto start = Clock::now();
  for (std::size_t t = 0; t < trials; ++t) {
    std::vector<util::BitString> sketches = source.collect(0, {});
    m.fingerprint = fingerprint(sketches);
    if (arena != nullptr) arena->reclaim_round(std::move(sketches), 0);
  }
  m.ms = ms_since(start);
  m.allocs_per_trial =
      (g_alloc_count.load(std::memory_order_relaxed) - alloc_start) / trials;
  return m;
}

/// `gate_allocs` should be true only for protocols whose encode performs
/// no internal heap allocation of its own (e.g. TrivialMis): for those,
/// pooled steady-state allocations per trial < n proves the engine's
/// buffer layer allocates nothing per vertex.  Protocols like the AGM
/// sketches construct samplers inside encode — allocations outside the
/// buffer layer's scope — so their cases report counts without gating.
template <typename Output>
CaseRecord encode_case(std::string name, const graph::Graph& g,
                       const model::SketchingProtocol<Output>& protocol,
                       std::uint64_t coin_seed, std::size_t trials,
                       parallel::ThreadPool& pool, bool gate_allocs) {
  const graph::Vertex n = g.num_vertices();
  const model::PublicCoins coins(coin_seed);
  CaseRecord rec;
  rec.name = std::move(name);
  rec.n = n;
  rec.trials = trials;
  rec.gate_allocs = gate_allocs;

  auto unpooled_source = engine::make_local_source(
      n, engine::graph_view_fn(g, coins),
      model::detail::one_round_encode(protocol), &pool, nullptr);
  rec.unpooled = measure_collect(unpooled_source, nullptr, trials);

  engine::SketchArena arena;
  auto pooled_source = engine::make_local_source(
      n, engine::graph_view_fn(g, coins),
      model::detail::one_round_encode(protocol), &pool, &arena);
  rec.pooled = measure_collect(pooled_source, &arena, trials);

  rec.identical = rec.unpooled.fingerprint == rec.pooled.fingerprint;
  // Zero per-vertex buffers: either literally fewer allocations than
  // vertices, or (for protocols that allocate inside encode) at least one
  // allocation per vertex eliminated relative to the unpooled loop.
  rec.zero_per_vertex =
      rec.pooled.allocs_per_trial < n ||
      rec.pooled.allocs_per_trial + n <= rec.unpooled.allocs_per_trial;
  return rec;
}

/// Full run_protocol (encode + charge + decode) throughput, pooled vs
/// not.  Decode allocates its output, so this case reports allocation
/// counts but does not gate on them.
template <typename Output>
CaseRecord full_run_case(std::string name, const graph::Graph& g,
                         const model::SketchingProtocol<Output>& protocol,
                         std::uint64_t coin_seed, std::size_t trials,
                         parallel::ThreadPool& pool) {
  const model::PublicCoins coins(coin_seed);
  CaseRecord rec;
  rec.name = std::move(name);
  rec.n = g.num_vertices();
  rec.trials = trials;
  rec.gate_allocs = false;

  auto measure = [&](engine::SketchArena* arena) {
    Measured m;
    for (int warm = 0; warm < 2; ++warm) {
      (void)model::run_protocol(g, protocol, coins, &pool, arena);
    }
    const std::size_t alloc_start =
        g_alloc_count.load(std::memory_order_relaxed);
    const auto start = Clock::now();
    std::uint64_t fold = 0;
    for (std::size_t t = 0; t < trials; ++t) {
      const auto run = model::run_protocol(g, protocol, coins, &pool, arena);
      fold = util::mix64(fold, run.comm.total_bits);
    }
    m.ms = ms_since(start);
    m.fingerprint = fold;
    m.allocs_per_trial =
        (g_alloc_count.load(std::memory_order_relaxed) - alloc_start) /
        trials;
    return m;
  };
  rec.unpooled = measure(nullptr);
  engine::SketchArena arena;
  rec.pooled = measure(&arena);
  rec.identical = rec.unpooled.fingerprint == rec.pooled.fingerprint;
  rec.zero_per_vertex = true;  // not gated for full runs
  return rec;
}

double sketches_per_sec(const CaseRecord& rec, const Measured& m) {
  return m.ms > 0.0
             ? static_cast<double>(rec.n * rec.trials) / (m.ms / 1000.0)
             : 0.0;
}

void write_json(const std::string& path,
                const std::vector<CaseRecord>& records,
                std::size_t pool_threads) {
  std::ofstream out(path);
  out << "{\n  \"pool_threads\": " << pool_threads
      << ",\n  \"cases\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const CaseRecord& r = records[i];
    out << "    {\n"
        << "      \"name\": \"" << r.name << "\",\n"
        << "      \"n\": " << r.n << ",\n"
        << "      \"trials\": " << r.trials << ",\n"
        << "      \"unpooled_ms\": " << r.unpooled.ms << ",\n"
        << "      \"pooled_ms\": " << r.pooled.ms << ",\n"
        << "      \"unpooled_sketches_per_sec\": "
        << sketches_per_sec(r, r.unpooled) << ",\n"
        << "      \"pooled_sketches_per_sec\": "
        << sketches_per_sec(r, r.pooled) << ",\n"
        << "      \"unpooled_allocs_per_trial\": "
        << r.unpooled.allocs_per_trial << ",\n"
        << "      \"pooled_allocs_per_trial\": "
        << r.pooled.allocs_per_trial << ",\n"
        << "      \"identical\": " << (r.identical ? "true" : "false")
        << ",\n"
        << "      \"steady_state_zero_per_vertex\": "
        << (r.zero_per_vertex ? "true" : "false") << "\n    }"
        << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "wrote " << path << "\n";
}

int run(const std::string& out_path) {
  parallel::ThreadPool& pool = parallel::global_pool();
  std::vector<CaseRecord> records;

  {
    util::Rng rng(7);
    const graph::Graph g = graph::gnp(192, 0.08, rng);
    records.push_back(encode_case("encode/agm-spanning-forest-192", g,
                                  protocols::AgmSpanningForest{}, 11, 10,
                                  pool, /*gate_allocs=*/true));
  }
  {
    util::Rng rng(9);
    const graph::Graph g = graph::gnp(1024, 0.02, rng);
    records.push_back(encode_case("encode/trivial-mis-1024", g,
                                  protocols::TrivialMis{}, 12, 40, pool,
                                  /*gate_allocs=*/true));
  }
  {
    util::Rng rng(13);
    const graph::Graph g = graph::gnp(160, 0.1, rng);
    records.push_back(full_run_case("run/agm-spanning-forest-160", g,
                                    protocols::AgmSpanningForest{}, 13, 8,
                                    pool));
  }

  bool ok = true;
  for (const CaseRecord& r : records) {
    std::cout << "[" << r.name << "] n=" << r.n << " trials=" << r.trials
              << " unpooled=" << r.unpooled.ms << "ms ("
              << r.unpooled.allocs_per_trial << " allocs/trial) pooled="
              << r.pooled.ms << "ms (" << r.pooled.allocs_per_trial
              << " allocs/trial) identical="
              << (r.identical ? "yes" : "NO") << "\n";
    ok &= r.identical;
    if (r.gate_allocs) ok &= r.zero_per_vertex;
  }
  write_json(out_path, records, pool.num_threads());
  if (!ok) {
    std::cerr << "bench_engine: pooled run diverged or still allocates "
                 "per vertex in steady state\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace ds

int main(int argc, char** argv) {
  const std::string out = argc > 1 ? argv[1] : "BENCH_engine.json";
  return ds::run(out);
}
