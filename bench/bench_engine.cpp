// P2: the engine's buffer-pooling layer (ISSUE 5 tentpole perf fold-in).
//
// The hot encode loop used to allocate one heap BitString per vertex per
// trial.  With a SketchArena the engine adopts pooled word storage into
// each BitWriter and reclaims it after the round, so steady-state encodes
// perform zero per-vertex heap allocations.  This bench measures both
// configurations on the same instances — wall time, encode throughput,
// and the ACTUAL global allocation count via an operator-new override —
// and emits BENCH_engine.json.
//
// Exits nonzero if pooled and unpooled sketches differ bit for bit, or
// if the pooled steady state still allocates per vertex (allocations per
// trial >= n on an encode-only case).
//
// Roofline instrumentation (ISSUE 9): every case also reports the sketch
// payload bytes per trial, encode/decode MB/s, and — on x86_64, via
// rdtsc — encode bytes per cycle, the memory-bandwidth-bound figure of
// merit for the word-at-a-time bitio + batched hashing hot path.  With
// `--baseline BENCH_engine.json` the binary exits nonzero if any case's
// encode MB/s drops below 80% of the committed baseline (the CI
// no-regression gate); `--quick` shrinks trial counts for that gate.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#if defined(__x86_64__)
#include <x86intrin.h>
#endif

#include "engine/arena.h"
#include "engine/local_source.h"
#include "graph/generators.h"
#include "model/runner.h"
#include "parallel/thread_pool.h"
#include "protocols/spanning_forest.h"
#include "protocols/trivial.h"
#include "util/rng.h"

// ---------------------------------------------------------------------------
// Global allocation counter.  Counts every operator-new in the process
// (all threads), so measured regions below snapshot before/after.

namespace {
std::atomic<std::size_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace ds {
namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

std::uint64_t fingerprint(std::span<const util::BitString> sketches) {
  std::uint64_t h = 0x9e3779b97f4a7c15ull;
  for (const util::BitString& s : sketches) {
    h = util::mix64(h, s.bit_count());
    for (std::uint64_t w : s.words()) h = util::mix64(h, w);
  }
  return h;
}

/// Cycle counter for the bytes-per-cycle roofline figure; 0 on targets
/// without an invariant TSC (the JSON then reports bytes_per_cycle 0).
std::uint64_t read_cycles() {
#if defined(__x86_64__)
  return __rdtsc();
#else
  return 0;
#endif
}

std::size_t payload_bytes(std::span<const util::BitString> sketches) {
  std::size_t bytes = 0;
  for (const util::BitString& s : sketches) bytes += (s.bit_count() + 7) / 8;
  return bytes;
}

struct Measured {
  double ms = 0.0;
  std::uint64_t cycles = 0;
  std::size_t allocs_per_trial = 0;
  std::uint64_t fingerprint = 0;
};

struct CaseRecord {
  std::string name;
  std::size_t n = 0;
  std::size_t trials = 0;
  Measured unpooled;
  Measured pooled;
  std::size_t bytes_per_trial = 0;  // summed sketch payload, one trial
  double decode_ms = 0.0;           // referee decode over `trials` passes
  bool identical = false;
  bool zero_per_vertex = false;  // pooled steady state: allocs/trial < n
  bool gate_allocs = true;       // encode-only cases gate on the above
};

double mb_per_sec(std::size_t bytes_per_trial, std::size_t trials,
                  double ms) {
  if (ms <= 0.0) return 0.0;
  const double total = static_cast<double>(bytes_per_trial) *
                       static_cast<double>(trials);
  return total / (ms / 1000.0) / 1e6;
}

double bytes_per_cycle(const CaseRecord& rec) {
  if (rec.pooled.cycles == 0) return 0.0;
  return static_cast<double>(rec.bytes_per_trial) *
         static_cast<double>(rec.trials) /
         static_cast<double>(rec.pooled.cycles);
}

/// Run `trials` encode-only rounds through a LocalSource; with an arena
/// the round's storage is reclaimed after each trial (the sweep pattern).
template <typename Source>
Measured measure_collect(Source& source, engine::SketchArena* arena,
                         std::size_t trials) {
  Measured m;
  for (int warm = 0; warm < 2; ++warm) {  // reach arena steady state
    std::vector<util::BitString> sketches = source.collect(0, {});
    m.fingerprint = fingerprint(sketches);
    if (arena != nullptr) arena->reclaim_round(std::move(sketches), 0);
  }
  const std::size_t alloc_start =
      g_alloc_count.load(std::memory_order_relaxed);
  const std::uint64_t cycle_start = read_cycles();
  const auto start = Clock::now();
  for (std::size_t t = 0; t < trials; ++t) {
    std::vector<util::BitString> sketches = source.collect(0, {});
    m.fingerprint = fingerprint(sketches);
    if (arena != nullptr) arena->reclaim_round(std::move(sketches), 0);
  }
  m.ms = ms_since(start);
  m.cycles = read_cycles() - cycle_start;
  m.allocs_per_trial =
      (g_alloc_count.load(std::memory_order_relaxed) - alloc_start) / trials;
  return m;
}

/// `gate_allocs` should be true only for protocols whose encode performs
/// no internal heap allocation of its own (e.g. TrivialMis): for those,
/// pooled steady-state allocations per trial < n proves the engine's
/// buffer layer allocates nothing per vertex.  Protocols like the AGM
/// sketches construct samplers inside encode — allocations outside the
/// buffer layer's scope — so their cases report counts without gating.
template <typename Output>
CaseRecord encode_case(std::string name, const graph::Graph& g,
                       const model::SketchingProtocol<Output>& protocol,
                       std::uint64_t coin_seed, std::size_t trials,
                       parallel::ThreadPool& pool, bool gate_allocs) {
  const graph::Vertex n = g.num_vertices();
  const model::PublicCoins coins(coin_seed);
  CaseRecord rec;
  rec.name = std::move(name);
  rec.n = n;
  rec.trials = trials;
  rec.gate_allocs = gate_allocs;

  auto unpooled_source = engine::make_local_source(
      n, engine::graph_view_fn(g, coins),
      model::detail::one_round_encode(protocol), &pool, nullptr);
  rec.unpooled = measure_collect(unpooled_source, nullptr, trials);

  engine::SketchArena arena;
  auto pooled_source = engine::make_local_source(
      n, engine::graph_view_fn(g, coins),
      model::detail::one_round_encode(protocol), &pool, &arena);
  rec.pooled = measure_collect(pooled_source, &arena, trials);

  // Roofline payload + referee decode throughput over the same sketches.
  {
    const std::vector<util::BitString> sketches = pooled_source.collect(0, {});
    rec.bytes_per_trial = payload_bytes(sketches);
    volatile std::uint64_t sink = 0;
    (void)protocol.decode(n, sketches, coins);  // warm
    const auto start = Clock::now();
    for (std::size_t t = 0; t < trials; ++t) {
      const Output out = protocol.decode(n, sketches, coins);
      sink = sink + out.size();
    }
    rec.decode_ms = ms_since(start);
  }

  rec.identical = rec.unpooled.fingerprint == rec.pooled.fingerprint;
  // Zero per-vertex buffers: either literally fewer allocations than
  // vertices, or (for protocols that allocate inside encode) at least one
  // allocation per vertex eliminated relative to the unpooled loop.
  rec.zero_per_vertex =
      rec.pooled.allocs_per_trial < n ||
      rec.pooled.allocs_per_trial + n <= rec.unpooled.allocs_per_trial;
  return rec;
}

/// Full run_protocol (encode + charge + decode) throughput, pooled vs
/// not.  Decode allocates its output, so this case reports allocation
/// counts but does not gate on them.
template <typename Output>
CaseRecord full_run_case(std::string name, const graph::Graph& g,
                         const model::SketchingProtocol<Output>& protocol,
                         std::uint64_t coin_seed, std::size_t trials,
                         parallel::ThreadPool& pool) {
  const model::PublicCoins coins(coin_seed);
  CaseRecord rec;
  rec.name = std::move(name);
  rec.n = g.num_vertices();
  rec.trials = trials;
  rec.gate_allocs = false;

  auto measure = [&](engine::SketchArena* arena) {
    Measured m;
    for (int warm = 0; warm < 2; ++warm) {
      (void)model::run_protocol(g, protocol, coins, &pool, arena);
    }
    const std::size_t alloc_start =
        g_alloc_count.load(std::memory_order_relaxed);
    const std::uint64_t cycle_start = read_cycles();
    const auto start = Clock::now();
    std::uint64_t fold = 0;
    for (std::size_t t = 0; t < trials; ++t) {
      const auto run = model::run_protocol(g, protocol, coins, &pool, arena);
      fold = util::mix64(fold, run.comm.total_bits);
      rec.bytes_per_trial = (run.comm.total_bits + 7) / 8;
    }
    m.ms = ms_since(start);
    m.cycles = read_cycles() - cycle_start;
    m.fingerprint = fold;
    m.allocs_per_trial =
        (g_alloc_count.load(std::memory_order_relaxed) - alloc_start) /
        trials;
    return m;
  };
  rec.unpooled = measure(nullptr);
  engine::SketchArena arena;
  rec.pooled = measure(&arena);
  rec.identical = rec.unpooled.fingerprint == rec.pooled.fingerprint;
  rec.zero_per_vertex = true;  // not gated for full runs
  return rec;
}

double sketches_per_sec(const CaseRecord& rec, const Measured& m) {
  return m.ms > 0.0
             ? static_cast<double>(rec.n * rec.trials) / (m.ms / 1000.0)
             : 0.0;
}

void write_json(const std::string& path,
                const std::vector<CaseRecord>& records,
                std::size_t pool_threads) {
  std::ofstream out(path);
  out << "{\n  \"pool_threads\": " << pool_threads
      << ",\n  \"cases\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const CaseRecord& r = records[i];
    out << "    {\n"
        << "      \"name\": \"" << r.name << "\",\n"
        << "      \"n\": " << r.n << ",\n"
        << "      \"trials\": " << r.trials << ",\n"
        << "      \"unpooled_ms\": " << r.unpooled.ms << ",\n"
        << "      \"pooled_ms\": " << r.pooled.ms << ",\n"
        << "      \"unpooled_sketches_per_sec\": "
        << sketches_per_sec(r, r.unpooled) << ",\n"
        << "      \"pooled_sketches_per_sec\": "
        << sketches_per_sec(r, r.pooled) << ",\n"
        << "      \"unpooled_allocs_per_trial\": "
        << r.unpooled.allocs_per_trial << ",\n"
        << "      \"pooled_allocs_per_trial\": "
        << r.pooled.allocs_per_trial << ",\n"
        << "      \"bytes_per_trial\": " << r.bytes_per_trial << ",\n"
        << "      \"encode_mb_per_sec\": "
        << mb_per_sec(r.bytes_per_trial, r.trials, r.pooled.ms) << ",\n"
        << "      \"decode_mb_per_sec\": "
        << mb_per_sec(r.bytes_per_trial, r.trials, r.decode_ms) << ",\n"
        << "      \"encode_bytes_per_cycle\": " << bytes_per_cycle(r)
        << ",\n"
        << "      \"identical\": " << (r.identical ? "true" : "false")
        << ",\n"
        << "      \"steady_state_zero_per_vertex\": "
        << (r.zero_per_vertex ? "true" : "false") << "\n    }"
        << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "wrote " << path << "\n";
}

/// Pull `"encode_mb_per_sec": <num>` for a named case out of a committed
/// BENCH_engine.json with a plain string scan (no JSON library in tree).
/// Returns a negative value if the case or field is absent — the gate
/// then warns and skips rather than failing on a stale baseline format.
double baseline_encode_mb(const std::string& json, const std::string& name) {
  const std::string needle = "\"name\": \"" + name + "\"";
  const std::size_t at = json.find(needle);
  if (at == std::string::npos) return -1.0;
  const std::string field = "\"encode_mb_per_sec\": ";
  const std::size_t f = json.find(field, at);
  // Stay inside this case object: the field must precede the next case.
  const std::size_t next = json.find("\"name\": \"", at + needle.size());
  if (f == std::string::npos || (next != std::string::npos && f > next)) {
    return -1.0;
  }
  return std::atof(json.c_str() + f + field.size());
}

/// The CI no-regression gate: every case present in the baseline must
/// retain at least `kKeepFraction` of its committed encode MB/s.
bool check_baseline(const std::string& path,
                    const std::vector<CaseRecord>& records) {
  constexpr double kKeepFraction = 0.8;
  std::ifstream in(path);
  if (!in) {
    std::cerr << "bench_engine: cannot read baseline " << path << "\n";
    return false;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();
  bool ok = true;
  for (const CaseRecord& r : records) {
    const double base = baseline_encode_mb(json, r.name);
    if (base <= 0.0) {
      std::cout << "[gate] " << r.name
                << ": baseline lacks encode_mb_per_sec, skipping\n";
      continue;
    }
    const double now = mb_per_sec(r.bytes_per_trial, r.trials, r.pooled.ms);
    const bool pass = now >= kKeepFraction * base;
    std::cout << "[gate] " << r.name << ": encode " << now
              << " MB/s vs baseline " << base << " MB/s -> "
              << (pass ? "ok" : "REGRESSION") << "\n";
    ok &= pass;
  }
  return ok;
}

int run(const std::string& out_path, bool quick,
        const std::string& baseline_path) {
  parallel::ThreadPool& pool = parallel::global_pool();
  std::vector<CaseRecord> records;
  // --quick shrinks trial counts (the CI gate budget); throughput figures
  // get noisier but stay well inside the 20% regression margin.
  const auto trials = [quick](std::size_t full) {
    return quick ? (full + 4) / 5 : full;
  };

  {
    util::Rng rng(7);
    const graph::Graph g = graph::gnp(192, 0.08, rng);
    records.push_back(encode_case("encode/agm-spanning-forest-192", g,
                                  protocols::AgmSpanningForest{}, 11,
                                  trials(10), pool, /*gate_allocs=*/true));
  }
  {
    util::Rng rng(9);
    const graph::Graph g = graph::gnp(1024, 0.02, rng);
    records.push_back(encode_case("encode/trivial-mis-1024", g,
                                  protocols::TrivialMis{}, 12, trials(40),
                                  pool, /*gate_allocs=*/true));
  }
  {
    util::Rng rng(13);
    const graph::Graph g = graph::gnp(160, 0.1, rng);
    records.push_back(full_run_case("run/agm-spanning-forest-160", g,
                                    protocols::AgmSpanningForest{}, 13,
                                    trials(8), pool));
  }

  bool ok = true;
  for (const CaseRecord& r : records) {
    std::cout << "[" << r.name << "] n=" << r.n << " trials=" << r.trials
              << " unpooled=" << r.unpooled.ms << "ms ("
              << r.unpooled.allocs_per_trial << " allocs/trial) pooled="
              << r.pooled.ms << "ms (" << r.pooled.allocs_per_trial
              << " allocs/trial) encode="
              << mb_per_sec(r.bytes_per_trial, r.trials, r.pooled.ms)
              << "MB/s decode="
              << mb_per_sec(r.bytes_per_trial, r.trials, r.decode_ms)
              << "MB/s " << bytes_per_cycle(r)
              << "B/cyc identical=" << (r.identical ? "yes" : "NO") << "\n";
    ok &= r.identical;
    if (r.gate_allocs) ok &= r.zero_per_vertex;
  }
  write_json(out_path, records, pool.num_threads());
  if (!ok) {
    std::cerr << "bench_engine: pooled run diverged or still allocates "
                 "per vertex in steady state\n";
    return 1;
  }
  if (!baseline_path.empty() && !check_baseline(baseline_path, records)) {
    std::cerr << "bench_engine: encode throughput regressed vs "
              << baseline_path << "\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace ds

int main(int argc, char** argv) {
  std::string out = "BENCH_engine.json";
  std::string baseline;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline = argv[++i];
    } else {
      out = arg;
    }
  }
  return ds::run(out, quick, baseline);
}
