// A3 — ablations of the design decisions called out in DESIGN.md §4.
//
//  (a) AGM Boruvka rounds: success collapses when the sketch carries too
//      few independent samplers (reusing samplers across rounds would
//      correlate them; fewer rounds means Boruvka cannot finish).
//  (b) Bit-exact vs byte-rounded accounting: byte rounding shifts the E3
//      budget ladder but not the crossover's order of magnitude.
//  (c) Palette sparsification list size: the O(log n) constant matters —
//      below ~1 log n the conflict graph stops being list-colorable.
//  (d) Two-round MIS marking probability: too small leaves a dense
//      residual (round-1 blowup), too large makes round 0 itself heavy;
//      the sqrt(n) sweet spot is visible in max bits.
#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>

#include "core/report.h"
#include "graph/connectivity.h"
#include "graph/generators.h"
#include "graph/independent_set.h"
#include "model/adaptive.h"
#include "model/runner.h"
#include "protocols/coloring.h"
#include "protocols/sampled_matching.h"
#include "protocols/spanning_forest.h"
#include "protocols/two_round_mis.h"

namespace {

void ablate_agm_rounds() {
  std::cout << "=== A3a: AGM sketch rounds vs success ===\n";
  ds::core::Table table({"rounds", "bits/player", "P[spanning forest]"});
  ds::util::Rng rng(1);
  const ds::graph::Graph g = ds::graph::gnp(100, 0.08, rng);
  for (unsigned rounds : {1u, 2u, 4u, 7u, 10u, 0u /* default */}) {
    std::size_t ok = 0, bits = 0;
    constexpr std::size_t kTrials = 10;
    for (std::size_t trial = 0; trial < kTrials; ++trial) {
      const ds::model::PublicCoins coins(100 + rounds * 17 + trial);
      const auto run = ds::model::run_protocol(
          g, ds::protocols::AgmSpanningForest{rounds}, coins);
      bits = run.comm.max_bits;
      ok += ds::graph::is_spanning_forest(g, run.output);
    }
    table.add_row(
        {rounds == 0 ? "default(~log n+3)" : ds::core::fmt(std::uint64_t{rounds}),
         ds::core::fmt(static_cast<std::uint64_t>(bits)),
         ds::core::fmt(static_cast<double>(ok) / kTrials, 2)});
  }
  table.print(std::cout);
  std::cout << "\nToo few independent samplers and Boruvka stalls; the\n"
               "log-n default restores w.h.p. success.\n\n";
}

void ablate_accounting() {
  std::cout << "=== A3b: bit-exact vs byte-rounded accounting ===\n";
  ds::core::Table table(
      {"requested bits", "exact max bits", "byte-rounded bits", "overhead"});
  ds::util::Rng rng(2);
  const ds::graph::Graph g = ds::graph::gnp(200, 0.1, rng);
  for (std::size_t budget : {16ULL, 48ULL, 100ULL, 333ULL, 1000ULL}) {
    const ds::model::PublicCoins coins(200 + budget);
    const auto run = ds::model::run_protocol(
        g, ds::protocols::BudgetedMatching{budget}, coins);
    const std::size_t exact = run.comm.max_bits;
    const std::size_t bytes = (exact + 7) / 8 * 8;
    table.add_row(
        {ds::core::fmt(static_cast<std::uint64_t>(budget)),
         ds::core::fmt(static_cast<std::uint64_t>(exact)),
         ds::core::fmt(static_cast<std::uint64_t>(bytes)),
         ds::core::fmt(static_cast<double>(bytes) /
                           static_cast<double>(
                               std::max<std::size_t>(exact, 1)),
                       3)});
  }
  table.print(std::cout);
  std::cout << "\nByte rounding inflates budgets by < 1.5x at the scales\n"
               "that matter — it shifts E3's ladder, not its shape.\n\n";
}

void ablate_palette_list() {
  // The hard case for list size is the clique: the lists must contain a
  // system of distinct representatives (all n colors used exactly once),
  // which random lists provide w.h.p. only once |L| ~ log n.
  std::cout << "=== A3c: palette sparsification list size (on K_64) ===\n";
  ds::core::Table table({"list size", "bits/player", "P[proper coloring]"});
  const ds::graph::Vertex n = 64;
  const ds::graph::Graph g = ds::graph::complete(n);
  for (std::uint32_t list : {1u, 4u, 8u, 16u, 24u, 32u}) {
    std::size_t ok = 0, bits = 0;
    constexpr std::size_t kTrials = 10;
    for (std::size_t trial = 0; trial < kTrials; ++trial) {
      const ds::protocols::PaletteSparsificationColoring protocol(n, list);
      const ds::model::PublicCoins coins(300 + list * 1000 + trial);
      const auto run = ds::model::run_protocol(g, protocol, coins);
      bits = std::max(bits, run.comm.max_bits);
      bool proper = true;
      for (ds::graph::Vertex v = 0; v < n && proper; ++v) {
        if (run.output[v] == ds::protocols::kUncolored) proper = false;
        for (ds::graph::Vertex w : g.neighbors(v)) {
          if (run.output[v] == run.output[w]) {
            proper = false;
            break;
          }
        }
      }
      ok += proper;
    }
    table.add_row({ds::core::fmt(std::uint64_t{list}),
                   ds::core::fmt(static_cast<std::uint64_t>(bits)),
                   ds::core::fmt(static_cast<double>(ok) / kTrials, 2)});
  }
  table.print(std::cout);
  std::cout << "\nACK19's Theta(log n) list size is real and sharp:"
               "\nsingleton lists fail outright (birthday collisions),"
               "\nlists of ~1.3 log2(n) colors succeed w.h.p. even on the"
               "\nclique, where list-coloring = finding a system of"
               "\ndistinct representatives (the referee's augmenting"
               "\nrepair is exactly Kuhn's matching algorithm there).\n\n";
}

void ablate_mis_marking() {
  std::cout << "=== A3d: two-round MIS marking probability ===\n";
  ds::core::Table table(
      {"p_mark (x 1/sqrt n)", "bits/player", "P[MIS]"});
  ds::util::Rng rng(4);
  const ds::graph::Vertex n = 400;
  const double base = 1.0 / std::sqrt(static_cast<double>(n));
  for (double factor : {0.5, 1.0, 3.0, 10.0}) {
    std::size_t ok = 0, bits = 0;
    constexpr std::size_t kTrials = 8;
    for (std::size_t trial = 0; trial < kTrials; ++trial) {
      const ds::graph::Graph g = ds::graph::gnp(n, 10.0 / n, rng);
      const ds::protocols::TwoRoundMis protocol(
          std::min(1.0, factor * base), /*round1_cap=*/100000);
      const ds::model::PublicCoins coins(400 + trial +
                                         static_cast<std::uint64_t>(
                                             factor * 100));
      const auto run = ds::model::run_adaptive(g, protocol, coins);
      bits = std::max(bits, run.comm.max_bits);
      ok += ds::graph::is_maximal_independent_set(g, run.output);
    }
    table.add_row({ds::core::fmt(factor, 1),
                   ds::core::fmt(static_cast<std::uint64_t>(bits)),
                   ds::core::fmt(static_cast<double>(ok) / kTrials, 2)});
  }
  table.print(std::cout);
  std::cout << "\nCorrectness holds at every p (the cap is generous); the\n"
               "bits column shows the round-0 vs round-1 cost tradeoff\n"
               "around the ~1/sqrt(n) marking rate.\n\n";
}

void bm_agm_rounds(benchmark::State& state) {
  ds::util::Rng rng(5);
  const ds::graph::Graph g = ds::graph::gnp(100, 0.08, rng);
  const ds::model::PublicCoins coins(6);
  const ds::protocols::AgmSpanningForest protocol(
      static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ds::model::run_protocol(g, protocol, coins));
  }
}
BENCHMARK(bm_agm_rounds)->Arg(2)->Arg(10);

}  // namespace

int main(int argc, char** argv) {
  ablate_agm_rounds();
  ablate_accounting();
  ablate_palette_list();
  ablate_mis_marking();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
