// E8 — the Section 1.1 remark: with ONE extra round, both maximal
// matching and MIS drop to O(sqrt n)-size adaptive sketches
// ([Lattanzi et al. '11] filtering, [Ghaffari et al. '18] sparsification).
//
// We run the two-round protocols on G(n, p) and on D_MM itself and report
// realized per-player bits against sqrt(n)*log(n), plus success rates.
#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>

#include "core/report.h"
#include "graph/generators.h"
#include "graph/independent_set.h"
#include "graph/matching.h"
#include "lowerbound/dmm.h"
#include "lowerbound/mis_reduction.h"
#include "model/adaptive.h"
#include "model/runner.h"
#include "protocols/budgeted_two_round.h"
#include "protocols/two_round_matching.h"
#include "protocols/luby_bcc.h"
#include "protocols/sampled_mis.h"
#include "protocols/two_round_mis.h"
#include "rs/rs_graph.h"

namespace {

void print_matching() {
  std::cout << "=== E8a: two-round adaptive maximal matching ===\n";
  ds::core::Table table({"graph", "n", "bits/player", "sqrt(n)*log2(n)",
                         "ratio", "P[maximal]"});
  auto run_case = [&table](const std::string& label,
                           const ds::graph::Graph& g, std::uint64_t seed) {
    const ds::graph::Vertex n = g.num_vertices();
    const std::size_t c =
        static_cast<std::size_t>(std::sqrt(static_cast<double>(n))) + 4;
    const ds::protocols::TwoRoundMatching protocol(c, 8 * c);
    std::size_t bits = 0, ok = 0;
    constexpr std::size_t kTrials = 5;
    for (std::size_t trial = 0; trial < kTrials; ++trial) {
      const ds::model::PublicCoins coins(ds::util::mix64(seed, trial));
      const auto run = ds::model::run_adaptive(g, protocol, coins);
      bits = std::max(bits, run.comm.max_bits);
      ok += ds::graph::is_maximal_matching(g, run.output);
    }
    const double yard = std::sqrt(static_cast<double>(n)) *
                        std::log2(static_cast<double>(n));
    table.add_row({label, ds::core::fmt(std::uint64_t{n}),
                   ds::core::fmt(static_cast<std::uint64_t>(bits)),
                   ds::core::fmt(yard, 0),
                   ds::core::fmt(static_cast<double>(bits) / yard, 2),
                   ds::core::fmt(static_cast<double>(ok) / kTrials, 2)});
  };

  ds::util::Rng rng(11);
  for (ds::graph::Vertex n : {100u, 400u, 1600u}) {
    run_case("gnp(" + std::to_string(n) + ")",
             ds::graph::gnp(n, 8.0 / n, rng), 100 + n);
  }
  for (std::uint64_t m : {8ULL, 16ULL}) {
    const ds::rs::RsGraph base = ds::rs::rs_graph(m);
    const auto inst = ds::lowerbound::sample_dmm(base, base.t(), rng);
    run_case("D_MM(m=" + std::to_string(m) + ")", inst.g, 200 + m);
  }
  table.print(std::cout);
  std::cout << '\n';
}

void print_mis() {
  std::cout << "=== E8b: two-round adaptive MIS ===\n";
  ds::core::Table table(
      {"graph", "n", "bits/player", "sqrt(n)*log2(n)", "ratio", "P[MIS]"});
  ds::util::Rng rng(13);
  for (ds::graph::Vertex n : {100u, 400u, 1600u}) {
    const ds::graph::Graph g = ds::graph::gnp(n, 8.0 / n, rng);
    const double p_mark =
        std::min(1.0, 3.0 / std::sqrt(static_cast<double>(n)));
    const ds::protocols::TwoRoundMis protocol(
        p_mark, static_cast<std::size_t>(
                    24 * std::sqrt(static_cast<double>(n))));
    std::size_t bits = 0, ok = 0;
    constexpr std::size_t kTrials = 5;
    for (std::size_t trial = 0; trial < kTrials; ++trial) {
      const ds::model::PublicCoins coins(ds::util::mix64(n, trial));
      const auto run = ds::model::run_adaptive(g, protocol, coins);
      bits = std::max(bits, run.comm.max_bits);
      ok += ds::graph::is_maximal_independent_set(g, run.output);
    }
    const double yard = std::sqrt(static_cast<double>(n)) *
                        std::log2(static_cast<double>(n));
    table.add_row({"gnp(" + std::to_string(n) + ")",
                   ds::core::fmt(std::uint64_t{n}),
                   ds::core::fmt(static_cast<std::uint64_t>(bits)),
                   ds::core::fmt(yard, 0),
                   ds::core::fmt(static_cast<double>(bits) / yard, 2),
                   ds::core::fmt(static_cast<double>(ok) / kTrials, 2)});
  }
  table.print(std::cout);
  std::cout
      << "\nPaper prediction: one extra round collapses both problems to"
         "\n~sqrt(n) bits/player (ratio columns ~constant) — the Theorem"
         "\n1/2 wall is specific to ONE round.\n\n";
}

// E8c: adaptivity under a shared TOTAL budget — the open middle ground
// between Theorem 1's one-round wall and the unbudgeted two-round upper
// bound.  Same total bits; the two-round protocol routes round 1 to the
// residual and crosses to success at a lower total budget.
void print_budgeted_adaptivity() {
  std::cout << "=== E8c: one round vs two rounds at equal total budget "
               "(D_MM, m=16) ===\n";
  const ds::rs::RsGraph base = ds::rs::rs_graph(16);
  ds::core::Table table({"total budget bits", "P[maximal] 1-round",
                         "P[maximal] 2-round"});
  for (std::size_t total : {12ULL, 16ULL, 24ULL, 32ULL, 48ULL, 96ULL}) {
    std::size_t one_ok = 0, two_ok = 0;
    constexpr std::size_t kTrials = 10;
    ds::util::Rng rng(83);
    for (std::size_t trial = 0; trial < kTrials; ++trial) {
      const auto inst = ds::lowerbound::sample_dmm(base, base.t(), rng);
      const ds::model::PublicCoins coins(ds::util::mix64(total, trial));
      const ds::protocols::BudgetedTwoRoundMatching one(total, 0);
      const ds::protocols::BudgetedTwoRoundMatching two(total / 2,
                                                        total / 2);
      one_ok += ds::graph::is_maximal_matching(
          inst.g, ds::model::run_adaptive(inst.g, one, coins).output);
      two_ok += ds::graph::is_maximal_matching(
          inst.g, ds::model::run_adaptive(inst.g, two, coins).output);
    }
    table.add_row({ds::core::fmt(static_cast<std::uint64_t>(total)),
                   ds::core::fmt(static_cast<double>(one_ok) / kTrials, 2),
                   ds::core::fmt(static_cast<double>(two_ok) / kTrials, 2)});
  }
  table.print(std::cout);
  std::cout << "\nAdaptivity buys a constant-factor budget saving here;"
               "\nTheorem 1 is about the FIRST column's wall.\n\n";
}

// E8d: the full rounds-vs-bits tradeoff for MIS, on an easy graph (sparse
// gnp) and on the hard one (the Section 4 reduction graph H over D_MM).
void print_rounds_vs_bits() {
  std::cout << "=== E8d: rounds vs bits for MIS ===\n";
  ds::core::Table table({"graph", "protocol", "rounds", "bits/player",
                         "P[MIS] (5 trials)"});

  const auto run_rows = [&table](const std::string& label,
                                 const ds::graph::Graph& g,
                                 std::uint64_t seed) {
    const ds::graph::Vertex n = g.num_vertices();
    {  // one round: smallest doubling budget reaching 5/5.
      std::size_t bits = 0;
      double rate = 0;
      for (std::size_t budget = 32; budget <= (1u << 20); budget *= 2) {
        std::size_t ok = 0, seen_bits = 0;
        for (std::uint64_t trial = 0; trial < 5; ++trial) {
          const ds::model::PublicCoins coins(
              ds::util::mix64(seed + budget, trial));
          const ds::protocols::BudgetedMis protocol(budget);
          const auto run = ds::model::run_protocol(g, protocol, coins);
          ok += ds::graph::is_maximal_independent_set(g, run.output);
          seen_bits = std::max(seen_bits, run.comm.max_bits);
        }
        bits = seen_bits;
        rate = static_cast<double>(ok) / 5.0;
        if (ok == 5) break;
      }
      table.add_row({label, "one-round edge reports", "1",
                     ds::core::fmt(static_cast<std::uint64_t>(bits)),
                     ds::core::fmt(rate, 2)});
    }
    {  // two rounds.
      const double p_mark = 3.0 / std::sqrt(static_cast<double>(n));
      const ds::protocols::TwoRoundMis protocol(std::min(1.0, p_mark),
                                                2 * n);
      std::size_t bits = 0, ok = 0;
      for (std::uint64_t trial = 0; trial < 5; ++trial) {
        const ds::model::PublicCoins coins(ds::util::mix64(seed + 1, trial));
        const auto run = ds::model::run_adaptive(g, protocol, coins);
        bits = std::max(bits, run.comm.max_bits);
        ok += ds::graph::is_maximal_independent_set(g, run.output);
      }
      table.add_row({label, "two-round marked", "2",
                     ds::core::fmt(static_cast<std::uint64_t>(bits)),
                     ds::core::fmt(static_cast<double>(ok) / 5.0, 2)});
    }
    {  // Luby over the broadcast congested clique.
      const auto protocol = ds::protocols::make_luby_bcc(n);
      std::size_t bits = 0, ok = 0;
      for (std::uint64_t trial = 0; trial < 5; ++trial) {
        const ds::model::PublicCoins coins(ds::util::mix64(seed + 2, trial));
        const auto run = ds::model::run_adaptive(g, protocol, coins);
        bits = std::max(bits, run.comm.max_bits);
        ok += ds::graph::is_maximal_independent_set(g, run.output);
      }
      table.add_row({label, "Luby (BCC)",
                     ds::core::fmt(std::uint64_t{protocol.num_rounds()}),
                     ds::core::fmt(static_cast<std::uint64_t>(bits)),
                     ds::core::fmt(static_cast<double>(ok) / 5.0, 2)});
    }
  };

  ds::util::Rng rng(97);
  run_rows("gnp(400)", ds::graph::gnp(400, 8.0 / 400, rng), 11000);
  {
    const ds::rs::RsGraph base = ds::rs::rs_graph(16);
    const auto inst = ds::lowerbound::sample_dmm(base, base.t(), rng);
    const ds::graph::Graph h = ds::lowerbound::build_reduction_graph(inst);
    run_rows("H(D_MM m=16)", h, 12000);
  }
  table.print(std::cout);
  std::cout
      << "\nReading: on the easy sparse graph even one round is cheap —"
         "\nthe wall is DISTRIBUTION-specific.  On the reduction graph H"
         "\n(where Theorem 2 lives) the one-round budget balloons with"
         "\nthe dense public biclique, while Luby stays at O(log n) total"
         "\nbits: more rounds of interaction are exponentially cheaper.\n\n";
}

void bm_two_round_matching(benchmark::State& state) {
  ds::util::Rng rng(1);
  const ds::graph::Graph g = ds::graph::gnp(200, 0.05, rng);
  const ds::protocols::TwoRoundMatching protocol(18, 150);
  const ds::model::PublicCoins coins(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ds::model::run_adaptive(g, protocol, coins));
  }
}
BENCHMARK(bm_two_round_matching);

}  // namespace

int main(int argc, char** argv) {
  print_matching();
  print_mis();
  print_budgeted_adaptivity();
  print_rounds_vs_bits();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
