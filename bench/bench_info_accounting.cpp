// E4 — exact information accounting for Lemmas 3.3-3.5 on enumerable
// mini-instances of D_MM.
//
// For each (base RS graph, k, encoder) we enumerate the full input
// distribution, compute the exact joint law of (Sigma, J, M, Pi(P),
// Pi(U_i)), and print both sides of each lemma.  The Sigma-averaged run
// (all 120 permutations of the n = 5 instance) verifies Lemma 3.5 under
// its actual hypothesis; single-sigma runs cover 3.3 / 3.4 at slightly
// larger (r, t, k).
#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>

#include "core/report.h"
#include "lowerbound/accounting.h"
#include "lowerbound/optimal_referee.h"
#include "lowerbound/protocol_search.h"
#include "rs/rs_graph.h"

namespace {

using namespace ds::lowerbound;

void add_row(ds::core::Table& table, const std::string& instance,
             const std::string& encoder, const AccountingResult& r) {
  double sum_info = 0, sum_h = 0;
  for (double v : r.info_mi_piui) sum_info += v;
  for (double v : r.h_piui) sum_h += v;
  table.add_row(
      {instance, encoder, ds::core::fmt(r.success_prob, 3),
       ds::core::fmt(r.kr / 6.0, 3), ds::core::fmt(r.info_m_pi, 3),
       ds::core::fmt(r.h_pi_public, 3), ds::core::fmt(sum_info, 3),
       ds::core::fmt(sum_h, 3),
       r.lemma33_applicable ? ds::core::fmt_bool(r.lemma33_holds) : "n/a",
       ds::core::fmt_bool(r.lemma34_holds),
       ds::core::fmt_bool(r.lemma35_holds),
       ds::core::fmt(static_cast<std::uint64_t>(r.max_message_bits))});
}

void print_experiment() {
  std::cout << "=== E4: exact information accounting (Lemmas 3.3-3.5) ===\n";
  ds::core::Table table({"instance", "encoder", "P[success]", "kr/6",
                         "I(M;Pi|S,J)", "H(Pi_P)", "sum I(Mi;PiUi)",
                         "sum H(PiUi)", "L3.3", "L3.4", "L3.5", "b"});

  const FullReportEncoder full;
  const CappedReportEncoder cap1(1);
  const SilentEncoder silent;

  {
    // Sigma fully enumerated: book(1,2), k=2, n=5 — 120 permutations.
    const ds::rs::RsGraph base = ds::rs::book_rs(1, 2);
    const auto sigmas = all_permutations(5);
    add_row(table, "book(1,2) k=2 all-sigma", "full",
            enumerate_accounting(base, 2, full, sigmas));
    add_row(table, "book(1,2) k=2 all-sigma", "cap-1",
            enumerate_accounting(base, 2, cap1, sigmas));
    add_row(table, "book(1,2) k=2 all-sigma", "silent",
            enumerate_accounting(base, 2, silent, sigmas));
  }
  {
    // Larger masks, single sigma (valid for 3.3 / 3.4; 3.5 reported with
    // sampled sigmas).
    const ds::rs::RsGraph base = ds::rs::book_rs(1, 3);  // ktr = 9
    ds::util::Rng rng(7);
    const auto sigmas = sampled_permutations(
        dmm_parameters(base, 3).n, 24, rng);
    add_row(table, "book(1,3) k=3 24-sigma", "full",
            enumerate_accounting(base, 3, full, sigmas));
    add_row(table, "book(1,3) k=3 24-sigma", "cap-1",
            enumerate_accounting(base, 3, cap1, sigmas));
  }
  {
    const ds::rs::RsGraph base = ds::rs::book_rs(2, 2);  // ktr = 8, r = 2
    ds::util::Rng rng(9);
    const auto sigmas = sampled_permutations(
        dmm_parameters(base, 2).n, 24, rng);
    add_row(table, "book(2,2) k=2 24-sigma", "full",
            enumerate_accounting(base, 2, full, sigmas));
    add_row(table, "book(2,2) k=2 24-sigma", "cap-1",
            enumerate_accounting(base, 2, cap1, sigmas));
  }
  table.print(std::cout);

  // Converse side: no referee — not just the greedy one — can beat the
  // information cap.  MAP decoding attains the optimum; Fano bounds it by
  // (I + 1)/kr.
  std::cout << "\n--- Optimal (MAP) referee vs the information cap ---\n";
  ds::core::Table map_table({"instance", "encoder", "P[greedy]", "P[optimal]",
                             "Fano cap (I+1)/kr", "I(M;Pi|S,J)", "b"});
  {
    const ds::rs::RsGraph base = ds::rs::book_rs(1, 2);
    const ParityEncoder parity;
    for (const RefinedEncoder* enc :
         std::initializer_list<const RefinedEncoder*>{&full, &cap1, &parity,
                                                      &silent}) {
      const OptimalRefereeResult r =
          optimal_referee_success(base, 2, *enc);
      map_table.add_row(
          {"book(1,2) k=2", enc->name(), ds::core::fmt(r.greedy_success, 3),
           ds::core::fmt(r.optimal_success, 3),
           ds::core::fmt(r.fano_success_bound, 3),
           ds::core::fmt(r.info_m_pi, 3),
           ds::core::fmt(static_cast<std::uint64_t>(r.max_message_bits))});
    }
  }
  {
    const ds::rs::RsGraph base = ds::rs::book_rs(2, 2);
    const ParityEncoder parity;
    for (const RefinedEncoder* enc :
         std::initializer_list<const RefinedEncoder*>{&full, &cap1, &parity,
                                                      &silent}) {
      const OptimalRefereeResult r =
          optimal_referee_success(base, 2, *enc);
      map_table.add_row(
          {"book(2,2) k=2", enc->name(), ds::core::fmt(r.greedy_success, 3),
           ds::core::fmt(r.optimal_success, 3),
           ds::core::fmt(r.fano_success_bound, 3),
           ds::core::fmt(r.info_m_pi, 3),
           ds::core::fmt(static_cast<std::uint64_t>(r.max_message_bits))});
    }
  }
  map_table.print(std::cout);

  // Exhaustive protocol search: the exact optimum of a complete class of
  // tiny protocols (b-bit degree tables), certified by enumerating every
  // member and MAP-scoring it.
  std::cout << "\n--- Exhaustive search over ALL b-bit degree-table "
               "protocols ---\n";
  ds::core::Table search_table({"instance", "bits", "protocols", "best P",
                                "Fano cap at best", "guessing"});
  {
    const ds::rs::RsGraph c6 = ds::rs::cycle_rs(3);
    for (unsigned bits : {1u, 2u}) {
      const ProtocolSearchResult r = search_degree_protocols(
          c6, 1, bits, /*degree_cap=*/bits == 1 ? 3 : 2);
      search_table.add_row(
          {"C6 (r=2,t=3) k=1", ds::core::fmt(std::uint64_t{bits}),
           ds::core::fmt(static_cast<std::uint64_t>(r.protocols_searched)),
           ds::core::fmt(r.best_success, 4),
           ds::core::fmt(r.fano_cap_at_best, 3),
           ds::core::fmt(r.silent_baseline, 3)});
    }
  }
  {
    const ds::rs::RsGraph base = ds::rs::book_rs(1, 2);
    const ProtocolSearchResult r = search_degree_protocols(base, 2, 1, 3);
    search_table.add_row(
        {"book(1,2) k=2", "1",
         ds::core::fmt(static_cast<std::uint64_t>(r.protocols_searched)),
         ds::core::fmt(r.best_success, 4),
         ds::core::fmt(r.fano_cap_at_best, 3),
         ds::core::fmt(r.silent_baseline, 3)});
  }
  search_table.print(std::cout);
  std::cout
      << "\nOn C6 every vertex holds two matching slots, so degrees leave"
         "\nthe alternating survival patterns indistinguishable: the best"
         "\nof all 256 one-bit protocols is EXACTLY 7/8 — a certified gap"
         "\nfor a complete protocol class, the miniature of Theorem 1's"
         "\n'for every protocol' quantifier.\n";

  std::cout
      << "\nPaper predictions, all checked exactly:\n"
         "  Lemma 3.3: successful protocols (P >= 0.98) have "
         "I(M;Pi|Sigma,J) >= kr/6.\n"
         "  Lemma 3.4: I(M;Pi|Sigma,J) <= H(Pi_P) + sum_i "
         "I(M_i;Pi_Ui|Sigma,J).\n"
         "  Lemma 3.5: I(M_i;Pi_Ui|Sigma,J) <= H(Pi_Ui)/t (needs Sigma "
         "averaged).\n"
         "  Silent protocols reveal 0 bits and fail; full reports reveal "
         "kr bits and succeed.\n\n";
}

void bm_enumerate_mini(benchmark::State& state) {
  const ds::rs::RsGraph base = ds::rs::book_rs(1, 2);
  const FullReportEncoder full;
  for (auto _ : state) {
    benchmark::DoNotOptimize(enumerate_accounting(base, 2, full));
  }
}
BENCHMARK(bm_enumerate_mini);

}  // namespace

int main(int argc, char** argv) {
  print_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
