// E1 — Proposition 2.1: (r, t)-Ruzsa-Szemeredi graphs with
// r = N / e^{Theta(sqrt(log N))} and t = Theta(N) from Behrend sets.
//
// Paper prediction: r/N decays like 1/e^{c*sqrt(log N)} (sub-polynomial),
// t/N is a constant (1/3 in the paper's construction, 1/5 in ours — a
// block-layout constant absorbed by the Theta).
#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>

#include "core/report.h"
#include "rs/ap_free.h"
#include "rs/rs_graph.h"

namespace {

void print_experiment() {
  std::cout << "=== E1: Ruzsa-Szemeredi graphs from Behrend sets "
               "(Proposition 2.1) ===\n";
  ds::core::Table table({"m", "N", "r=|S|", "t", "r/N", "t/N",
                         "e^sqrt(ln N)", "N/(r*e^sqrt(ln N))", "verified"});
  for (std::uint64_t m :
       {10ULL, 30ULL, 100ULL, 300ULL, 1000ULL, 3000ULL, 10000ULL, 30000ULL,
        100000ULL}) {
    const ds::rs::RsParameters p = ds::rs::rs_parameters(m);
    const double n = static_cast<double>(p.n);
    const double denom = std::exp(std::sqrt(std::log(n)));
    // If r = N / e^{c sqrt(log N)}, the last column is ~constant in N for
    // the right c; we display c = 1 and let the trend speak.
    const bool verify = m <= 300 && ds::rs::verify_rs(ds::rs::rs_graph(m));
    table.add_row({ds::core::fmt(m), ds::core::fmt(p.n), ds::core::fmt(p.r),
                   ds::core::fmt(p.t),
                   ds::core::fmt(static_cast<double>(p.r) / n, 5),
                   ds::core::fmt(static_cast<double>(p.t) / n, 3),
                   ds::core::fmt(denom, 1),
                   ds::core::fmt(n / (static_cast<double>(p.r) * denom), 3),
                   m <= 300 ? ds::core::fmt_bool(verify) : "(skipped)"});
  }
  table.print(std::cout);
  std::cout << "\nShape check: r/N decays sub-polynomially (column 5 falls,"
               "\nbut much slower than 1/N); t/N is constant; full RS"
               "\nvalidation (partition + induced) passes where run.\n\n";
}

void bm_behrend_set(benchmark::State& state) {
  const std::uint64_t m = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ds::rs::densest_ap_free_set(m));
  }
}
BENCHMARK(bm_behrend_set)->Arg(1000)->Arg(10000)->Arg(100000);

void bm_rs_graph_build(benchmark::State& state) {
  const std::uint64_t m = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ds::rs::rs_graph(m));
  }
}
BENCHMARK(bm_rs_graph_build)->Arg(100)->Arg(1000);

}  // namespace

int main(int argc, char** argv) {
  print_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
