// S1: turnstile stream ingestion throughput (src/streamio/).
//
// Per case the driver:
//   1. materializes a GeneratorStream update sequence once (so every row
//      replays byte-identical input via MemorySource, with generation
//      cost outside the clock),
//   2. ingests it serially (the DynamicConnectivity::apply baseline),
//      then through the sharded ingestor at 1, 4, and
//      configured_threads() pool threads,
//   3. certifies every pooled row against the serial twin: same
//      state_hash, same component count — the bit-identical ingestion
//      contract of docs/STREAMING.md,
//   4. also measures the raw generator drain rate and the file-backed
//      write -> read -> ingest path (BinaryStreamWriter/Reader).
//
// Emits BENCH_stream.json and exits nonzero if any pooled row diverged
// from its serial twin (speed never fails the run; a broken equality
// contract always does).
//
// The flagship case holds n = 2^20 >= 10^6 vertices resident at
// rounds=2 (the memory knob documented in stream/dynamic_stream.h);
// `--quick` swaps in a small case for CI smoke jobs.
//
// Note on scaling: this container exposes a single hardware thread, so
// pooled rows demonstrate that sharding adds no overhead and lands
// identical state (flat updates/sec 1 -> 4 threads) rather than a
// parallel speedup; the shards only run concurrently on multi-core
// hosts.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "obs/obs.h"
#include "parallel/thread_pool.h"
#include "streamio/generator_stream.h"
#include "streamio/ingestor.h"

namespace {

using namespace ds;

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

std::string hex64(std::uint64_t value) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(value));
  return buf;
}

struct StreamRow {
  std::string name;
  std::string mode;  // "generate" | "ingest" | "ingest-file"
  graph::Vertex n = 0;
  std::uint64_t updates = 0;
  std::uint64_t inserts = 0;
  std::uint64_t deletes = 0;
  std::size_t threads = 0;  // 0 = serial apply loop (no sharding)
  double ms = 0.0;
  double updates_per_sec = 0.0;
  std::size_t state_bits = 0;
  std::uint64_t state_hash = 0;
  std::uint32_t components = 0;
  std::size_t snapshots = 0;
  bool matches_serial = true;  // trivially true for the baseline rows
};

struct CaseSpec {
  std::string name;
  streamio::GeneratorConfig config;
  unsigned rounds = 2;
  std::uint64_t sketch_seed = 2020;
  std::uint64_t query_interval = 0;  // for the max-threads row
};

/// Drain the generator once, timing the drain itself (the "generate"
/// row), and return the materialized sequence for the ingest rows.
std::vector<stream::EdgeUpdate> materialize(const CaseSpec& spec,
                                            std::vector<StreamRow>& rows) {
  streamio::GeneratorStream source(spec.config);
  std::vector<stream::EdgeUpdate> all;
  std::vector<stream::EdgeUpdate> buf(std::size_t{1} << 15);
  const auto start = Clock::now();
  for (;;) {
    const std::size_t got = source.next_batch(buf);
    if (got == 0) break;
    all.insert(all.end(), buf.begin(),
               buf.begin() + static_cast<std::ptrdiff_t>(got));
  }
  StreamRow row;
  row.name = spec.name + "/generate";
  row.mode = "generate";
  row.n = spec.config.n;
  row.updates = all.size();
  for (const stream::EdgeUpdate& u : all) {
    (u.insert ? row.inserts : row.deletes) += 1;
  }
  row.ms = ms_since(start);
  row.updates_per_sec =
      row.ms > 0.0 ? static_cast<double>(row.updates) / (row.ms / 1e3) : 0.0;
  rows.push_back(row);
  std::cout << "[" << row.name << "] updates=" << row.updates
            << " (" << row.inserts << " ins, " << row.deletes
            << " del) gen=" << row.ms << "ms\n";
  return all;
}

void run_case(const CaseSpec& spec, std::vector<StreamRow>& rows) {
  const auto updates = materialize(spec, rows);

  auto ingest_row = [&](const std::string& label, std::size_t threads,
                        streamio::UpdateSource& source,
                        const streamio::IngestOptions& options) {
    stream::DynamicConnectivity state(spec.config.n, spec.sketch_seed,
                                      spec.rounds);
    const streamio::IngestReport report =
        streamio::ingest(source, state, options);
    StreamRow row;
    row.name = spec.name + "/" + label;
    row.mode = "ingest";
    row.n = spec.config.n;
    row.updates = report.updates;
    row.inserts = report.inserts;
    row.deletes = report.deletes;
    row.threads = threads;
    row.ms = report.wall_ms;
    row.updates_per_sec = report.updates_per_sec();
    row.state_bits = state.state_bits();
    row.state_hash = state.state_hash();
    row.components = state.query_components();
    row.snapshots = report.snapshots.size();
    rows.push_back(row);
    std::cout << "[" << row.name << "] " << row.ms << "ms "
              << static_cast<std::uint64_t>(row.updates_per_sec)
              << " updates/sec components=" << row.components
              << " hash=" << hex64(row.state_hash) << "\n";
    return rows.size() - 1;
  };

  // Baseline: the plain serial apply loop.
  streamio::MemorySource serial_source(spec.config.n, updates);
  const std::size_t base = ingest_row("serial", 0, serial_source,
                                      {.serial = true});
  const std::uint64_t want_hash = rows[base].state_hash;
  const std::uint32_t want_components = rows[base].components;

  // Pooled rows: 1, 4, and the configured thread count (which also
  // exercises the interleaved-query path).
  struct PoolRow {
    std::string label;
    std::size_t threads;
    std::uint64_t query_interval;
  };
  const PoolRow pool_rows[] = {
      {"pool1", 1, 0},
      {"pool4", 4, 0},
      {"poolmax", parallel::configured_threads(), spec.query_interval},
  };
  for (const PoolRow& pr : pool_rows) {
    parallel::ThreadPool pool(pr.threads);
    streamio::MemorySource source(spec.config.n, updates);
    streamio::IngestOptions options;
    options.pool = &pool;
    options.query_interval = pr.query_interval;
    const std::size_t i = ingest_row(pr.label, pr.threads, source, options);
    rows[i].matches_serial = rows[i].state_hash == want_hash &&
                             rows[i].components == want_components;
  }

  // File-backed row: write the stream out, then ingest through the
  // buffered reader (IO + parse + serial apply).
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("ds_bench_" + spec.name + ".stream")).string();
  {
    streamio::BinaryStreamWriter writer(path, spec.config.n,
                                        spec.config.seed);
    writer.append(updates);
    if (!writer.finish()) {
      std::cerr << "FAIL: could not write " << path << "\n";
      std::exit(1);
    }
  }
  {
    streamio::BinaryStreamReader reader(path);
    const std::size_t i =
        ingest_row("file-serial", 0, reader, {.serial = true});
    rows[i].mode = "ingest-file";
    rows[i].matches_serial = rows[i].state_hash == want_hash;
  }
  std::remove(path.c_str());
}

void write_json(const std::string& path, const std::string& mode,
                const std::vector<StreamRow>& rows) {
  std::ofstream out(path);
  out << "{\n  \"mode\": \"" << mode << "\",\n  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const StreamRow& r = rows[i];
    out << "    {\n"
        << "      \"name\": \"" << r.name << "\",\n"
        << "      \"mode\": \"" << r.mode << "\",\n"
        << "      \"n\": " << r.n << ",\n"
        << "      \"updates\": " << r.updates << ",\n"
        << "      \"inserts\": " << r.inserts << ",\n"
        << "      \"deletes\": " << r.deletes << ",\n"
        << "      \"threads\": " << r.threads << ",\n"
        << "      \"ms\": " << r.ms << ",\n"
        << "      \"updates_per_sec\": " << r.updates_per_sec << ",\n"
        << "      \"state_bits\": " << r.state_bits << ",\n"
        << "      \"state_hash\": \"" << hex64(r.state_hash) << "\",\n"
        << "      \"components\": " << r.components << ",\n"
        << "      \"snapshots\": " << r.snapshots << ",\n"
        << "      \"matches_serial\": "
        << (r.matches_serial ? "true" : "false") << "\n    }"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"metrics\": ";
  ds::obs::write_json(out, ds::obs::snapshot(), "  ");
  out << "\n}\n";
  std::cout << "wrote " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_stream.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else {
      out_path = arg;
    }
  }
  ds::obs::set_metrics_enabled(true);

  std::vector<StreamRow> rows;
  if (quick) {
    // CI smoke: small enough for sanitizer builds, same code paths.
    CaseSpec rmat;
    rmat.name = "rmat-quick";
    rmat.config.family = streamio::Family::kRmat;
    rmat.config.n = 1u << 12;
    rmat.config.edges = 40000;
    rmat.config.delete_fraction = 0.15;
    rmat.config.seed = 7;
    rmat.query_interval = 20000;
    run_case(rmat, rows);
  } else {
    // The flagship n >= 10^6 turnstile case (acceptance floor for
    // docs/STREAMING.md): 3M insert draws + ~15% deletions at
    // rounds=2 keeps the resident sketch state a few GB.
    CaseSpec rmat;
    rmat.name = "rmat-1m";
    rmat.config.family = streamio::Family::kRmat;
    rmat.config.n = 1u << 20;
    rmat.config.edges = 3000000;
    rmat.config.delete_fraction = 0.15;
    rmat.config.seed = 7;
    rmat.query_interval = 1000000;
    run_case(rmat, rows);

    // A skewed-degree family at moderate scale.
    CaseSpec cl;
    cl.name = "chung-lu-100k";
    cl.config.family = streamio::Family::kChungLu;
    cl.config.n = 100000;
    cl.config.edges = 500000;
    cl.config.delete_fraction = 0.2;
    cl.config.chung_lu_exponent = 2.5;
    cl.config.seed = 8;
    run_case(cl, rows);
  }

  write_json(out_path, quick ? "quick" : "full", rows);

  for (const StreamRow& r : rows) {
    if (!r.matches_serial) {
      std::cerr << "FAIL: " << r.name
                << " diverged from the serial ingest baseline\n";
      return 1;
    }
  }
  return 0;
}
