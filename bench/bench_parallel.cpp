// P1 — the parallel execution engine, measured: the three hot layers
// (sketch collection, Monte Carlo sweeps, protocol search) run once on a
// one-thread pool and once on the full pool.  Emits BENCH_parallel.json
// (wall time, speedup vs serial, bits/player) and exits nonzero if any
// parallel result diverged from its serial twin — the determinism
// contract, enforced at bench time too.
//
// The headline case is the Theorem 1 budget sweep on D_MM (E3's engine):
// per-trial counter-derived seeds make every trial independent, so the
// sweep scales with cores while producing the exact serial numbers.
#include <bit>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/sweep.h"
#include "graph/generators.h"
#include "lowerbound/protocol_search.h"
#include "model/runner.h"
#include "obs/obs.h"
#include "parallel_harness.h"
#include "protocols/sampled_matching.h"
#include "rs/rs_graph.h"
#include "scenario/registry.h"
#include "util/bitio.h"

namespace {

std::uint64_t fingerprint_sweep(const ds::core::SweepResult& result) {
  std::uint64_t h = result.threshold_budget.value_or(0);
  for (const ds::core::SweepPoint& p : result.points) {
    h = ds::bench::fingerprint_fold(h, p.budget_bits);
    h = ds::bench::fingerprint_fold(h, p.successes);
    h = ds::bench::fingerprint_fold(h, p.trials);
    h = ds::bench::fingerprint_fold(h, p.max_bits_seen);
  }
  return h;
}

void case_dmm_sweep(ds::bench::ParallelHarness& harness) {
  // E3's engine: the registered dmm-matching scenario's own default grid
  // IS this bench's historical configuration (m=16, 24 trials, seed 7),
  // so the fingerprints are continuous across the scenario refactor.
  const ds::scenario::Scenario* s = ds::scenario::find("dmm-matching");
  if (s == nullptr) {
    std::cerr << "FAIL: dmm-matching scenario not registered\n";
    std::exit(1);
  }
  harness.run_case(
      "dmm_sweep", s->default_grid().trials,
      [&](ds::parallel::ThreadPool& pool) {
        return ds::core::sweep_scenario(*s, &pool);
      },
      fingerprint_sweep,
      [](const ds::core::SweepResult& result) {
        return result.points.empty()
                   ? 0.0
                   : static_cast<double>(result.points.back().max_bits_seen);
      });
}

void case_collect_sketches(ds::bench::ParallelHarness& harness) {
  // The per-vertex encode loop on a larger flat graph, repeated so the
  // timing is not dominated by one allocation burst.
  struct Result {
    std::uint64_t fingerprint = 0;
    ds::model::CommStats last_comm;
  };
  ds::util::Rng rng(301);
  const ds::graph::Graph g = ds::graph::gnp(1200, 0.02, rng);
  const ds::protocols::BudgetedMatching protocol(256);
  constexpr std::size_t kRepeats = 16;

  harness.run_case(
      "collect_sketches_gnp1200", kRepeats,
      [&](ds::parallel::ThreadPool& pool) {
        Result result;
        for (std::size_t rep = 0; rep < kRepeats; ++rep) {
          const ds::model::PublicCoins coins(
              ds::util::derive_seed(501, rep));
          ds::model::CommStats comm;
          const auto sketches =
              ds::model::collect_sketches(g, protocol, coins, comm, &pool);
          for (const ds::util::BitString& s : sketches) {
            result.fingerprint =
                ds::bench::fingerprint_fold(result.fingerprint,
                                            s.bit_count());
            for (const std::uint64_t w : s.words()) {
              result.fingerprint =
                  ds::bench::fingerprint_fold(result.fingerprint, w);
            }
          }
          result.last_comm = comm;
        }
        return result;
      },
      [](const Result& r) { return r.fingerprint; },
      [](const Result& r) {
        return static_cast<double>(r.last_comm.max_bits);
      });
}

void case_protocol_search(ds::bench::ParallelHarness& harness) {
  // The Remark 3.6 search path: 4096 MAP-referee evaluations on C6.
  const ds::rs::RsGraph base = ds::rs::cycle_rs(3);
  harness.run_case(
      "protocol_search_c6_2bit", 4096,
      [&](ds::parallel::ThreadPool& pool) {
        return ds::lowerbound::search_degree_protocols(
            base, /*k=*/1, /*bits=*/2, /*degree_cap=*/2, &pool);
      },
      [](const ds::lowerbound::ProtocolSearchResult& r) {
        std::uint64_t h = std::bit_cast<std::uint64_t>(r.best_success);
        h = ds::bench::fingerprint_fold(h, r.protocols_searched);
        for (const std::uint8_t v : r.best_public_table) {
          h = ds::bench::fingerprint_fold(h, v);
        }
        for (const std::uint8_t v : r.best_unique_table) {
          h = ds::bench::fingerprint_fold(h, v);
        }
        return h;
      },
      [](const ds::lowerbound::ProtocolSearchResult&) { return 2.0; });
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_parallel.json";
  // Metrics on for the whole run: the BENCH_parallel.json metrics block
  // then carries pool counters (jobs, chunks, queue wait) alongside the
  // timings.  The determinism certification below runs with them live,
  // re-proving instrumentation never touches the result path.
  ds::obs::set_metrics_enabled(true);
  std::cout << "=== P1: deterministic parallel execution engine ===\n"
            << "pool threads: "
            << ds::parallel::global_pool().num_threads() << "\n\n";

  ds::bench::ParallelHarness harness;
  case_dmm_sweep(harness);
  case_collect_sketches(harness);
  case_protocol_search(harness);

  harness.write_json(out_path);
  if (!harness.all_identical()) {
    std::cerr << "FAIL: a parallel run diverged from its serial twin\n";
    return 1;
  }
  return 0;
}
