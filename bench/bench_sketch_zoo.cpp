// A1 (ablation/extension) — the rest of the introduction's problem zoo,
// executed: connectivity, k-edge-connectivity certificates, exact MSF
// weight, and the dynamic-stream correspondence.  All of these run in
// polylog(n) (times k or W) bits per player on the SAME model where
// Theorems 1-2 put maximal matching and MIS at Omega(sqrt n).
#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>

#include "core/report.h"
#include "graph/connectivity.h"
#include "graph/generators.h"
#include "graph/densest.h"
#include "graph/mincut.h"
#include "model/runner.h"
#include "model/one_sided.h"
#include "protocols/needle.h"
#include "protocols/sampling_zoo.h"
#include "protocols/zoo.h"
#include "stream/dynamic_stream.h"

namespace {

void print_connectivity() {
  std::cout << "=== A1a: one-round connectivity (component counting) ===\n";
  ds::core::Table table({"n", "bits/player", "correct"});
  for (ds::graph::Vertex n : {64u, 256u, 1024u}) {
    std::size_t bits = 0, correct = 0;
    constexpr std::size_t kTrials = 5;
    for (std::size_t trial = 0; trial < kTrials; ++trial) {
      // Counter-derived seed: each (n, trial) instance is independent of
      // every other data point instead of riding one shared Rng stream.
      ds::util::Rng rng(ds::util::derive_seed(n, trial));
      const ds::graph::Graph g = ds::graph::gnp(n, 3.0 / n, rng);
      const ds::model::PublicCoins coins(4000 + n + trial);
      const auto run =
          ds::model::run_protocol(g, ds::protocols::AgmConnectivity{}, coins);
      bits = run.comm.max_bits;
      correct += run.output == ds::graph::connected_components(g).count;
    }
    table.add_row({ds::core::fmt(std::uint64_t{n}),
                   ds::core::fmt(static_cast<std::uint64_t>(bits)),
                   ds::core::fmt(static_cast<std::uint64_t>(correct)) + "/" +
                       ds::core::fmt(static_cast<std::uint64_t>(kTrials))});
  }
  table.print(std::cout);
  std::cout << '\n';
}

void print_k_connectivity() {
  std::cout << "=== A1b: k-edge-connectivity certificates ===\n";
  ds::core::Table table(
      {"n", "k", "bits/player", "|cert| / (k*n)", "capped lambda preserved"});
  for (std::uint32_t k : {1u, 2u, 4u}) {
    const ds::graph::Vertex n = 28;
    std::size_t bits = 0, preserved = 0;
    double cert_ratio = 0;
    constexpr std::size_t kTrials = 5;
    for (std::size_t trial = 0; trial < kTrials; ++trial) {
      ds::util::Rng rng(
          ds::util::derive_seed(ds::util::derive_seed(17, k), trial));
      const ds::graph::Graph g = ds::graph::gnp(n, 0.35, rng);
      const ds::model::PublicCoins coins(5000 + k * 100 + trial);
      const auto run = ds::model::run_protocol(
          g, ds::protocols::KConnectivityCertificate{k}, coins);
      bits = run.comm.max_bits;
      cert_ratio += static_cast<double>(run.output.size()) /
                    static_cast<double>(k * n);
      const ds::graph::Graph cert =
          ds::graph::Graph::from_edges(n, run.output);
      preserved +=
          std::min<std::uint64_t>(ds::graph::global_min_cut(g), k) ==
          std::min<std::uint64_t>(ds::graph::global_min_cut(cert), k);
    }
    table.add_row({ds::core::fmt(std::uint64_t{n}),
                   ds::core::fmt(std::uint64_t{k}),
                   ds::core::fmt(static_cast<std::uint64_t>(bits)),
                   ds::core::fmt(cert_ratio / kTrials, 2),
                   ds::core::fmt(static_cast<std::uint64_t>(preserved)) +
                       "/" +
                       ds::core::fmt(static_cast<std::uint64_t>(kTrials))});
  }
  table.print(std::cout);
  std::cout << '\n';
}

void print_mst_weight() {
  std::cout << "=== A1c: exact MSF weight from W connectivity sketches ===\n";
  ds::core::Table table({"n", "W", "bits/player", "exact matches"});
  for (std::uint32_t w : {2u, 4u, 8u}) {
    const ds::graph::Vertex n = 40;
    std::size_t bits = 0, exact = 0;
    constexpr std::size_t kTrials = 5;
    for (std::size_t trial = 0; trial < kTrials; ++trial) {
      ds::util::Rng rng(
          ds::util::derive_seed(ds::util::derive_seed(23, w), trial));
      const ds::graph::WeightedGraph g =
          ds::graph::random_weighted_gnp(n, 0.15, w, rng);
      const ds::model::PublicCoins coins(6000 + w * 100 + trial);
      const auto run =
          ds::model::run_protocol(g, ds::protocols::MstWeight{w}, coins);
      bits = run.comm.max_bits;
      exact += run.output == ds::graph::kruskal_mst(g).total_weight;
    }
    table.add_row(
        {ds::core::fmt(std::uint64_t{n}), ds::core::fmt(std::uint64_t{w}),
         ds::core::fmt(static_cast<std::uint64_t>(bits)),
         ds::core::fmt(static_cast<std::uint64_t>(exact)) + "/" +
             ds::core::fmt(static_cast<std::uint64_t>(kTrials))});
  }
  table.print(std::cout);
  std::cout << '\n';
}

void print_dynamic_stream() {
  std::cout << "=== A1d: the linear-sketch <-> dynamic-stream "
               "correspondence ===\n";
  ds::core::Table table({"n", "updates", "spurious pairs", "state bits/n",
                         "components correct", "greedy matching survives"});
  for (ds::graph::Vertex n : {50u, 200u}) {
    ds::util::Rng rng(ds::util::derive_seed(29, n));
    const ds::graph::Graph target = ds::graph::gnp(n, 4.0 / n, rng);
    const auto updates =
        ds::stream::scrambled_updates(target, /*spurious_pairs=*/2 * n, rng);
    ds::stream::DynamicConnectivity connectivity(n, 7000 + n);
    ds::stream::InsertionGreedyMatching matching(n);
    for (const auto& u : updates) {
      connectivity.apply(u);
      matching.apply(u);
    }
    const bool correct = connectivity.query_components() ==
                         ds::graph::connected_components(target).count;
    table.add_row(
        {ds::core::fmt(std::uint64_t{n}),
         ds::core::fmt(static_cast<std::uint64_t>(updates.size())),
         ds::core::fmt(std::uint64_t{2 * n}),
         ds::core::fmt(static_cast<double>(connectivity.state_bits()) / n,
                       0),
         correct ? "yes" : "NO", matching.valid() ? "yes" : "no (broken)"});
  }
  table.print(std::cout);
  std::cout
      << "\nReading: linear sketches absorb deletions (the reason the"
         "\nstreaming matching lower bounds the paper cites apply only to"
         "\nLINEAR sketches, and Theorems 1-2 were needed for general"
         "\nones); one-pass greedy matching breaks on the same stream.\n\n";
}

void print_sampling_zoo() {
  std::cout << "=== A1e: edge counting, densest subgraph, degeneracy ===\n";
  ds::core::Table table({"problem", "n", "bits/player", "estimate", "truth",
                         "ratio"});
  {
    ds::util::Rng rng(ds::util::derive_seed(61, 0));
    const ds::graph::Graph g = ds::graph::gnp(200, 0.2, rng);
    const ds::model::PublicCoins coins(9100);
    const auto run = ds::model::run_protocol(
        g, ds::protocols::EdgeCountEstimate{128}, coins);
    const double truth = static_cast<double>(g.num_edges());
    table.add_row({"edge count (KMV k=128)", "200",
                   ds::core::fmt(static_cast<std::uint64_t>(run.comm.max_bits)),
                   ds::core::fmt(run.output, 0), ds::core::fmt(truth, 0),
                   ds::core::fmt(run.output / truth, 2)});
  }
  {
    // Planted K12 in sparse noise.
    ds::util::Rng rng(ds::util::derive_seed(61, 1));
    std::vector<ds::graph::Edge> edges;
    for (ds::graph::Vertex u = 0; u < 12; ++u)
      for (ds::graph::Vertex v = u + 1; v < 12; ++v) edges.push_back({u, v});
    for (ds::graph::Vertex v = 12; v < 200; ++v) {
      edges.push_back({v, static_cast<ds::graph::Vertex>(rng.next_below(v))});
    }
    const ds::graph::Graph g = ds::graph::Graph::from_edges(200, edges);
    const double truth = ds::graph::densest_subgraph_peel(g).density;
    const ds::model::PublicCoins coins(9200);
    const auto run = ds::model::run_protocol(
        g, ds::protocols::SampledDensestSubgraph{0.5}, coins);
    table.add_row({"densest subgraph (p=0.5)", "200",
                   ds::core::fmt(static_cast<std::uint64_t>(run.comm.max_bits)),
                   ds::core::fmt(run.output.density, 2),
                   ds::core::fmt(truth, 2),
                   ds::core::fmt(run.output.density / truth, 2)});
  }
  {
    ds::util::Rng rng(ds::util::derive_seed(61, 2));
    const ds::graph::Graph g = ds::graph::gnp(200, 0.15, rng);
    const double truth = static_cast<double>(ds::graph::degeneracy(g));
    const ds::model::PublicCoins coins(9300);
    const auto run = ds::model::run_protocol(
        g, ds::protocols::SampledDegeneracy{0.5}, coins);
    table.add_row({"degeneracy (p=0.5)", "200",
                   ds::core::fmt(static_cast<std::uint64_t>(run.comm.max_bits)),
                   ds::core::fmt(run.output, 1), ds::core::fmt(truth, 1),
                   ds::core::fmt(run.output / truth, 2)});
  }
  table.print(std::cout);
  std::cout << "\nAll three use the shared-hash sampling trick: both\n"
               "endpoints of an edge make the same sampling decision from\n"
               "the public coins, so reports merge into one consistent\n"
               "subsample — edge sharing at work again.\n\n";
}

void print_one_sided() {
  std::cout << "=== A2: the one-sided model (related work, Section 1.3) "
               "===\n";
  // Needle discovery: the unique degree-1 right vertex's edge.
  ds::core::Table table({"left=right", "two-sided bits", "1-sided budget",
                         "1-sided success"});
  for (ds::graph::Vertex side : {20u, 50u, 100u}) {
    std::size_t two_bits = 0;
    for (std::size_t budget : {16ULL, 64ULL, 256ULL, 4096ULL}) {
      std::size_t successes = 0;
      constexpr std::size_t kTrials = 10;
      for (std::size_t trial = 0; trial < kTrials; ++trial) {
        // Same instance sequence at every budget: the budget column is
        // the only thing that varies across a row's data points.
        ds::util::Rng rng(
            ds::util::derive_seed(ds::util::derive_seed(41, side), trial));
        const auto inst = ds::graph::needle_bipartite(
            side, side, std::min(0.5, 8.0 / side), rng);
        const ds::model::PublicCoins coins(8000 + side + trial);
        const ds::model::BipartiteInstance bip{inst.graph, inst.left};
        const ds::protocols::NeedleOneSided one(inst.left, budget);
        const auto run = ds::model::run_one_sided(bip, one, coins);
        successes +=
            run.output.normalized() == inst.needle.normalized();
        const ds::protocols::NeedleTwoSided two(inst.left);
        const auto two_run =
            ds::model::run_protocol(inst.graph, two, coins);
        two_bits = std::max(two_bits, two_run.comm.max_bits);
      }
      table.add_row(
          {ds::core::fmt(std::uint64_t{side}),
           ds::core::fmt(static_cast<std::uint64_t>(two_bits)),
           ds::core::fmt(static_cast<std::uint64_t>(budget)),
           ds::core::fmt(static_cast<double>(successes) / kTrials, 2)});
    }
  }
  table.print(std::cout);
  std::cout
      << "\nReading: with players on both sides the degree-1 vertex"
         "\nannounces itself (log n bits, success 1 always); with players"
         "\non one side only, reliable discovery needs budgets near the"
         "\nfull degree — the related-work models' hardness, flipped off"
         "\nby the edge-sharing this paper's model has.\n\n";
}

void bm_dynamic_update(benchmark::State& state) {
  ds::stream::DynamicConnectivity stream(256, 1);
  ds::util::Rng rng(2);
  for (auto _ : state) {
    const auto u = static_cast<ds::graph::Vertex>(rng.next_below(256));
    auto v = static_cast<ds::graph::Vertex>(rng.next_below(256));
    if (u == v) v = (v + 1) % 256;
    stream.insert(u, v);
    stream.remove(u, v);
  }
}
BENCHMARK(bm_dynamic_update);

void bm_mst_weight(benchmark::State& state) {
  ds::util::Rng rng(3);
  const ds::graph::WeightedGraph g =
      ds::graph::random_weighted_gnp(32, 0.2, 4, rng);
  const ds::model::PublicCoins coins(4);
  const ds::protocols::MstWeight protocol(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ds::model::run_protocol(g, protocol, coins));
  }
}
BENCHMARK(bm_mst_weight);

}  // namespace

int main(int argc, char** argv) {
  print_connectivity();
  print_k_connectivity();
  print_mst_weight();
  print_dynamic_stream();
  print_sampling_zoo();
  print_one_sided();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
