// E9 — the final arithmetic of Theorem 1, evaluated on the concrete
// construction:  kr/6 <= I(M;Pi|Sigma,J) <= H(Pi(P)) + (1/t) sum_i
// H(Pi(U_i)) <= 2Nb, so b >= kr/(12N), and with N = Theta(sqrt n) the
// bound reads b = Omega(sqrt(n)/e^{Theta(sqrt(log n))}).
#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>

#include "core/experiment.h"
#include "core/report.h"

namespace {

void print_experiment() {
  std::cout << "=== E9: Theorem 1 bound arithmetic on concrete RS "
               "parameters ===\n";
  ds::core::Table table({"m", "N", "r", "t=k", "n", "kr/6 (bits)",
                         "b >= kr/12N", "sqrt(n)", "b/sqrt(n)",
                         "e^sqrt(ln n)"});
  for (std::uint64_t m : {50ULL, 100ULL, 300ULL, 1000ULL, 3000ULL, 10000ULL,
                          30000ULL, 100000ULL}) {
    const ds::core::Theorem1Bound b = ds::core::theorem1_bound(m);
    const double n = static_cast<double>(b.n);
    table.add_row(
        {ds::core::fmt(m), ds::core::fmt(b.big_n), ds::core::fmt(b.r),
         ds::core::fmt(b.t), ds::core::fmt(b.n),
         ds::core::fmt(b.info_lower, 0), ds::core::fmt(b.b_lower, 2),
         ds::core::fmt(b.sqrt_n, 0),
         ds::core::fmt(b.b_lower / b.sqrt_n, 5),
         ds::core::fmt(std::exp(std::sqrt(std::log(n))), 1)});
  }
  table.print(std::cout);
  std::cout
      << "\nPaper prediction: the certified lower bound b grows without"
         "\nbound, and b/sqrt(n) decays only like the sub-polynomial"
         "\n1/e^{Theta(sqrt(log n))} factor (compare the last two columns'"
         "\ntrends) — i.e. b = Omega(n^{1/2 - eps}) for every fixed eps."
         "\nThe trivial upper bound is n bits, leaving the paper's open"
         "\nsqrt(n) gap.\n\n";
}

void bm_theorem1_bound(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ds::core::theorem1_bound(static_cast<std::uint64_t>(state.range(0))));
  }
}
BENCHMARK(bm_theorem1_bound)->Arg(1000)->Arg(100000);

}  // namespace

int main(int argc, char** argv) {
  print_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
