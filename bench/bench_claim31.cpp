// E2 — Claim 3.1: with probability >= 1 - 2^{-kr/10} over G ~ D_MM, every
// maximal matching has at least k*r/4 unique-unique edges.
//
// We audit three maximal matchings per sample — canonical greedy, random
// greedy, and the adversarial greedy that grabs public-vertex edges first
// — and report the minimum unique-unique count seen vs the threshold.
// Run in two regimes: the paper's k = t coupling (constants only kick in
// at scale), and a boosted-k regime where the finite-size inequality
// k*r/3 - (N-2r) >= k*r/4 already binds.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <iostream>

#include "core/report.h"
#include "graph/matching.h"
#include "lowerbound/claims.h"
#include "rs/rs_graph.h"

namespace {

using ds::lowerbound::Claim31Audit;
using ds::lowerbound::DmmInstance;

struct RegimeRow {
  std::uint64_t m, k;
  std::size_t trials = 0, holds = 0;
  std::size_t min_uu = SIZE_MAX, threshold = 0;
  double avg_union = 0, avg_uu = 0;
};

RegimeRow run_regime(std::uint64_t m, std::uint64_t k, std::size_t trials,
                     std::uint64_t seed) {
  const ds::rs::RsGraph base = ds::rs::rs_graph(m);
  RegimeRow row;
  row.m = m;
  row.k = k;
  ds::util::Rng rng(seed);
  for (std::size_t trial = 0; trial < trials; ++trial) {
    const DmmInstance inst = ds::lowerbound::sample_dmm(base, k, rng);
    row.threshold = inst.params.claim31_threshold();
    bool all_hold = true;
    const auto audit_one = [&](const ds::graph::Matching& matching) {
      const Claim31Audit audit =
          ds::lowerbound::audit_claim31(inst, matching);
      all_hold &= audit.claim_holds;
      row.min_uu = std::min(row.min_uu, audit.unique_unique);
      row.avg_union += static_cast<double>(audit.union_special_size);
      row.avg_uu += static_cast<double>(audit.unique_unique);
    };
    audit_one(ds::graph::greedy_matching(inst.g));
    audit_one(ds::graph::greedy_matching_random(inst.g, rng));
    audit_one(ds::lowerbound::adversarial_maximal_matching(inst));
    ++row.trials;
    row.holds += all_hold;
  }
  row.avg_union /= static_cast<double>(3 * row.trials);
  row.avg_uu /= static_cast<double>(3 * row.trials);
  return row;
}

void print_experiment() {
  std::cout << "=== E2: Claim 3.1 — forced unique-unique edges in every "
               "maximal matching ===\n";
  ds::core::Table table({"m", "k", "kr", "thr=kr/4", "min u-u seen",
                         "avg u-u", "avg |union Mi|", "holds", "2^-kr/10"});
  struct Regime {
    std::uint64_t m, k;
    std::size_t trials;
  };
  // k = t regime at growing m, plus boosted-k regimes for small m.
  // The k = t rows below m ~ 350 are EXPECTED to fail the finite-size
  // inequality (r <= 36 there — the paper needs r > 36, see the proof of
  // Claim 3.1); m = 365 is the first ternary-set scale where r >= 60 and
  // the k = t regime genuinely binds.
  const Regime regimes[] = {
      {12, 150, 20}, {20, 120, 20}, {40, 200, 10},
      {60, 60, 5},   {200, 200, 3}, {365, 365, 2},
  };
  for (const Regime& regime : regimes) {
    const RegimeRow row = run_regime(regime.m, regime.k, regime.trials, 99);
    const ds::rs::RsParameters p = ds::rs::rs_parameters(regime.m);
    const double kr = static_cast<double>(regime.k * p.r);
    table.add_row(
        {ds::core::fmt(row.m), ds::core::fmt(row.k), ds::core::fmt(kr, 0),
         ds::core::fmt(static_cast<std::uint64_t>(row.threshold)),
         ds::core::fmt(static_cast<std::uint64_t>(row.min_uu)),
         ds::core::fmt(row.avg_uu, 1), ds::core::fmt(row.avg_union, 1),
         ds::core::fmt(static_cast<std::uint64_t>(row.holds)) + "/" +
             ds::core::fmt(static_cast<std::uint64_t>(row.trials)),
         ds::core::fmt(std::exp2(-kr / 10.0), 6)});
  }
  table.print(std::cout);
  std::cout
      << "\nPaper prediction: 'holds' in every trial once k*r/3 exceeds"
         "\n(N-2r) + k*r/4 (the k=t rows need m large for that; the"
         "\nboosted-k rows show the same mechanism at laptop scale), and"
         "\navg |union M_i| concentrates at k*r/2.\n\n";
}

void bm_sample_dmm(benchmark::State& state) {
  const ds::rs::RsGraph base = ds::rs::rs_graph(20);
  ds::util::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ds::lowerbound::sample_dmm(base, base.t(), rng));
  }
}
BENCHMARK(bm_sample_dmm);

void bm_adversarial_matching(benchmark::State& state) {
  const ds::rs::RsGraph base = ds::rs::rs_graph(20);
  ds::util::Rng rng(2);
  const DmmInstance inst = ds::lowerbound::sample_dmm(base, base.t(), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ds::lowerbound::adversarial_maximal_matching(inst));
  }
}
BENCHMARK(bm_adversarial_matching);

}  // namespace

int main(int argc, char** argv) {
  print_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
