#include "lowerbound/players.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "rs/rs_graph.h"

namespace ds::lowerbound {
namespace {

using graph::Edge;
using graph::Vertex;

DmmInstance make_instance(std::uint64_t seed, std::uint64_t m = 6) {
  static std::map<std::uint64_t, rs::RsGraph> cache;
  auto [it, inserted] = cache.try_emplace(m);
  if (inserted) it->second = rs::rs_graph(m);
  util::Rng rng(seed);
  return sample_dmm(it->second, it->second.t(), rng);
}

TEST(Players, CountsMatchSection32) {
  const DmmInstance inst = make_instance(1);
  const auto players = build_refined_players(inst);
  const DmmParameters& p = inst.params;
  EXPECT_EQ(players.size(), p.num_public() + p.k * p.big_n);
  std::size_t publics = 0;
  for (const auto& player : players) publics += player.is_public;
  EXPECT_EQ(publics, p.num_public());
}

TEST(Players, PublicPlayersComeFirstThenCopiesInOrder) {
  const DmmInstance inst = make_instance(2);
  const auto players = build_refined_players(inst);
  const DmmParameters& p = inst.params;
  for (std::size_t idx = 0; idx < players.size(); ++idx) {
    if (idx < p.num_public()) {
      EXPECT_TRUE(players[idx].is_public);
    } else {
      EXPECT_FALSE(players[idx].is_public);
      EXPECT_EQ(players[idx].copy, (idx - p.num_public()) / p.big_n);
    }
  }
}

TEST(Players, PublicPlayerSeesAllIncidentEdges) {
  const DmmInstance inst = make_instance(3);
  const auto players = build_refined_players(inst);
  for (std::size_t l = 0; l < inst.params.num_public(); ++l) {
    const RefinedPlayer& player = players[l];
    const Vertex v = inst.public_final[l];
    EXPECT_EQ(player.edges.size(), inst.g.degree(v));
    for (const Edge& e : player.edges) {
      EXPECT_TRUE(e.u == v || e.v == v);
      EXPECT_TRUE(inst.g.has_edge(e.u, e.v));
    }
  }
}

TEST(Players, UniquePlayersSeeOnlyTheirCopy) {
  const DmmInstance inst = make_instance(4);
  const auto players = build_refined_players(inst);
  const DmmParameters& p = inst.params;
  // Collect, per copy, the set of that copy's unique labels.
  std::vector<std::set<Vertex>> unique_of_copy(p.k);
  for (std::uint64_t i = 0; i < p.k; ++i) {
    unique_of_copy[i].insert(inst.unique_final[i].begin(),
                             inst.unique_final[i].end());
  }
  for (std::size_t idx = p.num_public(); idx < players.size(); ++idx) {
    const RefinedPlayer& player = players[idx];
    for (const Edge& e : player.edges) {
      EXPECT_TRUE(inst.g.has_edge(e.u, e.v));
      // Any non-public endpoint must be unique *of this copy* — a unique
      // player never sees another copy's vertices.
      for (Vertex v : {e.u, e.v}) {
        if (!inst.is_public[v]) {
          EXPECT_TRUE(unique_of_copy[player.copy].contains(v));
        }
      }
    }
  }
}

TEST(Players, UnionOfUniquePlayerEdgesPerCopyMatchesSurvivalBits) {
  const DmmInstance inst = make_instance(5);
  const auto players = build_refined_players(inst);
  const DmmParameters& p = inst.params;
  // Each copy's players collectively see each surviving edge twice.
  std::vector<std::size_t> seen(p.k, 0);
  for (std::size_t idx = p.num_public(); idx < players.size(); ++idx) {
    seen[players[idx].copy] += players[idx].edges.size();
  }
  for (std::uint64_t i = 0; i < p.k; ++i) {
    std::size_t survived = 0;
    for (std::uint64_t j = 0; j < p.t; ++j) {
      for (std::uint64_t e = 0; e < p.r; ++e) survived += inst.bits.get(i, j, e);
    }
    EXPECT_EQ(seen[i], 2 * survived) << "copy " << i;
  }
}

TEST(Players, EncodersRoundTrip) {
  const DmmInstance inst = make_instance(6);
  const auto players = build_refined_players(inst);
  const FullReportEncoder full;
  const CappedReportEncoder capped(2);
  for (const auto* encoder :
       std::initializer_list<const RefinedEncoder*>{&full, &capped}) {
    for (const auto& player : players) {
      util::BitWriter w;
      encoder->encode(inst.params, player, w);
      const util::BitString bs(w);
    util::BitReader r(bs);
      const auto decoded = encoder->decode(inst.params, r);
      if (encoder == &full) {
        EXPECT_EQ(decoded, player.edges);
      } else {
        EXPECT_LE(decoded.size(), 2u);
        for (std::size_t i = 0; i < decoded.size(); ++i) {
          EXPECT_EQ(decoded[i], player.edges[i]);
        }
      }
    }
  }
}

TEST(Players, SilentEncoderSendsNothing) {
  const DmmInstance inst = make_instance(7);
  const auto players = build_refined_players(inst);
  const SilentEncoder silent;
  const auto messages = run_refined(inst, players, silent);
  for (const auto& m : messages) EXPECT_EQ(m.bit_count(), 0u);
}

TEST(Players, RefereeWithFullReportsRecoversExactly) {
  for (std::uint64_t seed : {8ULL, 9ULL, 10ULL}) {
    const DmmInstance inst = make_instance(seed);
    const auto players = build_refined_players(inst);
    const FullReportEncoder full;
    const auto messages = run_refined(inst, players, full);
    graph::Matching decoded = refined_referee(inst, players, full, messages);
    graph::Matching expected = inst.all_surviving_special();
    auto canon = [](graph::Matching& m) {
      for (Edge& e : m) e = e.normalized();
      std::sort(m.begin(), m.end());
    };
    canon(decoded);
    canon(expected);
    EXPECT_EQ(decoded, expected);
  }
}

TEST(Players, RefereeWithSilenceRecoversNothing) {
  const DmmInstance inst = make_instance(11);
  const auto players = build_refined_players(inst);
  const SilentEncoder silent;
  const auto messages = run_refined(inst, players, silent);
  EXPECT_TRUE(refined_referee(inst, players, silent, messages).empty());
}

}  // namespace
}  // namespace ds::lowerbound
